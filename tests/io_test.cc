// Tests for CSV relation I/O: round-trips, comments/blank lines, and
// malformed-input rejection with precise Status diagnostics.

#include "parjoin/relation/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "parjoin/semiring/semirings.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/parjoin_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, RoundTrip) {
  Relation<S> rel(Schema{0, 1});
  rel.Add(Row{1, 2}, 3);
  rel.Add(Row{-4, 5}, 6);
  rel.Add(Row{7000000000LL, 8}, 9);

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveRelationCsv(path, rel).ok());

  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  loaded->Normalize();
  rel.Normalize();
  EXPECT_TRUE(*loaded == rel);
  std::remove(path.c_str());
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header comment\n\n1,2,3\n\n# trailing\n4,5,6\n");
  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsWrongFieldCount) {
  const std::string path = TempPath("fields.csv");
  WriteFile(path, "1,2\n");
  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("expected 3 fields"),
            std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find(":1:"), std::string::npos)
      << "line number missing: " << loaded.status();
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsNonInteger) {
  const std::string path = TempPath("nonint.csv");
  WriteFile(path, "1,2,3\n1,abc,3\n");
  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("malformed integer"),
            std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST_F(IoTest, AcceptsCrlfLineEndings) {
  // Files written on Windows terminate lines with \r\n; the \r is not
  // data. Blank CRLF lines and CRLF comments must be skipped too.
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "# comment\r\n1,2,3\r\n\r\n4,5,6\r\n");
  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsWhitespaceInFields) {
  // strtoll silently skips leading whitespace, which would make " 1" and
  // "1" parse identically; whitespace anywhere in a field is an error.
  for (const std::string content : {"1, 2,3\n", " 1,2,3\n", "1,2 ,3\n",
                                    "1,\t2,3\n"}) {
    const std::string path = TempPath("whitespace.csv");
    WriteFile(path, content);
    StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
    ASSERT_FALSE(loaded.ok()) << "accepted: " << content;
    EXPECT_NE(loaded.status().message().find("whitespace"),
              std::string::npos)
        << loaded.status();
    std::remove(path.c_str());
  }
}

TEST_F(IoTest, ParseLineHandlesCrlfAndRejectsInnerCr) {
  std::vector<std::int64_t> fields;
  const Status crlf = internal_io::ParseCsvInt64Line("1,2\r", 2, &fields);
  EXPECT_TRUE(crlf.ok()) << crlf;
  EXPECT_EQ(fields, (std::vector<std::int64_t>{1, 2}));
  const Status inner = internal_io::ParseCsvInt64Line("1\r,2", 2, &fields);
  ASSERT_FALSE(inner.ok());
  EXPECT_NE(inner.message().find("whitespace"), std::string::npos) << inner;
}

TEST_F(IoTest, MissingFileReportsPath) {
  StatusOr<Relation<S>> loaded =
      LoadRelationCsv<S>("/nonexistent/never.csv", Schema{0, 1});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("cannot open"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("/nonexistent/never.csv"),
            std::string::npos);
}

TEST_F(IoTest, EmptyFileGivesEmptyRelation) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  StatusOr<Relation<S>> loaded = LoadRelationCsv<S>(path, Schema{0, 1});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parjoin
