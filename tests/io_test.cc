// Tests for CSV relation I/O: round-trips, comments/blank lines, and
// malformed-input rejection with precise diagnostics.

#include "parjoin/relation/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "parjoin/semiring/semirings.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/parjoin_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, RoundTrip) {
  Relation<S> rel(Schema{0, 1});
  rel.Add(Row{1, 2}, 3);
  rel.Add(Row{-4, 5}, 6);
  rel.Add(Row{7000000000LL, 8}, 9);

  const std::string path = TempPath("roundtrip.csv");
  std::string error;
  ASSERT_TRUE(SaveRelationCsv(path, rel, &error)) << error;

  Relation<S> loaded;
  ASSERT_TRUE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error)) << error;
  loaded.Normalize();
  rel.Normalize();
  EXPECT_TRUE(loaded == rel);
  std::remove(path.c_str());
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header comment\n\n1,2,3\n\n# trailing\n4,5,6\n");
  Relation<S> loaded;
  std::string error;
  ASSERT_TRUE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 2);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsWrongFieldCount) {
  const std::string path = TempPath("fields.csv");
  WriteFile(path, "1,2\n");
  Relation<S> loaded;
  std::string error;
  EXPECT_FALSE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error));
  EXPECT_NE(error.find("expected 3 fields"), std::string::npos) << error;
  EXPECT_NE(error.find(":1:"), std::string::npos) << "line number missing";
  EXPECT_EQ(loaded.size(), 0);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsNonInteger) {
  const std::string path = TempPath("nonint.csv");
  WriteFile(path, "1,2,3\n1,abc,3\n");
  Relation<S> loaded;
  std::string error;
  EXPECT_FALSE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error));
  EXPECT_NE(error.find("malformed integer"), std::string::npos) << error;
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST_F(IoTest, AcceptsCrlfLineEndings) {
  // Files written on Windows terminate lines with \r\n; the \r is not
  // data. Blank CRLF lines and CRLF comments must be skipped too.
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "# comment\r\n1,2,3\r\n\r\n4,5,6\r\n");
  Relation<S> loaded;
  std::string error;
  ASSERT_TRUE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), 2);
  std::remove(path.c_str());
}

TEST_F(IoTest, RejectsWhitespaceInFields) {
  // strtoll silently skips leading whitespace, which would make " 1" and
  // "1" parse identically; whitespace anywhere in a field is an error.
  for (const std::string content : {"1, 2,3\n", " 1,2,3\n", "1,2 ,3\n",
                                    "1,\t2,3\n"}) {
    const std::string path = TempPath("whitespace.csv");
    WriteFile(path, content);
    Relation<S> loaded;
    std::string error;
    EXPECT_FALSE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error))
        << "accepted: " << content;
    EXPECT_NE(error.find("whitespace"), std::string::npos) << error;
    EXPECT_EQ(loaded.size(), 0);
    std::remove(path.c_str());
  }
}

TEST_F(IoTest, ParseLineHandlesCrlfAndRejectsInnerCr) {
  std::vector<std::int64_t> fields;
  std::string error;
  EXPECT_TRUE(internal_io::ParseCsvInt64Line("1,2\r", 2, &fields, &error))
      << error;
  EXPECT_EQ(fields, (std::vector<std::int64_t>{1, 2}));
  EXPECT_FALSE(internal_io::ParseCsvInt64Line("1\r,2", 2, &fields, &error));
  EXPECT_NE(error.find("whitespace"), std::string::npos) << error;
}

TEST_F(IoTest, MissingFileReportsPath) {
  Relation<S> loaded;
  std::string error;
  EXPECT_FALSE(LoadRelationCsv("/nonexistent/never.csv", Schema{0, 1},
                               &loaded, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(IoTest, EmptyFileGivesEmptyRelation) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  Relation<S> loaded;
  std::string error;
  ASSERT_TRUE(LoadRelationCsv(path, Schema{0, 1}, &loaded, &error));
  EXPECT_EQ(loaded.size(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parjoin
