// Tests for the §3 matrix-multiplication algorithms: LinearSparseMM, the
// worst-case optimal algorithm, the output-sensitive algorithm, and the
// Theorem 1 dispatcher. Correctness against the reference evaluator across
// semirings, skew, cluster sizes, and the lower-bound hard instances;
// load-bound property checks against the Theorem 1 expression.

#include "parjoin/algorithms/matmul.h"

#include <cmath>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/query/dangling.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

template <SemiringC Sr>
void ExpectMatMulMatchesReference(mpc::Cluster& cluster,
                                  const TreeInstance<Sr>& instance,
                                  const MatMulOptions& options) {
  Relation<Sr> expected = EvaluateReference(instance);
  DistRelation<Sr> got_dist = MatMul(cluster, instance.relations[0],
                                     instance.relations[1], options);
  Relation<Sr> got = got_dist.ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " tuples, expected " << expected.size();
}

class MatMulStrategyTest : public ::testing::TestWithParam<MatMulStrategy> {
 protected:
  MatMulOptions Options() const {
    MatMulOptions o;
    o.strategy = GetParam();
    return o;
  }
};

TEST_P(MatMulStrategyTest, RandomUniform) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 600;
  cfg.n2 = 500;
  cfg.dom_a = 80;
  cfg.dom_b = 30;
  cfg.dom_c = 80;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    cfg.seed = seed;
    auto instance = GenMatMulRandom<S>(cluster, cfg);
    ExpectMatMulMatchesReference(cluster, instance, Options());
  }
}

TEST_P(MatMulStrategyTest, SkewedJoinAttribute) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 700;
  cfg.n2 = 700;
  cfg.dom_a = 90;
  cfg.dom_b = 50;
  cfg.dom_c = 90;
  cfg.skew_b = 1.1;  // strong skew: heavy B values stress the grids
  cfg.seed = 5;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  ExpectMatMulMatchesReference(cluster, instance, Options());
}

TEST_P(MatMulStrategyTest, BlockInstanceExactOut) {
  mpc::Cluster cluster(16);
  MatMulBlockConfig cfg;
  cfg.blocks = 6;
  cfg.side_a = 7;
  cfg.side_b = 4;
  cfg.side_c = 7;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  Relation<S> expected = EvaluateReference(instance);
  ASSERT_EQ(expected.size(), cfg.out());
  ExpectMatMulMatchesReference(cluster, instance, Options());
}

TEST_P(MatMulStrategyTest, UnbalancedSizes) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 40;  // n1 * p < n2 triggers the broadcast path
  cfg.n2 = 1200;
  cfg.dom_a = 20;
  cfg.dom_b = 12;
  cfg.dom_c = 300;
  cfg.seed = 7;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  ExpectMatMulMatchesReference(cluster, instance, Options());
}

TEST_P(MatMulStrategyTest, SingleTupleSides) {
  mpc::Cluster cluster(4);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{3, 9}, 5);
  Relation<S> r2(Schema{1, 2});
  for (int c = 0; c < 30; ++c) r2.Add(Row{9, c}, c + 1);
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  ExpectMatMulMatchesReference(cluster, instance, Options());
}

TEST_P(MatMulStrategyTest, EmptyAfterDanglingRemoval) {
  mpc::Cluster cluster(4);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{1, 100}, 1);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{200, 2}, 1);
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  DistRelation<S> got = MatMul(cluster, instance.relations[0],
                               instance.relations[1], Options());
  EXPECT_EQ(got.TotalSize(), 0);
}

TEST_P(MatMulStrategyTest, LowerBoundInstances) {
  mpc::Cluster cluster(8);
  auto thm2 = GenLowerBoundThm2<S>(cluster, 50, 120);
  ExpectMatMulMatchesReference(cluster, thm2, Options());
  auto thm3 = GenLowerBoundThm3<S>(cluster, 400, 400, 1600);
  ExpectMatMulMatchesReference(cluster, thm3, Options());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MatMulStrategyTest,
                         ::testing::Values(MatMulStrategy::kAuto,
                                           MatMulStrategy::kWorstCase,
                                           MatMulStrategy::kOutputSensitive),
                         [](const auto& info) {
                           switch (info.param) {
                             case MatMulStrategy::kAuto:
                               return "Auto";
                             case MatMulStrategy::kWorstCase:
                               return "WorstCase";
                             case MatMulStrategy::kOutputSensitive:
                               return "OutputSensitive";
                           }
                           return "Unknown";
                         });

template <typename Sr>
class MatMulSemiringTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(MatMulSemiringTest, AllSemirings);

TYPED_TEST(MatMulSemiringTest, AutoStrategyMatchesReference) {
  using Sr = TypeParam;
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 500;
  cfg.n2 = 450;
  cfg.dom_a = 70;
  cfg.dom_b = 25;
  cfg.dom_c = 70;
  cfg.skew_b = 0.6;
  cfg.seed = 11;
  auto instance = GenMatMulRandom<Sr>(cluster, cfg);
  ExpectMatMulMatchesReference(cluster, instance, MatMulOptions{});
}

class MatMulClusterSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulClusterSizeTest, CorrectAcrossP) {
  mpc::Cluster cluster(GetParam());
  MatMulGenConfig cfg;
  cfg.n1 = 400;
  cfg.n2 = 400;
  cfg.dom_a = 60;
  cfg.dom_b = 20;
  cfg.dom_c = 60;
  cfg.seed = 3;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  ExpectMatMulMatchesReference(cluster, instance, MatMulOptions{});
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatMulClusterSizeTest,
                         ::testing::Values(1, 2, 3, 8, 32, 100));

TEST(MatMulLoadTest, WorstCaseLoadWithinBound) {
  const int p = 16;
  mpc::Cluster cluster(p);
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(4000, 4000, 8);
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  const std::int64_t n1 = cfg.n1();
  const std::int64_t n2 = cfg.n2();
  cluster.ResetStats();
  MatMulOptions options;
  options.strategy = MatMulStrategy::kWorstCase;
  MatMul(cluster, instance.relations[0], instance.relations[1], options);
  const double bound =
      static_cast<double>(n1 + n2) / p +
      std::sqrt(static_cast<double>(n1) * static_cast<double>(n2) / p);
  EXPECT_LE(cluster.stats().max_load,
            static_cast<std::int64_t>(8 * bound));
}

TEST(MatMulLoadTest, OutputSensitiveBeatsYannakakisShapeOnSmallOut) {
  // Fixed N, small OUT: the output-sensitive load must be well below
  // N*sqrt(OUT)/p (the Yannakakis term grows with sqrt(OUT)).
  const int p = 16;
  mpc::Cluster cluster(p);
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(8000, 256, 4);
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  cluster.ResetStats();
  MatMulOptions options;
  options.strategy = MatMulStrategy::kOutputSensitive;
  auto result = MatMul(cluster, instance.relations[0],
                       instance.relations[1], options);
  const std::int64_t n = cfg.n1() + cfg.n2();
  const std::int64_t out = result.TotalSize();
  const double os_bound =
      static_cast<double>(n) / p +
      std::cbrt(static_cast<double>(cfg.n1()) * cfg.n2() * out) /
          std::pow(static_cast<double>(p), 2.0 / 3.0);
  EXPECT_LE(cluster.stats().max_load,
            static_cast<std::int64_t>(10 * os_bound));
}

TEST(MatMulLoadTest, RoundsAreConstant) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 2000;
  cfg.n2 = 2000;
  cfg.dom_a = 200;
  cfg.dom_b = 60;
  cfg.dom_c = 200;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  cluster.ResetStats();
  MatMul(cluster, instance.relations[0], instance.relations[1]);
  // O(1) rounds: generous cap covering dangling removal + estimation
  // repetitions (the Õ hides the log factor of the estimator).
  EXPECT_LE(cluster.stats().rounds, 200);
}

}  // namespace
}  // namespace parjoin
