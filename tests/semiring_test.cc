// Property tests of the semiring axioms for every shipped semiring:
// associativity and commutativity of ⊕/⊗, identities, annihilation by
// Zero(), distributivity, and the declared idempotence flags.

#include "parjoin/semiring/semirings.h"

#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/random.h"

namespace parjoin {
namespace {

// Generates representative carrier values for semiring S, including the
// identities and values near them.
template <typename S>
std::vector<typename S::ValueType> SampleValues() {
  std::vector<typename S::ValueType> vals = {S::Zero(), S::One()};
  Rng rng(0xabcdef);
  for (int i = 0; i < 12; ++i) {
    vals.push_back(static_cast<typename S::ValueType>(rng.Uniform(-50, 50)));
  }
  // Boolean's carrier is {0,1}; clamp so the axioms are tested in-domain.
  if constexpr (std::is_same_v<S, BooleanSemiring>) {
    for (auto& v : vals) v = (v != 0) ? 1 : 0;
  }
  return vals;
}

template <typename S>
class SemiringAxiomsTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(SemiringAxiomsTest, AllSemirings);

TYPED_TEST(SemiringAxiomsTest, PlusCommutativeAssociative) {
  using S = TypeParam;
  const auto vals = SampleValues<S>();
  for (auto a : vals) {
    for (auto b : vals) {
      EXPECT_EQ(S::Plus(a, b), S::Plus(b, a));
      for (auto c : vals) {
        EXPECT_EQ(S::Plus(S::Plus(a, b), c), S::Plus(a, S::Plus(b, c)));
      }
    }
  }
}

TYPED_TEST(SemiringAxiomsTest, TimesCommutativeAssociative) {
  using S = TypeParam;
  const auto vals = SampleValues<S>();
  for (auto a : vals) {
    for (auto b : vals) {
      EXPECT_EQ(S::Times(a, b), S::Times(b, a));
      for (auto c : vals) {
        EXPECT_EQ(S::Times(S::Times(a, b), c), S::Times(a, S::Times(b, c)));
      }
    }
  }
}

TYPED_TEST(SemiringAxiomsTest, Identities) {
  using S = TypeParam;
  for (auto a : SampleValues<S>()) {
    EXPECT_EQ(S::Plus(a, S::Zero()), a);
    EXPECT_EQ(S::Times(a, S::One()), a);
  }
}

TYPED_TEST(SemiringAxiomsTest, ZeroAnnihilates) {
  using S = TypeParam;
  for (auto a : SampleValues<S>()) {
    EXPECT_EQ(S::Times(a, S::Zero()), S::Zero());
  }
}

TYPED_TEST(SemiringAxiomsTest, Distributivity) {
  using S = TypeParam;
  const auto vals = SampleValues<S>();
  for (auto a : vals) {
    for (auto b : vals) {
      for (auto c : vals) {
        EXPECT_EQ(S::Times(a, S::Plus(b, c)),
                  S::Plus(S::Times(a, b), S::Times(a, c)));
      }
    }
  }
}

TYPED_TEST(SemiringAxiomsTest, IdempotenceFlagMatchesBehavior) {
  using S = TypeParam;
  bool all_idempotent = true;
  for (auto a : SampleValues<S>()) {
    if (S::Plus(a, a) != a) all_idempotent = false;
  }
  EXPECT_EQ(all_idempotent, S::kIdempotentPlus);
}

TEST(SemiringSpecificTest, CountingMatchesIntegers) {
  EXPECT_EQ(CountingSemiring::Plus(3, 4), 7);
  EXPECT_EQ(CountingSemiring::Times(3, 4), 12);
}

TEST(SemiringSpecificTest, MinPlusIsShortestPathAlgebra) {
  using S = MinPlusSemiring;
  EXPECT_EQ(S::Plus(3, 7), 3);
  EXPECT_EQ(S::Times(3, 7), 10);
  EXPECT_EQ(S::Times(3, S::Zero()), S::Zero()) << "infinity is absorbing";
}

TEST(SemiringSpecificTest, MaxMinIsBottleneckAlgebra) {
  using S = MaxMinSemiring;
  EXPECT_EQ(S::Plus(3, 7), 7);
  EXPECT_EQ(S::Times(3, 7), 3);
}

}  // namespace
}  // namespace parjoin
