// Tests for ExplainQuery: plans mention the right shapes, bounds,
// decompositions, and preprocessing folds.

#include "parjoin/query/explain.h"

#include <gtest/gtest.h>

#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

TEST(ExplainTest, MatMulMentionsTheorem1) {
  const std::string plan =
      ExplainQuery(JoinTree({{0, 1}, {1, 2}}, {0, 2}));
  EXPECT_NE(plan.find("matrix-multiplication"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Theorem 1"), std::string::npos) << plan;
  EXPECT_NE(plan.find("optimal"), std::string::npos) << plan;
}

TEST(ExplainTest, LineMentionsTheorem4) {
  const std::string plan =
      ExplainQuery(JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}));
  EXPECT_NE(plan.find("line"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Theorem 4"), std::string::npos) << plan;
}

TEST(ExplainTest, StarListsArms) {
  const std::string plan =
      ExplainQuery(JoinTree({{1, 0}, {2, 0}, {3, 0}}, {1, 2, 3}));
  EXPECT_NE(plan.find("star"), std::string::npos) << plan;
  EXPECT_NE(plan.find("center B = 0"), std::string::npos) << plan;
  EXPECT_NE(plan.find("length 1"), std::string::npos) << plan;
}

TEST(ExplainTest, Fig1StarLikeArmLengths) {
  const std::string plan = ExplainQuery(Fig1StarLikeQuery());
  EXPECT_NE(plan.find("star-like"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Lemma 7"), std::string::npos) << plan;
  EXPECT_NE(plan.find("length 3"), std::string::npos)
      << "the A2 arm has length 3: " << plan;
}

TEST(ExplainTest, Fig2ReportsSixTwigs) {
  const std::string plan = ExplainQuery(Fig2Query());
  EXPECT_NE(plan.find("twig decomposition: 6 twigs"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Theorem 6"), std::string::npos) << plan;
  EXPECT_NE(plan.find("V*"), std::string::npos) << plan;
}

TEST(ExplainTest, PreprocessingFoldsPrivateAttrs) {
  // Path 0-1-2-3 with y = {0, 2}: edge (2,3) folds.
  const std::string plan =
      ExplainQuery(JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 2}));
  EXPECT_NE(plan.find("1 relation(s) with private non-output"),
            std::string::npos)
      << plan;
}

TEST(ExplainTest, ScalarQueryCollapsesToSingleRelation) {
  const std::string plan =
      ExplainQuery(JoinTree({{0, 1}, {1, 2}}, {}));
  EXPECT_NE(plan.find("single relation -> aggregate"), std::string::npos)
      << plan;
}

}  // namespace
}  // namespace parjoin
