// Tests for the cost-based planner (src/parjoin/plan): correctness of the
// dispatched execution against the reference evaluator, crossover
// placement on Table 1 rows (the planner must pick the algorithm with the
// lower MEASURED load on instances engineered to sit on either side of a
// crossover), prediction accuracy within a constant factor, and validity
// of the machine-readable plan dump.

#include <cctype>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/plan/executor.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace plan {
namespace {

using S = CountingSemiring;

// --- tiny JSON validator -----------------------------------------------------
// Enough JSON to validate ToJson(): objects, arrays, strings with escapes,
// numbers, true/false/null. Returns false on any syntax error.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- helpers -----------------------------------------------------------------

std::int64_t MinMeasured(const PhysicalPlan& plan) {
  std::int64_t best = -1;
  for (const Candidate& c : plan.candidates) {
    EXPECT_GE(c.measured_load, 0) << AlgorithmName(c.algorithm);
    if (best < 0 || c.measured_load < best) best = c.measured_load;
  }
  return best;
}

// Plans the instance, measures every candidate, and asserts the planner's
// choice is (near-)optimal: its measured load within `slack` of the best
// candidate's. slack > 1 tolerates constant-factor noise near crossovers;
// the sweep points themselves are chosen well inside each regime.
PhysicalPlan ExpectPicksLowerMeasured(mpc::Cluster& cluster,
                                      const TreeInstance<S>& instance,
                                      double slack = 1.3) {
  PhysicalPlan plan = PlanQuery(cluster, instance);
  MeasureCandidates(cluster, instance, &plan);
  const std::int64_t best = MinMeasured(plan);
  const Candidate* chosen = plan.CandidateFor(plan.chosen);
  EXPECT_NE(chosen, nullptr);
  if (chosen != nullptr) {
    EXPECT_LE(static_cast<double>(chosen->measured_load),
              slack * static_cast<double>(best))
        << plan.ToText();
  }
  return plan;
}

void ExpectPredictionWithinFactor(const PhysicalPlan& plan, double factor) {
  const Candidate* chosen = plan.CandidateFor(plan.chosen);
  ASSERT_NE(chosen, nullptr);
  ASSERT_GT(chosen->predicted_load, 0);
  ASSERT_GT(chosen->measured_load, 0);
  const double ratio =
      static_cast<double>(chosen->measured_load) / chosen->predicted_load;
  EXPECT_GE(ratio, 1.0 / factor) << plan.ToText();
  EXPECT_LE(ratio, factor) << plan.ToText();
}

// --- correctness through the executor ---------------------------------------

TEST(PlanExecutorTest, MatMulMatchesReference) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  Relation<S> expected = EvaluateReference(instance);
  auto exec = PlanAndRun(cluster, instance);
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
  EXPECT_EQ(exec.plan.out_actual, expected.size());
  EXPECT_EQ(exec.plan.measured_load, exec.plan.execution_stats.max_load);
}

TEST(PlanExecutorTest, LineMatchesReferenceUnderEveryCandidate) {
  mpc::Cluster cluster(8);
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 4;
  cfg.side_end = 4;
  cfg.side_mid = 12;
  auto instance = GenLineBlocks<S>(cluster, cfg);
  Relation<S> expected = EvaluateReference(instance);
  PhysicalPlan plan = PlanQuery(cluster, instance);
  for (const Candidate& c : plan.candidates) {
    TreeInstance<S> copy = instance;
    Relation<S> got =
        DispatchAlgorithm(cluster, c.algorithm, std::move(copy)).ToLocal();
    got.Normalize();
    // Align schema order (the line algorithm may reverse the path).
    if (!(got.schema() == expected.schema())) {
      Relation<S> aligned(expected.schema());
      const auto positions =
          got.schema().PositionsOf(expected.schema().attrs());
      for (const auto& t : got.tuples()) {
        aligned.Add(t.row.Select(positions), t.w);
      }
      aligned.Normalize();
      got = aligned;
    }
    EXPECT_TRUE(got == expected) << AlgorithmName(c.algorithm);
  }
}

// --- estimation --------------------------------------------------------------

TEST(PlannerEstimateTest, MatMulOutAndJoinEstimates) {
  mpc::Cluster cluster(16);
  MatMulBlockConfig cfg;
  cfg.blocks = 8;
  cfg.side_a = 4;
  cfg.side_b = 16;
  cfg.side_c = 4;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  PhysicalPlan plan = PlanQuery(cluster, instance);
  EXPECT_EQ(plan.shape, QueryShape::kMatMul);
  EXPECT_TRUE(plan.stats.out_is_estimated);
  // KMV-exact regime (per-source distinct counts below the sketch width):
  // the estimate should be very close to the true OUT.
  const double out_true = static_cast<double>(cfg.out());
  EXPECT_GE(plan.stats.out_estimate, out_true / 2);
  EXPECT_LE(plan.stats.out_estimate, out_true * 2);
  EXPECT_GE(plan.stats.join_estimate, plan.stats.out_estimate);
  EXPECT_EQ(plan.stats.n1, cfg.n1());
  EXPECT_EQ(plan.stats.n2, cfg.n2());
}

TEST(PlannerEstimateTest, StarOutDedupeSeesCollapsedOutput) {
  mpc::Cluster cluster(16);
  // side_b B-values per block share identical arm combinations: the full
  // join J is side_b times larger than OUT. The signature estimator must
  // report OUT ~ blocks*side_arm^2, J ~ side_b times that.
  StarBlockConfig cfg;
  cfg.arity = 3;  // arity 2 would classify as matmul and skip this estimator
  cfg.blocks = 6;
  cfg.side_arm = 5;
  cfg.side_b = 12;
  auto instance = GenStarBlocks<S>(cluster, cfg);
  PhysicalPlan plan = PlanQuery(cluster, instance);
  EXPECT_EQ(plan.shape, QueryShape::kStar);
  const double out_true = static_cast<double>(cfg.out());
  EXPECT_GE(plan.stats.out_estimate, out_true / 3);
  EXPECT_LE(plan.stats.out_estimate, out_true * 3);
  EXPECT_GE(plan.stats.join_estimate, plan.stats.out_estimate * 4);
}

// --- crossover sweeps --------------------------------------------------------
// Table 1's matmul row: the Theorem 1 branches cross at
// OUT* ~ sqrt(N1*N2*p). Instances well below the crossover must pick the
// output-sensitive branch; instances well above it the worst-case branch,
// and in both cases the pick must have the lower measured load.

TEST(PlannerCrossoverTest, MatMulLowOutPicksOutputSensitive) {
  mpc::Cluster cluster(16);
  // N1 = N2 = 8*4*32 = 1024, OUT = 8*4*4 = 128 << OUT* ~ 4096.
  MatMulBlockConfig cfg;
  cfg.blocks = 8;
  cfg.side_a = 4;
  cfg.side_b = 32;
  cfg.side_c = 4;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance);
  EXPECT_EQ(plan.chosen, Algorithm::kMatMulOutputSensitive) << plan.ToText();
  ExpectPredictionWithinFactor(plan, 6.0);
}

TEST(PlannerCrossoverTest, MatMulHighOutPicksWorstCase) {
  mpc::Cluster cluster(16);
  // Dense blocks: N1 = N2 = 2*24*24 = 1152, OUT = 2*24*24 = 1152 with
  // side_b = 24 -> OUT near N1*N2/side_b^2 territory; push OUT above
  // OUT* ~ sqrt(N1*N2*p) by making blocks wide and B narrow.
  MatMulBlockConfig cfg;
  cfg.blocks = 2;
  cfg.side_a = 48;
  cfg.side_b = 2;
  cfg.side_c = 48;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance);
  EXPECT_EQ(plan.chosen, Algorithm::kMatMulWorstCase) << plan.ToText();
  ExpectPredictionWithinFactor(plan, 6.0);
}

// Table 1's line row. On GenLineBlocks the instance-faithful Yannakakis
// cost (N + J + OUT)/p never exceeds Theorem 4's N*sqrt(OUT)/p term —
// J = end*mid^2*blocks while N*sqrt(OUT) >= mid^2*end*blocks^{3/2} — so
// the predicted crossover cannot flip on this family and the planner must
// keep the baseline on BOTH sweep points. What the fat-middle point
// checks is the planner's actual contract: the pick's measured load stays
// within slack of the best candidate even when Theorem 4's worst-case
// closed form (6786 predicted vs 1280 measured on this config) would
// mis-rank under naive bound comparison.

TEST(PlannerCrossoverTest, LineFatMiddlePickStaysNearMeasuredBest) {
  mpc::Cluster cluster(16);
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 8;
  cfg.side_end = 2;   // OUT = 8*4 = 32
  cfg.side_mid = 40;  // J ~ 8*2*1600, >> N*sqrt(OUT)? no: see comment
  auto instance = GenLineBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance, 1.3);
  EXPECT_EQ(plan.shape, QueryShape::kLine);
  // Both Table 1 line-row algorithms must have been scored and measured.
  EXPECT_NE(plan.CandidateFor(Algorithm::kLineTheorem4), nullptr);
  EXPECT_NE(plan.CandidateFor(Algorithm::kYannakakis), nullptr);
  ExpectPredictionWithinFactor(plan, 8.0);
}

TEST(PlannerCrossoverTest, LineThinMiddlePicksYannakakis) {
  mpc::Cluster cluster(16);
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 32;
  cfg.side_end = 6;  // OUT = 32*36 = 1152, large relative to N
  cfg.side_mid = 2;  // J stays ~ N: nothing for Theorem 4 to save
  auto instance = GenLineBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance);
  EXPECT_EQ(plan.chosen, Algorithm::kYannakakis) << plan.ToText();
  ExpectPredictionWithinFactor(plan, 8.0);
}

TEST(PlannerCrossoverTest, StarFatCenterPicksTheorem5) {
  mpc::Cluster cluster(16);
  // The predicted crossover J > N*sqrt(OUT) needs
  // arm^{arity/2-1} > arity*sqrt(blocks): one block, four long arms.
  // N = 4*10*60 = 2400, OUT = 10^4, J = 60*10^4 = 6*10^5 — Yannakakis
  // must ship the 600k-tuple intermediate while Theorem 5 never
  // materializes it.
  StarBlockConfig cfg;
  cfg.arity = 4;
  cfg.blocks = 1;
  cfg.side_arm = 10;
  cfg.side_b = 60;
  auto instance = GenStarBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance);
  EXPECT_EQ(plan.chosen, Algorithm::kStarTheorem5) << plan.ToText();
  // Theorem 5's closed form is a worst-case bound and overshoots measured
  // load heavily on benign instances; the factor here only pins the order
  // of magnitude. Calibrating per-algorithm constants from bench history
  // is a ROADMAP item.
  ExpectPredictionWithinFactor(plan, 32.0);
}

TEST(PlannerCrossoverTest, StarThinCenterPicksYannakakis) {
  mpc::Cluster cluster(16);
  StarBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 24;
  cfg.side_arm = 4;  // OUT = 24*64 = 1536
  cfg.side_b = 1;    // J == OUT: the baseline is already output-optimal
  auto instance = GenStarBlocks<S>(cluster, cfg);
  PhysicalPlan plan = ExpectPicksLowerMeasured(cluster, instance);
  EXPECT_EQ(plan.chosen, Algorithm::kYannakakis) << plan.ToText();
  ExpectPredictionWithinFactor(plan, 8.0);
}

// --- plan rendering ----------------------------------------------------------

TEST(PlanRenderTest, JsonIsValidAndCarriesPredictedAndMeasured) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(1500, 256, 4));
  PhysicalPlan plan = PlanQuery(cluster, instance);
  MeasureCandidates(cluster, instance, &plan);

  const std::string json = plan.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // Every candidate must appear with both loads filled.
  for (const Candidate& c : plan.candidates) {
    EXPECT_NE(json.find(std::string("\"algorithm\":\"") +
                        AlgorithmName(c.algorithm) + "\""),
              std::string::npos);
    EXPECT_GE(c.measured_load, 0);
  }
  for (const char* key :
       {"\"shape\"", "\"candidates\"", "\"chosen\"", "\"predicted_load\"",
        "\"measured_load\"", "\"out_estimate\"", "\"join_estimate\"",
        "\"planning\"", "\"execution\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  const std::string text = plan.ToText();
  EXPECT_NE(text.find("chosen"), std::string::npos);
  EXPECT_NE(text.find(AlgorithmName(plan.chosen)), std::string::npos);
}

TEST(PlanRenderTest, SingleEdgeAndOverride) {
  mpc::Cluster cluster(4);
  Relation<S> rel(Schema{0, 1});
  for (int i = 0; i < 50; ++i) rel.Add(Row{i % 10, i}, 1);
  TreeInstance<S> instance{JoinTree({{0, 1}}, {0}), {}};
  instance.relations.push_back(Distribute(cluster, std::move(rel)));

  PlannerOptions options;
  options.out_override = 10;
  auto exec = PlanAndRun(cluster, instance, options);
  EXPECT_EQ(exec.plan.chosen, Algorithm::kSingleRelation);
  EXPECT_EQ(exec.plan.stats.out_estimate, 10);
  EXPECT_FALSE(exec.plan.stats.out_is_estimated);
  EXPECT_EQ(exec.plan.out_actual, 10);
  EXPECT_TRUE(JsonValidator(exec.plan.ToJson()).Valid());
}

}  // namespace
}  // namespace plan
}  // namespace parjoin
