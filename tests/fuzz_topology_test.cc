// Random-topology fuzz: 40 random tree queries (random shape, random
// output sets, random data) through the universal entry point, each
// verified exactly against the reference oracle. Instances whose output
// would explode (many output attributes on dense data) are skipped by an
// oracle-side size guard so the suite stays fast while still exercising
// every code path the topology mix reaches (twigs, skeletons, star-like
// reductions, free-connex dispatch, full-aggregate scalars).

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

class FuzzTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTopologyTest, RandomTreeMatchesOracle) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  const int num_attrs = static_cast<int>(rng.Uniform(3, 11));
  JoinTree query = GenRandomQuery(num_attrs, seed, /*max_degree=*/5,
                                  /*output_prob=*/0.45);

  mpc::Cluster cluster(static_cast<int>(rng.Uniform(2, 16)));
  const std::int64_t tuples = rng.Uniform(15, 35);
  const std::int64_t dom = tuples;  // density ~1/tuples keeps OUT tame
  auto instance = GenTreeRandom<S>(cluster, query, tuples, dom, seed + 1);

  Relation<S> expected = EvaluateReference(instance);
  if (expected.size() > 100000) {
    GTEST_SKIP() << "output too large for a unit test: " << expected.size();
  }

  Relation<S> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  if (!(got.schema() == expected.schema()) &&
      got.schema().size() == expected.schema().size()) {
    Relation<S> aligned(expected.schema());
    const auto positions =
        got.schema().PositionsOf(expected.schema().attrs());
    for (const auto& t : got.tuples()) {
      aligned.Add(t.row.Select(positions), t.w);
    }
    aligned.Normalize();
    got = aligned;
  }
  EXPECT_TRUE(got == expected)
      << query.DebugString() << " seed=" << seed << ": got " << got.size()
      << " expected " << expected.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTopologyTest,
                         ::testing::Range<std::uint64_t>(1, 81));

TEST(FuzzTopologyShapeCoverage, GeneratorReachesEveryShape) {
  // The fuzz is only meaningful if the topology mix actually produces the
  // interesting shapes; count them over a larger sample.
  int counts[8] = {0};
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed * 7919 + 13);
    const int num_attrs = static_cast<int>(rng.Uniform(3, 11));
    JoinTree q = GenRandomQuery(num_attrs, seed, 5, 0.45);
    counts[static_cast<int>(q.Classify())] += 1;
  }
  EXPECT_GT(counts[static_cast<int>(QueryShape::kTree)], 10);
  EXPECT_GT(counts[static_cast<int>(QueryShape::kFreeConnex)], 10);
  // Lines/stars/star-like appear but less often; require presence of at
  // least two of the specialised shapes combined.
  const int special = counts[static_cast<int>(QueryShape::kMatMul)] +
                      counts[static_cast<int>(QueryShape::kLine)] +
                      counts[static_cast<int>(QueryShape::kStar)] +
                      counts[static_cast<int>(QueryShape::kStarLike)];
  EXPECT_GT(special, 5);
}

}  // namespace
}  // namespace parjoin
