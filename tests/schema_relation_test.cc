// Unit tests for Schema, Relation normalization semantics, distribution,
// and the remaining relational-op helpers (ValueStatMap, JoinedSchema,
// LocalJoinInto corner cases).

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"
#include "parjoin/relation/schema.h"
#include "parjoin/semiring/semirings.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

TEST(SchemaTest, IndexAndContains) {
  Schema s{10, 20, 30};
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.IndexOf(10), 0);
  EXPECT_EQ(s.IndexOf(30), 2);
  EXPECT_EQ(s.IndexOf(99), -1);
  EXPECT_TRUE(s.Contains(20));
  EXPECT_FALSE(s.Contains(21));
}

TEST(SchemaTest, PositionsOfPreservesRequestOrder) {
  Schema s{10, 20, 30};
  EXPECT_EQ(s.PositionsOf({30, 10}), (std::vector<int>{2, 0}));
}

TEST(SchemaDeathTest, PositionsOfUnknownAttrAborts) {
  Schema s{1};
  EXPECT_DEATH(s.PositionsOf({2}), "not in schema");
}

TEST(SchemaTest, CommonAttrsInLeftOrder) {
  Schema a{1, 2, 3};
  Schema b{3, 5, 2};
  EXPECT_EQ(a.CommonAttrs(b), (std::vector<AttrId>{2, 3}));
  EXPECT_EQ(b.CommonAttrs(a), (std::vector<AttrId>{3, 2}));
}

TEST(SchemaTest, EqualityIsOrderSensitive) {
  EXPECT_EQ(Schema({1, 2}), Schema({1, 2}));
  EXPECT_NE(Schema({1, 2}), Schema({2, 1}));
}

TEST(JoinedSchemaTest, ConcatenatesWithoutDuplicates) {
  EXPECT_EQ(JoinedSchema(Schema{1, 2}, Schema{2, 3}), (Schema{1, 2, 3}));
  EXPECT_EQ(JoinedSchema(Schema{1}, Schema{1}), (Schema{1}));
}

TEST(RelationTest, NormalizeMergesDuplicatesAndDropsZeros) {
  Relation<S> rel(Schema{0, 1});
  rel.Add(Row{1, 2}, 3);
  rel.Add(Row{1, 2}, 4);
  rel.Add(Row{5, 6}, 0);  // Zero() annotation vanishes
  rel.Add(Row{7, 8}, 2);
  rel.Normalize();
  ASSERT_EQ(rel.size(), 2);
  EXPECT_EQ(rel.tuples()[0].row, (Row{1, 2}));
  EXPECT_EQ(rel.tuples()[0].w, 7);
  EXPECT_EQ(rel.tuples()[1].row, (Row{7, 8}));
}

TEST(RelationTest, NormalizeSortsRows) {
  Relation<S> rel(Schema{0});
  rel.Add(Row{9}, 1);
  rel.Add(Row{1}, 1);
  rel.Add(Row{5}, 1);
  rel.Normalize();
  EXPECT_TRUE(std::is_sorted(
      rel.tuples().begin(), rel.tuples().end(),
      [](const auto& a, const auto& b) { return a.row < b.row; }));
}

TEST(RelationTest, MinPlusNormalizeDropsInfinities) {
  Relation<MinPlusSemiring> rel(Schema{0});
  rel.Add(Row{1}, MinPlusSemiring::Zero());  // +inf = no path
  rel.Add(Row{2}, 5);
  rel.Normalize();
  ASSERT_EQ(rel.size(), 1);
  EXPECT_EQ(rel.tuples()[0].row, (Row{2}));
}

TEST(RelationDeathTest, AddChecksArity) {
  Relation<S> rel(Schema{0, 1});
  EXPECT_DEATH(rel.Add(Row{1}, 2), "Check failed");
}

TEST(DistributeTest, SpreadsEvenlyAndRoundTrips) {
  mpc::Cluster cluster(8);
  Relation<S> rel(Schema{0, 1});
  for (int i = 0; i < 83; ++i) rel.Add(Row{i, i * 2}, 1);
  auto dist = Distribute(cluster, rel);
  EXPECT_EQ(dist.TotalSize(), 83);
  EXPECT_LE(dist.data.MaxPartSize(), 11);
  EXPECT_EQ(cluster.stats().total_comm, 0)
      << "initial placement must be free";
  Relation<S> back = dist.ToLocal();
  back.Normalize();
  rel.Normalize();
  EXPECT_TRUE(back == rel);
}

TEST(ValueStatMapTest, BroadcastsAndLooksUp) {
  mpc::Cluster cluster(4);
  Relation<S> rel(Schema{0, 1});
  for (int i = 0; i < 6; ++i) rel.Add(Row{i % 2, i}, 1);
  auto degrees = DegreesByAttr(cluster, Distribute(cluster, rel), 0);
  ValueStatMap stats(cluster, degrees);
  EXPECT_EQ(stats.CountOr(0, -1), 3);
  EXPECT_EQ(stats.CountOr(1, -1), 3);
  EXPECT_EQ(stats.CountOr(42, -1), -1);
  EXPECT_TRUE(stats.Contains(0));
  EXPECT_FALSE(stats.Contains(42));
  EXPECT_EQ(stats.size(), 2);
}

TEST(LocalJoinTest, CartesianWhenKeyMatchesEverything) {
  Relation<S> a(Schema{0, 1});
  a.Add(Row{1, 7}, 2);
  a.Add(Row{2, 7}, 3);
  Relation<S> b(Schema{1, 2});
  b.Add(Row{7, 5}, 10);
  b.Add(Row{7, 6}, 100);
  Relation<S> joined = LocalJoin(a, b);
  joined.Normalize();
  EXPECT_EQ(joined.size(), 4);
  EXPECT_EQ(joined.schema(), (Schema{0, 1, 2}));
  // Check one annotation product.
  for (const auto& t : joined.tuples()) {
    if (t.row == (Row{2, 7, 6})) EXPECT_EQ(t.w, 300);
  }
}

TEST(LocalJoinTest, MultiAttributeKey) {
  Relation<S> a(Schema{0, 1, 2});
  a.Add(Row{1, 2, 3}, 5);
  a.Add(Row{1, 9, 3}, 7);
  Relation<S> b(Schema{2, 1, 4});  // shares attrs 1 and 2, reordered
  b.Add(Row{3, 2, 8}, 11);
  Relation<S> joined = LocalJoin(a, b);
  joined.Normalize();
  ASSERT_EQ(joined.size(), 1);
  EXPECT_EQ(joined.tuples()[0].row, (Row{1, 2, 3, 8}));
  EXPECT_EQ(joined.tuples()[0].w, 55);
}

TEST(LocalAggregateTest, EmptyInputGivesEmptyOutput) {
  Relation<S> rel(Schema{0, 1});
  Relation<S> agg = LocalAggregate(rel, {0});
  EXPECT_EQ(agg.size(), 0);
  EXPECT_EQ(agg.schema(), (Schema{0}));
}

TEST(TupleTest, DefaultAnnotationIsOne) {
  Tuple<S> t;
  EXPECT_EQ(t.w, S::One());
}

}  // namespace
}  // namespace parjoin
