// Tests for the Status/StatusOr error model and for the ingress paths that
// now report through it: query validation (JoinTree::Create), instance
// validation, and the workload generator config validators. The contract
// under test: malformed *input* yields a typed error the caller can
// handle; only internal invariant violations abort.

#include "parjoin/common/status.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/query/instance.h"
#include "parjoin/query/join_tree.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, OkStatus());
}

TEST(StatusTest, ErrorConstructorsCarryCodeAndMessage) {
  const Status s = InvalidArgumentError("bad field");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad field");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad field");
  EXPECT_NE(s, OkStatus());
  EXPECT_NE(s, NotFoundError("bad field"));
  EXPECT_EQ(s, InvalidArgumentError("bad field"));

  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);

  StatusOr<int> err = InvalidArgumentError("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveExtractsValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> s = std::string("hello");
  EXPECT_EQ(s->size(), 5u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> err = NotFoundError("gone");
  EXPECT_DEATH((void)err.value(), "gone");
}

TEST(StatusDeathTest, CheckOkAbortsWithMessage) {
  EXPECT_DEATH(CHECK_OK(InvalidArgumentError("boom")), "boom");
}

TEST(StatusTest, CheckOkPassesOnOk) { CHECK_OK(OkStatus()); }

// The propagation macros are exercised through small helper chains.
Status FailWhenNegative(int x) {
  if (x < 0) return OutOfRangeError("negative: " + std::to_string(x));
  return OkStatus();
}

Status Chain(int x) {
  PARJOIN_RETURN_IF_ERROR(FailWhenNegative(x));
  return OkStatus();
}

StatusOr<int> DoubleOrFail(int x) {
  if (x < 0) return OutOfRangeError("cannot double " + std::to_string(x));
  return 2 * x;
}

StatusOr<int> QuadrupleOrFail(int x) {
  PARJOIN_ASSIGN_OR_RETURN(const int doubled, DoubleOrFail(x));
  return 2 * doubled;
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  const Status s = Chain(-5);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_NE(s.message().find("-5"), std::string::npos);
}

TEST(StatusTest, AssignOrReturnPropagates) {
  StatusOr<int> ok = QuadrupleOrFail(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 12);
  StatusOr<int> err = QuadrupleOrFail(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

// --- JoinTree validation ------------------------------------------------------

TEST(JoinTreeStatusTest, CreateAcceptsValidQuery) {
  StatusOr<JoinTree> t = JoinTree::Create({{0, 1}, {1, 2}}, {0, 2});
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_edges(), 2);
}

TEST(JoinTreeStatusTest, CreateRejectsEmptyQuery) {
  StatusOr<JoinTree> t = JoinTree::Create({}, {});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("at least one relation"),
            std::string::npos);
}

TEST(JoinTreeStatusTest, CreateRejectsSelfLoop) {
  StatusOr<JoinTree> t = JoinTree::Create({{1, 1}}, {1});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("self-loop"), std::string::npos);
}

TEST(JoinTreeStatusTest, CreateRejectsCycle) {
  StatusOr<JoinTree> t = JoinTree::Create({{0, 1}, {1, 2}, {2, 0}}, {0});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("not a tree"), std::string::npos);
}

TEST(JoinTreeStatusTest, CreateRejectsDisconnectedWithMatchingCounts) {
  // |E| = |V| - 1 holds (4 edges, 5 attrs) but one component is a cycle:
  // the count check passes and connectivity must catch it.
  StatusOr<JoinTree> t =
      JoinTree::Create({{0, 1}, {1, 2}, {2, 0}, {3, 4}}, {0});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("disconnected"), std::string::npos);
}

TEST(JoinTreeStatusTest, CreateRejectsUnknownOutputAttr) {
  StatusOr<JoinTree> t = JoinTree::Create({{0, 1}}, {7});
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("output attribute 7 not in query"),
            std::string::npos);
}

TEST(JoinTreeStatusTest, ConstructorStillAbortsOnInvalid) {
  EXPECT_DEATH(JoinTree({{1, 1}}, {1}), "self-loop");
}

// --- TreeInstance validation --------------------------------------------------

TEST(InstanceStatusTest, ValidInstancePasses) {
  mpc::Cluster cluster(2);
  Relation<S> r(Schema{0, 1});
  r.Add(Row{1, 2}, 1);
  TreeInstance<S> instance{JoinTree({{0, 1}}, {0}), {}};
  instance.relations.push_back(Distribute(cluster, std::move(r)));
  EXPECT_TRUE(instance.ValidateStatus().ok());
}

TEST(InstanceStatusTest, RelationCountMismatchReported) {
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  const Status s = instance.ValidateStatus();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("0 relations for 2 edges"), std::string::npos)
      << s;
}

TEST(InstanceStatusTest, SchemaEdgeMismatchReported) {
  mpc::Cluster cluster(2);
  Relation<S> r(Schema{3, 4});  // does not cover edge {0, 1}
  r.Add(Row{1, 2}, 1);
  TreeInstance<S> instance{JoinTree({{0, 1}}, {0}), {}};
  instance.relations.push_back(Distribute(cluster, std::move(r)));
  const Status s = instance.ValidateStatus();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("does not cover edge"), std::string::npos) << s;
}

// --- workload config validation -----------------------------------------------

TEST(GeneratorStatusTest, RelationDrawRejectsOverfullDomain) {
  const Status s = internal_workload::ValidateRelationDraw(10, 3, 3);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cannot fit"), std::string::npos) << s;
  EXPECT_TRUE(internal_workload::ValidateRelationDraw(9, 3, 3).ok());
  // Saturating domain product: huge domains must not overflow into a
  // spurious rejection.
  EXPECT_TRUE(internal_workload::ValidateRelationDraw(
                  1000, std::int64_t{1} << 40, std::int64_t{1} << 40)
                  .ok());
}

TEST(GeneratorStatusTest, ArityAndPositivity) {
  EXPECT_FALSE(internal_workload::ValidateArity(1).ok());
  EXPECT_TRUE(internal_workload::ValidateArity(2).ok());
  EXPECT_FALSE(internal_workload::ValidatePositive(0, "blocks").ok());
}

TEST(GeneratorStatusTest, ConfigValidators) {
  MatMulGenConfig mm;
  EXPECT_TRUE(mm.Validate().ok());
  mm.n1 = mm.dom_a * mm.dom_b + 1;
  EXPECT_FALSE(mm.Validate().ok());

  MatMulBlockConfig blocks;
  EXPECT_TRUE(blocks.Validate().ok());
  blocks.side_b = 0;
  EXPECT_FALSE(blocks.Validate().ok());

  LineBlockConfig line;
  EXPECT_TRUE(line.Validate().ok());
  line.arity = 1;
  EXPECT_FALSE(line.Validate().ok());

  StarBlockConfig star;
  EXPECT_TRUE(star.Validate().ok());
  star.side_arm = -1;
  EXPECT_FALSE(star.Validate().ok());
}

TEST(GeneratorStatusDeathTest, GeneratorChecksValidatedConfig) {
  mpc::Cluster cluster(2);
  LineBlockConfig cfg;
  cfg.arity = 1;
  EXPECT_DEATH(GenLineBlocks<S>(cluster, cfg), "arity");
}

}  // namespace
}  // namespace parjoin
