// Tests for the MPC core: cluster load accounting, exchange variants, and
// the §2.1 primitives (sort, grouped sort, reduce-by-key, parallel packing,
// multi-search).

#include "parjoin/mpc/primitives.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/parallel_for.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"

namespace parjoin {
namespace mpc {
namespace {

TEST(ClusterTest, ChargeRoundTracksMaxAndTotal) {
  Cluster c(4);
  c.ChargeRound({1, 2, 3, 4});
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().max_load, 4);
  EXPECT_EQ(c.stats().total_comm, 10);
  c.ChargeRound({10, 0, 0, 0});
  EXPECT_EQ(c.stats().rounds, 2);
  EXPECT_EQ(c.stats().max_load, 10);
  EXPECT_EQ(c.stats().total_comm, 20);
}

TEST(ClusterTest, VirtualServersChargePhysicalHosts) {
  Cluster c(2);
  // Virtual servers 0..3 map to physical 0,1,0,1.
  c.ChargeRound({1, 1, 1, 1});
  EXPECT_EQ(c.stats().max_load, 2);
}

TEST(ClusterTest, ResetStatsClears) {
  Cluster c(2);
  c.ChargeRound({5, 5});
  c.ResetStats();
  EXPECT_EQ(c.stats().rounds, 0);
  EXPECT_EQ(c.stats().max_load, 0);
}

TEST(DistTest, ScatterEvenlyBalances) {
  std::vector<int> items(103);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> d = ScatterEvenly(items, 10);
  EXPECT_EQ(d.TotalSize(), 103);
  EXPECT_LE(d.MaxPartSize(), 11);
  std::vector<int> back = d.Flatten();
  EXPECT_EQ(back, items);
}

TEST(ExchangeTest, RoutesEveryItemAndCharges) {
  Cluster c(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  Dist<int> out = Exchange(c, in, 4, [](int x) { return x % 4; });
  EXPECT_EQ(out.TotalSize(), 100);
  for (int s = 0; s < 4; ++s) {
    for (int x : out.part(s)) EXPECT_EQ(x % 4, s);
  }
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().total_comm, 100);
  EXPECT_EQ(c.stats().max_load, 25);
}

TEST(ExchangeTest, MultiReplicates) {
  Cluster c(3);
  Dist<int> in = ScatterEvenly(std::vector<int>{1, 2, 3}, 3);
  Dist<int> out = ExchangeMulti(c, in, 3, [](int, std::vector<int>* dests) {
    dests->push_back(0);
    dests->push_back(2);
  });
  EXPECT_EQ(out.part(0).size(), 3u);
  EXPECT_EQ(out.part(1).size(), 0u);
  EXPECT_EQ(out.part(2).size(), 3u);
  EXPECT_EQ(c.stats().max_load, 3);
}

TEST(ExchangeTest, BroadcastDeliversEverywhere) {
  Cluster c(5);
  Dist<int> in = ScatterEvenly(std::vector<int>{7, 8}, 5);
  Dist<int> out = Broadcast(c, in);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(out.part(s), (std::vector<int>{7, 8}));
  }
  EXPECT_EQ(c.stats().max_load, 2);
}

TEST(ExchangeTest, GatherToVirtualServerChargesPhysicalHost) {
  // A destination id >= p is a virtual server hosted on dest mod p; the
  // charge must land there and the data must still arrive intact.
  Cluster c(4);
  std::vector<int> items(24);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  std::vector<int> all = Gather(c, in, /*dest_part=*/9);
  EXPECT_EQ(all, items);
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().max_load, 24);
  EXPECT_EQ(c.stats().total_comm, 24);
}

TEST(ExchangeTest, GatherChargesDestination) {
  Cluster c(4);
  std::vector<int> items(40);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  std::vector<int> all = Gather(c, in, 0);
  EXPECT_EQ(all.size(), 40u);
  EXPECT_EQ(c.stats().max_load, 40);
}

TEST(SortTest, GloballySortsAndBalances) {
  Cluster c(8);
  Rng rng(7);
  std::vector<std::int64_t> items;
  for (int i = 0; i < 1000; ++i) items.push_back(rng.Uniform(0, 500));
  Dist<std::int64_t> in = ScatterEvenly(items, 8);
  Dist<std::int64_t> out =
      Sort(c, in, [](std::int64_t a, std::int64_t b) { return a < b; });
  EXPECT_EQ(out.TotalSize(), 1000);
  std::vector<std::int64_t> flat = out.Flatten();
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
  EXPECT_LE(out.MaxPartSize(), 125);
  EXPECT_LE(c.stats().max_load, 125);
}

TEST(SortGroupedTest, EqualKeysLandTogether) {
  Cluster c(4);
  Rng rng(11);
  struct Item {
    std::int64_t key;
    int payload;
  };
  std::vector<Item> items;
  for (int i = 0; i < 400; ++i) {
    items.push_back({rng.Uniform(0, 50), i});
  }
  Dist<Item> in = ScatterEvenly(items, 4);
  Dist<Item> out =
      SortGroupedByKey(c, in, [](const Item& it) { return it.key; });
  EXPECT_EQ(out.TotalSize(), 400);
  // Every key appears in exactly one part.
  std::map<std::int64_t, int> key_part;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& it : out.part(s)) {
      auto [pos, inserted] = key_part.emplace(it.key, s);
      if (!inserted) {
        EXPECT_EQ(pos->second, s) << "key split across parts";
      }
    }
  }
}

TEST(SortGroupedTest, RunSpanningManyPartsLandsOnRunStart) {
  // 6 parts of 3 items each; key 2 occupies the sorted middle (9 copies),
  // so its run spans parts 1, 2, and 3 (more than two consecutive
  // servers). The fix round must move the whole run to the part where it
  // starts, not just merge one boundary.
  Cluster c(6);
  struct Item {
    std::int64_t key;
    int payload;
  };
  std::vector<Item> items;
  const std::int64_t keys[] = {1, 1, 1, 2, 2, 2, 2, 2, 2,
                               2, 2, 2, 3, 3, 3, 4, 4, 4};
  for (int i = 0; i < 18; ++i) items.push_back({keys[i], i});
  Dist<Item> in = ScatterEvenly(items, 6);
  Dist<Item> out = SortGroupedByKey(
      c, in, [](const Item& it) { return it.key; }, 6);
  EXPECT_EQ(out.TotalSize(), 18);
  std::map<std::int64_t, int> key_part;
  std::map<std::int64_t, int> key_count;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& it : out.part(s)) {
      auto [pos, inserted] = key_part.emplace(it.key, s);
      if (!inserted) {
        EXPECT_EQ(pos->second, s) << "key " << it.key << " split across parts";
      }
      key_count[it.key] += 1;
    }
  }
  EXPECT_EQ(key_count[2], 9);
  // The run of key 2 starts in part 1 (sorted layout: part 0 = {1,1,1},
  // part 1 = {2,2,2}, ...), so that's where all of it must live.
  EXPECT_EQ(key_part[2], 1);
}

TEST(ReduceByKeyTest, SumsPerKey) {
  Cluster c(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  Rng rng(3);
  std::map<std::int64_t, std::int64_t> expected;
  for (int i = 0; i < 500; ++i) {
    std::int64_t k = rng.Uniform(0, 40);
    std::int64_t v = rng.Uniform(1, 9);
    items.emplace_back(k, v);
    expected[k] += v;
  }
  auto in = ScatterEvenly(items, 4);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  out.ForEach([&](const auto& kv) {
    EXPECT_EQ(got.count(kv.first), 0u) << "duplicate key in output";
    got[kv.first] = kv.second;
  });
  EXPECT_EQ(got, expected);
}

TEST(ReduceByKeyTest, SkewedKeyIsPreAggregated) {
  // All 10k items share one key: local pre-aggregation must keep the load
  // tiny (this is what makes reduce-by-key linear-load under skew).
  Cluster c(8);
  std::vector<std::pair<std::int64_t, std::int64_t>> items(
      10000, {42, 1});
  auto in = ScatterEvenly(items, 8);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  EXPECT_EQ(out.TotalSize(), 1);
  std::int64_t total = 0;
  out.ForEach([&](const auto& kv) { total = kv.second; });
  EXPECT_EQ(total, 10000);
  EXPECT_LE(c.stats().max_load, 16) << "pre-aggregation should cap the load";
}

TEST(ReduceByKeyTest, CombinesAcrossPartBoundaries) {
  Cluster c(3);
  // Keys chosen so the sorted order straddles part boundaries.
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (int i = 0; i < 9; ++i) items.emplace_back(i / 3, 1);
  auto in = ScatterEvenly(items, 3);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  out.ForEach([&](const auto& kv) { got[kv.first] += kv.second; });
  EXPECT_EQ(got, (std::map<std::int64_t, std::int64_t>{{0, 3}, {1, 3}, {2, 3}}));
  EXPECT_EQ(out.TotalSize(), 3);
}

TEST(ReduceByKeyTest, KeyRunSpanningManyPartsCombinesIntoRunStart) {
  // After pre-aggregation, one item with key 7 survives per source part;
  // the global sort spreads the run of key 7 over parts 0..3 (it starts
  // mid-part 0, after key 1). The boundary fix must walk back across
  // MULTIPLE parts and combine everything into the run's start.
  Cluster c(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> items = {
      {1, 1}, {7, 1}, {7, 2}, {7, 3}, {7, 4}, {7, 5}, {7, 6}, {9, 1}};
  auto in = ScatterEvenly(items, 4);  // 2 items per source part
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  int parts_with_key7 = 0;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& kv : out.part(s)) {
      EXPECT_EQ(got.count(kv.first), 0u) << "duplicate key " << kv.first;
      got[kv.first] = kv.second;
      if (kv.first == 7) ++parts_with_key7;
    }
  }
  EXPECT_EQ(got, (std::map<std::int64_t, std::int64_t>{
                     {1, 1}, {7, 21}, {9, 1}}));
  EXPECT_EQ(parts_with_key7, 1);
}

TEST(ParallelPackingTest, RespectsCapacityAndFill) {
  Cluster c(4);
  Rng rng(5);
  std::vector<PackedItem> items;
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    double w = rng.UniformDouble() * 0.99 + 0.01;
    items.push_back({i, w, -1});
    total += w;
  }
  auto packed = ParallelPacking(c, items);
  std::map<int, double> group_sum;
  for (const auto& it : packed) {
    ASSERT_GE(it.group, 0);
    group_sum[it.group] += it.weight;
  }
  int under_half = 0;
  for (const auto& [g, sum] : group_sum) {
    EXPECT_LE(sum, 1.0 + 1e-9);
    if (sum < 0.5) ++under_half;
  }
  EXPECT_LE(under_half, 1) << "all but one group must be at least half full";
  EXPECT_LE(static_cast<double>(group_sum.size()), 1 + 2 * total);
}

TEST(ParallelPackingTest, SingleHeavyItemsGetOwnGroups) {
  Cluster c(2);
  std::vector<PackedItem> items = {{0, 0.9, -1}, {1, 0.8, -1}, {2, 0.1, -1}};
  auto packed = ParallelPacking(c, items);
  std::map<std::int64_t, int> group_of;
  for (const auto& it : packed) group_of[it.id] = it.group;
  EXPECT_NE(group_of[0], group_of[1]);
}

TEST(ParallelRegionTest, RoundsCountLongestBranch) {
  Cluster c(4);
  {
    ParallelRegion region(c);
    region.NextBranch();
    c.ChargeRound({1, 0, 0, 0});
    c.ChargeRound({1, 0, 0, 0});  // branch 1: 2 rounds
    region.NextBranch();
    c.ChargeRound({0, 5, 0, 0});  // branch 2: 1 round
    region.NextBranch();
    for (int i = 0; i < 5; ++i) c.ChargeRound({0, 0, 1, 0});  // 5 rounds
  }
  EXPECT_EQ(c.stats().rounds, 5) << "max over branches, not the sum";
  EXPECT_EQ(c.stats().max_load, 5) << "loads unaffected";
  EXPECT_EQ(c.stats().total_comm, 12) << "total comm unaffected";
}

TEST(ParallelRegionTest, NestedRegions) {
  Cluster c(2);
  {
    ParallelRegion outer(c);
    outer.NextBranch();
    c.ChargeRound({1, 0});
    {
      ParallelRegion inner(c);
      inner.NextBranch();
      c.ChargeRound({1, 0});
      c.ChargeRound({1, 0});
      inner.NextBranch();
      c.ChargeRound({0, 1});
    }  // inner contributes max(2, 1) = 2 rounds
    outer.NextBranch();
    c.ChargeRound({0, 1});  // second outer branch: 1 round
  }
  EXPECT_EQ(c.stats().rounds, 3) << "1 + inner(2) vs 1 -> max is 3";
}

TEST(ParallelRegionTest, EmptyRegionAddsNothing) {
  Cluster c(2);
  c.ChargeRound({1, 1});
  {
    ParallelRegion region(c);
    region.NextBranch();
    region.NextBranch();
  }
  EXPECT_EQ(c.stats().rounds, 1);
}

TEST(MultiSearchTest, FindsPredecessors) {
  Cluster c(4);
  std::vector<std::int64_t> ys = {10, 20, 30};
  std::vector<std::int64_t> xs = {5, 10, 15, 25, 35};
  auto pred = MultiSearch(c, xs, ys);
  EXPECT_EQ(pred, (std::vector<std::int64_t>{kNoPredecessor, 10, 10, 20, 30}));
}

// --- Splitter merge ---------------------------------------------------------

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

TEST(SortTest, SplitterMergeMatchesPairwiseLadder) {
  // Provenance-tagged items: keys carry many duplicates and the tag
  // encodes (run, position), so any stability violation — a tie resolved
  // to the wrong run, or reordering within a run — changes the output.
  using Tagged = std::pair<std::int64_t, std::int64_t>;
  const auto by_key = [](const Tagged& a, const Tagged& b) {
    return a.first < b.first;
  };
  Rng rng(11);
  std::vector<std::vector<Tagged>> runs(7);
  for (int r = 0; r < 7; ++r) {
    const int len = r == 3 ? 0 : 2000 + 700 * r;  // skewed, one run empty
    auto& run = runs[static_cast<size_t>(r)];
    for (int i = 0; i < len; ++i) {
      run.push_back({rng.Uniform(0, 199), r * 1000000 + i});
    }
    std::stable_sort(run.begin(), run.end(), by_key);
  }
  const auto pairwise =
      internal_primitives::MergeSortedRunsPairwise(runs, by_key);
  ThreadOverrideGuard guard;
  SetParallelForThreads(4);  // total > kSplitterMergeMinTotal: splitter path
  const auto splitter = internal_primitives::MergeSortedRuns(runs, by_key);
  ASSERT_EQ(splitter.size(), pairwise.size());
  EXPECT_EQ(splitter, pairwise);
  for (size_t i = 1; i < splitter.size(); ++i) {
    ASSERT_LE(splitter[i - 1].first, splitter[i].first)
        << "not sorted at " << i;
    if (splitter[i - 1].first == splitter[i].first) {
      ASSERT_LT(splitter[i - 1].second, splitter[i].second)
          << "tie broken against run order at " << i;
    }
  }
}

// --- Zero-weight packing ----------------------------------------------------

TEST(ParallelPackingTest, ZeroWeightItemsRideAlongWithoutNewGroups) {
  Cluster c(2);
  std::vector<PackedItem> items = {{0, 0.6, -1}, {1, 0.0, -1}, {2, 0.4, -1},
                                   {3, 0.0, -1}, {4, 0.3, -1}, {5, 0.0, -1}};
  const double total = 0.6 + 0.4 + 0.3;
  auto packed = ParallelPacking(c, items);
  std::map<int, double> group_sum;
  for (const auto& it : packed) {
    ASSERT_GE(it.group, 0) << "item " << it.id << " left unassigned";
    group_sum[it.group] += it.weight;
  }
  for (const auto& [g, sum] : group_sum) EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_LE(static_cast<double>(group_sum.size()), 1 + 2 * total)
      << "zero-weight items must not open groups of their own";
}

TEST(ParallelPackingTest, AllZeroWeightsShareOneGroup) {
  // m <= 1 + 2*sum(w) forces a single group when every weight is zero.
  Cluster c(2);
  std::vector<PackedItem> items = {{0, 0.0, -1}, {1, 0.0, -1}, {2, 0.0, -1}};
  auto packed = ParallelPacking(c, items);
  ASSERT_EQ(packed.size(), 3u);
  for (const auto& it : packed) EXPECT_EQ(it.group, 0);
}

// --- Consuming ReduceByKey overload -----------------------------------------

TEST(ReduceByKeyTest, ConsumingOverloadMatchesCopyingOverload) {
  Rng rng(9);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (int i = 0; i < 600; ++i) {
    items.emplace_back(rng.Uniform(0, 29), rng.Uniform(1, 9));
  }
  auto in = ScatterEvenly(std::move(items), 5);
  const auto snapshot = in.parts();
  const auto key = [](const auto& kv) { return kv.first; };
  const auto add = [](auto* acc, const auto& kv) { acc->second += kv.second; };
  Cluster c_copy(5);
  auto copied = ReduceByKey(c_copy, in, key, add);
  EXPECT_EQ(in.parts(), snapshot) << "copying overload must keep input intact";
  Cluster c_move(5);
  auto moved = ReduceByKey(c_move, std::move(in), key, add);
  EXPECT_EQ(moved.parts(), copied.parts());
  EXPECT_EQ(c_move.stats().rounds, c_copy.stats().rounds);
  EXPECT_EQ(c_move.stats().max_load, c_copy.stats().max_load);
  EXPECT_EQ(c_move.stats().total_comm, c_copy.stats().total_comm);
  EXPECT_EQ(c_move.stats().critical_path, c_copy.stats().critical_path);
}

// --- Adversarial fix-round shapes -------------------------------------------
//
// Executable specification for both fix rounds, stated per item of the
// globally sorted array: an item's run home is the part (under
// ScatterEvenly's ceil(n/num_parts) chunking) holding the first element of
// its equal-key run; every item placed outside its run home charges one
// unit to the home; SortGroupedByKey relocates items to their run homes
// (in global order); ReduceByKey emits one combined item per key at the
// run home, after per-input-part pre-aggregation. Each shape is checked
// against this oracle, for charge parity (primitive stats = sort-only
// stats + exactly the oracle's fix round), and for bit-identical outputs
// and charges at thread counts 1 vs 4.

using KV = std::pair<std::int64_t, std::int64_t>;

std::int64_t KeyOfKV(const KV& kv) { return kv.first; }
bool KVByKey(const KV& a, const KV& b) { return a.first < b.first; }
void AddKV(KV* acc, const KV& kv) { acc->second += kv.second; }

struct ShapeTrace {
  std::vector<std::vector<KV>> grouped;
  std::vector<std::vector<KV>> reduced;
  Cluster::Stats grouped_stats;
  Cluster::Stats reduced_stats;
};

ShapeTrace RunShape(const std::vector<std::vector<KV>>& input, int p,
                    int num_parts, int threads) {
  SetParallelForThreads(threads);
  ShapeTrace trace;
  {
    Cluster c(p);
    trace.grouped =
        SortGroupedByKey(c, Dist<KV>(input), KeyOfKV, num_parts).parts();
    trace.grouped_stats = c.stats();
  }
  {
    Cluster c(p);
    trace.reduced =
        ReduceByKey(c, Dist<KV>(input), KeyOfKV, AddKV, num_parts).parts();
    trace.reduced_stats = c.stats();
  }
  return trace;
}

struct FixOracle {
  std::vector<std::vector<KV>> grouped;
  std::vector<std::vector<KV>> reduced;
  std::vector<std::int64_t> grouped_received;
  std::vector<std::int64_t> reduced_received;
  std::vector<std::vector<KV>> pre_parts;  // pre-aggregated input per part
};

FixOracle ComputeFixOracle(const std::vector<std::vector<KV>>& input,
                           int num_parts) {
  FixOracle o;
  o.grouped.resize(static_cast<size_t>(num_parts));
  o.reduced.resize(static_cast<size_t>(num_parts));
  o.grouped_received.assign(static_cast<size_t>(num_parts), 0);
  o.reduced_received.assign(static_cast<size_t>(num_parts), 0);

  std::vector<KV> all;
  for (const auto& part : input) {
    all.insert(all.end(), part.begin(), part.end());
  }
  std::stable_sort(all.begin(), all.end(), KVByKey);
  {
    const std::int64_t n = static_cast<std::int64_t>(all.size());
    const std::int64_t chunk = (n + num_parts - 1) / num_parts;
    std::int64_t i = 0;
    while (i < n) {
      std::int64_t j = i;
      while (j < n && all[static_cast<size_t>(j)].first ==
                          all[static_cast<size_t>(i)].first) {
        ++j;
      }
      const std::int64_t home = i / chunk;
      for (std::int64_t t = i; t < j; ++t) {
        o.grouped[static_cast<size_t>(home)].push_back(
            all[static_cast<size_t>(t)]);
        if (t / chunk != home) ++o.grouped_received[static_cast<size_t>(home)];
      }
      i = j;
    }
  }

  o.pre_parts.resize(input.size());
  std::vector<KV> pre_all;
  for (size_t s = 0; s < input.size(); ++s) {
    std::vector<KV> local = input[s];
    std::stable_sort(local.begin(), local.end(), KVByKey);
    auto& dst = o.pre_parts[s];
    for (const auto& kv : local) {
      if (!dst.empty() && dst.back().first == kv.first) {
        dst.back().second += kv.second;
      } else {
        dst.push_back(kv);
      }
    }
    pre_all.insert(pre_all.end(), dst.begin(), dst.end());
  }
  std::stable_sort(pre_all.begin(), pre_all.end(), KVByKey);
  {
    const std::int64_t n = static_cast<std::int64_t>(pre_all.size());
    const std::int64_t chunk = (n + num_parts - 1) / num_parts;
    std::int64_t i = 0;
    while (i < n) {
      std::int64_t j = i;
      KV folded = pre_all[static_cast<size_t>(i)];
      while (++j < n && pre_all[static_cast<size_t>(j)].first == folded.first) {
        folded.second += pre_all[static_cast<size_t>(j)].second;
      }
      const std::int64_t home = i / chunk;
      o.reduced[static_cast<size_t>(home)].push_back(folded);
      for (std::int64_t t = i; t < j; ++t) {
        if (t / chunk != home) ++o.reduced_received[static_cast<size_t>(home)];
      }
      i = j;
    }
  }
  return o;
}

Cluster::Stats SortOnlyStats(const std::vector<std::vector<KV>>& parts, int p,
                             int num_parts) {
  Cluster c(p);
  Sort(c, Dist<KV>(parts), KVByKey, num_parts);
  return c.stats();
}

// got must be sort_only plus exactly one fix round receiving `fix`
// (virtual-part loads, folded v mod p onto physical servers).
void ExpectSortPlusFixRound(const Cluster::Stats& got,
                            const Cluster::Stats& sort_only,
                            const std::vector<std::int64_t>& fix, int p) {
  std::vector<std::int64_t> physical(static_cast<size_t>(p), 0);
  for (size_t v = 0; v < fix.size(); ++v) {
    physical[v % static_cast<size_t>(p)] += fix[v];
  }
  std::int64_t fix_max = 0;
  std::int64_t fix_total = 0;
  for (std::int64_t load : physical) {
    fix_max = std::max(fix_max, load);
    fix_total += load;
  }
  EXPECT_EQ(got.rounds, sort_only.rounds + 1);
  EXPECT_EQ(got.total_comm, sort_only.total_comm + fix_total);
  EXPECT_EQ(got.max_load, std::max(sort_only.max_load, fix_max));
  EXPECT_EQ(got.critical_path, sort_only.critical_path + fix_max);
}

void ExpectStatsEq(const Cluster::Stats& a, const Cluster::Stats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_EQ(a.total_comm, b.total_comm);
  EXPECT_EQ(a.critical_path, b.critical_path);
}

void ExpectShapeMatchesOracleAndThreads(
    const std::vector<std::vector<KV>>& input, int p, int num_parts) {
  ThreadOverrideGuard guard;
  const int resolved = num_parts == 0 ? p : num_parts;
  const ShapeTrace seq = RunShape(input, p, num_parts, 1);
  const ShapeTrace par = RunShape(input, p, num_parts, 4);
  SetParallelForThreads(0);
  EXPECT_EQ(par.grouped, seq.grouped) << "grouped output varies with threads";
  EXPECT_EQ(par.reduced, seq.reduced) << "reduced output varies with threads";
  ExpectStatsEq(par.grouped_stats, seq.grouped_stats);
  ExpectStatsEq(par.reduced_stats, seq.reduced_stats);
  const FixOracle oracle = ComputeFixOracle(input, resolved);
  EXPECT_EQ(seq.grouped, oracle.grouped);
  EXPECT_EQ(seq.reduced, oracle.reduced);
  ExpectSortPlusFixRound(seq.grouped_stats, SortOnlyStats(input, p, num_parts),
                         oracle.grouped_received, p);
  ExpectSortPlusFixRound(seq.reduced_stats,
                         SortOnlyStats(oracle.pre_parts, p, num_parts),
                         oracle.reduced_received, p);
}

TEST(FixRoundShapesTest, KeyRunsSpanningManyParts) {
  // 3 keys over 240 items on p=8 (chunk 30): every run covers >2 parts.
  Rng rng(21);
  std::vector<KV> items;
  for (int i = 0; i < 240; ++i) items.emplace_back(rng.Uniform(0, 2), i);
  auto in = ScatterEvenly(std::move(items), 8);
  ExpectShapeMatchesOracleAndThreads(in.parts(), 8, 0);
}

TEST(FixRoundShapesTest, MostlyEmptyLeadingInputParts) {
  // Input parts 0..5 empty; a dominant smallest key re-empties most
  // leading output parts after the fix (the shape whose per-item backward
  // walk used to be O(N*p)).
  std::vector<std::vector<KV>> input(8);
  for (int i = 0; i < 150; ++i) input[6].emplace_back(1, i);
  for (int i = 0; i < 30; ++i) input[7].emplace_back(2 + i % 5, 1000 + i);
  ExpectShapeMatchesOracleAndThreads(input, 8, 0);
}

TEST(FixRoundShapesTest, AllOneKeyCollapsesToOnePart) {
  std::vector<KV> items;
  for (int i = 0; i < 64; ++i) items.emplace_back(7, i);
  auto in = ScatterEvenly(std::move(items), 8);
  ExpectShapeMatchesOracleAndThreads(in.parts(), 8, 0);
}

TEST(FixRoundShapesTest, NumPartsAboveClusterP) {
  // 16 virtual parts on 4 physical servers: charges fold v mod p.
  Rng rng(31);
  std::vector<KV> items;
  for (int i = 0; i < 400; ++i) items.emplace_back(rng.Uniform(0, 9), i);
  auto in = ScatterEvenly(std::move(items), 4);
  ExpectShapeMatchesOracleAndThreads(in.parts(), 4, 16);
}

TEST(FixRoundShapesTest, NumPartsBelowClusterP) {
  Rng rng(33);
  std::vector<KV> items;
  for (int i = 0; i < 300; ++i) items.emplace_back(rng.Uniform(0, 5), i);
  auto in = ScatterEvenly(std::move(items), 8);
  ExpectShapeMatchesOracleAndThreads(in.parts(), 8, 3);
}

}  // namespace
}  // namespace mpc
}  // namespace parjoin
