// Tests for the MPC core: cluster load accounting, exchange variants, and
// the §2.1 primitives (sort, grouped sort, reduce-by-key, parallel packing,
// multi-search).

#include "parjoin/mpc/primitives.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"

namespace parjoin {
namespace mpc {
namespace {

TEST(ClusterTest, ChargeRoundTracksMaxAndTotal) {
  Cluster c(4);
  c.ChargeRound({1, 2, 3, 4});
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().max_load, 4);
  EXPECT_EQ(c.stats().total_comm, 10);
  c.ChargeRound({10, 0, 0, 0});
  EXPECT_EQ(c.stats().rounds, 2);
  EXPECT_EQ(c.stats().max_load, 10);
  EXPECT_EQ(c.stats().total_comm, 20);
}

TEST(ClusterTest, VirtualServersChargePhysicalHosts) {
  Cluster c(2);
  // Virtual servers 0..3 map to physical 0,1,0,1.
  c.ChargeRound({1, 1, 1, 1});
  EXPECT_EQ(c.stats().max_load, 2);
}

TEST(ClusterTest, ResetStatsClears) {
  Cluster c(2);
  c.ChargeRound({5, 5});
  c.ResetStats();
  EXPECT_EQ(c.stats().rounds, 0);
  EXPECT_EQ(c.stats().max_load, 0);
}

TEST(DistTest, ScatterEvenlyBalances) {
  std::vector<int> items(103);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> d = ScatterEvenly(items, 10);
  EXPECT_EQ(d.TotalSize(), 103);
  EXPECT_LE(d.MaxPartSize(), 11);
  std::vector<int> back = d.Flatten();
  EXPECT_EQ(back, items);
}

TEST(ExchangeTest, RoutesEveryItemAndCharges) {
  Cluster c(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  Dist<int> out = Exchange(c, in, 4, [](int x) { return x % 4; });
  EXPECT_EQ(out.TotalSize(), 100);
  for (int s = 0; s < 4; ++s) {
    for (int x : out.part(s)) EXPECT_EQ(x % 4, s);
  }
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().total_comm, 100);
  EXPECT_EQ(c.stats().max_load, 25);
}

TEST(ExchangeTest, MultiReplicates) {
  Cluster c(3);
  Dist<int> in = ScatterEvenly(std::vector<int>{1, 2, 3}, 3);
  Dist<int> out = ExchangeMulti(c, in, 3, [](int, std::vector<int>* dests) {
    dests->push_back(0);
    dests->push_back(2);
  });
  EXPECT_EQ(out.part(0).size(), 3u);
  EXPECT_EQ(out.part(1).size(), 0u);
  EXPECT_EQ(out.part(2).size(), 3u);
  EXPECT_EQ(c.stats().max_load, 3);
}

TEST(ExchangeTest, BroadcastDeliversEverywhere) {
  Cluster c(5);
  Dist<int> in = ScatterEvenly(std::vector<int>{7, 8}, 5);
  Dist<int> out = Broadcast(c, in);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(out.part(s), (std::vector<int>{7, 8}));
  }
  EXPECT_EQ(c.stats().max_load, 2);
}

TEST(ExchangeTest, GatherToVirtualServerChargesPhysicalHost) {
  // A destination id >= p is a virtual server hosted on dest mod p; the
  // charge must land there and the data must still arrive intact.
  Cluster c(4);
  std::vector<int> items(24);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  std::vector<int> all = Gather(c, in, /*dest_part=*/9);
  EXPECT_EQ(all, items);
  EXPECT_EQ(c.stats().rounds, 1);
  EXPECT_EQ(c.stats().max_load, 24);
  EXPECT_EQ(c.stats().total_comm, 24);
}

TEST(ExchangeTest, GatherChargesDestination) {
  Cluster c(4);
  std::vector<int> items(40);
  std::iota(items.begin(), items.end(), 0);
  Dist<int> in = ScatterEvenly(items, 4);
  std::vector<int> all = Gather(c, in, 0);
  EXPECT_EQ(all.size(), 40u);
  EXPECT_EQ(c.stats().max_load, 40);
}

TEST(SortTest, GloballySortsAndBalances) {
  Cluster c(8);
  Rng rng(7);
  std::vector<std::int64_t> items;
  for (int i = 0; i < 1000; ++i) items.push_back(rng.Uniform(0, 500));
  Dist<std::int64_t> in = ScatterEvenly(items, 8);
  Dist<std::int64_t> out =
      Sort(c, in, [](std::int64_t a, std::int64_t b) { return a < b; });
  EXPECT_EQ(out.TotalSize(), 1000);
  std::vector<std::int64_t> flat = out.Flatten();
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
  EXPECT_LE(out.MaxPartSize(), 125);
  EXPECT_LE(c.stats().max_load, 125);
}

TEST(SortGroupedTest, EqualKeysLandTogether) {
  Cluster c(4);
  Rng rng(11);
  struct Item {
    std::int64_t key;
    int payload;
  };
  std::vector<Item> items;
  for (int i = 0; i < 400; ++i) {
    items.push_back({rng.Uniform(0, 50), i});
  }
  Dist<Item> in = ScatterEvenly(items, 4);
  Dist<Item> out =
      SortGroupedByKey(c, in, [](const Item& it) { return it.key; });
  EXPECT_EQ(out.TotalSize(), 400);
  // Every key appears in exactly one part.
  std::map<std::int64_t, int> key_part;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& it : out.part(s)) {
      auto [pos, inserted] = key_part.emplace(it.key, s);
      if (!inserted) {
        EXPECT_EQ(pos->second, s) << "key split across parts";
      }
    }
  }
}

TEST(SortGroupedTest, RunSpanningManyPartsLandsOnRunStart) {
  // 6 parts of 3 items each; key 2 occupies the sorted middle (9 copies),
  // so its run spans parts 1, 2, and 3 (more than two consecutive
  // servers). The fix round must move the whole run to the part where it
  // starts, not just merge one boundary.
  Cluster c(6);
  struct Item {
    std::int64_t key;
    int payload;
  };
  std::vector<Item> items;
  const std::int64_t keys[] = {1, 1, 1, 2, 2, 2, 2, 2, 2,
                               2, 2, 2, 3, 3, 3, 4, 4, 4};
  for (int i = 0; i < 18; ++i) items.push_back({keys[i], i});
  Dist<Item> in = ScatterEvenly(items, 6);
  Dist<Item> out = SortGroupedByKey(
      c, in, [](const Item& it) { return it.key; }, 6);
  EXPECT_EQ(out.TotalSize(), 18);
  std::map<std::int64_t, int> key_part;
  std::map<std::int64_t, int> key_count;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& it : out.part(s)) {
      auto [pos, inserted] = key_part.emplace(it.key, s);
      if (!inserted) {
        EXPECT_EQ(pos->second, s) << "key " << it.key << " split across parts";
      }
      key_count[it.key] += 1;
    }
  }
  EXPECT_EQ(key_count[2], 9);
  // The run of key 2 starts in part 1 (sorted layout: part 0 = {1,1,1},
  // part 1 = {2,2,2}, ...), so that's where all of it must live.
  EXPECT_EQ(key_part[2], 1);
}

TEST(ReduceByKeyTest, SumsPerKey) {
  Cluster c(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  Rng rng(3);
  std::map<std::int64_t, std::int64_t> expected;
  for (int i = 0; i < 500; ++i) {
    std::int64_t k = rng.Uniform(0, 40);
    std::int64_t v = rng.Uniform(1, 9);
    items.emplace_back(k, v);
    expected[k] += v;
  }
  auto in = ScatterEvenly(items, 4);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  out.ForEach([&](const auto& kv) {
    EXPECT_EQ(got.count(kv.first), 0u) << "duplicate key in output";
    got[kv.first] = kv.second;
  });
  EXPECT_EQ(got, expected);
}

TEST(ReduceByKeyTest, SkewedKeyIsPreAggregated) {
  // All 10k items share one key: local pre-aggregation must keep the load
  // tiny (this is what makes reduce-by-key linear-load under skew).
  Cluster c(8);
  std::vector<std::pair<std::int64_t, std::int64_t>> items(
      10000, {42, 1});
  auto in = ScatterEvenly(items, 8);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  EXPECT_EQ(out.TotalSize(), 1);
  std::int64_t total = 0;
  out.ForEach([&](const auto& kv) { total = kv.second; });
  EXPECT_EQ(total, 10000);
  EXPECT_LE(c.stats().max_load, 16) << "pre-aggregation should cap the load";
}

TEST(ReduceByKeyTest, CombinesAcrossPartBoundaries) {
  Cluster c(3);
  // Keys chosen so the sorted order straddles part boundaries.
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (int i = 0; i < 9; ++i) items.emplace_back(i / 3, 1);
  auto in = ScatterEvenly(items, 3);
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  out.ForEach([&](const auto& kv) { got[kv.first] += kv.second; });
  EXPECT_EQ(got, (std::map<std::int64_t, std::int64_t>{{0, 3}, {1, 3}, {2, 3}}));
  EXPECT_EQ(out.TotalSize(), 3);
}

TEST(ReduceByKeyTest, KeyRunSpanningManyPartsCombinesIntoRunStart) {
  // After pre-aggregation, one item with key 7 survives per source part;
  // the global sort spreads the run of key 7 over parts 0..3 (it starts
  // mid-part 0, after key 1). The boundary fix must walk back across
  // MULTIPLE parts and combine everything into the run's start.
  Cluster c(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> items = {
      {1, 1}, {7, 1}, {7, 2}, {7, 3}, {7, 4}, {7, 5}, {7, 6}, {9, 1}};
  auto in = ScatterEvenly(items, 4);  // 2 items per source part
  auto out = ReduceByKey(
      c, in, [](const auto& kv) { return kv.first; },
      [](auto* acc, const auto& kv) { acc->second += kv.second; });
  std::map<std::int64_t, std::int64_t> got;
  int parts_with_key7 = 0;
  for (int s = 0; s < out.num_parts(); ++s) {
    for (const auto& kv : out.part(s)) {
      EXPECT_EQ(got.count(kv.first), 0u) << "duplicate key " << kv.first;
      got[kv.first] = kv.second;
      if (kv.first == 7) ++parts_with_key7;
    }
  }
  EXPECT_EQ(got, (std::map<std::int64_t, std::int64_t>{
                     {1, 1}, {7, 21}, {9, 1}}));
  EXPECT_EQ(parts_with_key7, 1);
}

TEST(ParallelPackingTest, RespectsCapacityAndFill) {
  Cluster c(4);
  Rng rng(5);
  std::vector<PackedItem> items;
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    double w = rng.UniformDouble() * 0.99 + 0.01;
    items.push_back({i, w, -1});
    total += w;
  }
  auto packed = ParallelPacking(c, items);
  std::map<int, double> group_sum;
  for (const auto& it : packed) {
    ASSERT_GE(it.group, 0);
    group_sum[it.group] += it.weight;
  }
  int under_half = 0;
  for (const auto& [g, sum] : group_sum) {
    EXPECT_LE(sum, 1.0 + 1e-9);
    if (sum < 0.5) ++under_half;
  }
  EXPECT_LE(under_half, 1) << "all but one group must be at least half full";
  EXPECT_LE(static_cast<double>(group_sum.size()), 1 + 2 * total);
}

TEST(ParallelPackingTest, SingleHeavyItemsGetOwnGroups) {
  Cluster c(2);
  std::vector<PackedItem> items = {{0, 0.9, -1}, {1, 0.8, -1}, {2, 0.1, -1}};
  auto packed = ParallelPacking(c, items);
  std::map<std::int64_t, int> group_of;
  for (const auto& it : packed) group_of[it.id] = it.group;
  EXPECT_NE(group_of[0], group_of[1]);
}

TEST(ParallelRegionTest, RoundsCountLongestBranch) {
  Cluster c(4);
  {
    ParallelRegion region(c);
    region.NextBranch();
    c.ChargeRound({1, 0, 0, 0});
    c.ChargeRound({1, 0, 0, 0});  // branch 1: 2 rounds
    region.NextBranch();
    c.ChargeRound({0, 5, 0, 0});  // branch 2: 1 round
    region.NextBranch();
    for (int i = 0; i < 5; ++i) c.ChargeRound({0, 0, 1, 0});  // 5 rounds
  }
  EXPECT_EQ(c.stats().rounds, 5) << "max over branches, not the sum";
  EXPECT_EQ(c.stats().max_load, 5) << "loads unaffected";
  EXPECT_EQ(c.stats().total_comm, 12) << "total comm unaffected";
}

TEST(ParallelRegionTest, NestedRegions) {
  Cluster c(2);
  {
    ParallelRegion outer(c);
    outer.NextBranch();
    c.ChargeRound({1, 0});
    {
      ParallelRegion inner(c);
      inner.NextBranch();
      c.ChargeRound({1, 0});
      c.ChargeRound({1, 0});
      inner.NextBranch();
      c.ChargeRound({0, 1});
    }  // inner contributes max(2, 1) = 2 rounds
    outer.NextBranch();
    c.ChargeRound({0, 1});  // second outer branch: 1 round
  }
  EXPECT_EQ(c.stats().rounds, 3) << "1 + inner(2) vs 1 -> max is 3";
}

TEST(ParallelRegionTest, EmptyRegionAddsNothing) {
  Cluster c(2);
  c.ChargeRound({1, 1});
  {
    ParallelRegion region(c);
    region.NextBranch();
    region.NextBranch();
  }
  EXPECT_EQ(c.stats().rounds, 1);
}

TEST(MultiSearchTest, FindsPredecessors) {
  Cluster c(4);
  std::vector<std::int64_t> ys = {10, 20, 30};
  std::vector<std::int64_t> xs = {5, 10, 15, 25, 35};
  auto pred = MultiSearch(c, xs, ys);
  EXPECT_EQ(pred, (std::vector<std::int64_t>{kNoPredecessor, 10, 10, 20, 30}));
}

}  // namespace
}  // namespace mpc
}  // namespace parjoin
