// The observability layer's two contracts (src/parjoin/obs/):
//  * attaching a TraceRecorder / profile sink NEVER perturbs execution —
//    outputs, charged loads, and rounds stay bit-identical with tracing
//    on vs. off, at any thread count (the observer seam is read-only);
//  * the persisted artifacts round-trip exactly — trace JSONL through
//    ParseTraceJsonl, profile stores through ToJson/FromJson (with an
//    associative, empty-identity Merge), calibration tables through the
//    calibration file — and the fitted factors are the run-weighted
//    geometric mean of measured/predicted, applied by the planner.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/obs/json_util.h"
#include "parjoin/obs/metrics.h"
#include "parjoin/obs/profile.h"
#include "parjoin/obs/trace.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/plan/executor.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

struct RunOutcome {
  std::vector<std::vector<Tuple<S>>> parts;
  mpc::Cluster::Stats stats;
};

// Plans and runs a matmul-blocks instance, optionally traced and under
// the resilience protocol (faults exercise the recovery event sites).
RunOutcome RunPlanned(int threads, obs::TraceRecorder* trace,
                      bool resilient) {
  SetParallelForThreads(threads);
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(2000, 4096, 4, 3);
  mpc::Cluster cluster(8, 11);
  if (trace != nullptr) cluster.SetObserver(trace);
  TreeInstance<S> instance = GenMatMulBlocks<S>(cluster, cfg);
  plan::ExecutionOptions exec;
  if (resilient) {
    exec.faults.enabled = true;
    exec.faults.seed = 5;
    exec.checkpoint_interval = 2;
  }
  auto exec_result = plan::PlanAndRun(cluster, std::move(instance),
                                      plan::PlannerOptions{}, exec);
  RunOutcome outcome;
  outcome.parts = exec_result.result.data.parts();
  outcome.stats = exec_result.plan.execution_stats;
  return outcome;
}

void ExpectSameOutcome(const RunOutcome& got, const RunOutcome& want) {
  ASSERT_EQ(got.parts.size(), want.parts.size());
  for (size_t s = 0; s < got.parts.size(); ++s) {
    ASSERT_EQ(got.parts[s].size(), want.parts[s].size()) << "part " << s;
    for (size_t i = 0; i < got.parts[s].size(); ++i) {
      EXPECT_TRUE(got.parts[s][i].row == want.parts[s][i].row)
          << "part " << s << " #" << i;
      EXPECT_EQ(got.parts[s][i].w, want.parts[s][i].w)
          << "part " << s << " #" << i;
    }
  }
  EXPECT_EQ(got.stats.rounds, want.stats.rounds);
  EXPECT_EQ(got.stats.max_load, want.stats.max_load);
  EXPECT_EQ(got.stats.total_comm, want.stats.total_comm);
  EXPECT_EQ(got.stats.critical_path, want.stats.critical_path);
  EXPECT_EQ(got.stats.recovery_comm, want.stats.recovery_comm);
}

TEST(TraceTest, TracingNeverPerturbsExecution) {
  ThreadOverrideGuard guard;
  const RunOutcome baseline = RunPlanned(1, nullptr, /*resilient=*/false);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::TraceRecorder trace("obs_test");
    const RunOutcome traced =
        RunPlanned(threads, &trace, /*resilient=*/false);
    ExpectSameOutcome(traced, baseline);
    EXPECT_FALSE(trace.rounds().empty());
    const RunOutcome untraced =
        RunPlanned(threads, nullptr, /*resilient=*/false);
    ExpectSameOutcome(untraced, baseline);
  }
}

TEST(TraceTest, TracingNeverPerturbsRecovery) {
  ThreadOverrideGuard guard;
  const RunOutcome baseline = RunPlanned(1, nullptr, /*resilient=*/true);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::TraceRecorder trace("obs_test");
    const RunOutcome traced =
        RunPlanned(threads, &trace, /*resilient=*/true);
    ExpectSameOutcome(traced, baseline);
    // The resilience protocol must show up in the trace: checkpoint
    // replication rounds are flagged as recovery traffic.
    bool saw_recovery_round = false;
    for (const obs::TraceRound& r : trace.rounds()) {
      saw_recovery_round = saw_recovery_round || r.recovery;
    }
    EXPECT_TRUE(saw_recovery_round);
    EXPECT_FALSE(trace.events().empty());
  }
}

TEST(TraceTest, JsonlRoundTripsExactly) {
  ThreadOverrideGuard guard;
  obs::TraceRecorder trace("roundtrip");
  trace.Annotate("p", "8");
  trace.Annotate("query", "matmul blocks");
  RunPlanned(1, &trace, /*resilient=*/true);
  ASSERT_FALSE(trace.rounds().empty());
  ASSERT_FALSE(trace.events().empty());

  auto parsed = obs::ParseTraceJsonl(trace.ToJsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->label, "roundtrip");
  EXPECT_EQ(parsed->annotations.at("p"), "8");
  EXPECT_EQ(parsed->annotations.at("query"), "matmul blocks");
  ASSERT_EQ(parsed->rounds.size(), trace.rounds().size());
  for (size_t i = 0; i < trace.rounds().size(); ++i) {
    const obs::TraceRound& want = trace.rounds()[i];
    const obs::TraceRound& got = parsed->rounds[i];
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.round, want.round);
    EXPECT_EQ(got.scope, want.scope);
    EXPECT_EQ(got.max_load, want.max_load);
    EXPECT_EQ(got.tuples, want.tuples);
    EXPECT_EQ(got.recovery, want.recovery);
    EXPECT_EQ(got.straggle, want.straggle);
    EXPECT_EQ(got.resumed, want.resumed);
    EXPECT_EQ(got.wall_ms, want.wall_ms);  // shortest-round-trip doubles
  }
  ASSERT_EQ(parsed->events.size(), trace.events().size());
  for (size_t i = 0; i < trace.events().size(); ++i) {
    const obs::TraceEvent& want = trace.events()[i];
    const obs::TraceEvent& got = parsed->events[i];
    EXPECT_EQ(got.seq, want.seq);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.round, want.round);
    EXPECT_EQ(got.detail, want.detail);
    EXPECT_EQ(got.server, want.server);
    EXPECT_EQ(got.factor, want.factor);
    EXPECT_EQ(got.moved, want.moved);
    EXPECT_EQ(got.wall_ms, want.wall_ms);
  }
  // Scope attribution: the executed primitives label their rounds.
  bool saw_scoped_round = false;
  for (const obs::TraceRound& r : parsed->rounds) {
    saw_scoped_round = saw_scoped_round || !r.scope.empty();
  }
  EXPECT_TRUE(saw_scoped_round);
}

TEST(TraceTest, ParseRejectsMalformedTraces) {
  EXPECT_FALSE(obs::ParseTraceJsonl("").ok());
  EXPECT_FALSE(obs::ParseTraceJsonl("not json\n").ok());
  EXPECT_FALSE(obs::ParseTraceJsonl(
                   "{\"type\":\"meta\",\"schema\":\"v0\",\"label\":\"x\"}\n")
                   .ok());
  const Status bad_line =
      obs::ParseTraceJsonl(
          "{\"type\":\"meta\",\"schema\":\"parjoin-trace-v1\","
          "\"label\":\"x\"}\n"
          "{\"type\":\"round\"}\n")
          .status();
  EXPECT_FALSE(bad_line.ok());
  EXPECT_NE(bad_line.message().find("line 2"), std::string::npos)
      << bad_line;
}

plan::ExecutionRecord MakeRecord(plan::Algorithm a, QueryShape shape,
                                 double predicted, std::int64_t measured) {
  plan::ExecutionRecord rec;
  rec.algorithm = a;
  rec.shape = shape;
  rec.p = 4;
  rec.input_size = 1024;
  rec.predicted_load = predicted;
  rec.measured_load = measured;
  rec.wall_ms = 1.5;
  return rec;
}

TEST(ProfileTest, MergeIsAssociativeWithEmptyIdentity) {
  obs::ProfileStore a;
  a.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                               QueryShape::kMatMul, 10, 20));
  obs::ProfileStore b;
  b.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                               QueryShape::kMatMul, 10, 80));
  obs::ProfileStore c;
  c.RecordExecution(MakeRecord(plan::Algorithm::kYannakakis,
                               QueryShape::kTree, 100, 50));

  obs::ProfileStore ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  obs::ProfileStore a_bc = b;
  a_bc.Merge(c);
  a_bc.Merge(a);  // also checks commutativity
  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.total_runs(), 3);
  EXPECT_EQ(ab_c.cells().size(), 2u);

  obs::ProfileStore with_empty = ab_c;
  with_empty.Merge(obs::ProfileStore{});
  EXPECT_TRUE(with_empty == ab_c);
}

TEST(ProfileTest, JsonRoundTripsExactlyAndFileMergeIsStable) {
  obs::ProfileStore store;
  store.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                                   QueryShape::kMatMul, 10.25, 20));
  store.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                                   QueryShape::kMatMul, 10.25, 80));
  store.RecordExecution(MakeRecord(plan::Algorithm::kLineTheorem4,
                                   QueryShape::kLine, 7, 7));

  auto parsed = obs::ProfileStore::FromJson(store.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == store);
  // Serializing the parse-back reproduces the bytes: save/load/save across
  // runs cannot drift.
  EXPECT_EQ(parsed->ToJson(), store.ToJson());

  const std::string path =
      ::testing::TempDir() + "/obs_test_profile.json";
  ASSERT_TRUE(store.SaveFile(path).ok());
  auto loaded = obs::ProfileStore::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(*loaded == store);
}

TEST(ProfileTest, LoadOrEmptyToleratesOnlyMissingFiles) {
  auto missing = obs::ProfileStore::LoadOrEmpty(
      ::testing::TempDir() + "/obs_test_does_not_exist.json");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_TRUE(missing->empty());

  const std::string path = ::testing::TempDir() + "/obs_test_garbage.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a profile\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(obs::ProfileStore::LoadOrEmpty(path).ok());
}

TEST(ProfileTest, DropsSamplesWithoutALearnableRatio) {
  obs::ProfileStore store;
  store.RecordExecution(MakeRecord(plan::Algorithm::kYannakakis,
                                   QueryShape::kTree, 0, 20));
  store.RecordExecution(MakeRecord(plan::Algorithm::kYannakakis,
                                   QueryShape::kTree, 10, 0));
  EXPECT_TRUE(store.empty());
}

TEST(CalibrationTest, FitIsTheGeometricMeanOfRatios) {
  obs::ProfileStore store;
  // Ratios 2 and 8 for the same cell: geometric mean 4.
  store.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                                   QueryShape::kMatMul, 10, 20));
  store.RecordExecution(MakeRecord(plan::Algorithm::kMatMulWorstCase,
                                   QueryShape::kMatMul, 10, 80));
  const plan::CalibrationTable table = obs::FitCalibration(store);
  EXPECT_NEAR(table.Factor(plan::Algorithm::kMatMulWorstCase,
                           QueryShape::kMatMul),
              4.0, 1e-12);
  // The any-shape default is fitted from the same runs.
  EXPECT_NEAR(table.Factor(plan::Algorithm::kMatMulWorstCase,
                           QueryShape::kLine),
              4.0, 1e-12);
  // Unfitted algorithms keep the constant-1 prediction.
  EXPECT_EQ(table.Factor(plan::Algorithm::kYannakakis, QueryShape::kTree),
            1.0);
  // min_runs gates low-support cells.
  EXPECT_TRUE(obs::FitCalibration(store, /*min_runs=*/3).empty());
}

TEST(CalibrationTest, ShapeSpecificEntriesWinOverDefaults) {
  plan::CalibrationTable table;
  table.SetDefault(plan::Algorithm::kYannakakis, 2.0, 4);
  table.Set(plan::Algorithm::kYannakakis, QueryShape::kStar, 3.0, 2);
  EXPECT_EQ(table.Factor(plan::Algorithm::kYannakakis, QueryShape::kStar),
            3.0);
  EXPECT_EQ(table.Factor(plan::Algorithm::kYannakakis, QueryShape::kTree),
            2.0);
  EXPECT_EQ(table.Factor(plan::Algorithm::kHyperCube, QueryShape::kTree),
            1.0);
  // Upsert replaces in place.
  table.Set(plan::Algorithm::kYannakakis, QueryShape::kStar, 5.0, 6);
  EXPECT_EQ(table.Factor(plan::Algorithm::kYannakakis, QueryShape::kStar),
            5.0);
  EXPECT_EQ(table.entries().size(), 2u);
}

TEST(CalibrationTest, CalibrationFileRoundTrips) {
  plan::CalibrationTable table;
  table.SetDefault(plan::Algorithm::kMatMulOutputSensitive, 2.5, 12);
  table.Set(plan::Algorithm::kMatMulOutputSensitive, QueryShape::kMatMul,
            1.75, 6);
  table.Set(plan::Algorithm::kLineTheorem4, QueryShape::kLine, 0.5, 3);

  const std::string path =
      ::testing::TempDir() + "/obs_test_calibration.json";
  ASSERT_TRUE(obs::SaveCalibrationFile(table, path).ok());
  auto loaded = obs::LoadCalibrationFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->entries().size(), table.entries().size());
  for (size_t i = 0; i < table.entries().size(); ++i) {
    const auto& want = table.entries()[i];
    const auto& got = loaded->entries()[i];
    EXPECT_EQ(got.algorithm, want.algorithm);
    EXPECT_EQ(got.has_shape, want.has_shape);
    if (want.has_shape) EXPECT_EQ(got.shape, want.shape);
    EXPECT_EQ(got.factor, want.factor);
    EXPECT_EQ(got.runs, want.runs);
  }
}

TEST(CalibrationTest, NameLookupsRoundTripAndRejectUnknowns) {
  for (plan::Algorithm a :
       {plan::Algorithm::kYannakakis, plan::Algorithm::kHyperCube,
        plan::Algorithm::kMatMulWorstCase,
        plan::Algorithm::kMatMulOutputSensitive,
        plan::Algorithm::kLineTheorem4, plan::Algorithm::kStarTheorem5,
        plan::Algorithm::kStarLikeLemma7, plan::Algorithm::kTreeTheorem6,
        plan::Algorithm::kSingleRelation}) {
    auto back = plan::AlgorithmFromName(plan::AlgorithmName(a));
    ASSERT_TRUE(back.ok()) << plan::AlgorithmName(a);
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(plan::AlgorithmFromName("no_such_algorithm").ok());
  for (QueryShape s :
       {QueryShape::kSingleEdge, QueryShape::kMatMul, QueryShape::kLine,
        QueryShape::kStar, QueryShape::kStarLike, QueryShape::kFreeConnex,
        QueryShape::kTree}) {
    auto back = QueryShapeFromName(QueryShapeName(s));
    ASSERT_TRUE(back.ok()) << QueryShapeName(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(QueryShapeFromName("no_such_shape").ok());
}

TEST(CalibrationTest, FactorsReRankCandidates) {
  plan::InstanceStats stats;
  stats.p = 16;
  stats.num_relations = 2;
  stats.n1 = 10000;
  stats.n2 = 10000;
  stats.total_input = 20000;
  // At the unit-constant crossover OUT* = sqrt(N1*N2*p) the two matmul
  // strategies tie, so any factor > 1 on the unit winner flips the order.
  stats.out_estimate = 40000;
  stats.join_estimate = 400000;
  stats.out_is_estimated = true;

  const std::vector<plan::Candidate> unit =
      plan::ScoreCandidates(QueryShape::kMatMul, stats, nullptr);
  ASSERT_GE(unit.size(), 2u);
  EXPECT_EQ(unit.front().calib_factor, 1.0);

  plan::CalibrationTable table;
  table.Set(unit.front().algorithm, QueryShape::kMatMul, 8.0, 10);
  const std::vector<plan::Candidate> calibrated =
      plan::ScoreCandidates(QueryShape::kMatMul, stats, &table);
  EXPECT_NE(calibrated.front().algorithm, unit.front().algorithm);
  const plan::Candidate* moved = nullptr;
  for (const plan::Candidate& c : calibrated) {
    if (c.algorithm == unit.front().algorithm) moved = &c;
  }
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->calib_factor, 8.0);
  EXPECT_NEAR(moved->predicted_load, 8.0 * unit.front().predicted_load,
              1e-9 * unit.front().predicted_load);
}

TEST(CalibrationTest, ProfileRecordsDecalibratedPredictions) {
  // Executing under a calibrated planner must store constant-1 ratios:
  // fitted factors never feed their own fit.
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(2000, 4096, 4, 3);
  plan::CalibrationTable table;
  for (plan::Algorithm a :
       {plan::Algorithm::kYannakakis, plan::Algorithm::kHyperCube,
        plan::Algorithm::kMatMulWorstCase,
        plan::Algorithm::kMatMulOutputSensitive}) {
    table.SetDefault(a, 3.0, 5);
  }
  obs::ProfileStore profile;
  plan::PlannerOptions planner;
  planner.calibration = &table;
  plan::ExecutionOptions exec;
  exec.profile = &profile;
  mpc::Cluster cluster(8, 11);
  TreeInstance<S> instance = GenMatMulBlocks<S>(cluster, cfg);
  auto run = plan::PlanAndRun(cluster, std::move(instance), planner, exec);
  EXPECT_TRUE(run.plan.calibrated);

  ASSERT_EQ(profile.cells().size(), 1u);
  const auto& [key, cell] = *profile.cells().begin();
  EXPECT_EQ(key.algorithm, run.plan.executed);
  EXPECT_EQ(cell.runs, 1);
  const double uncalibrated = plan::PredictLoad(
      run.plan.executed, run.plan.shape, run.plan.stats, nullptr);
  EXPECT_NEAR(cell.sum_predicted, uncalibrated, 1e-9 * uncalibrated);
  EXPECT_EQ(cell.sum_measured,
            static_cast<double>(run.plan.measured_load));
}

TEST(MetricsTest, CountersGaugesAndHistograms) {
  obs::MetricsRegistry registry;
  obs::Counter* hits = registry.GetCounter("hits");
  EXPECT_EQ(hits, registry.GetCounter("hits"));  // get-or-create
  hits->Increment();
  hits->Increment(4);
  EXPECT_EQ(hits->Value(), 5);

  obs::Gauge* depth = registry.GetGauge("depth");
  depth->Set(3.5);
  EXPECT_EQ(depth->Value(), 3.5);

  obs::Histogram* latency =
      registry.GetHistogram("latency_ms", {1, 2, 4, 8});
  EXPECT_EQ(latency->Count(), 0);
  EXPECT_EQ(latency->Quantile(0.5), 0);  // empty
  for (double v : {0.5, 1.5, 3.0, 6.0, 20.0}) latency->Observe(v);
  EXPECT_EQ(latency->Count(), 5);
  EXPECT_EQ(latency->Sum(), 31.0);
  EXPECT_EQ(latency->Min(), 0.5);
  EXPECT_EQ(latency->Max(), 20.0);
  // Quantiles are bucket-interpolated but always clamped to [min, max]
  // and monotone in q.
  const double p50 = latency->Quantile(0.5);
  const double p99 = latency->Quantile(0.99);
  EXPECT_GE(p50, latency->Min());
  EXPECT_LE(p50, latency->Max());
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, latency->Max());

  const std::string json = registry.ToJson();
  auto parsed_counters_pos = json.find("\"counters\"");
  auto parsed_gauges_pos = json.find("\"gauges\"");
  auto parsed_hist_pos = json.find("\"histograms\"");
  EXPECT_NE(parsed_counters_pos, std::string::npos);
  EXPECT_NE(parsed_gauges_pos, std::string::npos);
  EXPECT_NE(parsed_hist_pos, std::string::npos);
  EXPECT_NE(json.find("\"hits\":5"), std::string::npos) << json;
}

TEST(JsonUtilTest, FlatObjectsRoundTrip) {
  auto parsed = obs::ParseFlatJsonObject(
      "{\"s\":\"a\\\"b\\\\c\",\"n\":-2.5,\"i\":7,\"b\":true}", "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto s = obs::GetString(*parsed, "s", "test");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "a\"b\\c");
  auto n = obs::GetNumber(*parsed, "n", "test");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, -2.5);
  auto i = obs::GetInt(*parsed, "i", "test");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, 7);
  auto b = obs::GetBool(*parsed, "b", "test");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
  EXPECT_FALSE(obs::GetString(*parsed, "missing", "test").ok());
  EXPECT_FALSE(obs::GetString(*parsed, "n", "test").ok());  // wrong type

  EXPECT_FALSE(obs::ParseFlatJsonObject("{\"a\":1", "t").ok());
  EXPECT_FALSE(obs::ParseFlatJsonObject("{\"a\":{}}", "t").ok());  // nested
  EXPECT_FALSE(obs::ParseFlatJsonObject("{\"a\":1,\"a\":2}", "t").ok());
  EXPECT_FALSE(obs::ParseFlatJsonObject("{\"a\":1} x", "t").ok());
}

TEST(JsonUtilTest, DoublesPrintShortestRoundTrip) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1.0 / 3.0, 1e-9, 12345678.875}) {
    const std::string text = obs::JsonDouble(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}

}  // namespace
}  // namespace parjoin
