// Tests for ParallelFor: coverage, determinism vs. sequential execution,
// and integration determinism (an algorithm's output and cost ledger are
// identical whatever the thread count — threading only touches local,
// share-nothing computation).

#include "parjoin/common/parallel_for.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](int i) { hits[static_cast<size_t>(i)] += 1; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, HandlesSmallAndEmptyRanges) {
  int count = 0;
  ParallelFor(0, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, PerSlotWritesMatchSequential) {
  constexpr int kN = 257;
  std::vector<std::int64_t> parallel_out(kN), sequential_out(kN);
  auto work = [](int i) {
    // Unsigned: the multiply wraps, and signed wraparound is UB at -O3.
    std::uint64_t acc = static_cast<std::uint64_t>(i);
    for (int k = 0; k < 100; ++k) acc = acc * 6364136223846793005ULL + 1;
    return static_cast<std::int64_t>(acc);
  };
  ParallelFor(kN, [&](int i) {
    parallel_out[static_cast<size_t>(i)] = work(i);
  });
  for (int i = 0; i < kN; ++i) {
    sequential_out[static_cast<size_t>(i)] = work(i);
  }
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, ThreadCountIsAtLeastOne) {
  EXPECT_GE(ParallelForThreads(), 1);
}

TEST(ParallelForTest, SetParallelForThreadsOverridesAndRestores) {
  const int default_threads = ParallelForThreads();
  SetParallelForThreads(3);
  EXPECT_EQ(ParallelForThreads(), 3);
  // The override must actually drive execution: with 3 workers every
  // index is still visited exactly once.
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(100, [&](int i) { hits[static_cast<size_t>(i)] += 1; });
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
  }
  SetParallelForThreads(0);
  EXPECT_EQ(ParallelForThreads(), default_threads);
}

TEST(ParallelForDeathTest, ReconfigureInsideRegionDies) {
  // "Not safe to call while a ParallelFor is running" is an enforced
  // invariant since PR 3: reconfiguring mid-region CHECK-fails even on
  // the sequential path (the region is still live).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SetParallelForThreads(1);
  EXPECT_DEATH(ParallelFor(4, [](int) { SetParallelForThreads(2); }),
               "while a ParallelFor region is running");
  SetParallelForThreads(0);
}

TEST(ParallelForDeathTest, ReconfigureFromPoolWorkerDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SetParallelForThreads(2);
  EXPECT_DEATH(ParallelFor(8,
                           [](int) {
                             if (internal_parallel::OnPoolWorker()) {
                               SetParallelForThreads(3);
                             }
                           }),
               "pool worker|while a ParallelFor region is running");
  SetParallelForThreads(0);
}

TEST(ParallelForTest, ReconfigureBetweenRegionsStaysLegal) {
  // The enforced invariant must not reject the documented-legal pattern:
  // reconfigure on the main thread with no region live.
  for (int t = 1; t <= 4; ++t) {
    SetParallelForThreads(t);
    int count = 0;
    std::vector<std::atomic<int>> hits(50);
    ParallelFor(50, [&](int i) { hits[static_cast<size_t>(i)] += 1; });
    for (int i = 0; i < 50; ++i) count += hits[static_cast<size_t>(i)].load();
    EXPECT_EQ(count, 50) << "threads " << t;
  }
  SetParallelForThreads(0);
  EXPECT_EQ(internal_parallel::ActiveRegions(), 0);
}

TEST(ParallelForIntegrationTest, MatMulResultAndLedgerThreadIndependent) {
  // The ledger (charged before local computation) and the normalized
  // result must be identical however many threads execute the local
  // joins. We cannot change PARJOIN_THREADS per-process here, but running
  // the same instance twice through the (threaded) path and against the
  // oracle pins determinism end-to-end.
  using S = CountingSemiring;
  MatMulGenConfig cfg;
  cfg.n1 = 2000;
  cfg.n2 = 1800;
  cfg.dom_a = 200;
  cfg.dom_b = 60;
  cfg.dom_c = 200;
  cfg.skew_b = 0.8;
  cfg.seed = 5;

  mpc::Cluster c1(16), c2(16);
  auto i1 = GenMatMulRandom<S>(c1, cfg);
  auto i2 = GenMatMulRandom<S>(c2, cfg);
  Relation<S> r1 = MatMul(c1, i1.relations[0], i1.relations[1]).ToLocal();
  Relation<S> r2 = MatMul(c2, i2.relations[0], i2.relations[1]).ToLocal();
  r1.Normalize();
  r2.Normalize();
  EXPECT_TRUE(r1 == r2);
  EXPECT_EQ(c1.stats().max_load, c2.stats().max_load);
  EXPECT_EQ(c1.stats().rounds, c2.stats().rounds);
  EXPECT_EQ(c1.stats().total_comm, c2.stats().total_comm);

  Relation<S> expected = EvaluateReference(i1);
  EXPECT_TRUE(r1 == expected);
}

}  // namespace
}  // namespace parjoin
