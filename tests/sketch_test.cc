// Tests for the KMV sketch and the §2.2 OUT estimation on chains.

#include "parjoin/sketch/kmv.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "parjoin/common/hash.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/sketch/out_estimate.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

TEST(KmvTest, ExactBelowK) {
  Kmv kmv;
  SeededHash h(1);
  for (int i = 0; i < Kmv::kK - 1; ++i) kmv.AddHash(h(i));
  EXPECT_DOUBLE_EQ(kmv.Estimate(), Kmv::kK - 1);
}

TEST(KmvTest, DeduplicatesHashes) {
  Kmv kmv;
  SeededHash h(1);
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 5; ++i) kmv.AddHash(h(i));
  }
  EXPECT_EQ(kmv.size(), 5);
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 5);
}

TEST(KmvTest, EstimateWithinConstantFactor) {
  // Median over repetitions should be within a small constant factor.
  for (std::int64_t truth : {100, 1000, 10000}) {
    std::vector<double> estimates;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Kmv kmv;
      SeededHash h(seed * 7919);
      for (std::int64_t i = 0; i < truth; ++i) kmv.AddHash(h(i));
      estimates.push_back(kmv.Estimate());
    }
    std::nth_element(estimates.begin(),
                     estimates.begin() + estimates.size() / 2,
                     estimates.end());
    const double median = estimates[estimates.size() / 2];
    EXPECT_GT(median, truth * 0.5) << "truth " << truth;
    EXPECT_LT(median, truth * 2.0) << "truth " << truth;
  }
}

TEST(KmvTest, MergeEqualsUnion) {
  SeededHash h(42);
  Kmv a, b, both;
  for (int i = 0; i < 500; ++i) {
    a.AddHash(h(i));
    both.AddHash(h(i));
  }
  for (int i = 300; i < 900; ++i) {
    b.AddHash(h(i));
    both.AddHash(h(i));
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
}

TEST(KmvTest, EmptyEstimatesZero) {
  Kmv kmv;
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 0);
}

using S = CountingSemiring;

TEST(OutEstimateTest, MatMulChainExactCountsOnBlocks) {
  mpc::Cluster cluster(4);
  MatMulBlockConfig cfg;
  cfg.blocks = 6;
  cfg.side_a = 5;
  cfg.side_b = 3;
  cfg.side_c = 5;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  OutEstimate est = EstimateChainOut(cluster, instance.relations, {0, 1, 2});
  // Every A value reaches exactly side_c distinct C values (< k: exact).
  for (const auto& [a, out_a] : est.per_source) {
    EXPECT_EQ(out_a, cfg.side_c) << "a=" << a;
  }
  EXPECT_EQ(est.total, cfg.out());
}

TEST(OutEstimateTest, RandomMatMulWithinConstantFactor) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 3000;
  cfg.n2 = 3000;
  cfg.dom_a = 150;
  cfg.dom_b = 40;
  cfg.dom_c = 2000;
  cfg.seed = 5;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  // Ground truth via the reference evaluator.
  Relation<S> truth = EvaluateReference(instance);
  const std::int64_t out_true = truth.size();
  OutEstimate est = EstimateChainOut(cluster, instance.relations, {0, 1, 2});
  EXPECT_GT(est.total, out_true / 3);
  EXPECT_LT(est.total, out_true * 3);
}

TEST(OutEstimateTest, LongerChain) {
  mpc::Cluster cluster(4);
  auto instance = GenLineRandom<S>(cluster, 4, 500, 60, 0, 9);
  Relation<S> truth = EvaluateReference(instance);
  OutEstimate est =
      EstimateChainOut(cluster, instance.relations, {0, 1, 2, 3, 4});
  const std::int64_t out_true = truth.size();
  if (out_true == 0) {
    EXPECT_EQ(est.total, 0);
  } else {
    EXPECT_GT(est.total, out_true / 3);
    EXPECT_LT(est.total, out_true * 3);
  }
}

TEST(OutEstimateTest, ChargesLinearLoad) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 4000;
  cfg.n2 = 4000;
  cfg.dom_a = 400;
  cfg.dom_b = 100;
  cfg.dom_c = 400;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  cluster.ResetStats();
  EstimateChainOut(cluster, instance.relations, {0, 1, 2});
  const std::int64_t n = 8000;
  // Linear load per repetition; the constant covers hash-partition skew.
  EXPECT_LE(cluster.stats().max_load, 6 * n / cluster.p());
}

TEST(OutEstimateTest, PerSourceEstimatesTrackTruthOnSkewedData) {
  mpc::Cluster cluster(4);
  MatMulGenConfig cfg;
  cfg.n1 = 2000;
  cfg.n2 = 2000;
  cfg.dom_a = 100;  // few sources, large OUT_a each
  cfg.dom_b = 30;
  cfg.dom_c = 800;
  cfg.skew_b = 0.8;
  cfg.seed = 13;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  Relation<S> truth = EvaluateReference(instance);
  std::map<Value, std::int64_t> out_a;
  for (const auto& t : truth.tuples()) out_a[t.row[0]] += 1;
  OutEstimate est = EstimateChainOut(cluster, instance.relations, {0, 1, 2});
  for (const auto& [a, cnt] : out_a) {
    const std::int64_t got = est.ForValue(a);
    EXPECT_GT(got, cnt / 4) << "a=" << a;
    EXPECT_LT(got, cnt * 4) << "a=" << a;
  }
}

}  // namespace
}  // namespace parjoin
