// Tests for the optimal two-way MPC join and the distributed Yannakakis
// baseline: correctness against the reference evaluator across query
// shapes, semirings, skew levels, and cluster sizes; load-bound property
// checks on skewed inputs.

#include "parjoin/algorithms/yannakakis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

template <SemiringC S>
void ExpectMatchesReference(mpc::Cluster& cluster,
                            const TreeInstance<S>& instance) {
  Relation<S> expected = EvaluateReference(instance);
  DistRelation<S> got_dist = YannakakisJoinAggregate(cluster, instance);
  Relation<S> got = got_dist.ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << instance.query.DebugString() << ": got " << got.size()
      << " tuples, expected " << expected.size();
}

using S = CountingSemiring;

TEST(TwoWayJoinTest, MatchesLocalJoin) {
  mpc::Cluster cluster(4);
  MatMulGenConfig cfg;
  cfg.n1 = 300;
  cfg.n2 = 250;
  cfg.dom_a = 40;
  cfg.dom_b = 15;
  cfg.dom_c = 40;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  DistRelation<S> joined =
      TwoWayJoin(cluster, instance.relations[0], instance.relations[1]);
  Relation<S> got = joined.ToLocal();
  got.Normalize();
  Relation<S> expected = LocalJoin(instance.relations[0].ToLocal(),
                                   instance.relations[1].ToLocal());
  expected.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(TwoWayJoinTest, HeavyValueGridKeepsLoadNearSqrtJOverP) {
  // One ultra-heavy join value: d_r = d_s = 300 => J ~ 9*10^4. Plain hash
  // partitioning would put 600 tuples on one server; the grid must cap the
  // load near sqrt(J/p) + N/p.
  const int p = 16;
  mpc::Cluster cluster(p);
  Relation<S> r(Schema{0, 1});
  Relation<S> s(Schema{1, 2});
  for (int i = 0; i < 300; ++i) {
    r.Add(Row{i, 7}, 1);
    s.Add(Row{7, i}, 1);
  }
  // Background light values.
  for (int i = 0; i < 500; ++i) {
    r.Add(Row{1000 + i, 100 + (i % 50)}, 1);
    s.Add(Row{100 + (i % 50), 1000 + i}, 1);
  }
  auto dr = Distribute(cluster, r);
  auto ds = Distribute(cluster, s);
  cluster.ResetStats();
  DistRelation<S> joined = TwoWayJoin(cluster, dr, ds);
  const double j = 300.0 * 300 + 500.0 * 10;
  const double bound = 800.0 / p + std::sqrt(j / p);
  EXPECT_LE(cluster.stats().max_load, static_cast<std::int64_t>(6 * bound));
  // And the join itself is correct.
  Relation<S> got = joined.ToLocal();
  got.Normalize();
  Relation<S> expected = LocalJoin(dr.ToLocal(), ds.ToLocal());
  expected.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(TwoWayJoinTest, DisjointKeysGiveEmptyJoin) {
  mpc::Cluster cluster(4);
  Relation<S> r(Schema{0, 1});
  r.Add(Row{1, 10}, 1);
  Relation<S> s(Schema{1, 2});
  s.Add(Row{20, 2}, 1);
  auto joined = TwoWayJoin(cluster, Distribute(cluster, r),
                           Distribute(cluster, s));
  EXPECT_EQ(joined.TotalSize(), 0);
}

template <typename S>
class YannakakisSemiringTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(YannakakisSemiringTest, AllSemirings);

TYPED_TEST(YannakakisSemiringTest, MatMul) {
  using Sr = TypeParam;
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 400;
  cfg.n2 = 350;
  cfg.dom_a = 60;
  cfg.dom_b = 25;
  cfg.dom_c = 60;
  cfg.seed = 17;
  auto instance = GenMatMulRandom<Sr>(cluster, cfg);
  ExpectMatchesReference(cluster, instance);
}

TYPED_TEST(YannakakisSemiringTest, LineQuery) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenLineRandom<Sr>(cluster, 4, 200, 40, 0.4, 23);
  ExpectMatchesReference(cluster, instance);
}

TYPED_TEST(YannakakisSemiringTest, StarQuery) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenStarRandom<Sr>(cluster, 3, 120, 30, 20, 0.6, 29);
  ExpectMatchesReference(cluster, instance);
}

TYPED_TEST(YannakakisSemiringTest, TreeQueryFig2) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenTreeRandom<Sr>(cluster, Fig2Query(), 20, 18, 31);
  ExpectMatchesReference(cluster, instance);
}

class YannakakisParamTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(YannakakisParamTest, MatMulAcrossClusterSizesAndSeeds) {
  const auto [p, seed] = GetParam();
  mpc::Cluster cluster(p);
  MatMulGenConfig cfg;
  cfg.n1 = 500;
  cfg.n2 = 450;
  cfg.dom_a = 70;
  cfg.dom_b = 30;
  cfg.dom_c = 70;
  cfg.skew_b = 0.5;
  cfg.seed = seed;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  ExpectMatchesReference(cluster, instance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, YannakakisParamTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(1u, 2u, 3u)));

TEST(YannakakisTest, NoPushdownModeMatchesReference) {
  mpc::Cluster cluster(8);
  auto instance = GenLineRandom<S>(cluster, 3, 150, 30, 0.5, 43);
  Relation<S> expected = EvaluateReference(instance);
  YannakakisOptions options;
  options.aggregate_pushdown = false;
  Relation<S> got =
      YannakakisJoinAggregate(cluster, instance, options).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(YannakakisTest, PushdownNeverWorseOnFatMiddle) {
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 4;
  cfg.side_end = 4;
  cfg.side_mid = 20;
  mpc::Cluster c1(16), c2(16);
  auto i1 = GenLineBlocks<S>(c1, cfg);
  auto i2 = GenLineBlocks<S>(c2, cfg);
  YannakakisOptions no_push;
  no_push.aggregate_pushdown = false;
  YannakakisJoinAggregate(c1, std::move(i1), no_push);
  YannakakisJoinAggregate(c2, std::move(i2));
  EXPECT_GE(c1.stats().max_load, c2.stats().max_load);
}

TEST(YannakakisTest, BlockInstanceExactOut) {
  mpc::Cluster cluster(8);
  MatMulBlockConfig cfg;
  cfg.blocks = 5;
  cfg.side_a = 6;
  cfg.side_b = 3;
  cfg.side_c = 6;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  auto result = YannakakisJoinAggregate(cluster, instance);
  EXPECT_EQ(result.TotalSize(), cfg.out());
}

TEST(YannakakisTest, StarLikeFig1Query) {
  mpc::Cluster cluster(4);
  auto instance = GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 12, 8, 37);
  ExpectMatchesReference(cluster, instance);
}

TEST(YannakakisTest, ScalarAggregate) {
  mpc::Cluster cluster(4);
  auto instance = GenTreeRandom<S>(
      cluster, JoinTree({{0, 1}, {1, 2}}, {}), 60, 10, 41);
  ExpectMatchesReference(cluster, instance);
}

TEST(YannakakisTest, EmptyJoinGivesEmptyResult) {
  mpc::Cluster cluster(4);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{1, 5}, 1);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{6, 2}, 1);  // no shared B value
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  auto result = YannakakisJoinAggregate(cluster, instance);
  EXPECT_EQ(result.TotalSize(), 0);
}

}  // namespace
}  // namespace parjoin
