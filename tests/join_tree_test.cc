// Tests for JoinTree: validation, classification, free-connex detection,
// traversal orders, twig decomposition, and the canned Figure 1/2 queries.

#include "parjoin/query/join_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

TEST(JoinTreeTest, MatMulClassification) {
  JoinTree q({{0, 1}, {1, 2}}, {0, 2});
  EXPECT_EQ(q.Classify(), QueryShape::kMatMul);
  EXPECT_FALSE(q.IsFreeConnex());
}

TEST(JoinTreeTest, LineClassification) {
  JoinTree q({{0, 1}, {1, 2}, {2, 3}}, {0, 3});
  EXPECT_EQ(q.Classify(), QueryShape::kLine);
  std::vector<AttrId> path;
  EXPECT_TRUE(q.IsPath(&path));
  ASSERT_EQ(path.size(), 4u);
  EXPECT_TRUE(path.front() == 0 || path.front() == 3);
}

TEST(JoinTreeTest, StarClassification) {
  JoinTree q({{1, 0}, {2, 0}, {3, 0}}, {1, 2, 3});
  EXPECT_EQ(q.Classify(), QueryShape::kStar);
  AttrId center = -1;
  EXPECT_TRUE(q.IsStarShaped(&center));
  EXPECT_EQ(center, 0);
}

TEST(JoinTreeTest, TwoRelationStarWithCenterOutputIsFreeConnex) {
  // y = {A, B, C} over R1(A,B) ⋈ R2(B,C): outputs connected.
  JoinTree q({{0, 1}, {1, 2}}, {0, 1, 2});
  EXPECT_TRUE(q.IsFreeConnex());
  EXPECT_EQ(q.Classify(), QueryShape::kFreeConnex);
}

TEST(JoinTreeTest, SingleEdge) {
  JoinTree q({{0, 1}}, {0});
  EXPECT_EQ(q.Classify(), QueryShape::kSingleEdge);
}

TEST(JoinTreeTest, StarLikeClassification) {
  JoinTree fig1 = Fig1StarLikeQuery();
  EXPECT_EQ(fig1.Classify(), QueryShape::kStarLike);
  EXPECT_EQ(fig1.HighDegreeAttrs(), std::vector<AttrId>{0});
}

TEST(JoinTreeTest, PathWithInteriorOutputIsTreeShape) {
  // A0 - A1 - A2 - A3 with y = {0, 2, 3}: outputs 2,3 adjacent but 0 is
  // separated, so not free-connex; interior output makes it a general tree.
  JoinTree q({{0, 1}, {1, 2}, {2, 3}}, {0, 2, 3});
  EXPECT_FALSE(q.IsFreeConnex());
  EXPECT_EQ(q.Classify(), QueryShape::kTree);
}

TEST(JoinTreeTest, OutputValidation) {
  JoinTree q({{0, 1}, {1, 2}}, {0, 2});
  EXPECT_TRUE(q.IsOutput(0));
  EXPECT_FALSE(q.IsOutput(1));
  EXPECT_TRUE(q.IsOutput(2));
}

TEST(JoinTreeDeathTest, RejectsDisconnected) {
  // Two components: 0-1 and 2-3, but 4 attrs with 2 edges fails the count
  // check first; build a cycle instead to hit connectivity/tree checks.
  EXPECT_DEATH(JoinTree({{0, 1}, {2, 3}}, {0}), "tree");
}

TEST(JoinTreeDeathTest, RejectsUnknownOutput) {
  EXPECT_DEATH(JoinTree({{0, 1}}, {7}), "not in query");
}

TEST(JoinTreeTest, BottomUpOrderIsChildrenFirst) {
  JoinTree q = Fig2Query();
  const auto order = q.BottomUpOrder(1);
  ASSERT_EQ(static_cast<int>(order.size()), q.num_edges());
  // Every edge appears once, and each edge's parent-side edge (if any)
  // appears later in the order.
  std::set<int> seen;
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_TRUE(seen.insert(order[i].edge_index).second);
    for (size_t j = i + 1; j < order.size(); ++j) {
      // The parent attr of edge i must not be the child attr of an earlier
      // edge on the same path; weaker invariant: the edge incident to
      // parent_attr going further up appears later.
      (void)j;
    }
  }
  // Leaves-first: the first edge must touch a leaf attribute.
  const auto& first = order.front();
  EXPECT_EQ(q.Degree(first.child_attr), 1);
}

TEST(JoinTreeTest, BottomUpOrderParentsAfterChildren) {
  JoinTree q({{0, 1}, {1, 2}, {2, 3}}, {0, 3});
  const auto order = q.BottomUpOrder(0);
  // Rooted at 0, the farthest edge (2,3) must come first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].child_attr, 3);
  EXPECT_EQ(order[2].parent_attr, 0);
}

TEST(JoinTreeTest, Fig2TwigDecomposition) {
  JoinTree q = Fig2Query();
  auto twigs = q.DecomposeIntoTwigs();
  ASSERT_EQ(twigs.size(), 6u);

  // Count twigs by size: 2 single-relation, 2 matmuls (2 edges),
  // 1 star (3 edges), 1 general twig (6 edges).
  std::vector<size_t> sizes;
  for (const auto& t : twigs) sizes.push_back(t.edge_indices.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{1, 1, 2, 2, 3, 6}));

  // Twig subqueries classify as expected.
  std::multiset<QueryShape> shapes;
  for (const auto& t : twigs) {
    JoinTree sub = q.InducedSubquery(t.edge_indices, t.boundary_attrs);
    shapes.insert(sub.Classify());
  }
  EXPECT_EQ(shapes.count(QueryShape::kSingleEdge), 2u);
  EXPECT_EQ(shapes.count(QueryShape::kMatMul), 2u);
  EXPECT_EQ(shapes.count(QueryShape::kStar), 1u);
  EXPECT_EQ(shapes.count(QueryShape::kTree), 1u);
}

TEST(JoinTreeTest, TwigsCoverAllEdgesOnce) {
  JoinTree q = Fig2Query();
  auto twigs = q.DecomposeIntoTwigs();
  std::set<int> covered;
  for (const auto& t : twigs) {
    for (int ei : t.edge_indices) {
      EXPECT_TRUE(covered.insert(ei).second) << "edge in two twigs";
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), q.num_edges());
}

TEST(JoinTreeTest, InducedSubqueryKeepsBoundaryAsOutput) {
  JoinTree q = Fig2Query();
  auto twigs = q.DecomposeIntoTwigs();
  for (const auto& t : twigs) {
    JoinTree sub = q.InducedSubquery(t.edge_indices, t.boundary_attrs);
    for (AttrId b : t.boundary_attrs) {
      EXPECT_TRUE(sub.IsOutput(b));
    }
  }
}

TEST(JoinTreeTest, Fig1QueryShape) {
  JoinTree q = Fig1StarLikeQuery();
  EXPECT_EQ(q.num_edges(), 10);
  EXPECT_EQ(q.Degree(0), 5) << "B joins all five arms";
  EXPECT_EQ(q.output_attrs(), (std::vector<AttrId>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace parjoin
