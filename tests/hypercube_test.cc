// Tests for the HyperCube full-join baseline (§1.4's third approach):
// correctness against the oracle across shapes and cluster sizes, and the
// paper's claim that its aggregation step makes it no better than
// Yannakakis when the full join is large.

#include "parjoin/algorithms/hypercube.h"

#include <gtest/gtest.h>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

template <SemiringC Sr>
void ExpectHyperCubeMatchesReference(mpc::Cluster& cluster,
                                     const TreeInstance<Sr>& instance) {
  Relation<Sr> expected = EvaluateReference(instance);
  Relation<Sr> got = HyperCubeJoinAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << instance.query.DebugString() << ": got " << got.size()
      << " expected " << expected.size();
}

TEST(HyperCubeTest, MatMulMatchesReference) {
  for (int p : {1, 4, 9, 27, 64}) {
    mpc::Cluster cluster(p);
    MatMulGenConfig cfg;
    cfg.n1 = 400;
    cfg.n2 = 350;
    cfg.dom_a = 60;
    cfg.dom_b = 25;
    cfg.dom_c = 60;
    cfg.skew_b = 0.6;
    cfg.seed = 5;
    auto instance = GenMatMulRandom<S>(cluster, cfg);
    ExpectHyperCubeMatchesReference(cluster, instance);
  }
}

TEST(HyperCubeTest, LineAndStarMatchReference) {
  mpc::Cluster cluster(16);
  auto line = GenLineRandom<S>(cluster, 3, 200, 40, 0.4, 7);
  ExpectHyperCubeMatchesReference(cluster, line);
  auto star = GenStarRandom<S>(cluster, 3, 120, 30, 20, 0.5, 9);
  ExpectHyperCubeMatchesReference(cluster, star);
}

TEST(HyperCubeTest, Fig1StarLike) {
  mpc::Cluster cluster(8);
  auto instance = GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 12, 8, 3);
  ExpectHyperCubeMatchesReference(cluster, instance);
}

TEST(HyperCubeTest, SingleEdgeAndScalar) {
  mpc::Cluster cluster(4);
  auto single = GenTreeRandom<S>(cluster, JoinTree({{0, 1}}, {0}), 50, 20, 2);
  ExpectHyperCubeMatchesReference(cluster, single);
  auto scalar =
      GenTreeRandom<S>(cluster, JoinTree({{0, 1}, {1, 2}}, {}), 40, 12, 4);
  ExpectHyperCubeMatchesReference(cluster, scalar);
}

TEST(HyperCubeTest, LosesToTheorem1OnSmallOut) {
  // §1.4 argues full-join-first approaches cannot improve on the
  // join-aggregate algorithms. Even with per-cell local aggregation
  // (which blunts the paper's OUT_f bottleneck on benign data), the share
  // replication must lose clearly to Theorem 1 when OUT is small.
  const int p = 16;
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(8000, 1024, 4);
  mpc::Cluster c1(p), c3(p);
  auto i1 = GenMatMulBlocks<S>(c1, cfg);
  auto i3 = GenMatMulBlocks<S>(c3, cfg);
  c1.ResetStats();
  HyperCubeJoinAggregate(c1, std::move(i1));
  c3.ResetStats();
  MatMul(c3, std::move(i3.relations[0]), std::move(i3.relations[1]));
  EXPECT_GT(c1.stats().max_load, c3.stats().max_load)
      << "HyperCube must lose to Theorem 1 on small-OUT instances";
}

}  // namespace
}  // namespace parjoin
