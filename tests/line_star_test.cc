// Tests for the §4 line-query and §5 star-query algorithms: correctness
// against the reference evaluator across arities, semirings, skew, and
// cluster sizes; load-shape property checks against the Theorem 4/5
// expressions and the Yannakakis baseline.

#include <cmath>

#include <gtest/gtest.h>

#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

template <SemiringC Sr>
void ExpectLineMatchesReference(mpc::Cluster& cluster,
                                const TreeInstance<Sr>& instance) {
  Relation<Sr> expected = EvaluateReference(instance);
  Relation<Sr> got = LineQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  // The line algorithm's schema order follows the path orientation, which
  // may be reversed relative to the reference's sorted outputs; align.
  if (!(got.schema() == expected.schema())) {
    Relation<Sr> aligned(expected.schema());
    const auto positions =
        got.schema().PositionsOf(expected.schema().attrs());
    for (const auto& t : got.tuples()) {
      aligned.Add(t.row.Select(positions), t.w);
    }
    aligned.Normalize();
    got = aligned;
  }
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

template <SemiringC Sr>
void ExpectStarMatchesReference(mpc::Cluster& cluster,
                                const TreeInstance<Sr>& instance) {
  Relation<Sr> expected = EvaluateReference(instance);
  Relation<Sr> got = StarQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

class LineArityTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LineArityTest, MatchesReference) {
  const auto [arity, seed] = GetParam();
  mpc::Cluster cluster(8);
  auto instance = GenLineRandom<S>(cluster, arity, 250, 50, 0.5, seed);
  ExpectLineMatchesReference(cluster, instance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LineArityTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(1u, 2u, 3u)));

template <typename Sr>
class LineSemiringTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(LineSemiringTest, AllSemirings);

TYPED_TEST(LineSemiringTest, Length3Line) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenLineRandom<Sr>(cluster, 3, 200, 40, 0.7, 7);
  ExpectLineMatchesReference(cluster, instance);
}

TEST(LineQueryTest, BlockInstanceExactOut) {
  mpc::Cluster cluster(8);
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 5;
  cfg.side_end = 6;
  cfg.side_mid = 3;
  auto instance = GenLineBlocks<S>(cluster, cfg);
  auto result = LineQueryAggregate(cluster, instance);
  EXPECT_EQ(result.TotalSize(), cfg.out());
}

TEST(LineQueryTest, HeavySkewOnA2) {
  // Strong Zipf skew concentrates A2 degrees: exercises the heavy branch.
  mpc::Cluster cluster(8);
  auto instance = GenLineRandom<S>(cluster, 3, 400, 60, 1.2, 13);
  ExpectLineMatchesReference(cluster, instance);
}

TEST(LineQueryTest, EmptyChain) {
  mpc::Cluster cluster(4);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{1, 10}, 1);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{11, 2}, 1);
  Relation<S> r3(Schema{2, 3});
  r3.Add(Row{2, 3}, 1);
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  instance.relations.push_back(Distribute(cluster, r3));
  auto result = LineQueryAggregate(cluster, instance);
  EXPECT_EQ(result.TotalSize(), 0);
}

TEST(LineQueryTest, AcrossClusterSizes) {
  for (int p : {1, 2, 5, 16, 48}) {
    mpc::Cluster cluster(p);
    auto instance = GenLineRandom<S>(cluster, 4, 200, 45, 0.3, 19);
    ExpectLineMatchesReference(cluster, instance);
  }
}

class StarArityTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(StarArityTest, MatchesReference) {
  const auto [arity, seed] = GetParam();
  mpc::Cluster cluster(8);
  auto instance =
      GenStarRandom<S>(cluster, arity, 150, 40, 25, 0.5, seed);
  ExpectStarMatchesReference(cluster, instance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StarArityTest,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1u, 2u, 3u)));

template <typename Sr>
class StarSemiringTest : public ::testing::Test {};
TYPED_TEST_SUITE(StarSemiringTest, AllSemirings);

TYPED_TEST(StarSemiringTest, ThreeArms) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenStarRandom<Sr>(cluster, 3, 120, 30, 18, 0.8, 23);
  ExpectStarMatchesReference(cluster, instance);
}

TEST(StarQueryTest, BlockInstanceExactOut) {
  mpc::Cluster cluster(8);
  StarBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 4;
  cfg.side_arm = 3;
  cfg.side_b = 3;
  auto instance = GenStarBlocks<S>(cluster, cfg);
  auto result = StarQueryAggregate(cluster, instance);
  EXPECT_EQ(result.TotalSize(), cfg.out());
}

TEST(StarQueryTest, SkewedCenterMixesPermutations) {
  // Different b's get different degree orderings across arms: several
  // permutation classes are non-empty.
  mpc::Cluster cluster(8);
  Rng rng(31);
  TreeInstance<S> instance{
      JoinTree({{1, 0}, {2, 0}, {3, 0}}, {1, 2, 3}), {}};
  for (int i = 0; i < 3; ++i) {
    Relation<S> rel(Schema{i + 1, 0});
    for (Value b = 0; b < 12; ++b) {
      // Arm i has degree depending on (b + i) so orderings vary with b.
      const std::int64_t deg = 1 + (b + i * 4) % 7;
      for (std::int64_t k = 0; k < deg; ++k) {
        rel.Add(Row{b * 10 + k, b},
                static_cast<std::int64_t>(rng.Uniform(1, 5)));
      }
    }
    instance.relations.push_back(Distribute(cluster, rel));
  }
  ExpectStarMatchesReference(cluster, instance);
}

TEST(StarQueryTest, AcrossClusterSizes) {
  for (int p : {1, 3, 9, 32}) {
    mpc::Cluster cluster(p);
    auto instance = GenStarRandom<S>(cluster, 3, 100, 25, 15, 0.4, 37);
    ExpectStarMatchesReference(cluster, instance);
  }
}

TEST(LoadShapeTest, LineBeatsYannakakisOnLargeIntermediate) {
  // Chain where the intermediate join is much larger than OUT: the §4
  // algorithm must move asymptotically less data than Yannakakis.
  const int p = 16;
  LineBlockConfig cfg;
  cfg.arity = 3;
  cfg.blocks = 2;
  cfg.side_end = 4;
  cfg.side_mid = 40;  // fat middle: huge intermediate, small OUT
  mpc::Cluster c1(p), c2(p);
  auto i1 = GenLineBlocks<S>(c1, cfg);
  auto i2 = GenLineBlocks<S>(c2, cfg);
  auto yann = YannakakisJoinAggregate(c1, i1);
  auto ours = LineQueryAggregate(c2, i2);
  EXPECT_EQ(yann.TotalSize(), ours.TotalSize());
  EXPECT_LT(c2.stats().max_load, c1.stats().max_load)
      << "line algorithm should beat Yannakakis on fat-middle chains";
}

}  // namespace
}  // namespace parjoin
