// Robustness and failure-injection tests.
//
// The §3.2/§4 algorithms consume *estimates* (OUT, OUT_a) that are only
// correct within constant factors w.h.p. Correctness must never depend on
// them: these tests feed deliberately corrupted estimates (inflated,
// deflated, empty, adversarially misclassifying) and require exact
// results. Also: API misuse death tests and degenerate-input coverage.

#include <gtest/gtest.h>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/semiring/topk.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

TreeInstance<S> TestInstance(std::uint64_t seed) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 500;
  cfg.n2 = 450;
  cfg.dom_a = 70;
  cfg.dom_b = 25;
  cfg.dom_c = 70;
  cfg.skew_b = 0.7;
  cfg.seed = seed;
  return GenMatMulRandom<S>(cluster, cfg);
}

void ExpectOsMatMulCorrectWithEstimate(const OutEstimate& est,
                                       std::uint64_t seed) {
  mpc::Cluster cluster(8);
  auto instance = TestInstance(seed);
  Relation<S> expected = EvaluateReference(instance);
  // Dangling removal first (the algorithm's precondition), then inject.
  auto r1 = Semijoin(cluster, instance.relations[0], instance.relations[1]);
  auto r2 = Semijoin(cluster, instance.relations[1], r1);
  Relation<S> got =
      MatMulOutputSensitive(cluster, r1, r2, &est).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

TEST(EstimateInjectionTest, GrosslyInflatedTotal) {
  OutEstimate est;
  est.total = 1'000'000'000;
  for (Value a = 0; a < 70; ++a) est.per_source[a] = 10'000'000;
  ExpectOsMatMulCorrectWithEstimate(est, 1);
}

TEST(EstimateInjectionTest, GrosslyDeflatedTotal) {
  OutEstimate est;
  est.total = 1;
  for (Value a = 0; a < 70; ++a) est.per_source[a] = 1;
  ExpectOsMatMulCorrectWithEstimate(est, 2);
}

TEST(EstimateInjectionTest, EmptyPerSourceMap) {
  // All rows will be classified light with fallback estimates.
  OutEstimate est;
  est.total = 500;
  ExpectOsMatMulCorrectWithEstimate(est, 3);
}

TEST(EstimateInjectionTest, AdversarialMisclassification) {
  // Alternate absurd over/under estimates per value: heavy/light split is
  // then arbitrary; the result must still be exact.
  OutEstimate est;
  est.total = 4000;
  for (Value a = 0; a < 70; ++a) {
    est.per_source[a] = (a % 2 == 0) ? 1 : 100'000;
  }
  ExpectOsMatMulCorrectWithEstimate(est, 4);
}

TEST(EstimateInjectionTest, ForcedLinearPathOnLargeOut) {
  // total=1 forces the OUT <= N/p LinearSparseMM path even though the
  // real output is larger; LinearSparseMM is correct unconditionally.
  OutEstimate est;
  est.total = 1;
  ExpectOsMatMulCorrectWithEstimate(est, 5);
}

TEST(DegenerateInputTest, SingleServerCluster) {
  mpc::Cluster cluster(1);
  auto instance = TestInstance(6);
  Relation<S> expected = EvaluateReference(instance);
  Relation<S> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(DegenerateInputTest, MoreServersThanTuples) {
  mpc::Cluster cluster(512);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{1, 2}, 3);
  r1.Add(Row{4, 2}, 5);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{2, 9}, 7);
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  Relation<S> expected = EvaluateReference(instance);
  Relation<S> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected);
  EXPECT_EQ(got.size(), 2);
}

TEST(DegenerateInputTest, AllTuplesIdenticalKey) {
  // One join value carries everything: maximal skew.
  mpc::Cluster cluster(16);
  Relation<S> r1(Schema{0, 1});
  Relation<S> r2(Schema{1, 2});
  for (int i = 0; i < 200; ++i) {
    r1.Add(Row{i, 0}, 1);
    r2.Add(Row{0, i}, 1);
  }
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  Relation<S> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_EQ(got.size(), 200 * 200);
}

TEST(ApiMisuseDeathTest, MismatchedRelationSchema) {
  mpc::Cluster cluster(2);
  TreeInstance<S> instance{JoinTree({{0, 1}}, {0}), {}};
  Relation<S> wrong(Schema{5, 6});
  wrong.Add(Row{1, 2}, 1);
  instance.relations.push_back(Distribute(cluster, wrong));
  EXPECT_DEATH(instance.Validate(), "does not cover edge");
}

TEST(ApiMisuseDeathTest, RowOutOfBounds) {
  Row r{1, 2};
  EXPECT_DEATH(r[5], "Check failed");
}

TEST(ApiMisuseDeathTest, MatMulNeedsSharedAttribute) {
  mpc::Cluster cluster(2);
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{1, 2}, 1);
  Relation<S> r2(Schema{2, 3});
  r2.Add(Row{2, 3}, 1);
  auto d1 = Distribute(cluster, r1);
  auto d2 = Distribute(cluster, r2);
  EXPECT_DEATH(MatMul(cluster, d1, d2), "share exactly one attr");
}

// --- Extension semiring: top-2 shortest paths ---

TEST(TopTwoSemiringTest, AxiomsOnSamples) {
  using T = TopTwoMinPlusSemiring;
  // Carrier values are canonical pairs (best < second, or second = inf);
  // {5, 5} style duplicates are normalized away by Plus and not valid
  // carrier elements under distinct-cost semantics.
  std::vector<TopTwoCosts> vals = {
      T::Zero(), T::One(), {3, 7}, {3, TopTwoCosts::kInf}, {0, 2}, {5, 9}};
  for (const auto& a : vals) {
    EXPECT_EQ(T::Plus(a, T::Zero()), a);
    EXPECT_EQ(T::Times(a, T::One()), a);
    EXPECT_EQ(T::Times(a, T::Zero()), T::Zero());
    EXPECT_EQ(T::Plus(a, a), a) << "declared idempotent";
    for (const auto& b : vals) {
      EXPECT_EQ(T::Plus(a, b), T::Plus(b, a));
      EXPECT_EQ(T::Times(a, b), T::Times(b, a));
      for (const auto& c : vals) {
        EXPECT_EQ(T::Plus(T::Plus(a, b), c), T::Plus(a, T::Plus(b, c)));
        EXPECT_EQ(T::Times(T::Times(a, b), c), T::Times(a, T::Times(b, c)));
        EXPECT_EQ(T::Times(a, T::Plus(b, c)),
                  T::Plus(T::Times(a, b), T::Times(a, c)));
      }
    }
  }
}

TEST(TopTwoSemiringTest, TwoHopSecondShortestPath) {
  // Paths 0 -> {x} -> 1 with costs {5+1, 2+10, 3+3}: best 6, second 12.
  // (6 appears twice — distinct-cost semantics keep {6, 12}.)
  using T = TopTwoMinPlusSemiring;
  mpc::Cluster cluster(4);
  Relation<T> r1(Schema{0, 1});
  r1.Add(Row{0, 10}, {5, TopTwoCosts::kInf});
  r1.Add(Row{0, 11}, {2, TopTwoCosts::kInf});
  r1.Add(Row{0, 12}, {3, TopTwoCosts::kInf});
  Relation<T> r2(Schema{1, 2});
  r2.Add(Row{10, 1}, {1, TopTwoCosts::kInf});
  r2.Add(Row{11, 1}, {10, TopTwoCosts::kInf});
  r2.Add(Row{12, 1}, {3, TopTwoCosts::kInf});
  TreeInstance<T> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));

  Relation<T> expected = EvaluateReference(instance);
  ASSERT_EQ(expected.size(), 1);
  EXPECT_EQ(expected.tuples()[0].w.best, 6);
  EXPECT_EQ(expected.tuples()[0].w.second, 12);

  Relation<T> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(TopTwoSemiringTest, MatMulWithStructCarrier) {
  using T = TopTwoMinPlusSemiring;
  mpc::Cluster cluster(8);
  auto instance = GenMatMulRandom<T>(cluster, [] {
    MatMulGenConfig cfg;
    cfg.n1 = 300;
    cfg.n2 = 280;
    cfg.dom_a = 50;
    cfg.dom_b = 20;
    cfg.dom_c = 50;
    cfg.seed = 9;
    return cfg;
  }());
  // The generator leaves struct carriers at One(); assign deterministic
  // singleton costs from the row values.
  for (auto& rel : instance.relations) {
    for (auto& part : rel.data.parts()) {
      for (auto& t : part) {
        t.w = TopTwoCosts{(t.row[0] * 7 + t.row[1] * 3) % 50 + 1,
                          TopTwoCosts::kInf};
      }
    }
  }
  Relation<T> expected = EvaluateReference(instance);
  Relation<T> got = MatMul(cluster, instance.relations[0],
                           instance.relations[1])
                        .ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected);
}

}  // namespace
}  // namespace parjoin
