// Validates the reference (variable-elimination) evaluator against the
// brute-force full-join evaluator on small random instances, across query
// shapes and semirings. The reference evaluator is the oracle every MPC
// algorithm is tested against, so it gets its own ground truth here.

#include "parjoin/algorithms/reference.h"

#include <gtest/gtest.h>

#include "parjoin/mpc/cluster.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

template <SemiringC S>
std::vector<Relation<S>> Localize(const TreeInstance<S>& instance) {
  std::vector<Relation<S>> out;
  for (const auto& rel : instance.relations) out.push_back(rel.ToLocal());
  return out;
}

template <SemiringC S>
void ExpectReferenceMatchesBruteForce(const TreeInstance<S>& instance) {
  const auto local = Localize(instance);
  Relation<S> brute = EvaluateBruteForce(instance.query, local);
  Relation<S> ref = EvaluateReference(instance.query, local);
  ASSERT_EQ(ref.schema(), brute.schema());
  EXPECT_EQ(ref.tuples().size(), brute.tuples().size());
  EXPECT_TRUE(ref == brute) << "mismatch on " << instance.query.DebugString();
}

template <typename S>
class ReferenceEvaluatorTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(ReferenceEvaluatorTest, AllSemirings);

TYPED_TEST(ReferenceEvaluatorTest, MatMulRandom) {
  using S = TypeParam;
  mpc::Cluster cluster(4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    MatMulGenConfig cfg;
    cfg.n1 = 60;
    cfg.n2 = 50;
    cfg.dom_a = 12;
    cfg.dom_b = 8;
    cfg.dom_c = 12;
    cfg.seed = seed;
    auto instance = GenMatMulRandom<S>(cluster, cfg);
    ExpectReferenceMatchesBruteForce(instance);
  }
}

TYPED_TEST(ReferenceEvaluatorTest, LineRandom) {
  using S = TypeParam;
  mpc::Cluster cluster(4);
  for (int arity = 2; arity <= 4; ++arity) {
    auto instance = GenLineRandom<S>(cluster, arity, 40, 10,
                                     /*skew=*/0.5, /*seed=*/7);
    ExpectReferenceMatchesBruteForce(instance);
  }
}

TYPED_TEST(ReferenceEvaluatorTest, StarRandom) {
  using S = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenStarRandom<S>(cluster, 3, 30, 8, 6, /*skew_b=*/0.7,
                                   /*seed=*/3);
  ExpectReferenceMatchesBruteForce(instance);
}

TYPED_TEST(ReferenceEvaluatorTest, StarLikeFig1) {
  using S = TypeParam;
  mpc::Cluster cluster(4);
  auto instance =
      GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 12, 8, /*seed=*/11);
  ExpectReferenceMatchesBruteForce(instance);
}

TYPED_TEST(ReferenceEvaluatorTest, EmptyOutputAttrsGiveScalar) {
  using S = TypeParam;
  mpc::Cluster cluster(2);
  // Full aggregate: y = {} over a 2-chain.
  JoinTree q({{0, 1}, {1, 2}}, {});
  auto instance = GenTreeRandom<S>(cluster, q, 20, 5, /*seed=*/2);
  const auto local = Localize(instance);
  Relation<S> brute = EvaluateBruteForce(q, local);
  Relation<S> ref = EvaluateReference(q, local);
  EXPECT_TRUE(ref == brute);
  EXPECT_LE(ref.size(), 1);
  if (ref.size() == 1) {
    EXPECT_EQ(ref.tuples()[0].row.size(), 0);
  }
}

TEST(ReferenceEvaluatorDetailTest, HandComputedMatMul) {
  // R1 = {(a0,b0,2), (a0,b1,3), (a1,b1,5)}
  // R2 = {(b0,c0,7), (b1,c0,1), (b1,c1,4)}
  // Output (a0,c0) = 2*7 + 3*1 = 17; (a0,c1) = 3*4 = 12; (a1,c0) = 5;
  // (a1,c1) = 20.
  using S = CountingSemiring;
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{0, 0}, 2);
  r1.Add(Row{0, 1}, 3);
  r1.Add(Row{1, 1}, 5);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{0, 0}, 7);
  r2.Add(Row{1, 0}, 1);
  r2.Add(Row{1, 1}, 4);
  JoinTree q({{0, 1}, {1, 2}}, {0, 2});
  Relation<S> result = EvaluateReference(q, std::vector<Relation<S>>{r1, r2});

  Relation<S> expected(Schema{0, 2});
  expected.Add(Row{0, 0}, 17);
  expected.Add(Row{0, 1}, 12);
  expected.Add(Row{1, 0}, 5);
  expected.Add(Row{1, 1}, 20);
  expected.Normalize();
  EXPECT_TRUE(result == expected);
}

TEST(ReferenceEvaluatorDetailTest, HandComputedMinPlus) {
  // Shortest 2-hop distances.
  using S = MinPlusSemiring;
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{0, 0}, 5);
  r1.Add(Row{0, 1}, 2);
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{0, 0}, 1);
  r2.Add(Row{1, 0}, 10);
  JoinTree q({{0, 1}, {1, 2}}, {0, 2});
  Relation<S> result = EvaluateReference(q, std::vector<Relation<S>>{r1, r2});
  ASSERT_EQ(result.size(), 1);
  EXPECT_EQ(result.tuples()[0].row, (Row{0, 0}));
  EXPECT_EQ(result.tuples()[0].w, 6) << "min(5+1, 2+10)";
}

TEST(ReferenceEvaluatorDetailTest, DanglingTuplesContributeNothing) {
  using S = CountingSemiring;
  Relation<S> r1(Schema{0, 1});
  r1.Add(Row{0, 0}, 2);
  r1.Add(Row{9, 99}, 100);  // b=99 has no continuation
  Relation<S> r2(Schema{1, 2});
  r2.Add(Row{0, 0}, 3);
  JoinTree q({{0, 1}, {1, 2}}, {0, 2});
  Relation<S> result = EvaluateReference(q, std::vector<Relation<S>>{r1, r2});
  ASSERT_EQ(result.size(), 1);
  EXPECT_EQ(result.tuples()[0].w, 6);
}

}  // namespace
}  // namespace parjoin
