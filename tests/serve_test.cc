// The parjoind serving core: plan-cache correctness (warm results
// bit-identical to cold, at 1 and 4 threads), LRU/counter bookkeeping,
// admission-controlled batching, and per-query fault isolation — a query
// that exhausts its recovery attempts yields an error Outcome while the
// server keeps serving.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/parallel_for.h"
#include "parjoin/common/random.h"
#include "parjoin/plan/plan.h"
#include "parjoin/serve/plan_cache.h"
#include "parjoin/serve/server.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;
using Server = serve::Server<S>;
using Outcome = Server::Outcome;

constexpr int kP = 8;

// Restores the default thread count even when a test body fails early.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

// Registers ab(0,1), bc(1,2), bd(1,3): enough for a matmul, a line, and a
// star shape over one registry.
void RegisterTestRelations(Server& server) {
  Rng rng(7);
  const auto add = [&](const char* name, AttrId u, AttrId v) {
    Relation<S> rel = internal_workload::RandomBinaryRelation<S>(
        Schema{u, v}, /*count=*/600, /*dom_u=*/60, /*dom_v=*/40,
        /*skew_v=*/0.3, /*max_weight=*/5, rng);
    CHECK_OK(server.RegisterRelation(name, std::move(rel)));
  };
  add("ab", 0, 1);
  add("bc", 1, 2);
  add("bd", 1, 3);
}

serve::QuerySpec MatmulSpec() {
  serve::QuerySpec spec;
  spec.p = kP;
  spec.edges = {{0, 1, "@ab"}, {1, 2, "@bc"}};
  spec.outputs = {0, 2};
  return spec;
}

serve::QuerySpec StarSpec() {
  serve::QuerySpec spec;
  spec.p = kP;
  spec.edges = {{0, 1, "@ab"}, {1, 2, "@bc"}, {1, 3, "@bd"}};
  spec.outputs = {0, 2, 3};
  return spec;
}

Server MakeServer(double load_budget = 0) {
  serve::ServerOptions options;
  options.p = kP;
  options.seed = 99;
  options.load_budget = load_budget;
  return Server(options);
}

// --- plan cache (unit) ------------------------------------------------------

TEST(PlanCache, CountsHitsMissesAndEvictsLru) {
  serve::PlanCache cache(2);
  plan::PhysicalPlan plan;
  EXPECT_EQ(cache.Lookup("a"), nullptr);  // miss
  cache.Insert("a", plan);
  cache.Insert("b", plan);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // hit; "a" becomes most recent
  cache.Insert("c", plan);                // evicts "b" (lru)
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().hits, 3);
  EXPECT_EQ(cache.counters().misses, 2);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 3.0 / 5.0);
}

TEST(PlanCache, InsertRefreshesExistingKeyWithoutEviction) {
  serve::PlanCache cache(2);
  plan::PhysicalPlan plan;
  cache.Insert("a", plan);
  plan.predicted_load = 42;
  cache.Insert("a", plan);  // refresh, not a second entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().evictions, 0);
  const plan::PhysicalPlan* got = cache.Lookup("a");
  ASSERT_NE(got, nullptr);
  EXPECT_DOUBLE_EQ(got->predicted_load, 42);
}

// --- cache-hit correctness --------------------------------------------------

// The acceptance bar: results computed from a cached plan must be
// bit-identical to the cold-planned run, sequentially and threaded.
TEST(Serve, WarmResultsBitIdenticalToColdAcrossThreads) {
  ThreadOverrideGuard guard;
  std::vector<Relation<S>> per_thread_results;
  for (const int threads : {1, 4}) {
    SetParallelForThreads(threads);
    // Cold-only reference: a fresh server runs each shape once.
    Server cold = MakeServer();
    RegisterTestRelations(cold);
    CHECK_OK(cold.Enqueue(MatmulSpec(), "matmul"));
    CHECK_OK(cold.Enqueue(StarSpec(), "star"));
    const std::vector<Outcome> cold_out = cold.Drain();
    ASSERT_EQ(cold_out.size(), 2u);
    for (const Outcome& out : cold_out) {
      ASSERT_TRUE(out.status.ok()) << out.status;
      EXPECT_FALSE(out.cache_hit);
    }

    // Warm server: the same shapes enqueued twice; the repeats must hit
    // the cache and reproduce the cold results exactly.
    Server warm = MakeServer();
    RegisterTestRelations(warm);
    CHECK_OK(warm.Enqueue(MatmulSpec(), "matmul#0"));
    CHECK_OK(warm.Enqueue(StarSpec(), "star#0"));
    CHECK_OK(warm.Enqueue(MatmulSpec(), "matmul#1"));
    CHECK_OK(warm.Enqueue(StarSpec(), "star#1"));
    const std::vector<Outcome> warm_out = warm.Drain();
    ASSERT_EQ(warm_out.size(), 4u);
    EXPECT_FALSE(warm_out[0].cache_hit);
    EXPECT_FALSE(warm_out[1].cache_hit);
    EXPECT_TRUE(warm_out[2].cache_hit);
    EXPECT_TRUE(warm_out[3].cache_hit);
    for (const Outcome& out : warm_out) {
      ASSERT_TRUE(out.status.ok()) << out.label << ": " << out.status;
    }
    EXPECT_GT(warm_out[0].result.size(), 0);
    // Warm == cold, per shape.
    EXPECT_EQ(warm_out[2].result, warm_out[0].result);
    EXPECT_EQ(warm_out[3].result, warm_out[1].result);
    EXPECT_EQ(warm_out[0].result, cold_out[0].result);
    EXPECT_EQ(warm_out[1].result, cold_out[1].result);

    EXPECT_EQ(warm.metrics().cold_plans, 2);
    EXPECT_EQ(warm.metrics().warm_plans, 2);
    EXPECT_GT(warm.plan_cache().counters().hits, 0);
    per_thread_results.push_back(warm_out[2].result);
  }
  // And the threaded run matches the sequential one.
  ASSERT_EQ(per_thread_results.size(), 2u);
  EXPECT_EQ(per_thread_results[0], per_thread_results[1]);
}

TEST(Serve, WarmPlanningIsCheaperThanCold) {
  Server server = MakeServer();
  RegisterTestRelations(server);
  for (int rep = 0; rep < 6; ++rep) {
    CHECK_OK(server.Enqueue(MatmulSpec(), "m#" + std::to_string(rep)));
  }
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 6u);
  const auto& m = server.metrics();
  ASSERT_EQ(m.cold_plans, 1);
  ASSERT_EQ(m.warm_plans, 5);
  // Cold planning runs the planner's estimation rounds; warm planning is
  // an LRU lookup plus a plan copy — orders of magnitude apart.
  EXPECT_LT(m.warm_plan_ms_total / 5, m.cold_plan_ms_total);
  // A cache hit also skips the planning cluster entirely: cached plans
  // keep the cold run's planning_stats.
  EXPECT_EQ(outcomes[1].plan.planning_stats.rounds,
            outcomes[0].plan.planning_stats.rounds);
}

TEST(Serve, CacheEvictionForcesReplan) {
  serve::ServerOptions options;
  options.p = kP;
  options.seed = 99;
  options.plan_cache_capacity = 1;  // matmul and star evict each other
  Server server(options);
  RegisterTestRelations(server);
  CHECK_OK(server.Enqueue(MatmulSpec(), "m0"));
  CHECK_OK(server.Enqueue(StarSpec(), "s0"));
  CHECK_OK(server.Enqueue(MatmulSpec(), "m1"));
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[2].cache_hit);  // m0's plan was evicted by s0
  EXPECT_EQ(server.plan_cache().counters().evictions, 2);
  EXPECT_EQ(server.metrics().cold_plans, 3);
  // Replanning from scratch still reproduces the same result.
  EXPECT_EQ(outcomes[2].result, outcomes[0].result);
}

// --- admission control ------------------------------------------------------

TEST(Serve, ZeroBudgetServesOneQueryPerBatchInFifoOrder) {
  Server server = MakeServer(/*load_budget=*/0);
  RegisterTestRelations(server);
  for (int rep = 0; rep < 4; ++rep) {
    CHECK_OK(server.Enqueue(MatmulSpec(), "m#" + std::to_string(rep)));
  }
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(outcomes[i].label, "m#" + std::to_string(i));
    EXPECT_EQ(outcomes[i].batch, i + 1);
  }
  EXPECT_EQ(server.metrics().batches, 4);
}

TEST(Serve, BudgetPacksBatchesAndCarriesTheQueryThatDidNotFit) {
  // Learn the (identical) per-query ticket from a probe run, then budget
  // for exactly two tickets per batch: 5 queries -> batches 1,1,2,2,3.
  Server probe = MakeServer();
  RegisterTestRelations(probe);
  CHECK_OK(probe.Enqueue(MatmulSpec(), "probe"));
  const std::vector<Outcome> probed = probe.Drain();
  ASSERT_EQ(probed.size(), 1u);
  const double ticket = probed[0].ticket;
  ASSERT_GE(ticket, 1.0);

  Server server = MakeServer(/*load_budget=*/2.5 * ticket);
  RegisterTestRelations(server);
  for (int rep = 0; rep < 5; ++rep) {
    CHECK_OK(server.Enqueue(MatmulSpec(), "m#" + std::to_string(rep)));
  }
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 5u);
  const std::vector<int> batches = {outcomes[0].batch, outcomes[1].batch,
                                    outcomes[2].batch, outcomes[3].batch,
                                    outcomes[4].batch};
  EXPECT_EQ(batches, (std::vector<int>{1, 1, 2, 2, 3}));
  for (const Outcome& out : outcomes) {
    EXPECT_DOUBLE_EQ(out.ticket, ticket);
  }
  EXPECT_EQ(server.metrics().batches, 3);
}

TEST(Serve, TicketLargerThanBudgetStillRunsAsSingletonBatch) {
  // A budget below any single ticket must not starve the queue.
  Server server = MakeServer(/*load_budget=*/0.5);
  RegisterTestRelations(server);
  CHECK_OK(server.Enqueue(MatmulSpec(), "big0"));
  CHECK_OK(server.Enqueue(MatmulSpec(), "big1"));
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status;
  EXPECT_TRUE(outcomes[1].status.ok()) << outcomes[1].status;
  EXPECT_EQ(outcomes[0].batch, 1);
  EXPECT_EQ(outcomes[1].batch, 2);
  EXPECT_EQ(server.QueueDepth(), 0);
}

// --- ingress and isolation --------------------------------------------------

TEST(Serve, EnqueueRejectsUnregisteredReference) {
  Server server = MakeServer();
  RegisterTestRelations(server);
  serve::QuerySpec spec = MatmulSpec();
  spec.edges[1].source = "@nope";
  const Status status = server.Enqueue(spec, "bad");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("'@nope'"), std::string::npos);
  EXPECT_EQ(server.QueueDepth(), 0);
}

TEST(Serve, DuplicateRegistrationIsFailedPrecondition) {
  Server server = MakeServer();
  RegisterTestRelations(server);
  Relation<S> rel(Schema{0, 1});
  const Status status = server.RegisterRelation("ab", std::move(rel));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// A query that exhausts its recovery attempts under injected faults must
// fail with ResourceExhausted — and leave the server serving: the very
// next query (same shape, clean options) runs to the correct result.
TEST(Serve, FaultExhaustedQueryDoesNotTakeDownTheServer) {
  Server reference = MakeServer();
  RegisterTestRelations(reference);
  CHECK_OK(reference.Enqueue(MatmulSpec(), "ref"));
  const std::vector<Outcome> ref_out = reference.Drain();
  ASSERT_EQ(ref_out.size(), 1u);
  ASSERT_TRUE(ref_out[0].status.ok()) << ref_out[0].status;

  Server server = MakeServer();
  RegisterTestRelations(server);
  plan::ExecutionOptions doomed;
  doomed.faults.enabled = true;
  doomed.faults.seed = 3;
  doomed.faults.crashes = 2;
  doomed.faults.stragglers = 0;
  doomed.faults.corruptions = 0;
  doomed.faults.horizon = 2;  // the crash fires within two charged rounds
  doomed.checkpoint_interval = 2;
  doomed.max_attempts = 1;  // one crash exhausts the attempt budget
  CHECK_OK(server.Enqueue(MatmulSpec(), "doomed", doomed));
  CHECK_OK(server.Enqueue(MatmulSpec(), "after"));
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 2u);

  EXPECT_FALSE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kResourceExhausted)
      << outcomes[0].status;
  EXPECT_EQ(outcomes[0].result.size(), 0);

  ASSERT_TRUE(outcomes[1].status.ok()) << outcomes[1].status;
  // The follow-up even cache-hits the plan the doomed query planned.
  EXPECT_TRUE(outcomes[1].cache_hit);
  EXPECT_EQ(outcomes[1].result, ref_out[0].result);

  EXPECT_EQ(server.metrics().failed, 1);
  EXPECT_EQ(server.metrics().served, 1);
}

// Recovery that stays within its attempt budget is invisible to the
// client: same Outcome results as a fault-free run.
TEST(Serve, RecoveredQueryMatchesFaultFreeResult) {
  Server reference = MakeServer();
  RegisterTestRelations(reference);
  CHECK_OK(reference.Enqueue(MatmulSpec(), "ref"));
  const std::vector<Outcome> ref_out = reference.Drain();
  ASSERT_EQ(ref_out.size(), 1u);

  Server server = MakeServer();
  RegisterTestRelations(server);
  plan::ExecutionOptions bumpy;
  bumpy.faults.enabled = true;
  bumpy.faults.seed = 5;
  bumpy.faults.crashes = 1;
  bumpy.faults.stragglers = 1;
  bumpy.faults.corruptions = 1;
  bumpy.checkpoint_interval = 2;
  CHECK_OK(server.Enqueue(MatmulSpec(), "bumpy", bumpy));
  const std::vector<Outcome> outcomes = server.Drain();
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].status.ok()) << outcomes[0].status;
  EXPECT_EQ(outcomes[0].result, ref_out[0].result);
  EXPECT_GE(outcomes[0].plan.recovery.attempts, 1);
  // Checkpointing traffic is charged to the resilience ledger.
  EXPECT_GT(outcomes[0].plan.execution_stats.recovery_comm, 0);
}

}  // namespace
}  // namespace parjoin
