// Unit tests for Row: inline/heap storage, value semantics, ordering,
// hashing, and projection.

#include "parjoin/common/row.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace parjoin {
namespace {

TEST(RowTest, DefaultIsEmpty) {
  Row r;
  EXPECT_EQ(r.size(), 0);
  EXPECT_TRUE(r.empty());
}

TEST(RowTest, InitializerListConstruction) {
  Row r{1, 2, 3};
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 2);
  EXPECT_EQ(r[2], 3);
}

TEST(RowTest, PushBackWithinInlineCapacity) {
  Row r;
  for (int i = 0; i < Row::kInlineCapacity; ++i) {
    r.PushBack(i * 10);
  }
  ASSERT_EQ(r.size(), Row::kInlineCapacity);
  for (int i = 0; i < Row::kInlineCapacity; ++i) {
    EXPECT_EQ(r[i], i * 10);
  }
}

TEST(RowTest, GrowsBeyondInlineCapacity) {
  Row r;
  constexpr int kCount = Row::kInlineCapacity * 5;
  for (int i = 0; i < kCount; ++i) r.PushBack(i);
  ASSERT_EQ(r.size(), kCount);
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(r[i], i);
}

TEST(RowTest, CopyConstructInline) {
  Row a{7, 8};
  Row b(a);
  EXPECT_EQ(a, b);
  b[0] = 99;
  EXPECT_EQ(a[0], 7) << "copy must not alias";
}

TEST(RowTest, CopyConstructHeap) {
  Row a;
  for (int i = 0; i < 20; ++i) a.PushBack(i);
  Row b(a);
  EXPECT_EQ(a, b);
  b[19] = -1;
  EXPECT_EQ(a[19], 19);
}

TEST(RowTest, CopyAssignReplacesContents) {
  Row a{1, 2, 3};
  Row b{9};
  b = a;
  EXPECT_EQ(b, a);
  Row wide;
  for (int i = 0; i < 15; ++i) wide.PushBack(i);
  b = wide;
  EXPECT_EQ(b, wide);
  // And heap -> inline assignment.
  wide = a;
  EXPECT_EQ(wide, a);
}

TEST(RowTest, MoveConstructHeapStealsBuffer) {
  Row a;
  for (int i = 0; i < 20; ++i) a.PushBack(i);
  const Value* buffer = a.data();
  Row b(std::move(a));
  EXPECT_EQ(b.data(), buffer);
  EXPECT_EQ(b.size(), 20);
  EXPECT_EQ(a.size(), 0);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(RowTest, MoveAssign) {
  Row a{1, 2};
  Row b;
  for (int i = 0; i < 12; ++i) b.PushBack(i);
  a = std::move(b);
  ASSERT_EQ(a.size(), 12);
  EXPECT_EQ(a[11], 11);
}

TEST(RowTest, SelfAssignmentIsSafe) {
  Row a{1, 2, 3};
  const Row& alias = a;
  a = alias;
  EXPECT_EQ(a, (Row{1, 2, 3}));
}

TEST(RowTest, EqualityAndOrdering) {
  EXPECT_EQ((Row{1, 2}), (Row{1, 2}));
  EXPECT_NE((Row{1, 2}), (Row{1, 3}));
  EXPECT_NE((Row{1, 2}), (Row{1, 2, 3}));
  EXPECT_LT((Row{1, 2}), (Row{1, 3}));
  EXPECT_LT((Row{1, 2}), (Row{1, 2, 0}));  // prefix < extension
  EXPECT_LT((Row{1, 9}), (Row{2, 0}));
}

TEST(RowTest, OrderingIsStrictWeak) {
  std::vector<Row> rows = {{3, 1}, {1, 2, 3}, {1}, {2, 2}, {1, 2}};
  std::sort(rows.begin(), rows.end());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  std::set<Row> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
}

TEST(RowTest, AppendConcatenates) {
  Row a{1, 2};
  Row b{3, 4, 5};
  a.Append(b);
  EXPECT_EQ(a, (Row{1, 2, 3, 4, 5}));
}

TEST(RowTest, SelectProjects) {
  Row r{10, 20, 30, 40};
  std::vector<int> positions = {3, 1};
  EXPECT_EQ(r.Select(positions), (Row{40, 20}));
}

TEST(RowTest, HashEqualRowsAgree) {
  Row a{5, 6, 7};
  Row b{5, 6, 7};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(123), b.Hash(123));
}

TEST(RowTest, HashDependsOnSeedAndContent) {
  Row a{5, 6, 7};
  Row b{5, 6, 8};
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(1), a.Hash(2));
}

TEST(RowTest, ResizeZeroFillsNewSlots) {
  Row r{1};
  r.Resize(4);
  ASSERT_EQ(r.size(), 4);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[3], 0);
  r.Resize(10);  // forces heap
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[9], 0);
}

}  // namespace
}  // namespace parjoin
