// Cross-algorithm property sweep: for a grid of (query shape, cluster
// size, skew, seed), the universal entry point TreeQueryAggregate must
// agree exactly with the reference oracle, and the per-shape algorithms
// must agree with each other. This is the library's main randomized
// correctness harness.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

enum class Shape {
  kMatMul,
  kLine3,
  kLine4,
  kStar3,
  kStarLikeMixed,
  kFig1,
  kFig2,
  kInteriorOutputPath,
  kGeneralTwig,
};

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kMatMul: return "MatMul";
    case Shape::kLine3: return "Line3";
    case Shape::kLine4: return "Line4";
    case Shape::kStar3: return "Star3";
    case Shape::kStarLikeMixed: return "StarLikeMixed";
    case Shape::kFig1: return "Fig1";
    case Shape::kFig2: return "Fig2";
    case Shape::kInteriorOutputPath: return "InteriorOutputPath";
    case Shape::kGeneralTwig: return "GeneralTwig";
  }
  return "?";
}

TreeInstance<S> MakeInstance(Shape shape, mpc::Cluster& cluster,
                             double skew, std::uint64_t seed) {
  switch (shape) {
    case Shape::kMatMul: {
      MatMulGenConfig cfg;
      cfg.n1 = 400;
      cfg.n2 = 350;
      cfg.dom_a = 60;
      cfg.dom_b = 24;
      cfg.dom_c = 60;
      cfg.skew_b = skew;
      cfg.seed = seed;
      return GenMatMulRandom<S>(cluster, cfg);
    }
    case Shape::kLine3:
      return GenLineRandom<S>(cluster, 3, 220, 40, skew, seed);
    case Shape::kLine4:
      return GenLineRandom<S>(cluster, 4, 180, 36, skew, seed);
    case Shape::kStar3:
      return GenStarRandom<S>(cluster, 3, 130, 30, 20, skew, seed);
    case Shape::kStarLikeMixed: {
      JoinTree q({{1, 0}, {2, 4}, {4, 0}, {3, 5}, {5, 6}, {6, 0}},
                 {1, 2, 3});
      return GenTreeRandom<S>(cluster, q, 28, 9, seed);
    }
    case Shape::kFig1:
      return GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 14, 8, seed);
    case Shape::kFig2:
      return GenTreeRandom<S>(cluster, Fig2Query(), 20, 17, seed);
    case Shape::kInteriorOutputPath: {
      JoinTree q({{0, 1}, {1, 2}, {2, 3}, {3, 4}}, {0, 2, 4});
      return GenTreeRandom<S>(cluster, q, 45, 14, seed);
    }
    case Shape::kGeneralTwig: {
      JoinTree q({{5, 14}, {14, 6}, {14, 15}, {15, 7}, {15, 16}, {16, 8}},
                 {5, 6, 7, 8});
      return GenTreeRandom<S>(cluster, q, 26, 9, seed);
    }
  }
  LOG(FATAL) << "unreachable";
  std::abort();
}

using SweepParam = std::tuple<Shape, int, double, std::uint64_t>;

std::string SweepParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const Shape shape = std::get<0>(info.param);
  const int p = std::get<1>(info.param);
  const double skew = std::get<2>(info.param);
  const std::uint64_t seed = std::get<3>(info.param);
  return ShapeName(shape) + "_p" + std::to_string(p) + "_skew" +
         std::to_string(static_cast<int>(skew * 10)) + "_s" +
         std::to_string(seed);
}

class PropertySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PropertySweepTest, TreeEntryPointMatchesOracle) {
  const auto [shape, p, skew, seed] = GetParam();
  mpc::Cluster cluster(p);
  auto instance = MakeInstance(shape, cluster, skew, seed);
  Relation<S> expected = EvaluateReference(instance);
  Relation<S> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  // Align column order if the algorithm oriented the path differently.
  if (!(got.schema() == expected.schema()) &&
      got.schema().size() == expected.schema().size()) {
    Relation<S> aligned(expected.schema());
    const auto positions =
        got.schema().PositionsOf(expected.schema().attrs());
    for (const auto& t : got.tuples()) {
      aligned.Add(t.row.Select(positions), t.w);
    }
    aligned.Normalize();
    got = aligned;
  }
  EXPECT_TRUE(got == expected)
      << ShapeName(shape) << " p=" << p << " skew=" << skew
      << " seed=" << seed << ": got " << got.size() << " expected "
      << expected.size();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertySweepTest,
    ::testing::Combine(
        ::testing::Values(Shape::kMatMul, Shape::kLine3, Shape::kLine4,
                          Shape::kStar3, Shape::kStarLikeMixed, Shape::kFig1,
                          Shape::kFig2, Shape::kInteriorOutputPath,
                          Shape::kGeneralTwig),
        ::testing::Values(1, 4, 16), ::testing::Values(0.0, 0.8),
        ::testing::Values(1u, 2u)),
    SweepParamName);

// Cross-check the baseline against the new algorithms on the same grid
// (cheaper subset): both are full implementations, so agreement is strong
// evidence against correlated bugs.
using AgreementParam = std::tuple<Shape, std::uint64_t>;

std::string AgreementParamName(
    const ::testing::TestParamInfo<AgreementParam>& info) {
  return ShapeName(std::get<0>(info.param)) + "_s" +
         std::to_string(std::get<1>(info.param));
}

class BaselineAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(BaselineAgreementTest, YannakakisAgreesWithTreeAlgorithm) {
  const auto [shape, seed] = GetParam();
  mpc::Cluster c1(8), c2(8);
  auto i1 = MakeInstance(shape, c1, 0.5, seed);
  auto i2 = MakeInstance(shape, c2, 0.5, seed);
  Relation<S> yann = YannakakisJoinAggregate(c1, std::move(i1)).ToLocal();
  Relation<S> ours = TreeQueryAggregate(c2, std::move(i2)).ToLocal();
  yann.Normalize();
  ours.Normalize();
  if (!(ours.schema() == yann.schema())) {
    Relation<S> aligned(yann.schema());
    const auto positions = ours.schema().PositionsOf(yann.schema().attrs());
    for (const auto& t : ours.tuples()) {
      aligned.Add(t.row.Select(positions), t.w);
    }
    aligned.Normalize();
    ours = aligned;
  }
  EXPECT_TRUE(yann == ours) << ShapeName(shape) << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineAgreementTest,
    ::testing::Combine(::testing::Values(Shape::kMatMul, Shape::kLine3,
                                         Shape::kStar3, Shape::kFig1,
                                         Shape::kFig2, Shape::kGeneralTwig),
                       ::testing::Values(11u, 12u, 13u)),
    AgreementParamName);

}  // namespace
}  // namespace parjoin
