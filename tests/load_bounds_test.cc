// Load-bound property suite: measured loads of every algorithm must stay
// within a constant factor of the Table 1 expressions on block-structured
// instances across a parameter grid. The constants are generous (they
// absorb the simulator's replication constants and the Õ log factors) but
// fixed — a regression that breaks the asymptotics will trip these.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

double P23(int p) { return std::pow(static_cast<double>(p), 2.0 / 3.0); }

class MatMulBoundTest
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(MatMulBoundTest, Theorem1LoadBound) {
  const auto [p, out] = GetParam();
  const std::int64_t n = 8000;
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(n, out, 4);
  mpc::Cluster cluster(p);
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  cluster.ResetStats();
  MatMul(cluster, std::move(instance.relations[0]),
         std::move(instance.relations[1]));
  const double n1 = static_cast<double>(cfg.n1());
  const double n2 = static_cast<double>(cfg.n2());
  const double o = static_cast<double>(cfg.out());
  const double bound =
      (n1 + n2) / p +
      std::min(std::sqrt(n1 * n2 / p), std::cbrt(n1 * n2 * o) / P23(p));
  EXPECT_LE(cluster.stats().max_load, static_cast<std::int64_t>(12 * bound))
      << "p=" << p << " OUT=" << cfg.out();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatMulBoundTest,
    ::testing::Combine(::testing::Values(8, 32, 128),
                       ::testing::Values<std::int64_t>(256, 4096, 65536)));

TEST(LineBoundTest, Theorem4LoadBound) {
  for (int p : {16, 64}) {
    LineBlockConfig cfg;
    cfg.arity = 3;
    cfg.blocks = 8;
    cfg.side_end = 6;
    cfg.side_mid = 30;
    mpc::Cluster cluster(p);
    auto instance = GenLineBlocks<S>(cluster, cfg);
    const double n = static_cast<double>(instance.relations[1].TotalSize());
    cluster.ResetStats();
    LineQueryAggregate(cluster, std::move(instance));
    const double o = static_cast<double>(cfg.out());
    const double bound = std::pow(n * o / p, 2.0 / 3.0) +
                         n * std::sqrt(o) / p + (n + o) / p;
    EXPECT_LE(cluster.stats().max_load,
              static_cast<std::int64_t>(15 * bound))
        << "p=" << p;
  }
}

TEST(StarBoundTest, Theorem5LoadBound) {
  for (int p : {16, 64}) {
    StarBlockConfig cfg;
    cfg.arity = 3;
    cfg.blocks = 8;
    cfg.side_arm = 6;
    cfg.side_b = 24;
    mpc::Cluster cluster(p);
    auto instance = GenStarBlocks<S>(cluster, cfg);
    const double n = static_cast<double>(instance.relations[0].TotalSize());
    cluster.ResetStats();
    StarQueryAggregate(cluster, std::move(instance));
    const double o = static_cast<double>(cfg.out());
    const double bound = std::pow(n * o / p, 2.0 / 3.0) +
                         n * std::sqrt(o) / p + (n + o) / p;
    EXPECT_LE(cluster.stats().max_load,
              static_cast<std::int64_t>(15 * bound))
        << "p=" << p;
  }
}

TEST(ImprovementTest, MatMulBeatsYannakakisAsOutGrows) {
  // Table 1's qualitative claim: at fixed N the new algorithm's advantage
  // over Yannakakis grows with OUT (sqrt(OUT) vs OUT^(1/3) scaling).
  const int p = 64;
  double prev_speedup = 0;
  for (std::int64_t out : {1024, 16384, 262144}) {
    MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(16000, out, 8);
    mpc::Cluster c1(p), c2(p);
    auto i1 = GenMatMulBlocks<S>(c1, cfg);
    auto i2 = GenMatMulBlocks<S>(c2, cfg);
    c1.ResetStats();
    YannakakisJoinAggregate(c1, std::move(i1));
    c2.ResetStats();
    MatMul(c2, std::move(i2.relations[0]), std::move(i2.relations[1]));
    const double speedup = static_cast<double>(c1.stats().max_load) /
                           static_cast<double>(c2.stats().max_load);
    EXPECT_GT(speedup, 1.0) << "OUT=" << out;
    EXPECT_GT(speedup, prev_speedup * 0.9)
        << "advantage should not collapse as OUT grows (OUT=" << out << ")";
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 3.0) << "large-OUT speedup should be substantial";
}

TEST(ImprovementTest, WorstCaseOptimalIndependentOfOut) {
  // §3.1's load depends on N and p only; sweeping OUT at fixed N must
  // leave the measured load roughly flat.
  const int p = 16;
  std::int64_t lo = 0, hi = 0;
  for (std::int64_t out : {1024, 262144}) {
    MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(10000, out, 4);
    mpc::Cluster cluster(p);
    auto instance = GenMatMulBlocks<S>(cluster, cfg);
    cluster.ResetStats();
    MatMulOptions options;
    options.strategy = MatMulStrategy::kWorstCase;
    MatMul(cluster, std::move(instance.relations[0]),
           std::move(instance.relations[1]), options);
    (out == 1024 ? lo : hi) = cluster.stats().max_load;
  }
  EXPECT_LT(hi, 4 * lo) << "worst-case load should be OUT-insensitive";
  EXPECT_LT(lo, 4 * hi);
}

TEST(RoundsTest, AllAlgorithmsConstantRounds) {
  // Rounds must not scale with the input size (only with the query size
  // and the log-factor repetitions). Compare rounds at N and 4N.
  auto rounds_for = [](std::int64_t tuples) {
    mpc::Cluster cluster(16);
    auto instance = GenTreeRandom<S>(cluster, Fig2Query(), tuples,
                                     tuples * 4 / 5, 3);
    cluster.ResetStats();
    TreeQueryAggregate(cluster, std::move(instance));
    return cluster.stats().rounds;
  };
  const int r1 = rounds_for(60);
  const int r2 = rounds_for(240);
  EXPECT_LT(r2, 3 * r1 + 200)
      << "rounds grew superlogarithmically with N: " << r1 << " -> " << r2;
}

}  // namespace
}  // namespace parjoin
