// Tests for overflow-guarded int64 arithmetic (common/checked_math.h):
// exact results in range, saturation at the rails, and loud aborts from
// the Checked* variants that protect TwoWayJoin's heavy threshold.

#include "parjoin/common/checked_math.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace parjoin {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(CheckedMathTest, DetectsOverflow) {
  std::int64_t out = 0;
  EXPECT_FALSE(MulOverflows(1 << 20, 1 << 20, &out));
  EXPECT_EQ(out, std::int64_t{1} << 40);
  EXPECT_TRUE(MulOverflows(std::int64_t{1} << 32, std::int64_t{1} << 32, &out));
  EXPECT_FALSE(AddOverflows(kMax - 1, 1, &out));
  EXPECT_EQ(out, kMax);
  EXPECT_TRUE(AddOverflows(kMax, 1, &out));
}

TEST(CheckedMathTest, SaturatesAtTheRails) {
  EXPECT_EQ(SaturatingMul(3, 7), 21);
  EXPECT_EQ(SaturatingMul(std::int64_t{1} << 32, std::int64_t{1} << 32), kMax);
  EXPECT_EQ(SaturatingMul(std::int64_t{1} << 32, -(std::int64_t{1} << 32)),
            kMin);
  EXPECT_EQ(SaturatingAdd(kMax, kMax), kMax);
  EXPECT_EQ(SaturatingAdd(kMin, -1), kMin);
  EXPECT_EQ(SaturatingAdd(5, -3), 2);
}

TEST(CheckedMathDeathTest, CheckedVariantsFailLoudly) {
  EXPECT_EQ(CheckedMul(1 << 10, 1 << 10), 1 << 20);
  EXPECT_EQ(CheckedAdd(kMax - 5, 5), kMax);
  EXPECT_DEATH(CheckedMul(std::int64_t{1} << 62, 4), "overflow");
  EXPECT_DEATH(CheckedAdd(kMax, 1), "overflow");
}

}  // namespace
}  // namespace parjoin
