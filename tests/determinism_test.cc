// The tentpole guarantee of the threaded simulator: for every thread
// count, primitives and algorithms produce bit-identical outputs (same
// elements, same parts, same order) and bit-identical cost ledgers as the
// sequential PARJOIN_THREADS=1 path. SetParallelForThreads lets one
// process compare the two directly.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/common/hash.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using KV = std::pair<std::int64_t, std::int64_t>;

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

mpc::Dist<KV> MakeInput(std::int64_t n, std::int64_t keys, int parts) {
  Rng rng(17);
  std::vector<KV> items;
  items.reserve(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    items.emplace_back(rng.Uniform(0, keys - 1), rng.Uniform(1, 9));
  }
  return mpc::ScatterEvenly(std::move(items), parts);
}

struct PrimitiveTrace {
  std::vector<std::vector<KV>> sorted;
  std::vector<std::vector<KV>> grouped;
  std::vector<std::vector<KV>> exchanged;
  std::vector<std::vector<KV>> reduced;
  mpc::Cluster::Stats stats;
};

PrimitiveTrace RunPrimitives(int threads) {
  SetParallelForThreads(threads);
  const int p = 16;
  mpc::Cluster c(p);
  // Large enough to cross the threaded-routing cutoff in Exchange.
  mpc::Dist<KV> input = MakeInput(1 << 15, 1 << 10, p);

  PrimitiveTrace trace;
  trace.sorted = mpc::Sort(c, input, [](const KV& a, const KV& b) {
                   return a.first < b.first;
                 }).parts();
  trace.grouped = mpc::SortGroupedByKey(c, input, [](const KV& kv) {
                    return kv.first;
                  }).parts();
  trace.exchanged = mpc::Exchange(c, input, p, [p](const KV& kv) {
                      return static_cast<int>(
                          Mix64(static_cast<std::uint64_t>(kv.first)) %
                          static_cast<std::uint64_t>(p));
                    }).parts();
  trace.reduced = mpc::ReduceByKey(
                      c, input, [](const KV& kv) { return kv.first; },
                      [](KV* acc, const KV& kv) { acc->second += kv.second; })
                      .parts();
  trace.stats = c.stats();
  return trace;
}

TEST(DeterminismTest, PrimitivesMatchSequentialBitForBit) {
  ThreadOverrideGuard guard;
  const PrimitiveTrace sequential = RunPrimitives(1);
  for (int threads : {2, 3, 4, 7, 8}) {
    const PrimitiveTrace threaded = RunPrimitives(threads);
    EXPECT_EQ(threaded.sorted, sequential.sorted) << "threads=" << threads;
    EXPECT_EQ(threaded.grouped, sequential.grouped) << "threads=" << threads;
    EXPECT_EQ(threaded.exchanged, sequential.exchanged)
        << "threads=" << threads;
    EXPECT_EQ(threaded.reduced, sequential.reduced) << "threads=" << threads;
    EXPECT_EQ(threaded.stats.rounds, sequential.stats.rounds);
    EXPECT_EQ(threaded.stats.max_load, sequential.stats.max_load);
    EXPECT_EQ(threaded.stats.total_comm, sequential.stats.total_comm);
    EXPECT_EQ(threaded.stats.critical_path, sequential.stats.critical_path);
  }
}

TEST(DeterminismTest, TwoWayJoinMatchesSequentialBitForBit) {
  ThreadOverrideGuard guard;
  using S = CountingSemiring;
  MatMulGenConfig cfg;
  cfg.n1 = 4000;
  cfg.n2 = 3600;
  cfg.dom_a = 300;
  cfg.dom_b = 40;  // few join values => heavy skew => grids exercised
  cfg.dom_c = 300;
  cfg.skew_b = 0.9;
  cfg.seed = 23;

  std::vector<std::vector<Tuple<S>>> sequential_parts;
  mpc::Cluster::Stats sequential_stats;
  for (int threads : {1, 5}) {
    SetParallelForThreads(threads);
    mpc::Cluster c(16);
    auto instance = GenMatMulRandom<S>(c, cfg);
    c.ResetStats();
    DistRelation<S> joined =
        TwoWayJoin(c, instance.relations[0], instance.relations[1]);
    if (threads == 1) {
      sequential_parts = std::move(joined.data.parts());
      sequential_stats = c.stats();
      continue;
    }
    ASSERT_EQ(joined.data.num_parts(),
              static_cast<int>(sequential_parts.size()));
    for (int s = 0; s < joined.data.num_parts(); ++s) {
      const auto& got = joined.data.part(s);
      const auto& want = sequential_parts[static_cast<size_t>(s)];
      ASSERT_EQ(got.size(), want.size()) << "part " << s;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].row == want[i].row) << "part " << s << " #" << i;
        EXPECT_EQ(got[i].w, want[i].w) << "part " << s << " #" << i;
      }
    }
    EXPECT_EQ(c.stats().rounds, sequential_stats.rounds);
    EXPECT_EQ(c.stats().max_load, sequential_stats.max_load);
    EXPECT_EQ(c.stats().total_comm, sequential_stats.total_comm);
  }
}

}  // namespace
}  // namespace parjoin
