// Unit tests for the common utilities: RNG determinism and distribution
// sanity, Zipf sampling, hashing, table formatting, and logging macros.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/random.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/common/table_printer.h"

namespace parjoin {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u) << "all 9 values should appear in 2000 draws";
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  parent2.Fork();
  EXPECT_EQ(parent.Next(), parent2.Next()) << "fork must be deterministic";
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent.Next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(ZipfTest, SkewZeroIsRoughlyUniform) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)] += 1;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 2000, 300) << "rank " << rank;
  }
}

TEST(ZipfTest, HigherSkewConcentratesOnLowRanks) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.2);
  int top10 = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) <= 10) ++top10;
  }
  EXPECT_GT(top10, kDraws / 3) << "rank<=10 should dominate at skew 1.2";
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(9);
  ZipfSampler zipf(50, 0.7);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 50);
  }
}

TEST(HashTest, Mix64IsInjectiveOnSample) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, SeededHashFamiliesDiffer) {
  SeededHash h1(1), h2(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    if (h1(i) == h2(i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(HashTest, SeededHashBalanced) {
  SeededHash h(17);
  std::vector<int> buckets(16, 0);
  for (std::uint64_t i = 0; i < 16000; ++i) buckets[h(i) % 16] += 1;
  for (int count : buckets) EXPECT_NEAR(count, 1000, 150);
}

TEST(FmtTest, ThousandsSeparators) {
  EXPECT_EQ(Fmt(std::int64_t{0}), "0");
  EXPECT_EQ(Fmt(std::int64_t{999}), "999");
  EXPECT_EQ(Fmt(std::int64_t{1000}), "1,000");
  EXPECT_EQ(Fmt(std::int64_t{1234567}), "1,234,567");
  EXPECT_EQ(Fmt(std::int64_t{-45678}), "-45,678");
}

TEST(FmtTest, DoublesCompact) {
  EXPECT_EQ(Fmt(1.5), "1.5");
  EXPECT_EQ(Fmt(12000.0), "12,000");
  EXPECT_EQ(Fmt(0.123456), "0.123");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"12345678", "x"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Every printed line has the same width.
  std::istringstream lines(out);
  std::string line;
  std::set<size_t> widths;
  while (std::getline(lines, line)) {
    if (!line.empty()) widths.insert(line.size());
  }
  EXPECT_EQ(widths.size(), 1u) << out;
  EXPECT_NE(out.find("12345678"), std::string::npos);
}

TEST(TablePrinterDeathTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMillis(), w.ElapsedSeconds());
}

TEST(LoggingDeathTest, CheckMacrosFireWithOperands) {
  EXPECT_DEATH(CHECK_EQ(1, 2), "1 vs. 2");
  EXPECT_DEATH(CHECK_LT(5, 3), "Check failed: 5 < 3");
  const bool condition = false;
  EXPECT_DEATH(CHECK(condition) << "extra context", "extra context");
}

TEST(LoggingTest, NonFatalSeveritiesReturn) {
  LOG(INFO) << "info is fine";
  LOG(WARNING) << "warning is fine";
  LOG(ERROR) << "error is fine";
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  // Pin the seed-expansion outputs: changing them silently would break
  // reproducibility of every seeded workload.
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace parjoin
