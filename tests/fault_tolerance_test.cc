// Fault-tolerance tests: deterministic fault schedules, checkpoint/replay
// recovery through plan::PlanAndRun, the load-budget guardrail, and the
// abort-safety of the round-accounting machinery.
//
// The headline property mirrors the determinism tentpole: with fault
// injection on, every tier-1 query shape recovers to an output
// bit-identical (after Normalize) to the fault-free run — at every thread
// count — and the recovery traffic shows up in the cost ledger instead of
// being silently free.

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/checkpoint.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/faults.h"
#include "parjoin/plan/executor.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

// The CI fault matrix varies these; local runs get fixed defaults.
std::uint64_t FaultSeed() {
  if (const char* env = std::getenv("PARJOIN_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 7;
}

int CheckpointInterval() {
  if (const char* env = std::getenv("PARJOIN_CHECKPOINT_INTERVAL")) {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return 2;
}

plan::ExecutionOptions FaultedOptions() {
  plan::ExecutionOptions options;
  options.faults.enabled = true;
  options.faults.seed = FaultSeed();
  options.checkpoint_interval = CheckpointInterval();
  return options;
}

// --- schedule determinism -----------------------------------------------------

TEST(FaultPlanTest, SameSeedSameSchedule) {
  mpc::FaultConfig config;
  config.seed = 42;
  const mpc::FaultPlan a = mpc::FaultPlan::Generate(config, 8);
  const mpc::FaultPlan b = mpc::FaultPlan::Generate(config, 8);
  EXPECT_EQ(a.ScheduleString(), b.ScheduleString());
  EXPECT_FALSE(a.ScheduleString().empty());
  EXPECT_NE(a.ScheduleString().find("crash"), std::string::npos);
  EXPECT_NE(a.ScheduleString().find("straggler"), std::string::npos);
  EXPECT_NE(a.ScheduleString().find("corruption"), std::string::npos);
}

TEST(FaultPlanTest, EventsRespectConfigCountsAndHorizon) {
  mpc::FaultConfig config;
  config.crashes = 2;
  config.stragglers = 3;
  config.corruptions = 1;
  config.horizon = 5;
  const mpc::FaultPlan plan = mpc::FaultPlan::Generate(config, 16);
  int crashes = 0, stragglers = 0, corruptions = 0;
  for (const mpc::FaultEvent& e : plan.events()) {
    EXPECT_GE(e.round, 1);
    EXPECT_LE(e.round, config.horizon);
    EXPECT_GE(e.server, 0);
    EXPECT_LT(e.server, 16);
    switch (e.kind) {
      case mpc::FaultKind::kCrash:
        ++crashes;
        break;
      case mpc::FaultKind::kStraggler:
        ++stragglers;
        EXPECT_GE(e.factor, config.straggle_min);
        EXPECT_LE(e.factor, config.straggle_max);
        break;
      case mpc::FaultKind::kCorruption:
        ++corruptions;
        EXPECT_NE(e.corruption_mask, 0u);
        break;
    }
  }
  EXPECT_EQ(crashes, 2);
  EXPECT_EQ(stragglers, 3);
  EXPECT_EQ(corruptions, 1);
}

// --- recovery to bit-identical outputs ----------------------------------------

// Runs `make_instance` fault-free and under the full fault schedule (crash
// + straggler + corruption) and requires identical normalized outputs,
// with every fault visibly priced into the ledger.
template <typename MakeInstance>
void ExpectRecoversIdentically(const MakeInstance& make_instance,
                               int p, const char* what) {
  Relation<S> baseline;
  plan::Algorithm chosen = plan::Algorithm::kYannakakis;
  {
    mpc::Cluster cluster(p);
    auto exec = plan::PlanAndRun(cluster, make_instance(cluster));
    baseline = exec.result.ToLocal();
    baseline.Normalize();
    chosen = exec.plan.chosen;
    EXPECT_EQ(exec.plan.execution_stats.recovery_comm, 0) << what;
    EXPECT_EQ(exec.plan.recovery.attempts, 1) << what;
  }

  mpc::Cluster cluster(p);
  auto instance = make_instance(cluster);
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, FaultedOptions());
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();

  EXPECT_TRUE(got == baseline)
      << what << ": got " << got.size() << " tuples, expected "
      << baseline.size() << "\n"
      << exec.plan.ToText();
  // Planning is fault-free, so the choice must match the baseline run.
  EXPECT_EQ(exec.plan.chosen, chosen) << what;

  const auto& stats = exec.plan.execution_stats;
  const auto& recovery = exec.plan.recovery;
  EXPECT_GE(recovery.crashes, 1) << what;
  EXPECT_GE(recovery.attempts, 2) << what;
  EXPECT_EQ(cluster.p(), p - recovery.crashes) << what;
  EXPECT_GE(stats.retransmits, 1) << what;
  EXPECT_GT(stats.recovery_comm, 0) << what;
  EXPECT_GE(stats.critical_path, stats.max_load) << what;
  bool straggled = false;
  for (const std::string& event : recovery.events) {
    if (event.find("straggler") != std::string::npos) straggled = true;
  }
  EXPECT_TRUE(straggled) << what << ": no straggler event fired\n"
                         << exec.plan.ToText();
}

TEST(FaultRecoveryTest, MatMulRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          return GenMatMulBlocks<S>(
              cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
        },
        /*p=*/8, "matmul");
  }
}

TEST(FaultRecoveryTest, LineRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          LineBlockConfig cfg;
          cfg.arity = 3;
          cfg.blocks = 4;
          cfg.side_end = 4;
          cfg.side_mid = 12;
          return GenLineBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "line");
  }
}

TEST(FaultRecoveryTest, StarRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          StarBlockConfig cfg;
          return GenStarBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "star");
  }
}

TEST(FaultRecoveryTest, TreeRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          JoinTree query({{0, 1}, {1, 2}, {2, 3}, {2, 4}}, {0, 3, 4});
          return GenTreeRandom<S>(cluster, std::move(query),
                                  /*tuples_per_relation=*/600, /*dom=*/30,
                                  /*seed=*/5);
        },
        /*p=*/8, "tree");
  }
}

TEST(FaultRecoveryTest, SameSeedsReproduceTheRunExactly) {
  auto run = [] {
    mpc::Cluster cluster(8);
    auto instance = GenMatMulBlocks<S>(
        cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
    auto exec = plan::PlanAndRun(cluster, std::move(instance),
                                 plan::PlannerOptions{}, FaultedOptions());
    Relation<S> out = exec.result.ToLocal();
    out.Normalize();
    return std::make_pair(std::move(out), exec.plan.execution_stats);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.first == b.first);
  EXPECT_EQ(a.second.rounds, b.second.rounds);
  EXPECT_EQ(a.second.max_load, b.second.max_load);
  EXPECT_EQ(a.second.total_comm, b.second.total_comm);
  EXPECT_EQ(a.second.critical_path, b.second.critical_path);
  EXPECT_EQ(a.second.recovery_comm, b.second.recovery_comm);
  EXPECT_EQ(a.second.retransmits, b.second.retransmits);
  EXPECT_EQ(a.second.crashes, b.second.crashes);
}

// --- corruption repair in isolation -------------------------------------------

TEST(FaultCorruptionTest, RetransmissionRepairsWithoutChangingOutput) {
  using KV = std::pair<std::int64_t, std::int64_t>;
  const int p = 4;
  auto make_input = [p] {
    std::vector<KV> items;
    for (std::int64_t i = 0; i < 200; ++i) items.emplace_back(i, i % 7);
    return mpc::ScatterEvenly(std::move(items), p);
  };
  auto route = [p](const KV& kv) {
    return static_cast<int>(kv.first % p);
  };

  mpc::Cluster clean(p);
  const auto clean_parts =
      mpc::Exchange(clean, make_input(), p, route).parts();

  mpc::Cluster faulty(p);
  mpc::FaultConfig config;
  config.crashes = 0;
  config.stragglers = 0;
  config.corruptions = 1;
  config.horizon = 1;
  faulty.EnableFaults(config);
  const auto faulty_parts =
      mpc::Exchange(faulty, make_input(), p, route).parts();

  EXPECT_EQ(clean_parts, faulty_parts);
  EXPECT_EQ(faulty.stats().retransmits, 1);
  EXPECT_GT(faulty.stats().recovery_comm, 0);
  // The repaired destination received its message twice.
  EXPECT_GT(faulty.stats().total_comm, clean.stats().total_comm);
  EXPECT_EQ(faulty.stats().total_comm - faulty.stats().recovery_comm,
            clean.stats().total_comm);
}

// --- stragglers and the critical path -----------------------------------------

TEST(FaultStragglerTest, CriticalPathStretchesByTheDelayFactor) {
  mpc::Cluster cluster(4);
  mpc::FaultConfig config;
  config.crashes = 0;
  config.corruptions = 0;
  config.stragglers = 1;
  config.straggle_min = 3.0;
  config.straggle_max = 3.0;
  config.horizon = 1;
  cluster.EnableFaults(config);
  cluster.ChargeUniformRound(10);  // straggled: contributes 30
  cluster.ChargeUniformRound(10);  // normal: contributes 10
  EXPECT_EQ(cluster.stats().max_load, 10);
  EXPECT_EQ(cluster.stats().critical_path, 40);
  ASSERT_EQ(cluster.fault_log().size(), 1u);
  EXPECT_NE(cluster.fault_log()[0].find("straggler"), std::string::npos);
}

TEST(FaultStragglerTest, FaultFreeCriticalPathIsSumOfRoundMaxima) {
  mpc::Cluster cluster(3);
  cluster.ChargeRound({5, 9, 2});
  cluster.ChargeRound({1, 1, 7});
  EXPECT_EQ(cluster.stats().critical_path, 16);
  EXPECT_EQ(cluster.stats().max_load, 9);
}

// --- checkpoint replication & restore -----------------------------------------

TEST(CheckpointTest, ReplicationRoundsAreChargedAsRecovery) {
  mpc::Cluster cluster(2);
  cluster.SetCheckpointInterval(2);
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.stats().rounds, 1);
  cluster.ChargeRound({5, 7});
  // The second charged round completed the interval: one replication round
  // copying everything since the last checkpoint (10 and 14 tuples).
  EXPECT_EQ(cluster.stats().rounds, 3);
  EXPECT_EQ(cluster.stats().max_load, 14);
  EXPECT_EQ(cluster.stats().recovery_comm, 24);
  EXPECT_EQ(cluster.stats().total_comm, 12 + 12 + 24);
  EXPECT_EQ(cluster.stats().critical_path, 7 + 7 + 14);
}

TEST(CheckpointTest, SnapshotAndRestoreRehostOntoLiveServers) {
  mpc::Cluster cluster(7);
  std::vector<std::vector<int>> parts(8);
  for (int v = 0; v < 8; ++v) parts[static_cast<size_t>(v)] = {v, v, v};
  mpc::Dist<int> d(std::move(parts));

  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(cluster, d);
  EXPECT_EQ(cluster.stats().recovery_comm, 24);  // 8 parts x 3 tuples
  EXPECT_EQ(cluster.stats().rounds, 1);

  const mpc::Dist<int> restored = mpc::RestoreDist(cluster, snap);
  EXPECT_EQ(restored.num_parts(), 7);
  EXPECT_EQ(cluster.stats().recovery_comm, 48);
  // Snapshot partition 7 lands on server 7 mod 7 = 0 alongside partition 0.
  EXPECT_EQ(restored.part(0), (std::vector<int>{0, 0, 0, 7, 7, 7}));
  EXPECT_EQ(restored.part(1), (std::vector<int>{1, 1, 1}));
}

TEST(CheckpointTest, SinglePartitionSnapshotIsUnrecoverableAndFree) {
  // (v+1) mod 1 is v itself: with one partition there is no neighbor to
  // hold the backup, so the snapshot is marked unrecoverable and no
  // useless self-copy is charged.
  mpc::Cluster cluster(1);
  mpc::Dist<int> d(std::vector<std::vector<int>>{{1, 2, 3}});
  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(cluster, d);
  EXPECT_FALSE(snap.recoverable);
  ASSERT_EQ(snap.parts.size(), 1u);
  EXPECT_EQ(snap.parts[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cluster.stats().rounds, 0);
  EXPECT_EQ(cluster.stats().recovery_comm, 0);
  EXPECT_EQ(cluster.stats().total_comm, 0);
}

TEST(CheckpointDeathTest, RestoringUnrecoverableSnapshotDies) {
  mpc::Cluster cluster(1);
  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(
      cluster, mpc::Dist<int>(std::vector<std::vector<int>>{{4, 5}}));
  EXPECT_DEATH(mpc::RestoreDist(cluster, snap),
               "single-partition snapshot");
}

TEST(FaultRecoveryTest, SingleServerClusterNeverCrashes) {
  // Crash-at-p=1 regression: the cluster never fells its last live
  // server, so an armed crash schedule must not fire, shrink p, or
  // abort any round.
  mpc::Cluster cluster(1);
  mpc::FaultConfig config;
  config.seed = FaultSeed();
  config.crashes = 3;
  config.stragglers = 0;
  config.corruptions = 0;
  config.horizon = 4;
  cluster.EnableFaults(config);
  for (int r = 0; r < 6; ++r) cluster.ChargeUniformRound(5);
  EXPECT_EQ(cluster.p(), 1);
  EXPECT_EQ(cluster.stats().crashes, 0);
  EXPECT_EQ(cluster.stats().rounds, 6);
}

TEST(FaultRecoveryTest, SingleServerPlanAndRunCompletesWithFaultsArmed) {
  // End-to-end p=1: the executor's checkpoint is unrecoverable (and free
  // of charge), and execution completes because crashes cannot fire.
  mpc::Cluster cluster(1);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(500, 128, 2));
  Relation<S> expected = EvaluateReference(instance);
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, FaultedOptions());
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
  EXPECT_EQ(cluster.p(), 1);
  EXPECT_EQ(exec.plan.recovery.crashes, 0);
  EXPECT_EQ(exec.plan.recovery.attempts, 1);
}

// --- load-budget guardrail ----------------------------------------------------

TEST(LoadBudgetTest, ExceededBudgetDegradesOntoYannakakis) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  Relation<S> expected = EvaluateReference(instance);

  cluster.ResetStats();
  plan::PhysicalPlan plan = plan::PlanQuery(cluster, instance);
  ASSERT_NE(plan.shape, QueryShape::kSingleEdge);
  plan.chosen = plan::Algorithm::kMatMulWorstCase;
  plan.predicted_load = 1;  // guaranteed mispredicted

  plan::ExecutionOptions options;
  options.load_budget_factor = 1.0;
  cluster.ResetStats();
  Relation<S> got =
      plan::ExecuteWithRecovery(cluster, std::move(instance), options, &plan)
          .ToLocal();
  got.Normalize();

  EXPECT_TRUE(plan.recovery.degraded_to_baseline) << plan.ToText();
  EXPECT_EQ(plan.recovery.budget_aborts, 1);
  EXPECT_EQ(plan.executed, plan::Algorithm::kYannakakis);
  EXPECT_EQ(plan.recovery.crashes, 0);
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

TEST(LoadBudgetTest, GenerousBudgetNeverFires) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  plan::ExecutionOptions options;
  options.load_budget_factor = 1e9;
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, options);
  EXPECT_EQ(exec.plan.recovery.budget_aborts, 0);
  EXPECT_FALSE(exec.plan.recovery.degraded_to_baseline);
  EXPECT_EQ(exec.plan.executed, exec.plan.chosen);
}

// --- abort safety of the accounting machinery ---------------------------------

TEST(AbortSafetyTest, ResetStatsInvalidatesLiveRegions) {
  mpc::Cluster cluster(4);
  {
    mpc::ParallelRegion region(cluster);
    region.NextBranch();
    cluster.ResetStats();  // stale guard must become a no-op
    region.NextBranch();
  }
  cluster.CheckQuiescent();
  cluster.ChargeUniformRound(3);
  EXPECT_EQ(cluster.stats().rounds, 1);
}

TEST(AbortSafetyTest, RoundAbortUnwindClosesRegions) {
  mpc::Cluster cluster(4);
  cluster.SetLoadBudget(1);
  bool aborted = false;
  try {
    mpc::ParallelRegion region(cluster);
    cluster.ChargeUniformRound(100);
  } catch (const mpc::RoundAbort& abort) {
    aborted = true;
    EXPECT_EQ(abort.reason, mpc::RoundAbort::Reason::kLoadBudget);
    EXPECT_NE(abort.ToString().find("exceeded budget"), std::string::npos);
  }
  ASSERT_TRUE(aborted);
  cluster.CheckQuiescent();  // the unwound guard closed its region
  cluster.SetLoadBudget(0);
  cluster.ChargeUniformRound(100);
  EXPECT_EQ(cluster.stats().max_load, 100);
}

TEST(AbortSafetyDeathTest, OverflowingChargeAborts) {
  mpc::Cluster cluster(4);
  EXPECT_DEATH(cluster.ChargeUniformRound(
                   std::numeric_limits<std::int64_t>::max() / 2),
               "overflow");
}

}  // namespace
}  // namespace parjoin
