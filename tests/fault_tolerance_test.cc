// Fault-tolerance tests: deterministic fault schedules, checkpoint/replay
// recovery through plan::PlanAndRun, the load-budget guardrail, and the
// abort-safety of the round-accounting machinery.
//
// The headline property mirrors the determinism tentpole: with fault
// injection on, every tier-1 query shape recovers to an output
// bit-identical (after Normalize) to the fault-free run — at every thread
// count — and the recovery traffic shows up in the cost ledger instead of
// being silently free.

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/checkpoint.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/faults.h"
#include "parjoin/plan/executor.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

// The CI fault matrix varies these; local runs get fixed defaults.
std::uint64_t FaultSeed() {
  if (const char* env = std::getenv("PARJOIN_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 7;
}

int CheckpointInterval() {
  if (const char* env = std::getenv("PARJOIN_CHECKPOINT_INTERVAL")) {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return 2;
}

bool ResumeFromCheckpoint() {
  if (const char* env = std::getenv("PARJOIN_RESUME")) {
    return std::strtol(env, nullptr, 10) != 0;
  }
  return false;
}

plan::ExecutionOptions FaultedOptions() {
  plan::ExecutionOptions options;
  options.faults.enabled = true;
  options.faults.seed = FaultSeed();
  options.checkpoint_interval = CheckpointInterval();
  options.resume_from_checkpoint = ResumeFromCheckpoint();
  return options;
}

// --- schedule determinism -----------------------------------------------------

TEST(FaultPlanTest, SameSeedSameSchedule) {
  mpc::FaultConfig config;
  config.seed = 42;
  const mpc::FaultPlan a = mpc::FaultPlan::Generate(config, 8);
  const mpc::FaultPlan b = mpc::FaultPlan::Generate(config, 8);
  EXPECT_EQ(a.ScheduleString(), b.ScheduleString());
  EXPECT_FALSE(a.ScheduleString().empty());
  EXPECT_NE(a.ScheduleString().find("crash"), std::string::npos);
  EXPECT_NE(a.ScheduleString().find("straggler"), std::string::npos);
  EXPECT_NE(a.ScheduleString().find("corruption"), std::string::npos);
}

TEST(FaultPlanTest, EventsRespectConfigCountsAndHorizon) {
  mpc::FaultConfig config;
  config.crashes = 2;
  config.stragglers = 3;
  config.corruptions = 1;
  config.horizon = 5;
  const mpc::FaultPlan plan = mpc::FaultPlan::Generate(config, 16);
  int crashes = 0, stragglers = 0, corruptions = 0;
  for (const mpc::FaultEvent& e : plan.events()) {
    EXPECT_GE(e.round, 1);
    EXPECT_LE(e.round, config.horizon);
    EXPECT_GE(e.server, 0);
    EXPECT_LT(e.server, 16);
    switch (e.kind) {
      case mpc::FaultKind::kCrash:
        ++crashes;
        break;
      case mpc::FaultKind::kStraggler:
        ++stragglers;
        EXPECT_GE(e.factor, config.straggle_min);
        EXPECT_LE(e.factor, config.straggle_max);
        break;
      case mpc::FaultKind::kCorruption:
        ++corruptions;
        EXPECT_NE(e.corruption_mask, 0u);
        break;
    }
  }
  EXPECT_EQ(crashes, 2);
  EXPECT_EQ(stragglers, 3);
  EXPECT_EQ(corruptions, 1);
}

// --- recovery to bit-identical outputs ----------------------------------------

// Runs `make_instance` fault-free and under the full fault schedule (crash
// + straggler + corruption) and requires identical normalized outputs,
// with every fault visibly priced into the ledger.
template <typename MakeInstance>
void ExpectRecoversIdentically(const MakeInstance& make_instance,
                               int p, const char* what) {
  Relation<S> baseline;
  plan::Algorithm chosen = plan::Algorithm::kYannakakis;
  {
    mpc::Cluster cluster(p);
    auto exec = plan::PlanAndRun(cluster, make_instance(cluster));
    baseline = exec.result.ToLocal();
    baseline.Normalize();
    chosen = exec.plan.chosen;
    EXPECT_EQ(exec.plan.execution_stats.recovery_comm, 0) << what;
    EXPECT_EQ(exec.plan.recovery.attempts, 1) << what;
  }

  mpc::Cluster cluster(p);
  auto instance = make_instance(cluster);
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, FaultedOptions());
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();

  EXPECT_TRUE(got == baseline)
      << what << ": got " << got.size() << " tuples, expected "
      << baseline.size() << "\n"
      << exec.plan.ToText();
  // Planning is fault-free, so the choice must match the baseline run.
  EXPECT_EQ(exec.plan.chosen, chosen) << what;

  const auto& stats = exec.plan.execution_stats;
  const auto& recovery = exec.plan.recovery;
  EXPECT_GE(recovery.crashes, 1) << what;
  EXPECT_GE(recovery.attempts, 2) << what;
  EXPECT_EQ(cluster.p(), p - recovery.crashes) << what;
  EXPECT_GE(stats.retransmits, 1) << what;
  EXPECT_GT(stats.recovery_comm, 0) << what;
  EXPECT_GE(stats.critical_path, stats.max_load) << what;
  bool straggled = false;
  for (const std::string& event : recovery.events) {
    if (event.find("straggler") != std::string::npos) straggled = true;
  }
  EXPECT_TRUE(straggled) << what << ": no straggler event fired\n"
                         << exec.plan.ToText();
}

TEST(FaultRecoveryTest, MatMulRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          return GenMatMulBlocks<S>(
              cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
        },
        /*p=*/8, "matmul");
  }
}

TEST(FaultRecoveryTest, LineRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          LineBlockConfig cfg;
          cfg.arity = 3;
          cfg.blocks = 4;
          cfg.side_end = 4;
          cfg.side_mid = 12;
          return GenLineBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "line");
  }
}

TEST(FaultRecoveryTest, StarRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          StarBlockConfig cfg;
          return GenStarBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "star");
  }
}

TEST(FaultRecoveryTest, TreeRecoversBitIdentical) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectRecoversIdentically(
        [](const mpc::Cluster& cluster) {
          JoinTree query({{0, 1}, {1, 2}, {2, 3}, {2, 4}}, {0, 3, 4});
          return GenTreeRandom<S>(cluster, std::move(query),
                                  /*tuples_per_relation=*/600, /*dom=*/30,
                                  /*seed=*/5);
        },
        /*p=*/8, "tree");
  }
}

TEST(FaultRecoveryTest, SameSeedsReproduceTheRunExactly) {
  auto run = [] {
    mpc::Cluster cluster(8);
    auto instance = GenMatMulBlocks<S>(
        cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
    auto exec = plan::PlanAndRun(cluster, std::move(instance),
                                 plan::PlannerOptions{}, FaultedOptions());
    Relation<S> out = exec.result.ToLocal();
    out.Normalize();
    return std::make_pair(std::move(out), exec.plan.execution_stats);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.first == b.first);
  EXPECT_EQ(a.second.rounds, b.second.rounds);
  EXPECT_EQ(a.second.max_load, b.second.max_load);
  EXPECT_EQ(a.second.total_comm, b.second.total_comm);
  EXPECT_EQ(a.second.critical_path, b.second.critical_path);
  EXPECT_EQ(a.second.recovery_comm, b.second.recovery_comm);
  EXPECT_EQ(a.second.retransmits, b.second.retransmits);
  EXPECT_EQ(a.second.crashes, b.second.crashes);
}

// --- corruption repair in isolation -------------------------------------------

TEST(FaultCorruptionTest, RetransmissionRepairsWithoutChangingOutput) {
  using KV = std::pair<std::int64_t, std::int64_t>;
  const int p = 4;
  auto make_input = [p] {
    std::vector<KV> items;
    for (std::int64_t i = 0; i < 200; ++i) items.emplace_back(i, i % 7);
    return mpc::ScatterEvenly(std::move(items), p);
  };
  auto route = [p](const KV& kv) {
    return static_cast<int>(kv.first % p);
  };

  mpc::Cluster clean(p);
  const auto clean_parts =
      mpc::Exchange(clean, make_input(), p, route).parts();

  mpc::Cluster faulty(p);
  mpc::FaultConfig config;
  config.crashes = 0;
  config.stragglers = 0;
  config.corruptions = 1;
  config.horizon = 1;
  faulty.EnableFaults(config);
  const auto faulty_parts =
      mpc::Exchange(faulty, make_input(), p, route).parts();

  EXPECT_EQ(clean_parts, faulty_parts);
  EXPECT_EQ(faulty.stats().retransmits, 1);
  EXPECT_GT(faulty.stats().recovery_comm, 0);
  // The repaired destination received its message twice.
  EXPECT_GT(faulty.stats().total_comm, clean.stats().total_comm);
  EXPECT_EQ(faulty.stats().total_comm - faulty.stats().recovery_comm,
            clean.stats().total_comm);
}

// --- stragglers and the critical path -----------------------------------------

TEST(FaultStragglerTest, CriticalPathStretchesByTheDelayFactor) {
  mpc::Cluster cluster(4);
  mpc::FaultConfig config;
  config.crashes = 0;
  config.corruptions = 0;
  config.stragglers = 1;
  config.straggle_min = 3.0;
  config.straggle_max = 3.0;
  config.horizon = 1;
  cluster.EnableFaults(config);
  cluster.ChargeUniformRound(10);  // straggled: contributes 30
  cluster.ChargeUniformRound(10);  // normal: contributes 10
  EXPECT_EQ(cluster.stats().max_load, 10);
  EXPECT_EQ(cluster.stats().critical_path, 40);
  ASSERT_EQ(cluster.fault_log().size(), 1u);
  EXPECT_NE(cluster.fault_log()[0].find("straggler"), std::string::npos);
}

TEST(FaultStragglerTest, FaultFreeCriticalPathIsSumOfRoundMaxima) {
  mpc::Cluster cluster(3);
  cluster.ChargeRound({5, 9, 2});
  cluster.ChargeRound({1, 1, 7});
  EXPECT_EQ(cluster.stats().critical_path, 16);
  EXPECT_EQ(cluster.stats().max_load, 9);
}

// --- checkpoint replication & restore -----------------------------------------

TEST(CheckpointTest, ReplicationRoundsAreChargedAsRecovery) {
  mpc::Cluster cluster(2);
  cluster.SetCheckpointInterval(2);
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.stats().rounds, 1);
  cluster.ChargeRound({5, 7});
  // The second charged round completed the interval: one replication round
  // copying everything since the last checkpoint (10 and 14 tuples).
  EXPECT_EQ(cluster.stats().rounds, 3);
  EXPECT_EQ(cluster.stats().max_load, 14);
  EXPECT_EQ(cluster.stats().recovery_comm, 24);
  EXPECT_EQ(cluster.stats().total_comm, 12 + 12 + 24);
  EXPECT_EQ(cluster.stats().critical_path, 7 + 7 + 14);
}

TEST(CheckpointTest, SnapshotAndRestoreRehostOntoLiveServers) {
  mpc::Cluster cluster(7);
  std::vector<std::vector<int>> parts(8);
  for (int v = 0; v < 8; ++v) parts[static_cast<size_t>(v)] = {v, v, v};
  mpc::Dist<int> d(std::move(parts));

  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(cluster, d);
  EXPECT_EQ(cluster.stats().recovery_comm, 24);  // 8 parts x 3 tuples
  EXPECT_EQ(cluster.stats().rounds, 1);

  const mpc::Dist<int> restored = mpc::RestoreDist(cluster, snap);
  EXPECT_EQ(restored.num_parts(), 7);
  EXPECT_EQ(cluster.stats().recovery_comm, 48);
  // Snapshot partition 7 lands on server 7 mod 7 = 0 alongside partition 0.
  EXPECT_EQ(restored.part(0), (std::vector<int>{0, 0, 0, 7, 7, 7}));
  EXPECT_EQ(restored.part(1), (std::vector<int>{1, 1, 1}));
}

TEST(CheckpointTest, SinglePartitionSnapshotIsUnrecoverableAndFree) {
  // (v+1) mod 1 is v itself: with one partition there is no neighbor to
  // hold the backup, so the snapshot is marked unrecoverable and no
  // useless self-copy is charged.
  mpc::Cluster cluster(1);
  mpc::Dist<int> d(std::vector<std::vector<int>>{{1, 2, 3}});
  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(cluster, d);
  EXPECT_FALSE(snap.recoverable);
  ASSERT_EQ(snap.parts.size(), 1u);
  EXPECT_EQ(snap.parts[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cluster.stats().rounds, 0);
  EXPECT_EQ(cluster.stats().recovery_comm, 0);
  EXPECT_EQ(cluster.stats().total_comm, 0);
}

TEST(CheckpointDeathTest, RestoringUnrecoverableSnapshotDies) {
  mpc::Cluster cluster(1);
  const mpc::DistSnapshot<int> snap = mpc::CheckpointDist(
      cluster, mpc::Dist<int>(std::vector<std::vector<int>>{{4, 5}}));
  EXPECT_DEATH(mpc::RestoreDist(cluster, snap),
               "single-partition snapshot");
}

TEST(FaultRecoveryTest, SingleServerClusterNeverCrashes) {
  // Crash-at-p=1 regression: the cluster never fells its last live
  // server, so an armed crash schedule must not fire, shrink p, or
  // abort any round.
  mpc::Cluster cluster(1);
  mpc::FaultConfig config;
  config.seed = FaultSeed();
  config.crashes = 3;
  config.stragglers = 0;
  config.corruptions = 0;
  config.horizon = 4;
  cluster.EnableFaults(config);
  for (int r = 0; r < 6; ++r) cluster.ChargeUniformRound(5);
  EXPECT_EQ(cluster.p(), 1);
  EXPECT_EQ(cluster.stats().crashes, 0);
  EXPECT_EQ(cluster.stats().rounds, 6);
}

TEST(FaultRecoveryTest, SingleServerPlanAndRunCompletesWithFaultsArmed) {
  // End-to-end p=1: the executor's checkpoint is unrecoverable (and free
  // of charge), and execution completes because crashes cannot fire.
  mpc::Cluster cluster(1);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(500, 128, 2));
  Relation<S> expected = EvaluateReference(instance);
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, FaultedOptions());
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
  EXPECT_EQ(cluster.p(), 1);
  EXPECT_EQ(exec.plan.recovery.crashes, 0);
  EXPECT_EQ(exec.plan.recovery.attempts, 1);
}

// --- load-budget guardrail ----------------------------------------------------

TEST(LoadBudgetTest, ExceededBudgetDegradesOntoYannakakis) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  Relation<S> expected = EvaluateReference(instance);

  cluster.ResetStats();
  plan::PhysicalPlan plan = plan::PlanQuery(cluster, instance);
  ASSERT_NE(plan.shape, QueryShape::kSingleEdge);
  plan.chosen = plan::Algorithm::kMatMulWorstCase;
  plan.predicted_load = 1;  // guaranteed mispredicted

  plan::ExecutionOptions options;
  options.load_budget_factor = 1.0;
  cluster.ResetStats();
  Relation<S> got =
      plan::ExecuteWithRecovery(cluster, std::move(instance), options, &plan)
          .ToLocal();
  got.Normalize();

  EXPECT_TRUE(plan.recovery.degraded_to_baseline) << plan.ToText();
  EXPECT_EQ(plan.recovery.budget_aborts, 1);
  EXPECT_EQ(plan.executed, plan::Algorithm::kYannakakis);
  EXPECT_EQ(plan.recovery.crashes, 0);
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

TEST(LoadBudgetTest, GenerousBudgetNeverFires) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  plan::ExecutionOptions options;
  options.load_budget_factor = 1e9;
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, options);
  EXPECT_EQ(exec.plan.recovery.budget_aborts, 0);
  EXPECT_FALSE(exec.plan.recovery.degraded_to_baseline);
  EXPECT_EQ(exec.plan.executed, exec.plan.chosen);
}

// --- mid-run checkpoint resume ------------------------------------------------

TEST(ResumeTest, CheckpointedRoundsTrackTheLatestReplication) {
  mpc::Cluster cluster(2);
  cluster.SetCheckpointInterval(2);
  EXPECT_EQ(cluster.checkpointed_rounds(), 0);
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.checkpointed_rounds(), 0);  // interval not complete
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.checkpointed_rounds(), 2);  // replication fired
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.checkpointed_rounds(), 2);  // round 3 not yet covered
  cluster.ChargeRound({5, 7});
  EXPECT_EQ(cluster.checkpointed_rounds(), 4);
}

TEST(ResumeTest, BeginAttemptFastForwardElidesCharges) {
  mpc::Cluster cluster(2);
  cluster.SetCheckpointInterval(2);
  cluster.ChargeRound({5, 7});
  cluster.ChargeRound({5, 7});
  ASSERT_EQ(cluster.checkpointed_rounds(), 2);
  const mpc::Cluster::Stats before = cluster.stats();

  cluster.BeginAttempt(2);
  EXPECT_EQ(cluster.stats().resumes, 1);
  cluster.ChargeRound({5, 7});  // elided
  cluster.ChargeRound({5, 7});  // elided
  // The fast-forward window charged nothing to the ledger.
  EXPECT_EQ(cluster.stats().rounds, before.rounds);
  EXPECT_EQ(cluster.stats().max_load, before.max_load);
  EXPECT_EQ(cluster.stats().total_comm, before.total_comm);
  EXPECT_EQ(cluster.stats().critical_path, before.critical_path);
  EXPECT_EQ(cluster.stats().recovery_comm, before.recovery_comm);
  EXPECT_EQ(cluster.stats().resumed_rounds, 2);
  // A second pre-replication crash would resume from the same point.
  EXPECT_EQ(cluster.checkpointed_rounds(), 2);

  // The first live round past the window charges normally and restarts
  // interval accounting from the window's end.
  cluster.ChargeRound({3, 4});
  EXPECT_EQ(cluster.stats().rounds, before.rounds + 1);
  EXPECT_EQ(cluster.stats().total_comm, before.total_comm + 7);
  EXPECT_EQ(cluster.checkpointed_rounds(), 2);
  cluster.ChargeRound({3, 4});
  EXPECT_EQ(cluster.checkpointed_rounds(), 4);
}

TEST(ResumeTest, BudgetAndFaultsDoNotFireInsideTheWindow) {
  mpc::Cluster cluster(3);
  cluster.SetCheckpointInterval(2);
  cluster.ChargeRound({5, 5, 5});
  cluster.ChargeRound({5, 5, 5});
  ASSERT_EQ(cluster.checkpointed_rounds(), 2);
  cluster.SetLoadBudget(1);
  cluster.BeginAttempt(2);
  // Both rounds exceed the budget but are elided: no abort.
  cluster.ChargeRound({5, 5, 5});
  cluster.ChargeRound({5, 5, 5});
  cluster.SetLoadBudget(0);
  EXPECT_EQ(cluster.stats().resumed_rounds, 2);
}

// Runs `make_instance` under a crashes-only schedule pinned past the first
// checkpoint interval and requires: the resumed run's output is identical
// to both the fault-free baseline and the input-replay recovery, while
// replaying strictly fewer rounds and charging strictly less recovery
// communication than input-replay.
template <typename MakeInstance>
void ExpectResumeSavesReplayedRounds(const MakeInstance& make_instance,
                                     int p, const char* what) {
  Relation<S> baseline;
  {
    mpc::Cluster cluster(p);
    auto exec = plan::PlanAndRun(cluster, make_instance(cluster));
    baseline = exec.result.ToLocal();
    baseline.Normalize();
  }

  auto faulted = [&](bool resume) {
    plan::ExecutionOptions options;
    options.faults.enabled = true;
    options.faults.seed = FaultSeed();
    options.faults.crashes = 1;
    options.faults.stragglers = 0;
    options.faults.corruptions = 0;
    // Pin the crash past the first interval checkpoint: input snapshots
    // plus at least two algorithm rounds have been charged by round 6 for
    // every tier-1 shape, so a replication round precedes the crash.
    options.faults.crash_rounds = {6};
    options.checkpoint_interval = 2;
    options.resume_from_checkpoint = resume;
    mpc::Cluster cluster(p);
    auto exec = plan::PlanAndRun(cluster, make_instance(cluster),
                                 plan::PlannerOptions{}, options);
    Relation<S> out = exec.result.ToLocal();
    out.Normalize();
    return std::make_pair(std::move(out), exec.plan);
  };

  const auto [replay_out, replay_plan] = faulted(/*resume=*/false);
  const auto [resume_out, resume_plan] = faulted(/*resume=*/true);

  ASSERT_EQ(replay_plan.recovery.crashes, 1) << what;
  ASSERT_EQ(resume_plan.recovery.crashes, 1) << what;
  EXPECT_EQ(replay_plan.recovery.resumes, 0) << what;
  EXPECT_EQ(resume_plan.recovery.resumes, 1) << what;
  EXPECT_GE(resume_plan.recovery.resumed_rounds, 2) << what;

  EXPECT_TRUE(resume_out == baseline)
      << what << ": resumed output diverged from fault-free baseline\n"
      << resume_plan.ToText();
  EXPECT_TRUE(resume_out == replay_out)
      << what << ": resumed output diverged from input-replay recovery\n"
      << resume_plan.ToText();

  const auto& replayed = replay_plan.execution_stats;
  const auto& resumed = resume_plan.execution_stats;
  EXPECT_LT(resumed.rounds, replayed.rounds) << what;
  EXPECT_LT(resumed.recovery_comm, replayed.recovery_comm) << what;
}

TEST(ResumeRecoveryTest, MatMulResumeSavesReplayedRounds) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectResumeSavesReplayedRounds(
        [](const mpc::Cluster& cluster) {
          return GenMatMulBlocks<S>(
              cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
        },
        /*p=*/8, "matmul");
  }
}

TEST(ResumeRecoveryTest, LineResumeSavesReplayedRounds) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectResumeSavesReplayedRounds(
        [](const mpc::Cluster& cluster) {
          LineBlockConfig cfg;
          cfg.arity = 3;
          cfg.blocks = 4;
          cfg.side_end = 4;
          cfg.side_mid = 12;
          return GenLineBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "line");
  }
}

TEST(ResumeRecoveryTest, StarResumeSavesReplayedRounds) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectResumeSavesReplayedRounds(
        [](const mpc::Cluster& cluster) {
          StarBlockConfig cfg;
          return GenStarBlocks<S>(cluster, cfg);
        },
        /*p=*/8, "star");
  }
}

TEST(ResumeRecoveryTest, TreeResumeSavesReplayedRounds) {
  ThreadOverrideGuard guard;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    ExpectResumeSavesReplayedRounds(
        [](const mpc::Cluster& cluster) {
          JoinTree query({{0, 1}, {1, 2}, {2, 3}, {2, 4}}, {0, 3, 4});
          return GenTreeRandom<S>(cluster, std::move(query),
                                  /*tuples_per_relation=*/600, /*dom=*/30,
                                  /*seed=*/5);
        },
        /*p=*/8, "tree");
  }
}

TEST(ResumeRecoveryTest, CrashDuringResumedRunResumesAgain) {
  // Double failure: the second crash lands on the already-resumed attempt,
  // which must itself resume and still produce the fault-free output.
  Relation<S> baseline;
  {
    mpc::Cluster cluster(8);
    auto exec = plan::PlanAndRun(
        cluster, GenMatMulBlocks<S>(
                     cluster, MatMulBlockConfig::FromTargets(2000, 512, 4)));
    baseline = exec.result.ToLocal();
    baseline.Normalize();
  }

  plan::ExecutionOptions options;
  options.faults.enabled = true;
  options.faults.seed = FaultSeed();
  options.faults.crashes = 2;
  options.faults.stragglers = 0;
  options.faults.corruptions = 0;
  options.faults.crash_rounds = {6, 11};
  options.checkpoint_interval = 2;
  options.resume_from_checkpoint = true;
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  auto exec = plan::PlanAndRun(cluster, std::move(instance),
                               plan::PlannerOptions{}, options);
  Relation<S> got = exec.result.ToLocal();
  got.Normalize();

  EXPECT_TRUE(got == baseline) << exec.plan.ToText();
  EXPECT_EQ(exec.plan.recovery.crashes, 2);
  EXPECT_EQ(exec.plan.recovery.attempts, 3);
  EXPECT_EQ(exec.plan.recovery.resumes, 2);
  EXPECT_GE(exec.plan.recovery.resumed_rounds, 4);
  EXPECT_EQ(cluster.p(), 6);
}

// --- straggler re-balancing ---------------------------------------------------

TEST(StragglerRebalanceTest, ThresholdShipsLoadAndBoundsCriticalPath) {
  mpc::FaultConfig config;
  config.crashes = 0;
  config.corruptions = 0;
  config.stragglers = 1;
  config.straggle_min = 6.0;
  config.straggle_max = 6.0;
  config.horizon = 1;

  // Passive: the factor stretches the round (10 x 6 = 60).
  mpc::Cluster passive(4);
  passive.EnableFaults(config);
  passive.ChargeRound({10, 10, 10, 10});
  EXPECT_EQ(passive.stats().critical_path, 60);
  EXPECT_EQ(passive.stats().rebalances, 0);

  // Active: the victim's 10 tuples ship onto the three other servers
  // (shares 4+3+3), the straggled round contributes the post-re-balance
  // effective time max(10 + 4) = 14, and the re-balance round itself adds
  // its ship maximum of 4.
  mpc::Cluster active(4);
  active.EnableFaults(config);
  active.SetStraggleThreshold(4.0);
  active.ChargeRound({10, 10, 10, 10});
  EXPECT_EQ(active.stats().rebalances, 1);
  EXPECT_EQ(active.stats().rebalance_comm, 10);
  EXPECT_EQ(active.stats().critical_path, 14 + 4);
  EXPECT_EQ(active.stats().recovery_comm, 10);
  EXPECT_EQ(active.stats().rounds, 2);  // straggled round + re-balance
  EXPECT_LT(active.stats().critical_path, passive.stats().critical_path);
  bool logged = false;
  for (const std::string& e : active.fault_log()) {
    if (e.find("rebalance") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(StragglerRebalanceTest, BelowThresholdStaysPassive) {
  mpc::FaultConfig config;
  config.crashes = 0;
  config.corruptions = 0;
  config.stragglers = 1;
  config.straggle_min = 3.0;
  config.straggle_max = 3.0;
  config.horizon = 1;
  mpc::Cluster cluster(4);
  cluster.EnableFaults(config);
  cluster.SetStraggleThreshold(4.0);  // factor 3 stays below it
  cluster.ChargeRound({10, 10, 10, 10});
  EXPECT_EQ(cluster.stats().rebalances, 0);
  EXPECT_EQ(cluster.stats().critical_path, 30);
}

TEST(StragglerRebalanceTest, EndToEndRebalancePreservesOutput) {
  Relation<S> baseline;
  {
    mpc::Cluster cluster(8);
    auto exec = plan::PlanAndRun(
        cluster, GenMatMulBlocks<S>(
                     cluster, MatMulBlockConfig::FromTargets(2000, 512, 4)));
    baseline = exec.result.ToLocal();
    baseline.Normalize();
  }

  auto faulted = [&](double threshold) {
    plan::ExecutionOptions options;
    options.faults.enabled = true;
    options.faults.seed = FaultSeed();
    options.faults.crashes = 0;
    options.faults.corruptions = 0;
    options.faults.stragglers = 2;
    options.faults.straggle_min = 6.0;
    options.faults.straggle_max = 6.0;
    options.straggle_threshold = threshold;
    mpc::Cluster cluster(8);
    auto instance = GenMatMulBlocks<S>(
        cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
    auto exec = plan::PlanAndRun(cluster, std::move(instance),
                                 plan::PlannerOptions{}, options);
    Relation<S> out = exec.result.ToLocal();
    out.Normalize();
    return std::make_pair(std::move(out), exec.plan);
  };

  const auto [passive_out, passive_plan] = faulted(/*threshold=*/0);
  const auto [active_out, active_plan] = faulted(/*threshold=*/4.0);

  EXPECT_EQ(passive_plan.recovery.rebalances, 0);
  EXPECT_GE(active_plan.recovery.rebalances, 1);
  EXPECT_GT(active_plan.execution_stats.rebalance_comm, 0);
  // Re-balancing only redistributes accounting, never data: both faulted
  // runs must still match the fault-free baseline bit-for-bit.
  EXPECT_TRUE(passive_out == baseline);
  EXPECT_TRUE(active_out == baseline) << active_plan.ToText();
  // Shipping the straggler's load bounds the critical-path growth below
  // the passive stretch.
  EXPECT_LT(active_plan.execution_stats.critical_path,
            passive_plan.execution_stats.critical_path)
      << active_plan.ToText();
}

// --- abort-time re-planning ---------------------------------------------------

TEST(ReplanTest, BudgetAbortReplansInsteadOfDegrading) {
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  Relation<S> expected = EvaluateReference(instance);

  cluster.ResetStats();
  plan::PhysicalPlan plan = plan::PlanQuery(cluster, instance);
  ASSERT_NE(plan.shape, QueryShape::kSingleEdge);
  ASSERT_GE(plan.candidates.size(), 2u);
  plan.chosen = plan::Algorithm::kMatMulWorstCase;
  plan.predicted_load = 1;  // guaranteed mispredicted

  plan::ExecutionOptions options;
  options.load_budget_factor = 4.0;
  options.replan_on_budget_abort = true;
  cluster.ResetStats();
  Relation<S> got =
      plan::ExecuteWithRecovery(cluster, std::move(instance), options, &plan)
          .ToLocal();
  got.Normalize();

  EXPECT_GE(plan.recovery.replans, 1) << plan.ToText();
  EXPECT_GE(plan.recovery.budget_aborts, 1);
  EXPECT_FALSE(plan.recovery.degraded_to_baseline) << plan.ToText();
  EXPECT_NE(plan.executed, plan::Algorithm::kMatMulWorstCase);
  EXPECT_TRUE(got == expected)
      << "got " << got.size() << " expected " << expected.size();
}

TEST(ReplanTest, ReplanOffKeepsTheDegradePath) {
  // The default (replan off) must preserve the established behavior:
  // one budget abort, degrade onto Yannakakis, zero re-plans.
  mpc::Cluster cluster(8);
  auto instance = GenMatMulBlocks<S>(
      cluster, MatMulBlockConfig::FromTargets(2000, 512, 4));
  cluster.ResetStats();
  plan::PhysicalPlan plan = plan::PlanQuery(cluster, instance);
  plan.chosen = plan::Algorithm::kMatMulWorstCase;
  plan.predicted_load = 1;
  plan::ExecutionOptions options;
  options.load_budget_factor = 1.0;
  cluster.ResetStats();
  plan::ExecuteWithRecovery(cluster, std::move(instance), options, &plan);
  EXPECT_TRUE(plan.recovery.degraded_to_baseline);
  EXPECT_EQ(plan.recovery.replans, 0);
  EXPECT_EQ(plan.executed, plan::Algorithm::kYannakakis);
}

// --- abort safety of the accounting machinery ---------------------------------

TEST(AbortSafetyTest, ResetStatsInvalidatesLiveRegions) {
  mpc::Cluster cluster(4);
  {
    mpc::ParallelRegion region(cluster);
    region.NextBranch();
    cluster.ResetStats();  // stale guard must become a no-op
    region.NextBranch();
  }
  cluster.CheckQuiescent();
  cluster.ChargeUniformRound(3);
  EXPECT_EQ(cluster.stats().rounds, 1);
}

TEST(AbortSafetyTest, RoundAbortUnwindClosesRegions) {
  mpc::Cluster cluster(4);
  cluster.SetLoadBudget(1);
  bool aborted = false;
  try {
    mpc::ParallelRegion region(cluster);
    cluster.ChargeUniformRound(100);
  } catch (const mpc::RoundAbort& abort) {
    aborted = true;
    EXPECT_EQ(abort.reason, mpc::RoundAbort::Reason::kLoadBudget);
    EXPECT_NE(abort.ToString().find("exceeded budget"), std::string::npos);
  }
  ASSERT_TRUE(aborted);
  cluster.CheckQuiescent();  // the unwound guard closed its region
  cluster.SetLoadBudget(0);
  cluster.ChargeUniformRound(100);
  EXPECT_EQ(cluster.stats().max_load, 100);
}

TEST(AbortSafetyDeathTest, OverflowingChargeAborts) {
  mpc::Cluster cluster(4);
  EXPECT_DEATH(cluster.ChargeUniformRound(
                   std::numeric_limits<std::int64_t>::max() / 2),
               "overflow");
}

}  // namespace
}  // namespace parjoin
