// Worker-pool stress tests: tens of thousands of tiny ParallelFor
// regions, thread-count reconfiguration between regions, and nested
// ParallelFor, all asserting bit-identical results vs. the sequential
// loop. These are the dynamic backstop for the static thread-safety
// annotations — CI also runs this binary under ThreadSanitizer, where the
// rapid region handoffs give the race detector real interleavings to
// chew on.

#include "parjoin/common/parallel_for.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace parjoin {
namespace {

// A few iterations of a 64-bit LCG: enough work per index that regions
// overlap worker wakeups, cheap enough that 20k regions stay fast.
// Unsigned on purpose: the multiply wraps, and signed wraparound is UB
// that -O3 exploits into different results per inlining context.
std::int64_t Work(std::int64_t i) {
  std::uint64_t acc = static_cast<std::uint64_t>(i);
  for (int k = 0; k < 8; ++k) acc = acc * 6364136223846793005ULL + 1;
  return static_cast<std::int64_t>(acc);
}

class PoolStressTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelForThreads(0); }
};

TEST_F(PoolStressTest, TensOfThousandsOfTinyRegions) {
  SetParallelForThreads(3);
  constexpr int kRegions = 20000;
  constexpr int kWidth = 4;
  std::vector<std::int64_t> out(kWidth);
  std::int64_t checksum = 0;
  for (int r = 0; r < kRegions; ++r) {
    ParallelFor(kWidth, [&](int i) {
      out[static_cast<size_t>(i)] = Work(r + i);
    });
    for (int i = 0; i < kWidth; ++i) checksum ^= out[static_cast<size_t>(i)];
  }

  SetParallelForThreads(1);
  std::int64_t expected = 0;
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kWidth; ++i) expected ^= Work(r + i);
  }
  EXPECT_EQ(checksum, expected);
}

TEST_F(PoolStressTest, ReconfigurationBetweenRegionsIsBitIdentical) {
  // Cycle the worker count between regions; the pool must grow on demand
  // and leave non-participating workers parked, with outputs identical to
  // the sequential loop at every setting.
  constexpr int kRegions = 5000;
  constexpr int kWidth = 9;
  std::vector<std::int64_t> out(kWidth), expected(kWidth);
  for (int r = 0; r < kRegions; ++r) {
    SetParallelForThreads(1 + r % 5);
    ParallelFor(kWidth, [&](int i) {
      out[static_cast<size_t>(i)] = Work(r * kWidth + i);
    });
    for (int i = 0; i < kWidth; ++i) {
      expected[static_cast<size_t>(i)] = Work(r * kWidth + i);
    }
    ASSERT_EQ(out, expected) << "region " << r;
  }
}

TEST_F(PoolStressTest, NestedParallelForMatchesSequential) {
  // Inner regions issued from pool workers run sequentially on that
  // worker (documented contract); results must match the doubly
  // sequential loop exactly.
  SetParallelForThreads(4);
  constexpr int kOuter = 64;
  constexpr int kInner = 128;
  std::vector<std::int64_t> flat(kOuter * kInner);
  for (int rep = 0; rep < 50; ++rep) {
    ParallelFor(kOuter, [&](int o) {
      ParallelFor(kInner, [&](int i) {
        flat[static_cast<size_t>(o * kInner + i)] = Work(rep + o * kInner + i);
      });
    });
  }
  for (int o = 0; o < kOuter; ++o) {
    for (int i = 0; i < kInner; ++i) {
      EXPECT_EQ(flat[static_cast<size_t>(o * kInner + i)],
                Work(49 + o * kInner + i));
    }
  }
}

TEST_F(PoolStressTest, ManyRegionsInterleavedWithNestingAndWidthOne) {
  // Mix degenerate widths, nesting, and reconfiguration — the pattern the
  // simulator's per-round primitives actually produce.
  std::atomic<std::int64_t> sum{0};
  std::int64_t expected = 0;
  for (int r = 0; r < 2000; ++r) {
    SetParallelForThreads(1 + r % 4);
    const int width = 1 + r % 7;
    ParallelFor(width, [&](int i) {
      std::int64_t local = 0;
      ParallelFor(3, [&](int j) { local += Work(i + j); });
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < 3; ++j) expected += Work(i + j);
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace parjoin
