// Negative-path coverage for the query-ingress layer: the shared spec /
// workload parser (serve/spec) and the checked numeric flag helpers
// (serve/flags). Every malformed directive must surface as a typed,
// line-numbered Status — the pre-fix parser accepted `output x` as an
// EMPTY output list, `result` with no path, and `p 8 junk`, and the
// pre-fix flag parsing turned `--faults=abc` into 0.

#include <string>

#include <gtest/gtest.h>

#include "parjoin/serve/flags.h"
#include "parjoin/serve/spec.h"

namespace parjoin {
namespace serve {
namespace {

// Asserts `status` is InvalidArgument and its message mentions both the
// 1-based `line` (as ":<line>: ") and the `needle`.
void ExpectLineError(const Status& status, int line,
                     const std::string& needle) {
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
  const std::string msg = status.message();
  EXPECT_NE(msg.find(":" + std::to_string(line) + ": "), std::string::npos)
      << "expected line " << line << " in: " << msg;
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "expected '" << needle << "' in: " << msg;
}

// --- standalone query specs -------------------------------------------------

TEST(QuerySpecParse, AcceptsFullSpec) {
  const std::string text =
      "# matmul over two csvs\n"
      "p 8\n"
      "edge 0 1 a.csv\n"
      "edge 1 2 @edges\n"
      "output 0 2\n"
      "result out.csv\n";
  auto spec = ParseQuerySpecText(text, "spec");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->p, 8);
  ASSERT_EQ(spec->edges.size(), 2u);
  EXPECT_EQ(spec->edges[0].u, 0);
  EXPECT_EQ(spec->edges[0].v, 1);
  EXPECT_EQ(spec->edges[0].source, "a.csv");
  EXPECT_FALSE(spec->edges[0].IsRef());
  EXPECT_TRUE(spec->edges[1].IsRef());
  EXPECT_EQ(spec->edges[1].RefName(), "edges");
  EXPECT_EQ(spec->outputs, (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(spec->result_path, "out.csv");
}

TEST(QuerySpecParse, AcceptsCrlfAndBlankLines) {
  auto spec = ParseQuerySpecText("edge 0 1 a.csv\r\n\r\noutput 0\r\n", "s");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->edges.size(), 1u);
  EXPECT_EQ(spec->outputs, (std::vector<AttrId>{0}));
}

// THE original silent failure: `output x` used to parse as an empty
// output list (strtol returning 0 consumed nothing and the loop exited).
TEST(QuerySpecParse, RejectsNonNumericOutputAttr) {
  auto spec =
      ParseQuerySpecText("edge 0 1 a.csv\noutput x\n", "spec");
  ExpectLineError(spec.status(), 2, "'output'");
  ExpectLineError(spec.status(), 2, "'x' is not a number");
}

TEST(QuerySpecParse, RejectsBareOutput) {
  auto spec = ParseQuerySpecText("edge 0 1 a.csv\noutput\n", "spec");
  ExpectLineError(spec.status(), 2, "'output' needs at least one");
}

TEST(QuerySpecParse, RejectsResultWithMissingPath) {
  auto spec =
      ParseQuerySpecText("edge 0 1 a.csv\noutput 0\nresult\n", "spec");
  ExpectLineError(spec.status(), 3, "'result' needs exactly one path");
}

TEST(QuerySpecParse, RejectsResultWithTrailingGarbage) {
  auto spec = ParseQuerySpecText("edge 0 1 a.csv\nresult a b\n", "spec");
  ExpectLineError(spec.status(), 2, "'result' needs exactly one path");
}

TEST(QuerySpecParse, RejectsPWithTrailingGarbage) {
  auto spec = ParseQuerySpecText("p 8 junk\nedge 0 1 a.csv\n", "spec");
  ExpectLineError(spec.status(), 1, "'p' needs exactly one server count");
}

TEST(QuerySpecParse, RejectsNonNumericOrNonPositiveP) {
  ExpectLineError(ParseQuerySpecText("p abc\n", "s").status(), 1,
                  "'p' needs a positive server count, got 'abc'");
  ExpectLineError(ParseQuerySpecText("p 0\n", "s").status(), 1,
                  "'p' needs a positive server count, got '0'");
  ExpectLineError(ParseQuerySpecText("p -4\n", "s").status(), 1,
                  "'p' needs a positive server count, got '-4'");
}

TEST(QuerySpecParse, RejectsEdgeArity) {
  ExpectLineError(ParseQuerySpecText("edge\n", "s").status(), 1,
                  "'edge' needs exactly");
  ExpectLineError(ParseQuerySpecText("edge 0 1\n", "s").status(), 1,
                  "got 2 token(s)");
  ExpectLineError(
      ParseQuerySpecText("edge 0 1 a.csv extra\n", "s").status(), 1,
      "got 4 token(s)");
}

TEST(QuerySpecParse, RejectsEdgeAttrGarbage) {
  ExpectLineError(ParseQuerySpecText("edge x 1 a.csv\n", "s").status(), 1,
                  "'x' is not a number");
  ExpectLineError(ParseQuerySpecText("edge 0 -1 a.csv\n", "s").status(), 1,
                  "-1 out of range");
  ExpectLineError(
      ParseQuerySpecText("edge 0 99999999999 a.csv\n", "s").status(), 1,
      "out of range");
}

TEST(QuerySpecParse, RejectsEmptyRelationReference) {
  ExpectLineError(ParseQuerySpecText("edge 0 1 @\n", "s").status(), 1,
                  "'@' relation reference has no name");
}

TEST(QuerySpecParse, RejectsUnknownDirective) {
  auto spec =
      ParseQuerySpecText("edge 0 1 a.csv\nfrobnicate 1\n", "spec");
  ExpectLineError(spec.status(), 2, "unknown directive 'frobnicate'");
}

TEST(QuerySpecParse, RejectsSpecWithNoEdges) {
  auto spec = ParseQuerySpecText("# only a comment\np 4\n", "spec");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("no edges"), std::string::npos);
}

TEST(QuerySpecParse, LineNumbersCountCommentsAndBlanks) {
  // The bad directive sits on line 5; comments/blank lines still count.
  auto spec = ParseQuerySpecText(
      "# header\n\nedge 0 1 a.csv\n# note\noutput y\n", "spec");
  ExpectLineError(spec.status(), 5, "'y' is not a number");
}

TEST(QuerySpecParse, MissingFileIsNotFound) {
  auto spec = ParseQuerySpecFile("/nonexistent/query.spec");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

// --- workload files ---------------------------------------------------------

constexpr char kGoodWorkload[] =
    "p 4\n"
    "register ab a.csv\n"
    "register bc b.csv\n"
    "query matmul\n"
    "  edge 0 1 @ab\n"
    "  edge 1 2 @bc\n"
    "  output 0 2\n"
    "  repeat 3\n"
    "end\n"
    "query\n"
    "  edge 0 1 @ab\n"
    "  output 0\n"
    "end\n";

TEST(WorkloadParse, AcceptsFullWorkload) {
  auto w = ParseWorkloadText(kGoodWorkload, "w");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->p, 4);
  ASSERT_EQ(w->relations.size(), 2u);
  EXPECT_EQ(w->relations[0].name, "ab");
  EXPECT_EQ(w->relations[0].path, "a.csv");
  ASSERT_EQ(w->queries.size(), 2u);
  EXPECT_EQ(w->queries[0].label, "matmul");
  EXPECT_EQ(w->queries[0].repeat, 3);
  EXPECT_EQ(w->queries[1].label, "q1");  // default label by block index
  EXPECT_EQ(w->queries[1].repeat, 1);
  EXPECT_EQ(w->TotalQueries(), 4);
  // The header p propagates into every query spec.
  for (const auto& q : w->queries) EXPECT_EQ(q.spec.p, 4);
}

TEST(WorkloadParse, RejectsRegisterArity) {
  ExpectLineError(ParseWorkloadText("register ab\n", "w").status(), 1,
                  "'register' needs exactly <name> <csv-path>");
}

TEST(WorkloadParse, RejectsBadRelationName) {
  ExpectLineError(ParseWorkloadText("register a/b x.csv\n", "w").status(),
                  1, "must be [A-Za-z0-9_]+");
}

TEST(WorkloadParse, RejectsDuplicateRegistration) {
  auto w = ParseWorkloadText("register ab a.csv\nregister ab b.csv\n", "w");
  ExpectLineError(w.status(), 2, "relation 'ab' registered twice");
}

TEST(WorkloadParse, RejectsUnregisteredReference) {
  auto w = ParseWorkloadText(
      "register ab a.csv\nquery\n  edge 0 1 @cd\nend\n", "w");
  ExpectLineError(w.status(), 3, "unregistered relation '@cd'");
}

TEST(WorkloadParse, RejectsReferenceRegisteredLater) {
  // Registration must precede use: ingress resolves refs in file order.
  auto w = ParseWorkloadText(
      "query\n  edge 0 1 @ab\nend\nregister ab a.csv\n", "w");
  ExpectLineError(w.status(), 2, "unregistered relation '@ab'");
}

TEST(WorkloadParse, RejectsPInsideQueryBlock) {
  auto w = ParseWorkloadText(
      "register ab a.csv\nquery\n  p 8\nend\n", "w");
  ExpectLineError(w.status(), 3, "'p' inside a query block");
}

TEST(WorkloadParse, RejectsBlockDirectiveOutsideBlock) {
  ExpectLineError(ParseWorkloadText("edge 0 1 a.csv\n", "w").status(), 1,
                  "'edge' outside a query block");
  ExpectLineError(ParseWorkloadText("end\n", "w").status(), 1,
                  "'end' outside a query block");
}

TEST(WorkloadParse, RejectsUnclosedBlockAtItsOpeningLine) {
  auto w = ParseWorkloadText(
      "register ab a.csv\nquery lost\n  edge 0 1 @ab\n", "w");
  ExpectLineError(w.status(), 2, "'lost' is never closed with 'end'");
}

TEST(WorkloadParse, RejectsEndWithArguments) {
  auto w = ParseWorkloadText(
      "register ab a.csv\nquery\n  edge 0 1 @ab\nend now\n", "w");
  ExpectLineError(w.status(), 4, "'end' takes no arguments");
}

TEST(WorkloadParse, RejectsEmptyQueryBlock) {
  auto w = ParseWorkloadText("query empty\nend\n", "w");
  ExpectLineError(w.status(), 2, "query block 'empty' has no edges");
}

TEST(WorkloadParse, RejectsRepeatOutOfRange) {
  const std::string head = "register ab a.csv\nquery\n  edge 0 1 @ab\n";
  ExpectLineError(
      ParseWorkloadText(head + "  repeat 0\nend\n", "w").status(), 4,
      "count in [1, 1000000], got '0'");
  ExpectLineError(
      ParseWorkloadText(head + "  repeat 9000000\nend\n", "w").status(), 4,
      "count in [1, 1000000], got '9000000'");
  ExpectLineError(
      ParseWorkloadText(head + "  repeat many\nend\n", "w").status(), 4,
      "count in [1, 1000000], got 'many'");
  ExpectLineError(
      ParseWorkloadText(head + "  repeat 2 3\nend\n", "w").status(), 4,
      "'repeat' needs exactly one count");
}

TEST(WorkloadParse, RejectsQueryWithTwoLabels) {
  ExpectLineError(ParseWorkloadText("query a b\n", "w").status(), 1,
                  "'query' takes at most one label");
}

TEST(WorkloadParse, RejectsWorkloadWithNoQueries) {
  auto w = ParseWorkloadText("p 4\nregister ab a.csv\n", "w");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(w.status().message().find("no query blocks"),
            std::string::npos);
}

TEST(WorkloadParse, HeaderPAppliesToEarlierBlocks) {
  // `p` after a query block still governs that block's spec.
  auto w = ParseWorkloadText(
      "register ab a.csv\nquery\n  edge 0 1 @ab\nend\np 32\n", "w");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->queries[0].spec.p, 32);
}

// --- checked numeric flag parsing -------------------------------------------

TEST(FlagsParse, Int64AcceptsWholeTokenOnly) {
  auto ok = ParseInt64Text("42");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto negative = ParseInt64Text("-3");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, -3);
  EXPECT_FALSE(ParseInt64Text("").ok());
  EXPECT_FALSE(ParseInt64Text("abc").ok());
  EXPECT_FALSE(ParseInt64Text("8x").ok());    // pre-fix strtol: 8
  EXPECT_FALSE(ParseInt64Text(" 8").ok());    // no silent whitespace skip
  EXPECT_FALSE(ParseInt64Text("8 ").ok());
  EXPECT_FALSE(ParseInt64Text("99999999999999999999").ok());  // ERANGE
}

TEST(FlagsParse, Uint64RejectsSignAndGarbage) {
  auto ok = ParseUint64Text("18446744073709551615");  // UINT64_MAX
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 18446744073709551615ULL);
  // Pre-fix strtoull happily wrapped "-3" to a huge value.
  EXPECT_FALSE(ParseUint64Text("-3").ok());
  EXPECT_FALSE(ParseUint64Text("+3").ok());
  EXPECT_FALSE(ParseUint64Text("abc").ok());  // pre-fix: --faults=abc -> 0
  EXPECT_FALSE(ParseUint64Text("").ok());
  EXPECT_FALSE(ParseUint64Text("18446744073709551616").ok());  // ERANGE
}

TEST(FlagsParse, DoubleRejectsGarbageAndOverflow) {
  auto ok = ParseDoubleText("1.5");
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(*ok, 1.5);
  EXPECT_FALSE(ParseDoubleText("junk").ok());  // pre-fix strtod: 0.0
  EXPECT_FALSE(ParseDoubleText("1.5x").ok());
  EXPECT_FALSE(ParseDoubleText("").ok());
  EXPECT_FALSE(ParseDoubleText("1e999").ok());  // ERANGE
}

TEST(FlagsParse, MatchFlagSplitsNameAndValue) {
  std::string value = "sentinel";
  EXPECT_FALSE(MatchFlag("--faults", "faults", &value));
  EXPECT_EQ(value, "sentinel");  // untouched on non-match
  EXPECT_FALSE(MatchFlag("--fault=1", "faults", &value));
  ASSERT_TRUE(MatchFlag("--faults=7", "faults", &value));
  EXPECT_EQ(value, "7");
  ASSERT_TRUE(MatchFlag("--faults=", "faults", &value));
  EXPECT_EQ(value, "");
}

TEST(FlagsParse, FlagWrappersNameTheFlagInErrors) {
  auto bad = ParseUint64Flag("faults", "abc");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("--faults needs an unsigned"),
            std::string::npos)
      << bad.status();
  auto bad_double = ParseDoubleFlag("load-budget-factor", "junk");
  ASSERT_FALSE(bad_double.ok());
  EXPECT_NE(bad_double.status().message().find("--load-budget-factor"),
            std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace parjoin
