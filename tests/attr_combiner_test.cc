// Tests for combined attributes (relation/attr_combiner.h): interning,
// dictionary consistency, expansion round-trips, and load charging.

#include "parjoin/relation/attr_combiner.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

Relation<S> ThreeColumnRelation() {
  // Schema (A=0, B=1, C=2) with repeated (A, C) combinations.
  Relation<S> rel(Schema{0, 1, 2});
  rel.Add(Row{1, 10, 5}, 2);
  rel.Add(Row{1, 11, 5}, 3);
  rel.Add(Row{2, 10, 5}, 4);
  rel.Add(Row{1, 12, 6}, 5);
  rel.Add(Row{2, 13, 6}, 6);
  return rel;
}

TEST(CombineAttrsTest, InternsDistinctCombinations) {
  mpc::Cluster cluster(4);
  auto dist = Distribute(cluster, ThreeColumnRelation());
  CombinedRelation<S> combined = CombineAttrs(cluster, dist, {0, 2}, 99);

  EXPECT_EQ(combined.combined_attr, 99);
  EXPECT_EQ(combined.binary.schema, (Schema{99, 1}));
  EXPECT_EQ(combined.binary.TotalSize(), 5);
  // Distinct (A, C) combinations: (1,5), (2,5), (1,6), (2,6).
  EXPECT_EQ(combined.dictionary.TotalSize(), 4);
  EXPECT_EQ(combined.dictionary.schema, (Schema{99, 0, 2}));

  // Same combination maps to the same id everywhere.
  std::map<Row, std::set<Value>> ids_per_combo;
  Relation<S> dict = combined.dictionary.ToLocal();
  for (const auto& t : dict.tuples()) {
    ids_per_combo[Row{t.row[1], t.row[2]}].insert(t.row[0]);
  }
  for (const auto& [combo, ids] : ids_per_combo) {
    EXPECT_EQ(ids.size(), 1u) << "combination " << combo
                              << " has multiple ids";
  }
}

TEST(CombineAttrsTest, AnnotationsPreserved) {
  mpc::Cluster cluster(4);
  auto dist = Distribute(cluster, ThreeColumnRelation());
  CombinedRelation<S> combined = CombineAttrs(cluster, dist, {0, 2}, 99);
  std::int64_t total_before = 0, total_after = 0;
  dist.data.ForEach([&](const Tuple<S>& t) { total_before += t.w; });
  combined.binary.data.ForEach(
      [&](const Tuple<S>& t) { total_after += t.w; });
  EXPECT_EQ(total_before, total_after);
  // Dictionary annotations are One() so expansion is weight-neutral.
  combined.dictionary.data.ForEach(
      [&](const Tuple<S>& t) { EXPECT_EQ(t.w, S::One()); });
}

TEST(ExpandAttrsTest, RoundTripsToOriginal) {
  mpc::Cluster cluster(4);
  Relation<S> original = ThreeColumnRelation();
  auto dist = Distribute(cluster, original);
  CombinedRelation<S> combined = CombineAttrs(cluster, dist, {0, 2}, 99);
  DistRelation<S> expanded =
      ExpandAttrs(cluster, combined.binary, combined.dictionary, 99);

  // Expanded schema: (kept B) then the combined attrs (A, C).
  Relation<S> got = expanded.ToLocal();
  got.Normalize();
  // Reorder to the original schema for comparison.
  Relation<S> reordered(original.schema());
  const auto positions = got.schema().PositionsOf({0, 1, 2});
  for (const auto& t : got.tuples()) {
    reordered.Add(t.row.Select(positions), t.w);
  }
  reordered.Normalize();
  Relation<S> expected = original;
  expected.Normalize();
  EXPECT_TRUE(reordered == expected);
}

TEST(ExpandAttrsTest, MultiplicityThroughJoin) {
  // A relation that references each combined id several times must expand
  // every reference.
  mpc::Cluster cluster(3);
  Relation<S> base(Schema{0, 1});
  base.Add(Row{7, 100}, 1);
  base.Add(Row{8, 100}, 1);
  auto dist = Distribute(cluster, base);
  CombinedRelation<S> combined = CombineAttrs(cluster, dist, {1}, 50);

  Relation<S> uses(Schema{50, 2});
  combined.dictionary.data.ForEach([&](const Tuple<S>& t) {
    uses.Add(Row{t.row[0], 1}, 2);
    uses.Add(Row{t.row[0], 2}, 3);
  });
  auto uses_dist = Distribute(cluster, uses);
  DistRelation<S> expanded =
      ExpandAttrs(cluster, uses_dist, combined.dictionary, 50);
  EXPECT_EQ(expanded.TotalSize(), 2);
  EXPECT_FALSE(expanded.schema.Contains(50));
  EXPECT_TRUE(expanded.schema.Contains(1));
}

TEST(CombineAttrsTest, CombineAllAttrsLeavesKeyOnly) {
  mpc::Cluster cluster(2);
  auto dist = Distribute(cluster, ThreeColumnRelation());
  CombinedRelation<S> combined =
      CombineAttrs(cluster, dist, {0, 1, 2}, 42);
  EXPECT_EQ(combined.binary.schema, (Schema{42}));
  EXPECT_EQ(combined.dictionary.TotalSize(), 5);  // all rows distinct
}

TEST(CombineAttrsTest, ChargesModeledLinearLoad) {
  mpc::Cluster cluster(8);
  MatMulGenConfig cfg;
  cfg.n1 = 4000;
  cfg.n2 = 10;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  cluster.ResetStats();
  CombineAttrs(cluster, instance.relations[0], {0}, 77);
  EXPECT_LE(cluster.stats().max_load, 2 * (4000 / 8 + 1));
  EXPECT_GE(cluster.stats().rounds, 2);
}

}  // namespace
}  // namespace parjoin
