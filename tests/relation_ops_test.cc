// Tests for the relational MPC operations: partitioning, aggregation,
// degrees, semijoin, annotation push-down, dangling removal, and the §7
// query reduction.

#include "parjoin/relation/ops.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/reduce.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

Relation<S> MakeRelation(Schema schema,
                         std::vector<std::pair<Row, std::int64_t>> rows) {
  Relation<S> rel(std::move(schema));
  for (auto& [row, w] : rows) rel.Add(std::move(row), w);
  return rel;
}

TEST(HashPartitionTest, CoLocatesEqualKeys) {
  mpc::Cluster cluster(4);
  MatMulGenConfig cfg;
  cfg.n1 = 200;
  cfg.dom_b = 20;
  auto instance = GenMatMulRandom<S>(cluster, cfg);
  auto parted = HashPartitionByAttrs(cluster, instance.relations[0], {1});
  // Every B value appears in exactly one part.
  std::map<Value, int> home;
  const int b_pos = parted.schema.IndexOf(1);
  for (int s = 0; s < parted.data.num_parts(); ++s) {
    for (const auto& t : parted.data.part(s)) {
      auto [it, inserted] = home.emplace(t.row[b_pos], s);
      if (!inserted) {
        EXPECT_EQ(it->second, s);
      }
    }
  }
  EXPECT_EQ(parted.TotalSize(), instance.relations[0].TotalSize());
}

TEST(AggregateByAttrsTest, MatchesLocalAggregate) {
  mpc::Cluster cluster(4);
  Relation<S> rel = MakeRelation(Schema{0, 1, 2}, {
      {Row{1, 2, 3}, 4}, {Row{1, 2, 4}, 5}, {Row{1, 3, 3}, 1},
      {Row{2, 2, 3}, 7}, {Row{1, 2, 9}, 2}});
  auto dist = Distribute(cluster, rel);
  auto agg = AggregateByAttrs(cluster, dist, {0, 1});
  Relation<S> got = agg.ToLocal();
  got.Normalize();
  Relation<S> expected = LocalAggregate(rel, {0, 1});
  expected.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(AggregateByAttrsTest, EmptyGroupGivesGrandTotal) {
  mpc::Cluster cluster(3);
  Relation<S> rel = MakeRelation(Schema{0, 1}, {{Row{1, 2}, 4},
                                                {Row{3, 4}, 6}});
  auto agg = AggregateByAttrs(cluster, Distribute(cluster, rel), {});
  Relation<S> got = agg.ToLocal();
  ASSERT_EQ(got.size(), 1);
  EXPECT_EQ(got.tuples()[0].w, 10);
}

TEST(DegreesTest, CountsPerValue) {
  mpc::Cluster cluster(4);
  Relation<S> rel = MakeRelation(
      Schema{0, 1},
      {{Row{1, 5}, 1}, {Row{2, 5}, 1}, {Row{3, 5}, 1}, {Row{4, 7}, 1}});
  auto degrees = DegreesByAttr(cluster, Distribute(cluster, rel), 1);
  std::map<Value, std::int64_t> got;
  degrees.ForEach([&](const ValueCount& vc) { got[vc.value] = vc.count; });
  EXPECT_EQ(got, (std::map<Value, std::int64_t>{{5, 3}, {7, 1}}));
}

TEST(CollectValuesAtLeastTest, FiltersByThreshold) {
  mpc::Cluster cluster(4);
  Relation<S> rel(Schema{0, 1});
  for (int i = 0; i < 10; ++i) rel.Add(Row{i, 100}, 1);
  for (int i = 0; i < 3; ++i) rel.Add(Row{i, 200}, 1);
  auto degrees = DegreesByAttr(cluster, Distribute(cluster, rel), 1);
  auto heavy = CollectValuesAtLeast(cluster, degrees, 5);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], 100);
}

TEST(SemijoinTest, KeepsOnlyMatching) {
  mpc::Cluster cluster(4);
  Relation<S> r = MakeRelation(
      Schema{0, 1},
      {{Row{1, 10}, 1}, {Row{2, 20}, 1}, {Row{3, 30}, 1}});
  Relation<S> s = MakeRelation(Schema{1, 2},
                               {{Row{10, 7}, 1}, {Row{30, 8}, 1}});
  auto result = Semijoin(cluster, Distribute(cluster, r),
                         Distribute(cluster, s));
  Relation<S> got = result.ToLocal();
  got.Normalize();
  Relation<S> expected = MakeRelation(
      Schema{0, 1}, {{Row{1, 10}, 1}, {Row{3, 30}, 1}});
  expected.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(MultiplyIntoByAttrTest, AttachesFactorsAndDropsMisses) {
  mpc::Cluster cluster(4);
  Relation<S> rel = MakeRelation(
      Schema{0, 1}, {{Row{1, 10}, 2}, {Row{2, 20}, 3}, {Row{3, 30}, 5}});
  Relation<S> factors =
      MakeRelation(Schema{1}, {{Row{10}, 7}, {Row{30}, 11}});
  auto result = MultiplyIntoByAttr(cluster, Distribute(cluster, rel),
                                   Distribute(cluster, factors), 1);
  Relation<S> got = result.ToLocal();
  got.Normalize();
  Relation<S> expected = MakeRelation(
      Schema{0, 1}, {{Row{1, 10}, 14}, {Row{3, 30}, 55}});
  expected.Normalize();
  EXPECT_TRUE(got == expected);
}

TEST(RemoveDanglingTest, FullReducerOnChain) {
  mpc::Cluster cluster(4);
  // Chain 0-1-2-3; only value 5 survives end-to-end.
  Relation<S> r1 = MakeRelation(Schema{0, 1},
                                {{Row{1, 5}, 1}, {Row{2, 6}, 1}});
  Relation<S> r2 = MakeRelation(Schema{1, 2},
                                {{Row{5, 5}, 1}, {Row{7, 7}, 1}});
  Relation<S> r3 = MakeRelation(Schema{2, 3},
                                {{Row{5, 9}, 1}, {Row{8, 8}, 1}});
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}), {}};
  instance.relations.push_back(Distribute(cluster, r1));
  instance.relations.push_back(Distribute(cluster, r2));
  instance.relations.push_back(Distribute(cluster, r3));
  RemoveDangling(cluster, &instance);
  EXPECT_EQ(instance.relations[0].TotalSize(), 1);
  EXPECT_EQ(instance.relations[1].TotalSize(), 1);
  EXPECT_EQ(instance.relations[2].TotalSize(), 1);
}

TEST(RemoveDanglingTest, PreservesQueryResultOnRandomTrees) {
  mpc::Cluster cluster(4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto instance =
        GenTreeRandom<S>(cluster, Fig2Query(), 20, 20, seed);
    Relation<S> before = EvaluateReference(instance);
    RemoveDangling(cluster, &instance);
    Relation<S> after = EvaluateReference(instance);
    EXPECT_TRUE(before == after) << "seed " << seed;
  }
}

TEST(RemoveDanglingTest, NoFalseRemovals) {
  mpc::Cluster cluster(4);
  // Block instance: nothing dangles.
  MatMulBlockConfig cfg;
  auto instance = GenMatMulBlocks<S>(cluster, cfg);
  const auto n1 = instance.relations[0].TotalSize();
  const auto n2 = instance.relations[1].TotalSize();
  RemoveDangling(cluster, &instance);
  EXPECT_EQ(instance.relations[0].TotalSize(), n1);
  EXPECT_EQ(instance.relations[1].TotalSize(), n2);
}

TEST(ReduceInstanceTest, FoldsPrivateNonOutputAttrs) {
  mpc::Cluster cluster(4);
  // Path 0-1-2-3 with y = {0, 2}: attr 3 is private non-output; edge (2,3)
  // folds into (1,2). Then no more rules apply (0 is output, 1 interior).
  auto instance = GenTreeRandom<S>(
      cluster, JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 2}), 40, 8, 3);
  Relation<S> before = EvaluateReference(instance);
  ReduceInstance(cluster, &instance);
  EXPECT_EQ(instance.query.num_edges(), 2);
  Relation<S> after = EvaluateReference(instance);
  EXPECT_TRUE(before == after);
  // Every leaf of the reduced query is an output attribute.
  for (AttrId a : instance.query.attrs()) {
    if (instance.query.Degree(a) == 1) {
      EXPECT_TRUE(instance.query.IsOutput(a));
    }
  }
}

TEST(ReduceInstanceTest, ChainCollapsesToSingleEdgeForScalarQuery) {
  mpc::Cluster cluster(4);
  // y = {} on a 3-chain: folds to one edge (full aggregate handled later).
  auto instance = GenTreeRandom<S>(
      cluster, JoinTree({{0, 1}, {1, 2}, {2, 3}}, {}), 20, 6, 9);
  Relation<S> before = EvaluateReference(instance);
  ReduceInstance(cluster, &instance);
  EXPECT_EQ(instance.query.num_edges(), 1);
  Relation<S> after = EvaluateReference(instance);
  EXPECT_TRUE(before == after);
}

TEST(ReduceInstanceTest, Fig2ReductionKeepsSemantics) {
  mpc::Cluster cluster(4);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto instance = GenTreeRandom<S>(cluster, Fig2Query(), 16, 16, seed);
    Relation<S> before = EvaluateReference(instance);
    ReduceInstance(cluster, &instance);
    Relation<S> after = EvaluateReference(instance);
    EXPECT_TRUE(before == after) << "seed " << seed;
  }
}

}  // namespace
}  // namespace parjoin
