// Tests for the §6 star-like and §7 tree-query algorithms: correctness
// against the reference evaluator on the paper's Figure 1/2/3 queries and
// random trees, across semirings, seeds, and cluster sizes.

#include "parjoin/algorithms/tree_query.h"

#include <gtest/gtest.h>

#include "parjoin/algorithms/reference.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

template <SemiringC Sr>
void ExpectTreeMatchesReference(mpc::Cluster& cluster,
                                const TreeInstance<Sr>& instance) {
  Relation<Sr> expected = EvaluateReference(instance);
  Relation<Sr> got = TreeQueryAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << instance.query.DebugString() << ": got " << got.size()
      << " expected " << expected.size();
}

template <SemiringC Sr>
void ExpectStarLikeMatchesReference(mpc::Cluster& cluster,
                                    const TreeInstance<Sr>& instance) {
  Relation<Sr> expected = EvaluateReference(instance);
  Relation<Sr> got = StarLikeAggregate(cluster, instance).ToLocal();
  got.Normalize();
  EXPECT_TRUE(got == expected)
      << instance.query.DebugString() << ": got " << got.size()
      << " expected " << expected.size();
}

// --- Star-like (§6, Figure 1) ---

class StarLikeSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StarLikeSeedTest, Fig1MatchesReference) {
  mpc::Cluster cluster(8);
  auto instance =
      GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 15, 8, GetParam());
  ExpectStarLikeMatchesReference(cluster, instance);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StarLikeSeedTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(StarLikeTest, ThreeArmsMixedLengths) {
  // B=0 with arms: A1-B (length 1), A2-C-B (length 2), A3-D-E-B (length 3).
  JoinTree q({{1, 0}, {2, 4}, {4, 0}, {3, 5}, {5, 6}, {6, 0}}, {1, 2, 3});
  ASSERT_EQ(q.Classify(), QueryShape::kStarLike);
  mpc::Cluster cluster(8);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto instance = GenTreeRandom<S>(cluster, q, 30, 10, seed);
    ExpectStarLikeMatchesReference(cluster, instance);
  }
}

TEST(StarLikeTest, DispatchesStarsAndLines) {
  mpc::Cluster cluster(4);
  auto star = GenStarRandom<S>(cluster, 3, 100, 30, 20, 0.5, 3);
  ExpectStarLikeMatchesReference(cluster, star);
  auto line = GenLineRandom<S>(cluster, 3, 150, 35, 0.4, 3);
  Relation<S> expected = EvaluateReference(line);
  Relation<S> got = StarLikeAggregate(cluster, line).ToLocal();
  got.Normalize();
  // Align column order (line results follow path orientation).
  if (!(got.schema() == expected.schema())) {
    Relation<S> aligned(expected.schema());
    const auto positions =
        got.schema().PositionsOf(expected.schema().attrs());
    for (const auto& t : got.tuples()) aligned.Add(t.row.Select(positions), t.w);
    aligned.Normalize();
    got = aligned;
  }
  EXPECT_TRUE(got == expected);
}

template <typename Sr>
class StarLikeSemiringTest : public ::testing::Test {};

using AllSemirings =
    ::testing::Types<CountingSemiring, BooleanSemiring, MinPlusSemiring,
                     MaxPlusSemiring, MaxMinSemiring>;
TYPED_TEST_SUITE(StarLikeSemiringTest, AllSemirings);

TYPED_TEST(StarLikeSemiringTest, Fig1) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance =
      GenTreeRandom<Sr>(cluster, Fig1StarLikeQuery(), 14, 8, 7);
  ExpectStarLikeMatchesReference(cluster, instance);
}

// --- General trees (§7, Figures 2-4) ---

class TreeSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSeedTest, Fig2MatchesReference) {
  mpc::Cluster cluster(8);
  auto instance = GenTreeRandom<S>(cluster, Fig2Query(), 22, 18, GetParam());
  ExpectTreeMatchesReference(cluster, instance);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeSeedTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(TreeQueryTest, GeneralTwigFig3Shape) {
  // The Figure 3 twig in isolation: two high-degree non-output attributes
  // B1=14, B2=15 and output leaves (the 6-edge twig of Fig2Query).
  JoinTree q({{5, 14}, {14, 6}, {14, 15}, {15, 7}, {15, 16}, {16, 8}},
             {5, 6, 7, 8});
  ASSERT_EQ(q.Classify(), QueryShape::kTree);
  mpc::Cluster cluster(8);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto instance = GenTreeRandom<S>(cluster, q, 25, 10, seed);
    ExpectTreeMatchesReference(cluster, instance);
  }
}

TEST(TreeQueryTest, PathWithInteriorOutput) {
  // A0-A1-A2-A3, y = {0, 2, 3}: reduces + splits into twigs.
  JoinTree q({{0, 1}, {1, 2}, {2, 3}}, {0, 2, 3});
  mpc::Cluster cluster(4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto instance = GenTreeRandom<S>(cluster, q, 60, 15, seed);
    ExpectTreeMatchesReference(cluster, instance);
  }
}

TEST(TreeQueryTest, ScalarFullAggregate) {
  JoinTree q({{0, 1}, {1, 2}, {2, 3}}, {});
  mpc::Cluster cluster(4);
  auto instance = GenTreeRandom<S>(cluster, q, 50, 12, 3);
  ExpectTreeMatchesReference(cluster, instance);
}

TEST(TreeQueryTest, SimpleShapesRouteThroughTreeEntryPoint) {
  mpc::Cluster cluster(4);
  MatMulGenConfig cfg;
  cfg.n1 = 300;
  cfg.n2 = 300;
  cfg.dom_a = 50;
  cfg.dom_b = 20;
  cfg.dom_c = 50;
  auto mm = GenMatMulRandom<S>(cluster, cfg);
  ExpectTreeMatchesReference(cluster, mm);
  auto star = GenStarRandom<S>(cluster, 3, 100, 25, 15, 0.5, 5);
  ExpectTreeMatchesReference(cluster, star);
}

TEST(TreeQueryTest, DeepSkeletonThreeVstarAttrs) {
  // Three high-degree non-output attributes in a chain of star-like hubs:
  //   outputs o1..o6 = 1..6, hubs h1=10, h2=11, h3=12, arm interior 13.
  //   h1: arms to o1, o2; h2: arm to o3; h3: arms to o4, o5-13(-o6? no).
  JoinTree q(
      {{1, 10}, {2, 10}, {10, 11}, {3, 11}, {11, 12}, {4, 12}, {13, 12},
       {5, 13}},
      {1, 2, 3, 4, 5});
  ASSERT_EQ(q.Classify(), QueryShape::kTree);
  mpc::Cluster cluster(8);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto instance = GenTreeRandom<S>(cluster, q, 30, 9, seed);
    ExpectTreeMatchesReference(cluster, instance);
  }
}

template <typename Sr>
class TreeSemiringTest : public ::testing::Test {};
TYPED_TEST_SUITE(TreeSemiringTest, AllSemirings);

TYPED_TEST(TreeSemiringTest, Fig2) {
  using Sr = TypeParam;
  mpc::Cluster cluster(4);
  auto instance = GenTreeRandom<Sr>(cluster, Fig2Query(), 20, 16, 9);
  ExpectTreeMatchesReference(cluster, instance);
}

TEST(TreeQueryTest, AcrossClusterSizes) {
  for (int p : {1, 2, 8, 32}) {
    mpc::Cluster cluster(p);
    auto instance = GenTreeRandom<S>(cluster, Fig2Query(), 20, 16, 11);
    ExpectTreeMatchesReference(cluster, instance);
  }
}

TEST(TreeQueryTest, AgreesWithYannakakisOnFig2) {
  mpc::Cluster c1(8), c2(8);
  auto i1 = GenTreeRandom<S>(c1, Fig2Query(), 24, 18, 13);
  auto i2 = GenTreeRandom<S>(c2, Fig2Query(), 24, 18, 13);
  Relation<S> yann = YannakakisJoinAggregate(c1, i1).ToLocal();
  Relation<S> ours = TreeQueryAggregate(c2, i2).ToLocal();
  yann.Normalize();
  ours.Normalize();
  EXPECT_TRUE(yann == ours);
}

}  // namespace
}  // namespace parjoin
