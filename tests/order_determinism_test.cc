// Regression tests for the iteration-order determinism fixes that the
// AST analyzer (tools/analysis/parjoin_analyzer, check
// determinism-unordered-iteration) surfaced: every site that used to let
// std::unordered_map iteration order reach emitted tuples, virtual-server
// allocation, dense id assignment, or floating-point folds now goes
// through SortedEntries (common/sorted_view.h). Each fixed algorithm must
// produce bit-identical parts and a bit-identical ledger at
// PARJOIN_THREADS in {1, 4}.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parjoin/algorithms/hypercube.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/plan/executor.h"
#include "parjoin/semiring/semirings.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

// Restores the default thread count when a test exits.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { SetParallelForThreads(0); }
};

// Runs `algo` on a fresh cluster at PARJOIN_THREADS in {1, 4} and asserts
// the output parts and the cost ledger are bit-identical.
void ExpectBitIdenticalAcrossThreads(
    int p, const std::function<DistRelation<S>(mpc::Cluster&)>& algo) {
  ThreadOverrideGuard guard;
  std::vector<std::vector<Tuple<S>>> base_parts;
  mpc::Cluster::Stats base_stats;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    mpc::Cluster cluster(p);
    DistRelation<S> out = algo(cluster);
    if (threads == 1) {
      base_parts = std::move(out.data.parts());
      base_stats = cluster.stats();
      continue;
    }
    ASSERT_EQ(out.data.num_parts(), static_cast<int>(base_parts.size()));
    for (int s = 0; s < out.data.num_parts(); ++s) {
      const auto& got = out.data.part(s);
      const auto& want = base_parts[static_cast<size_t>(s)];
      ASSERT_EQ(got.size(), want.size()) << "part " << s;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].row == want[i].row) << "part " << s << " #" << i;
        EXPECT_EQ(got[i].w, want[i].w) << "part " << s << " #" << i;
      }
    }
    EXPECT_EQ(cluster.stats().rounds, base_stats.rounds);
    EXPECT_EQ(cluster.stats().max_load, base_stats.max_load);
    EXPECT_EQ(cluster.stats().total_comm, base_stats.total_comm);
  }
}

MatMulGenConfig SkewedMatMulConfig() {
  MatMulGenConfig cfg;
  cfg.n1 = 3000;
  cfg.n2 = 2700;
  cfg.dom_a = 200;
  cfg.dom_b = 30;  // few join values => heavy hitters on both sides
  cfg.dom_c = 200;
  cfg.skew_b = 0.9;
  cfg.seed = 41;
  return cfg;
}

// matmul_wc.h: heavy-value grid allocation now walks SortedEntries of the
// degree stats, the hh/hl/lh groups are rank-indexed vectors, and the
// local aggregation emits in sorted row order.
TEST(OrderDeterminismTest, MatMulWorstCase) {
  ExpectBitIdenticalAcrossThreads(12, [](mpc::Cluster& c) {
    auto instance = GenMatMulRandom<S>(c, SkewedMatMulConfig());
    c.ResetStats();
    MatMulOptions options;
    options.strategy = MatMulStrategy::kWorstCase;
    return MatMul(c, std::move(instance.relations[0]),
                  std::move(instance.relations[1]), options);
  });
}

// matmul_os.h: heavy rows, per-group heavy columns, and packing inputs
// are gathered in sorted order, so virtual-server bases are
// data-determined; route lambdas use pure lookups.
TEST(OrderDeterminismTest, MatMulOutputSensitive) {
  ExpectBitIdenticalAcrossThreads(12, [](mpc::Cluster& c) {
    auto instance = GenMatMulRandom<S>(c, SkewedMatMulConfig());
    c.ResetStats();
    MatMulOptions options;
    options.strategy = MatMulStrategy::kOutputSensitive;
    return MatMul(c, std::move(instance.relations[0]),
                  std::move(instance.relations[1]), options);
  });
}

// star_query.h: dense permutation ids are now assigned in sorted-b order.
TEST(OrderDeterminismTest, StarQuery) {
  ExpectBitIdenticalAcrossThreads(8, [](mpc::Cluster& c) {
    auto instance = GenStarRandom<S>(c, 3, 900, 60, 25, 0.7, 13);
    c.ResetStats();
    return StarQueryAggregate(c, std::move(instance));
  });
}

// starlike_query.h: dense class ids (permutation x {small, large}) are
// assigned in sorted-b order.
TEST(OrderDeterminismTest, StarLikeQuery) {
  ExpectBitIdenticalAcrossThreads(8, [](mpc::Cluster& c) {
    auto instance = GenTreeRandom<S>(c, Fig1StarLikeQuery(), 60, 25, 3);
    c.ResetStats();
    return StarLikeAggregate(c, std::move(instance));
  });
}

// hypercube.h: each grid cell emits its local aggregate in sorted row
// order, so the reduce sees a data-determined merge order.
TEST(OrderDeterminismTest, HyperCube) {
  ExpectBitIdenticalAcrossThreads(8, [](mpc::Cluster& c) {
    MatMulGenConfig cfg = SkewedMatMulConfig();
    cfg.n1 = 800;
    cfg.n2 = 700;
    auto instance = GenMatMulRandom<S>(c, cfg);
    c.ResetStats();
    return HyperCubeJoinAggregate(c, instance);
  });
}

// tree_query.h + planner.h: the full pipeline — estimation (sorted
// floating-point folds in EstimateStar), planning, and the §7 tree
// algorithm (pragma-justified per-key folds) — through PlanAndRun.
TEST(OrderDeterminismTest, TreeQueryThroughPlanner) {
  ThreadOverrideGuard guard;
  std::vector<std::vector<Tuple<S>>> base_parts;
  std::int64_t base_out_estimate = 0;
  for (int threads : {1, 4}) {
    SetParallelForThreads(threads);
    mpc::Cluster cluster(8);
    auto instance = GenTreeRandom<S>(cluster, Fig1StarLikeQuery(), 60, 20, 5);
    auto exec = plan::PlanAndRun(cluster, instance);
    if (threads == 1) {
      base_parts = std::move(exec.result.data.parts());
      base_out_estimate = exec.plan.stats.out_estimate;
      continue;
    }
    EXPECT_EQ(exec.plan.stats.out_estimate, base_out_estimate);
    ASSERT_EQ(exec.result.data.num_parts(),
              static_cast<int>(base_parts.size()));
    for (int s = 0; s < exec.result.data.num_parts(); ++s) {
      const auto& got = exec.result.data.part(s);
      const auto& want = base_parts[static_cast<size_t>(s)];
      ASSERT_EQ(got.size(), want.size()) << "part " << s;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].row == want[i].row) << "part " << s << " #" << i;
        EXPECT_EQ(got[i].w, want[i].w) << "part " << s << " #" << i;
      }
    }
  }
}

}  // namespace
}  // namespace parjoin
