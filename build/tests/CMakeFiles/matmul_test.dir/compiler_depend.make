# Empty compiler generated dependencies file for matmul_test.
# This may be replaced when dependencies are built.
