file(REMOVE_RECURSE
  "CMakeFiles/matmul_test.dir/matmul_test.cc.o"
  "CMakeFiles/matmul_test.dir/matmul_test.cc.o.d"
  "matmul_test"
  "matmul_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
