# Empty dependencies file for yannakakis_test.
# This may be replaced when dependencies are built.
