file(REMOVE_RECURSE
  "CMakeFiles/yannakakis_test.dir/yannakakis_test.cc.o"
  "CMakeFiles/yannakakis_test.dir/yannakakis_test.cc.o.d"
  "yannakakis_test"
  "yannakakis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yannakakis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
