file(REMOVE_RECURSE
  "CMakeFiles/mpc_primitives_test.dir/mpc_primitives_test.cc.o"
  "CMakeFiles/mpc_primitives_test.dir/mpc_primitives_test.cc.o.d"
  "mpc_primitives_test"
  "mpc_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
