# Empty compiler generated dependencies file for mpc_primitives_test.
# This may be replaced when dependencies are built.
