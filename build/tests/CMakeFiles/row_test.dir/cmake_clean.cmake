file(REMOVE_RECURSE
  "CMakeFiles/row_test.dir/row_test.cc.o"
  "CMakeFiles/row_test.dir/row_test.cc.o.d"
  "row_test"
  "row_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
