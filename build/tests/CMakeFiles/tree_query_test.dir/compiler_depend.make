# Empty compiler generated dependencies file for tree_query_test.
# This may be replaced when dependencies are built.
