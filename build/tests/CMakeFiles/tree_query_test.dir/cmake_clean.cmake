file(REMOVE_RECURSE
  "CMakeFiles/tree_query_test.dir/tree_query_test.cc.o"
  "CMakeFiles/tree_query_test.dir/tree_query_test.cc.o.d"
  "tree_query_test"
  "tree_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
