file(REMOVE_RECURSE
  "CMakeFiles/relation_ops_test.dir/relation_ops_test.cc.o"
  "CMakeFiles/relation_ops_test.dir/relation_ops_test.cc.o.d"
  "relation_ops_test"
  "relation_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
