# Empty dependencies file for relation_ops_test.
# This may be replaced when dependencies are built.
