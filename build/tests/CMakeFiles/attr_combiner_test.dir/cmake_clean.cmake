file(REMOVE_RECURSE
  "CMakeFiles/attr_combiner_test.dir/attr_combiner_test.cc.o"
  "CMakeFiles/attr_combiner_test.dir/attr_combiner_test.cc.o.d"
  "attr_combiner_test"
  "attr_combiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
