# Empty compiler generated dependencies file for attr_combiner_test.
# This may be replaced when dependencies are built.
