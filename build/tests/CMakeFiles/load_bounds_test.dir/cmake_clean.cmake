file(REMOVE_RECURSE
  "CMakeFiles/load_bounds_test.dir/load_bounds_test.cc.o"
  "CMakeFiles/load_bounds_test.dir/load_bounds_test.cc.o.d"
  "load_bounds_test"
  "load_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
