# Empty compiler generated dependencies file for load_bounds_test.
# This may be replaced when dependencies are built.
