file(REMOVE_RECURSE
  "CMakeFiles/fuzz_topology_test.dir/fuzz_topology_test.cc.o"
  "CMakeFiles/fuzz_topology_test.dir/fuzz_topology_test.cc.o.d"
  "fuzz_topology_test"
  "fuzz_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
