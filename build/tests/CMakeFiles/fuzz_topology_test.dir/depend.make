# Empty dependencies file for fuzz_topology_test.
# This may be replaced when dependencies are built.
