file(REMOVE_RECURSE
  "CMakeFiles/parallel_for_test.dir/parallel_for_test.cc.o"
  "CMakeFiles/parallel_for_test.dir/parallel_for_test.cc.o.d"
  "parallel_for_test"
  "parallel_for_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_for_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
