# Empty dependencies file for parallel_for_test.
# This may be replaced when dependencies are built.
