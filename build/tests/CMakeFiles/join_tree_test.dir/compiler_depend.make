# Empty compiler generated dependencies file for join_tree_test.
# This may be replaced when dependencies are built.
