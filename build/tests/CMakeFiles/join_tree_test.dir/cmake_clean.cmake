file(REMOVE_RECURSE
  "CMakeFiles/join_tree_test.dir/join_tree_test.cc.o"
  "CMakeFiles/join_tree_test.dir/join_tree_test.cc.o.d"
  "join_tree_test"
  "join_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
