file(REMOVE_RECURSE
  "CMakeFiles/line_star_test.dir/line_star_test.cc.o"
  "CMakeFiles/line_star_test.dir/line_star_test.cc.o.d"
  "line_star_test"
  "line_star_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
