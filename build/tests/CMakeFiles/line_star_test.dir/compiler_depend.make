# Empty compiler generated dependencies file for line_star_test.
# This may be replaced when dependencies are built.
