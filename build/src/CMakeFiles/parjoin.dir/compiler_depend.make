# Empty compiler generated dependencies file for parjoin.
# This may be replaced when dependencies are built.
