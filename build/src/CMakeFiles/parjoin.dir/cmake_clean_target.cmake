file(REMOVE_RECURSE
  "libparjoin.a"
)
