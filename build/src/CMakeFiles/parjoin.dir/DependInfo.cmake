
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parjoin/common/logging.cc" "src/CMakeFiles/parjoin.dir/parjoin/common/logging.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/common/logging.cc.o.d"
  "/root/repo/src/parjoin/common/parallel_for.cc" "src/CMakeFiles/parjoin.dir/parjoin/common/parallel_for.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/common/parallel_for.cc.o.d"
  "/root/repo/src/parjoin/common/table_printer.cc" "src/CMakeFiles/parjoin.dir/parjoin/common/table_printer.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/common/table_printer.cc.o.d"
  "/root/repo/src/parjoin/mpc/primitives.cc" "src/CMakeFiles/parjoin.dir/parjoin/mpc/primitives.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/mpc/primitives.cc.o.d"
  "/root/repo/src/parjoin/query/join_tree.cc" "src/CMakeFiles/parjoin.dir/parjoin/query/join_tree.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/query/join_tree.cc.o.d"
  "/root/repo/src/parjoin/relation/io.cc" "src/CMakeFiles/parjoin.dir/parjoin/relation/io.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/relation/io.cc.o.d"
  "/root/repo/src/parjoin/relation/ops.cc" "src/CMakeFiles/parjoin.dir/parjoin/relation/ops.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/relation/ops.cc.o.d"
  "/root/repo/src/parjoin/workload/generators.cc" "src/CMakeFiles/parjoin.dir/parjoin/workload/generators.cc.o" "gcc" "src/CMakeFiles/parjoin.dir/parjoin/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
