file(REMOVE_RECURSE
  "CMakeFiles/parjoin.dir/parjoin/common/logging.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/common/logging.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/common/parallel_for.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/common/parallel_for.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/common/table_printer.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/common/table_printer.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/mpc/primitives.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/mpc/primitives.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/query/join_tree.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/query/join_tree.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/relation/io.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/relation/io.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/relation/ops.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/relation/ops.cc.o.d"
  "CMakeFiles/parjoin.dir/parjoin/workload/generators.cc.o"
  "CMakeFiles/parjoin.dir/parjoin/workload/generators.cc.o.d"
  "libparjoin.a"
  "libparjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
