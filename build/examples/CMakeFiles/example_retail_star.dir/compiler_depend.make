# Empty compiler generated dependencies file for example_retail_star.
# This may be replaced when dependencies are built.
