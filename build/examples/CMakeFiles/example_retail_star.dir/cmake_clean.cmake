file(REMOVE_RECURSE
  "CMakeFiles/example_retail_star.dir/retail_star.cpp.o"
  "CMakeFiles/example_retail_star.dir/retail_star.cpp.o.d"
  "example_retail_star"
  "example_retail_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retail_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
