file(REMOVE_RECURSE
  "CMakeFiles/example_provenance_tree.dir/provenance_tree.cpp.o"
  "CMakeFiles/example_provenance_tree.dir/provenance_tree.cpp.o.d"
  "example_provenance_tree"
  "example_provenance_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_provenance_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
