# Empty compiler generated dependencies file for example_provenance_tree.
# This may be replaced when dependencies are built.
