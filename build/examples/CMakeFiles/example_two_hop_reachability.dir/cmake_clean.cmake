file(REMOVE_RECURSE
  "CMakeFiles/example_two_hop_reachability.dir/two_hop_reachability.cpp.o"
  "CMakeFiles/example_two_hop_reachability.dir/two_hop_reachability.cpp.o.d"
  "example_two_hop_reachability"
  "example_two_hop_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_two_hop_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
