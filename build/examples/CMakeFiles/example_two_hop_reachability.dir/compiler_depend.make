# Empty compiler generated dependencies file for example_two_hop_reachability.
# This may be replaced when dependencies are built.
