file(REMOVE_RECURSE
  "CMakeFiles/example_shortest_path_line.dir/shortest_path_line.cpp.o"
  "CMakeFiles/example_shortest_path_line.dir/shortest_path_line.cpp.o.d"
  "example_shortest_path_line"
  "example_shortest_path_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shortest_path_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
