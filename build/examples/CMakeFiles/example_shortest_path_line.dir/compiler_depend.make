# Empty compiler generated dependencies file for example_shortest_path_line.
# This may be replaced when dependencies are built.
