# Empty compiler generated dependencies file for example_query_runner.
# This may be replaced when dependencies are built.
