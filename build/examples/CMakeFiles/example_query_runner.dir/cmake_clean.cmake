file(REMOVE_RECURSE
  "CMakeFiles/example_query_runner.dir/query_runner.cpp.o"
  "CMakeFiles/example_query_runner.dir/query_runner.cpp.o.d"
  "example_query_runner"
  "example_query_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_query_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
