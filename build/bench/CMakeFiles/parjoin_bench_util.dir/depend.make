# Empty dependencies file for parjoin_bench_util.
# This may be replaced when dependencies are built.
