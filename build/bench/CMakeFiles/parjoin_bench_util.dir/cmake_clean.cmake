file(REMOVE_RECURSE
  "CMakeFiles/parjoin_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/parjoin_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/parjoin_bench_util.dir/bounds.cc.o"
  "CMakeFiles/parjoin_bench_util.dir/bounds.cc.o.d"
  "libparjoin_bench_util.a"
  "libparjoin_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parjoin_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
