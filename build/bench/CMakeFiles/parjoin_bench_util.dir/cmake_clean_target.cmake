file(REMOVE_RECURSE
  "libparjoin_bench_util.a"
)
