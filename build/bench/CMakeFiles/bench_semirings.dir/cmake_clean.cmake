file(REMOVE_RECURSE
  "CMakeFiles/bench_semirings.dir/bench_semirings.cc.o"
  "CMakeFiles/bench_semirings.dir/bench_semirings.cc.o.d"
  "bench_semirings"
  "bench_semirings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semirings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
