# Empty dependencies file for bench_semirings.
# This may be replaced when dependencies are built.
