file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_line.dir/bench_table1_line.cc.o"
  "CMakeFiles/bench_table1_line.dir/bench_table1_line.cc.o.d"
  "bench_table1_line"
  "bench_table1_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
