file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_matmul.dir/bench_table1_matmul.cc.o"
  "CMakeFiles/bench_table1_matmul.dir/bench_table1_matmul.cc.o.d"
  "bench_table1_matmul"
  "bench_table1_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
