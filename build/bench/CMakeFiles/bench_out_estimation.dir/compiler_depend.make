# Empty compiler generated dependencies file for bench_out_estimation.
# This may be replaced when dependencies are built.
