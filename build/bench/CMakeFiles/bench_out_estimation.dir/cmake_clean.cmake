file(REMOVE_RECURSE
  "CMakeFiles/bench_out_estimation.dir/bench_out_estimation.cc.o"
  "CMakeFiles/bench_out_estimation.dir/bench_out_estimation.cc.o.d"
  "bench_out_estimation"
  "bench_out_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_out_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
