file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_tree_decomp.dir/bench_fig_tree_decomp.cc.o"
  "CMakeFiles/bench_fig_tree_decomp.dir/bench_fig_tree_decomp.cc.o.d"
  "bench_fig_tree_decomp"
  "bench_fig_tree_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_tree_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
