# Empty dependencies file for bench_fig_tree_decomp.
# This may be replaced when dependencies are built.
