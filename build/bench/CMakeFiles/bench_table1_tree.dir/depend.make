# Empty dependencies file for bench_table1_tree.
# This may be replaced when dependencies are built.
