file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tree.dir/bench_table1_tree.cc.o"
  "CMakeFiles/bench_table1_tree.dir/bench_table1_tree.cc.o.d"
  "bench_table1_tree"
  "bench_table1_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
