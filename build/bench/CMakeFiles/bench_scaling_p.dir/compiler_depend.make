# Empty compiler generated dependencies file for bench_scaling_p.
# This may be replaced when dependencies are built.
