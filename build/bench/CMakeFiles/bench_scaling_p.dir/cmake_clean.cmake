file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_p.dir/bench_scaling_p.cc.o"
  "CMakeFiles/bench_scaling_p.dir/bench_scaling_p.cc.o.d"
  "bench_scaling_p"
  "bench_scaling_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
