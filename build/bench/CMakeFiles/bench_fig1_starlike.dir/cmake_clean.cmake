file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_starlike.dir/bench_fig1_starlike.cc.o"
  "CMakeFiles/bench_fig1_starlike.dir/bench_fig1_starlike.cc.o.d"
  "bench_fig1_starlike"
  "bench_fig1_starlike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_starlike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
