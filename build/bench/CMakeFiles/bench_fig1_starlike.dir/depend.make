# Empty dependencies file for bench_fig1_starlike.
# This may be replaced when dependencies are built.
