# Empty compiler generated dependencies file for bench_matmul_crossover.
# This may be replaced when dependencies are built.
