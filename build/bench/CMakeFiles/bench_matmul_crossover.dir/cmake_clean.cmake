file(REMOVE_RECURSE
  "CMakeFiles/bench_matmul_crossover.dir/bench_matmul_crossover.cc.o"
  "CMakeFiles/bench_matmul_crossover.dir/bench_matmul_crossover.cc.o.d"
  "bench_matmul_crossover"
  "bench_matmul_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matmul_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
