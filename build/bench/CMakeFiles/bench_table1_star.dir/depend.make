# Empty dependencies file for bench_table1_star.
# This may be replaced when dependencies are built.
