file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_star.dir/bench_table1_star.cc.o"
  "CMakeFiles/bench_table1_star.dir/bench_table1_star.cc.o.d"
  "bench_table1_star"
  "bench_table1_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
