// Closed-form evaluations of the load bounds in the paper's Table 1,
// reported next to measured loads so every bench prints
// paper-bound vs. measured side by side.
//
// All bounds are asymptotic; these helpers evaluate the dominant expression
// with constant 1, so ratios (measured / bound) are meaningful across a
// sweep even though absolute constants are implementation-specific.

#ifndef PARJOIN_BENCH_BOUNDS_H_
#define PARJOIN_BENCH_BOUNDS_H_

#include <cstdint>

namespace parjoin {
namespace bench {

// Distributed Yannakakis, matrix multiplication: O(N/p + N*sqrt(OUT)/p).
double YannakakisMatMulBound(std::int64_t n, std::int64_t out, int p);

// Theorem 1: O((N1+N2)/p + min{sqrt(N1 N2 / p),
//                               (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double NewMatMulBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                      int p);

// Distributed Yannakakis, star query (n relations):
// O(N/p + N * OUT^{1-1/n} / p).
double YannakakisStarBound(std::int64_t n, std::int64_t out, int arity, int p);

// Distributed Yannakakis, line/tree queries: O(N/p + N*OUT/p).
double YannakakisTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 4 / Theorem 5 (line and star queries):
// O((N*OUT/p)^{2/3} + N*OUT^{1/2}/p + (N+OUT)/p).
double NewLineStarBound(std::int64_t n, std::int64_t out, int p);

// Theorem 6 (tree queries): O(N*OUT^{2/3}/p + (N+OUT)/p).
double NewTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 3 lower bound:
// Omega(min{sqrt(N1 N2 / p), (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double MatMulLowerBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                        int p);

}  // namespace bench
}  // namespace parjoin

#endif  // PARJOIN_BENCH_BOUNDS_H_
