// E7 — §2.2 output-size estimation quality.
//
// The matrix-multiplication and line-query algorithms rely on a
// constant-factor approximation of OUT obtained with linear load (KMV
// chains + median boosting). This bench reports estimate/true ratios and
// the estimator's measured load across instance families, skew levels,
// and chain lengths.

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/algorithms/reference.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/sketch/out_estimate.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 32;
  bench::PrintHeader(
      "E7", "§2.2 OUT estimation",
      "Estimate/true ratios (target: constant factor w.h.p.; the paper\n"
      "needs any constant) and the estimator's load vs. N/p (target:\n"
      "linear load, times the O(log N) repetition factor hidden in Õ).");

  TablePrinter table({"family", "n_chain", "N_total", "OUT_true", "OUT_est",
                      "ratio", "L_estimator", "N/p"});

  auto report = [&](const std::string& family, int chain_len,
                    auto make_instance, std::vector<AttrId> path) {
    std::int64_t n_total = 0, out_true = 0, out_est = 0, load = 0;
    bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = make_instance(c);
      n_total = instance.TotalInputSize();
      Relation<S> truth = EvaluateReference(instance);
      out_true = truth.size();
      c.ResetStats();
      OutEstimate est = EstimateChainOut(c, instance.relations, path);
      out_est = est.total;
      load = c.stats().max_load;
    });
    table.AddRow({family, Fmt(static_cast<std::int64_t>(chain_len)),
                  Fmt(n_total), Fmt(out_true), Fmt(out_est),
                  bench::Ratio(static_cast<double>(out_est),
                               static_cast<double>(out_true)),
                  Fmt(load), Fmt(n_total / p)});
  };

  for (double skew : {0.0, 0.5, 1.0}) {
    report("matmul skew=" + std::to_string(skew).substr(0, 3), 2,
           [&](mpc::Cluster& c) {
             MatMulGenConfig cfg;
             cfg.n1 = cfg.n2 = 20000;
             cfg.dom_a = 2000;
             cfg.dom_b = 500;
             cfg.dom_c = 4000;
             cfg.skew_b = skew;
             cfg.seed = 3;
             return GenMatMulRandom<S>(c, cfg);
           },
           {0, 1, 2});
  }

  for (int arity : {3, 4, 5}) {
    std::vector<AttrId> path;
    for (int i = 0; i <= arity; ++i) path.push_back(i);
    report("line uniform", arity,
           [&](mpc::Cluster& c) {
             return GenLineRandom<S>(c, arity, 8000, 900, 0.0, 7);
           },
           path);
  }

  {
    report("blocks (exact OUT)", 2,
           [&](mpc::Cluster& c) {
             MatMulBlockConfig cfg =
                 MatMulBlockConfig::FromTargets(20000, 40000, 16);
             return GenMatMulBlocks<S>(c, cfg);
           },
           {0, 1, 2});
  }

  table.Print(std::cout);
  std::cout << std::endl;
  return 0;
}
