// E8 — profile-driven planner calibration (obs/profile.h).
//
// The planner ranks candidates by constant-1 Table 1 bounds; the
// implementations hide different constant factors, so near a crossover
// the unit-constant ranking can pick the measured loser. E8 closes the
// loop: a training sweep runs EVERY candidate on matmul block instances,
// records predicted-vs-measured samples into an obs::ProfileStore, fits a
// plan::CalibrationTable (geometric-mean factors), then re-plans an
// evaluation sweep with and without the fitted factors against the
// measured ground truth (MeasureCandidates). An eval row is `corrected`
// when unit constants picked wrong and calibration picked the measured
// winner. At least one sweep point must be corrected — the crossover
// OUT* shifts cubically in the factor ratio, so a dense sweep around the
// unit crossover always exposes a flip unless the constants are equal.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/obs/profile.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/plan/executor.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

constexpr int kP = 16;
constexpr std::int64_t kN = 4096;
constexpr std::uint64_t kSeed = 7;

// Runs every candidate of the instance's plan and folds each one's
// predicted-vs-measured sample into the profile (the same math the
// executor's ExecutionProfileSink path records, but for all candidates
// instead of only the chosen one — training needs ratios per algorithm).
void TrainOn(std::int64_t out, obs::ProfileStore* profile) {
  MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(kN, out, 4, kSeed);
  mpc::Cluster cluster(kP, kSeed);
  TreeInstance<S> instance = GenMatMulBlocks<S>(cluster, cfg);
  plan::PlannerOptions options;
  options.out_override = cfg.out();
  plan::PhysicalPlan plan = plan::PlanQuery(cluster, instance, options);
  plan::MeasureCandidates(cluster, instance, &plan);
  for (const plan::Candidate& c : plan.candidates) {
    plan::ExecutionRecord rec;
    rec.algorithm = c.algorithm;
    rec.shape = plan.shape;
    rec.p = kP;
    rec.input_size = plan.stats.total_input;
    rec.predicted_load = c.predicted_load;  // constant-1: no calibration
    rec.measured_load = c.measured_load;
    profile->RecordExecution(rec);
  }
}

std::string FmtFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", f);
  return buf;
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E8", "profile-driven calibration",
      "Matmul blocks, N = " + Fmt(kN) + ", p = " + std::to_string(kP) +
          ": fit per-algorithm constants from a training sweep, then show "
          "the calibrated planner matching the measured winner across the "
          "crossover where unit constants mispick.");

  // --- Training: every candidate on a coarse OUT sweep -> profile -> fit.
  obs::ProfileStore profile;
  for (std::int64_t out : {256, 1024, 4096, 16384, 65536, 262144}) {
    TrainOn(out, &profile);
  }
  const plan::CalibrationTable calibration = obs::FitCalibration(profile);

  std::cout << "Fitted factors (" << profile.total_runs()
            << " training runs):\n";
  TablePrinter factors({"algorithm", "shape", "factor", "runs"});
  for (const auto& e : calibration.entries()) {
    factors.AddRow({plan::AlgorithmName(e.algorithm),
                    e.has_shape ? QueryShapeName(e.shape) : "*",
                    FmtFactor(e.factor), Fmt(e.runs)});
  }
  factors.Print(std::cout);
  std::cout << "\n";

  // --- Evaluation: unit vs calibrated plan vs measured ground truth.
  TablePrinter table({"OUT", "chosen_unit", "chosen_calibrated",
                      "measured_best", "corrected", "calib_factor"});
  std::vector<bench::BenchJsonEntry> json_entries;
  int corrected_total = 0;
  int wrong_unit = 0;
  for (std::int64_t out :
       {2048, 4096, 8192, 16384, 32768, 65536, 131072}) {
    MatMulBlockConfig cfg =
        MatMulBlockConfig::FromTargets(kN, out, 4, kSeed);
    mpc::Cluster cluster(kP, kSeed);
    TreeInstance<S> instance = GenMatMulBlocks<S>(cluster, cfg);
    plan::PlannerOptions unit_options;
    unit_options.out_override = cfg.out();
    plan::PhysicalPlan unit_plan =
        plan::PlanQuery(cluster, instance, unit_options);

    plan::PlannerOptions calibrated_options = unit_options;
    calibrated_options.calibration = &calibration;
    plan::PhysicalPlan plan =
        plan::PlanQuery(cluster, instance, calibrated_options);
    plan::MeasureCandidates(cluster, instance, &plan);

    const plan::Candidate* best = &plan.candidates.front();
    for (const plan::Candidate& c : plan.candidates) {
      if (c.measured_load < best->measured_load) best = &c;
    }
    const bool unit_right = unit_plan.chosen == best->algorithm;
    const bool calibrated_right = plan.chosen == best->algorithm;
    const bool corrected = !unit_right && calibrated_right;
    wrong_unit += unit_right ? 0 : 1;
    corrected_total += corrected ? 1 : 0;
    const double chosen_factor =
        calibration.Factor(plan.chosen, plan.shape);
    table.AddRow({Fmt(cfg.out()), plan::AlgorithmName(unit_plan.chosen),
                  plan::AlgorithmName(plan.chosen),
                  plan::AlgorithmName(best->algorithm),
                  corrected ? "yes" : "-", FmtFactor(chosen_factor)});

    bench::RunResult run = bench::Measure(kP, kSeed, [&](mpc::Cluster& c) {
      TreeInstance<S> inst = GenMatMulBlocks<S>(c, cfg);
      c.ResetStats();
      plan::DispatchAlgorithm(c, plan.chosen, std::move(inst));
    });
    bench::BenchJsonEntry entry;
    entry.experiment = "E8";
    entry.name = "calibration/out=" + std::to_string(cfg.out()) +
                 "/p=" + std::to_string(kP);
    entry.n = cfg.n1() + cfg.n2();
    entry.p = kP;
    entry.threads = ParallelForThreads();
    entry.result = run;
    entry.calibration.present = true;
    entry.calibration.chosen_unit = plan::AlgorithmName(unit_plan.chosen);
    entry.calibration.chosen_calibrated = plan::AlgorithmName(plan.chosen);
    entry.calibration.measured_best = plan::AlgorithmName(best->algorithm);
    entry.calibration.corrected = corrected ? 1 : 0;
    entry.calibration.calib_factor = chosen_factor;
    json_entries.push_back(entry);
  }
  table.Print(std::cout);
  std::cout << "\n"
            << wrong_unit << " unit-constant mispick(s), "
            << corrected_total << " corrected by calibration\n"
            << std::endl;

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E8", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E8 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
