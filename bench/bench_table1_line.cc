// E2 — Table 1, row "Line".
//
// Distributed Yannakakis (load O(N/p + N*OUT/p) in the worst case, driven
// by the largest intermediate join J) against the §4 algorithm
// (O((N*OUT/p)^{2/3} + N*sqrt(OUT)/p + (N+OUT)/p), Theorem 4). Block
// chains with a fat middle make J >> OUT — the regime the paper's
// improvement targets — and the sweep varies OUT and the chain length n.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

void RunSweep(const std::string& title, int p,
              const std::vector<LineBlockConfig>& configs,
              const std::string& sweep_tag,
              std::vector<bench::BenchJsonEntry>* json_entries) {
  std::cout << title << " (p = " << p << ")\n";
  // Two baselines: the literal 1981 Yannakakis (projection only at the
  // end — this is where the Table 1 N*OUT/p-style blowup manifests) and
  // the strong variant with aggregation pushdown after every join.
  TablePrinter table({"n", "N_per_rel", "OUT", "L_yann1981",
                      "L_yann_pushdown", "L_theorem4", "speedup_vs_1981",
                      "speedup_vs_strong", "bound_thm4", "ms_thm4"});
  for (const auto& cfg : configs) {
    std::int64_t n_rel = 0;
    std::int64_t out_measured = 0;
    bench::RunResult yann1981 = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenLineBlocks<S>(c, cfg);
      n_rel = instance.relations[0].TotalSize();
      c.ResetStats();
      YannakakisOptions options;
      options.aggregate_pushdown = false;
      auto r = YannakakisJoinAggregate(c, std::move(instance), options);
      out_measured = r.TotalSize();
    });
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenLineBlocks<S>(c, cfg);
      c.ResetStats();
      YannakakisJoinAggregate(c, std::move(instance));
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenLineBlocks<S>(c, cfg);
      c.ResetStats();
      LineQueryAggregate(c, std::move(instance));
    });
    table.AddRow(
        {Fmt(static_cast<std::int64_t>(cfg.arity)), Fmt(n_rel),
         Fmt(out_measured), Fmt(yann1981.load), Fmt(yann.load),
         Fmt(ours.load),
         bench::Ratio(static_cast<double>(yann1981.load),
                      static_cast<double>(ours.load)),
         bench::Ratio(static_cast<double>(yann.load),
                      static_cast<double>(ours.load)),
         Fmt(plan::NewLineStarBound(n_rel, out_measured, p)),
         Fmt(ours.wall_ms)});
    const std::pair<const char*, const bench::RunResult*> algos[] = {
        {"yann1981", &yann1981}, {"yannakakis", &yann}, {"thm4", &ours}};
    for (const auto& [algo, run] : algos) {
      bench::BenchJsonEntry entry;
      entry.experiment = "E2";
      entry.name = sweep_tag + "/arity=" + std::to_string(cfg.arity) +
                   "/ends=" + std::to_string(cfg.side_end) +
                   "/OUT=" + std::to_string(out_measured) + "/" + algo;
      entry.n = n_rel * cfg.arity;
      entry.p = p;
      entry.threads = ParallelForThreads();
      entry.result = *run;
      json_entries->push_back(std::move(entry));
    }
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E2", "Table 1 — line queries",
      "Fat-middle block chains: the intermediate join is much larger than\n"
      "OUT, the regime where the Theorem 4 algorithm improves on the\n"
      "Yannakakis baseline.");

  const int p = 64;
  std::vector<bench::BenchJsonEntry> json_entries;
  std::vector<LineBlockConfig> out_sweep;
  for (std::int64_t side_end : {2, 4, 8, 16}) {
    LineBlockConfig cfg;
    cfg.arity = 3;
    cfg.blocks = 8;
    cfg.side_end = side_end;
    cfg.side_mid = 48;  // fat middle: J ~ blocks * side_mid^2
    out_sweep.push_back(cfg);
  }
  RunSweep("Sweep OUT at fixed middle width (n = 3)", p, out_sweep,
           "out-sweep", &json_entries);

  std::vector<LineBlockConfig> arity_sweep;
  for (int arity : {3, 4, 5}) {
    LineBlockConfig cfg;
    cfg.arity = arity;
    cfg.blocks = 8;
    cfg.side_end = 6;
    cfg.side_mid = 28;
    arity_sweep.push_back(cfg);
  }
  RunSweep("Sweep chain length n", p, arity_sweep, "arity-sweep",
           &json_entries);

  // Hub chains: a few A2 hub values with degree >= sqrt(OUT) on both
  // sides (the Lemma 4 heavy regime). Yannakakis materializes h*m^2
  // intermediate tuples per block; the §4 heavy branch folds the chain
  // right-to-left and finishes with one output-sensitive matmul.
  std::cout << "Hub chains (heavy A2 values; n = 3, p = " << p << ")\n";
  TablePrinter hub_table({"m", "N_total", "OUT", "L_yannakakis",
                          "L_theorem4", "speedup", "ms_thm4"});
  for (std::int64_t m : {50, 100, 200}) {
    const std::int64_t hubs = 20, ends = 4, blocks = 4;
    auto make = [&](mpc::Cluster& c) {
      Rng rng(23);
      Relation<S> r1(Schema{0, 1}), r2(Schema{1, 2}), r3(Schema{2, 3});
      for (std::int64_t blk = 0; blk < blocks; ++blk) {
        for (std::int64_t a = 0; a < m; ++a) {
          for (std::int64_t h = 0; h < hubs; ++h) {
            r1.Add(Row{blk * m + a, blk * hubs + h},
                   internal_workload::RandomWeight<S>(rng, 10));
          }
        }
        for (std::int64_t h = 0; h < hubs; ++h) {
          for (std::int64_t mid = 0; mid < m; ++mid) {
            r2.Add(Row{blk * hubs + h, blk * m + mid},
                   internal_workload::RandomWeight<S>(rng, 10));
          }
        }
        for (std::int64_t mid = 0; mid < m; ++mid) {
          for (std::int64_t e = 0; e < ends; ++e) {
            r3.Add(Row{blk * m + mid, blk * ends + e},
                   internal_workload::RandomWeight<S>(rng, 10));
          }
        }
      }
      TreeInstance<S> instance{
          JoinTree({{0, 1}, {1, 2}, {2, 3}}, {0, 3}), {}};
      instance.relations.push_back(Distribute(c, std::move(r1)));
      instance.relations.push_back(Distribute(c, std::move(r2)));
      instance.relations.push_back(Distribute(c, std::move(r3)));
      return instance;
    };
    std::int64_t n_total = 0, out_measured = 0;
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      n_total = instance.TotalInputSize();
      c.ResetStats();
      auto r = YannakakisJoinAggregate(c, std::move(instance));
      out_measured = r.TotalSize();
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      c.ResetStats();
      LineQueryAggregate(c, std::move(instance));
    });
    hub_table.AddRow({Fmt(m), Fmt(n_total), Fmt(out_measured),
                      Fmt(yann.load), Fmt(ours.load),
                      bench::Ratio(static_cast<double>(yann.load),
                                   static_cast<double>(ours.load)),
                      Fmt(ours.wall_ms)});
  }
  hub_table.Print(std::cout);
  std::cout << std::endl;

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E2", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E2 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
