#include "bounds.h"

#include <algorithm>
#include <cmath>

namespace parjoin {
namespace bench {
namespace {

double D(std::int64_t v) { return static_cast<double>(v); }

}  // namespace

double YannakakisMatMulBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) / p + D(n) * std::sqrt(D(out)) / p;
}

double NewMatMulBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                      int p) {
  const double wc = std::sqrt(D(n1) * D(n2) / p);
  const double os =
      std::cbrt(D(n1) * D(n2) * D(out)) / std::pow(static_cast<double>(p),
                                                   2.0 / 3.0);
  return D(n1 + n2) / p + std::min(wc, os);
}

double YannakakisStarBound(std::int64_t n, std::int64_t out, int arity,
                           int p) {
  return D(n) / p +
         D(n) * std::pow(D(out), 1.0 - 1.0 / arity) / p;
}

double YannakakisTreeBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) / p + D(n) * D(out) / p;
}

double NewLineStarBound(std::int64_t n, std::int64_t out, int p) {
  return std::pow(D(n) * D(out) / p, 2.0 / 3.0) +
         D(n) * std::sqrt(D(out)) / p + D(n + out) / p;
}

double NewTreeBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) * std::pow(D(out), 2.0 / 3.0) / p + D(n + out) / p;
}

double MatMulLowerBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                        int p) {
  const double wc = std::sqrt(D(n1) * D(n2) / p);
  const double os =
      std::cbrt(D(n1) * D(n2) * D(out)) / std::pow(static_cast<double>(p),
                                                   2.0 / 3.0);
  return std::min(wc, os);
}

}  // namespace bench
}  // namespace parjoin
