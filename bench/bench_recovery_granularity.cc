// E9 — fine-grained recovery: what resuming from an interval checkpoint
// saves over replaying from the input snapshot.
//
// Two recovery modes for the same pinned fail-stop crash (placed past the
// first interval checkpoint, so a replicated resume point exists):
//   replay   the attempt restarts from the restored input snapshot and
//            re-charges every algorithm round from round 1
//   resume   the attempt fast-forwards over the rounds the latest interval
//            checkpoint covers (Cluster::BeginAttempt); elided rounds
//            charge nothing
// plus a straggler pair pricing active re-balancing against the passive
// critical-path stretch:
//   passive  the injected delay factor stretches the straggled round
//   rebalance the victim's round load ships onto the other live servers
//            in a charged re-balance round (straggle threshold armed)
//
// Outputs are bit-identical across all modes (tests/fault_tolerance_test.cc
// asserts this; here we only price the difference). The resume rows must
// show strictly fewer charged rounds and strictly less recovery_comm than
// replay for every workload — that is the E9 acceptance row.

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/plan/executor.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

struct Workload {
  std::string name;
  std::int64_t n;
  std::function<TreeInstance<S>(mpc::Cluster&)> make;
};

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 16;
  bench::PrintHeader(
      "E9", "fine-grained recovery granularity",
      "crash pinned past the first interval checkpoint (interval 2): "
      "input-replay vs checkpoint-resume; straggler x6: passive stretch vs "
      "active re-balance.");

  std::vector<Workload> workloads;
  workloads.push_back(
      {"matmul", 20000, [](mpc::Cluster& c) {
         return GenMatMulBlocks<S>(
             c, MatMulBlockConfig::FromTargets(20000, 4096, 8));
       }});
  workloads.push_back({"line", 4 * 6 * 16 * 16, [](mpc::Cluster& c) {
                         LineBlockConfig cfg;
                         cfg.arity = 3;
                         cfg.blocks = 6;
                         cfg.side_end = 16;
                         cfg.side_mid = 16;
                         return GenLineBlocks<S>(c, cfg);
                       }});

  std::vector<bench::BenchJsonEntry> json_entries;
  TablePrinter table({"workload", "mode", "rounds", "recovery_comm",
                      "critical_path", "resumed", "rebal_comm",
                      "comm_vs_replay", "path_vs_passive"});

  auto run = [&](const Workload& w, const plan::ExecutionOptions& options,
                 plan::RecoveryReport* report,
                 mpc::Cluster::Stats* stats) {
    return bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto exec = plan::PlanAndRun(c, w.make(c), plan::PlannerOptions{},
                                   options);
      *report = exec.plan.recovery;
      *stats = exec.plan.execution_stats;
    });
  };
  auto add_entry = [&](const Workload& w, const std::string& mode,
                       const bench::RunResult& r,
                       const plan::RecoveryReport& report,
                       const mpc::Cluster::Stats& stats) {
    bench::BenchJsonEntry entry;
    entry.experiment = "E9";
    entry.name = w.name + "/" + mode + "/p=" + std::to_string(p);
    entry.n = w.n;
    entry.p = p;
    entry.threads = ParallelForThreads();
    entry.result = r;
    entry.recovery.present = true;
    entry.recovery.resumes = report.resumes;
    entry.recovery.resumed_rounds = report.resumed_rounds;
    entry.recovery.rebalances = report.rebalances;
    entry.recovery.rebalance_comm = stats.rebalance_comm;
    entry.recovery.replans = report.replans;
    json_entries.push_back(entry);
  };

  for (const Workload& w : workloads) {
    // --- crash recovery: input-replay vs checkpoint-resume ---
    plan::ExecutionOptions crash;
    crash.faults.enabled = true;
    crash.faults.seed = 7;
    crash.faults.crashes = 1;
    crash.faults.stragglers = 0;
    crash.faults.corruptions = 0;
    crash.faults.crash_rounds = {8};
    crash.checkpoint_interval = 2;

    plan::RecoveryReport replay_report, resume_report;
    mpc::Cluster::Stats replay_stats, resume_stats;
    const bench::RunResult replay =
        run(w, crash, &replay_report, &replay_stats);
    crash.resume_from_checkpoint = true;
    const bench::RunResult resume =
        run(w, crash, &resume_report, &resume_stats);

    table.AddRow({w.name, "replay", Fmt(static_cast<std::int64_t>(
                                        replay.rounds)),
                  Fmt(replay.recovery_comm), Fmt(replay.critical_path),
                  "0", "0", "1.00x", "-"});
    table.AddRow(
        {w.name, "resume",
         Fmt(static_cast<std::int64_t>(resume.rounds)),
         Fmt(resume.recovery_comm), Fmt(resume.critical_path),
         Fmt(static_cast<std::int64_t>(resume_report.resumed_rounds)), "0",
         bench::Ratio(static_cast<double>(resume.recovery_comm),
                      static_cast<double>(replay.recovery_comm)),
         "-"});
    add_entry(w, "replay", replay, replay_report, replay_stats);
    add_entry(w, "resume", resume, resume_report, resume_stats);

    // --- stragglers: passive stretch vs active re-balance ---
    plan::ExecutionOptions straggle;
    straggle.faults.enabled = true;
    straggle.faults.seed = 7;
    straggle.faults.crashes = 0;
    straggle.faults.stragglers = 2;
    straggle.faults.corruptions = 0;
    straggle.faults.straggle_min = 6.0;
    straggle.faults.straggle_max = 6.0;

    plan::RecoveryReport passive_report, rebalance_report;
    mpc::Cluster::Stats passive_stats, rebalance_stats;
    const bench::RunResult passive =
        run(w, straggle, &passive_report, &passive_stats);
    straggle.straggle_threshold = 4.0;
    const bench::RunResult rebalance =
        run(w, straggle, &rebalance_report, &rebalance_stats);

    table.AddRow({w.name, "passive",
                  Fmt(static_cast<std::int64_t>(passive.rounds)),
                  Fmt(passive.recovery_comm), Fmt(passive.critical_path),
                  "0", "0", "-", "1.00x"});
    table.AddRow(
        {w.name, "rebalance",
         Fmt(static_cast<std::int64_t>(rebalance.rounds)),
         Fmt(rebalance.recovery_comm), Fmt(rebalance.critical_path), "0",
         Fmt(rebalance_stats.rebalance_comm), "-",
         bench::Ratio(static_cast<double>(rebalance.critical_path),
                      static_cast<double>(passive.critical_path))});
    add_entry(w, "passive", passive, passive_report, passive_stats);
    add_entry(w, "rebalance", rebalance, rebalance_report, rebalance_stats);
  }
  table.Print(std::cout);
  std::cout << std::endl;

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E9", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E9 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
