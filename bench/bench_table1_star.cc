// E3 — Table 1, row "Star".
//
// Distributed Yannakakis (load O(N/p + N*OUT^{1-1/n}/p)) against the §5
// algorithm (O((N*OUT/p)^{2/3} + N*sqrt(OUT)/p + (N+OUT)/p), Theorem 5),
// sweeping OUT and the arity n on block-structured stars, plus a skewed
// random sweep that populates several permutation classes B_φ.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

template <typename Gen>
void RunSweep(const std::string& title, int p, int arity,
              const std::vector<Gen>& gens, const std::string& sweep_tag,
              std::vector<bench::BenchJsonEntry>* json_entries) {
  std::cout << title << " (p = " << p << ")\n";
  TablePrinter table({"n", "N_per_rel", "OUT", "L_yannakakis", "L_theorem5",
                      "speedup", "bound_yann", "bound_thm5", "ms_thm5"});
  int config_index = 0;
  for (const auto& gen : gens) {
    std::int64_t n_rel = 0;
    std::int64_t out_measured = 0;
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = gen(c);
      n_rel = instance.relations[0].TotalSize();
      c.ResetStats();
      auto r = YannakakisJoinAggregate(c, std::move(instance));
      out_measured = r.TotalSize();
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = gen(c);
      c.ResetStats();
      StarQueryAggregate(c, std::move(instance));
    });
    table.AddRow(
        {Fmt(static_cast<std::int64_t>(arity)), Fmt(n_rel),
         Fmt(out_measured), Fmt(yann.load), Fmt(ours.load),
         bench::Ratio(static_cast<double>(yann.load),
                      static_cast<double>(ours.load)),
         Fmt(plan::YannakakisStarBound(n_rel, out_measured, arity, p)),
         Fmt(plan::NewLineStarBound(n_rel, out_measured, p)),
         Fmt(ours.wall_ms)});
    const std::pair<const char*, const bench::RunResult*> algos[] = {
        {"yannakakis", &yann}, {"thm5", &ours}};
    for (const auto& [algo, run] : algos) {
      bench::BenchJsonEntry entry;
      entry.experiment = "E3";
      entry.name = sweep_tag + "/arity=" + std::to_string(arity) + "/cfg=" +
                   std::to_string(config_index) +
                   "/OUT=" + std::to_string(out_measured) + "/" + algo;
      entry.n = n_rel * arity;
      entry.p = p;
      entry.threads = ParallelForThreads();
      entry.result = *run;
      json_entries->push_back(std::move(entry));
    }
    ++config_index;
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E3", "Table 1 — star queries",
      "Block stars sweeping OUT (per-block OUT = side_arm^n); skewed random\n"
      "stars exercise multiple permutation classes.");

  const int p = 64;
  using Gen = std::function<TreeInstance<S>(mpc::Cluster&)>;
  std::vector<bench::BenchJsonEntry> json_entries;

  std::vector<Gen> out_sweep;
  for (std::int64_t side_arm : {2, 4, 8, 14}) {
    StarBlockConfig cfg;
    cfg.arity = 3;
    cfg.blocks = 8;
    cfg.side_arm = side_arm;
    cfg.side_b = 36;
    out_sweep.push_back(
        [cfg](mpc::Cluster& c) { return GenStarBlocks<S>(c, cfg); });
  }
  RunSweep<Gen>("Sweep OUT at fixed B width (n = 3)", p, 3, out_sweep,
                "out-sweep", &json_entries);

  for (int arity : {3, 4}) {
    std::vector<Gen> arity_sweep;
    StarBlockConfig cfg;
    cfg.arity = arity;
    cfg.blocks = 8;
    cfg.side_arm = 5;
    cfg.side_b = 24;
    arity_sweep.push_back(
        [cfg](mpc::Cluster& c) { return GenStarBlocks<S>(c, cfg); });
    RunSweep<Gen>("Arity n = " + std::to_string(arity), p, arity,
                  arity_sweep, "arity-sweep", &json_entries);
  }

  std::vector<Gen> skewed;
  for (double skew : {0.0, 0.3, 0.6}) {
    skewed.push_back([skew](mpc::Cluster& c) {
      // Small arm domains: many B values produce the same output
      // combination, so OUT << J -- the paper's improvement regime.
      return GenStarRandom<S>(c, 3, 3000, 25, 150, skew, 11);
    });
  }
  RunSweep<Gen>("Skewed random stars (Zipf on B)", p, 3, skewed, "skewed",
                &json_entries);

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E3", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E3 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
