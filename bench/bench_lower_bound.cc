// E6 — Theorems 2 & 3 (lower bounds).
//
// Runs the Theorem 1 algorithm on the §3.3 hard instances and reports the
// measured load next to the matching lower-bound expression: the ratio
// must stay bounded by a constant across the sweep — i.e. the algorithm is
// tight on its own hard instances, which is how optimality manifests
// empirically.

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 32;

  bench::PrintHeader(
      "E6a", "Theorem 2 hard instance",
      "R1 = {a} x dom(B), R2 = {b1,b2} x dom(C): every output needs two\n"
      "specific tuples to meet; lower bound Omega((N1+N2)/p).");
  {
    TablePrinter table({"N1", "N2", "OUT", "L_measured", "LB=(N1+N2)/p",
                        "ratio"});
    for (std::int64_t n2 : {2000, 8000, 32000}) {
      const std::int64_t n1 = n2 / 4;
      std::int64_t out = 0;
      bench::RunResult r = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenLowerBoundThm2<S>(c, n1, n2);
        c.ResetStats();
        auto result = MatMul(c, std::move(instance.relations[0]),
                             std::move(instance.relations[1]));
        out = result.TotalSize();
      });
      const double lb = static_cast<double>(n1 + n2) / p;
      table.AddRow({Fmt(n1), Fmt(n2), Fmt(out), Fmt(r.load), Fmt(lb),
                    bench::Ratio(static_cast<double>(r.load), lb)});
    }
    table.Print(std::cout);
    std::cout << std::endl;
  }

  bench::PrintHeader(
      "E6b", "Theorem 3 hard instance",
      "Complete bipartite R1 = dom(A) x dom(B), R2 = dom(B) x dom(C) with\n"
      "the Theorem 3 domain sizes; lower bound\n"
      "Omega(min{sqrt(N1 N2/p), (N1 N2)^{1/3} OUT^{1/3}/p^{2/3}}).\n"
      "A bounded measured/LB ratio across the sweep demonstrates the\n"
      "algorithm is optimal on its own hard instances.");
  {
    TablePrinter table(
        {"N1", "N2", "OUT", "L_measured", "LB", "ratio"});
    const std::int64_t n = 10000;
    for (std::int64_t out : {1024, 16384, 262144, 4194304}) {
      std::int64_t out_measured = 0;
      std::int64_t n1 = 0, n2 = 0;
      bench::RunResult r = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenLowerBoundThm3<S>(c, n, n, out);
        n1 = instance.relations[0].TotalSize();
        n2 = instance.relations[1].TotalSize();
        c.ResetStats();
        auto result = MatMul(c, std::move(instance.relations[0]),
                             std::move(instance.relations[1]));
        out_measured = result.TotalSize();
      });
      const double lb = plan::MatMulLowerBound(n1, n2, out_measured, p);
      table.AddRow({Fmt(n1), Fmt(n2), Fmt(out_measured), Fmt(r.load),
                    Fmt(lb),
                    bench::Ratio(static_cast<double>(r.load), lb)});
    }
    table.Print(std::cout);
    std::cout << std::endl;
  }
  return 0;
}
