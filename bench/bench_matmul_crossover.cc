// E5 — the min{...} crossover inside Theorem 1.
//
// At fixed N and p, the worst-case term sqrt(N1*N2/p) is flat in OUT while
// the output-sensitive term (N1*N2*OUT)^{1/3}/p^{2/3} grows; they cross at
// OUT* = sqrt(N1*N2*p). The sweep runs BOTH §3.1 and §3.2 on every
// instance plus the auto dispatcher, showing that (a) measured loads track
// their own bound curves and (b) the dispatcher picks the winner on each
// side of the crossover.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 16;
  const std::int64_t n = 10000;
  bench::PrintHeader(
      "E5", "Theorem 1 crossover",
      "Fixed N = 10,000, p = 16: predicted crossover at OUT* = sqrt(N^2*p)"
      " = " +
          Fmt(static_cast<std::int64_t>(
              std::sqrt(static_cast<double>(n) * n * p))) +
          ".");

  TablePrinter table({"OUT", "L_worst_case", "L_output_sensitive", "L_auto",
                      "auto_picks", "bound_wc", "bound_os"});
  for (std::int64_t out :
       {256, 1024, 4096, 16384, 65536, 262144, 1048576}) {
    MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(n, out, 4);
    auto run = [&](MatMulStrategy strategy) {
      return bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenMatMulBlocks<S>(c, cfg);
        c.ResetStats();
        MatMulOptions options;
        options.strategy = strategy;
        MatMul(c, std::move(instance.relations[0]),
               std::move(instance.relations[1]), options);
      });
    };
    bench::RunResult wc = run(MatMulStrategy::kWorstCase);
    bench::RunResult os = run(MatMulStrategy::kOutputSensitive);
    bench::RunResult autod = run(MatMulStrategy::kAuto);
    const double bound_wc = std::sqrt(
        static_cast<double>(cfg.n1()) * static_cast<double>(cfg.n2()) / p);
    const double bound_os =
        std::cbrt(static_cast<double>(cfg.n1()) * cfg.n2() * cfg.out()) /
        std::pow(static_cast<double>(p), 2.0 / 3.0);
    table.AddRow({Fmt(cfg.out()), Fmt(wc.load), Fmt(os.load),
                  Fmt(autod.load),
                  bound_wc <= bound_os ? "worst-case" : "output-sensitive",
                  Fmt(bound_wc), Fmt(bound_os)});
  }
  table.Print(std::cout);
  std::cout << std::endl;
  return 0;
}
