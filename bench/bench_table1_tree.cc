// E4 — Table 1, row "Tree".
//
// Distributed Yannakakis (O(N/p + N*OUT/p)) against the §7 algorithm
// (O(N*OUT^{2/3}/p + (N+OUT)/p), Theorem 6) on: the Figure 2 query, the
// Figure 3 general twig in isolation, and the Figure 1 star-like query
// (Lemma 7) — the paper's three non-simple tree shapes.

#include <cstdint>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

void RunSweep(const std::string& title, int p,
              const std::vector<std::function<TreeInstance<S>(mpc::Cluster&)>>&
                  gens) {
  std::cout << title << " (p = " << p << ")\n";
  TablePrinter table({"N_total", "OUT", "L_yannakakis", "L_theorem6",
                      "speedup", "bound_yann", "bound_thm6", "ms_thm6"});
  for (const auto& gen : gens) {
    std::int64_t n_total = 0;
    std::int64_t out_measured = 0;
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = gen(c);
      n_total = instance.TotalInputSize();
      c.ResetStats();
      auto r = YannakakisJoinAggregate(c, std::move(instance));
      out_measured = r.TotalSize();
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = gen(c);
      c.ResetStats();
      TreeQueryAggregate(c, std::move(instance));
    });
    const std::int64_t n_rel =
        n_total / 15;  // rough per-relation size for the bound columns
    table.AddRow(
        {Fmt(n_total), Fmt(out_measured), Fmt(yann.load), Fmt(ours.load),
         bench::Ratio(static_cast<double>(yann.load),
                      static_cast<double>(ours.load)),
         Fmt(plan::YannakakisTreeBound(n_rel, out_measured, p)),
         Fmt(plan::NewTreeBound(n_rel, out_measured, p)),
         Fmt(ours.wall_ms)});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E4", "Table 1 — tree queries",
      "The Figure 1/2/3 queries on random instances of growing size.\n"
      "(Bounds are per-relation-N approximations; shapes, not constants,\n"
      "are the comparison target.)");

  const int p = 32;
  using Gen = std::function<TreeInstance<S>(mpc::Cluster&)>;

  std::vector<Gen> fig2;
  for (std::int64_t tuples : {80, 160, 320}) {
    fig2.push_back([tuples](mpc::Cluster& c) {
      return GenTreeRandom<S>(c, Fig2Query(), tuples, tuples, 3);
    });
  }
  RunSweep("Figure 2 query (15 relations, 6 twigs)", p, fig2);

  // Block-structured Figure 3 twig: within a block, every hub value of
  // B1/B2 connects the same small sets of output values, so the full join
  // is ~(hub width) times larger than OUT — the collapse the paper's
  // aggregation-aware algorithm exploits and Yannakakis cannot.
  auto fig3_blocks = [](mpc::Cluster& c, std::int64_t blocks) {
    JoinTree q({{5, 14}, {14, 6}, {14, 15}, {15, 7}, {15, 16}, {16, 8}},
               {5, 6, 7, 8});
    // Asymmetric sides: the B1-side arms branch heavily (x(b1) = 144
    // >> sqrt(OUT)), the B2 side is thin — the Lemma 4/15 regime where
    // folding and the heavy/light split pay off.
    constexpr std::int64_t kSide = 12;   // B1-arm output values per block
    constexpr std::int64_t kThin = 2;    // B2-arm output values per block
    constexpr std::int64_t kHub = 10;    // B1/B2/C width per block
    Rng rng(17);
    std::vector<Relation<S>> rels;
    auto bipartite = [&](AttrId u, AttrId v, std::int64_t du,
                         std::int64_t dv) {
      Relation<S> rel(Schema{u, v});
      for (std::int64_t blk = 0; blk < blocks; ++blk) {
        for (std::int64_t i = 0; i < du; ++i) {
          for (std::int64_t j = 0; j < dv; ++j) {
            rel.Add(Row{blk * du + i, blk * dv + j},
                    internal_workload::RandomWeight<S>(rng, 10));
          }
        }
      }
      return rel;
    };
    TreeInstance<S> instance{q, {}};
    instance.relations.push_back(
        Distribute(c, bipartite(5, 14, kSide, kHub)));
    instance.relations.push_back(
        Distribute(c, bipartite(14, 6, kHub, kSide)));
    instance.relations.push_back(
        Distribute(c, bipartite(14, 15, kHub, kHub)));
    instance.relations.push_back(
        Distribute(c, bipartite(15, 7, kHub, kThin)));
    instance.relations.push_back(
        Distribute(c, bipartite(15, 16, kHub, kHub)));
    instance.relations.push_back(
        Distribute(c, bipartite(16, 8, kHub, kThin)));
    return instance;
  };
  std::vector<Gen> fig3;
  for (std::int64_t blocks : {10, 20, 40}) {
    fig3.push_back([&fig3_blocks, blocks](mpc::Cluster& c) {
      return fig3_blocks(c, blocks);
    });
  }
  RunSweep("Figure 3 general twig (2 skeleton attributes, block data)", p,
           fig3);

  std::vector<Gen> fig1;
  for (std::int64_t tuples : {100, 200, 400}) {
    fig1.push_back([tuples](mpc::Cluster& c) {
      return GenTreeRandom<S>(c, Fig1StarLikeQuery(), tuples, (tuples * 7) / 10, 7);
    });
  }
  RunSweep("Figure 1 star-like query (Lemma 7)", p, fig1);
  return 0;
}
