// E5 — the price of resilience: checkpoint and recovery overhead.
//
// Three configurations of the same plan::PlanAndRun call, on the matmul
// and line workloads:
//   baseline     resilience off (the fast path: no checkpoints, no
//                checksums, no budget)
//   checkpoint   round-boundary replication every 2 rounds, no faults —
//                the steady-state insurance premium
//   faulted      full deterministic fault schedule (fail-stop crash +
//                straggler + corrupted message) with replay from the
//                checkpoint — what an actual failure costs end to end
//
// recovery_comm isolates the resilience traffic inside total_comm;
// critical_path shows the straggler stretching wall-clock that max_load
// cannot see. The faulted run's outputs are bit-identical to the
// baseline's (tests/fault_tolerance_test.cc asserts this; here we only
// price it).

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/plan/executor.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

struct Workload {
  std::string name;
  std::int64_t n;
  std::function<TreeInstance<S>(mpc::Cluster&)> make;
};

struct Config {
  std::string name;
  plan::ExecutionOptions options;
};

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 16;
  bench::PrintHeader(
      "E5", "fault-tolerant runtime overhead",
      "plan::PlanAndRun with resilience off / checkpointing / a full fault "
      "schedule (crash + straggler + corruption, seed 7).");

  std::vector<Workload> workloads;
  workloads.push_back(
      {"matmul", 20000, [](mpc::Cluster& c) {
         return GenMatMulBlocks<S>(
             c, MatMulBlockConfig::FromTargets(20000, 4096, 8));
       }});
  workloads.push_back({"line", 4 * 6 * 16 * 16, [](mpc::Cluster& c) {
                         LineBlockConfig cfg;
                         cfg.arity = 3;
                         cfg.blocks = 6;
                         cfg.side_end = 16;
                         cfg.side_mid = 16;
                         return GenLineBlocks<S>(c, cfg);
                       }});

  std::vector<Config> configs;
  configs.push_back({"baseline", plan::ExecutionOptions{}});
  {
    plan::ExecutionOptions options;
    options.checkpoint_interval = 2;
    configs.push_back({"checkpoint", options});
  }
  {
    plan::ExecutionOptions options;
    options.faults.enabled = true;
    options.faults.seed = 7;
    options.checkpoint_interval = 2;
    configs.push_back({"faulted", options});
  }

  std::vector<bench::BenchJsonEntry> json_entries;
  TablePrinter table({"workload", "config", "max_load", "rounds",
                      "total_comm", "recovery_comm", "critical_path",
                      "load_vs_base", "comm_vs_base"});
  for (const Workload& w : workloads) {
    bench::RunResult base;
    for (const Config& cfg : configs) {
      std::string attempts;
      const bench::RunResult r =
          bench::Measure(p, 1, [&](mpc::Cluster& c) {
            auto exec = plan::PlanAndRun(c, w.make(c),
                                         plan::PlannerOptions{}, cfg.options);
            attempts = std::to_string(exec.plan.recovery.attempts);
          });
      if (cfg.name == "baseline") base = r;
      table.AddRow({w.name, cfg.name + " (x" + attempts + ")", Fmt(r.load),
                    Fmt(static_cast<std::int64_t>(r.rounds)),
                    Fmt(r.total_comm), Fmt(r.recovery_comm),
                    Fmt(r.critical_path),
                    bench::Ratio(static_cast<double>(r.load),
                                 static_cast<double>(base.load)),
                    bench::Ratio(static_cast<double>(r.total_comm),
                                 static_cast<double>(base.total_comm))});
      bench::BenchJsonEntry entry;
      entry.experiment = "E5";
      entry.name = w.name + "/" + cfg.name + "/p=" + std::to_string(p);
      entry.n = w.n;
      entry.p = p;
      entry.threads = ParallelForThreads();
      entry.result = r;
      json_entries.push_back(entry);
    }
  }
  table.Print(std::cout);
  std::cout << std::endl;

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E5", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E5 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
