// E9 — Figures 2-4: tree preprocessing, twig decomposition, and skeleton
// extraction, exercised on the exact query drawn in Figure 2.
//
// Prints the structural decomposition (twig shapes, matching the figure's
// six twigs), the skeleton of the general twig (Figure 3), and per-twig
// measured loads of the §7 algorithm.

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader("E9", "Figures 2-4 — tree decomposition",
                     "Structural reproduction of the figures plus per-twig "
                     "measured loads.");

  JoinTree q = Fig2Query();
  std::cout << "Figure 2 query: " << q.DebugString() << "\n\n";

  const auto twigs = q.DecomposeIntoTwigs();
  std::cout << "Twig decomposition (" << twigs.size()
            << " twigs; the figure shows 6):\n";
  TablePrinter twig_table({"twig", "edges", "shape", "boundary_attrs"});
  for (size_t i = 0; i < twigs.size(); ++i) {
    JoinTree sub = q.InducedSubquery(twigs[i].edge_indices,
                                     twigs[i].boundary_attrs);
    std::string boundary;
    for (AttrId a : twigs[i].boundary_attrs) {
      if (!boundary.empty()) boundary += ",";
      boundary += std::to_string(a);
    }
    twig_table.AddRow({Fmt(static_cast<std::int64_t>(i + 1)),
                       Fmt(static_cast<std::int64_t>(
                           twigs[i].edge_indices.size())),
                       QueryShapeName(sub.Classify()), boundary});
  }
  twig_table.Print(std::cout);

  // Figure 3: the skeleton of the general twig.
  for (const auto& twig : twigs) {
    JoinTree sub = q.InducedSubquery(twig.edge_indices, twig.boundary_attrs);
    if (sub.Classify() != QueryShape::kTree) continue;
    std::cout << "\nGeneral twig (Figure 3 shape): " << sub.DebugString()
              << "\n";
    const auto info = internal_tree::AnalyzeSkeleton(sub);
    std::cout << "  V* (attrs in >2 relations): ";
    for (AttrId a : info.vstar) std::cout << a << " ";
    std::cout << "\n  V*-leaves and their star-like T_B sizes:\n";
    for (const auto& leaf : info.leaf_tbs) {
      std::cout << "    B = " << leaf.b << ": |E_B| = "
                << leaf.tb_edges.size() << "\n";
    }
    std::cout << "  skeleton edges: " << info.skeleton_edges.size() << "\n";
  }

  // Per-twig loads on a random instance.
  std::cout << "\nPer-twig measured loads (p = 32, 200 tuples/relation):\n";
  TablePrinter load_table({"twig", "shape", "load", "rounds", "out"});
  for (size_t i = 0; i < twigs.size(); ++i) {
    std::int64_t out = 0;
    int rounds = 0;
    std::string shape;
    bench::RunResult r = bench::Measure(32, 1, [&](mpc::Cluster& c) {
      auto instance = GenTreeRandom<S>(c, Fig2Query(), 200, 100, 7);
      JoinTree sub = q.InducedSubquery(twigs[i].edge_indices,
                                       twigs[i].boundary_attrs);
      shape = QueryShapeName(sub.Classify());
      TreeInstance<S> sub_instance{sub, {}};
      for (int e : twigs[i].edge_indices) {
        sub_instance.relations.push_back(
            std::move(instance.relations[static_cast<size_t>(e)]));
      }
      c.ResetStats();
      auto result = internal_tree::ComputeTwig(c, std::move(sub_instance));
      out = result.TotalSize();
      rounds = c.stats().rounds;
    });
    load_table.AddRow({Fmt(static_cast<std::int64_t>(i + 1)), shape,
                       Fmt(r.load), Fmt(static_cast<std::int64_t>(rounds)),
                       Fmt(out)});
  }
  load_table.Print(std::cout);
  std::cout << std::endl;
  return 0;
}
