// E11 — scalability in p.
//
// All Table 1 bounds are decreasing functions of p (N/p, sqrt(../p),
// ../p^{2/3}); a fixed instance swept over p = 4..1024 must show the
// measured loads decaying at the bound's rate. Reported: matmul
// (Theorem 1 vs Yannakakis) and a line query (Theorem 4 vs Yannakakis).

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader("E11", "load vs. p",
                     "Fixed instances; loads must decay with p at the "
                     "bound's rate.");

  {
    std::cout << "Matrix multiplication, N ~ 16,000, OUT ~ 16,384:\n";
    MatMulBlockConfig cfg = MatMulBlockConfig::FromTargets(16000, 16384, 8);
    TablePrinter table({"p", "L_yannakakis", "L_theorem1", "speedup",
                        "bound_thm1"});
    for (int p : {4, 16, 64, 256, 1024}) {
      bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenMatMulBlocks<S>(c, cfg);
        c.ResetStats();
        YannakakisJoinAggregate(c, std::move(instance));
      });
      bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenMatMulBlocks<S>(c, cfg);
        c.ResetStats();
        MatMul(c, std::move(instance.relations[0]),
               std::move(instance.relations[1]));
      });
      table.AddRow({Fmt(static_cast<std::int64_t>(p)), Fmt(yann.load),
                    Fmt(ours.load),
                    bench::Ratio(static_cast<double>(yann.load),
                                 static_cast<double>(ours.load)),
                    Fmt(plan::NewMatMulBound(cfg.n1(), cfg.n2(), cfg.out(),
                                              p))});
    }
    table.Print(std::cout);
    std::cout << std::endl;
  }

  {
    std::cout << "Line query (n = 3, fat middle):\n";
    LineBlockConfig cfg;
    cfg.arity = 3;
    cfg.blocks = 8;
    cfg.side_end = 6;
    cfg.side_mid = 40;
    TablePrinter table({"p", "L_yannakakis", "L_theorem4", "speedup"});
    for (int p : {4, 16, 64, 256}) {
      bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenLineBlocks<S>(c, cfg);
        c.ResetStats();
        YannakakisJoinAggregate(c, std::move(instance));
      });
      bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
        auto instance = GenLineBlocks<S>(c, cfg);
        c.ResetStats();
        LineQueryAggregate(c, std::move(instance));
      });
      table.AddRow({Fmt(static_cast<std::int64_t>(p)), Fmt(yann.load),
                    Fmt(ours.load),
                    bench::Ratio(static_cast<double>(yann.load),
                                 static_cast<double>(ours.load))});
    }
    table.Print(std::cout);
    std::cout << std::endl;
  }
  return 0;
}
