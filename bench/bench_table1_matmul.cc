// E1 — Table 1, row "Matrix Multiplication".
//
// Regenerates the paper's headline comparison: the distributed Yannakakis
// baseline (load O(N/p + N*sqrt(OUT)/p)) against the Theorem 1 algorithm
// (load O(N/p + min{sqrt(N1 N2/p), (N1 N2)^{1/3} OUT^{1/3}/p^{2/3}})),
// on block-structured sparse matrices sweeping OUT at fixed N, then
// sweeping N at fixed OUT. The measured loads should track the bound
// expressions and the paper's winner (the new algorithm) should win by a
// growing factor as OUT grows.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/plan/executor.h"
#include "parjoin/algorithms/hypercube.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

void RunSweep(const std::string& title, int p,
              const std::vector<MatMulBlockConfig>& configs,
              const std::string& sweep_tag,
              std::vector<bench::BenchJsonEntry>* json_entries) {
  std::cout << title << " (p = " << p << ")\n";
  TablePrinter table({"N1", "N2", "OUT", "L_yannakakis", "L_hypercube",
                      "L_theorem1", "speedup", "bound_yann", "bound_thm1",
                      "rounds_thm1", "ms_thm1"});
  for (const auto& cfg : configs) {
    std::int64_t out_measured = 0;
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenMatMulBlocks<S>(c, cfg);
      c.ResetStats();
      auto r = YannakakisJoinAggregate(c, std::move(instance));
      out_measured = r.TotalSize();
    });
    bench::RunResult hc = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenMatMulBlocks<S>(c, cfg);
      c.ResetStats();
      HyperCubeJoinAggregate(c, std::move(instance));
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenMatMulBlocks<S>(c, cfg);
      c.ResetStats();
      MatMul(c, std::move(instance.relations[0]),
             std::move(instance.relations[1]));
    });
    table.AddRow({Fmt(cfg.n1()), Fmt(cfg.n2()), Fmt(out_measured),
                  Fmt(yann.load), Fmt(hc.load), Fmt(ours.load),
                  bench::Ratio(static_cast<double>(yann.load),
                               static_cast<double>(ours.load)),
                  Fmt(plan::YannakakisMatMulBound(cfg.n1() + cfg.n2(),
                                                   out_measured, p)),
                  Fmt(plan::NewMatMulBound(cfg.n1(), cfg.n2(), out_measured,
                                            p)),
                  Fmt(static_cast<std::int64_t>(ours.rounds)),
                  Fmt(ours.wall_ms)});
    const std::pair<const char*, const bench::RunResult*> algos[] = {
        {"yannakakis", &yann}, {"hypercube", &hc}, {"thm1", &ours}};
    for (const auto& [algo, run] : algos) {
      bench::BenchJsonEntry entry;
      entry.experiment = "E1";
      entry.name = sweep_tag + "/N1=" + std::to_string(cfg.n1()) +
                   "/N2=" + std::to_string(cfg.n2()) +
                   "/OUT=" + std::to_string(out_measured) + "/" + algo;
      entry.n = cfg.n1() + cfg.n2();
      entry.p = p;
      entry.threads = ParallelForThreads();
      entry.result = *run;
      json_entries->push_back(std::move(entry));
    }
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

// E4: the same matmul sweeps routed through the cost-based planner
// (plan::PlanAndRun) instead of calling a fixed algorithm — the measured
// load of the planner's pick, with the shared cost model's prediction
// encoded in the entry name. Tracks whether planning overhead + choice
// quality hold up as the tree grows.
void RunPlannerSweep(const std::string& title, int p,
                     const std::vector<MatMulBlockConfig>& configs,
                     const std::string& sweep_tag,
                     std::vector<bench::BenchJsonEntry>* json_entries) {
  std::cout << title << " (planner-dispatched, p = " << p << ")\n";
  TablePrinter table({"N1", "N2", "OUT", "chosen", "L_predicted",
                      "L_measured", "L_planning", "rounds", "ms"});
  for (const auto& cfg : configs) {
    plan::PhysicalPlan chosen_plan;
    bench::RunResult run = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenMatMulBlocks<S>(c, cfg);
      c.ResetStats();
      auto exec = plan::PlanAndRun(c, std::move(instance));
      chosen_plan = std::move(exec.plan);
    });
    // Measure() reports the ledger across planning + execution; the plan
    // splits the two phases.
    run.load = chosen_plan.execution_stats.max_load;
    run.rounds = chosen_plan.execution_stats.rounds;
    run.total_comm = chosen_plan.execution_stats.total_comm;
    const std::int64_t predicted =
        static_cast<std::int64_t>(chosen_plan.predicted_load);
    table.AddRow({Fmt(cfg.n1()), Fmt(cfg.n2()), Fmt(chosen_plan.out_actual),
                  plan::AlgorithmName(chosen_plan.chosen), Fmt(predicted),
                  Fmt(chosen_plan.measured_load),
                  Fmt(chosen_plan.planning_stats.max_load),
                  Fmt(static_cast<std::int64_t>(run.rounds)),
                  Fmt(run.wall_ms)});
    bench::BenchJsonEntry entry;
    entry.experiment = "E4";
    entry.name = sweep_tag + "/N1=" + std::to_string(cfg.n1()) +
                 "/N2=" + std::to_string(cfg.n2()) +
                 "/OUT=" + std::to_string(chosen_plan.out_actual) +
                 "/chosen=" + plan::AlgorithmName(chosen_plan.chosen) +
                 "/pred=" + std::to_string(predicted);
    entry.n = cfg.n1() + cfg.n2();
    entry.p = p;
    entry.threads = ParallelForThreads();
    entry.result = run;
    json_entries->push_back(std::move(entry));
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E1", "Table 1 — matrix multiplication",
      "Measured load (max tuples received by any server in any round) of\n"
      "distributed Yannakakis vs. the Theorem 1 algorithm; bound columns\n"
      "evaluate the Table 1 expressions with constant 1.");

  const int p = 64;
  std::vector<bench::BenchJsonEntry> json_entries;
  std::vector<MatMulBlockConfig> out_sweep;
  for (std::int64_t out : {512, 2048, 8192, 32768, 131072}) {
    out_sweep.push_back(MatMulBlockConfig::FromTargets(20000, out, 8));
  }
  RunSweep("Sweep OUT at N ~ 20,000", p, out_sweep, "out-sweep",
           &json_entries);

  std::vector<MatMulBlockConfig> n_sweep;
  for (std::int64_t n : {4000, 8000, 16000, 32000}) {
    n_sweep.push_back(MatMulBlockConfig::FromTargets(n, 4096, 8));
  }
  RunSweep("Sweep N at OUT ~ 4,096", p, n_sweep, "n-sweep", &json_entries);

  std::vector<MatMulBlockConfig> unbalanced;
  {
    // N1 != N2: the general Theorem 1 bound with unequal sizes.
    MatMulBlockConfig cfg;
    cfg.blocks = 8;
    cfg.side_a = 4;
    cfg.side_b = 40;
    cfg.side_c = 16;
    unbalanced.push_back(cfg);
    cfg.side_a = 2;
    cfg.side_b = 100;
    cfg.side_c = 25;
    unbalanced.push_back(cfg);
  }
  RunSweep("Unequal N1/N2", p, unbalanced, "unbalanced", &json_entries);

  std::vector<bench::BenchJsonEntry> planner_entries;
  RunPlannerSweep("Sweep OUT at N ~ 20,000", p, out_sweep, "out-sweep",
                  &planner_entries);
  RunPlannerSweep("Sweep N at OUT ~ 4,096", p, n_sweep, "n-sweep",
                  &planner_entries);
  RunPlannerSweep("Unequal N1/N2", p, unbalanced, "unbalanced",
                  &planner_entries);

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E1", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E1 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  if (bench::UpdateBenchJson(json_path, "E4", planner_entries, &error)) {
    std::cout << "wrote " << planner_entries.size() << " E4 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
