// E8 — Figure 1: the five-arm star-like query and its §6 reduction.
//
// Exercises exactly the query drawn in Figure 1 (arms of lengths
// 2,3,1,2,2 around B) and reports, per instance size: the number of
// non-empty (permutation x small/large) classes, the measured load of the
// §6 algorithm vs. the Yannakakis baseline, and the Lemma 7 bound.

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/algorithms/starlike_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  const int p = 32;
  bench::PrintHeader(
      "E8", "Figure 1 — star-like query reduction (§6)",
      "Query: B joins arms A1-C11-B, A2-C21-C22-B, A3-B, A4-C41-B,\n"
      "A5-C51-B; outputs {A1..A5}. The §6 algorithm splits dom(B) into\n"
      "(permutation, small/large) classes, reduces small classes to line\n"
      "queries and large classes to matrix multiplications.");

  JoinTree q = Fig1StarLikeQuery();
  std::cout << "Query: " << q.DebugString() << "\n\n";

  TablePrinter table({"tuples/rel", "N_total", "OUT", "L_yannakakis",
                      "L_lemma7", "speedup", "bound_lemma7", "ms"});
  for (std::int64_t tuples : {100, 200, 400, 800}) {
    const std::int64_t dom = std::max<std::int64_t>(8, (tuples * 7) / 10);
    std::int64_t n_total = 0, out_measured = 0;
    bench::RunResult yann = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenTreeRandom<S>(c, Fig1StarLikeQuery(), tuples, dom, 3);
      n_total = instance.TotalInputSize();
      c.ResetStats();
      auto r = YannakakisJoinAggregate(c, std::move(instance));
      out_measured = r.TotalSize();
    });
    bench::RunResult ours = bench::Measure(p, 1, [&](mpc::Cluster& c) {
      auto instance = GenTreeRandom<S>(c, Fig1StarLikeQuery(), tuples, dom, 3);
      c.ResetStats();
      StarLikeAggregate(c, std::move(instance));
    });
    table.AddRow(
        {Fmt(tuples), Fmt(n_total), Fmt(out_measured), Fmt(yann.load),
         Fmt(ours.load),
         bench::Ratio(static_cast<double>(yann.load),
                      static_cast<double>(ours.load)),
         Fmt(plan::NewLineStarBound(tuples, out_measured, p)),
         Fmt(ours.wall_ms)});
  }
  table.Print(std::cout);
  std::cout << std::endl;
  return 0;
}
