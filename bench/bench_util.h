// Shared helpers for the paper-table benchmark binaries: run an algorithm
// on a fresh cluster, collect (load, rounds, total communication, wall
// time), format report rows, and persist machine-readable results to the
// BENCH_parjoin.json perf trajectory.

#ifndef PARJOIN_BENCH_BENCH_UTIL_H_
#define PARJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "parjoin/common/stopwatch.h"
#include "parjoin/mpc/cluster.h"

namespace parjoin {
namespace bench {

struct RunResult {
  std::int64_t load = 0;           // stats().max_load
  int rounds = 0;                  // stats().rounds
  std::int64_t total_comm = 0;     // stats().total_comm
  std::int64_t critical_path = 0;  // stats().critical_path
  std::int64_t recovery_comm = 0;  // stats().recovery_comm
  double wall_ms = 0;
};

// Runs `body` against a fresh cluster of p servers and reports its costs.
RunResult Measure(int p, std::uint64_t seed,
                  const std::function<void(mpc::Cluster&)>& body);

// "1.23x" style ratio formatting (guards against division by zero).
std::string Ratio(double numerator, double denominator);

// Prints the standard bench banner (experiment id, paper artifact, note).
void PrintHeader(const std::string& experiment_id,
                 const std::string& paper_artifact, const std::string& note);

// --- Machine-readable trajectory (BENCH_parjoin.json) -----------------------
//
// Each bench binary appends its rows to a shared JSON file so the perf
// trajectory across PRs has data points. One entry = one measured
// configuration. `name` must be unique within the experiment and must not
// contain '"' (no escaping is performed).

// Serving-runtime metrics (E7): emitted into the entry only when
// `present` — entries from non-serving benches keep the original column
// set, and the schema checker treats these as optional fields.
struct ServingMetrics {
  bool present = false;
  double qps = 0;              // sustained queries per second
  double p50_ms = 0;           // median query latency
  double p99_ms = 0;           // tail query latency
  double cache_hit_rate = 0;   // plan-cache hits / lookups, in [0, 1]
  double cold_plan_ms = 0;     // mean planning time on cache misses
  double warm_plan_ms = 0;     // mean plan-retrieval time on cache hits
};

// Planner-calibration metrics (E8): emitted into the entry only when
// `present`. The three algorithm names must not contain '"' (they come
// from AlgorithmName; no escaping is performed).
struct CalibrationMetrics {
  bool present = false;
  std::string chosen_unit;        // planner's pick with constant-1 bounds
  std::string chosen_calibrated;  // pick with profile-fitted factors
  std::string measured_best;      // ground truth: argmin measured load
  int corrected = 0;   // 1 iff calibration fixed a wrong unit-constant pick
  double calib_factor = 0;  // fitted factor behind the calibrated pick
};

// Fine-grained-recovery metrics (E9): emitted into the entry only when
// `present`. Counts come from the execution phase's Cluster::Stats /
// RecoveryReport after a faulted run.
struct RecoveryMetrics {
  bool present = false;
  int resumes = 0;         // replays that fast-forwarded from a checkpoint
  int resumed_rounds = 0;  // rounds those resumes elided
  int rebalances = 0;      // charged straggler re-balance rounds
  std::int64_t rebalance_comm = 0;  // tuples those rounds shipped
  int replans = 0;         // budget-abort re-plans
};

struct BenchJsonEntry {
  std::string experiment;  // e.g. "E1"
  std::string name;        // e.g. "sort/n=1048576/p=64/threads=4"
  std::int64_t n = 0;      // input size (0 if not meaningful)
  int p = 0;               // servers
  int threads = 0;         // ParallelForThreads() at measurement time
  RunResult result;
  ServingMetrics serving;
  CalibrationMetrics calibration;
  RecoveryMetrics recovery;
};

// Path of the trajectory file: $PARJOIN_BENCH_JSON if set, else
// "BENCH_parjoin.json" in the current directory.
std::string BenchJsonPath();

// Rewrites the trajectory file at `path`, replacing every existing entry
// of `experiment` with `entries` and preserving entries of other
// experiments. Returns false (and sets *error) on I/O failure. The file
// format is one entry object per line inside a top-level "entries" array;
// UpdateBenchJson only reparses lines it wrote itself.
bool UpdateBenchJson(const std::string& path, const std::string& experiment,
                     const std::vector<BenchJsonEntry>& entries,
                     std::string* error);

}  // namespace bench
}  // namespace parjoin

#endif  // PARJOIN_BENCH_BENCH_UTIL_H_
