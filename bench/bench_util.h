// Shared helpers for the paper-table benchmark binaries: run an algorithm
// on a fresh cluster, collect (load, rounds, total communication, wall
// time), and format report rows.

#ifndef PARJOIN_BENCH_BENCH_UTIL_H_
#define PARJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "parjoin/common/stopwatch.h"
#include "parjoin/mpc/cluster.h"

namespace parjoin {
namespace bench {

struct RunResult {
  std::int64_t load = 0;       // stats().max_load
  int rounds = 0;              // stats().rounds
  std::int64_t total_comm = 0; // stats().total_comm
  double wall_ms = 0;
};

// Runs `body` against a fresh cluster of p servers and reports its costs.
RunResult Measure(int p, std::uint64_t seed,
                  const std::function<void(mpc::Cluster&)>& body);

// "1.23x" style ratio formatting (guards against division by zero).
std::string Ratio(double numerator, double denominator);

// Prints the standard bench banner (experiment id, paper artifact, note).
void PrintHeader(const std::string& experiment_id,
                 const std::string& paper_artifact, const std::string& note);

}  // namespace bench
}  // namespace parjoin

#endif  // PARJOIN_BENCH_BENCH_UTIL_H_
