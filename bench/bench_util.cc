#include "bench_util.h"

#include <cstdio>
#include <iostream>

namespace parjoin {
namespace bench {

RunResult Measure(int p, std::uint64_t seed,
                  const std::function<void(mpc::Cluster&)>& body) {
  mpc::Cluster cluster(p, seed);
  Stopwatch watch;
  body(cluster);
  RunResult result;
  result.wall_ms = watch.ElapsedMillis();
  result.load = cluster.stats().max_load;
  result.rounds = cluster.stats().rounds;
  result.total_comm = cluster.stats().total_comm;
  return result;
}

std::string Ratio(double numerator, double denominator) {
  if (denominator <= 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", numerator / denominator);
  return buf;
}

void PrintHeader(const std::string& experiment_id,
                 const std::string& paper_artifact, const std::string& note) {
  std::cout << "\n=== " << experiment_id << " — " << paper_artifact
            << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace parjoin
