#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace parjoin {
namespace bench {

RunResult Measure(int p, std::uint64_t seed,
                  const std::function<void(mpc::Cluster&)>& body) {
  mpc::Cluster cluster(p, seed);
  Stopwatch watch;
  body(cluster);
  RunResult result;
  result.wall_ms = watch.ElapsedMillis();
  result.load = cluster.stats().max_load;
  result.rounds = cluster.stats().rounds;
  result.total_comm = cluster.stats().total_comm;
  result.critical_path = cluster.stats().critical_path;
  result.recovery_comm = cluster.stats().recovery_comm;
  return result;
}

std::string Ratio(double numerator, double denominator) {
  if (denominator <= 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", numerator / denominator);
  return buf;
}

void PrintHeader(const std::string& experiment_id,
                 const std::string& paper_artifact, const std::string& note) {
  std::cout << "\n=== " << experiment_id << " — " << paper_artifact
            << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << std::endl;
}

namespace {

std::string FormatEntry(const BenchJsonEntry& e) {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "    {\"experiment\": \"%s\", \"name\": \"%s\", "
                "\"n\": %lld, \"p\": %d, \"threads\": %d, "
                "\"wall_ms\": %.3f, \"max_load\": %lld, \"rounds\": %d, "
                "\"total_comm\": %lld, \"critical_path\": %lld, "
                "\"recovery_comm\": %lld",
                e.experiment.c_str(), e.name.c_str(),
                static_cast<long long>(e.n), e.p, e.threads,
                e.result.wall_ms, static_cast<long long>(e.result.load),
                e.result.rounds,
                static_cast<long long>(e.result.total_comm),
                static_cast<long long>(e.result.critical_path),
                static_cast<long long>(e.result.recovery_comm));
  std::string line = buf;
  if (e.serving.present) {
    std::snprintf(buf, sizeof(buf),
                  ", \"qps\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                  "\"cache_hit_rate\": %.4f, \"cold_plan_ms\": %.3f, "
                  "\"warm_plan_ms\": %.3f",
                  e.serving.qps, e.serving.p50_ms, e.serving.p99_ms,
                  e.serving.cache_hit_rate, e.serving.cold_plan_ms,
                  e.serving.warm_plan_ms);
    line += buf;
  }
  if (e.calibration.present) {
    std::snprintf(buf, sizeof(buf),
                  ", \"chosen_unit\": \"%s\", "
                  "\"chosen_calibrated\": \"%s\", "
                  "\"measured_best\": \"%s\", \"corrected\": %d, "
                  "\"calib_factor\": %.4f",
                  e.calibration.chosen_unit.c_str(),
                  e.calibration.chosen_calibrated.c_str(),
                  e.calibration.measured_best.c_str(),
                  e.calibration.corrected, e.calibration.calib_factor);
    line += buf;
  }
  if (e.recovery.present) {
    std::snprintf(buf, sizeof(buf),
                  ", \"resumes\": %d, \"resumed_rounds\": %d, "
                  "\"rebalances\": %d, \"rebalance_comm\": %lld, "
                  "\"replans\": %d",
                  e.recovery.resumes, e.recovery.resumed_rounds,
                  e.recovery.rebalances,
                  static_cast<long long>(e.recovery.rebalance_comm),
                  e.recovery.replans);
    line += buf;
  }
  line += "}";
  return line;
}

// Extracts the experiment id from a line previously written by
// FormatEntry; empty string if the line is not an entry line.
std::string EntryExperiment(const std::string& line) {
  const std::string marker = "{\"experiment\": \"";
  const std::size_t start = line.find(marker);
  if (start == std::string::npos) return "";
  const std::size_t id_begin = start + marker.size();
  const std::size_t id_end = line.find('"', id_begin);
  if (id_end == std::string::npos) return "";
  return line.substr(id_begin, id_end - id_begin);
}

}  // namespace

std::string BenchJsonPath() {
  if (const char* env = std::getenv("PARJOIN_BENCH_JSON")) return env;
  return "BENCH_parjoin.json";
}

bool UpdateBenchJson(const std::string& path, const std::string& experiment,
                     const std::vector<BenchJsonEntry>& entries,
                     std::string* error) {
  // Keep entry lines of other experiments from a previous run.
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      // Strip a trailing comma so kept lines re-join cleanly below.
      if (!line.empty() && line.back() == ',') line.pop_back();
      const std::string id = EntryExperiment(line);
      if (!id.empty() && id != experiment) kept.push_back(line);
    }
  }
  for (const auto& e : entries) kept.push_back(FormatEntry(e));

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << "{\n  \"schema\": \"parjoin-bench-v1\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    out << kept[i] << (i + 1 < kept.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace bench
}  // namespace parjoin
