// E10 — §2.1 MPC primitives: the multi-thread scaling sweep (wall time at
// fixed N, p across PARJOIN_THREADS settings, outputs and loads verified
// bit-identical), the linear-load property (printed table), and micro
// throughput (google-benchmark). Every primitive must stay at O(N/p)
// load; the table reports measured load / (N/p) ratios. Sweep results are
// appended to the BENCH_parjoin.json trajectory.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/random.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/query/dangling.h"
#include "parjoin/relation/ops.h"
#include "parjoin/sketch/kmv.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

std::vector<std::pair<std::int64_t, std::int64_t>> MakePairs(
    std::int64_t n, std::int64_t keys, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  items.reserve(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    items.emplace_back(rng.Uniform(0, keys - 1), rng.Uniform(1, 9));
  }
  return items;
}

void BM_Sort(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n, 1);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto sorted = mpc::Sort(cluster, dist, [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_ReduceByKey(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n / 16, 2);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto reduced = mpc::ReduceByKey(
        cluster, dist, [](const auto& kv) { return kv.first; },
        [](auto* acc, const auto& kv) { acc->second += kv.second; });
    benchmark::DoNotOptimize(reduced);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_Exchange(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n, 3);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto parted = mpc::Exchange(cluster, dist, 64, [](const auto& kv) {
      return static_cast<int>(Mix64(static_cast<std::uint64_t>(kv.first)) %
                              64);
    });
    benchmark::DoNotOptimize(parted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Exchange)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_KmvInsert(benchmark::State& state) {
  SeededHash hash(7);
  std::int64_t i = 0;
  Kmv kmv;
  for (auto _ : state) {
    kmv.AddHash(hash(static_cast<std::uint64_t>(i++)));
    benchmark::DoNotOptimize(kmv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvInsert);

// One thread-sweep measurement: a primitive run under a forced thread
// count. The output parts and the cluster ledger are captured so every
// setting can be verified bit-identical to the sequential run.
struct SweepOutcome {
  bench::RunResult result;
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> parts;
};

void RunThreadSweep(std::vector<bench::BenchJsonEntry>* json_entries) {
  const std::int64_t n = 1 << 20;
  const int p = 64;
  std::cout << "Thread scaling (N = 2^20, p = " << p
            << "; outputs and Stats verified identical across settings):\n";
  auto items = MakePairs(n, n, 1);
  const auto input = mpc::ScatterEvenly(std::move(items), p);

  using Primitive =
      std::function<SweepOutcome(mpc::Cluster&,
                                 const mpc::Dist<std::pair<std::int64_t,
                                                           std::int64_t>>&)>;
  const std::vector<std::pair<std::string, Primitive>> primitives = {
      {"sort",
       [](mpc::Cluster& c, const auto& in) {
         auto out = mpc::Sort(c, in, [](const auto& a, const auto& b) {
           return a.first < b.first;
         });
         return SweepOutcome{{}, std::move(out.parts())};
       }},
      {"exchange",
       [](mpc::Cluster& c, const auto& in) {
         auto out = mpc::Exchange(c, in, 64, [](const auto& kv) {
           return static_cast<int>(
               Mix64(static_cast<std::uint64_t>(kv.first)) % 64);
         });
         return SweepOutcome{{}, std::move(out.parts())};
       }},
      {"reduce-by-key",
       [](mpc::Cluster& c, const auto& in) {
         auto out = mpc::ReduceByKey(
             c, in, [](const auto& kv) { return kv.first % 4096; },
             [](auto* acc, const auto& kv) { acc->second += kv.second; });
         return SweepOutcome{{}, std::move(out.parts())};
       }},
  };

  TablePrinter table({"primitive", "threads", "wall_ms", "speedup",
                      "max_load", "rounds"});
  for (const auto& [name, primitive] : primitives) {
    SweepOutcome sequential;
    for (int threads : {1, 2, 4, 8}) {
      SetParallelForThreads(threads);
      mpc::Cluster c(p);
      Stopwatch watch;
      SweepOutcome outcome = primitive(c, input);
      outcome.result.wall_ms = watch.ElapsedMillis();
      outcome.result.load = c.stats().max_load;
      outcome.result.rounds = c.stats().rounds;
      outcome.result.total_comm = c.stats().total_comm;
      if (threads == 1) {
        sequential = outcome;
      } else {
        CHECK(outcome.parts == sequential.parts)
            << name << ": output differs at threads=" << threads;
        CHECK_EQ(outcome.result.load, sequential.result.load);
        CHECK_EQ(outcome.result.rounds, sequential.result.rounds);
        CHECK_EQ(outcome.result.total_comm, sequential.result.total_comm);
      }
      table.AddRow({name, Fmt(static_cast<std::int64_t>(threads)),
                    Fmt(outcome.result.wall_ms),
                    bench::Ratio(sequential.result.wall_ms,
                                 outcome.result.wall_ms),
                    Fmt(outcome.result.load),
                    Fmt(static_cast<std::int64_t>(outcome.result.rounds))});
      bench::BenchJsonEntry entry;
      entry.experiment = "E10";
      entry.name = name + "/n=1048576/p=64/threads=" + std::to_string(threads);
      entry.n = n;
      entry.p = p;
      entry.threads = threads;
      entry.result = outcome.result;
      json_entries->push_back(std::move(entry));
    }
  }
  SetParallelForThreads(0);
  table.Print(std::cout);
  std::cout << std::endl;
}

void PrintLinearLoadTable() {
  using parjoin::bench::Ratio;
  std::cout << "\nLinear-load property (N = 2^18, p = 64; ratio = measured "
               "load / (N/p)):\n";
  TablePrinter table({"primitive", "load", "N/p", "ratio", "rounds"});
  const std::int64_t n = 1 << 18;
  const int p = 64;
  const std::int64_t per = n / p;

  {
    mpc::Cluster c(p);
    auto dist = mpc::ScatterEvenly(MakePairs(n, n, 1), p);
    mpc::Sort(c, dist,
              [](const auto& a, const auto& b) { return a.first < b.first; });
    table.AddRow({"sort", Fmt(c.stats().max_load), Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    auto dist = mpc::ScatterEvenly(MakePairs(n, 64, 2), p);  // heavy skew
    mpc::ReduceByKey(
        c, dist, [](const auto& kv) { return kv.first; },
        [](auto* acc, const auto& kv) { acc->second += kv.second; });
    table.AddRow({"reduce-by-key (64 keys)", Fmt(c.stats().max_load),
                  Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    std::vector<mpc::PackedItem> items;
    Rng rng(5);
    for (std::int64_t i = 0; i < n / 16; ++i) {
      items.push_back({i, rng.UniformDouble() * 0.9 + 0.05, -1});
    }
    mpc::ParallelPacking(c, std::move(items));
    table.AddRow({"parallel-packing", Fmt(c.stats().max_load),
                  Fmt(n / 16 / p),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(n / 16 / p)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    MatMulGenConfig cfg;
    cfg.n1 = cfg.n2 = n / 2;
    cfg.dom_a = n / 8;
    cfg.dom_b = n / 32;
    cfg.dom_c = n / 8;
    auto instance = GenMatMulRandom<CountingSemiring>(c, cfg);
    c.ResetStats();
    RemoveDangling(c, &instance);
    table.AddRow({"remove-dangling (matmul)", Fmt(c.stats().max_load),
                  Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

// --- E6: final-merge strategy & fix-round ablation ---------------------------

using PairRuns =
    std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>>;

// (a) The same presorted runs merged by the old pairwise ladder vs the
// splitter-partitioned multiway merge, at forced thread counts. The
// outputs are verified identical every time — the strategies may differ
// only in wall time (at threads=1 the splitter path falls back to the
// ladder, so there is nothing to regress).
void RunMergeAblation(std::vector<bench::BenchJsonEntry>* json_entries) {
  const std::int64_t n = 1 << 20;
  const int run_count = 64;
  std::cout << "Final-merge strategies (N = 2^20, " << run_count
            << " presorted runs; outputs verified identical):\n";
  const auto by_key = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  auto dist = mpc::ScatterEvenly(MakePairs(n, n / 4, 11), run_count);
  for (auto& part : dist.parts()) {
    std::stable_sort(part.begin(), part.end(), by_key);
  }
  const PairRuns& runs = dist.parts();

  TablePrinter table({"threads", "pairwise_ms", "splitter_ms", "speedup"});
  for (int threads : {1, 2, 4, 8}) {
    SetParallelForThreads(threads);
    PairRuns copy = runs;
    Stopwatch pairwise_watch;
    const auto pairwise = mpc::internal_primitives::MergeSortedRunsPairwise(
        std::move(copy), by_key);
    const double pairwise_ms = pairwise_watch.ElapsedMillis();
    copy = runs;
    Stopwatch splitter_watch;
    const auto splitter =
        mpc::internal_primitives::MergeSortedRuns(std::move(copy), by_key);
    const double splitter_ms = splitter_watch.ElapsedMillis();
    CHECK(pairwise == splitter)
        << "merge strategies disagree at threads=" << threads;
    table.AddRow({Fmt(static_cast<std::int64_t>(threads)), Fmt(pairwise_ms),
                  Fmt(splitter_ms),
                  bench::Ratio(pairwise_ms, splitter_ms)});
    for (const auto& [strategy, wall_ms] :
         {std::pair<std::string, double>{"pairwise", pairwise_ms},
          std::pair<std::string, double>{"splitter", splitter_ms}}) {
      bench::BenchJsonEntry entry;
      entry.experiment = "E6";
      entry.name = "merge/" + strategy +
                   "/threads=" + std::to_string(threads);
      entry.n = n;
      entry.p = run_count;
      entry.threads = threads;
      entry.result.wall_ms = wall_ms;
      json_entries->push_back(std::move(entry));
    }
  }
  SetParallelForThreads(0);
  table.Print(std::cout);
  std::cout << std::endl;
}

// (b) Directed fix-round scaling. Every source part holds the same 16
// keys, so pre-aggregation keeps them all, each key's run spans ~p/16
// sorted parts, and after the fix almost every part between a run's home
// and its end is empty. The old per-item backward walk re-scanned those
// parts for every shipped item — O(N·p) on this shape — while the
// boundary-summary fix round is O(N + p): wall time per item must stay
// flat as p grows.
void RunFixRoundSweep(std::vector<bench::BenchJsonEntry>* json_entries) {
  std::cout << "ReduceByKey on replicated-key shapes (16 shared keys, 1 "
               "item/key/part, threads=1;\nus/item must stay flat in p):\n";
  SetParallelForThreads(1);  // isolate the algorithmic effect
  TablePrinter table({"p", "n", "reps", "wall_ms", "us_per_item"});
  for (int p : {64, 128, 256, 512}) {
    const std::int64_t keys = 16;
    const std::int64_t n = keys * p;
    const int reps = 50;
    mpc::Dist<std::pair<std::int64_t, std::int64_t>> input(p);
    for (int s = 0; s < p; ++s) {
      for (std::int64_t k = 0; k < keys; ++k) {
        input.part(s).emplace_back(k, s);
      }
    }
    bench::RunResult result;
    Stopwatch watch;
    for (int rep = 0; rep < reps; ++rep) {
      mpc::Cluster c(p);
      auto out = mpc::ReduceByKey(
          c, input, [](const auto& kv) { return kv.first; },
          [](auto* acc, const auto& kv) { acc->second += kv.second; });
      CHECK_EQ(static_cast<std::int64_t>(out.TotalSize()), keys);
      result.load = c.stats().max_load;
      result.rounds = c.stats().rounds;
      result.total_comm = c.stats().total_comm;
      result.critical_path = c.stats().critical_path;
    }
    result.wall_ms = watch.ElapsedMillis();
    const double us_per_item =
        result.wall_ms * 1000.0 / static_cast<double>(n * reps);
    table.AddRow({Fmt(static_cast<std::int64_t>(p)), Fmt(n),
                  Fmt(static_cast<std::int64_t>(reps)), Fmt(result.wall_ms),
                  Fmt(us_per_item)});
    bench::BenchJsonEntry entry;
    entry.experiment = "E6";
    entry.name = "fixround/reduce/p=" + std::to_string(p);
    entry.n = n;
    entry.p = p;
    entry.threads = 1;
    entry.result = result;
    json_entries->push_back(std::move(entry));
  }
  SetParallelForThreads(0);
  table.Print(std::cout);
  std::cout << std::endl;
}

void RunE6(bool write_json) {
  bench::PrintHeader(
      "E6", "final-merge & fix-round ablation",
      "Pairwise ladder vs splitter multiway merge, and the "
      "boundary-summary fix round's scaling in p.");
  std::vector<bench::BenchJsonEntry> entries;
  RunMergeAblation(&entries);
  RunFixRoundSweep(&entries);
  if (!write_json) return;
  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E6", entries, &error)) {
    std::cout << "wrote " << entries.size() << " E6 entries to " << json_path
              << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
}

}  // namespace
}  // namespace parjoin

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == std::string("--e6-only")) {
      // CI smoke mode: just the merge/fix-round ablation and its JSON.
      parjoin::RunE6(/*write_json=*/true);
      return 0;
    }
  }
  parjoin::bench::PrintHeader(
      "E10", "§2.1 primitive costs",
      "Thread scaling, linear-load table, then micro throughput.");
  std::vector<parjoin::bench::BenchJsonEntry> entries;
  parjoin::RunThreadSweep(&entries);
  parjoin::PrintLinearLoadTable();
  const std::string json_path = parjoin::bench::BenchJsonPath();
  std::string error;
  if (parjoin::bench::UpdateBenchJson(json_path, "E10", entries, &error)) {
    std::cout << "wrote " << entries.size() << " E10 entries to " << json_path
              << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  parjoin::RunE6(/*write_json=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
