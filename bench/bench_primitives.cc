// E10 — §2.1 MPC primitives: throughput (google-benchmark) and the
// linear-load property (printed table). Every primitive must stay at
// O(N/p) load; the table reports measured load / (N/p) ratios.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/random.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/query/dangling.h"
#include "parjoin/relation/ops.h"
#include "parjoin/sketch/kmv.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

std::vector<std::pair<std::int64_t, std::int64_t>> MakePairs(
    std::int64_t n, std::int64_t keys, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  items.reserve(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    items.emplace_back(rng.Uniform(0, keys - 1), rng.Uniform(1, 9));
  }
  return items;
}

void BM_Sort(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n, 1);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto sorted = mpc::Sort(cluster, dist, [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_ReduceByKey(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n / 16, 2);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto reduced = mpc::ReduceByKey(
        cluster, dist, [](const auto& kv) { return kv.first; },
        [](auto* acc, const auto& kv) { acc->second += kv.second; });
    benchmark::DoNotOptimize(reduced);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_Exchange(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  mpc::Cluster cluster(64);
  auto items = MakePairs(n, n, 3);
  auto dist = mpc::ScatterEvenly(items, 64);
  for (auto _ : state) {
    auto parted = mpc::Exchange(cluster, dist, 64, [](const auto& kv) {
      return static_cast<int>(Mix64(static_cast<std::uint64_t>(kv.first)) %
                              64);
    });
    benchmark::DoNotOptimize(parted);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Exchange)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_KmvInsert(benchmark::State& state) {
  SeededHash hash(7);
  std::int64_t i = 0;
  Kmv kmv;
  for (auto _ : state) {
    kmv.AddHash(hash(static_cast<std::uint64_t>(i++)));
    benchmark::DoNotOptimize(kmv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvInsert);

void PrintLinearLoadTable() {
  using parjoin::bench::Ratio;
  std::cout << "\nLinear-load property (N = 2^18, p = 64; ratio = measured "
               "load / (N/p)):\n";
  TablePrinter table({"primitive", "load", "N/p", "ratio", "rounds"});
  const std::int64_t n = 1 << 18;
  const int p = 64;
  const std::int64_t per = n / p;

  {
    mpc::Cluster c(p);
    auto dist = mpc::ScatterEvenly(MakePairs(n, n, 1), p);
    mpc::Sort(c, dist,
              [](const auto& a, const auto& b) { return a.first < b.first; });
    table.AddRow({"sort", Fmt(c.stats().max_load), Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    auto dist = mpc::ScatterEvenly(MakePairs(n, 64, 2), p);  // heavy skew
    mpc::ReduceByKey(
        c, dist, [](const auto& kv) { return kv.first; },
        [](auto* acc, const auto& kv) { acc->second += kv.second; });
    table.AddRow({"reduce-by-key (64 keys)", Fmt(c.stats().max_load),
                  Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    std::vector<mpc::PackedItem> items;
    Rng rng(5);
    for (std::int64_t i = 0; i < n / 16; ++i) {
      items.push_back({i, rng.UniformDouble() * 0.9 + 0.05, -1});
    }
    mpc::ParallelPacking(c, std::move(items));
    table.AddRow({"parallel-packing", Fmt(c.stats().max_load),
                  Fmt(n / 16 / p),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(n / 16 / p)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  {
    mpc::Cluster c(p);
    MatMulGenConfig cfg;
    cfg.n1 = cfg.n2 = n / 2;
    cfg.dom_a = n / 8;
    cfg.dom_b = n / 32;
    cfg.dom_c = n / 8;
    auto instance = GenMatMulRandom<CountingSemiring>(c, cfg);
    c.ResetStats();
    RemoveDangling(c, &instance);
    table.AddRow({"remove-dangling (matmul)", Fmt(c.stats().max_load),
                  Fmt(per),
                  Ratio(static_cast<double>(c.stats().max_load),
                        static_cast<double>(per)),
                  Fmt(static_cast<std::int64_t>(c.stats().rounds))});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main(int argc, char** argv) {
  parjoin::bench::PrintHeader("E10", "§2.1 primitive costs",
                              "Linear-load table, then micro throughput.");
  parjoin::PrintLinearLoadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
