// E7 — the serving runtime: sustained throughput, latency, and the value
// of the plan cache.
//
// A parjoind Server registers four relations once (Distribute + KMV
// sketches at registration), then serves a seeded mixed workload of three
// query shapes (matmul, line, star) — 60 queries, each shape repeated —
// in two admission configurations:
//   fifo     one query per batch (load_budget 0): strict serial FIFO
//   batched  admission-controlled batches against a predicted-load budget
//
// Reported per configuration: sustained queries/sec, p50/p99 latency,
// plan-cache hit rate, and mean cold (estimation pass) vs. warm (cache
// hit) planning time. The first query of each shape plans cold; every
// repeat hits the cache, so the hit rate is (queries - shapes) / queries
// and warm planning must be orders of magnitude below cold.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/random.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/serve/server.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

constexpr int kP = 16;
constexpr std::uint64_t kSeed = 42;

// Registers the four shared relations: ab(0,1), bc(1,2), cd(2,3), bd(1,3)
// — enough to express all three query shapes over the same registry.
std::int64_t RegisterRelations(serve::Server<S>& server) {
  Rng rng(kSeed);
  std::int64_t total = 0;
  const auto add = [&](const char* name, AttrId u, AttrId v,
                       std::int64_t count, std::int64_t dom_u,
                       std::int64_t dom_v) {
    Relation<S> rel = internal_workload::RandomBinaryRelation<S>(
        Schema{u, v}, count, dom_u, dom_v, /*skew_v=*/0.4,
        /*max_weight=*/10, rng);
    total += rel.size();
    CHECK_OK(server.RegisterRelation(name, std::move(rel)));
  };
  add("ab", 0, 1, 4000, 600, 200);
  add("bc", 1, 2, 4000, 200, 600);
  add("cd", 2, 3, 4000, 600, 200);
  add("bd", 1, 3, 4000, 200, 200);
  return total;
}

serve::QuerySpec MakeSpec(const std::vector<serve::SpecEdge>& edges,
                          const std::vector<AttrId>& outputs) {
  serve::QuerySpec spec;
  spec.p = kP;
  spec.edges = edges;
  spec.outputs = outputs;
  return spec;
}

struct Shape {
  std::string name;
  serve::QuerySpec spec;
  int repeat = 20;
};

std::vector<Shape> MixedWorkload() {
  std::vector<Shape> shapes;
  shapes.push_back({"matmul",
                    MakeSpec({{0, 1, "@ab"}, {1, 2, "@bc"}}, {0, 2}), 20});
  shapes.push_back(
      {"line",
       MakeSpec({{0, 1, "@ab"}, {1, 2, "@bc"}, {2, 3, "@cd"}}, {0, 3}),
       20});
  shapes.push_back(
      {"star",
       MakeSpec({{0, 1, "@ab"}, {1, 2, "@bc"}, {1, 3, "@bd"}}, {0, 2, 3}),
       20});
  return shapes;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E7", "serving runtime (parjoind)",
      "Mixed 3-shape x 60-query workload through the Server: plan cache, "
      "cost-ticket admission control, per-query isolation.");

  struct Config {
    std::string name;
    double load_budget;
  };
  std::vector<Config> configs = {{"fifo", 0}, {"batched", 30000}};

  std::vector<bench::BenchJsonEntry> json_entries;
  TablePrinter table({"config", "queries", "failed", "batches", "qps",
                      "p50_ms", "p99_ms", "hit_rate", "cold_plan_ms",
                      "warm_plan_ms"});
  for (const Config& cfg : configs) {
    serve::ServerOptions options;
    options.p = kP;
    options.seed = kSeed;
    options.load_budget = cfg.load_budget;
    serve::Server<S> server(options);
    const std::int64_t n = RegisterRelations(server);

    std::int64_t enqueued = 0;
    for (const auto& shape : MixedWorkload()) {
      for (int rep = 0; rep < shape.repeat; ++rep) {
        CHECK_OK(server.Enqueue(shape.spec,
                                shape.name + "#" + std::to_string(rep)));
        ++enqueued;
      }
    }

    Stopwatch clock;
    const auto outcomes = server.Drain();
    const double drain_s = clock.ElapsedSeconds();

    std::vector<double> latencies;
    std::int64_t max_load = 0;
    std::int64_t total_comm = 0;
    std::int64_t critical_path = 0;
    std::int64_t recovery_comm = 0;
    int rounds = 0;
    for (const auto& out : outcomes) {
      latencies.push_back(out.latency_ms);
      const auto& xs = out.plan.execution_stats;
      max_load = std::max(max_load, xs.max_load);
      total_comm += xs.total_comm;
      critical_path += xs.critical_path;
      recovery_comm += xs.recovery_comm;
      rounds += xs.rounds;
    }
    const auto& m = server.metrics();
    const double qps =
        drain_s > 0 ? static_cast<double>(outcomes.size()) / drain_s : 0;
    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    const double cold_ms =
        m.cold_plans > 0
            ? m.cold_plan_ms_total / static_cast<double>(m.cold_plans)
            : 0;
    const double warm_ms =
        m.warm_plans > 0
            ? m.warm_plan_ms_total / static_cast<double>(m.warm_plans)
            : 0;

    char qps_s[32], p50_s[32], p99_s[32], hit_s[32], cold_s[32], warm_s[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
    std::snprintf(p50_s, sizeof(p50_s), "%.3f", p50);
    std::snprintf(p99_s, sizeof(p99_s), "%.3f", p99);
    std::snprintf(hit_s, sizeof(hit_s), "%.3f",
                  server.plan_cache().HitRate());
    std::snprintf(cold_s, sizeof(cold_s), "%.3f", cold_ms);
    std::snprintf(warm_s, sizeof(warm_s), "%.4f", warm_ms);
    table.AddRow({cfg.name, std::to_string(enqueued),
                  std::to_string(m.failed), std::to_string(m.batches),
                  qps_s, p50_s, p99_s, hit_s, cold_s, warm_s});

    bench::BenchJsonEntry entry;
    entry.experiment = "E7";
    entry.name = "serving/mixed/" + cfg.name + "/q=" +
                 std::to_string(enqueued) + "/p=" + std::to_string(kP);
    entry.n = n;
    entry.p = kP;
    entry.threads = ParallelForThreads();
    entry.result.load = max_load;
    entry.result.rounds = rounds;
    entry.result.total_comm = total_comm;
    entry.result.critical_path = critical_path;
    entry.result.recovery_comm = recovery_comm;
    entry.result.wall_ms = drain_s * 1e3;
    entry.serving.present = true;
    entry.serving.qps = qps;
    entry.serving.p50_ms = p50;
    entry.serving.p99_ms = p99;
    entry.serving.cache_hit_rate = server.plan_cache().HitRate();
    entry.serving.cold_plan_ms = cold_ms;
    entry.serving.warm_plan_ms = warm_ms;
    json_entries.push_back(entry);

    CHECK_EQ(m.failed, 0) << "E7 workload must serve cleanly";
    CHECK_GT(server.plan_cache().counters().hits, 0);
  }
  table.Print(std::cout);
  std::cout << std::endl;

  const std::string json_path = bench::BenchJsonPath();
  std::string error;
  if (bench::UpdateBenchJson(json_path, "E7", json_entries, &error)) {
    std::cout << "wrote " << json_entries.size() << " E7 entries to "
              << json_path << "\n";
  } else {
    std::cerr << "BENCH json: " << error << "\n";
  }
  return 0;
}
