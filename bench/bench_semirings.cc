// E12 — semiring generality (the §1 motivation).
//
// The same matrix multiplication runs under every shipped semiring. The
// algorithms never look at annotation values, so the communication pattern
// — and therefore the measured load and round count — must be identical
// across semirings; only the aggregated values differ. This is the
// empirical face of "the algorithm works over any semiring".

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

template <SemiringC S>
void RunOne(TablePrinter* table) {
  const int p = 32;
  std::int64_t out = 0;
  typename S::ValueType sample = S::Zero();
  bench::RunResult r = bench::Measure(p, 1, [&](mpc::Cluster& c) {
    MatMulGenConfig cfg;
    cfg.n1 = cfg.n2 = 20000;
    cfg.dom_a = 1500;
    cfg.dom_b = 300;
    cfg.dom_c = 1500;
    cfg.skew_b = 0.5;
    auto instance = GenMatMulRandom<S>(c, cfg);
    c.ResetStats();
    auto result = MatMul(c, std::move(instance.relations[0]),
                         std::move(instance.relations[1]));
    out = result.TotalSize();
    result.data.ForEach([&](const Tuple<S>& t) {
      sample = S::Plus(sample, t.w);  // fold so the work isn't elided
    });
  });
  table->AddRow({S::kName, Fmt(out), Fmt(r.load),
                 Fmt(static_cast<std::int64_t>(r.rounds)), Fmt(r.wall_ms)});
}

}  // namespace
}  // namespace parjoin

int main() {
  using namespace parjoin;
  bench::PrintHeader(
      "E12", "semiring generality",
      "Identical instance/algorithm under all semirings: load and rounds\n"
      "must match exactly (the algorithm is annotation-oblivious).");
  TablePrinter table({"semiring", "OUT", "load", "rounds", "ms"});
  RunOne<CountingSemiring>(&table);
  RunOne<BooleanSemiring>(&table);
  RunOne<MinPlusSemiring>(&table);
  RunOne<MaxPlusSemiring>(&table);
  RunOne<MaxMinSemiring>(&table);
  table.Print(std::cout);
  std::cout << std::endl;
  return 0;
}
