// Ablations of the design choices DESIGN.md calls out:
//
//  A1  Skew handling in the two-way join: heavy-value grids on vs. off.
//      Without grids, one hot join value concentrates its whole Cartesian
//      block on one server; the measured load must blow up accordingly.
//  A2  The heavy/light split in the §3.1 worst-case matmul vs. running
//      the light-light grid machinery alone conceptually — approximated
//      here by comparing against the Yannakakis join on the same skewed
//      instance (what you get with no degree-based decomposition at all).
//  A3  KMV sketch width k: estimate quality of k = 4 / 16 / 64 at equal
//      repetition counts (the paper needs any constant k; the ablation
//      shows the accuracy/space trade-off).

#include <cstdint>
#include <iostream>

#include "bench_util.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/table_printer.h"
#include "parjoin/sketch/kmv.h"
#include "parjoin/workload/generators.h"

namespace parjoin {
namespace {

using S = CountingSemiring;

void AblateJoinSkewHandling() {
  std::cout << "A1: two-way join with/without heavy-value grids "
               "(p = 32)\n";
  TablePrinter table({"zipf_skew", "J", "L_with_grids", "L_without",
                      "penalty"});
  for (double skew : {0.0, 0.6, 1.0}) {
    auto make = [&](mpc::Cluster& c) {
      MatMulGenConfig cfg;
      cfg.n1 = cfg.n2 = 12000;
      cfg.dom_a = 3000;
      cfg.dom_b = 400;
      cfg.dom_c = 3000;
      cfg.skew_b = skew;
      cfg.seed = 3;
      return GenMatMulRandom<S>(c, cfg);
    };
    std::int64_t join_size = 0;
    bench::RunResult with = bench::Measure(32, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      c.ResetStats();
      auto j = TwoWayJoin(c, instance.relations[0], instance.relations[1]);
      join_size = j.TotalSize();
    });
    bench::RunResult without = bench::Measure(32, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      c.ResetStats();
      TwoWayJoinOptions options;
      options.handle_skew = false;
      TwoWayJoin(c, instance.relations[0], instance.relations[1], options);
    });
    table.AddRow({Fmt(skew), Fmt(join_size), Fmt(with.load),
                  Fmt(without.load),
                  bench::Ratio(static_cast<double>(without.load),
                               static_cast<double>(with.load))});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

void AblateMatMulDecomposition() {
  std::cout << "A2: Theorem 1 decomposition vs. no decomposition "
               "(Yannakakis join+aggregate) on skewed instances (p = 32)\n";
  TablePrinter table({"zipf_skew", "OUT", "L_theorem1", "L_no_decomp",
                      "penalty"});
  for (double skew : {0.4, 0.8, 1.2}) {
    auto make = [&](mpc::Cluster& c) {
      MatMulGenConfig cfg;
      cfg.n1 = cfg.n2 = 10000;
      cfg.dom_a = 500;
      cfg.dom_b = 250;
      cfg.dom_c = 500;
      cfg.skew_b = skew;
      cfg.seed = 7;
      return GenMatMulRandom<S>(c, cfg);
    };
    std::int64_t out = 0;
    bench::RunResult ours = bench::Measure(32, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      c.ResetStats();
      auto r = MatMul(c, std::move(instance.relations[0]),
                      std::move(instance.relations[1]));
      out = r.TotalSize();
    });
    bench::RunResult yann = bench::Measure(32, 1, [&](mpc::Cluster& c) {
      auto instance = make(c);
      c.ResetStats();
      YannakakisJoinAggregate(c, std::move(instance));
    });
    table.AddRow({Fmt(skew), Fmt(out), Fmt(ours.load), Fmt(yann.load),
                  bench::Ratio(static_cast<double>(yann.load),
                               static_cast<double>(ours.load))});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

template <int K>
double MedianKmvEstimate(std::int64_t truth, int repetitions) {
  std::vector<double> estimates;
  for (int rep = 1; rep <= repetitions; ++rep) {
    KmvT<K> sketch;
    SeededHash hash(static_cast<std::uint64_t>(rep) * 0x9e37 + K);
    for (std::int64_t i = 0; i < truth; ++i) {
      sketch.AddHash(hash(static_cast<std::uint64_t>(i)));
    }
    estimates.push_back(sketch.Estimate());
  }
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2, estimates.end());
  return estimates[estimates.size() / 2];
}

void AblateKmvWidth() {
  std::cout << "A3: KMV width k vs. estimate quality (median of 15 "
               "repetitions)\n";
  TablePrinter table({"true_distinct", "k=4", "k=16", "k=64"});
  for (std::int64_t truth : {500, 5000, 50000, 500000}) {
    auto cell = [&](double est) {
      return bench::Ratio(est, static_cast<double>(truth));
    };
    table.AddRow({Fmt(truth), cell(MedianKmvEstimate<4>(truth, 15)),
                  cell(MedianKmvEstimate<16>(truth, 15)),
                  cell(MedianKmvEstimate<64>(truth, 15))});
  }
  table.Print(std::cout);
  std::cout << std::endl;
}

}  // namespace
}  // namespace parjoin

int main() {
  parjoin::bench::PrintHeader("A1-A3", "design-choice ablations",
                              "What the skew grids, the heavy/light "
                              "decomposition, and the sketch width buy.");
  parjoin::AblateJoinSkewHandling();
  parjoin::AblateMatMulDecomposition();
  parjoin::AblateKmvWidth();
  return 0;
}
