// Worst-case optimal sparse matrix multiplication (paper §3.1):
// ∑_B R1(A,B) ⋈ R2(B,C) with load O((N1+N2)/p + sqrt(N1*N2/p)).
//
// With L = sqrt(N1*N2/p), values of A (resp. C) are heavy when their degree
// reaches L. The query splits into four disjoint subqueries:
//   heavy-heavy: each (a, c) pair gets ceil((d(a)+d(c))/L) virtual servers
//     sharing the B-range by hashing; partial sums are reduced globally.
//   heavy-light / light-heavy: each heavy value gets a server group that
//     receives its own tuples plus the entire light side, again hashed
//     by B; partial (a, c) results are reduced globally.
//   light-light: parallel-packing groups the light values of A (and of C)
//     into buckets of total degree <= L; the bucket grid computes its cell
//     subquery entirely locally — this is where the algorithm's locality
//     beats Yannakakis: the elementary products are aggregated where they
//     are produced, and the finished outputs are never shuffled.
//
// When N1/N2 is outside [1/p, p], the simple broadcast algorithm from the
// start of §3 runs instead (load O((N1+N2)/p)).

#ifndef PARJOIN_ALGORITHMS_MATMUL_WC_H_
#define PARJOIN_ALGORITHMS_MATMUL_WC_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "parjoin/common/checked_math.h"
#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

namespace internal_matmul {

// Resolved attribute roles of a matrix-multiplication input pair.
struct MatMulAttrs {
  AttrId a = -1, b = -1, c = -1;
  int a_pos = -1, b1_pos = -1;  // positions in r1
  int b2_pos = -1, c_pos = -1;  // positions in r2
};

template <SemiringC S>
MatMulAttrs ResolveMatMulAttrs(const DistRelation<S>& r1,
                               const DistRelation<S>& r2) {
  const std::vector<AttrId> common = r1.schema.CommonAttrs(r2.schema);
  CHECK_EQ(common.size(), 1u) << "matmul inputs must share exactly one attr";
  MatMulAttrs m;
  m.b = common[0];
  CHECK_EQ(r1.schema.size(), 2);
  CHECK_EQ(r2.schema.size(), 2);
  m.a = r1.schema.attr(0) == m.b ? r1.schema.attr(1) : r1.schema.attr(0);
  m.c = r2.schema.attr(0) == m.b ? r2.schema.attr(1) : r2.schema.attr(0);
  m.a_pos = r1.schema.IndexOf(m.a);
  m.b1_pos = r1.schema.IndexOf(m.b);
  m.b2_pos = r2.schema.IndexOf(m.b);
  m.c_pos = r2.schema.IndexOf(m.c);
  return m;
}

// Locally joins co-located R1/R2 fragments on B and ⊕-aggregates by (a, c),
// appending the aggregated rows (schema (A, C)) to *out.
template <SemiringC S>
void LocalJoinAggregateAC(const MatMulAttrs& m,
                          const std::vector<Tuple<S>>& r1_part,
                          const std::vector<Tuple<S>>& r2_part,
                          std::vector<Tuple<S>>* out) {
  if (r1_part.empty() || r2_part.empty()) return;
  std::unordered_map<Value, std::vector<const Tuple<S>*>> by_b;
  by_b.reserve(r2_part.size());
  for (const auto& t : r2_part) by_b[t.row[m.b2_pos]].push_back(&t);
  std::unordered_map<Row, typename S::ValueType, RowHash> agg;
  for (const auto& t1 : r1_part) {
    auto it = by_b.find(t1.row[m.b1_pos]);
    if (it == by_b.end()) continue;
    for (const Tuple<S>* t2 : it->second) {
      Row key{t1.row[m.a_pos], t2->row[m.c_pos]};
      const auto w = S::Times(t1.w, t2->w);
      auto [slot, inserted] = agg.emplace(std::move(key), w);
      if (!inserted) slot->second = S::Plus(slot->second, w);
    }
  }
  // Emit in row order: agg's iteration order is hash-table state, and these
  // rows feed final output parts (grid cells keep them in place, and the
  // broadcast path emits directly).
  out->reserve(out->size() + agg.size());
  for (auto& [row, w] : SortedEntries(agg)) {
    out->push_back(Tuple<S>{std::move(row), w});
  }
}

// The simple algorithm for very unbalanced inputs (N_small/N_big < 1/p):
// sort the big side grouped by its output attribute, broadcast the small
// side, compute locally; outputs are disjoint across servers.
// `small_is_r1` says which side is being broadcast.
template <SemiringC S>
DistRelation<S> MatMulBroadcastSmall(mpc::Cluster& cluster,
                                     const MatMulAttrs& m,
                                     const DistRelation<S>& r1,
                                     const DistRelation<S>& r2,
                                     bool small_is_r1) {
  const DistRelation<S>& big = small_is_r1 ? r2 : r1;
  const DistRelation<S>& small = small_is_r1 ? r1 : r2;
  const int group_pos = small_is_r1 ? m.c_pos : m.a_pos;

  mpc::Dist<Tuple<S>> big_sorted = mpc::SortGroupedByKey(
      cluster, big.data,
      [&](const Tuple<S>& t) { return t.row[group_pos]; });
  mpc::Dist<Tuple<S>> small_everywhere = mpc::Broadcast(cluster, small.data);

  DistRelation<S> out;
  out.schema = Schema{m.a, m.c};
  out.data = mpc::Dist<Tuple<S>>(big_sorted.num_parts());
  for (int s = 0; s < big_sorted.num_parts(); ++s) {
    const auto& r1_part =
        small_is_r1 ? small_everywhere.part(std::min(s, cluster.p() - 1))
                    : big_sorted.part(s);
    const auto& r2_part = small_is_r1
                              ? big_sorted.part(s)
                              : small_everywhere.part(std::min(
                                    s, cluster.p() - 1));
    LocalJoinAggregateAC(m, r1_part, r2_part, &out.data.part(s));
  }
  return out;
}

}  // namespace internal_matmul

// §3.1 worst-case optimal algorithm. Preconditions: dangling tuples
// removed (use RemoveDangling or the Semijoin pair; MatMul() in matmul.h
// handles this), N1 >= 1, N2 >= 1.
template <SemiringC S>
DistRelation<S> MatMulWorstCase(mpc::Cluster& cluster,
                                const DistRelation<S>& r1,
                                const DistRelation<S>& r2) {
  using internal_matmul::MatMulAttrs;
  const MatMulAttrs m = internal_matmul::ResolveMatMulAttrs(r1, r2);
  const int p = cluster.p();
  const std::int64_t n1 = r1.TotalSize();
  const std::int64_t n2 = r2.TotalSize();

  DistRelation<S> empty;
  empty.schema = Schema{m.a, m.c};
  empty.data = mpc::Dist<Tuple<S>>(p);
  if (n1 == 0 || n2 == 0) return empty;

  // Very unbalanced sizes: broadcast the small side (§3 opening). The
  // products are saturating: on inputs near 2^63 a wrapped n*p would flip
  // the comparison and route the whole big side through the wrong plan.
  if (SaturatingMul(n1, p) < n2) {
    return internal_matmul::MatMulBroadcastSmall(cluster, m, r1, r2, true);
  }
  if (SaturatingMul(n2, p) < n1) {
    return internal_matmul::MatMulBroadcastSmall(cluster, m, r1, r2, false);
  }

  const std::int64_t L = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(
             std::sqrt(static_cast<double>(n1) * static_cast<double>(n2) /
                       p))));

  // --- Step 1: degree statistics and heavy/light classification. ---
  mpc::Dist<ValueCount> deg_a = DegreesByAttr(cluster, r1, m.a);
  mpc::Dist<ValueCount> deg_c = DegreesByAttr(cluster, r2, m.c);
  const std::unordered_map<Value, std::int64_t> heavy_a =
      CollectStatsAtLeast(cluster, deg_a, L);
  const std::unordered_map<Value, std::int64_t> heavy_c =
      CollectStatsAtLeast(cluster, deg_c, L);
  // Virtual-server allocation iterates the heavy values; materialize
  // sorted views so the group layout is a function of the data, not of
  // the hash table's iteration order.
  const std::vector<std::pair<Value, std::int64_t>> heavy_a_sorted =
      SortedEntries(heavy_a);
  const std::vector<std::pair<Value, std::int64_t>> heavy_c_sorted =
      SortedEntries(heavy_c);
  const int na = static_cast<int>(heavy_a_sorted.size());
  const int nc = static_cast<int>(heavy_c_sorted.size());
  std::unordered_map<Value, int> a_rank;
  std::unordered_map<Value, int> c_rank;
  a_rank.reserve(heavy_a_sorted.size());
  c_rank.reserve(heavy_c_sorted.size());
  for (int i = 0; i < na; ++i) {
    a_rank.emplace(heavy_a_sorted[static_cast<size_t>(i)].first, i);
  }
  for (int j = 0; j < nc; ++j) {
    c_rank.emplace(heavy_c_sorted[static_cast<size_t>(j)].first, j);
  }

  // Light-side sizes (a tiny distributed count; charged as one unit round).
  std::int64_t n1_light = 0, n2_light = 0;
  r1.data.ForEach([&](const Tuple<S>& t) {
    if (heavy_a.find(t.row[m.a_pos]) == heavy_a.end()) ++n1_light;
  });
  r2.data.ForEach([&](const Tuple<S>& t) {
    if (heavy_c.find(t.row[m.c_pos]) == heavy_c.end()) ++n2_light;
  });
  cluster.ChargeUniformRound(1);

  // --- Virtual-server allocation. ---
  int next_virtual = 0;
  struct Group {
    int base = 0;
    int size = 1;
  };
  auto allocate = [&](std::int64_t work) {
    Group g;
    g.size = static_cast<int>((work + L - 1) / L);
    g.size = std::max(g.size, 1);
    g.base = next_virtual;
    next_virtual += g.size;
    return g;
  };

  // Heavy-heavy: group per (a, c) pair, laid out in sorted (a, c) order;
  // hh[a_rank][c_rank] is the pair's group.
  std::vector<std::vector<Group>> hh(
      static_cast<size_t>(na), std::vector<Group>(static_cast<size_t>(nc)));
  for (int i = 0; i < na; ++i) {
    for (int j = 0; j < nc; ++j) {
      hh[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          allocate(heavy_a_sorted[static_cast<size_t>(i)].second +
                   heavy_c_sorted[static_cast<size_t>(j)].second);
    }
  }
  // Heavy-light: group per heavy a (receives R1(a,·) and all light R2).
  std::vector<Group> hl;
  hl.reserve(heavy_a_sorted.size());
  for (const auto& [a, da] : heavy_a_sorted) {
    hl.push_back(allocate(da + n2_light));
  }
  // Light-heavy: group per heavy c.
  std::vector<Group> lh;
  lh.reserve(heavy_c_sorted.size());
  for (const auto& [c, dc] : heavy_c_sorted) {
    lh.push_back(allocate(dc + n1_light));
  }

  // Light-light: pack light values into buckets of total degree <= L.
  auto pack_side = [&](const mpc::Dist<ValueCount>& degrees,
                       const std::unordered_map<Value, std::int64_t>& heavy) {
    std::vector<mpc::PackedItem> items;
    degrees.ForEach([&](const ValueCount& vc) {
      if (heavy.find(vc.value) != heavy.end()) return;
      items.push_back({vc.value, std::min(
                                     1.0, static_cast<double>(vc.count) / L),
                       -1});
    });
    items = mpc::ParallelPacking(cluster, std::move(items));
    std::unordered_map<Value, int> bucket_of;
    int num_buckets = 0;
    for (const auto& item : items) {
      bucket_of[item.id] = item.group;
      num_buckets = std::max(num_buckets, item.group + 1);
    }
    return std::make_pair(std::move(bucket_of), num_buckets);
  };
  auto pack_a = pack_side(deg_a, heavy_a);
  auto pack_c = pack_side(deg_c, heavy_c);
  std::unordered_map<Value, int>& bucket_a = pack_a.first;
  std::unordered_map<Value, int>& bucket_c = pack_c.first;
  const int k1 = std::max(1, pack_a.second);
  const int k2 = std::max(1, pack_c.second);
  const Group grid = [&] {
    Group g;
    g.size = k1 * k2;
    g.base = next_virtual;
    next_virtual += g.size;
    return g;
  }();
  const int num_virtual = next_virtual;
  // The paper guarantees sum of allocations = O(p); surface violations.
  if (num_virtual > 64 * p + 64) {
    LOG(WARNING) << "matmul_wc allocated " << num_virtual
                 << " virtual servers for p=" << p;
  }

  // --- One replicated exchange per relation implements steps 2-4. ---
  const std::uint64_t b_seed = cluster.rng().Next();
  auto b_shard = [&](Value b, const Group& g) {
    return g.base + static_cast<int>(
                        Mix64(static_cast<std::uint64_t>(b) ^ b_seed) %
                        static_cast<std::uint64_t>(g.size));
  };

  // Route lambdas run concurrently across source parts (Exchange's
  // contract); lookups use find()/at() — never operator[], whose
  // insert-if-absent would be a data race on the shared maps.
  auto r1_routed = mpc::ExchangeMulti(
      cluster, r1.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        const Value a = t.row[m.a_pos];
        const Value b = t.row[m.b1_pos];
        const auto ha = a_rank.find(a);
        if (ha != a_rank.end()) {
          const size_t ai = static_cast<size_t>(ha->second);
          for (const Group& g : hh[ai]) dests->push_back(b_shard(b, g));
          dests->push_back(b_shard(b, hl[ai]));
        } else {
          for (const Group& g : lh) dests->push_back(b_shard(b, g));
          const int i = bucket_a.at(a);
          for (int j = 0; j < k2; ++j) {
            dests->push_back(grid.base + i * k2 + j);
          }
        }
      });
  auto r2_routed = mpc::ExchangeMulti(
      cluster, r2.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        const Value c = t.row[m.c_pos];
        const Value b = t.row[m.b2_pos];
        const auto hc = c_rank.find(c);
        if (hc != c_rank.end()) {
          const size_t cj = static_cast<size_t>(hc->second);
          for (const auto& row_groups : hh) {
            dests->push_back(b_shard(b, row_groups[cj]));
          }
          dests->push_back(b_shard(b, lh[cj]));
        } else {
          for (const Group& g : hl) dests->push_back(b_shard(b, g));
          const int j = bucket_c.at(c);
          for (int i = 0; i < k1; ++i) {
            dests->push_back(grid.base + i * k2 + j);
          }
        }
      });

  // --- Local computation. ---
  // Light-light cells produce final, pairwise-disjoint outputs (kept in
  // place, never shuffled). All other regions produce partial sums that
  // one global reduce-by-key combines (O(p*L) partials => load O(L)).
  DistRelation<S> out;
  out.schema = Schema{m.a, m.c};
  out.data = mpc::Dist<Tuple<S>>(p + grid.size);

  mpc::Dist<Tuple<S>> partials(num_virtual);
  ParallelFor(num_virtual, [&](int v) {
    const bool is_grid_cell = v >= grid.base;
    std::vector<Tuple<S>>* sink =
        is_grid_cell ? &out.data.part(p + (v - grid.base))
                     : &partials.part(v);
    internal_matmul::LocalJoinAggregateAC(m, r1_routed.part(v),
                                          r2_routed.part(v), sink);
  });

  mpc::Dist<Tuple<S>> reduced = mpc::ReduceByKey(
      cluster, std::move(partials),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      p);
  for (int s = 0; s < p; ++s) out.data.part(s) = std::move(reduced.part(s));
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_MATMUL_WC_H_
