// Star queries (paper §5):
//   ∑_B R1(A1,B) ⋈ R2(A2,B) ⋈ ... ⋈ Rn(An,B)
// with load O((N*OUT/p)^{2/3} + N*sqrt(OUT)/p + (N+OUT)/p) (Theorem 5).
//
// The algorithm is oblivious to OUT (OUT appears only in the analysis —
// computing it for star queries is open). For every value b of the join
// attribute, the arms are ordered by degree d_1(b) <= ... <= d_n(b); this
// permutation φ_b partitions dom(B) into at most n! classes B_φ. Within a
// class, the odd-indexed arms and the even-indexed arms are each joined
// into one relation (Lemmas 5/6 bound both by N*sqrt(OUT)), the arm
// attributes are combined, and the subquery becomes one output-sensitive
// matrix multiplication. A final reduce-by-key merges the n! subqueries.

#ifndef PARJOIN_ALGORITHMS_STAR_QUERY_H_
#define PARJOIN_ALGORITHMS_STAR_QUERY_H_

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/attr_combiner.h"
#include "parjoin/relation/ops.h"

namespace parjoin {

namespace internal_star {

// Projects every tuple onto `target` (which must be a subset of the
// schema) — a free local projection used to align result schemas before
// the final reduce.
template <SemiringC S>
DistRelation<S> ProjectLocal(const DistRelation<S>& rel,
                             const std::vector<AttrId>& target) {
  const std::vector<int> positions = rel.schema.PositionsOf(target);
  DistRelation<S> out;
  out.schema = Schema(target);
  out.data = mpc::Dist<Tuple<S>>(rel.data.num_parts());
  for (int s = 0; s < rel.data.num_parts(); ++s) {
    out.data.part(s).reserve(rel.data.part(s).size());
    for (const auto& t : rel.data.part(s)) {
      out.data.part(s).push_back(Tuple<S>{t.row.Select(positions), t.w});
    }
  }
  return out;
}

// Reduce-by-key union of same-schema result fragments (the final
// "aggregate all subqueries" step; charged).
template <SemiringC S>
DistRelation<S> ReduceUnion(mpc::Cluster& cluster,
                            std::vector<DistRelation<S>> results,
                            const Schema& schema) {
  mpc::Dist<Tuple<S>> merged(0);
  for (auto& r : results) {
    CHECK(r.schema == schema);
    for (auto& part : r.data.parts()) {
      merged.parts().push_back(std::move(part));
    }
  }
  if (merged.num_parts() == 0) merged = mpc::Dist<Tuple<S>>(cluster.p());
  DistRelation<S> out;
  out.schema = schema;
  out.data = mpc::ReduceByKey(
      cluster, std::move(merged),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      cluster.p());
  return out;
}

}  // namespace internal_star

// Computes a star query. The instance must classify as kStar (or kMatMul
// for two arms, handled by dispatch).
template <SemiringC S>
DistRelation<S> StarQueryAggregate(mpc::Cluster& cluster,
                                   TreeInstance<S> instance) {
  instance.Validate();
  AttrId center = -1;
  CHECK(instance.query.IsStarShaped(&center)) << "not a star query";
  const int n = instance.query.num_edges();
  CHECK_LE(n, 6) << "star arity is a query constant; >6 unsupported";
  const std::vector<AttrId> outputs = instance.query.output_attrs();

  if (n == 1) {
    return AggregateByAttrs(cluster, instance.relations[0], outputs);
  }
  RemoveDangling(cluster, &instance);
  if (n == 2) {
    MatMulOptions options;
    options.remove_dangling = false;
    DistRelation<S> mm = MatMul(cluster, std::move(instance.relations[0]),
                                std::move(instance.relations[1]), options);
    return internal_star::ProjectLocal(mm, outputs);
  }

  const int p = cluster.p();
  // Arm attribute of relation i.
  std::vector<AttrId> arm(static_cast<size_t>(n));
  std::vector<int> b_pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    arm[static_cast<size_t>(i)] = instance.query.edge(i).Other(center);
    b_pos[static_cast<size_t>(i)] =
        instance.relations[static_cast<size_t>(i)].schema.IndexOf(center);
  }

  // --- Step 1: co-partition everything by B; per-part degree vectors give
  // every b its permutation class (as-executed exchanges). ---
  auto route_b = [&](Value b) {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(b) ^ 0x57a7) %
                            static_cast<std::uint64_t>(p));
  };
  std::vector<mpc::Dist<Tuple<S>>> by_b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    by_b[static_cast<size_t>(i)] = mpc::Exchange(
        cluster, instance.relations[static_cast<size_t>(i)].data, p,
        [&](const Tuple<S>& t) {
          return route_b(t.row[b_pos[static_cast<size_t>(i)]]);
        });
  }

  // perm id per b, per part; permutation ids are dense via a global table
  // (there are at most n! of them; the table itself is O(1)).
  std::map<std::vector<int>, int> perm_ids;
  std::vector<std::vector<int>> perm_list;  // id -> degree-sorted arm order
  std::vector<std::unordered_map<Value, int>> perm_of_b(
      static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    std::unordered_map<Value, std::vector<std::int64_t>> degs;
    for (int i = 0; i < n; ++i) {
      for (const auto& t : by_b[static_cast<size_t>(i)].part(s)) {
        auto& d = degs[t.row[b_pos[static_cast<size_t>(i)]]];
        if (d.empty()) d.assign(static_cast<size_t>(n), 0);
        d[static_cast<size_t>(i)] += 1;
      }
    }
    // Sorted: dense permutation ids are assigned in encounter order, so
    // the id numbering must be a function of the data alone.
    for (const auto& [b, d] : SortedEntries(degs)) {
      bool complete = true;
      for (std::int64_t x : d) {
        if (x == 0) complete = false;  // dangling leftovers; skip
      }
      if (!complete) continue;
      std::vector<int> order(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
      std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
        return d[static_cast<size_t>(x)] < d[static_cast<size_t>(y)];
      });
      auto [it, inserted] =
          perm_ids.emplace(order, static_cast<int>(perm_ids.size()));
      if (inserted) perm_list.push_back(order);
      perm_of_b[static_cast<size_t>(s)][b] = it->second;
    }
  }

  // Per-(perm, relation) fragments (local split, free).
  const int num_perms = static_cast<int>(perm_list.size());
  std::vector<std::vector<DistRelation<S>>> frag(
      static_cast<size_t>(num_perms));
  for (int q = 0; q < num_perms; ++q) {
    frag[static_cast<size_t>(q)].resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      frag[static_cast<size_t>(q)][static_cast<size_t>(i)].schema =
          instance.relations[static_cast<size_t>(i)].schema;
      frag[static_cast<size_t>(q)][static_cast<size_t>(i)].data =
          mpc::Dist<Tuple<S>>(p);
    }
  }
  for (int s = 0; s < p; ++s) {
    for (int i = 0; i < n; ++i) {
      for (auto& t : by_b[static_cast<size_t>(i)].part(s)) {
        auto it = perm_of_b[static_cast<size_t>(s)].find(
            t.row[b_pos[static_cast<size_t>(i)]]);
        if (it == perm_of_b[static_cast<size_t>(s)].end()) continue;
        frag[static_cast<size_t>(it->second)][static_cast<size_t>(i)]
            .data.part(s)
            .push_back(std::move(t));
      }
    }
  }

  // --- Step 2: per permutation class, reduce to matrix multiplication. ---
  AttrId max_attr = 0;
  for (AttrId a : instance.query.attrs()) max_attr = std::max(max_attr, a);
  const AttrId x_odd = max_attr + 1;
  const AttrId x_even = max_attr + 2;

  std::vector<DistRelation<S>> results;
  mpc::ParallelRegion perm_region(cluster);
  for (int q = 0; q < num_perms; ++q) {
    perm_region.NextBranch();
    const std::vector<int>& order = perm_list[static_cast<size_t>(q)];
    std::vector<int> odd_arms, even_arms;
    for (int i = 0; i < n; ++i) {
      // order[i] is the arm with the (i+1)-smallest degree; the paper's
      // odd/even indexing is 1-based over φ.
      ((i % 2 == 0) ? odd_arms : even_arms).push_back(order[static_cast<size_t>(i)]);
    }

    auto join_side = [&](const std::vector<int>& arms) {
      DistRelation<S> acc = frag[static_cast<size_t>(q)]
                                [static_cast<size_t>(arms[0])];
      for (size_t k = 1; k < arms.size(); ++k) {
        acc = TwoWayJoin(
            cluster, acc,
            frag[static_cast<size_t>(q)][static_cast<size_t>(arms[k])]);
      }
      return acc;
    };
    DistRelation<S> odd_rel = join_side(odd_arms);
    DistRelation<S> even_rel = join_side(even_arms);
    if (odd_rel.TotalSize() == 0 || even_rel.TotalSize() == 0) continue;

    std::vector<AttrId> odd_attrs, even_attrs;
    for (int i : odd_arms) odd_attrs.push_back(arm[static_cast<size_t>(i)]);
    for (int i : even_arms) even_attrs.push_back(arm[static_cast<size_t>(i)]);

    CombinedRelation<S> odd_c =
        CombineAttrs(cluster, odd_rel, odd_attrs, x_odd);
    CombinedRelation<S> even_c =
        CombineAttrs(cluster, even_rel, even_attrs, x_even);

    MatMulOptions options;
    options.remove_dangling = false;
    options.strategy = MatMulStrategy::kOutputSensitive;
    DistRelation<S> mm = MatMul(cluster, std::move(odd_c.binary),
                                std::move(even_c.binary), options);
    if (mm.TotalSize() == 0) continue;
    DistRelation<S> expanded =
        ExpandAttrs(cluster, mm, odd_c.dictionary, x_odd);
    expanded = ExpandAttrs(cluster, expanded, even_c.dictionary, x_even);
    results.push_back(internal_star::ProjectLocal(expanded, outputs));
  }

  // --- Step 3: aggregate all subqueries. ---
  return internal_star::ReduceUnion(cluster, std::move(results),
                                    Schema(outputs));
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_STAR_QUERY_H_
