// Sparse matrix multiplication — the paper's Theorem 1:
//   load O((N1+N2)/p + min{ sqrt(N1*N2/p),
//                           (N1*N2)^{1/3} * OUT^{1/3} / p^{2/3} }) w.h.p.
//
// MatMul() is the user-facing entry point: it removes dangling tuples,
// handles the trivial N=1 cases by broadcast, obtains the §2.2 OUT
// estimate, and dispatches to the worst-case-optimal (§3.1) or the
// output-sensitive (§3.2) algorithm — whichever the estimate says is
// cheaper — mirroring the final paragraph of §3.2.

#ifndef PARJOIN_ALGORITHMS_MATMUL_H_
#define PARJOIN_ALGORITHMS_MATMUL_H_

#include <algorithm>
#include <cmath>

#include "parjoin/algorithms/matmul_os.h"
#include "parjoin/algorithms/matmul_wc.h"
#include "parjoin/relation/ops.h"
#include "parjoin/sketch/out_estimate.h"

namespace parjoin {

enum class MatMulStrategy {
  kAuto,             // Theorem 1: pick min of the two bounds via estimate
  kWorstCase,        // force §3.1
  kOutputSensitive,  // force §3.2
};

struct MatMulOptions {
  MatMulStrategy strategy = MatMulStrategy::kAuto;
  bool remove_dangling = true;
  // Optional precomputed §2.2 estimate (A-side); recomputed when null and
  // needed.
  const OutEstimate* estimate = nullptr;
};

// Computes ∑_B R1(A,B) ⋈ R2(B,C). The output schema is (A, C).
template <SemiringC S>
DistRelation<S> MatMul(mpc::Cluster& cluster, DistRelation<S> r1,
                       DistRelation<S> r2,
                       const MatMulOptions& options = {}) {
  const internal_matmul::MatMulAttrs m =
      internal_matmul::ResolveMatMulAttrs(r1, r2);

  if (options.remove_dangling) {
    r1 = Semijoin(cluster, r1, r2);
    r2 = Semijoin(cluster, r2, r1);
  }
  const std::int64_t n1 = r1.TotalSize();
  const std::int64_t n2 = r2.TotalSize();

  if (n1 == 0 || n2 == 0) {
    DistRelation<S> empty;
    empty.schema = Schema{m.a, m.c};
    empty.data = mpc::Dist<Tuple<S>>(cluster.p());
    return empty;
  }
  // N1 = 1 (or N2 = 1): broadcast the single tuple; every result is
  // computed locally with no semiring additions (§1.5).
  if (n1 == 1) {
    return internal_matmul::MatMulBroadcastSmall(cluster, m, r1, r2, true);
  }
  if (n2 == 1) {
    return internal_matmul::MatMulBroadcastSmall(cluster, m, r1, r2, false);
  }

  switch (options.strategy) {
    case MatMulStrategy::kWorstCase:
      return MatMulWorstCase(cluster, r1, r2);
    case MatMulStrategy::kOutputSensitive:
      return MatMulOutputSensitive(cluster, r1, r2, options.estimate);
    case MatMulStrategy::kAuto:
      break;
  }

  OutEstimate local_est;
  const OutEstimate* est = options.estimate;
  if (est == nullptr) {
    local_est = EstimateChainOut(cluster, std::vector<DistRelation<S>>{r1, r2},
                                 {m.a, m.b, m.c});
    est = &local_est;
  }
  const double out_est =
      std::max<double>(1.0, static_cast<double>(est->total));
  const int p = cluster.p();
  const double wc_bound =
      std::sqrt(static_cast<double>(n1) * static_cast<double>(n2) / p);
  const double os_bound =
      std::cbrt(static_cast<double>(n1) * static_cast<double>(n2) * out_est) /
      std::pow(static_cast<double>(p), 2.0 / 3.0);
  if (wc_bound <= os_bound) {
    return MatMulWorstCase(cluster, r1, r2);
  }
  return MatMulOutputSensitive(cluster, r1, r2, est);
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_MATMUL_H_
