// The distributed Yannakakis algorithm (§1.2, §1.4): the baseline every new
// algorithm in the paper is compared against.
//
// After dangling-tuple removal, relations are eliminated bottom-up: a leaf
// relation is joined into its parent with the optimal two-way join and the
// result is immediately ⊕-aggregated onto the attributes still needed (the
// parent connector plus the output attributes collected so far). Its load
// is O(N/p + J/p) where J is the largest intermediate join size — the
// Table 1 baseline column.

#ifndef PARJOIN_ALGORITHMS_YANNAKAKIS_H_
#define PARJOIN_ALGORITHMS_YANNAKAKIS_H_

#include <utility>
#include <vector>

#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/ops.h"

namespace parjoin {

struct YannakakisOptions {
  // Dangling-tuple removal can be skipped when the caller guarantees the
  // instance is already fully reduced (e.g. inside larger algorithms that
  // removed dangling tuples up front).
  bool remove_dangling = true;
  // When false, runs the literal 1981 algorithm: intermediate relations are
  // only projected at the very end (no aggregation pushdown). This is the
  // O(N/p + J/p) baseline with J up to the FULL join size — kept as a
  // comparison point; the default (true) is the strong [15]-style baseline
  // that aggregates after every join.
  bool aggregate_pushdown = true;
};

// Computes Q_y(R) for an arbitrary tree instance. The result schema is the
// query's output attributes (sorted); for y = {} the result is a single
// scalar tuple with an empty row (or empty if the join is empty).
template <SemiringC S>
DistRelation<S> YannakakisJoinAggregate(
    mpc::Cluster& cluster, TreeInstance<S> instance,
    const YannakakisOptions& options = {}) {
  instance.Validate();
  if (options.remove_dangling) RemoveDangling(cluster, &instance);

  const JoinTree& q = instance.query;
  if (q.num_edges() == 1) {
    return AggregateByAttrs(cluster, instance.relations[0],
                            q.output_attrs());
  }

  // Root at an output attribute when one exists.
  AttrId root = q.attrs().front();
  if (!q.output_attrs().empty()) root = q.output_attrs().front();
  const auto order = q.BottomUpOrder(root);

  // message[e]: the relation currently standing in for edge e's subtree.
  std::vector<DistRelation<S>> message(instance.relations.size());

  for (const auto& re : order) {
    DistRelation<S> current =
        std::move(instance.relations[static_cast<size_t>(re.edge_index)]);
    for (int child_edge : q.IncidentEdges(re.child_attr)) {
      if (child_edge == re.edge_index) continue;
      const auto& child = message[static_cast<size_t>(child_edge)];
      DistRelation<S> joined = TwoWayJoin(cluster, current, child);
      if (options.aggregate_pushdown) {
        // Keep both connectors (the child attribute is still needed to
        // join the remaining children) plus every output attribute.
        std::vector<AttrId> keep = {re.parent_attr, re.child_attr};
        const Schema joined_schema = joined.schema;
        for (AttrId a : joined_schema.attrs()) {
          if (a != re.parent_attr && a != re.child_attr && q.IsOutput(a)) {
            keep.push_back(a);
          }
        }
        current = AggregateByAttrs(cluster, joined, keep);
      } else {
        current = std::move(joined);  // 1981 mode: no early aggregation
      }
    }
    // All children joined: the child connector can be aggregated away
    // unless it is an output attribute.
    if (options.aggregate_pushdown && !q.IsOutput(re.child_attr)) {
      std::vector<AttrId> keep;
      for (AttrId a : current.schema.attrs()) {
        if (a != re.child_attr) keep.push_back(a);
      }
      current = AggregateByAttrs(cluster, current, keep);
    }
    message[static_cast<size_t>(re.edge_index)] = std::move(current);
  }

  // Combine the root's incident messages.
  DistRelation<S> acc;
  bool first = true;
  for (int ei : q.IncidentEdges(root)) {
    if (first) {
      acc = std::move(message[static_cast<size_t>(ei)]);
      first = false;
    } else {
      DistRelation<S> joined =
          TwoWayJoin(cluster, acc, message[static_cast<size_t>(ei)]);
      if (options.aggregate_pushdown) {
        std::vector<AttrId> keep = {root};
        for (AttrId a : joined.schema.attrs()) {
          if (a != root && q.IsOutput(a)) keep.push_back(a);
        }
        acc = AggregateByAttrs(cluster, joined, keep);
      } else {
        acc = std::move(joined);
      }
    }
  }
  return AggregateByAttrs(cluster, acc, q.output_attrs());
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_YANNAKAKIS_H_
