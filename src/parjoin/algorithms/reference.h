// Single-node reference evaluators: the correctness oracles for every MPC
// algorithm in the library.
//
//  * EvaluateBruteForce — materializes the full join Q(R) and aggregates.
//    Exponentially explicit, only for tiny instances; used to validate the
//    reference evaluator itself.
//  * EvaluateReference — Yannakakis-style variable elimination on the
//    attribute tree with early aggregation: the message sent up from a
//    subtree keeps the subtree's output attributes plus the connecting
//    attribute. Exact for any tree query and any semiring; feasible for
//    all test/bench sizes.
//
// Both ignore the MPC cost model entirely (no cluster involved).

#ifndef PARJOIN_ALGORITHMS_REFERENCE_H_
#define PARJOIN_ALGORITHMS_REFERENCE_H_

#include <map>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/query/instance.h"
#include "parjoin/query/join_tree.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

// ⊕-aggregates `rel` grouped by `group_attrs` (local, exact). Zero-weight
// groups are kept (Normalize() drops them; callers compare normalized).
template <SemiringC S>
Relation<S> LocalAggregate(const Relation<S>& rel,
                           const std::vector<AttrId>& group_attrs) {
  const std::vector<int> positions = rel.schema().PositionsOf(group_attrs);
  std::map<Row, typename S::ValueType> agg;
  for (const auto& t : rel.tuples()) {
    Row key = t.row.Select(positions);
    auto [it, inserted] = agg.emplace(std::move(key), t.w);
    if (!inserted) it->second = S::Plus(it->second, t.w);
  }
  Relation<S> out((Schema(group_attrs)));
  for (auto& [row, w] : agg) out.Add(row, w);
  return out;
}

// Local natural join of two relations (wrapper over the join kernel).
template <SemiringC S>
Relation<S> LocalJoin(const Relation<S>& a, const Relation<S>& b) {
  Relation<S> out(JoinedSchema(a.schema(), b.schema()));
  LocalJoinInto(a.schema(), a.tuples(), b.schema(), b.tuples(),
                &out.tuples());
  return out;
}

// Full-join materialization evaluator. Relations are joined root-outward
// so every step shares an attribute with the accumulated join.
template <SemiringC S>
Relation<S> EvaluateBruteForce(const JoinTree& query,
                               const std::vector<Relation<S>>& relations) {
  CHECK_EQ(static_cast<int>(relations.size()), query.num_edges());
  const AttrId root = query.attrs().front();
  auto order = query.BottomUpOrder(root);

  Relation<S> acc;
  bool first = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& rel = relations[static_cast<size_t>(it->edge_index)];
    if (first) {
      acc = rel;
      first = false;
    } else {
      acc = LocalJoin(acc, rel);
    }
  }
  Relation<S> result = LocalAggregate(acc, query.output_attrs());
  result.Normalize();
  return result;
}

// Variable-elimination evaluator. For every edge e = (child c, parent a)
// in bottom-up order, the message M_e has schema {a} ∪ (output attributes
// of the subtree under e); non-output attributes are ⊕-aggregated away as
// soon as their subtree closes.
template <SemiringC S>
Relation<S> EvaluateReference(const JoinTree& query,
                              const std::vector<Relation<S>>& relations) {
  CHECK_EQ(static_cast<int>(relations.size()), query.num_edges());

  if (query.num_edges() == 1) {
    Relation<S> result =
        LocalAggregate(relations[0], query.output_attrs());
    result.Normalize();
    return result;
  }

  // Root at an output attribute when one exists (marginally smaller
  // messages); correctness does not depend on the choice.
  AttrId root = query.attrs().front();
  if (!query.output_attrs().empty()) root = query.output_attrs().front();

  const auto order = query.BottomUpOrder(root);
  // message[e] = upward message of edge e once processed.
  std::vector<Relation<S>> message(relations.size());

  for (const auto& re : order) {
    const AttrId c = re.child_attr;
    const AttrId a = re.parent_attr;
    Relation<S> joined = relations[static_cast<size_t>(re.edge_index)];
    for (int child_edge : query.IncidentEdges(c)) {
      if (child_edge == re.edge_index) continue;
      joined = LocalJoin(joined, message[static_cast<size_t>(child_edge)]);
    }
    // Keep the parent attribute and every output attribute present.
    std::vector<AttrId> keep = {a};
    for (AttrId attr : joined.schema().attrs()) {
      if (attr != a && query.IsOutput(attr)) keep.push_back(attr);
    }
    message[static_cast<size_t>(re.edge_index)] =
        LocalAggregate(joined, keep);
  }

  // Combine the root's messages.
  Relation<S> acc;
  bool first = true;
  for (int ei : query.IncidentEdges(root)) {
    if (first) {
      acc = message[static_cast<size_t>(ei)];
      first = false;
    } else {
      acc = LocalJoin(acc, message[static_cast<size_t>(ei)]);
    }
  }
  Relation<S> result = LocalAggregate(acc, query.output_attrs());
  result.Normalize();
  return result;
}

// Convenience overloads for distributed instances (materialize locally).
template <SemiringC S>
Relation<S> EvaluateReference(const TreeInstance<S>& instance) {
  std::vector<Relation<S>> local;
  local.reserve(instance.relations.size());
  for (const auto& rel : instance.relations) local.push_back(rel.ToLocal());
  return EvaluateReference(instance.query, local);
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_REFERENCE_H_
