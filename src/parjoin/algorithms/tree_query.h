// General tree join-aggregate queries with arbitrary output attributes
// (paper §7): load O(N*OUT^{2/3}/p + (N+OUT)/p) (Theorem 6).
//
// Pipeline (TreeQueryAggregate):
//   1. dangling removal + §7 preprocessing (ReduceInstance): afterwards
//      every leaf attribute is an output attribute;
//   2. twig decomposition: the query is split at every non-leaf output
//      attribute (Figure 2); each twig has exactly its leaves as outputs;
//   3. every twig is computed — single relations, matrix multiplications,
//      lines, stars and star-like twigs by their dedicated algorithms;
//      general twigs (>= 2 attributes in more than two relations) by the
//      recursive skeleton procedure below;
//   4. the twig results join into the final output with plain Yannakakis
//      (all attributes are outputs now — free-connex, load O(OUT/p)).
//
// General twigs (§7.1): V* = attributes in more than two relations. Each
// leaf B of the V*-spanning subtree anchors a star-like subtree T_B; the
// rest is the skeleton T_S. x(b) estimates the output combinations inside
// T_B reachable from b (product of per-arm KMV branching estimates);
// y(b) under-estimates the combinations outside T_B (Algorithm 1,
// EstimateOutTree: max-over-join, product-over-children propagation over
// the skeleton). b is heavy when x(b) > y(b). Splitting every skeleton
// leaf's domain into heavy/light yields 2^|S∩ȳ| subqueries; in each
// (Lemma 13) at most one leaf is heavy, so every light leaf's T_B can be
// folded into one combined-attribute relation R(B, X_B) (its size is
// bounded by N*sqrt(OUT): Lemma 15) and the query strictly shrinks —
// recursion ends at star-like/line shapes.

#ifndef PARJOIN_ALGORITHMS_TREE_QUERY_H_
#define PARJOIN_ALGORITHMS_TREE_QUERY_H_

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/algorithms/starlike_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/query/reduce.h"

namespace parjoin {

namespace internal_tree {

// The V*-structure of a general twig.
struct SkeletonInfo {
  std::vector<AttrId> vstar;  // attributes in > 2 relations
  struct LeafTb {
    AttrId b = -1;                // a leaf of the V*-spanning subtree
    std::vector<int> tb_edges;    // edges of the star-like subtree T_B
  };
  std::vector<LeafTb> leaf_tbs;
  std::vector<int> skeleton_edges;  // all edges not in any T_B
};

// Collects the edges reachable from `start_attr` without crossing
// `blocked_edge`.
inline std::vector<int> ReachableEdges(const JoinTree& q, AttrId start_attr,
                                       int blocked_edge) {
  std::vector<int> out;
  std::set<int> seen = {blocked_edge};
  std::vector<AttrId> frontier = {start_attr};
  std::set<AttrId> visited = {start_attr};
  while (!frontier.empty()) {
    AttrId a = frontier.back();
    frontier.pop_back();
    for (int e : q.IncidentEdges(a)) {
      if (!seen.insert(e).second) continue;
      out.push_back(e);
      const AttrId next = q.edge(e).Other(a);
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return out;
}

inline SkeletonInfo AnalyzeSkeleton(const JoinTree& q) {
  SkeletonInfo info;
  info.vstar = q.HighDegreeAttrs();
  CHECK_GE(info.vstar.size(), 2u) << "general twig needs >= 2 V* attrs";
  std::set<AttrId> vstar_set(info.vstar.begin(), info.vstar.end());

  std::set<int> tb_edge_set;
  for (AttrId b : info.vstar) {
    // Directions (incident edges) whose far side contains another V* attr.
    std::vector<int> vstar_dirs;
    for (int e : q.IncidentEdges(b)) {
      const std::vector<int> beyond =
          ReachableEdges(q, q.edge(e).Other(b), e);
      bool has_vstar = false;
      auto check_edge = [&](int ei) {
        for (AttrId a : {q.edge(ei).u, q.edge(ei).v}) {
          if (a != b && vstar_set.count(a) > 0) has_vstar = true;
        }
      };
      check_edge(e);
      for (int ei : beyond) check_edge(ei);
      if (has_vstar) vstar_dirs.push_back(e);
    }
    if (vstar_dirs.size() != 1) continue;  // not a leaf of T_{V*}
    SkeletonInfo::LeafTb leaf;
    leaf.b = b;
    for (int e : q.IncidentEdges(b)) {
      if (e == vstar_dirs[0]) continue;
      leaf.tb_edges.push_back(e);
      for (int ei : ReachableEdges(q, q.edge(e).Other(b), e)) {
        leaf.tb_edges.push_back(ei);
      }
    }
    std::sort(leaf.tb_edges.begin(), leaf.tb_edges.end());
    leaf.tb_edges.erase(
        std::unique(leaf.tb_edges.begin(), leaf.tb_edges.end()),
        leaf.tb_edges.end());
    for (int e : leaf.tb_edges) tb_edge_set.insert(e);
    info.leaf_tbs.push_back(std::move(leaf));
  }
  CHECK_GE(info.leaf_tbs.size(), 2u) << "a tree has >= 2 V*-leaves";
  for (int e = 0; e < q.num_edges(); ++e) {
    if (tb_edge_set.count(e) == 0) info.skeleton_edges.push_back(e);
  }
  return info;
}

// Per-value map of (under-)estimates, computed centrally with
// modeled-linear charging (the distributed realization is the chain of
// reduce-by-key passes of §2.2 / Algorithm 1).
using EstimateMap = std::unordered_map<Value, double>;

// x(b): estimated number of output combinations inside T_B that join b —
// the product of the per-arm §2.2 branching estimates.
template <SemiringC S>
EstimateMap EstimateX(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                      const SkeletonInfo::LeafTb& leaf) {
  // T_B is star-like at leaf.b; estimate each arm independently.
  JoinTree tb = instance.query.InducedSubquery(leaf.tb_edges, {leaf.b});
  const auto arms = internal_starlike::ExtractArms(tb, leaf.b);
  EstimateMap x;
  bool first = true;
  for (const auto& arm : arms) {
    std::vector<DistRelation<S>> chain;
    for (int local_e : arm.edge_indices) {
      // arm.edge_indices index tb's edges; map back to the original edge.
      chain.push_back(
          instance.relations[static_cast<size_t>(
              leaf.tb_edges[static_cast<size_t>(local_e)])]);
    }
    OutEstimate est = EstimateChainOut(cluster, chain, arm.path, 5);
    if (first) {
      // parjoin-analyzer: order-independent(one map write per distinct key)
      for (const auto& [b, cnt] : est.per_source) {
        x[b] = static_cast<double>(cnt);
      }
      first = false;
    } else {
      EstimateMap next;
      // parjoin-analyzer: order-independent(one map write per distinct key)
      for (const auto& [b, cnt] : est.per_source) {
        auto it = x.find(b);
        if (it != x.end()) next[b] = it->second * static_cast<double>(cnt);
      }
      x = std::move(next);
    }
  }
  return x;
}

// Algorithm 1 (EstimateOutTree): propagates y-values over the skeleton
// rooted at `target`, bottom-up: a leaf C contributes y(c) = x(c)
// (x(a) = 1 for output leaves), an internal attribute multiplies, over its
// children C', the maximum y(c') among joining values. Per-edge passes
// are charged modeled-linear.
template <SemiringC S>
EstimateMap EstimateOutTree(
    mpc::Cluster& cluster, const TreeInstance<S>& instance,
    const SkeletonInfo& info,
    const std::unordered_map<AttrId, const EstimateMap*>& x_of_leaf,
    AttrId target) {
  std::vector<QueryEdge> sk_edges;
  for (int e : info.skeleton_edges) sk_edges.push_back(instance.query.edge(e));
  JoinTree skeleton(sk_edges, {});
  const auto order = skeleton.BottomUpOrder(target);

  // y per attribute; an entry missing means "no (non-dangling) value".
  std::unordered_map<AttrId, EstimateMap> y;
  auto leaf_y = [&](AttrId attr) {
    EstimateMap out;
    auto it = x_of_leaf.find(attr);
    if (it != x_of_leaf.end()) return *it->second;  // V*-leaf: y = x
    // Output leaf: x = 1 for every value it holds.
    for (int e : info.skeleton_edges) {
      const auto& rel = instance.relations[static_cast<size_t>(e)];
      const int pos = rel.schema.IndexOf(attr);
      if (pos < 0) continue;
      rel.data.ForEach([&](const Tuple<S>& t) { out[t.row[pos]] = 1.0; });
    }
    return out;
  };

  for (const auto& re : order) {
    const AttrId child = re.child_attr;
    if (y.find(child) == y.end() && skeleton.Degree(child) == 1) {
      y[child] = leaf_y(child);
    }
    // Propagate child -> parent over the original relation of this edge.
    const int orig_edge = info.skeleton_edges[static_cast<size_t>(
        re.edge_index)];
    const auto& rel = instance.relations[static_cast<size_t>(orig_edge)];
    const int c_pos = rel.schema.IndexOf(child);
    const int p_pos = rel.schema.IndexOf(re.parent_attr);
    CHECK_GE(c_pos, 0);
    CHECK_GE(p_pos, 0);
    cluster.ChargeUniformRound(
        (rel.TotalSize() + cluster.p() - 1) / cluster.p());

    EstimateMap z;  // per parent value: max over joining child values
    const EstimateMap& yc = y[child];
    rel.data.ForEach([&](const Tuple<S>& t) {
      auto it = yc.find(t.row[c_pos]);
      if (it == yc.end()) return;
      auto [slot, inserted] = z.emplace(t.row[p_pos], it->second);
      if (!inserted) slot->second = std::max(slot->second, it->second);
    });
    // Multiply into the parent (intersecting with earlier children).
    auto pit = y.find(re.parent_attr);
    if (pit == y.end()) {
      y[re.parent_attr] = std::move(z);
    } else {
      EstimateMap merged;
      // parjoin-analyzer: order-independent(one map write per distinct key)
      for (const auto& [v, val] : z) {
        auto old = pit->second.find(v);
        if (old != pit->second.end()) merged[v] = old->second * val;
      }
      pit->second = std::move(merged);
    }
  }
  return y[target];
}

}  // namespace internal_tree

template <SemiringC S>
DistRelation<S> TreeQueryAggregate(mpc::Cluster& cluster,
                                   TreeInstance<S> instance);

namespace internal_tree {

// Computes one twig (all leaves are outputs). Dispatches on shape; the
// general case runs the §7.1 skeleton recursion.
template <SemiringC S>
DistRelation<S> ComputeTwig(mpc::Cluster& cluster, TreeInstance<S> instance) {
  const std::vector<AttrId> outputs = instance.query.output_attrs();
  const QueryShape shape = instance.query.Classify();
  switch (shape) {
    case QueryShape::kSingleEdge:
      return AggregateByAttrs(cluster, instance.relations[0], outputs);
    case QueryShape::kMatMul:
    case QueryShape::kLine: {
      DistRelation<S> r = LineQueryAggregate(cluster, std::move(instance));
      return internal_star::ProjectLocal(r, outputs);
    }
    case QueryShape::kStar:
    case QueryShape::kStarLike: {
      DistRelation<S> r = StarLikeAggregate(cluster, std::move(instance));
      return internal_star::ProjectLocal(r, outputs);
    }
    case QueryShape::kFreeConnex: {
      // Prior work's case ([14] achieves the optimal bound; the baseline
      // Yannakakis is within the scope the paper assumes for it).
      DistRelation<S> r = YannakakisJoinAggregate(cluster, std::move(instance));
      return internal_star::ProjectLocal(r, outputs);
    }
    case QueryShape::kTree:
      break;
  }

  // --- General twig: skeleton divide & conquer. ---
  RemoveDangling(cluster, &instance);
  DistRelation<S> empty;
  empty.schema = Schema(outputs);
  empty.data = mpc::Dist<Tuple<S>>(cluster.p());
  for (const auto& rel : instance.relations) {
    if (rel.TotalSize() == 0) return empty;
  }

  const SkeletonInfo info = AnalyzeSkeleton(instance.query);
  const int k = static_cast<int>(info.leaf_tbs.size());
  CHECK_LE(k, 10) << "V*-leaf count is a query constant";

  // x(b) and y(b) per V*-leaf.
  std::vector<EstimateMap> x(static_cast<size_t>(k));
  std::unordered_map<AttrId, const EstimateMap*> x_of_leaf;
  mpc::ParallelRegion x_region(cluster);
  for (int l = 0; l < k; ++l) {
    x_region.NextBranch();
    x[static_cast<size_t>(l)] = EstimateX(
        cluster, instance, info.leaf_tbs[static_cast<size_t>(l)]);
    x_of_leaf[info.leaf_tbs[static_cast<size_t>(l)].b] =
        &x[static_cast<size_t>(l)];
  }
  std::vector<EstimateMap> y(static_cast<size_t>(k));
  for (int l = 0; l < k; ++l) {
    y[static_cast<size_t>(l)] = EstimateOutTree(
        cluster, instance, info, x_of_leaf,
        info.leaf_tbs[static_cast<size_t>(l)].b);
  }

  // Fresh attr ids for the per-leaf combined outputs.
  AttrId max_attr = 0;
  for (AttrId a : instance.query.attrs()) max_attr = std::max(max_attr, a);

  std::vector<DistRelation<S>> results;
  mpc::ParallelRegion pattern_region(cluster);
  for (int pattern = 0; pattern < (1 << k); ++pattern) {
    pattern_region.NextBranch();
    // Filter every relation touching leaf B_l by its heavy/light class.
    TreeInstance<S> sub{instance.query, instance.relations};
    for (int l = 0; l < k; ++l) {
      const AttrId b_attr = info.leaf_tbs[static_cast<size_t>(l)].b;
      const bool want_heavy = (pattern >> l) & 1;
      const auto& xl = x[static_cast<size_t>(l)];
      const auto& yl = y[static_cast<size_t>(l)];
      auto is_heavy = [&](Value b) {
        auto xi = xl.find(b);
        auto yi = yl.find(b);
        const double xv = xi == xl.end() ? 1.0 : xi->second;
        const double yv = yi == yl.end() ? 1.0 : yi->second;
        return xv > yv;
      };
      for (int e : instance.query.IncidentEdges(b_attr)) {
        auto& rel = sub.relations[static_cast<size_t>(e)];
        const int pos = rel.schema.IndexOf(b_attr);
        for (auto& part : rel.data.parts()) {
          std::vector<Tuple<S>> kept;
          for (auto& t : part) {
            if (is_heavy(t.row[pos]) == want_heavy) {
              kept.push_back(std::move(t));
            }
          }
          part = std::move(kept);
        }
      }
    }
    cluster.ChargeUniformRound(
        (instance.TotalInputSize() + cluster.p() - 1) / cluster.p());
    RemoveDangling(cluster, &sub);
    bool any_empty = false;
    for (const auto& rel : sub.relations) {
      if (rel.TotalSize() == 0) any_empty = true;
    }
    if (any_empty) continue;

    // Fold the light leaves' T_B subtrees. Lemma 13: at least one light
    // leaf exists in every non-empty subquery; if the estimates ever
    // disagree, fold everything (correct, possibly more load).
    std::vector<int> light;
    for (int l = 0; l < k; ++l) {
      if (((pattern >> l) & 1) == 0) light.push_back(l);
    }
    if (light.empty()) {
      LOG(WARNING) << "all-heavy subquery non-empty (estimate noise); "
                      "folding every leaf";
      for (int l = 0; l < k; ++l) light.push_back(l);
    }

    // Build the residual query: folded T_Bs are replaced by one edge
    // (B, X_B) each.
    std::vector<QueryEdge> new_edges;
    std::vector<DistRelation<S>> new_rels;
    std::vector<AttrId> new_outputs;
    std::set<int> folded_edges;
    std::vector<std::pair<AttrId, DistRelation<S>>> dictionaries;
    std::set<AttrId> folded_outputs;

    bool subquery_empty = false;
    for (size_t li = 0; li < light.size(); ++li) {
      const auto& leaf =
          info.leaf_tbs[static_cast<size_t>(light[li])];
      for (int e : leaf.tb_edges) folded_edges.insert(e);

      // Shrink the star-like T_B into R(B, endpoints...), then combine.
      JoinTree tb = instance.query.InducedSubquery(leaf.tb_edges, {leaf.b});
      const auto arms = internal_starlike::ExtractArms(tb, leaf.b);
      DistRelation<S> acc;
      bool first = true;
      std::vector<AttrId> endpoints;
      for (const auto& arm : arms) {
        std::vector<DistRelation<S>> arm_rels;
        for (int local_e : arm.edge_indices) {
          arm_rels.push_back(sub.relations[static_cast<size_t>(
              leaf.tb_edges[static_cast<size_t>(local_e)])]);
        }
        DistRelation<S> shrunk =
            internal_starlike::ShrinkArm(cluster, arm, std::move(arm_rels));
        endpoints.push_back(arm.endpoint());
        if (first) {
          acc = std::move(shrunk);
          first = false;
        } else {
          acc = TwoWayJoin(cluster, acc, shrunk);
        }
      }
      if (acc.TotalSize() == 0) {
        subquery_empty = true;
        break;
      }
      for (AttrId a : endpoints) folded_outputs.insert(a);
      const AttrId x_attr =
          max_attr + 1 + static_cast<AttrId>(light[li]);
      CombinedRelation<S> combined =
          CombineAttrs(cluster, acc, endpoints, x_attr);
      new_edges.push_back({leaf.b, x_attr});
      new_rels.push_back(std::move(combined.binary));
      new_outputs.push_back(x_attr);
      dictionaries.push_back({x_attr, std::move(combined.dictionary)});
    }
    if (subquery_empty) continue;

    for (int e = 0; e < instance.query.num_edges(); ++e) {
      if (folded_edges.count(e) > 0) continue;
      new_edges.push_back(instance.query.edge(e));
      new_rels.push_back(std::move(sub.relations[static_cast<size_t>(e)]));
    }
    for (AttrId a : instance.query.output_attrs()) {
      if (folded_outputs.count(a) == 0) new_outputs.push_back(a);
    }

    TreeInstance<S> residual{JoinTree(std::move(new_edges), new_outputs),
                             std::move(new_rels)};
    DistRelation<S> r = ComputeTwig(cluster, std::move(residual));
    if (r.TotalSize() == 0) continue;
    for (auto& [x_attr, dict] : dictionaries) {
      r = ExpandAttrs(cluster, r, dict, x_attr);
    }
    results.push_back(internal_star::ProjectLocal(r, outputs));
  }

  return internal_star::ReduceUnion(cluster, std::move(results),
                                    Schema(outputs));
}

}  // namespace internal_tree

// The §7 algorithm for arbitrary tree join-aggregate queries.
template <SemiringC S>
DistRelation<S> TreeQueryAggregate(mpc::Cluster& cluster,
                                   TreeInstance<S> instance) {
  instance.Validate();
  const std::vector<AttrId> outputs = instance.query.output_attrs();
  RemoveDangling(cluster, &instance);
  ReduceInstance(cluster, &instance);

  if (instance.query.num_edges() == 1) {
    return AggregateByAttrs(cluster, instance.relations[0], outputs);
  }

  const auto twigs = instance.query.DecomposeIntoTwigs();
  std::vector<DistRelation<S>> twig_results;
  std::vector<std::vector<AttrId>> twig_attrs;
  for (const auto& twig : twigs) {
    JoinTree sub = instance.query.InducedSubquery(twig.edge_indices,
                                                  twig.boundary_attrs);
    TreeInstance<S> sub_instance{sub, {}};
    for (int e : twig.edge_indices) {
      sub_instance.relations.push_back(
          instance.relations[static_cast<size_t>(e)]);
    }
    DistRelation<S> result =
        internal_tree::ComputeTwig(cluster, std::move(sub_instance));
    twig_attrs.push_back(result.schema.attrs());
    twig_results.push_back(std::move(result));
  }

  // Join the twig results (everything is an output attribute now): plain
  // Yannakakis over the twig tree, connected order so each join shares
  // exactly one attribute.
  const int t = static_cast<int>(twig_results.size());
  std::vector<bool> joined(static_cast<size_t>(t), false);
  DistRelation<S> acc = std::move(twig_results[0]);
  joined[0] = true;
  int remaining = t - 1;
  while (remaining > 0) {
    bool progress = false;
    for (int i = 0; i < t; ++i) {
      if (joined[static_cast<size_t>(i)]) continue;
      const std::vector<AttrId> common =
          acc.schema.CommonAttrs(twig_results[static_cast<size_t>(i)].schema);
      if (common.empty()) continue;
      acc = TwoWayJoin(cluster, acc,
                       twig_results[static_cast<size_t>(i)]);
      joined[static_cast<size_t>(i)] = true;
      --remaining;
      progress = true;
    }
    CHECK(progress) << "twig join graph disconnected";
  }
  return AggregateByAttrs(cluster, acc, outputs);
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_TREE_QUERY_H_
