// The optimal MPC two-way join [Beame, Koutris, Suciu '14; Hu, Tao, Yi '17]
// with load O(N/p + sqrt(J/p)) where J = |R ⋈ S|, used as the join kernel
// of the distributed Yannakakis baseline (§1.4).
//
// Skew handling: for each join value b, let d_r(b), d_s(b) be its degrees.
// Values with d_r(b)*d_s(b) > J/p are heavy: each gets its own grid of
// virtual servers (R-tuples partitioned over grid rows and replicated
// across columns, S-tuples the reverse), sized so every grid server
// receives O(sqrt(J/p)) tuples. Light values are hash-partitioned. All
// routing decisions come from broadcast degree statistics; the whole join
// takes O(1) rounds.

#ifndef PARJOIN_ALGORITHMS_TWO_WAY_JOIN_H_
#define PARJOIN_ALGORITHMS_TWO_WAY_JOIN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "parjoin/common/checked_math.h"
#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

namespace internal_join {

// Grid placement of one heavy join value.
struct HeavyGrid {
  int base = 0;    // first virtual server of the grid
  int rows = 1;    // R-side partitions
  int cols = 1;    // S-side partitions
};

}  // namespace internal_join

struct TwoWayJoinOptions {
  // Ablation switch: when false, heavy join values are NOT given grids and
  // everything is hash-partitioned — the naive join whose load degrades to
  // the maximum degree product. Used by bench_ablation to quantify what
  // the skew handling buys; never disable in real use.
  bool handle_skew = true;
};

// Joins r and s on their (single) common attribute. The result is spread
// over p + (heavy virtual servers) parts; annotations are ⊗-multiplied.
template <SemiringC S>
DistRelation<S> TwoWayJoin(mpc::Cluster& cluster, const DistRelation<S>& r,
                           const DistRelation<S>& s,
                           const TwoWayJoinOptions& options = {}) {
  const std::vector<AttrId> key = r.schema.CommonAttrs(s.schema);
  CHECK_EQ(key.size(), 1u)
      << "TwoWayJoin expects a single shared attribute; combine attributes "
         "first (AttrCombiner) for wider keys";
  const AttrId attr = key[0];
  const int r_pos = r.schema.IndexOf(attr);
  const int s_pos = s.schema.IndexOf(attr);
  const int p = cluster.p();

  // Degree statistics for both sides, co-partitioned by value.
  mpc::Dist<ValueCount> dr = DegreesByAttr(cluster, r, attr);
  mpc::Dist<ValueCount> ds = DegreesByAttr(cluster, s, attr);
  auto route_value = [&](Value v) {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(v) ^ 0x2b7e) %
                            static_cast<std::uint64_t>(p));
  };
  mpc::Dist<ValueCount> dr_parted = mpc::Exchange(
      cluster, dr, p, [&](const ValueCount& vc) { return route_value(vc.value); });
  mpc::Dist<ValueCount> ds_parted = mpc::Exchange(
      cluster, ds, p, [&](const ValueCount& vc) { return route_value(vc.value); });

  // J = Σ_b d_r(b) * d_s(b); candidate heavy pairs collected per part.
  std::int64_t join_size = 0;
  std::vector<std::pair<Value, std::pair<std::int64_t, std::int64_t>>> pairs;
  for (int part = 0; part < p; ++part) {
    std::unordered_map<Value, std::int64_t> dr_map;
    for (const auto& vc : dr_parted.part(part)) dr_map[vc.value] = vc.count;
    for (const auto& vc : ds_parted.part(part)) {
      auto it = dr_map.find(vc.value);
      if (it == dr_map.end()) continue;
      // Degree products on skewed instances can exceed int64; a wrapped J
      // would corrupt the heavy threshold, so overflow aborts loudly.
      join_size = CheckedAdd(join_size, CheckedMul(it->second, vc.count));
      pairs.push_back({vc.value, {it->second, vc.count}});
    }
  }
  // The scalar J and the (at most p) heavy entries are made known to every
  // server: one small broadcast round.
  const std::int64_t heavy_threshold =
      std::max<std::int64_t>(1, join_size / std::max(1, p));
  std::unordered_map<Value, internal_join::HeavyGrid> heavy;
  int next_virtual = p;  // virtual servers [0, p) host the light region
  if (!options.handle_skew) pairs.clear();  // ablation: no grids
  for (const auto& [value, degs] : pairs) {
    const auto [deg_r, deg_s] = degs;
    const std::int64_t prod = CheckedMul(deg_r, deg_s);
    if (prod <= heavy_threshold) continue;
    // ceil(prod / threshold) without the `prod + threshold - 1` overflow.
    const std::int64_t pb =
        prod / heavy_threshold + (prod % heavy_threshold != 0 ? 1 : 0);
    internal_join::HeavyGrid grid;
    const double ratio = static_cast<double>(deg_r) /
                         std::max<double>(1.0, static_cast<double>(deg_s));
    grid.rows = std::clamp<int>(
        static_cast<int>(std::llround(
            std::sqrt(static_cast<double>(pb) * ratio))),
        1, static_cast<int>(pb));
    grid.cols = static_cast<int>((pb + grid.rows - 1) / grid.rows);
    grid.base = next_virtual;
    next_virtual += grid.rows * grid.cols;
    heavy[value] = grid;
  }
  cluster.ChargeUniformRound(static_cast<std::int64_t>(heavy.size()) + 1);

  // Route both relations: light values hash; heavy values replicate into
  // their grid (rows for R, columns for S).
  const int num_virtual = next_virtual;
  auto r_routed = mpc::ExchangeMulti(
      cluster, r.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        const Value v = t.row[r_pos];
        auto it = heavy.find(v);
        if (it == heavy.end()) {
          dests->push_back(route_value(v));
          return;
        }
        const auto& g = it->second;
        const int row = static_cast<int>(
            t.row.Hash(0x9d2c) % static_cast<std::uint64_t>(g.rows));
        for (int col = 0; col < g.cols; ++col) {
          dests->push_back(g.base + row * g.cols + col);
        }
      });
  auto s_routed = mpc::ExchangeMulti(
      cluster, s.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        const Value v = t.row[s_pos];
        auto it = heavy.find(v);
        if (it == heavy.end()) {
          dests->push_back(route_value(v));
          return;
        }
        const auto& g = it->second;
        const int col = static_cast<int>(
            t.row.Hash(0x77f1) % static_cast<std::uint64_t>(g.cols));
        for (int row = 0; row < g.rows; ++row) {
          dests->push_back(g.base + row * g.cols + col);
        }
      });

  // Local joins on every (virtual) server.
  DistRelation<S> out;
  out.schema = JoinedSchema(r.schema, s.schema);
  out.data = mpc::Dist<Tuple<S>>(num_virtual);
  ParallelFor(num_virtual, [&](int part) {
    LocalJoinInto(r.schema, r_routed.part(part), s.schema,
                  s_routed.part(part), &out.data.part(part));
  });
  return out;
}

// One Yannakakis step: join then ⊕-aggregate onto `group_attrs`
// ("replace R_e' by the aggregate of R_e ⋈ R_e'", §1.2).
template <SemiringC S>
DistRelation<S> JoinAggregate(mpc::Cluster& cluster, const DistRelation<S>& r,
                              const DistRelation<S>& s,
                              const std::vector<AttrId>& group_attrs) {
  DistRelation<S> joined = TwoWayJoin(cluster, r, s);
  return AggregateByAttrs(cluster, joined, group_attrs);
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_TWO_WAY_JOIN_H_
