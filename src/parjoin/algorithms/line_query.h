// Line queries (paper §4):
//   ∑_{A2..An} R1(A1,A2) ⋈ R2(A2,A3) ⋈ ... ⋈ Rn(An,An+1)
// with load O((N*OUT/p)^{2/3} + N*sqrt(OUT)/p + (N+OUT)/p) (Theorem 4).
//
// Recursive structure: after dangling removal and the §2.2 OUT estimate,
// values of A2 with degree >= sqrt(OUT) in R1 are heavy.
//   Q_heavy: every value reachable from a heavy A2 joins >= sqrt(OUT)
//     distinct A1 values (Lemma 4), so the right-to-left Yannakakis fold
//     R(A_i, A_{n+1}) stays below N*sqrt(OUT); the final step is one
//     matrix multiplication R1(A1, A2_heavy) x R(A2_heavy, A_{n+1}).
//   Q_light: R1 ⋈ R2 restricted to light A2 has at most N*sqrt(OUT)
//     results; aggregating A2 away gives R(A1, A3) and a line query that
//     is one relation shorter — recurse.
// The two result sets may overlap on (A1, A_{n+1}); a final reduce-by-key
// combines them.

#ifndef PARJOIN_ALGORITHMS_LINE_QUERY_H_
#define PARJOIN_ALGORITHMS_LINE_QUERY_H_

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/common/logging.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/ops.h"
#include "parjoin/sketch/out_estimate.h"

namespace parjoin {

namespace internal_line {

// Concatenates two result sets over the same schema (no communication —
// results stay where they were produced) and reduce-by-keys them into p
// parts (the §4 Step 4 aggregation; charged).
template <SemiringC S>
DistRelation<S> CombineResults(mpc::Cluster& cluster, DistRelation<S> a,
                               DistRelation<S> b) {
  if (a.TotalSize() == 0) return b;
  if (b.TotalSize() == 0) return a;
  CHECK(a.schema == b.schema);
  mpc::Dist<Tuple<S>> merged(a.data.num_parts() + b.data.num_parts());
  for (int s = 0; s < a.data.num_parts(); ++s) {
    merged.part(s) = std::move(a.data.part(s));
  }
  for (int s = 0; s < b.data.num_parts(); ++s) {
    // Part relabeling by a constant offset: every tuple stays on the
    // server that produced it, so no exchange (and no charge) is due.
    // parjoin-lint: allow(cross-part-write): relabeling, no boundary cross
    merged.part(a.data.num_parts() + s) = std::move(b.data.part(s));
  }
  DistRelation<S> out;
  out.schema = a.schema;
  out.data = mpc::ReduceByKey(
      cluster, std::move(merged),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      cluster.p());
  return out;
}

// Core recursion. `rels[i]` must contain attributes path[i], path[i+1];
// dangling tuples must have been removed. Output schema (path[0],
// path.back()).
template <SemiringC S>
DistRelation<S> LineQueryRec(mpc::Cluster& cluster,
                             std::vector<DistRelation<S>> rels,
                             std::vector<AttrId> path) {
  const int n = static_cast<int>(rels.size());
  CHECK_EQ(path.size(), rels.size() + 1);
  const std::vector<AttrId> outputs = {path.front(), path.back()};

  if (n == 1) {
    return AggregateByAttrs(cluster, rels[0], outputs);
  }
  if (n == 2) {
    MatMulOptions options;
    options.remove_dangling = false;  // invariant: already reduced
    return MatMul(cluster, std::move(rels[0]), std::move(rels[1]), options);
  }

  // §2.2 estimate of OUT (also supplies per-A1 counts, unused here).
  const OutEstimate est = EstimateChainOut(cluster, rels, path);
  const std::int64_t out_est = std::max<std::int64_t>(1, est.total);
  const std::int64_t heavy_threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(std::sqrt(static_cast<double>(out_est)))));

  // Step 1: heavy A2 values by degree in R1.
  const int a2_pos0 = rels[0].schema.IndexOf(path[1]);
  const int a2_pos1 = rels[1].schema.IndexOf(path[1]);
  mpc::Dist<ValueCount> deg_a2 = DegreesByAttr(cluster, rels[0], path[1]);
  const std::unordered_map<Value, std::int64_t> heavy_a2 =
      CollectStatsAtLeast(cluster, deg_a2, heavy_threshold);

  auto split = [&](const DistRelation<S>& rel, int pos) {
    std::pair<DistRelation<S>, DistRelation<S>> hl;  // (heavy, light)
    hl.first.schema = hl.second.schema = rel.schema;
    hl.first.data = mpc::Dist<Tuple<S>>(rel.data.num_parts());
    hl.second.data = mpc::Dist<Tuple<S>>(rel.data.num_parts());
    for (int s = 0; s < rel.data.num_parts(); ++s) {
      for (const auto& t : rel.data.part(s)) {
        const bool heavy = heavy_a2.count(t.row[pos]) > 0;
        (heavy ? hl.first : hl.second).data.part(s).push_back(t);
      }
    }
    return hl;
  };
  auto [r1_heavy, r1_light] = split(rels[0], a2_pos0);
  auto [r2_heavy, r2_light] = split(rels[1], a2_pos1);

  // Step 2: Q_heavy — fold right-to-left, then one matrix multiplication.
  DistRelation<S> heavy_result;
  heavy_result.schema = Schema{path.front(), path.back()};
  heavy_result.data = mpc::Dist<Tuple<S>>(cluster.p());
  if (r1_heavy.TotalSize() > 0 && r2_heavy.TotalSize() > 0) {
    // Re-reduce the heavy subquery (light-only continuations dangle now).
    std::vector<QueryEdge> edges;
    for (int i = 0; i < n; ++i) edges.push_back({path[static_cast<size_t>(i)],
                                                 path[static_cast<size_t>(i) + 1]});
    TreeInstance<S> heavy_instance{JoinTree(edges, outputs), {}};
    heavy_instance.relations.push_back(std::move(r1_heavy));
    heavy_instance.relations.push_back(std::move(r2_heavy));
    for (int i = 2; i < n; ++i) {
      heavy_instance.relations.push_back(rels[static_cast<size_t>(i)]);
    }
    RemoveDangling(cluster, &heavy_instance);

    if (heavy_instance.relations[0].TotalSize() > 0) {
      // (2.1) R(A_i, A_{n+1}) for i = n-1 .. 2 via Yannakakis steps.
      DistRelation<S> fold =
          std::move(heavy_instance.relations[static_cast<size_t>(n) - 1]);
      for (int i = n - 2; i >= 1; --i) {
        fold = JoinAggregate(cluster,
                             heavy_instance.relations[static_cast<size_t>(i)],
                             fold, {path[static_cast<size_t>(i)], path.back()});
      }
      // (2.2) reduce to matrix multiplication (output-sensitive, §3.2).
      MatMulOptions options;
      options.remove_dangling = false;
      options.strategy = MatMulStrategy::kOutputSensitive;
      heavy_result = MatMul(cluster, std::move(heavy_instance.relations[0]),
                            std::move(fold), options);
    }
  }

  // Step 3: Q_light — shrink by one relation and recurse.
  DistRelation<S> light_result;
  light_result.schema = Schema{path.front(), path.back()};
  light_result.data = mpc::Dist<Tuple<S>>(cluster.p());
  if (r1_light.TotalSize() > 0 && r2_light.TotalSize() > 0) {
    DistRelation<S> r13 = JoinAggregate(cluster, r1_light, r2_light,
                                        {path[0], path[2]});
    std::vector<DistRelation<S>> rest;
    rest.push_back(std::move(r13));
    for (int i = 2; i < n; ++i) {
      rest.push_back(std::move(rels[static_cast<size_t>(i)]));
    }
    std::vector<AttrId> rest_path(path.begin() + 2, path.end());
    rest_path.insert(rest_path.begin(), path[0]);
    light_result =
        LineQueryRec(cluster, std::move(rest), std::move(rest_path));
  }

  // Step 4: the two subqueries may share (A1, A_{n+1}) groups.
  return CombineResults(cluster, std::move(heavy_result),
                        std::move(light_result));
}

}  // namespace internal_line

// Entry point: computes a line query (IsPath with both endpoints output).
// Removes dangling tuples, orients the path, and runs the §4 recursion.
template <SemiringC S>
DistRelation<S> LineQueryAggregate(mpc::Cluster& cluster,
                                   TreeInstance<S> instance) {
  instance.Validate();
  std::vector<AttrId> path;
  CHECK(instance.query.IsPath(&path)) << "not a line query";
  CHECK_EQ(instance.query.output_attrs().size(), 2u);
  CHECK(instance.query.IsOutput(path.front()) &&
        instance.query.IsOutput(path.back()));

  RemoveDangling(cluster, &instance);

  // Align relations with consecutive path edges.
  std::vector<DistRelation<S>> rels(instance.relations.size());
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    bool found = false;
    for (int e = 0; e < instance.query.num_edges(); ++e) {
      const QueryEdge& edge = instance.query.edge(e);
      if ((edge.u == path[i] && edge.v == path[i + 1]) ||
          (edge.v == path[i] && edge.u == path[i + 1])) {
        rels[i] = std::move(instance.relations[static_cast<size_t>(e)]);
        found = true;
        break;
      }
    }
    CHECK(found);
  }
  return internal_line::LineQueryRec(cluster, std::move(rels),
                                     std::move(path));
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_LINE_QUERY_H_
