// HyperCube full-join + aggregate — the third approach discussed in §1.4.
//
// Worst-case optimal MPC algorithms [Ketsman & Suciu '17; Tao '20; Koutris
// et al. '16] compute the FULL join in one round by arranging the p
// servers into a grid with one dimension ("share") per attribute: server
// coordinates are (h_1(x_1 bucket), ..., h_m(x_m bucket)); every tuple is
// replicated to all servers that agree with it on its own attributes.
// For join-aggregate queries one then aggregates the materialized full
// join — the paper notes that this aggregation costs O(OUT_f / p) for
// OUT_f = |full join| >= J, making the naive composition "no better than
// the Yannakakis algorithm". This implementation aggregates each grid
// cell LOCALLY before the global reduce (any sane implementation would),
// which blunts the OUT_f bottleneck on benign data — but the replication
// load of the shares themselves still loses decisively to Theorem 1 on
// small-OUT instances, which is what the tests/benches demonstrate.
//
// Shares: equal shares p_x = floor(p^{1/m}) per attribute (the textbook
// configuration; optimizing shares per relation sizes does not change the
// aggregation bottleneck that the comparison targets).

#ifndef PARJOIN_ALGORITHMS_HYPERCUBE_H_
#define PARJOIN_ALGORITHMS_HYPERCUBE_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/ops.h"

namespace parjoin {

// Computes Q_y(R) by materializing the full join on a HyperCube grid and
// aggregating. Correct for any tree instance; load is dominated by
// O(OUT_f / p) in the aggregation (plus the replication load of the
// one-round join itself).
template <SemiringC S>
DistRelation<S> HyperCubeJoinAggregate(mpc::Cluster& cluster,
                                       TreeInstance<S> instance,
                                       bool remove_dangling = true) {
  instance.Validate();
  if (remove_dangling) RemoveDangling(cluster, &instance);
  const JoinTree& q = instance.query;
  const std::vector<AttrId>& attrs = q.attrs();
  const int m = static_cast<int>(attrs.size());
  const int p = cluster.p();

  if (q.num_edges() == 1) {
    return AggregateByAttrs(cluster, instance.relations[0],
                            q.output_attrs());
  }

  // Equal shares: share >= 1 per attribute, grid size <= p... but never
  // below 1 per dimension. The grid uses share^m virtual servers
  // (<= p after flooring; at least 1).
  const int share = std::max(
      1, static_cast<int>(std::floor(std::pow(static_cast<double>(p),
                                              1.0 / m))));
  int grid_size = 1;
  for (int i = 0; i < m; ++i) grid_size *= share;
  const SeededHash bucket_hash(cluster.rng().Next());
  auto bucket_of = [&](Value v) {
    return static_cast<int>(bucket_hash(static_cast<std::uint64_t>(v)) %
                            static_cast<std::uint64_t>(share));
  };
  // Attribute -> grid dimension stride.
  std::vector<int> stride(static_cast<size_t>(m), 1);
  for (int i = 1; i < m; ++i) {
    stride[static_cast<size_t>(i)] = stride[static_cast<size_t>(i) - 1] * share;
  }
  auto dim_of = [&](AttrId a) {
    for (int i = 0; i < m; ++i) {
      if (attrs[static_cast<size_t>(i)] == a) return i;
    }
    LOG(FATAL) << "unknown attribute " << a;
    return -1;
  };

  // Route every relation: a tuple fixes its own attributes' coordinates
  // and is replicated across all remaining dimensions.
  std::vector<mpc::Dist<Tuple<S>>> routed;
  routed.reserve(instance.relations.size());
  for (const auto& rel : instance.relations) {
    const int dim_u = dim_of(rel.schema.attr(0));
    const int dim_v = dim_of(rel.schema.attr(1));
    routed.push_back(mpc::ExchangeMulti(
        cluster, rel.data, grid_size,
        [&](const Tuple<S>& t, std::vector<int>* dests) {
          const int cu = bucket_of(t.row[0]);
          const int cv = bucket_of(t.row[1]);
          // Enumerate all grid cells with coordinates cu, cv fixed.
          const int free_dims = m - 2;
          int combos = 1;
          for (int i = 0; i < free_dims; ++i) combos *= share;
          for (int c = 0; c < combos; ++c) {
            int cell = cu * stride[static_cast<size_t>(dim_u)] +
                       cv * stride[static_cast<size_t>(dim_v)];
            int rest = c;
            for (int dim = 0; dim < m; ++dim) {
              if (dim == dim_u || dim == dim_v) continue;
              cell += (rest % share) * stride[static_cast<size_t>(dim)];
              rest /= share;
            }
            dests->push_back(cell);
          }
        }));
  }

  // Local full join per grid cell, in the root-outward edge order so each
  // step shares an attribute with the accumulated join; then local
  // aggregation by the output attributes (free), and a global
  // reduce-by-key whose input is the materialized full join's aggregated
  // shards — the OUT_f-driven bottleneck.
  const AttrId root = q.attrs().front();
  const auto order = q.BottomUpOrder(root);
  mpc::Dist<Tuple<S>> partials(grid_size);
  const std::vector<AttrId> outputs = q.output_attrs();
  ParallelFor(grid_size, [&](int cell) {
    Relation<S> acc;
    bool first = true;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto& part = routed[static_cast<size_t>(it->edge_index)];
      const Schema& schema =
          instance.relations[static_cast<size_t>(it->edge_index)].schema;
      if (first) {
        acc = Relation<S>(schema, part.part(cell));
        first = false;
      } else {
        Relation<S> next(JoinedSchema(acc.schema(), schema));
        LocalJoinInto(acc.schema(), acc.tuples(), schema, part.part(cell),
                      &next.tuples());
        acc = std::move(next);
      }
      if (acc.size() == 0) return;
    }
    // Local aggregation onto the output attributes.
    const auto positions = acc.schema().PositionsOf(outputs);
    std::unordered_map<Row, typename S::ValueType, RowHash> agg;
    for (const auto& t : acc.tuples()) {
      Row key = t.row.Select(positions);
      auto [slot, inserted] = agg.emplace(std::move(key), t.w);
      if (!inserted) slot->second = S::Plus(slot->second, t.w);
    }
    auto& sink = partials.part(cell);
    sink.reserve(agg.size());
    // Sorted so the partial order each cell emits (and hence the merge
    // order in the reduce) is a function of the data alone.
    for (auto& [row, w] : SortedEntries(agg)) {
      sink.push_back(Tuple<S>{std::move(row), w});
    }
  });

  // A grid cell may double-count a join result when the hash buckets of
  // two different cells coincide on every attribute of the result — they
  // cannot: a full join result fixes a bucket per attribute, hence
  // exactly one cell produces it. The reduce below only merges partial
  // groups split across cells by non-output attribute coordinates.
  DistRelation<S> out;
  out.schema = Schema(outputs);
  out.data = mpc::ReduceByKey(
      cluster, std::move(partials),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      p);
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_HYPERCUBE_H_
