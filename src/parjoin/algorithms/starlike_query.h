// Star-like queries (paper §6): n line-query "arms" T_1..T_n sharing one
// non-output attribute B; arm endpoints A_i are the output attributes.
// Load O((N*N')^{1/3}*OUT^{1/2}/p^{2/3} + N'^{2/3}*OUT^{1/3}/p^{2/3}
//        + N*OUT^{2/3}/p + (N+N'+OUT)/p) (Lemma 7); the building block of
// the §7 tree algorithm.
//
// Like the star algorithm, it is oblivious to OUT. Per value b of B, the
// arms are ordered by their (KMV-estimated) branching d_i(b) = #distinct
// A_i values reachable from b; the permutation φ_b plus the predicate
// Π_{i<n} d_φ(i)(b) <= d_φ(n)(b) split dom(B) into "small" and "large"
// classes (2·n! subqueries):
//   Q_small: the n-1 low-branching arms are shrunk (Yannakakis folds) and
//     joined into one combined-attribute relation R(A_small, B); with the
//     remaining arm this is a LINE query (§4).
//   Q_large: all arms are shrunk; the index split I = {φ(n), φ(n-3), ...}
//     (Lemma 11) balances the two sides, whose join sizes are then
//     <= N*OUT^{2/3}; after uniformizing by the degree of b (log groups,
//     Step 3.3) each group is one output-sensitive MATRIX MULTIPLICATION.

#ifndef PARJOIN_ALGORITHMS_STARLIKE_QUERY_H_
#define PARJOIN_ALGORITHMS_STARLIKE_QUERY_H_

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/query/dangling.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/attr_combiner.h"
#include "parjoin/relation/ops.h"
#include "parjoin/sketch/out_estimate.h"

namespace parjoin {

namespace internal_starlike {

// One arm of a star-like query: edges ordered from B outward, and the
// attribute path [B, C_1, ..., A_i].
struct Arm {
  std::vector<int> edge_indices;
  std::vector<AttrId> path;

  AttrId endpoint() const { return path.back(); }
  size_t length() const { return edge_indices.size(); }
};

// Extracts the arms of a star-like (or star) query around `center`.
inline std::vector<Arm> ExtractArms(const JoinTree& query, AttrId center) {
  std::vector<Arm> arms;
  for (int first_edge : query.IncidentEdges(center)) {
    Arm arm;
    arm.path.push_back(center);
    int edge = first_edge;
    AttrId prev = center;
    while (true) {
      arm.edge_indices.push_back(edge);
      const AttrId next = query.edge(edge).Other(prev);
      arm.path.push_back(next);
      if (query.Degree(next) == 1) break;
      CHECK_EQ(query.Degree(next), 2) << "arm attr " << next
                                      << " must be an interior path attr";
      int next_edge = -1;
      for (int e : query.IncidentEdges(next)) {
        if (e != edge) next_edge = e;
      }
      edge = next_edge;
      prev = next;
    }
    arms.push_back(std::move(arm));
  }
  return arms;
}

// Folds an arm into a single binary relation R(B, A_i) by Yannakakis
// steps from the leaf toward B (the §6 "shrink" used in Steps 2.1/3.1).
// `rels[k]` is the relation of arm.edge_indices[k].
template <SemiringC S>
DistRelation<S> ShrinkArm(mpc::Cluster& cluster, const Arm& arm,
                          std::vector<DistRelation<S>> rels) {
  const size_t len = arm.length();
  DistRelation<S> fold = std::move(rels[len - 1]);
  for (size_t k = len - 1; k-- > 0;) {
    fold = JoinAggregate(cluster, std::move(rels[k]), fold,
                         {arm.path[k], arm.endpoint()});
  }
  return fold;  // schema contains {B, endpoint}
}

}  // namespace internal_starlike

// Computes a star-like query (kStarLike). Stars, lines, and matrix
// multiplications are dispatched to their dedicated algorithms.
template <SemiringC S>
DistRelation<S> StarLikeAggregate(mpc::Cluster& cluster,
                                  TreeInstance<S> instance) {
  instance.Validate();
  const QueryShape shape = instance.query.Classify();
  if (shape == QueryShape::kMatMul || shape == QueryShape::kLine) {
    return LineQueryAggregate(cluster, std::move(instance));
  }
  if (shape == QueryShape::kStar) {
    return StarQueryAggregate(cluster, std::move(instance));
  }
  CHECK(shape == QueryShape::kStarLike)
      << "unsupported shape " << QueryShapeName(shape) << " for "
      << instance.query.DebugString();

  const AttrId center = instance.query.HighDegreeAttrs()[0];
  const std::vector<AttrId> outputs = instance.query.output_attrs();
  const std::vector<internal_starlike::Arm> arms =
      internal_starlike::ExtractArms(instance.query, center);
  const int n = static_cast<int>(arms.size());
  CHECK_LE(n, 6) << "star-like arity is a query constant; >6 unsupported";

  RemoveDangling(cluster, &instance);
  std::int64_t n_total = instance.TotalInputSize();
  if (n_total == 0) {
    DistRelation<S> empty;
    empty.schema = Schema(outputs);
    empty.data = mpc::Dist<Tuple<S>>(cluster.p());
    return empty;
  }

  // --- Step 1: per-arm branching estimates d_i(b). ---
  std::vector<std::unordered_map<Value, std::int64_t>> branching(
      static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& arm = arms[static_cast<size_t>(i)];
    if (arm.length() == 1) {
      // Exact degrees for single-relation arms.
      mpc::Dist<ValueCount> deg = DegreesByAttr(
          cluster, instance.relations[static_cast<size_t>(
                       arm.edge_indices[0])],
          center);
      deg.ForEach([&](const ValueCount& vc) {
        branching[static_cast<size_t>(i)][vc.value] = vc.count;
      });
      cluster.ChargeUniformRound((n_total + cluster.p() - 1) / cluster.p());
    } else {
      std::vector<DistRelation<S>> chain;
      for (int e : arm.edge_indices) {
        chain.push_back(instance.relations[static_cast<size_t>(e)]);
      }
      OutEstimate est = EstimateChainOut(cluster, chain, arm.path, 5);
      branching[static_cast<size_t>(i)] = std::move(est.per_source);
    }
  }

  // --- Per-b class: permutation x {small, large}. The class map is made
  // known cluster-wide (modeled-linear, like parallel packing). ---
  std::map<std::pair<std::vector<int>, bool>, int> class_ids;
  std::vector<std::pair<std::vector<int>, bool>> class_list;
  std::unordered_map<Value, int> class_of_b;
  // Sorted: dense class ids are assigned in encounter order, so the
  // numbering (and class_list order) must not depend on hash order.
  for (const auto& [b, d0] : SortedEntries(branching[0])) {
    std::vector<double> d(static_cast<size_t>(n), 0);
    bool complete = true;
    for (int i = 0; i < n; ++i) {
      auto it = branching[static_cast<size_t>(i)].find(b);
      if (it == branching[static_cast<size_t>(i)].end()) {
        complete = false;
        break;
      }
      d[static_cast<size_t>(i)] =
          std::max<double>(1.0, static_cast<double>(it->second));
    }
    if (!complete) continue;  // dangling remnant
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return d[static_cast<size_t>(x)] < d[static_cast<size_t>(y)];
    });
    double prefix = 1;
    for (int i = 0; i + 1 < n; ++i) {
      prefix *= d[static_cast<size_t>(order[static_cast<size_t>(i)])];
    }
    const bool small =
        prefix <= d[static_cast<size_t>(order[static_cast<size_t>(n) - 1])];
    auto [it, inserted] = class_ids.emplace(
        std::make_pair(order, small), static_cast<int>(class_ids.size()));
    if (inserted) class_list.push_back({order, small});
    class_of_b[b] = it->second;
  }
  cluster.ChargeUniformRound((n_total + cluster.p() - 1) / cluster.p());
  cluster.ChargeUniformRound((n_total + cluster.p() - 1) / cluster.p());

  // Fresh combined-attribute ids.
  AttrId max_attr = 0;
  for (AttrId a : instance.query.attrs()) max_attr = std::max(max_attr, a);
  const AttrId x_small = max_attr + 1;
  const AttrId x_i = max_attr + 2;
  const AttrId x_j = max_attr + 3;

  std::vector<DistRelation<S>> results;

  mpc::ParallelRegion class_region(cluster);
  for (int cls = 0; cls < static_cast<int>(class_list.size()); ++cls) {
    class_region.NextBranch();
    const auto& [order, small] = class_list[static_cast<size_t>(cls)];

    // Build the class sub-instance: B-incident relations filtered to the
    // class's b values (local filter; the class map is known everywhere).
    TreeInstance<S> sub{instance.query, instance.relations};
    for (const auto& arm : arms) {
      auto& rel = sub.relations[static_cast<size_t>(arm.edge_indices[0])];
      const int pos = rel.schema.IndexOf(center);
      for (auto& part : rel.data.parts()) {
        std::vector<Tuple<S>> kept;
        for (auto& t : part) {
          auto it = class_of_b.find(t.row[pos]);
          if (it != class_of_b.end() && it->second == cls) {
            kept.push_back(std::move(t));
          }
        }
        part = std::move(kept);
      }
    }
    {
      bool any = false;
      for (const auto& arm : arms) {
        if (sub.relations[static_cast<size_t>(arm.edge_indices[0])]
                .TotalSize() > 0) {
          any = true;
        }
      }
      if (!any) continue;
    }
    RemoveDangling(cluster, &sub);
    if (sub.relations[static_cast<size_t>(arms[0].edge_indices[0])]
            .TotalSize() == 0) {
      continue;
    }

    auto shrink = [&](int arm_idx) {
      const auto& arm = arms[static_cast<size_t>(arm_idx)];
      std::vector<DistRelation<S>> rels;
      for (int e : arm.edge_indices) {
        rels.push_back(sub.relations[static_cast<size_t>(e)]);
      }
      return internal_starlike::ShrinkArm(cluster, arm, std::move(rels));
    };

    if (small) {
      // --- Step 2: shrink arms φ(1..n-1), join them, reduce to a line
      // query with the remaining arm. ---
      DistRelation<S> acc = shrink(order[0]);
      for (int i = 1; i + 1 < n; ++i) {
        acc = TwoWayJoin(cluster, acc, shrink(order[static_cast<size_t>(i)]));
      }
      if (acc.TotalSize() == 0) continue;
      std::vector<AttrId> small_attrs;
      for (int i = 0; i + 1 < n; ++i) {
        small_attrs.push_back(
            arms[static_cast<size_t>(order[static_cast<size_t>(i)])]
                .endpoint());
      }
      CombinedRelation<S> combined =
          CombineAttrs(cluster, acc, small_attrs, x_small);

      const auto& last_arm =
          arms[static_cast<size_t>(order[static_cast<size_t>(n) - 1])];
      std::vector<QueryEdge> line_edges = {{x_small, center}};
      std::vector<DistRelation<S>> line_rels;
      line_rels.push_back(std::move(combined.binary));
      for (size_t k = 0; k < last_arm.length(); ++k) {
        line_edges.push_back(
            {last_arm.path[k], last_arm.path[k + 1]});
        line_rels.push_back(
            sub.relations[static_cast<size_t>(last_arm.edge_indices[k])]);
      }
      TreeInstance<S> line_instance{
          JoinTree(line_edges, {x_small, last_arm.endpoint()}),
          std::move(line_rels)};
      DistRelation<S> line_result =
          LineQueryAggregate(cluster, std::move(line_instance));
      if (line_result.TotalSize() == 0) continue;
      DistRelation<S> expanded =
          ExpandAttrs(cluster, line_result, combined.dictionary, x_small);
      results.push_back(internal_star::ProjectLocal(expanded, outputs));
    } else {
      // --- Step 3: shrink all arms; split indices I = {φ(n), φ(n-3), ...}
      // (Lemma 11); join each side; uniformize by degree; per-group
      // output-sensitive matrix multiplications. ---
      std::vector<int> side_i, side_j;
      {
        std::vector<bool> in_i(static_cast<size_t>(n), false);
        for (int k = n - 1; k >= 0; k -= 3) in_i[static_cast<size_t>(k)] = true;
        for (int k = 0; k < n; ++k) {
          (in_i[static_cast<size_t>(k)] ? side_i : side_j)
              .push_back(order[static_cast<size_t>(k)]);
        }
      }
      if (side_j.empty()) {
        // n <= 1 cannot happen for star-like; guard regardless.
        side_j.push_back(side_i.back());
        side_i.pop_back();
      }
      auto join_side = [&](const std::vector<int>& side) {
        DistRelation<S> acc = shrink(side[0]);
        for (size_t k = 1; k < side.size(); ++k) {
          acc = TwoWayJoin(cluster, acc,
                           shrink(side[static_cast<size_t>(k)]));
        }
        return acc;
      };
      DistRelation<S> rel_i = join_side(side_i);
      DistRelation<S> rel_j = join_side(side_j);
      if (rel_i.TotalSize() == 0 || rel_j.TotalSize() == 0) continue;

      std::vector<AttrId> attrs_i, attrs_j;
      for (int k : side_i) {
        attrs_i.push_back(arms[static_cast<size_t>(k)].endpoint());
      }
      for (int k : side_j) {
        attrs_j.push_back(arms[static_cast<size_t>(k)].endpoint());
      }
      CombinedRelation<S> comb_i = CombineAttrs(cluster, rel_i, attrs_i, x_i);
      CombinedRelation<S> comb_j = CombineAttrs(cluster, rel_j, attrs_j, x_j);

      // Step 3.3: uniformize by the degree of b in R(X_I, B): log groups.
      // Degrees and relations are co-partitioned by b (as-executed).
      const int p = cluster.p();
      auto route_b = [&](Value b) {
        return static_cast<int>(
            Mix64(static_cast<std::uint64_t>(b) ^ 0x10f2) %
            static_cast<std::uint64_t>(p));
      };
      mpc::Dist<ValueCount> deg_b =
          DegreesByAttr(cluster, comb_i.binary, center);
      mpc::Dist<ValueCount> deg_parted = mpc::Exchange(
          cluster, deg_b, p,
          [&](const ValueCount& vc) { return route_b(vc.value); });
      const int bi_pos = comb_i.binary.schema.IndexOf(center);
      const int bj_pos = comb_j.binary.schema.IndexOf(center);
      auto i_parted = mpc::Exchange(
          cluster, comb_i.binary.data, p,
          [&](const Tuple<S>& t) { return route_b(t.row[bi_pos]); });
      auto j_parted = mpc::Exchange(
          cluster, comb_j.binary.data, p,
          [&](const Tuple<S>& t) { return route_b(t.row[bj_pos]); });

      constexpr int kMaxLogGroups = 48;
      std::vector<DistRelation<S>> gi(kMaxLogGroups), gj(kMaxLogGroups);
      for (int g = 0; g < kMaxLogGroups; ++g) {
        gi[static_cast<size_t>(g)].schema = comb_i.binary.schema;
        gi[static_cast<size_t>(g)].data = mpc::Dist<Tuple<S>>(p);
        gj[static_cast<size_t>(g)].schema = comb_j.binary.schema;
        gj[static_cast<size_t>(g)].data = mpc::Dist<Tuple<S>>(p);
      }
      for (int s = 0; s < p; ++s) {
        std::unordered_map<Value, int> group_of;
        for (const auto& vc : deg_parted.part(s)) {
          int g = 0;
          while ((std::int64_t{1} << (g + 1)) <= vc.count &&
                 g + 1 < kMaxLogGroups) {
            ++g;
          }
          group_of[vc.value] = g;
        }
        for (auto& t : i_parted.part(s)) {
          auto it = group_of.find(t.row[bi_pos]);
          if (it == group_of.end()) continue;
          gi[static_cast<size_t>(it->second)].data.part(s).push_back(
              std::move(t));
        }
        for (auto& t : j_parted.part(s)) {
          auto it = group_of.find(t.row[bj_pos]);
          if (it == group_of.end()) continue;
          gj[static_cast<size_t>(it->second)].data.part(s).push_back(
              std::move(t));
        }
      }

      mpc::ParallelRegion loggroup_region(cluster);
      for (int g = 0; g < kMaxLogGroups; ++g) {
        loggroup_region.NextBranch();
        if (gi[static_cast<size_t>(g)].TotalSize() == 0 ||
            gj[static_cast<size_t>(g)].TotalSize() == 0) {
          continue;
        }
        MatMulOptions options;
        options.remove_dangling = true;  // groups may misalign across sides
        options.strategy = MatMulStrategy::kOutputSensitive;
        DistRelation<S> mm =
            MatMul(cluster, std::move(gi[static_cast<size_t>(g)]),
                   std::move(gj[static_cast<size_t>(g)]), options);
        if (mm.TotalSize() == 0) continue;
        DistRelation<S> expanded =
            ExpandAttrs(cluster, mm, comb_i.dictionary, x_i);
        expanded = ExpandAttrs(cluster, expanded, comb_j.dictionary, x_j);
        results.push_back(internal_star::ProjectLocal(expanded, outputs));
      }
    }
  }

  return internal_star::ReduceUnion(cluster, std::move(results),
                                    Schema(outputs));
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_STARLIKE_QUERY_H_
