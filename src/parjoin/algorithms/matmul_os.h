// Output-sensitive sparse matrix multiplication (paper §3.2):
// load O((N1+N2)/p + (N1*N2*OUT)^{1/3} / p^{2/3}).
//
// Structure (after dangling removal and §2.2 OUT estimation):
//   OUT <= N/p           LinearSparseMM: sort everything by B (grouped),
//                        aggregate locally, reduce-by-key the local results.
//   otherwise            L = (N1*N2*OUT/p^2)^{1/3} + N/p and:
//     step 2  heavy rows (OUT_a >= sqrt(N2*OUT*L/N1)) go through one
//             optimal two-way join + aggregation (their intermediate join
//             is small: each R2 tuple meets few heavy rows);
//     step 3  light rows are parallel-packed into groups A_i of total
//             OUT_a <= sqrt(N2*OUT*L/N1); per group, the output count of
//             every column c is estimated with the §2.2 KMV chain, and
//             heavy columns (>= L outputs in the group) get dedicated
//             B-sharded server groups;
//     step 4  the light columns of each group are parallel-packed into
//             buckets C_ij of <= L group-outputs; subquery (A_i, C_ij)
//             runs on ceil(|R_ij|/L) servers — on a single server its
//             outputs are final and never shuffled (the locality that
//             beats Yannakakis), otherwise its partial sums join the
//             global reduce.

#ifndef PARJOIN_ALGORITHMS_MATMUL_OS_H_
#define PARJOIN_ALGORITHMS_MATMUL_OS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "parjoin/algorithms/matmul_wc.h"
#include "parjoin/algorithms/two_way_join.h"
#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"
#include "parjoin/sketch/out_estimate.h"

namespace parjoin {

// LinearSparseMM (§3.2): correct for any input, linear load when
// OUT <= N/p (every B-degree is then < N/p, so the grouped sort balances).
template <SemiringC S>
DistRelation<S> LinearSparseMM(mpc::Cluster& cluster,
                               const DistRelation<S>& r1,
                               const DistRelation<S>& r2) {
  using internal_matmul::MatMulAttrs;
  const MatMulAttrs m = internal_matmul::ResolveMatMulAttrs(r1, r2);
  const int p = cluster.p();

  struct Tagged {
    Tuple<S> t;
    bool from_r1 = false;
  };
  mpc::Dist<Tagged> tagged(std::max(r1.data.num_parts(), r2.data.num_parts()));
  for (int s = 0; s < r1.data.num_parts(); ++s) {
    for (const auto& t : r1.data.part(s)) {
      tagged.part(s).push_back({t, true});
    }
  }
  for (int s = 0; s < r2.data.num_parts(); ++s) {
    for (const auto& t : r2.data.part(s)) {
      tagged.part(s).push_back({t, false});
    }
  }

  mpc::Dist<Tagged> by_b = mpc::SortGroupedByKey(
      cluster, std::move(tagged), [&](const Tagged& x) {
        return x.from_r1 ? x.t.row[m.b1_pos] : x.t.row[m.b2_pos];
      });

  mpc::Dist<Tuple<S>> partials(by_b.num_parts());
  for (int s = 0; s < by_b.num_parts(); ++s) {
    std::vector<Tuple<S>> r1_part, r2_part;
    for (const auto& x : by_b.part(s)) {
      (x.from_r1 ? r1_part : r2_part).push_back(x.t);
    }
    internal_matmul::LocalJoinAggregateAC(m, r1_part, r2_part,
                                          &partials.part(s));
  }

  DistRelation<S> out;
  out.schema = Schema{m.a, m.c};
  out.data = mpc::ReduceByKey(
      cluster, std::move(partials),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      p);
  return out;
}

struct MatMulOsOptions {
  // Repetitions for the per-group column estimates (step 3); the global
  // OUT estimate uses the EstimateChainOut default when not supplied.
  int group_estimate_repetitions = 5;
};

// §3.2 output-sensitive algorithm. Preconditions: dangling tuples removed,
// N1, N2 >= 1. `est` is the §2.2 estimate for the chain A-B-C (recomputed
// when null).
template <SemiringC S>
DistRelation<S> MatMulOutputSensitive(mpc::Cluster& cluster,
                                      const DistRelation<S>& r1,
                                      const DistRelation<S>& r2,
                                      const OutEstimate* est = nullptr,
                                      const MatMulOsOptions& options = {}) {
  using internal_matmul::MatMulAttrs;
  const MatMulAttrs m = internal_matmul::ResolveMatMulAttrs(r1, r2);
  const int p = cluster.p();
  const std::int64_t n1 = r1.TotalSize();
  const std::int64_t n2 = r2.TotalSize();
  const std::int64_t n = n1 + n2;

  DistRelation<S> empty;
  empty.schema = Schema{m.a, m.c};
  empty.data = mpc::Dist<Tuple<S>>(p);
  if (n1 == 0 || n2 == 0) return empty;

  OutEstimate local_est;
  if (est == nullptr) {
    local_est = EstimateChainOut(cluster, std::vector<DistRelation<S>>{r1, r2},
                                 {m.a, m.b, m.c});
    est = &local_est;
  }
  const std::int64_t out_est = std::max<std::int64_t>(1, est->total);

  if (out_est <= std::max<std::int64_t>(1, n / p)) {
    return LinearSparseMM(cluster, r1, r2);
  }

  const std::int64_t L = std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(std::ceil(
          std::cbrt(static_cast<double>(n1) * static_cast<double>(n2) *
                    static_cast<double>(out_est)) /
          std::pow(static_cast<double>(p), 2.0 / 3.0))) +
          (n + p - 1) / p);
  const std::int64_t heavy_row_threshold = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::sqrt(
             static_cast<double>(n2) * static_cast<double>(out_est) *
             static_cast<double>(L) / static_cast<double>(n1)))));

  // --- Step 1: heavy rows by estimated OUT_a. ---
  // The heavy set is small (<= sqrt(OUT/L * N1/N2)); broadcast it.
  std::vector<Value> heavy_rows;
  for (const auto& [a, out_a] : SortedEntries(est->per_source)) {
    if (out_a >= heavy_row_threshold) heavy_rows.push_back(a);
  }
  cluster.ChargeUniformRound(static_cast<std::int64_t>(heavy_rows.size()));
  std::unordered_map<Value, bool> is_heavy_row;
  for (Value a : heavy_rows) is_heavy_row[a] = true;

  // Split R1 locally (free).
  DistRelation<S> r1_heavy, r1_light;
  r1_heavy.schema = r1_light.schema = r1.schema;
  r1_heavy.data = mpc::Dist<Tuple<S>>(r1.data.num_parts());
  r1_light.data = mpc::Dist<Tuple<S>>(r1.data.num_parts());
  for (int s = 0; s < r1.data.num_parts(); ++s) {
    for (const auto& t : r1.data.part(s)) {
      const bool heavy = is_heavy_row.count(t.row[m.a_pos]) > 0;
      (heavy ? r1_heavy : r1_light).data.part(s).push_back(t);
    }
  }

  // --- Step 2: heavy rows via one optimal join + aggregation. ---
  DistRelation<S> heavy_out = empty;
  if (r1_heavy.TotalSize() > 0) {
    DistRelation<S> joined = TwoWayJoin(cluster, r1_heavy, r2);
    heavy_out = AggregateByAttrs(cluster, joined, {m.a, m.c});
  }

  // --- Step 3a: parallel-pack light rows into groups A_i. ---
  std::vector<mpc::PackedItem> row_items;
  {
    std::unordered_map<Value, bool> seen;
    r1_light.data.ForEach([&](const Tuple<S>& t) {
      const Value a = t.row[m.a_pos];
      if (!seen.emplace(a, true).second) return;
      const double weight =
          std::min(1.0, std::max<double>(1.0, static_cast<double>(
                                                  est->ForValue(a))) /
                            static_cast<double>(heavy_row_threshold));
      row_items.push_back({a, weight, -1});
    });
  }
  row_items = mpc::ParallelPacking(cluster, std::move(row_items));
  std::unordered_map<Value, int> group_of_a;
  int k1 = 0;
  for (const auto& item : row_items) {
    group_of_a[item.id] = item.group;
    k1 = std::max(k1, item.group + 1);
  }
  k1 = std::max(k1, 1);

  // Per-group R1 fragments (local split, free).
  std::vector<DistRelation<S>> r1_groups(static_cast<size_t>(k1));
  for (auto& g : r1_groups) {
    g.schema = r1.schema;
    g.data = mpc::Dist<Tuple<S>>(r1.data.num_parts());
  }
  std::vector<std::int64_t> group_size(static_cast<size_t>(k1), 0);
  for (int s = 0; s < r1_light.data.num_parts(); ++s) {
    for (const auto& t : r1_light.data.part(s)) {
      const int i = group_of_a.at(t.row[m.a_pos]);
      r1_groups[static_cast<size_t>(i)].data.part(s).push_back(t);
      ++group_size[static_cast<size_t>(i)];
    }
  }

  // R2 column degrees (bookkeeping for allocations; modeled-linear rounds,
  // same discipline as parallel packing).
  std::unordered_map<Value, std::int64_t> deg_c;
  r2.data.ForEach(
      [&](const Tuple<S>& t) { deg_c[t.row[m.c_pos]] += 1; });
  cluster.ChargeUniformRound((n2 + p - 1) / p);

  // --- Steps 3b/4a: per group, estimate per-column output counts, split
  // heavy columns, and pack light columns into buckets C_ij. ---
  struct Group {
    int base = 0;
    int size = 1;
  };
  int next_virtual = 0;
  auto allocate = [&](std::int64_t work) {
    Group g;
    g.size = std::max<int>(1, static_cast<int>((work + L - 1) / L));
    g.base = next_virtual;
    next_virtual += g.size;
    return g;
  };

  std::vector<std::unordered_map<Value, Group>> heavy_c(
      static_cast<size_t>(k1));
  // Heavy-column groups per A_i in sorted column order; the R1 route
  // lambda iterates this vector, never the unordered map.
  std::vector<std::vector<Group>> heavy_groups(static_cast<size_t>(k1));
  std::vector<std::unordered_map<Value, int>> bucket_of_c(
      static_cast<size_t>(k1));
  std::vector<std::vector<Group>> cells(static_cast<size_t>(k1));

  mpc::ParallelRegion group_region(cluster);
  for (int i = 0; i < k1; ++i) {
    group_region.NextBranch();
    const auto& r1_i = r1_groups[static_cast<size_t>(i)];
    if (group_size[static_cast<size_t>(i)] == 0) continue;
    // Estimate |π_A σ_{A∈A_i}R1 ⋈ R2(B,c)| per column c (§2.2 chain C-B-A).
    OutEstimate est_i = EstimateChainOut(
        cluster, std::vector<DistRelation<S>>{r2, r1_i}, {m.c, m.b, m.a},
        options.group_estimate_repetitions);

    std::vector<mpc::PackedItem> col_items;
    // Sorted so virtual-server allocation order and the packing input are
    // functions of the data, not of hash-table iteration order.
    for (const auto& [c, cnt] : SortedEntries(est_i.per_source)) {
      if (cnt >= L) {
        const Group g = allocate(group_size[static_cast<size_t>(i)] +
                                 deg_c[c]);
        heavy_c[static_cast<size_t>(i)][c] = g;
        heavy_groups[static_cast<size_t>(i)].push_back(g);
      } else {
        col_items.push_back(
            {c, std::min(1.0, static_cast<double>(cnt) /
                                  static_cast<double>(L)),
             -1});
      }
    }
    col_items = mpc::ParallelPacking(cluster, std::move(col_items));
    int k2 = 0;
    std::vector<std::int64_t> bucket_r2_size;
    for (const auto& item : col_items) {
      bucket_of_c[static_cast<size_t>(i)][item.id] = item.group;
      k2 = std::max(k2, item.group + 1);
    }
    bucket_r2_size.assign(static_cast<size_t>(std::max(k2, 1)), 0);
    // parjoin-analyzer: order-independent(commutative int64 sums per bucket)
    for (const auto& [c, j] : bucket_of_c[static_cast<size_t>(i)]) {
      bucket_r2_size[static_cast<size_t>(j)] += deg_c[c];
    }
    for (int j = 0; j < k2; ++j) {
      cells[static_cast<size_t>(i)].push_back(
          allocate(group_size[static_cast<size_t>(i)] +
                   bucket_r2_size[static_cast<size_t>(j)]));
    }
  }
  const int num_virtual = std::max(next_virtual, 1);

  // --- Steps 3c/4b: route and compute. ---
  const std::uint64_t b_seed = cluster.rng().Next();
  auto b_shard = [&](Value b, const Group& g) {
    return g.base + static_cast<int>(
                        Mix64(static_cast<std::uint64_t>(b) ^ b_seed) %
                        static_cast<std::uint64_t>(g.size));
  };

  auto r1_routed = mpc::ExchangeMulti(
      cluster, r1_light.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        // Pure const lookups only: the route runs concurrently across
        // source parts (exchange.h contract).
        const Value b = t.row[m.b1_pos];
        const int i = group_of_a.at(t.row[m.a_pos]);
        for (const Group& g : heavy_groups[static_cast<size_t>(i)]) {
          dests->push_back(b_shard(b, g));
        }
        for (const Group& g : cells[static_cast<size_t>(i)]) {
          dests->push_back(b_shard(b, g));
        }
      });
  auto r2_routed = mpc::ExchangeMulti(
      cluster, r2.data, num_virtual,
      [&](const Tuple<S>& t, std::vector<int>* dests) {
        const Value b = t.row[m.b2_pos];
        const Value c = t.row[m.c_pos];
        for (int i = 0; i < k1; ++i) {
          auto hit = heavy_c[static_cast<size_t>(i)].find(c);
          if (hit != heavy_c[static_cast<size_t>(i)].end()) {
            dests->push_back(b_shard(b, hit->second));
            continue;
          }
          auto bit = bucket_of_c[static_cast<size_t>(i)].find(c);
          if (bit == bucket_of_c[static_cast<size_t>(i)].end()) continue;
          dests->push_back(
              b_shard(b, cells[static_cast<size_t>(i)]
                              [static_cast<size_t>(bit->second)]));
        }
      });

  // Single-server cells keep their outputs in place; everything else emits
  // partials into one global reduce.
  std::vector<bool> is_final(static_cast<size_t>(num_virtual), false);
  for (int i = 0; i < k1; ++i) {
    for (const Group& g : cells[static_cast<size_t>(i)]) {
      if (g.size == 1) is_final[static_cast<size_t>(g.base)] = true;
    }
  }

  DistRelation<S> out;
  out.schema = Schema{m.a, m.c};
  out.data = mpc::Dist<Tuple<S>>(p + num_virtual);
  mpc::Dist<Tuple<S>> partials(num_virtual);
  ParallelFor(num_virtual, [&](int v) {
    std::vector<Tuple<S>>* sink = is_final[static_cast<size_t>(v)]
                                      ? &out.data.part(p + v)
                                      : &partials.part(v);
    internal_matmul::LocalJoinAggregateAC(m, r1_routed.part(v),
                                          r2_routed.part(v), sink);
  });
  mpc::Dist<Tuple<S>> reduced = mpc::ReduceByKey(
      cluster, std::move(partials),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); },
      p);
  for (int s = 0; s < p; ++s) out.data.part(s) = std::move(reduced.part(s));

  // Union with the heavy-row results (disjoint classes of a-values).
  for (int s = 0; s < heavy_out.data.num_parts(); ++s) {
    auto& dest = out.data.part(s % out.data.num_parts());
    for (auto& t : heavy_out.data.part(s)) dest.push_back(std::move(t));
  }
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_ALGORITHMS_MATMUL_OS_H_
