#include "parjoin/plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "parjoin/common/logging.h"

namespace parjoin {
namespace plan {
namespace {

double D(std::int64_t v) { return static_cast<double>(v); }

double P23(int p) { return std::pow(D(p), 2.0 / 3.0); }

}  // namespace

void CalibrationTable::Set(Algorithm a, QueryShape shape, double factor,
                           std::int64_t runs) {
  CHECK(std::isfinite(factor) && factor > 0)
      << "calibration factor for " << AlgorithmName(a) << " must be finite "
      << "and positive, got " << factor;
  for (Entry& e : entries_) {
    if (e.algorithm == a && e.has_shape && e.shape == shape) {
      e.factor = factor;
      e.runs = runs;
      return;
    }
  }
  entries_.push_back(Entry{a, true, shape, factor, runs});
}

void CalibrationTable::SetDefault(Algorithm a, double factor,
                                  std::int64_t runs) {
  CHECK(std::isfinite(factor) && factor > 0)
      << "calibration factor for " << AlgorithmName(a) << " must be finite "
      << "and positive, got " << factor;
  for (Entry& e : entries_) {
    if (e.algorithm == a && !e.has_shape) {
      e.factor = factor;
      e.runs = runs;
      return;
    }
  }
  entries_.push_back(Entry{a, false, QueryShape::kTree, factor, runs});
}

double CalibrationTable::Factor(Algorithm a, QueryShape shape) const {
  double fallback = 1;
  for (const Entry& e : entries_) {
    if (e.algorithm != a) continue;
    if (e.has_shape && e.shape == shape) return e.factor;
    if (!e.has_shape) fallback = e.factor;
  }
  return fallback;
}

StatusOr<Algorithm> AlgorithmFromName(const std::string& name) {
  static constexpr Algorithm kAll[] = {
      Algorithm::kSingleRelation,     Algorithm::kYannakakis,
      Algorithm::kHyperCube,          Algorithm::kMatMulWorstCase,
      Algorithm::kMatMulOutputSensitive, Algorithm::kLineTheorem4,
      Algorithm::kStarTheorem5,       Algorithm::kStarLikeLemma7,
      Algorithm::kTreeTheorem6,
  };
  for (Algorithm a : kAll) {
    if (name == AlgorithmName(a)) return a;
  }
  return InvalidArgumentError("unknown algorithm name: '" + name + "'");
}

double YannakakisMatMulBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) / p + D(n) * std::sqrt(D(out)) / p;
}

double NewMatMulBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                      int p) {
  const double wc = std::sqrt(D(n1) * D(n2) / p);
  const double os = std::cbrt(D(n1) * D(n2) * D(out)) / P23(p);
  return D(n1 + n2) / p + std::min(wc, os);
}

double YannakakisStarBound(std::int64_t n, std::int64_t out, int arity,
                           int p) {
  return D(n) / p +
         D(n) * std::pow(D(out), 1.0 - 1.0 / arity) / p;
}

double YannakakisTreeBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) / p + D(n) * D(out) / p;
}

double NewLineStarBound(std::int64_t n, std::int64_t out, int p) {
  return std::pow(D(n) * D(out) / p, 2.0 / 3.0) +
         D(n) * std::sqrt(D(out)) / p + D(n + out) / p;
}

double NewTreeBound(std::int64_t n, std::int64_t out, int p) {
  return D(n) * std::pow(D(out), 2.0 / 3.0) / p + D(n + out) / p;
}

double MatMulLowerBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                        int p) {
  const double wc = std::sqrt(D(n1) * D(n2) / p);
  const double os = std::cbrt(D(n1) * D(n2) * D(out)) / P23(p);
  return std::min(wc, os);
}

bool Applicable(Algorithm a, QueryShape shape) {
  switch (a) {
    case Algorithm::kSingleRelation:
      return shape == QueryShape::kSingleEdge;
    case Algorithm::kYannakakis:
      return shape != QueryShape::kSingleEdge;
    case Algorithm::kHyperCube:
    case Algorithm::kMatMulWorstCase:
    case Algorithm::kMatMulOutputSensitive:
      return shape == QueryShape::kMatMul;
    case Algorithm::kLineTheorem4:
      return shape == QueryShape::kLine || shape == QueryShape::kMatMul;
    case Algorithm::kStarTheorem5:
      return shape == QueryShape::kStar;
    case Algorithm::kStarLikeLemma7:
      return shape == QueryShape::kStarLike;
    case Algorithm::kTreeTheorem6:
      return shape == QueryShape::kTree;
  }
  return false;
}

double PredictLoad(Algorithm a, QueryShape shape, const InstanceStats& s,
                   const CalibrationTable* calibration) {
  CHECK(Applicable(a, shape))
      << AlgorithmName(a) << " cannot run a " << QueryShapeName(shape)
      << " instance";
  const double factor =
      calibration == nullptr ? 1.0 : calibration->Factor(a, shape);
  const int p = s.p;
  const std::int64_t n = s.total_input;
  const std::int64_t out = std::max<std::int64_t>(1, s.out_estimate);
  const std::int64_t j =
      std::max(out, std::max<std::int64_t>(1, s.join_estimate));
  const double base = [&]() -> double {
    switch (a) {
      case Algorithm::kSingleRelation:
        return D(n + out) / p;
      case Algorithm::kYannakakis:
        // Measured-faithful baseline cost: scan the input, materialize the
        // largest intermediate J, emit the output. When the planner could
        // not estimate J this degrades to the Table 1 worst case via
        // join_estimate's default (see planner.cc).
        return D(n) / p + D(j + out) / p;
      case Algorithm::kHyperCube:
        // 3-attribute grid: shares p^{1/3}, every input tuple replicated to
        // p^{1/3} cells, locally pre-aggregated full join reduced at the end.
        return D(s.n1 + s.n2) / P23(p) + D(j) / p + D(out) / p;
      case Algorithm::kMatMulWorstCase:
        return D(s.n1 + s.n2) / p + std::sqrt(D(s.n1) * D(s.n2) / p);
      case Algorithm::kMatMulOutputSensitive:
        return D(s.n1 + s.n2) / p +
               std::cbrt(D(s.n1) * D(s.n2) * D(out)) / P23(p) + D(out) / p;
      case Algorithm::kLineTheorem4:
      case Algorithm::kStarTheorem5:
        return NewLineStarBound(n, out, p);
      case Algorithm::kStarLikeLemma7:
        // Lemma 7's exact expression needs N' (the star-like arm product
        // sizes); Theorem 6's tree bound is the valid upper bound we can
        // evaluate from (N, OUT) alone.
      case Algorithm::kTreeTheorem6:
        return NewTreeBound(n, out, p);
    }
    return 0;
  }();
  return factor * base;
}

const char* LoadFormula(Algorithm a, QueryShape shape) {
  (void)shape;
  switch (a) {
    case Algorithm::kSingleRelation:
      return "(N+OUT)/p";
    case Algorithm::kYannakakis:
      return "N/p + (J+OUT)/p, J = largest intermediate (Table 1 baseline)";
    case Algorithm::kHyperCube:
      return "(N1+N2)/p^(2/3) + (J+OUT)/p (full-join grid, §1.4)";
    case Algorithm::kMatMulWorstCase:
      return "(N1+N2)/p + sqrt(N1*N2/p) (Theorem 1, §3.1 branch)";
    case Algorithm::kMatMulOutputSensitive:
      return "(N1+N2)/p + (N1*N2*OUT)^(1/3)/p^(2/3) + OUT/p "
             "(Theorem 1, §3.2 branch)";
    case Algorithm::kLineTheorem4:
      return "(N*OUT/p)^(2/3) + N*sqrt(OUT)/p + (N+OUT)/p (Theorem 4)";
    case Algorithm::kStarTheorem5:
      return "(N*OUT/p)^(2/3) + N*sqrt(OUT)/p + (N+OUT)/p (Theorem 5)";
    case Algorithm::kStarLikeLemma7:
      return "N*OUT^(2/3)/p + (N+OUT)/p (Lemma 7, via the Theorem 6 form)";
    case Algorithm::kTreeTheorem6:
      return "N*OUT^(2/3)/p + (N+OUT)/p (Theorem 6)";
  }
  return "?";
}

std::vector<Candidate> ScoreCandidates(QueryShape shape,
                                       const InstanceStats& stats,
                                       const CalibrationTable* calibration) {
  static constexpr Algorithm kAll[] = {
      Algorithm::kSingleRelation,     Algorithm::kYannakakis,
      Algorithm::kHyperCube,          Algorithm::kMatMulWorstCase,
      Algorithm::kMatMulOutputSensitive, Algorithm::kLineTheorem4,
      Algorithm::kStarTheorem5,       Algorithm::kStarLikeLemma7,
      Algorithm::kTreeTheorem6,
  };
  std::vector<Candidate> out;
  for (Algorithm a : kAll) {
    // The generic Theorem 4 entry point subsumes matmul (a 2-relation
    // line); keep only the dedicated matmul branches for that shape.
    if (a == Algorithm::kLineTheorem4 && shape == QueryShape::kMatMul) {
      continue;
    }
    if (!Applicable(a, shape)) continue;
    Candidate c;
    c.algorithm = a;
    c.predicted_load = PredictLoad(a, shape, stats, calibration);
    c.calib_factor =
        calibration == nullptr ? 1.0 : calibration->Factor(a, shape);
    c.formula = LoadFormula(a, shape);
    out.push_back(std::move(c));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.predicted_load < y.predicted_load;
                   });
  return out;
}

}  // namespace plan
}  // namespace parjoin
