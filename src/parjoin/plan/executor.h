// The unified execution runtime: dispatches a planner-chosen Algorithm
// onto the library's entry points and reports predicted vs. measured load.
//
// PlanAndRun is the one-call entry point examples and benches use:
//   auto exec = plan::PlanAndRun(cluster, instance);
//   exec.plan.ToText() / exec.plan.ToJson() / exec.result
// The cluster's stats are phased: planning (the estimation rounds) and
// execution (the chosen algorithm) are recorded separately in the plan;
// after the call the cluster's live stats hold the execution phase only.
//
// Fault tolerance: with a non-default ExecutionOptions, execution runs
// through ExecuteWithRecovery — inputs are checkpointed (charged), the
// chosen algorithm runs under the configured fault plan / load budget, and
// RoundAbort unwinds back here for replay from the checkpoint (crash) or
// degradation onto the Yannakakis baseline (budget). The recovery trail is
// reported in plan.recovery; all resilience traffic lands in
// execution_stats.recovery_comm.

#ifndef PARJOIN_PLAN_EXECUTOR_H_
#define PARJOIN_PLAN_EXECUTOR_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "parjoin/common/stopwatch.h"

#include "parjoin/algorithms/hypercube.h"
#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/starlike_query.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/mpc/checkpoint.h"
#include "parjoin/mpc/faults.h"
#include "parjoin/plan/planner.h"
#include "parjoin/relation/ops.h"

namespace parjoin {
namespace plan {

// One completed execution, as the profile layer sees it: what the planner
// predicted for the algorithm that actually ran vs. what the ledger
// measured. `predicted_load` is the UNCALIBRATED constant-1 bound (the
// candidate's prediction divided back by its calib_factor) so fitted
// factors never feed into their own fit.
struct ExecutionRecord {
  Algorithm algorithm = Algorithm::kYannakakis;
  QueryShape shape = QueryShape::kTree;
  int p = 1;
  std::int64_t input_size = 0;      // N = total input tuples
  double predicted_load = 0;        // uncalibrated bound
  std::int64_t measured_load = 0;   // cluster stats().max_load
  double wall_ms = 0;               // wall time of the execution phase
  int attempts = 1;
  bool degraded = false;
};

// Observation seam for the profile store (src/parjoin/obs/profile.h
// implements it; plan/ stays free of an obs dependency). Executions are
// recorded from the charging thread only — no locking needed inside.
class ExecutionProfileSink {
 public:
  virtual ~ExecutionProfileSink() = default;
  virtual void RecordExecution(const ExecutionRecord& record) = 0;
};

// Resilience knobs for ExecuteWithRecovery / PlanAndRun. All off by
// default: the default-constructed options run the fast path with zero
// overhead (no checkpoints, no checksums, no budget).
struct ExecutionOptions {
  mpc::FaultConfig faults;      // injection schedule (faults.enabled arms it)
  int checkpoint_interval = 0;  // rounds between replication rounds; 0 = off
  // Abort any round whose load exceeds factor × predicted_load and degrade
  // onto the Yannakakis baseline. 0 = off.
  double load_budget_factor = 0;
  int max_attempts = 8;  // dispatch attempts before giving up (CHECK)
  // Simulated exponential backoff before each crash replay, in rounds:
  // base, 2·base, ... capped at backoff_cap. Recorded, never slept.
  std::int64_t backoff_base = 1;
  std::int64_t backoff_cap = 16;
  // When set, every successful execution records a predicted-vs-measured
  // sample (strictly read-only: recording never changes outputs or
  // charged loads). Not owned.
  ExecutionProfileSink* profile = nullptr;
  // Fine-grained recovery: after a fail-stop crash, fast-forward the
  // replayed execution over the rounds the latest interval checkpoint
  // covers instead of re-charging them (mpc::Cluster::BeginAttempt).
  // Needs checkpoint_interval > 0 to have any effect.
  bool resume_from_checkpoint = false;
  // Injected straggle factors at or above this threshold are actively
  // re-balanced onto the other live servers (charged re-balance rounds)
  // instead of passively stretching the critical path. 0 = passive.
  double straggle_threshold = 0;
  // On a load-budget abort, re-enter the planner: penalize the aborted
  // candidate with its measured round load (through the calibration seam),
  // re-score, and continue with the cheapest remaining candidate from the
  // input checkpoint. Degrading onto Yannakakis stays the fallback once
  // the candidates are exhausted (or with this off, the only response).
  bool replan_on_budget_abort = false;
};

// One-line "chosen X: predicted N, measured M (ratio R)" summary of an
// executed plan, for examples and bench logs.
std::string PredictedVsMeasuredReport(const PhysicalPlan& plan);

// Builds the profile sample for a finished execution and hands it to the
// options' sink (no-op without one). The prediction is de-calibrated via
// the executed candidate's calib_factor so the profile always stores
// measured-vs-constant-1 ratios.
inline void RecordProfiledExecution(const mpc::Cluster& cluster,
                                    const PhysicalPlan& plan,
                                    const ExecutionOptions& options,
                                    double wall_ms) {
  if (options.profile == nullptr) return;
  ExecutionRecord rec;
  rec.algorithm = plan.executed;
  rec.shape = plan.shape;
  rec.p = plan.stats.p;
  rec.input_size = plan.stats.total_input;
  rec.predicted_load = plan.predicted_load;
  if (const Candidate* c = plan.CandidateFor(plan.executed)) {
    rec.predicted_load = c->calib_factor > 0
                             ? c->predicted_load / c->calib_factor
                             : c->predicted_load;
  }
  rec.measured_load = cluster.stats().max_load;
  rec.wall_ms = wall_ms;
  rec.attempts = plan.recovery.attempts;
  rec.degraded = plan.recovery.degraded_to_baseline;
  options.profile->RecordExecution(rec);
}

// Abort-time re-planning (ExecutionOptions::replan_on_budget_abort): after
// a load-budget abort, feed the measured round load back through the
// calibration seam as a penalty factor on the aborted candidate, re-score
// the plan's candidates, and pick the cheapest one not yet aborted this
// run. Returns false when every candidate has aborted (the caller falls
// back to the unbudgeted Yannakakis degrade). `penalties` and
// `aborted_algos` persist across calls so repeated aborts keep narrowing
// the field; the penalty only ever raises a factor (the abort proves the
// constant is at least that large).
inline bool ReplanAfterBudgetAbort(PhysicalPlan& plan,
                                   const mpc::RoundAbort& abort,
                                   Algorithm aborted,
                                   CalibrationTable* penalties,
                                   std::vector<Algorithm>* aborted_algos,
                                   Algorithm* next) {
  if (std::find(aborted_algos->begin(), aborted_algos->end(), aborted) ==
      aborted_algos->end()) {
    aborted_algos->push_back(aborted);
  }
  if (penalties->empty()) {
    // Seed from the candidates so re-scoring keeps whatever calibration
    // the planner already applied.
    for (const Candidate& c : plan.candidates) {
      penalties->Set(c.algorithm, plan.shape,
                     c.calib_factor > 0 ? c.calib_factor : 1.0);
    }
  }
  if (const Candidate* c = plan.CandidateFor(aborted)) {
    const double base = c->calib_factor > 0
                            ? c->predicted_load / c->calib_factor
                            : c->predicted_load;
    if (base > 0 && abort.round_load > 0) {
      const double measured = static_cast<double>(abort.round_load) / base;
      penalties->Set(aborted, plan.shape,
                     std::max(penalties->Factor(aborted, plan.shape),
                              measured));
    }
  }
  plan.candidates = ScoreCandidates(plan.shape, plan.stats, penalties);
  plan.calibrated = true;
  for (const Candidate& c : plan.candidates) {
    if (std::find(aborted_algos->begin(), aborted_algos->end(),
                  c.algorithm) == aborted_algos->end()) {
      *next = c.algorithm;
      return true;
    }
  }
  return false;
}

// Runs `a` on the instance. CHECK-fails when the algorithm does not apply
// to the instance's shape (use Applicable / the planner's candidates).
template <SemiringC S>
DistRelation<S> DispatchAlgorithm(mpc::Cluster& cluster, Algorithm a,
                                  TreeInstance<S> instance) {
  cluster.CheckQuiescent();
  switch (a) {
    case Algorithm::kSingleRelation:
      CHECK_EQ(instance.query.num_edges(), 1);
      return AggregateByAttrs(cluster, instance.relations[0],
                              instance.query.output_attrs());
    case Algorithm::kYannakakis:
      return YannakakisJoinAggregate(cluster, std::move(instance));
    case Algorithm::kHyperCube:
      return HyperCubeJoinAggregate(cluster, std::move(instance));
    case Algorithm::kMatMulWorstCase:
    case Algorithm::kMatMulOutputSensitive: {
      CHECK_EQ(instance.query.num_edges(), 2);
      MatMulOptions options;
      options.strategy = a == Algorithm::kMatMulWorstCase
                             ? MatMulStrategy::kWorstCase
                             : MatMulStrategy::kOutputSensitive;
      return MatMul(cluster, std::move(instance.relations[0]),
                    std::move(instance.relations[1]), options);
    }
    case Algorithm::kLineTheorem4:
      return LineQueryAggregate(cluster, std::move(instance));
    case Algorithm::kStarTheorem5:
      return StarQueryAggregate(cluster, std::move(instance));
    case Algorithm::kStarLikeLemma7:
      return StarLikeAggregate(cluster, std::move(instance));
    case Algorithm::kTreeTheorem6:
      return TreeQueryAggregate(cluster, std::move(instance));
  }
  LOG(FATAL) << "unknown algorithm";
  return DistRelation<S>{};
}

template <SemiringC S>
struct PlanExecution {
  PhysicalPlan plan;
  DistRelation<S> result;
};

// Runs plan->chosen under the resilience protocol and fills
// plan->executed / plan->recovery. Expects the cluster's stats freshly
// reset (charges land in the execution phase).
//
// Protocol: the distributed inputs are checkpointed (one charged
// replication round per relation) and the cluster rng is snapshotted, so a
// replay re-draws exactly the hash seeds of the aborted attempt. Then the
// algorithm is dispatched under the armed fault plan and load budget.
//  * RoundAbort{kServerCrash}: the cluster has already shrunk to p-1 live
//    servers; simulated backoff is recorded, the rng is rewound, the
//    inputs are restored from the checkpoint onto the survivors (charged),
//    and the attempt repeats. Stats accumulate across attempts — recovery
//    is not free and the ledger says so.
//  * RoundAbort{kLoadBudget}: the planner's prediction was exceeded by the
//    configured factor; the run degrades onto the Yannakakis baseline
//    (which has no candidate-specific tuning to mispredict) and continues
//    unbudgeted. Single-edge queries re-run their only algorithm instead.
//
// Exhausting max_attempts is a reportable outcome, not a bug: a serving
// process must survive one doomed query. The cluster's fault machinery is
// disarmed, the recovery report is filled with the trail so far, and
// ResourceExhausted is returned. (ExecuteWithRecovery below keeps the
// CHECK-flavored contract for one-shot callers.)
template <SemiringC S>
StatusOr<DistRelation<S>> TryExecuteWithRecovery(
    mpc::Cluster& cluster, TreeInstance<S> instance,
    const ExecutionOptions& options, PhysicalPlan* plan) {
  plan->executed = plan->chosen;
  const bool resilient = options.faults.enabled ||
                         options.checkpoint_interval > 0 ||
                         options.load_budget_factor > 0 ||
                         options.straggle_threshold > 0;
  Stopwatch exec_timer;
  if (!resilient) {
    DistRelation<S> result =
        DispatchAlgorithm(cluster, plan->chosen, std::move(instance));
    RecordProfiledExecution(cluster, *plan, options,
                            exec_timer.ElapsedMillis());
    return result;
  }

  cluster.SetCheckpointInterval(options.checkpoint_interval);
  cluster.SetStraggleThreshold(options.straggle_threshold);
  const JoinTree query = instance.query;
  std::vector<Schema> schemas;
  std::vector<mpc::DistSnapshot<Tuple<S>>> snapshots;
  schemas.reserve(instance.relations.size());
  snapshots.reserve(instance.relations.size());
  for (const auto& rel : instance.relations) {
    schemas.push_back(rel.schema);
    snapshots.push_back(mpc::CheckpointDist(cluster, rel.data));
  }
  const Rng rng_snapshot = cluster.rng();
  if (options.faults.enabled) cluster.EnableFaults(options.faults);
  if (options.load_budget_factor > 0 && plan->predicted_load > 0) {
    cluster.SetLoadBudget(static_cast<std::int64_t>(
        std::llround(options.load_budget_factor * plan->predicted_load)));
  }

  RecoveryReport& report = plan->recovery;
  Algorithm algo = plan->chosen;
  std::int64_t backoff = options.backoff_base;
  // How many rounds the next replay may fast-forward over (the latest
  // interval checkpoint's coverage, read at crash time). Round snapshots
  // are algorithm-specific, so a re-planned algorithm always restarts from
  // the input checkpoint (resume 0).
  int resume_rounds = 0;
  // Measured penalty factors accumulated from budget aborts; fed back
  // through the calibration seam when re-planning.
  CalibrationTable abort_penalties;
  std::vector<Algorithm> aborted_algos;
  const auto finish_report = [&](int attempts) {
    cluster.SetLoadBudget(0);
    cluster.SetCheckpointInterval(0);
    cluster.SetStraggleThreshold(0);
    cluster.DisableFaults();
    report.attempts = attempts;
    report.crashes = cluster.stats().crashes;
    report.resumes = cluster.stats().resumes;
    report.resumed_rounds = cluster.stats().resumed_rounds;
    report.rebalances = cluster.stats().rebalances;
    report.events = cluster.fault_log();
    plan->executed = algo;
  };
  for (int attempt = 1;; ++attempt) {
    if (attempt > options.max_attempts) {
      finish_report(options.max_attempts);
      return ResourceExhaustedError(
          std::string("recovery attempts exhausted for ") +
          AlgorithmName(algo) + " after " +
          std::to_string(options.max_attempts) + " attempt(s)");
    }
    try {
      DistRelation<S> result;
      if (attempt == 1 && algo == plan->chosen) {
        result = DispatchAlgorithm(cluster, algo, std::move(instance));
      } else {
        TreeInstance<S> replay{query, {}};
        replay.relations.reserve(snapshots.size());
        for (std::size_t i = 0; i < snapshots.size(); ++i) {
          replay.relations.push_back(DistRelation<S>{
              schemas[i], mpc::RestoreDist(cluster, snapshots[i])});
        }
        cluster.BeginAttempt(resume_rounds);
        result = DispatchAlgorithm(cluster, algo, std::move(replay));
      }
      finish_report(attempt);
      RecordProfiledExecution(cluster, *plan, options,
                              exec_timer.ElapsedMillis());
      return result;
    } catch (const mpc::RoundAbort& abort) {
      resume_rounds = 0;
      if (abort.reason == mpc::RoundAbort::Reason::kLoadBudget) {
        report.budget_aborts += 1;
        cluster.SetLoadBudget(0);
        Algorithm next = algo;
        if (options.replan_on_budget_abort &&
            ReplanAfterBudgetAbort(*plan, abort, algo, &abort_penalties,
                                   &aborted_algos, &next)) {
          // Re-planned: continue with the cheapest remaining candidate,
          // re-budgeted from its penalty-rescored prediction.
          report.replans += 1;
          algo = next;
          if (options.load_budget_factor > 0) {
            if (const Candidate* c = plan->CandidateFor(algo)) {
              if (c->predicted_load > 0) {
                cluster.SetLoadBudget(static_cast<std::int64_t>(std::llround(
                    options.load_budget_factor * c->predicted_load)));
              }
            }
          }
          if (mpc::RoundObserver* obs = cluster.observer()) {
            obs->OnEvent("replan", cluster.stats().rounds,
                         std::string("budget abort: re-planning onto ") +
                             AlgorithmName(algo));
          }
        } else if (algo != Algorithm::kYannakakis &&
                   plan->shape != QueryShape::kSingleEdge) {
          // The budget fired with no candidate left to try; whatever we
          // fall back to runs unbudgeted (degrading again has nowhere to
          // go).
          algo = Algorithm::kYannakakis;
          report.degraded_to_baseline = true;
          if (mpc::RoundObserver* obs = cluster.observer()) {
            obs->OnEvent("degrade", cluster.stats().rounds,
                         std::string("budget abort: falling back to ") +
                             AlgorithmName(algo));
          }
        }
      } else {
        report.backoff_total += backoff;
        backoff = std::min(options.backoff_cap, backoff * 2);
        if (options.resume_from_checkpoint) {
          resume_rounds = cluster.checkpointed_rounds();
        }
      }
      if (mpc::RoundObserver* obs = cluster.observer()) {
        obs->OnEvent("replay", cluster.stats().rounds,
                     std::string("attempt ") + std::to_string(attempt) +
                         " aborted; replaying " + AlgorithmName(algo));
      }
      cluster.rng() = rng_snapshot;
    }
  }
}

// CHECK-flavored wrapper for one-shot callers (PlanAndRun, examples) whose
// fault schedules are known to converge within max_attempts.
template <SemiringC S>
DistRelation<S> ExecuteWithRecovery(mpc::Cluster& cluster,
                                    TreeInstance<S> instance,
                                    const ExecutionOptions& options,
                                    PhysicalPlan* plan) {
  StatusOr<DistRelation<S>> result = TryExecuteWithRecovery(
      cluster, std::move(instance), options, plan);
  CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

// Plans the instance, runs the chosen algorithm under the resilience
// options, and fills the plan's measured side (measured_load, out_actual,
// planning/execution stats, recovery report, and the executed candidate's
// measured_load).
template <SemiringC S>
PlanExecution<S> PlanAndRun(mpc::Cluster& cluster, TreeInstance<S> instance,
                            const PlannerOptions& options,
                            const ExecutionOptions& exec_options) {
  cluster.ResetStats();
  PlanExecution<S> exec;
  exec.plan = PlanQuery(cluster, instance, options);
  exec.plan.planning_stats = cluster.stats();
  if (mpc::RoundObserver* obs = cluster.observer()) {
    obs->OnEvent("plan", 0,
                 std::string("chosen ") + AlgorithmName(exec.plan.chosen) +
                     " for " + QueryShapeName(exec.plan.shape) + " (predicted " +
                     std::to_string(static_cast<std::int64_t>(
                         exec.plan.predicted_load)) +
                     ")");
  }

  cluster.ResetStats();
  exec.result = ExecuteWithRecovery(cluster, std::move(instance),
                                    exec_options, &exec.plan);
  exec.plan.execution_stats = cluster.stats();
  exec.plan.measured_load = exec.plan.execution_stats.max_load;
  exec.plan.out_actual = exec.result.TotalSize();
  if (Candidate* c = exec.plan.MutableCandidateFor(exec.plan.executed)) {
    c->measured_load = exec.plan.measured_load;
  }
  return exec;
}

template <SemiringC S>
PlanExecution<S> PlanAndRun(mpc::Cluster& cluster, TreeInstance<S> instance,
                            const PlannerOptions& options = {}) {
  return PlanAndRun(cluster, std::move(instance), options,
                    ExecutionOptions{});
}

// Runs EVERY candidate on (copies of) the instance and fills each
// candidate's measured_load — the ground truth the planner's ranking is
// judged against in tests and benches. Leaves the cluster's live stats
// reset. Quadratic in work by design; not part of the planning path.
template <SemiringC S>
void MeasureCandidates(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                       PhysicalPlan* plan) {
  for (Candidate& c : plan->candidates) {
    cluster.ResetStats();
    TreeInstance<S> copy = instance;
    DistRelation<S> result =
        DispatchAlgorithm(cluster, c.algorithm, std::move(copy));
    c.measured_load = cluster.stats().max_load;
    if (plan->out_actual < 0) plan->out_actual = result.TotalSize();
    if (c.algorithm == plan->chosen) {
      plan->measured_load = c.measured_load;
      plan->execution_stats = cluster.stats();
    }
  }
  cluster.ResetStats();
}

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_EXECUTOR_H_
