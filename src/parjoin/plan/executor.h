// The unified execution runtime: dispatches a planner-chosen Algorithm
// onto the library's entry points and reports predicted vs. measured load.
//
// PlanAndRun is the one-call entry point examples and benches use:
//   auto exec = plan::PlanAndRun(cluster, instance);
//   exec.plan.ToText() / exec.plan.ToJson() / exec.result
// The cluster's stats are phased: planning (the estimation rounds) and
// execution (the chosen algorithm) are recorded separately in the plan;
// after the call the cluster's live stats hold the execution phase only.

#ifndef PARJOIN_PLAN_EXECUTOR_H_
#define PARJOIN_PLAN_EXECUTOR_H_

#include <string>
#include <utility>

#include "parjoin/algorithms/hypercube.h"
#include "parjoin/algorithms/line_query.h"
#include "parjoin/algorithms/matmul.h"
#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/starlike_query.h"
#include "parjoin/algorithms/tree_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/plan/planner.h"
#include "parjoin/relation/ops.h"

namespace parjoin {
namespace plan {

// One-line "chosen X: predicted N, measured M (ratio R)" summary of an
// executed plan, for examples and bench logs.
std::string PredictedVsMeasuredReport(const PhysicalPlan& plan);

// Runs `a` on the instance. CHECK-fails when the algorithm does not apply
// to the instance's shape (use Applicable / the planner's candidates).
template <SemiringC S>
DistRelation<S> DispatchAlgorithm(mpc::Cluster& cluster, Algorithm a,
                                  TreeInstance<S> instance) {
  switch (a) {
    case Algorithm::kSingleRelation:
      CHECK_EQ(instance.query.num_edges(), 1);
      return AggregateByAttrs(cluster, instance.relations[0],
                              instance.query.output_attrs());
    case Algorithm::kYannakakis:
      return YannakakisJoinAggregate(cluster, std::move(instance));
    case Algorithm::kHyperCube:
      return HyperCubeJoinAggregate(cluster, std::move(instance));
    case Algorithm::kMatMulWorstCase:
    case Algorithm::kMatMulOutputSensitive: {
      CHECK_EQ(instance.query.num_edges(), 2);
      MatMulOptions options;
      options.strategy = a == Algorithm::kMatMulWorstCase
                             ? MatMulStrategy::kWorstCase
                             : MatMulStrategy::kOutputSensitive;
      return MatMul(cluster, std::move(instance.relations[0]),
                    std::move(instance.relations[1]), options);
    }
    case Algorithm::kLineTheorem4:
      return LineQueryAggregate(cluster, std::move(instance));
    case Algorithm::kStarTheorem5:
      return StarQueryAggregate(cluster, std::move(instance));
    case Algorithm::kStarLikeLemma7:
      return StarLikeAggregate(cluster, std::move(instance));
    case Algorithm::kTreeTheorem6:
      return TreeQueryAggregate(cluster, std::move(instance));
  }
  LOG(FATAL) << "unknown algorithm";
  return DistRelation<S>{};
}

template <SemiringC S>
struct PlanExecution {
  PhysicalPlan plan;
  DistRelation<S> result;
};

// Plans the instance, runs the chosen algorithm, and fills the plan's
// measured side (measured_load, out_actual, planning/execution stats, and
// the chosen candidate's measured_load).
template <SemiringC S>
PlanExecution<S> PlanAndRun(mpc::Cluster& cluster, TreeInstance<S> instance,
                            const PlannerOptions& options = {}) {
  cluster.ResetStats();
  PlanExecution<S> exec;
  exec.plan = PlanQuery(cluster, instance, options);
  exec.plan.planning_stats = cluster.stats();

  cluster.ResetStats();
  exec.result =
      DispatchAlgorithm(cluster, exec.plan.chosen, std::move(instance));
  exec.plan.execution_stats = cluster.stats();
  exec.plan.measured_load = exec.plan.execution_stats.max_load;
  exec.plan.out_actual = exec.result.TotalSize();
  if (Candidate* c = exec.plan.MutableCandidateFor(exec.plan.chosen)) {
    c->measured_load = exec.plan.measured_load;
  }
  return exec;
}

// Runs EVERY candidate on (copies of) the instance and fills each
// candidate's measured_load — the ground truth the planner's ranking is
// judged against in tests and benches. Leaves the cluster's live stats
// reset. Quadratic in work by design; not part of the planning path.
template <SemiringC S>
void MeasureCandidates(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                       PhysicalPlan* plan) {
  for (Candidate& c : plan->candidates) {
    cluster.ResetStats();
    TreeInstance<S> copy = instance;
    DistRelation<S> result =
        DispatchAlgorithm(cluster, c.algorithm, std::move(copy));
    c.measured_load = cluster.stats().max_load;
    if (plan->out_actual < 0) plan->out_actual = result.TotalSize();
    if (c.algorithm == plan->chosen) {
      plan->measured_load = c.measured_load;
      plan->execution_stats = cluster.stats();
    }
  }
  cluster.ResetStats();
}

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_EXECUTOR_H_
