#include "parjoin/plan/planner.h"

#include <cmath>
#include <sstream>

namespace parjoin {
namespace plan {
namespace {

// Minimal JSON string escaping: the strings we emit (formulas, debug
// strings) only need quote/backslash/control handling.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void AppendStats(const char* key, const mpc::Cluster::Stats& s,
                 std::ostringstream& os) {
  os << '"' << key << "\":{\"rounds\":" << s.rounds
     << ",\"max_load\":" << s.max_load << ",\"total_comm\":" << s.total_comm
     << ",\"critical_path\":" << s.critical_path
     << ",\"recovery_comm\":" << s.recovery_comm
     << ",\"retransmits\":" << s.retransmits << ",\"crashes\":" << s.crashes
     << ",\"resumes\":" << s.resumes
     << ",\"resumed_rounds\":" << s.resumed_rounds
     << ",\"rebalances\":" << s.rebalances
     << ",\"rebalance_comm\":" << s.rebalance_comm << '}';
}

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSingleRelation:
      return "single_relation";
    case Algorithm::kYannakakis:
      return "yannakakis";
    case Algorithm::kHyperCube:
      return "hypercube";
    case Algorithm::kMatMulWorstCase:
      return "matmul_worst_case";
    case Algorithm::kMatMulOutputSensitive:
      return "matmul_output_sensitive";
    case Algorithm::kLineTheorem4:
      return "line_theorem4";
    case Algorithm::kStarTheorem5:
      return "star_theorem5";
    case Algorithm::kStarLikeLemma7:
      return "starlike_lemma7";
    case Algorithm::kTreeTheorem6:
      return "tree_theorem6";
  }
  return "?";
}

const Candidate* PhysicalPlan::CandidateFor(Algorithm a) const {
  for (const Candidate& c : candidates) {
    if (c.algorithm == a) return &c;
  }
  return nullptr;
}

Candidate* PhysicalPlan::MutableCandidateFor(Algorithm a) {
  for (Candidate& c : candidates) {
    if (c.algorithm == a) return &c;
  }
  return nullptr;
}

std::string PhysicalPlan::ToText() const {
  std::ostringstream os;
  os << "=== physical plan ===\n"
     << "shape: " << QueryShapeName(shape) << "\n"
     << "p = " << stats.p << ", N = " << stats.total_input << " (";
  for (size_t i = 0; i < stats.relation_sizes.size(); ++i) {
    if (i > 0) os << " + ";
    os << stats.relation_sizes[i];
  }
  os << ")\n"
     << "OUT " << (stats.out_is_estimated ? "~ " : "= ")
     << stats.out_estimate << ", largest intermediate J ~ "
     << stats.join_estimate << "\n"
     << "candidates (ascending predicted load"
     << (calibrated ? ", profile-calibrated" : "") << "):\n";
  for (const Candidate& c : candidates) {
    os << "  " << (c.algorithm == chosen ? "* " : "  ")
       << AlgorithmName(c.algorithm) << ": predicted "
       << static_cast<std::int64_t>(std::llround(c.predicted_load));
    if (c.calib_factor != 1) {
      os << " (x" << JsonDouble(c.calib_factor) << " calib)";
    }
    if (c.measured_load >= 0) os << ", measured " << c.measured_load;
    os << "  [" << c.formula << "]\n";
  }
  os << "chosen: " << AlgorithmName(chosen) << " (predicted load "
     << static_cast<std::int64_t>(std::llround(predicted_load)) << ")\n";
  if (measured_load >= 0) {
    os << "measured: load " << measured_load << " in "
       << execution_stats.rounds << " round(s)";
    if (out_actual >= 0) os << ", OUT = " << out_actual;
    if (predicted_load > 0) {
      os << "  (measured/predicted = "
         << JsonDouble(static_cast<double>(measured_load) / predicted_load)
         << ")";
    }
    os << "\n";
  }
  if (executed != chosen || recovery.attempts > 1 ||
      recovery.crashes > 0 || recovery.budget_aborts > 0 ||
      execution_stats.retransmits > 0) {
    os << "recovery: executed " << AlgorithmName(executed) << " in "
       << recovery.attempts << " attempt(s), " << recovery.crashes
       << " crash(es), " << recovery.budget_aborts << " budget abort(s), "
       << execution_stats.retransmits << " retransmit(s)";
    if (recovery.degraded_to_baseline) os << ", degraded to baseline";
    if (recovery.backoff_total > 0) {
      os << ", backoff " << recovery.backoff_total << " round(s)";
    }
    if (recovery.resumes > 0) {
      os << ", resumed " << recovery.resumes << " time(s) over "
         << recovery.resumed_rounds << " checkpointed round(s)";
    }
    if (recovery.rebalances > 0) {
      os << ", " << recovery.rebalances << " re-balance round(s) ("
         << execution_stats.rebalance_comm << " tuple(s))";
    }
    if (recovery.replans > 0) os << ", " << recovery.replans << " re-plan(s)";
    os << "\n"
       << "recovery comm: " << execution_stats.recovery_comm
       << " tuple(s), critical path " << execution_stats.critical_path
       << "\n";
    for (const std::string& e : recovery.events) {
      os << "  - " << e << "\n";
    }
  }
  if (!structure.empty()) os << "--- structure ---\n" << structure;
  return os.str();
}

std::string PhysicalPlan::ToJson() const {
  std::ostringstream os;
  os << "{\"shape\":\"" << QueryShapeName(shape) << "\",\"query\":\""
     << JsonEscape(query_debug) << "\",\"p\":" << stats.p
     << ",\"relation_sizes\":[";
  for (size_t i = 0; i < stats.relation_sizes.size(); ++i) {
    if (i > 0) os << ',';
    os << stats.relation_sizes[i];
  }
  os << "],\"total_input\":" << stats.total_input << ",\"n1\":" << stats.n1
     << ",\"n2\":" << stats.n2 << ",\"star_arity\":" << stats.star_arity
     << ",\"out_estimate\":" << stats.out_estimate
     << ",\"join_estimate\":" << stats.join_estimate
     << ",\"out_is_estimated\":"
     << (stats.out_is_estimated ? "true" : "false") << ",\"candidates\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (i > 0) os << ',';
    os << "{\"algorithm\":\"" << AlgorithmName(c.algorithm)
       << "\",\"predicted_load\":" << JsonDouble(c.predicted_load)
       << ",\"calib_factor\":" << JsonDouble(c.calib_factor)
       << ",\"formula\":\"" << JsonEscape(c.formula)
       << "\",\"measured_load\":" << c.measured_load << '}';
  }
  os << "],\"calibrated\":" << (calibrated ? "true" : "false")
     << ",\"chosen\":\"" << AlgorithmName(chosen)
     << "\",\"executed\":\"" << AlgorithmName(executed)
     << "\",\"predicted_load\":" << JsonDouble(predicted_load)
     << ",\"measured_load\":" << measured_load
     << ",\"out_actual\":" << out_actual << ',';
  AppendStats("planning", planning_stats, os);
  os << ',';
  AppendStats("execution", execution_stats, os);
  os << ",\"recovery\":{\"attempts\":" << recovery.attempts
     << ",\"crashes\":" << recovery.crashes
     << ",\"budget_aborts\":" << recovery.budget_aborts
     << ",\"retransmits\":" << execution_stats.retransmits
     << ",\"recovery_comm\":" << execution_stats.recovery_comm
     << ",\"critical_path\":" << execution_stats.critical_path
     << ",\"degraded_to_baseline\":"
     << (recovery.degraded_to_baseline ? "true" : "false")
     << ",\"backoff_total\":" << recovery.backoff_total
     << ",\"resumes\":" << recovery.resumes
     << ",\"resumed_rounds\":" << recovery.resumed_rounds
     << ",\"rebalances\":" << recovery.rebalances
     << ",\"rebalance_comm\":" << execution_stats.rebalance_comm
     << ",\"replans\":" << recovery.replans << ",\"events\":[";
  for (size_t i = 0; i < recovery.events.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << JsonEscape(recovery.events[i]) << '"';
  }
  os << "]}}";
  return os.str();
}

}  // namespace plan
}  // namespace parjoin
