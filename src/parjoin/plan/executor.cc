#include "parjoin/plan/executor.h"

#include <cmath>
#include <sstream>

namespace parjoin {
namespace plan {

std::string PredictedVsMeasuredReport(const PhysicalPlan& plan) {
  std::ostringstream os;
  os << "chosen " << AlgorithmName(plan.chosen) << ": predicted load "
     << static_cast<std::int64_t>(std::llround(plan.predicted_load));
  if (plan.measured_load >= 0) {
    os << ", measured load " << plan.measured_load;
    if (plan.predicted_load > 0) {
      const double ratio =
          static_cast<double>(plan.measured_load) / plan.predicted_load;
      os.precision(3);
      os << " (measured/predicted " << ratio << ")";
    }
  }
  return os.str();
}

}  // namespace plan
}  // namespace parjoin
