// The cost-based planner: classifies an instance via query/join_tree.h,
// runs a cheap KMV-based estimation round on the simulator (OUT and the
// largest Yannakakis intermediate J), scores every applicable algorithm
// through plan/cost_model.h, and returns an explainable PhysicalPlan.
//
// Estimation by shape (all rounds linear-load, charged on the cluster):
//  * matmul / line — the §2.2 chain estimator (EstimateChainOut): a
//    constant-factor OUT approximation w.h.p., plus per-level intermediate
//    sizes for J.
//  * star — co-partition by the center B; per b, per-arm degrees and KMV
//    value sketches. J = Σ_b Π_i deg_i(b) (the full-join size Yannakakis
//    pays); OUT is estimated by deduplicating b values whose arm-set
//    signatures agree (two b with identical arm value sets contribute the
//    same output combinations exactly once). Computing star OUT exactly is
//    open (paper §5); this is an upper estimate that is tight on
//    block-structured instances.
//  * star-like / tree / free-connex / single edge — per-output-attribute
//    KMV distinct counts; OUT <= Π_{a in y} min_rel distinct_rel(a), and J
//    falls back to the Table 1 worst case N*OUT.
//
// The estimates are computed on the instance as-is: dangling tuples (which
// every algorithm removes before working) can only push the estimates up,
// keeping them valid upper bounds for ranking.

#ifndef PARJOIN_PLAN_PLANNER_H_
#define PARJOIN_PLAN_PLANNER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/sorted_view.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/plan/plan.h"
#include "parjoin/query/explain.h"
#include "parjoin/query/instance.h"
#include "parjoin/sketch/kmv.h"
#include "parjoin/sketch/out_estimate.h"

namespace parjoin {
namespace plan {

struct PlannerOptions {
  // Run the estimation round. When false (or when out_override is set) the
  // planner scores with whatever OUT it is given and the Table 1 worst
  // case for J.
  bool estimate_out = true;
  // Repetitions for the §2.2 chain estimator. The §2.2 default (0 here)
  // is ceil(log2 N) for the w.h.p. guarantee; planning keeps it constant
  // so the estimation round stays a small fraction of execution.
  int estimate_repetitions = 5;
  // >= 0: trust this OUT instead of estimating (benches that know the
  // exact OUT from the block geometry, repeated queries, ...).
  std::int64_t out_override = -1;
  // Profile-fitted constant factors (cost_model.h). Null: score with
  // constant 1. Not owned; must outlive the PlanQuery call.
  const CalibrationTable* calibration = nullptr;
};

namespace internal_plan {

inline std::int64_t ClampedMul(std::int64_t a, std::int64_t b) {
  const double v = static_cast<double>(a) * static_cast<double>(b);
  if (v >= 4.0e18) return std::int64_t{4000000000000000000};
  return static_cast<std::int64_t>(v);
}

// OUT and J for path-shaped queries (matmul and line) via §2.2.
template <SemiringC S>
void EstimatePath(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                  const std::vector<AttrId>& path, int repetitions,
                  InstanceStats* stats) {
  // Align relations with consecutive path edges.
  std::vector<DistRelation<S>> chain;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    for (int e = 0; e < instance.query.num_edges(); ++e) {
      const QueryEdge& edge = instance.query.edge(e);
      if ((edge.u == path[i] && edge.v == path[i + 1]) ||
          (edge.v == path[i] && edge.u == path[i + 1])) {
        chain.push_back(instance.relations[static_cast<size_t>(e)]);
        break;
      }
    }
  }
  CHECK_EQ(chain.size(), path.size() - 1);
  if (chain.size() == 2) {
    stats->n1 = chain[0].TotalSize();
    stats->n2 = chain[1].TotalSize();
  }
  const OutEstimate est =
      EstimateChainOut(cluster, chain, path, repetitions);
  stats->out_estimate = std::max<std::int64_t>(1, est.total);
  stats->join_estimate =
      std::max(stats->out_estimate, est.max_intermediate);
  stats->out_is_estimated = true;
}

// OUT and J for star queries via per-center degree/sketch signatures.
template <SemiringC S>
void EstimateStar(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                  AttrId center, InstanceStats* stats) {
  const int p = cluster.p();
  const int n = instance.query.num_edges();
  const SeededHash hash(cluster.rng().Next());
  auto route_b = [&](Value b) {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(b) ^ 0xb1a9) %
                            static_cast<std::uint64_t>(p));
  };

  // Co-partition every relation by B (as-executed exchanges, charged).
  std::vector<mpc::Dist<Tuple<S>>> by_b(static_cast<size_t>(n));
  std::vector<int> b_pos(static_cast<size_t>(n));
  std::vector<int> arm_pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& rel = instance.relations[static_cast<size_t>(i)];
    b_pos[static_cast<size_t>(i)] = rel.schema.IndexOf(center);
    arm_pos[static_cast<size_t>(i)] = 1 - b_pos[static_cast<size_t>(i)];
    CHECK_GE(b_pos[static_cast<size_t>(i)], 0);
    by_b[static_cast<size_t>(i)] = mpc::Exchange(
        cluster, rel.data, p, [&](const Tuple<S>& t) {
          return route_b(t.row[b_pos[static_cast<size_t>(i)]]);
        });
  }

  // Per b: per-arm degree and KMV sketch of the arm values. Two b values
  // with identical arm value sets contribute the same output combinations;
  // the (sketch, degree) signature identifies them up to sketch collisions.
  struct SigCount {
    std::uint64_t sig = 0;
    double combos = 0;
  };
  mpc::Dist<SigCount> sigs(p);
  double join_total = 0;
  for (int s = 0; s < p; ++s) {
    struct BInfo {
      std::vector<std::int64_t> deg;
      std::vector<Kmv> arm;
    };
    std::unordered_map<Value, BInfo> infos;
    for (int i = 0; i < n; ++i) {
      for (const auto& t : by_b[static_cast<size_t>(i)].part(s)) {
        BInfo& info = infos[t.row[b_pos[static_cast<size_t>(i)]]];
        if (info.deg.empty()) {
          info.deg.assign(static_cast<size_t>(n), 0);
          info.arm.resize(static_cast<size_t>(n));
        }
        info.deg[static_cast<size_t>(i)] += 1;
        info.arm[static_cast<size_t>(i)].AddHash(hash(
            static_cast<std::uint64_t>(
                t.row[arm_pos[static_cast<size_t>(i)]])));
      }
    }
    // Sorted: join_total is a floating-point fold and sigs feeds an
    // exchange, so both must see a data-determined order.
    for (const auto& [b, info] : SortedEntries(infos)) {
      double combos = 1;
      bool complete = true;
      for (std::int64_t d : info.deg) {
        if (d == 0) complete = false;  // dangling b: joins nothing
        combos *= static_cast<double>(d);
      }
      if (!complete) continue;
      join_total += combos;
      std::uint64_t sig = 0x517cc1b727220a95ULL;
      for (int i = 0; i < n; ++i) {
        sig = Mix64(sig ^ static_cast<std::uint64_t>(
                              info.deg[static_cast<size_t>(i)]));
        for (int k = 0; k < info.arm[static_cast<size_t>(i)].size(); ++k) {
          sig = Mix64(sig ^ info.arm[static_cast<size_t>(i)].hash(k));
        }
      }
      sigs.part(s).push_back(SigCount{sig, combos});
    }
  }

  // Deduplicate signatures globally (one exchange; |sigs| <= |dom(B)|).
  mpc::Dist<SigCount> by_sig = mpc::Exchange(
      cluster, sigs, p, [&](const SigCount& sc) {
        return static_cast<int>(sc.sig % static_cast<std::uint64_t>(p));
      });
  double out_total = 0;
  for (int s = 0; s < p; ++s) {
    std::unordered_map<std::uint64_t, double> uniq;
    for (const auto& sc : by_sig.part(s)) uniq[sc.sig] = sc.combos;
    // Sorted: floating-point fold; addition order must not follow hash
    // order.
    for (const auto& [sig, combos] : SortedEntries(uniq)) {
      out_total += combos;
    }
  }

  stats->star_arity = n;
  stats->out_estimate = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(
             std::min(out_total, 4.0e18))));
  stats->join_estimate = std::max(
      stats->out_estimate,
      static_cast<std::int64_t>(std::llround(
          std::min(join_total, 4.0e18))));
  stats->out_is_estimated = true;
}

// Generic upper estimate for arbitrary trees: per-output-attribute KMV
// distinct counts (minimized over the relations containing the attribute),
// multiplied. The distributed realization is one local sketching pass plus
// an O(p)-tuple gather; charged as one uniform linear round.
template <SemiringC S>
void EstimateGeneric(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                     InstanceStats* stats) {
  const SeededHash hash(cluster.rng().Next());
  double out = 1;
  for (AttrId a : instance.query.output_attrs()) {
    double best = -1;
    for (int e = 0; e < instance.query.num_edges(); ++e) {
      const auto& rel = instance.relations[static_cast<size_t>(e)];
      const int pos = rel.schema.IndexOf(a);
      if (pos < 0) continue;
      Kmv sketch;
      rel.data.ForEach([&](const Tuple<S>& t) {
        sketch.AddHash(hash(static_cast<std::uint64_t>(t.row[pos])));
      });
      const double d = std::max(1.0, sketch.Estimate());
      if (best < 0 || d < best) best = d;
    }
    if (best > 0) out *= best;
    if (out > 4.0e18) {
      out = 4.0e18;
      break;
    }
  }
  cluster.ChargeUniformRound(
      (instance.TotalInputSize() + cluster.p() - 1) / cluster.p());
  stats->out_estimate = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(out)));
  // Table 1 worst case for the baseline's largest intermediate.
  stats->join_estimate = std::max(
      stats->out_estimate,
      ClampedMul(stats->total_input, stats->out_estimate));
  stats->out_is_estimated = true;
}

}  // namespace internal_plan

// Classifies, estimates, scores, and returns the plan. Estimation rounds
// are charged on `cluster` (they are part of every paper algorithm's load
// budget); the instance itself is not modified.
template <SemiringC S>
PhysicalPlan PlanQuery(mpc::Cluster& cluster, const TreeInstance<S>& instance,
                       const PlannerOptions& options = {}) {
  instance.Validate();
  PhysicalPlan plan;
  plan.shape = instance.query.Classify();
  plan.query_debug = instance.query.DebugString();
  plan.structure = ExplainQuery(instance.query);

  InstanceStats& stats = plan.stats;
  stats.p = cluster.p();
  stats.num_relations = instance.query.num_edges();
  for (const auto& rel : instance.relations) {
    stats.relation_sizes.push_back(rel.TotalSize());
    stats.total_input += rel.TotalSize();
  }
  if (plan.shape == QueryShape::kMatMul && stats.num_relations == 2) {
    stats.n1 = stats.relation_sizes[0];
    stats.n2 = stats.relation_sizes[1];
  }

  if (options.out_override >= 0) {
    stats.out_estimate = std::max<std::int64_t>(1, options.out_override);
    stats.join_estimate = std::max(
        stats.out_estimate,
        internal_plan::ClampedMul(stats.total_input, stats.out_estimate));
  } else if (options.estimate_out) {
    switch (plan.shape) {
      case QueryShape::kMatMul:
      case QueryShape::kLine: {
        std::vector<AttrId> path;
        CHECK(instance.query.IsPath(&path));
        internal_plan::EstimatePath(cluster, instance, path,
                                    options.estimate_repetitions, &stats);
        break;
      }
      case QueryShape::kStar: {
        AttrId center = -1;
        CHECK(instance.query.IsStarShaped(&center));
        internal_plan::EstimateStar(cluster, instance, center, &stats);
        break;
      }
      default:
        internal_plan::EstimateGeneric(cluster, instance, &stats);
        break;
    }
  } else {
    stats.join_estimate =
        internal_plan::ClampedMul(stats.total_input, stats.out_estimate);
  }

  plan.candidates = ScoreCandidates(plan.shape, stats, options.calibration);
  plan.calibrated =
      options.calibration != nullptr && !options.calibration->empty();
  CHECK(!plan.candidates.empty())
      << "no algorithm applies to shape " << QueryShapeName(plan.shape);
  plan.chosen = plan.candidates.front().algorithm;
  plan.predicted_load = plan.candidates.front().predicted_load;
  return plan;
}

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_PLANNER_H_
