// The single shared source of the paper's load formulas.
//
// Two layers:
//  * Closed-form evaluations of the Table 1 bounds (moved here from the
//    bench-only bench/bounds.{h,cc}), reported by every bench next to
//    measured loads. All bounds are asymptotic; these helpers evaluate the
//    dominant expression with constant 1, so ratios (measured / bound) are
//    meaningful across a sweep even though absolute constants are
//    implementation-specific.
//  * The planner's candidate scoring: PredictLoad evaluates the bound that
//    applies to one (algorithm, shape, stats) combination, and
//    ScoreCandidates enumerates every algorithm applicable to a shape in
//    ascending predicted-load order. The Yannakakis baseline is scored
//    with the ESTIMATED largest intermediate J (not the worst-case OUT
//    expression) when the planner measured one — that is what places the
//    Table 1 crossovers correctly on concrete instances.

#ifndef PARJOIN_PLAN_COST_MODEL_H_
#define PARJOIN_PLAN_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "parjoin/plan/plan.h"

namespace parjoin {
namespace plan {

// --- Table 1 closed forms (constant 1) --------------------------------------

// Distributed Yannakakis, matrix multiplication: O(N/p + N*sqrt(OUT)/p).
double YannakakisMatMulBound(std::int64_t n, std::int64_t out, int p);

// Theorem 1: O((N1+N2)/p + min{sqrt(N1 N2 / p),
//                               (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double NewMatMulBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                      int p);

// Distributed Yannakakis, star query (n relations):
// O(N/p + N * OUT^{1-1/n} / p).
double YannakakisStarBound(std::int64_t n, std::int64_t out, int arity, int p);

// Distributed Yannakakis, line/tree queries: O(N/p + N*OUT/p).
double YannakakisTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 4 / Theorem 5 (line and star queries):
// O((N*OUT/p)^{2/3} + N*OUT^{1/2}/p + (N+OUT)/p).
double NewLineStarBound(std::int64_t n, std::int64_t out, int p);

// Theorem 6 (tree queries): O(N*OUT^{2/3}/p + (N+OUT)/p).
double NewTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 3 lower bound:
// Omega(min{sqrt(N1 N2 / p), (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double MatMulLowerBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                        int p);

// --- Planner scoring ---------------------------------------------------------

// True iff `a` can execute an instance of this shape.
bool Applicable(Algorithm a, QueryShape shape);

// Predicted load of running `a` on an instance with `stats` (constant 1).
// CHECK-fails when !Applicable(a, shape).
double PredictLoad(Algorithm a, QueryShape shape, const InstanceStats& stats);

// The human-readable expression PredictLoad evaluates.
const char* LoadFormula(Algorithm a, QueryShape shape);

// Every applicable candidate, ascending by predicted load (ties broken by
// enum order, so the dispatch is deterministic).
std::vector<Candidate> ScoreCandidates(QueryShape shape,
                                       const InstanceStats& stats);

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_COST_MODEL_H_
