// The single shared source of the paper's load formulas.
//
// Two layers:
//  * Closed-form evaluations of the Table 1 bounds (moved here from the
//    bench-only bench/bounds.{h,cc}), reported by every bench next to
//    measured loads. All bounds are asymptotic; these helpers evaluate the
//    dominant expression with constant 1, so ratios (measured / bound) are
//    meaningful across a sweep even though absolute constants are
//    implementation-specific.
//  * The planner's candidate scoring: PredictLoad evaluates the bound that
//    applies to one (algorithm, shape, stats) combination, and
//    ScoreCandidates enumerates every algorithm applicable to a shape in
//    ascending predicted-load order. The Yannakakis baseline is scored
//    with the ESTIMATED largest intermediate J (not the worst-case OUT
//    expression) when the planner measured one — that is what places the
//    Table 1 crossovers correctly on concrete instances.

#ifndef PARJOIN_PLAN_COST_MODEL_H_
#define PARJOIN_PLAN_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/plan/plan.h"

namespace parjoin {
namespace plan {

// --- Profile-driven calibration ---------------------------------------------

// Per-algorithm constant factors fitted from measured runs (the profile
// store's obs::FitCalibration). PredictLoad multiplies its constant-1
// Table 1 bound by the factor, so a calibrated planner ranks candidates by
// *expected measured* load instead of the asymptotic expression. An empty
// table — or a missing entry — is factor 1.0: the uncalibrated prediction.
// Shape-specific entries win over the per-algorithm default because the
// constants genuinely differ per shape (Yannakakis materializes different
// intermediates on a star than on a line).
class CalibrationTable {
 public:
  struct Entry {
    Algorithm algorithm = Algorithm::kYannakakis;
    bool has_shape = false;  // false: per-algorithm default, any shape
    QueryShape shape = QueryShape::kTree;
    double factor = 1;
    std::int64_t runs = 0;  // fit support (#executions behind the factor)
  };

  // Upserts a (algorithm, shape) entry / an any-shape default. `factor`
  // must be finite and > 0 (CHECK: factors come from our own fit).
  void Set(Algorithm a, QueryShape shape, double factor,
           std::int64_t runs = 0);
  void SetDefault(Algorithm a, double factor, std::int64_t runs = 0);

  // Shape-specific entry if present, else the algorithm's default entry,
  // else 1.0.
  double Factor(Algorithm a, QueryShape shape) const;

  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  // A handful of algorithms x shapes: linear scan, deterministic order.
  std::vector<Entry> entries_;
};

// Reverse lookups for calibration/profile files (external data: Status,
// not CHECK). Names are the AlgorithmName / QueryShapeName spellings.
StatusOr<Algorithm> AlgorithmFromName(const std::string& name);

// --- Table 1 closed forms (constant 1) --------------------------------------

// Distributed Yannakakis, matrix multiplication: O(N/p + N*sqrt(OUT)/p).
double YannakakisMatMulBound(std::int64_t n, std::int64_t out, int p);

// Theorem 1: O((N1+N2)/p + min{sqrt(N1 N2 / p),
//                               (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double NewMatMulBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                      int p);

// Distributed Yannakakis, star query (n relations):
// O(N/p + N * OUT^{1-1/n} / p).
double YannakakisStarBound(std::int64_t n, std::int64_t out, int arity, int p);

// Distributed Yannakakis, line/tree queries: O(N/p + N*OUT/p).
double YannakakisTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 4 / Theorem 5 (line and star queries):
// O((N*OUT/p)^{2/3} + N*OUT^{1/2}/p + (N+OUT)/p).
double NewLineStarBound(std::int64_t n, std::int64_t out, int p);

// Theorem 6 (tree queries): O(N*OUT^{2/3}/p + (N+OUT)/p).
double NewTreeBound(std::int64_t n, std::int64_t out, int p);

// Theorem 3 lower bound:
// Omega(min{sqrt(N1 N2 / p), (N1 N2)^{1/3} OUT^{1/3} / p^{2/3}}).
double MatMulLowerBound(std::int64_t n1, std::int64_t n2, std::int64_t out,
                        int p);

// --- Planner scoring ---------------------------------------------------------

// True iff `a` can execute an instance of this shape.
bool Applicable(Algorithm a, QueryShape shape);

// Predicted load of running `a` on an instance with `stats` (constant 1
// when `calibration` is null or has no entry; otherwise the bound times the
// fitted factor). CHECK-fails when !Applicable(a, shape).
double PredictLoad(Algorithm a, QueryShape shape, const InstanceStats& stats,
                   const CalibrationTable* calibration = nullptr);

// The human-readable expression PredictLoad evaluates.
const char* LoadFormula(Algorithm a, QueryShape shape);

// Every applicable candidate, ascending by predicted load (ties broken by
// enum order, so the dispatch is deterministic). With a calibration table,
// predictions are scaled by the fitted factors (recorded per candidate in
// Candidate::calib_factor) before ranking — this is where a profile can
// flip a crossover decision.
std::vector<Candidate> ScoreCandidates(
    QueryShape shape, const InstanceStats& stats,
    const CalibrationTable* calibration = nullptr);

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_COST_MODEL_H_
