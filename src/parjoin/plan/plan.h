// Physical-plan IR: the planner's account of one query instance — its
// shape classification, the statistics the cost model consumed (IN per
// relation, p, estimated OUT, estimated largest Yannakakis intermediate),
// every candidate algorithm with its predicted load, the chosen winner,
// and (after execution) the measured load next to the prediction.
//
// A PhysicalPlan is pure data: building one computes nothing and charges
// nothing beyond the estimation rounds the planner already ran. It renders
// itself as a human-readable report (ToText) and as machine-readable JSON
// (ToJson) so benches, examples and tests can assert on predicted vs.
// measured load without re-deriving the Table 1 formulas.

#ifndef PARJOIN_PLAN_PLAN_H_
#define PARJOIN_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "parjoin/mpc/cluster.h"
#include "parjoin/query/join_tree.h"

namespace parjoin {
namespace plan {

// Every executable strategy the planner can dispatch. The two Theorem 1
// branches are separate candidates: their crossover (OUT* ~ sqrt(N1*N2*p))
// is the matmul row of Table 1 and the planner must place it.
enum class Algorithm {
  kSingleRelation,        // one relation: aggregate by outputs
  kYannakakis,            // §1.2/§1.4 baseline (aggregation pushdown)
  kHyperCube,             // §1.4 full-join grid + aggregate
  kMatMulWorstCase,       // §3.1, load O(sqrt(N1*N2/p))
  kMatMulOutputSensitive, // §3.2, load O((N1*N2*OUT)^{1/3}/p^{2/3})
  kLineTheorem4,          // §4 recursive heavy/light line algorithm
  kStarTheorem5,          // §5 permutation decomposition
  kStarLikeLemma7,        // §6 star-like algorithm
  kTreeTheorem6,          // §7 twig/skeleton tree algorithm
};

const char* AlgorithmName(Algorithm a);

// Everything the cost model sees. The planner fills this from the instance
// (exact relation sizes) and from the cheap estimation round (OUT and the
// largest intermediate a Yannakakis pass would materialize).
struct InstanceStats {
  int p = 1;
  int num_relations = 0;
  std::vector<std::int64_t> relation_sizes;
  std::int64_t total_input = 0;  // N
  // Matrix multiplication only: sizes in path orientation R1(A,B), R2(B,C).
  std::int64_t n1 = 0;
  std::int64_t n2 = 0;
  int star_arity = 0;  // star queries only: number of arms n
  // Estimated |Q(R)|; >= 1. Exactness depends on the shape: KMV-accurate
  // for path shapes (§2.2), an upper estimate for stars and general trees
  // (computing star OUT exactly is open — paper §5).
  std::int64_t out_estimate = 1;
  // Estimated size of the largest intermediate relation the Yannakakis
  // baseline materializes (>= out_estimate on the shapes we estimate).
  std::int64_t join_estimate = 1;
  bool out_is_estimated = false;  // false: defaulted, not measured
};

struct Candidate {
  Algorithm algorithm = Algorithm::kYannakakis;
  double predicted_load = 0;
  std::string formula;  // the Table 1 expression the prediction evaluates
  // Profile-fitted constant factor the prediction was scaled by; 1.0 when
  // the planner scored without a calibration table (cost_model.h).
  double calib_factor = 1;
  // Measured stats().max_load of running this candidate; -1 until the
  // executor (or MeasureCandidates) fills it.
  std::int64_t measured_load = -1;
};

// What the recovery loop did to get the result (plan/executor.h). Attempts
// count dispatches of the algorithm: 1 means the first try succeeded.
struct RecoveryReport {
  int attempts = 1;
  int crashes = 0;
  int budget_aborts = 0;
  // True when the load-budget guardrail abandoned the chosen algorithm and
  // the run finished on the Yannakakis baseline.
  bool degraded_to_baseline = false;
  // Simulated backoff charged before replays (units of rounds; recorded,
  // never slept).
  std::int64_t backoff_total = 0;
  // Fine-grained recovery: replays that resumed from an interval
  // checkpoint, rounds those resumes fast-forwarded over, re-balance
  // rounds charged against stragglers, and budget-abort re-plans.
  int resumes = 0;
  int resumed_rounds = 0;
  int rebalances = 0;
  int replans = 0;
  std::vector<std::string> events;  // cluster fault log, in firing order
};

struct PhysicalPlan {
  QueryShape shape = QueryShape::kTree;
  std::string query_debug;  // JoinTree::DebugString()
  std::string structure;    // ExplainQuery() structural report
  InstanceStats stats;
  std::vector<Candidate> candidates;  // ascending predicted_load
  Algorithm chosen = Algorithm::kYannakakis;
  double predicted_load = 0;
  // True when the candidates were scored through a calibration table.
  bool calibrated = false;

  // Filled by the executor.
  std::int64_t measured_load = -1;  // chosen algorithm's stats().max_load
  std::int64_t out_actual = -1;     // result size
  mpc::Cluster::Stats planning_stats;   // cost of the estimation rounds
  mpc::Cluster::Stats execution_stats;  // cost of the chosen algorithm
  // The algorithm that actually produced the result: `chosen` unless the
  // load-budget guardrail degraded the run onto the baseline.
  Algorithm executed = Algorithm::kYannakakis;
  RecoveryReport recovery;

  // nullptr when `a` is not a candidate for this shape.
  const Candidate* CandidateFor(Algorithm a) const;
  Candidate* MutableCandidateFor(Algorithm a);

  std::string ToText() const;
  std::string ToJson() const;
};

}  // namespace plan
}  // namespace parjoin

#endif  // PARJOIN_PLAN_PLAN_H_
