// Annotated relations (local and distributed).
//
// A Tuple<S> is a row of attribute values plus an annotation from semiring
// S. Relation<S> is a local (single-server) annotated relation;
// DistRelation<S> is partitioned across the cluster's servers and is what
// the MPC algorithms operate on.

#ifndef PARJOIN_RELATION_RELATION_H_
#define PARJOIN_RELATION_RELATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/row.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/relation/schema.h"
#include "parjoin/semiring/semiring.h"

namespace parjoin {

template <SemiringC S>
struct Tuple {
  Row row;
  typename S::ValueType w = S::One();

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.row == b.row && a.w == b.w;
  }
};

// ADL hook for mpc::MessageChecksum: Tuple<S> has padding and (via Row) a
// heap buffer, so fault-injection checksums must hash content, not bytes.
template <SemiringC S>
std::uint64_t FaultContentHash(const Tuple<S>& t) {
  using W = typename S::ValueType;
  std::uint64_t w_hash = 0;
  if constexpr (std::is_integral_v<W>) {
    w_hash = static_cast<std::uint64_t>(t.w);
  } else {
    // Struct carriers (e.g. TopTwoCosts): every bit must be value content,
    // otherwise padding would make equal annotations hash differently.
    static_assert(std::has_unique_object_representations_v<W>,
                  "annotation type with padding bits needs its own "
                  "FaultContentHash overload");
    const auto* bytes = reinterpret_cast<const unsigned char*>(&t.w);
    for (std::size_t i = 0; i < sizeof(W); ++i) {
      w_hash = HashCombine(w_hash, bytes[i]);
    }
  }
  return HashCombine(t.row.Hash(), w_hash);
}

// A local annotated relation. Tuples are not required to be unique; a
// relation is interpreted as the ⊕-aggregation of its tuples per row
// (Normalize() makes that explicit).
template <SemiringC S>
class Relation {
 public:
  using W = typename S::ValueType;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple<S>> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  const Schema& schema() const { return schema_; }
  std::vector<Tuple<S>>& tuples() { return tuples_; }
  const std::vector<Tuple<S>>& tuples() const { return tuples_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(tuples_.size());
  }

  void Add(Row row, W w) {
    CHECK_EQ(row.size(), schema_.size());
    tuples_.push_back(Tuple<S>{std::move(row), w});
  }

  // Collapses duplicate rows by ⊕, drops Zero() annotations, and sorts rows
  // lexicographically. Two relations are semantically equal iff their
  // normalized forms are equal — this is the comparison tests use.
  void Normalize() {
    std::map<Row, W> agg;
    for (auto& t : tuples_) {
      auto [it, inserted] = agg.emplace(std::move(t.row), t.w);
      if (!inserted) it->second = S::Plus(it->second, t.w);
    }
    tuples_.clear();
    for (auto& [row, w] : agg) {
      if (w == S::Zero()) continue;
      tuples_.push_back(Tuple<S>{row, w});
    }
  }

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.schema_ == b.schema_ && a.tuples_ == b.tuples_;
  }

 private:
  Schema schema_;
  std::vector<Tuple<S>> tuples_;
};

// A relation partitioned across (virtual) servers.
template <SemiringC S>
struct DistRelation {
  Schema schema;
  mpc::Dist<Tuple<S>> data;

  std::int64_t TotalSize() const { return data.TotalSize(); }

  // Materializes all partitions into one local relation (simulation-side;
  // charges nothing — use for test assertions and final output inspection).
  Relation<S> ToLocal() const {
    return Relation<S>(schema, data.Flatten());
  }
};

// Distributes a local relation evenly across the cluster's p servers (the
// model's initial placement; charges nothing).
template <SemiringC S>
DistRelation<S> Distribute(const mpc::Cluster& cluster, Relation<S> rel) {
  DistRelation<S> out;
  out.schema = rel.schema();
  out.data = mpc::ScatterEvenly(std::move(rel.tuples()), cluster.p());
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_RELATION_RELATION_H_
