#include "parjoin/relation/io.h"

#include <cctype>
#include <cstdlib>

namespace parjoin {
namespace internal_io {

Status ParseCsvInt64Line(const std::string& line, int expected_fields,
                         std::vector<std::int64_t>* fields) {
  fields->clear();
  // Tolerate CRLF line endings: a single trailing '\r' is not data.
  std::size_t size = line.size();
  if (size > 0 && line[size - 1] == '\r') --size;
  std::size_t pos = 0;
  while (pos <= size) {
    std::size_t comma = line.find(',', pos);
    if (comma >= size) comma = std::string::npos;
    const std::string token =
        line.substr(pos, comma == std::string::npos ? size - pos
                                                    : comma - pos);
    // strtoll silently skips leading whitespace; reject any whitespace in
    // the token so " 1" and "1 " fail the same way "1 2" does.
    for (char ch : token) {
      if (std::isspace(static_cast<unsigned char>(ch))) {
        return InvalidArgumentError("whitespace in integer field '" + token +
                                    "'");
      }
    }
    char* end = nullptr;
    errno = 0;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || (end != nullptr && *end != '\0') ||
        errno == ERANGE) {
      return InvalidArgumentError("malformed integer field '" + token + "'");
    }
    fields->push_back(static_cast<std::int64_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (static_cast<int>(fields->size()) != expected_fields) {
    return InvalidArgumentError(
        "expected " + std::to_string(expected_fields) + " fields, got " +
        std::to_string(fields->size()));
  }
  return OkStatus();
}

}  // namespace internal_io
}  // namespace parjoin
