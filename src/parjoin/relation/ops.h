// Relational MPC operations built on the §2.1 primitives: hash
// partitioning, aggregation (reduce-by-key over annotations), degree
// statistics, semijoins, and the local join kernel.

#ifndef PARJOIN_RELATION_OPS_H_
#define PARJOIN_RELATION_OPS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/row.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/relation/relation.h"
#include "parjoin/relation/schema.h"

namespace parjoin {

struct RowHash {
  std::size_t operator()(const Row& r) const {
    return static_cast<std::size_t>(r.Hash());
  }
};

// A (value, count) statistic, e.g. the degree of a value in a relation.
struct ValueCount {
  Value value = 0;
  std::int64_t count = 0;
};

// --- Partitioning -----------------------------------------------------------

// Hash-partitions a relation by the given attributes. One exchange round;
// load O(N/p) w.h.p. for non-pathological key distributions (heavy keys are
// handled by the *callers*, which split heavy values off first, exactly as
// the paper's algorithms do).
template <SemiringC S>
DistRelation<S> HashPartitionByAttrs(mpc::Cluster& cluster,
                                     const DistRelation<S>& rel,
                                     const std::vector<AttrId>& attrs,
                                     std::uint64_t seed = 0) {
  const std::vector<int> positions = rel.schema.PositionsOf(attrs);
  const int p = cluster.p();
  DistRelation<S> out;
  out.schema = rel.schema;
  out.data = mpc::Exchange(cluster, rel.data, p, [&](const Tuple<S>& t) {
    return static_cast<int>(t.row.Select(positions).Hash(seed ^ 0x7c6e) %
                            static_cast<std::uint64_t>(p));
  });
  return out;
}

// --- Aggregation ------------------------------------------------------------

// Q_y-style aggregation: projects every tuple to `group_attrs` and ⊕-sums
// annotations per projected row. This is the paper's "aggregation computed
// as reduce-by-key". As-executed load: O(M/p) for M locally-distinct
// groups.
template <SemiringC S>
DistRelation<S> AggregateByAttrs(mpc::Cluster& cluster,
                                 const DistRelation<S>& rel,
                                 const std::vector<AttrId>& group_attrs) {
  const std::vector<int> positions = rel.schema.PositionsOf(group_attrs);
  mpc::Dist<Tuple<S>> projected(rel.data.num_parts());
  for (int s = 0; s < rel.data.num_parts(); ++s) {
    auto& out_part = projected.part(s);
    out_part.reserve(rel.data.part(s).size());
    for (const auto& t : rel.data.part(s)) {
      out_part.push_back(Tuple<S>{t.row.Select(positions), t.w});
    }
  }
  DistRelation<S> out;
  out.schema = Schema(group_attrs);
  out.data = mpc::ReduceByKey(
      cluster, std::move(projected),
      [](const Tuple<S>& t) -> const Row& { return t.row; },
      [](Tuple<S>* acc, const Tuple<S>& t) { acc->w = S::Plus(acc->w, t.w); });
  return out;
}

// --- Degree statistics ------------------------------------------------------

// Computes |σ_{attr=v} R| for every value v of `attr` (paper §2.1,
// "reduce-by-key ... to compute the degree information").
template <SemiringC S>
mpc::Dist<ValueCount> DegreesByAttr(mpc::Cluster& cluster,
                                    const DistRelation<S>& rel, AttrId attr) {
  const int pos = rel.schema.IndexOf(attr);
  CHECK_GE(pos, 0);
  mpc::Dist<ValueCount> counts(rel.data.num_parts());
  for (int s = 0; s < rel.data.num_parts(); ++s) {
    auto& out_part = counts.part(s);
    out_part.reserve(rel.data.part(s).size());
    for (const auto& t : rel.data.part(s)) {
      out_part.push_back(ValueCount{t.row[pos], 1});
    }
  }
  return mpc::ReduceByKey(
      cluster, std::move(counts),
      [](const ValueCount& vc) { return vc.value; },
      [](ValueCount* acc, const ValueCount& vc) { acc->count += vc.count; });
}

// Extracts the values with count >= threshold and makes them known to every
// server (gather + broadcast; as-executed — callers rely on the paper's
// guarantee that heavy sets are small, |heavy| <= N/threshold).
std::vector<Value> CollectValuesAtLeast(mpc::Cluster& cluster,
                                        const mpc::Dist<ValueCount>& degrees,
                                        std::int64_t threshold);

// Gathers and broadcasts the (value, count) entries with count >= threshold
// as a lookup map. Charged as one small broadcast round; callers rely on
// the paper's guarantee that the set is small (<= N/threshold).
std::unordered_map<Value, std::int64_t> CollectStatsAtLeast(
    mpc::Cluster& cluster, const mpc::Dist<ValueCount>& degrees,
    std::int64_t threshold);

// Broadcast-friendly lookup table of per-value statistics, built by
// gathering and broadcasting a Dist<ValueCount> (charged as-executed).
// Only use when the statistic list is small (heavy values, group counts).
class ValueStatMap {
 public:
  ValueStatMap(mpc::Cluster& cluster, const mpc::Dist<ValueCount>& stats);

  // Returns the count for `v`, or `fallback` if absent.
  std::int64_t CountOr(Value v, std::int64_t fallback) const {
    auto it = map_.find(v);
    return it == map_.end() ? fallback : it->second;
  }

  bool Contains(Value v) const { return map_.find(v) != map_.end(); }
  std::int64_t size() const { return static_cast<std::int64_t>(map_.size()); }
  const std::unordered_map<Value, std::int64_t>& map() const { return map_; }

 private:
  std::unordered_map<Value, std::int64_t> map_;
};

// --- Semijoin ---------------------------------------------------------------

// R ⋉ S on the attributes common to both schemas: keeps the tuples of R
// whose key appears in S. As-executed: S is projected and locally
// deduplicated (free), then both sides are hash-partitioned by the key
// (load O((|R| + |distinct keys of S|)/p) w.h.p.). The result stays
// hash-partitioned by the key.
template <SemiringC S>
DistRelation<S> Semijoin(mpc::Cluster& cluster, const DistRelation<S>& r,
                         const DistRelation<S>& s) {
  const std::vector<AttrId> key = r.schema.CommonAttrs(s.schema);
  CHECK(!key.empty()) << "semijoin with no common attributes";
  const std::vector<int> r_pos = r.schema.PositionsOf(key);
  const std::vector<int> s_pos = s.schema.PositionsOf(key);
  const int p = cluster.p();
  const std::uint64_t seed = 0x3ba1;

  // Locally deduplicated key projection of S.
  mpc::Dist<Row> s_keys(s.data.num_parts());
  for (int i = 0; i < s.data.num_parts(); ++i) {
    std::unordered_set<Row, RowHash> seen;
    for (const auto& t : s.data.part(i)) {
      Row k = t.row.Select(s_pos);
      if (seen.insert(k).second) s_keys.part(i).push_back(std::move(k));
    }
  }
  // HashPartitionByAttrs hashes with seed ^ 0x7c6e; route the S keys with
  // the same function so matching rows collide on the same server.
  mpc::Dist<Row> s_keys_final =
      mpc::Exchange(cluster, s_keys, p, [&](const Row& k) {
        return static_cast<int>(k.Hash(seed ^ 0x7c6e) %
                                static_cast<std::uint64_t>(p));
      });
  DistRelation<S> r_parted = HashPartitionByAttrs(cluster, r, key, seed);

  DistRelation<S> out;
  out.schema = r.schema;
  out.data = mpc::Dist<Tuple<S>>(p);
  for (int i = 0; i < p; ++i) {
    std::unordered_set<Row, RowHash> keys(s_keys_final.part(i).begin(),
                                          s_keys_final.part(i).end());
    for (const auto& t : r_parted.data.part(i)) {
      if (keys.count(t.row.Select(r_pos)) > 0) out.data.part(i).push_back(t);
    }
  }
  return out;
}

// Annotation push-down: multiplies into every tuple of `rel` the annotation
// that `factors` (a relation with schema exactly {attr}, unique rows)
// assigns to the tuple's `attr` value; tuples without a factor are dangling
// and dropped. Used by the §7 query reduction ("attach annotations of R_e
// to R_e'"). As-executed: both sides co-partitioned by attr (one exchange
// round each), then a local hash join.
template <SemiringC S>
DistRelation<S> MultiplyIntoByAttr(mpc::Cluster& cluster,
                                   const DistRelation<S>& rel,
                                   const DistRelation<S>& factors,
                                   AttrId attr) {
  CHECK_EQ(factors.schema.size(), 1);
  CHECK_EQ(factors.schema.attr(0), attr);
  const int pos = rel.schema.IndexOf(attr);
  CHECK_GE(pos, 0);
  const int p = cluster.p();
  auto route = [&](Value v) {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(v) ^ 0xf00d) %
                            static_cast<std::uint64_t>(p));
  };
  mpc::Dist<Tuple<S>> rel_parted = mpc::Exchange(
      cluster, rel.data, p,
      [&](const Tuple<S>& t) { return route(t.row[pos]); });
  mpc::Dist<Tuple<S>> fac_parted = mpc::Exchange(
      cluster, factors.data, p,
      [&](const Tuple<S>& t) { return route(t.row[0]); });

  DistRelation<S> out;
  out.schema = rel.schema;
  out.data = mpc::Dist<Tuple<S>>(p);
  for (int s = 0; s < p; ++s) {
    std::unordered_map<Value, typename S::ValueType> lookup;
    lookup.reserve(fac_parted.part(s).size());
    for (const auto& f : fac_parted.part(s)) lookup[f.row[0]] = f.w;
    for (const auto& t : rel_parted.part(s)) {
      auto it = lookup.find(t.row[pos]);
      if (it == lookup.end()) continue;
      Tuple<S> copy = t;
      copy.w = S::Times(copy.w, it->second);
      out.data.part(s).push_back(std::move(copy));
    }
  }
  return out;
}

// --- Local join kernel ------------------------------------------------------

// Joins two co-located tuple sets on the attributes common to their
// schemas, producing rows over schema_a ++ (schema_b \ common) with
// annotations multiplied. Purely local (free in the ledger); used inside
// every distributed join after the data movement has been charged.
template <SemiringC S>
void LocalJoinInto(const Schema& schema_a, const std::vector<Tuple<S>>& a,
                   const Schema& schema_b, const std::vector<Tuple<S>>& b,
                   std::vector<Tuple<S>>* out) {
  const std::vector<AttrId> key = schema_a.CommonAttrs(schema_b);
  const std::vector<int> a_pos = schema_a.PositionsOf(key);
  const std::vector<int> b_pos = schema_b.PositionsOf(key);
  std::vector<int> b_keep;  // positions of B attrs not in the key
  for (int i = 0; i < schema_b.size(); ++i) {
    if (!schema_a.Contains(schema_b.attr(i))) b_keep.push_back(i);
  }

  std::unordered_map<Row, std::vector<const Tuple<S>*>, RowHash> index;
  index.reserve(b.size());
  for (const auto& tb : b) index[tb.row.Select(b_pos)].push_back(&tb);

  for (const auto& ta : a) {
    auto it = index.find(ta.row.Select(a_pos));
    if (it == index.end()) continue;
    for (const Tuple<S>* tb : it->second) {
      Tuple<S> joined;
      joined.row = ta.row;
      joined.row.Reserve(ta.row.size() + static_cast<int>(b_keep.size()));
      for (int pos : b_keep) joined.row.PushBack(tb->row[pos]);
      joined.w = S::Times(ta.w, tb->w);
      out->push_back(std::move(joined));
    }
  }
}

// The schema produced by LocalJoinInto.
inline Schema JoinedSchema(const Schema& a, const Schema& b) {
  std::vector<AttrId> attrs = a.attrs();
  for (AttrId attr : b.attrs()) {
    if (!a.Contains(attr)) attrs.push_back(attr);
  }
  return Schema(std::move(attrs));
}

}  // namespace parjoin

#endif  // PARJOIN_RELATION_OPS_H_
