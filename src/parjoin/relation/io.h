// CSV import/export for annotated relations.
//
// Format: one tuple per line, the attribute values in schema order
// followed by the annotation, comma-separated. Lines starting with '#'
// and blank lines are skipped. Only integral-carrier semirings are
// supported (every shipped scalar semiring qualifies).
//
//   # R1(A, B) over the counting semiring
//   0,17,2
//   3,17,5

#ifndef PARJOIN_RELATION_IO_H_
#define PARJOIN_RELATION_IO_H_

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

namespace internal_io {

// Parses a CSV line into int64 fields. Returns false (and sets *error)
// on malformed input.
bool ParseCsvInt64Line(const std::string& line, int expected_fields,
                       std::vector<std::int64_t>* fields,
                       std::string* error);

}  // namespace internal_io

// Loads a relation from CSV. On failure returns false and describes the
// problem in *error; the relation is left empty.
template <SemiringC S>
bool LoadRelationCsv(const std::string& path, const Schema& schema,
                     Relation<S>* relation, std::string* error) {
  static_assert(std::is_convertible_v<std::int64_t, typename S::ValueType>,
                "CSV I/O requires an integral-carrier semiring");
  *relation = Relation<S>(schema);
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  int line_number = 0;
  std::vector<std::int64_t> fields;
  while (std::getline(in, line)) {
    ++line_number;
    // Tolerate CRLF files: getline leaves the '\r' on the line.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!internal_io::ParseCsvInt64Line(line, schema.size() + 1, &fields,
                                        error)) {
      *error = path + ":" + std::to_string(line_number) + ": " + *error;
      *relation = Relation<S>(schema);
      return false;
    }
    Row row;
    row.Reserve(schema.size());
    for (int i = 0; i < schema.size(); ++i) row.PushBack(fields[static_cast<size_t>(i)]);
    relation->Add(std::move(row), static_cast<typename S::ValueType>(
                                      fields[static_cast<size_t>(schema.size())]));
  }
  return true;
}

// Writes a relation to CSV (schema order, annotation last). Returns false
// with *error set if the file cannot be written.
template <SemiringC S>
bool SaveRelationCsv(const std::string& path, const Relation<S>& relation,
                     std::string* error) {
  static_assert(std::is_convertible_v<typename S::ValueType, std::int64_t>,
                "CSV I/O requires an integral-carrier semiring");
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  out << "# schema:";
  for (AttrId a : relation.schema().attrs()) out << " " << a;
  out << " + annotation (" << S::kName << ")\n";
  for (const auto& t : relation.tuples()) {
    for (int i = 0; i < t.row.size(); ++i) out << t.row[i] << ",";
    out << static_cast<std::int64_t>(t.w) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace parjoin

#endif  // PARJOIN_RELATION_IO_H_
