// CSV import/export for annotated relations.
//
// Format: one tuple per line, the attribute values in schema order
// followed by the annotation, comma-separated. Lines starting with '#'
// and blank lines are skipped. Only integral-carrier semirings are
// supported (every shipped scalar semiring qualifies).
//
//   # R1(A, B) over the counting semiring
//   0,17,2
//   3,17,5
//
// These are ingress functions: malformed files are user errors, not bugs,
// so they report through Status/StatusOr (common/status.h) instead of
// CHECK-crashing.

#ifndef PARJOIN_RELATION_IO_H_
#define PARJOIN_RELATION_IO_H_

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

namespace internal_io {

// Parses a CSV line into int64 fields. Returns InvalidArgument on
// malformed input.
Status ParseCsvInt64Line(const std::string& line, int expected_fields,
                         std::vector<std::int64_t>* fields);

}  // namespace internal_io

// Loads a relation from CSV. Errors carry "path:line: what went wrong".
template <SemiringC S>
StatusOr<Relation<S>> LoadRelationCsv(const std::string& path,
                                      const Schema& schema) {
  static_assert(std::is_convertible_v<std::int64_t, typename S::ValueType>,
                "CSV I/O requires an integral-carrier semiring");
  Relation<S> relation(schema);
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::string line;
  int line_number = 0;
  std::vector<std::int64_t> fields;
  while (std::getline(in, line)) {
    ++line_number;
    // Tolerate CRLF files: getline leaves the '\r' on the line.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const Status parsed =
        internal_io::ParseCsvInt64Line(line, schema.size() + 1, &fields);
    if (!parsed.ok()) {
      return Status(parsed.code(), path + ":" + std::to_string(line_number) +
                                       ": " + parsed.message());
    }
    Row row;
    row.Reserve(schema.size());
    for (int i = 0; i < schema.size(); ++i) row.PushBack(fields[static_cast<size_t>(i)]);
    relation.Add(std::move(row), static_cast<typename S::ValueType>(
                                     fields[static_cast<size_t>(schema.size())]));
  }
  return relation;
}

// Writes a relation to CSV (schema order, annotation last).
template <SemiringC S>
Status SaveRelationCsv(const std::string& path, const Relation<S>& relation) {
  static_assert(std::is_convertible_v<typename S::ValueType, std::int64_t>,
                "CSV I/O requires an integral-carrier semiring");
  std::ofstream out(path);
  if (!out) {
    return NotFoundError("cannot open " + path + " for writing");
  }
  out << "# schema:";
  for (AttrId a : relation.schema().attrs()) out << " " << a;
  out << " + annotation (" << S::kName << ")\n";
  for (const auto& t : relation.tuples()) {
    for (int i = 0; i < t.row.size(); ++i) out << t.row[i] << ",";
    out << static_cast<std::int64_t>(t.w) << "\n";
  }
  if (!out) {
    return DataLossError("write to " + path + " failed");
  }
  return OkStatus();
}

}  // namespace parjoin

#endif  // PARJOIN_RELATION_IO_H_
