// Combined attributes.
//
// The paper's reductions repeatedly "regard A^odd (a set of attributes) as
// a combined attribute" so that a multi-attribute relation can be fed to
// the binary matrix-multiplication algorithm. CombineAttrs interns each
// distinct combination of values as a fresh dense id and returns (a) the
// binary relation over (combined, kept) and (b) a dictionary relation
// mapping combined ids back to the original rows. ExpandAttrs joins the
// dictionary back (hash co-partitioned, as-executed) to restore the
// original attributes.
//
// Interning assigns ids consistently across servers by the distributed
// sort-based ranking (as-executed): the distinct combinations are sorted
// (load O(D/p) for D distinct combinations), each part assigns dense ids
// from its global prefix offset (a constant-size prefix-sum round), and
// the ids are joined back onto the tuples by hash co-partitioning.

#ifndef PARJOIN_RELATION_ATTR_COMBINER_H_
#define PARJOIN_RELATION_ATTR_COMBINER_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

template <SemiringC S>
struct CombinedRelation {
  DistRelation<S> binary;      // schema (combined_attr, kept...)
  DistRelation<S> dictionary;  // schema (combined_attr, combined attrs...)
  AttrId combined_attr = -1;
};

// Replaces the attributes `combine` of `rel` by a single fresh attribute
// `combined_attr` (caller-chosen, must not collide with existing ids).
// Attributes not listed in `combine` are kept as-is.
template <SemiringC S>
CombinedRelation<S> CombineAttrs(mpc::Cluster& cluster,
                                 const DistRelation<S>& rel,
                                 const std::vector<AttrId>& combine,
                                 AttrId combined_attr) {
  CHECK_GE(combine.size(), 1u);
  const std::vector<int> combine_pos = rel.schema.PositionsOf(combine);
  std::vector<int> keep_pos;
  std::vector<AttrId> keep_attrs;
  for (int i = 0; i < rel.schema.size(); ++i) {
    const AttrId a = rel.schema.attr(i);
    bool combined = false;
    for (AttrId c : combine) {
      if (c == a) combined = true;
    }
    if (!combined) {
      keep_pos.push_back(i);
      keep_attrs.push_back(a);
    }
  }

  const int p = cluster.p();

  // Step 1: locally deduplicated combination keys, globally sorted so that
  // ranks can be assigned from per-part prefix offsets (as-executed sort;
  // the offsets themselves are a constant-size prefix-sum round).
  mpc::Dist<Row> keys(rel.data.num_parts());
  for (int s = 0; s < rel.data.num_parts(); ++s) {
    std::unordered_set<Row, RowHash> seen;
    for (const auto& t : rel.data.part(s)) {
      Row key = t.row.Select(combine_pos);
      if (seen.insert(key).second) keys.part(s).push_back(std::move(key));
    }
  }
  mpc::Dist<Row> sorted = mpc::Sort(
      cluster, std::move(keys), [](const Row& a, const Row& b) { return a < b; },
      p);
  cluster.ChargeUniformRound(1);  // prefix-sum of per-part distinct counts

  // Per-part: drop duplicates across parts (the sort may split a run) and
  // assign ids from the global prefix offset.
  mpc::Dist<Tuple<S>> dict_parts(p);
  std::unordered_map<Row, Value, RowHash> ids;  // global view for routing
  {
    Value next_id = 0;
    const Row* prev = nullptr;
    for (int s = 0; s < p; ++s) {
      for (const Row& key : sorted.part(s)) {
        if (prev != nullptr && *prev == key) continue;
        Tuple<S> dt;
        dt.row.Reserve(1 + key.size());
        dt.row.PushBack(next_id);
        for (Value v : key) dt.row.PushBack(v);
        dt.w = S::One();
        dict_parts.part(s).push_back(std::move(dt));
        ids.emplace(key, next_id);
        prev = &ids.find(key)->first;
        ++next_id;
      }
    }
  }

  // Step 2: attach ids to the tuples. In the distributed realization this
  // is a hash co-partition of tuples and dictionary entries on the key
  // (one exchange round each side); charged accordingly.
  const std::int64_t n = rel.TotalSize();
  cluster.ChargeUniformRound((n + p - 1) / p);
  cluster.ChargeUniformRound(
      (static_cast<std::int64_t>(ids.size()) + p - 1) / p);

  CombinedRelation<S> out;
  out.combined_attr = combined_attr;
  std::vector<AttrId> binary_schema = {combined_attr};
  binary_schema.insert(binary_schema.end(), keep_attrs.begin(),
                       keep_attrs.end());
  out.binary.schema = Schema(binary_schema);
  out.binary.data = mpc::Dist<Tuple<S>>(rel.data.num_parts());
  for (int s = 0; s < rel.data.num_parts(); ++s) {
    for (const auto& t : rel.data.part(s)) {
      Tuple<S> bt;
      bt.row.Reserve(1 + static_cast<int>(keep_pos.size()));
      bt.row.PushBack(ids.at(t.row.Select(combine_pos)));
      for (int pos : keep_pos) bt.row.PushBack(t.row[pos]);
      bt.w = t.w;
      out.binary.data.part(s).push_back(std::move(bt));
    }
  }

  std::vector<AttrId> dict_schema = {combined_attr};
  dict_schema.insert(dict_schema.end(), combine.begin(), combine.end());
  out.dictionary.schema = Schema(dict_schema);
  out.dictionary.data = std::move(dict_parts);
  return out;
}

// Restores the original attributes of a combined column: joins `rel`
// (containing `combined_attr`) with the dictionary and drops the id.
// As-executed: both sides hash co-partitioned by the id, local join.
template <SemiringC S>
DistRelation<S> ExpandAttrs(mpc::Cluster& cluster, const DistRelation<S>& rel,
                            const DistRelation<S>& dictionary,
                            AttrId combined_attr) {
  const int id_pos = rel.schema.IndexOf(combined_attr);
  CHECK_GE(id_pos, 0);
  const int p = cluster.p();
  auto route = [&](Value id) {
    return static_cast<int>(Mix64(static_cast<std::uint64_t>(id) ^ 0xd1c7) %
                            static_cast<std::uint64_t>(p));
  };
  auto rel_parted = mpc::Exchange(
      cluster, rel.data, p,
      [&](const Tuple<S>& t) { return route(t.row[id_pos]); });
  auto dict_parted = mpc::Exchange(
      cluster, dictionary.data, p,
      [&](const Tuple<S>& t) { return route(t.row[0]); });

  DistRelation<S> joined;
  joined.schema = JoinedSchema(rel.schema, dictionary.schema);
  joined.data = mpc::Dist<Tuple<S>>(p);
  for (int s = 0; s < p; ++s) {
    LocalJoinInto(rel.schema, rel_parted.part(s), dictionary.schema,
                  dict_parted.part(s), &joined.data.part(s));
  }

  // Drop the combined id (pure local projection, free).
  std::vector<AttrId> final_attrs;
  std::vector<int> final_pos;
  for (int i = 0; i < joined.schema.size(); ++i) {
    if (joined.schema.attr(i) != combined_attr) {
      final_attrs.push_back(joined.schema.attr(i));
      final_pos.push_back(i);
    }
  }
  DistRelation<S> out;
  out.schema = Schema(final_attrs);
  out.data = mpc::Dist<Tuple<S>>(p);
  for (int s = 0; s < p; ++s) {
    out.data.part(s).reserve(joined.data.part(s).size());
    for (const auto& t : joined.data.part(s)) {
      out.data.part(s).push_back(Tuple<S>{t.row.Select(final_pos), t.w});
    }
  }
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_RELATION_ATTR_COMBINER_H_
