// Schema: the ordered attribute list of a relation.
//
// Attributes are identified by small integer ids (AttrId); queries define
// the universe of attributes (see query/join_tree.h). A Schema maps an
// attribute to its position in a Row and supports the projections used when
// joining and aggregating.

#ifndef PARJOIN_RELATION_SCHEMA_H_
#define PARJOIN_RELATION_SCHEMA_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/row.h"

namespace parjoin {

using AttrId = std::int32_t;

class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<AttrId> attrs) : attrs_(attrs) {}
  explicit Schema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {}

  int size() const { return static_cast<int>(attrs_.size()); }
  AttrId attr(int i) const { return attrs_[static_cast<size_t>(i)]; }
  const std::vector<AttrId>& attrs() const { return attrs_; }

  // Position of `attr` in this schema, or -1 if absent.
  int IndexOf(AttrId attr) const {
    for (int i = 0; i < size(); ++i) {
      if (attrs_[static_cast<size_t>(i)] == attr) return i;
    }
    return -1;
  }

  bool Contains(AttrId attr) const { return IndexOf(attr) >= 0; }

  // Positions (in this schema) of the given attributes, in their order.
  // Every attribute must be present.
  std::vector<int> PositionsOf(const std::vector<AttrId>& attrs) const {
    std::vector<int> out;
    out.reserve(attrs.size());
    for (AttrId a : attrs) {
      const int pos = IndexOf(a);
      CHECK_GE(pos, 0) << "attribute " << a << " not in schema " << *this;
      out.push_back(pos);
    }
    return out;
  }

  // Attributes present in both schemas, in this schema's order.
  std::vector<AttrId> CommonAttrs(const Schema& other) const {
    std::vector<AttrId> out;
    for (AttrId a : attrs_) {
      if (other.Contains(a)) out.push_back(a);
    }
    return out;
  }

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attrs_ == b.attrs_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

  friend std::ostream& operator<<(std::ostream& os, const Schema& s) {
    os << "[";
    for (int i = 0; i < s.size(); ++i) {
      if (i > 0) os << ", ";
      os << s.attr(i);
    }
    return os << "]";
  }

 private:
  std::vector<AttrId> attrs_;
};

}  // namespace parjoin

#endif  // PARJOIN_RELATION_SCHEMA_H_
