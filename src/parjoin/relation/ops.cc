#include "parjoin/relation/ops.h"

namespace parjoin {

std::vector<Value> CollectValuesAtLeast(mpc::Cluster& cluster,
                                        const mpc::Dist<ValueCount>& degrees,
                                        std::int64_t threshold) {
  mpc::Dist<Value> heavy(degrees.num_parts());
  for (int s = 0; s < degrees.num_parts(); ++s) {
    for (const auto& vc : degrees.part(s)) {
      if (vc.count >= threshold) heavy.part(s).push_back(vc.value);
    }
  }
  std::vector<Value> gathered = mpc::Gather(cluster, heavy);
  // Make the (small) heavy set known everywhere.
  cluster.ChargeUniformRound(static_cast<std::int64_t>(gathered.size()));
  return gathered;
}

std::unordered_map<Value, std::int64_t> CollectStatsAtLeast(
    mpc::Cluster& cluster, const mpc::Dist<ValueCount>& degrees,
    std::int64_t threshold) {
  std::unordered_map<Value, std::int64_t> out;
  std::int64_t gathered = 0;
  for (const auto& part : degrees.parts()) {
    for (const auto& vc : part) {
      if (vc.count >= threshold) {
        out[vc.value] = vc.count;
        ++gathered;
      }
    }
  }
  cluster.ChargeUniformRound(gathered);
  return out;
}

ValueStatMap::ValueStatMap(mpc::Cluster& cluster,
                           const mpc::Dist<ValueCount>& stats) {
  std::vector<ValueCount> gathered;
  for (const auto& part : stats.parts()) {
    gathered.insert(gathered.end(), part.begin(), part.end());
  }
  // Gather + broadcast cost, charged as one round each.
  cluster.ChargeUniformRound(static_cast<std::int64_t>(gathered.size()));
  map_.reserve(gathered.size());
  for (const auto& vc : gathered) map_[vc.value] = vc.count;
}

}  // namespace parjoin
