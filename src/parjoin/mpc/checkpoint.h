// Checkpoint / restore for Dist<T> partitions.
//
// The recovery protocol (plan/executor.h) snapshots the distributed inputs
// at a round boundary before dispatching an algorithm. Taking the snapshot
// is not free: each partition is replicated to a neighboring server
// ((v+1) mod parts, so no server holds its own backup), and that
// replication round is charged as recovery traffic. After a fail-stop
// crash the executor restores from the snapshot onto the shrunken live set
// — partition v re-hosted on server v mod p() — which is again a charged
// round, since the surviving replicas must be shipped to their new hosts.
//
// A single-partition Dist has no neighbor: (v+1) mod 1 is v itself, and a
// self-copy both violates the no-own-backup invariant and is useless after
// the only server fails. CheckpointDist marks such snapshots unrecoverable
// and charges nothing; RestoreDist refuses them (CHECK). Crashes cannot
// fire at p = 1 anyway — the cluster never shrinks its last live server —
// so the executor can still run, just without checkpoint protection.

#ifndef PARJOIN_MPC_CHECKPOINT_H_
#define PARJOIN_MPC_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"

namespace parjoin {
namespace mpc {

// A durable copy of a Dist<T>'s partition contents, independent of the
// cluster's live-server count at restore time.
template <typename T>
struct DistSnapshot {
  std::vector<std::vector<T>> parts;
  // False when no neighbor replica exists (fewer than two partitions):
  // the snapshot cannot survive the failure of its only host, so
  // RestoreDist refuses it.
  bool recoverable = true;
};

// Replicates every partition of `d` to its neighbor and returns the
// snapshot. Charges one recovery round: server (v+1) mod parts receives
// |part v| tuples. With fewer than two partitions there is no neighbor:
// the snapshot is recorded as unrecoverable and no self-copy is charged.
template <typename T>
DistSnapshot<T> CheckpointDist(Cluster& cluster, const Dist<T>& d) {
  TraceScope trace(cluster, "checkpoint");
  const int n = d.num_parts();
  DistSnapshot<T> snap;
  snap.parts.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) snap.parts.push_back(d.part(v));
  if (n < 2) {
    snap.recoverable = false;
    return snap;
  }
  std::vector<std::int64_t> received(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    received[static_cast<std::size_t>((v + 1) % n)] +=
        static_cast<std::int64_t>(d.part(v).size());
  }
  cluster.ChargeRecoveryRound(received);
  return snap;
}

// Rebuilds a Dist<T> on the current live servers: snapshot partition v is
// appended to part v mod p(). Charges one recovery round for shipping the
// replicas to their (possibly new) hosts.
template <typename T>
Dist<T> RestoreDist(Cluster& cluster, const DistSnapshot<T>& snap) {
  TraceScope trace(cluster, "restore");
  CHECK(snap.recoverable)
      << "restoring a single-partition snapshot: no neighbor replica "
         "survives its only host";
  const int live = cluster.p();
  std::vector<std::vector<T>> parts(static_cast<std::size_t>(live));
  std::vector<std::int64_t> received(static_cast<std::size_t>(live), 0);
  for (std::size_t v = 0; v < snap.parts.size(); ++v) {
    const std::size_t host = v % static_cast<std::size_t>(live);
    parts[host].insert(parts[host].end(), snap.parts[v].begin(),
                       snap.parts[v].end());
    received[host] += static_cast<std::int64_t>(snap.parts[v].size());
  }
  cluster.ChargeRecoveryRound(received);
  return Dist<T>(std::move(parts));
}

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_CHECKPOINT_H_
