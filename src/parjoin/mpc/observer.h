// The cluster's observation seam: an abstract per-round listener the
// observability layer (src/parjoin/obs/) plugs into the simulator.
//
// The contract is strictly read-only: an observer sees every charged
// round and every fault/recovery event AFTER the ledger has been updated,
// and nothing it does can change outputs, charged loads, rounds, or the
// rng stream (determinism_test and tests/obs_test.cc enforce bit-identity
// with an observer attached vs. not). When no observer is attached the
// entire path is one null-pointer check per charged round — the zero-cost
// no-op contract tracing is allowed to rely on.
//
// Observers are called from the charging thread only (round charging is a
// main-thread operation; ParallelFor workers never charge), so
// implementations need no internal locking for the observer path itself.

#ifndef PARJOIN_MPC_OBSERVER_H_
#define PARJOIN_MPC_OBSERVER_H_

#include <cstdint>
#include <string>

namespace parjoin {
namespace mpc {

// One charged communication round, as recorded by the ledger.
struct RoundRecord {
  int round = 0;                // 1-based charged-round index since reset
  std::int64_t max_load = 0;    // max tuples received by any server
  std::int64_t tuples = 0;      // total tuples moved this round
  bool recovery = false;        // checkpoint replication / restore traffic
  double straggle_factor = 1;   // critical-path stretch applied (>= 1)
  // True when a resumed re-execution fast-forwarded over this round: its
  // work is re-covered by the restored interval checkpoint, so nothing
  // was charged to the ledger (mpc/cluster.h, Cluster::BeginAttempt).
  bool resumed = false;
};

// A discrete fault/recovery event with its structured payload. `server`,
// `factor`, and `moved` carry the sentinel defaults below when the event
// kind has no such attribute (the trace layer omits them from output).
struct EventRecord {
  const char* kind = "";   // "straggler", "rebalance", "resume", ...
  int round = 0;           // charged round (0 when not tied to a round)
  std::string detail;
  int server = -1;         // straggle/re-balance victim server
  double factor = 0;       // injected straggle delay factor
  std::int64_t moved = -1; // tuples shipped by a re-balance round
};

class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  // Called once per charged round, after the ledger is updated and before
  // any abort (budget, crash) unwinds the round.
  virtual void OnRound(const RoundRecord& record) = 0;

  // Discrete events: "straggler", "retransmit", "crash", "budget_abort",
  // "checkpoint", "rebalance", "resume", plus executor-level markers
  // ("attempt", "replay", "degrade", "replan", "plan"). `round` is the
  // charged-round index the event is associated with (0 when not tied to
  // a round).
  virtual void OnEvent(const char* kind, int round,
                       const std::string& detail) = 0;

  // Structured variant: events that carry a payload (straggle victim and
  // factor, re-balanced tuple count) arrive here. The default forwards to
  // OnEvent, dropping the payload, so observers that only care about the
  // textual trail need not override it.
  virtual void OnEventRecord(const EventRecord& event) {
    OnEvent(event.kind, event.round, event.detail);
  }

  // Scope labels: primitives push their name ("sort", "exchange", ...) so
  // round records can be attributed. Scopes nest.
  virtual void PushScope(const char* name) = 0;
  virtual void PopScope() = 0;
};

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_OBSERVER_H_
