// The cluster's observation seam: an abstract per-round listener the
// observability layer (src/parjoin/obs/) plugs into the simulator.
//
// The contract is strictly read-only: an observer sees every charged
// round and every fault/recovery event AFTER the ledger has been updated,
// and nothing it does can change outputs, charged loads, rounds, or the
// rng stream (determinism_test and tests/obs_test.cc enforce bit-identity
// with an observer attached vs. not). When no observer is attached the
// entire path is one null-pointer check per charged round — the zero-cost
// no-op contract tracing is allowed to rely on.
//
// Observers are called from the charging thread only (round charging is a
// main-thread operation; ParallelFor workers never charge), so
// implementations need no internal locking for the observer path itself.

#ifndef PARJOIN_MPC_OBSERVER_H_
#define PARJOIN_MPC_OBSERVER_H_

#include <cstdint>
#include <string>

namespace parjoin {
namespace mpc {

// One charged communication round, as recorded by the ledger.
struct RoundRecord {
  int round = 0;                // 1-based charged-round index since reset
  std::int64_t max_load = 0;    // max tuples received by any server
  std::int64_t tuples = 0;      // total tuples moved this round
  bool recovery = false;        // checkpoint replication / restore traffic
  double straggle_factor = 1;   // critical-path stretch applied (>= 1)
};

class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  // Called once per charged round, after the ledger is updated and before
  // any abort (budget, crash) unwinds the round.
  virtual void OnRound(const RoundRecord& record) = 0;

  // Discrete events: "straggler", "retransmit", "crash", "budget_abort",
  // "checkpoint", plus executor-level markers ("attempt", "replay",
  // "degrade", "plan"). `round` is the charged-round index the event is
  // associated with (0 when not tied to a round).
  virtual void OnEvent(const char* kind, int round,
                       const std::string& detail) = 0;

  // Scope labels: primitives push their name ("sort", "exchange", ...) so
  // round records can be attributed. Scopes nest.
  virtual void PushScope(const char* name) = 0;
  virtual void PopScope() = 0;
};

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_OBSERVER_H_
