#include "parjoin/mpc/faults.h"

#include <sstream>

#include "parjoin/common/random.h"

namespace parjoin {
namespace mpc {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kCorruption:
      return "corruption";
  }
  return "?";
}

FaultPlan FaultPlan::Generate(const FaultConfig& config, int p) {
  CHECK_GT(p, 0);
  CHECK_GE(config.horizon, 1);
  CHECK_LE(config.straggle_min, config.straggle_max);
  FaultPlan plan;
  Rng rng(config.seed);
  for (int i = 0; i < config.crashes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    if (static_cast<size_t>(i) < config.crash_rounds.size()) {
      CHECK_GE(config.crash_rounds[static_cast<size_t>(i)], 1);
      e.round = config.crash_rounds[static_cast<size_t>(i)];
    } else {
      e.round = static_cast<int>(rng.Uniform(1, config.horizon));
    }
    e.server = static_cast<int>(rng.Uniform(0, p - 1));
    plan.events_.push_back(e);
  }
  for (int i = 0; i < config.stragglers; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kStraggler;
    e.round = static_cast<int>(rng.Uniform(1, config.horizon));
    e.server = static_cast<int>(rng.Uniform(0, p - 1));
    e.factor = config.straggle_min +
               rng.UniformDouble() * (config.straggle_max -
                                      config.straggle_min);
    plan.events_.push_back(e);
  }
  for (int i = 0; i < config.corruptions; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCorruption;
    e.round = static_cast<int>(rng.Uniform(1, config.horizon));
    e.server = static_cast<int>(rng.Uniform(0, p - 1));
    e.corruption_mask = rng.Next() | 1;  // nonzero: the flip is detectable
    plan.events_.push_back(e);
  }
  return plan;
}

std::string FaultPlan::ScheduleString() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << FaultKindName(e.kind) << " round>=" << e.round << " server="
       << e.server;
    if (e.kind == FaultKind::kStraggler) os << " factor=" << e.factor;
    if (e.kind == FaultKind::kCorruption) {
      os << " mask=" << e.corruption_mask;
    }
    os << "\n";
  }
  return os.str();
}

std::string RoundAbort::ToString() const {
  std::ostringstream os;
  if (reason == Reason::kServerCrash) {
    os << "server " << server << " crashed at round " << round;
  } else {
    os << "round " << round << " load " << round_load
       << " exceeded budget " << budget;
  }
  return os.str();
}

}  // namespace mpc
}  // namespace parjoin
