// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is a seeded schedule of three fault kinds, all expressed in
// terms of *charged rounds* (the monotone count of ChargeRound boundaries
// since the last ResetStats):
//
//  * fail-stop crash    — at the first round boundary at or after the
//                         scheduled round, one server leaves; the Cluster
//                         shrinks its live set and aborts the attempt
//                         (RoundAbort) so the executor replays from the
//                         last checkpoint on p-1 servers.
//  * straggler          — the scheduled round's wall-clock is stretched by
//                         a delay factor; the simulator folds it into the
//                         Stats::critical_path metric (Σ round_max × factor)
//                         without perturbing loads or outputs.
//  * message corruption — at the first Exchange at or after the scheduled
//                         round, one destination's message arrives with a
//                         nonzero XOR mask applied to its FNV-1a checksum.
//                         The receiver detects the mismatch, discards the
//                         corrupted copy, and the retransmitted original is
//                         delivered — outputs are unaffected, but the
//                         repair doubles that destination's received count
//                         and the extra traffic is charged as recovery
//                         communication.
//
// Same (cluster seed, fault seed) ⇒ same schedule ⇒ same recovery path:
// the fault machinery draws exclusively from FaultConfig::seed, so faulted
// runs are exactly as reproducible as fault-free ones.

#ifndef PARJOIN_MPC_FAULTS_H_
#define PARJOIN_MPC_FAULTS_H_

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "parjoin/common/logging.h"

namespace parjoin {
namespace mpc {

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  // How many events of each kind the plan schedules.
  int crashes = 1;
  int stragglers = 1;
  int corruptions = 1;
  // Events are scheduled on charged rounds [1, horizon]. Events whose
  // scheduled round has passed fire at the next eligible boundary, so a
  // small horizon guarantees every event fires even on short algorithms.
  int horizon = 4;
  // When non-empty, crash i is pinned to crash_rounds[i] (1-based charged
  // round, may exceed the horizon) instead of drawn from [1, horizon];
  // crashes beyond the list fall back to the seeded draw. The recovery
  // test/bench matrices use this to place crashes relative to checkpoint
  // intervals deterministically.
  std::vector<int> crash_rounds;
  // Straggler delay factors are drawn uniformly from [straggle_min,
  // straggle_max] (integer units of the round's maximum load).
  double straggle_min = 2.0;
  double straggle_max = 8.0;
};

enum class FaultKind { kCrash, kStraggler, kCorruption };

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int round = 1;   // earliest charged round (1-based) at which it may fire
  int server = 0;  // crash victim / straggler id / corruption dest salt
  double factor = 1.0;                // straggler delay factor
  std::uint64_t corruption_mask = 0;  // nonzero bit flips (corruption only)
  bool fired = false;
  int fired_round = -1;  // charged round at which it actually fired
};

// The seeded schedule. Generation is a pure function of (config, p): two
// plans from the same inputs are identical, which the schedule-determinism
// tests assert via ScheduleString().
class FaultPlan {
 public:
  FaultPlan() = default;

  static FaultPlan Generate(const FaultConfig& config, int p);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::vector<FaultEvent>& events() { return events_; }

  // One line per scheduled event, deterministic (firing state excluded).
  std::string ScheduleString() const;

 private:
  std::vector<FaultEvent> events_;
};

// Thrown by Cluster at a round boundary when a fail-stop crash fires or a
// load budget is exceeded. This is simulation-internal control flow: it is
// always thrown on the main thread (never from ParallelFor workers) and
// never escapes plan::PlanAndRun's recovery loop — the public error model
// stays exception-free (common/status.h).
struct RoundAbort {
  enum class Reason { kServerCrash, kLoadBudget };

  Reason reason = Reason::kServerCrash;
  int round = 0;               // charged round of the abort
  int server = -1;             // crashed server (kServerCrash)
  std::int64_t round_load = 0; // the round's max physical load
  std::int64_t budget = 0;     // exceeded budget (kLoadBudget)

  std::string ToString() const;
};

// --- FNV-1a message checksums ------------------------------------------------

namespace internal_faults {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t FnvMixWord(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// Items opt into content hashing by providing an ADL-visible
// FaultContentHash(item) (Tuple<S> does, in relation/relation.h).
template <typename T>
concept HasFaultContentHash = requires(const T& item) {
  { FaultContentHash(item) } -> std::convertible_to<std::uint64_t>;
};

}  // namespace internal_faults

// FNV-1a checksum of one delivered message (the vector of items bound for
// one destination). Content-hashed when the item type provides
// FaultContentHash or has unique object representations (no padding —
// padding bytes would be nondeterministic); otherwise falls back to a
// length-only checksum, still enough to exercise the detection path.
template <typename T>
std::uint64_t MessageChecksum(const std::vector<T>& message) {
  using internal_faults::FnvMixWord;
  using internal_faults::kFnvPrime;
  std::uint64_t h = internal_faults::kFnvOffset;
  h = FnvMixWord(h, static_cast<std::uint64_t>(message.size()));
  for (const T& item : message) {
    if constexpr (internal_faults::HasFaultContentHash<T>) {
      h = FnvMixWord(h, FaultContentHash(item));
    } else if constexpr (std::has_unique_object_representations_v<T>) {
      const unsigned char* bytes =
          reinterpret_cast<const unsigned char*>(&item);
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
      }
    } else {
      h = FnvMixWord(h, 0x9e3779b97f4a7c15ULL);
    }
  }
  return h;
}

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_FAULTS_H_
