#include "parjoin/mpc/primitives.h"

#include <algorithm>

namespace parjoin {
namespace mpc {

std::vector<std::int64_t> MultiSearch(Cluster& cluster,
                                      const std::vector<std::int64_t>& xs,
                                      std::vector<std::int64_t> ys) {
  TraceScope trace(cluster, "multi_search");
  const std::int64_t n =
      static_cast<std::int64_t>(xs.size() + ys.size());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());

  std::sort(ys.begin(), ys.end());
  std::vector<std::int64_t> out;
  out.reserve(xs.size());
  for (std::int64_t x : xs) {
    auto it = std::upper_bound(ys.begin(), ys.end(), x);
    out.push_back(it == ys.begin() ? kNoPredecessor : *(it - 1));
  }
  return out;
}

}  // namespace mpc
}  // namespace parjoin
