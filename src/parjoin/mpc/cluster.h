// The MPC cost model (paper §1.3), simulated in-process.
//
// A Cluster models p servers connected by a complete network. Computation
// proceeds in synchronous rounds; in each round every server receives
// messages, computes locally, and sends messages. The complexity measure is
// the LOAD L: the maximum number of tuples received by any server in any
// round (outgoing messages are not charged, local computation is free).
//
// The simulator executes real data movement between per-server partitions
// (see Dist<T> and Exchange) and records, for every round, how many tuples
// each server received. Algorithms are compared by their measured
// stats().max_load, exactly the quantity the paper's Table 1 bounds.
//
// Virtual servers: several of the paper's algorithms "allocate k_g servers"
// to each of many subqueries, with a total of O(p) virtual servers. The
// simulator supports destinations beyond p: virtual server v is hosted on
// physical server v mod p, and received tuples are charged to the physical
// host. Since the paper guarantees O(p) virtual servers in total, each
// physical server hosts O(1) of them and measured loads match the analysis
// up to the same constant the paper hides.
//
// Fault model (mpc/faults.h): when fault injection is enabled, each charged
// round boundary consults the seeded FaultPlan. Stragglers stretch the
// round's contribution to stats().critical_path; message corruption is
// detected by FNV checksums in Exchange and repaired by retransmission
// (charged as recovery_comm); a fail-stop crash shrinks the live server set
// and aborts the attempt with RoundAbort so the executor can replay from
// its last checkpoint (mpc/checkpoint.h, plan/executor.h). A load budget,
// independent of fault injection, aborts any round whose measured maximum
// exceeds it — the executor's guardrail against planner mispredictions.

#ifndef PARJOIN_MPC_CLUSTER_H_
#define PARJOIN_MPC_CLUSTER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "parjoin/common/checked_math.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/faults.h"
#include "parjoin/mpc/observer.h"

namespace parjoin {
namespace mpc {

class Cluster {
 public:
  struct Stats {
    int rounds = 0;
    std::int64_t max_load = 0;    // max over rounds and servers
    std::int64_t total_comm = 0;  // total tuples moved
    // Sum over rounds of round_max × straggle_factor: the simulated
    // wall-clock of the synchronous schedule. Equals the sum of per-round
    // maxima when no straggler fires.
    std::int64_t critical_path = 0;
    // Tuples moved for resilience rather than the algorithm itself:
    // checkpoint replication, post-crash restores, and corruption
    // retransmissions. Included in total_comm as well.
    std::int64_t recovery_comm = 0;
    int retransmits = 0;  // corrupted messages detected and re-delivered
    int crashes = 0;      // fail-stop crashes fired
    // Fine-grained recovery ledger (this file, BeginAttempt /
    // ChargeRebalanceRound): resume fast-forwards begun, algorithm rounds
    // they elided, straggler re-balance rounds charged, and the tuples
    // those re-balances shipped (also counted in recovery_comm and
    // total_comm).
    int resumes = 0;
    int resumed_rounds = 0;
    int rebalances = 0;
    std::int64_t rebalance_comm = 0;
  };

  explicit Cluster(int p, std::uint64_t seed = 0x9a3f7151c2d4e680ULL)
      : p_total_(p), live_(p), rng_(seed),
        since_ckpt_(static_cast<size_t>(p), 0) {
    CHECK_GT(p, 0);
  }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // The number of *live* servers. Algorithms always address servers
  // 0..p()-1, so after a crash a replay naturally re-hosts the dead
  // server's virtual servers on the survivors (v mod (p-1)).
  int p() const { return live_; }
  // The configured cluster size, ignoring crashes.
  int p_total() const { return p_total_; }

  // Source of reproducible randomness for hashing decisions inside
  // primitives (hash-partitioning seeds, KMV hash functions, ...).
  Rng& rng() { return rng_; }

  // Records one communication round. received[v] is the number of tuples
  // delivered to *virtual* server v; charges are accumulated on physical
  // server v mod p. The vector may have any size >= 0. May throw RoundAbort
  // (crash / load budget) — main thread only; see faults.h.
  void ChargeRound(const std::vector<std::int64_t>& received) {
    ApplyRound(FoldToPhysical(received), /*recovery=*/false);
  }

  // Records a round of resilience traffic (checkpoint replication or
  // post-crash restore). Charged into recovery_comm as well as total_comm;
  // fault events do not fire on recovery rounds.
  void ChargeRecoveryRound(const std::vector<std::int64_t>& received) {
    ApplyRound(FoldToPhysical(received), /*recovery=*/true);
  }

  // Convenience: charges a round in which every physical server receives
  // `per_server` tuples. Used by primitives whose distributed realization
  // is known linear-load (documented per call site) but simulated centrally.
  void ChargeUniformRound(std::int64_t per_server) {
    std::vector<std::int64_t> physical(static_cast<size_t>(live_),
                                       per_server);
    ApplyRound(physical, /*recovery=*/false);
  }

  const Stats& stats() const { return stats_; }

  // Resets accounting for a fresh measurement. Any ParallelRegion guards
  // still alive (e.g. on the unwind path of an aborted attempt) are
  // invalidated via the region epoch and become no-ops.
  void ResetStats() {
    stats_ = Stats();
    regions_.clear();
    ++region_epoch_;
    charged_rounds_ = 0;
    rounds_since_ckpt_ = 0;
    pending_retransmit_comm_ = 0;
    since_ckpt_.assign(static_cast<size_t>(live_), 0);
    algo_rounds_done_ = 0;
    ckpt_covered_rounds_ = 0;
    fast_forward_remaining_ = 0;
  }

  // --- Fault injection ------------------------------------------------------

  // Generates the deterministic schedule from config.seed and arms it.
  // Firing state and the fault log start clean. Call after the ResetStats
  // that precedes the measured run, so scheduled rounds line up.
  void EnableFaults(const FaultConfig& config) {
    plan_ = FaultPlan::Generate(config, live_);
    faults_enabled_ = true;
    fault_log_.clear();
  }
  void DisableFaults() { faults_enabled_ = false; }
  bool faults_enabled() const { return faults_enabled_; }

  const FaultPlan& fault_plan() const { return plan_; }
  FaultPlan& fault_plan() { return plan_; }
  const std::vector<std::string>& fault_log() const { return fault_log_; }

  // Exchange computes per-destination checksums only when this is true.
  bool ChecksumVerificationEnabled() const { return faults_enabled_; }

  // --- Observation ----------------------------------------------------------

  // Attaches (or, with nullptr, detaches) a read-only round observer
  // (mpc/observer.h). The observer sees every charged round and fault
  // event after the ledger is updated; it can never perturb charges,
  // outputs, or the rng stream. With no observer attached the cost is one
  // null check per charged round.
  void SetObserver(RoundObserver* observer) { observer_ = observer; }
  RoundObserver* observer() const { return observer_; }

  // Called by Exchange with the FNV checksum of each destination's message
  // before delivery is charged. If a corruption event is due, one
  // destination's wire checksum arrives XOR-masked; the mismatch is
  // detected, the corrupted copy discarded, and the retransmitted original
  // delivered: (*received)[victim] doubles and the repair traffic is folded
  // into recovery_comm at the next charged round. Returns true iff an event
  // fired. Outputs are never perturbed — corruption models a detected and
  // repaired fault, not silent data loss.
  bool VerifyAndRepairMessages(const std::vector<std::uint64_t>& checksums,
                               std::vector<std::int64_t>* received) {
    // Elided (fast-forwarded) rounds are re-covered by the restored
    // checkpoint: no corruption can fire inside the window — the event
    // fires at the first live Exchange after it, exactly like an event
    // whose scheduled round has already passed.
    if (!faults_enabled_ || fast_forward_remaining_ > 0) return false;
    CHECK_EQ(checksums.size(), received->size());
    for (FaultEvent& e : plan_.events()) {
      if (e.fired || e.kind != FaultKind::kCorruption) continue;
      if (e.round > charged_rounds_ + 1) continue;
      const size_t n = received->size();
      size_t victim = n;
      for (size_t i = 0; i < n; ++i) {
        const size_t idx = (static_cast<size_t>(e.server) + i) % n;
        if ((*received)[idx] > 0) {
          victim = idx;
          break;
        }
      }
      if (victim == n) return false;  // no traffic; event fires later
      const std::uint64_t wire = checksums[victim] ^ e.corruption_mask;
      CHECK_NE(wire, checksums[victim]);  // mask is nonzero by construction
      e.fired = true;
      e.fired_round = charged_rounds_ + 1;
      stats_.retransmits += 1;
      pending_retransmit_comm_ =
          CheckedAdd(pending_retransmit_comm_, (*received)[victim]);
      (*received)[victim] = CheckedAdd((*received)[victim],
                                       (*received)[victim]);
      fault_log_.push_back(
          "corruption detected at round " +
          std::to_string(charged_rounds_ + 1) + ": dest " +
          std::to_string(victim) + " checksum mismatch (mask " +
          std::to_string(e.corruption_mask) + "), retransmitted");
      if (observer_ != nullptr) {
        observer_->OnEvent("retransmit", charged_rounds_ + 1,
                           fault_log_.back());
      }
      return true;
    }
    return false;
  }

  // --- Guardrails & checkpointing -------------------------------------------

  // A round whose physical maximum exceeds `budget` throws
  // RoundAbort{kLoadBudget}. 0 disables. Independent of fault injection.
  void SetLoadBudget(std::int64_t budget) { load_budget_ = budget; }
  std::int64_t load_budget() const { return load_budget_; }

  // Every `interval` non-recovery rounds, charges one replication round
  // that copies each server's traffic since the last checkpoint to its
  // neighbor ((s+1) mod p): the simulated cost of keeping a warm
  // checkpoint. 0 disables.
  void SetCheckpointInterval(int interval) {
    CHECK_GE(interval, 0);
    ckpt_interval_ = interval;
    rounds_since_ckpt_ = 0;
    since_ckpt_.assign(static_cast<size_t>(live_), 0);
    algo_rounds_done_ = 0;
    ckpt_covered_rounds_ = 0;
  }
  int checkpoint_interval() const { return ckpt_interval_; }

  // --- Resume points --------------------------------------------------------

  // Algorithm (non-recovery) rounds of the current attempt covered by the
  // latest interval-checkpoint replication — the rounds a resumed
  // re-execution may fast-forward over. 0 until a replication round has
  // been charged (or when interval checkpointing is off).
  int checkpointed_rounds() const { return ckpt_covered_rounds_; }

  // Marks the start of a fresh dispatch attempt (the executor calls this
  // after restoring inputs, before re-dispatching). Per-attempt checkpoint
  // progress restarts; with skip_rounds > 0 the attempt is a RESUME: the
  // first skip_rounds non-recovery rounds of the re-execution are ELIDED.
  // An elided round keeps its position in the monotone charged-round order
  // (fault schedules stay aligned) but charges nothing — no load, comm, or
  // critical path, no fault events, no budget check, and no checkpoint
  // accumulation. The rotating replication scheme leaves each server's
  // checkpointed delta resident on a surviving neighbor, so no separate
  // bulk state-restore round is charged beyond the input restores the
  // executor already pays for.
  void BeginAttempt(int skip_rounds) {
    CHECK_GE(skip_rounds, 0);
    rounds_since_ckpt_ = 0;
    since_ckpt_.assign(static_cast<size_t>(live_), 0);
    algo_rounds_done_ = 0;
    // The restored snapshot re-covers exactly the elided rounds, so a
    // second crash before any new replication resumes from the same point.
    ckpt_covered_rounds_ = skip_rounds;
    fast_forward_remaining_ = skip_rounds;
    if (skip_rounds > 0) {
      stats_.resumes += 1;
      fault_log_.push_back("resume: fast-forwarding " +
                           std::to_string(skip_rounds) +
                           " checkpointed round(s)");
      if (observer_ != nullptr) {
        EventRecord ev;
        ev.kind = "resume";
        ev.round = charged_rounds_;
        ev.detail = fault_log_.back();
        ev.moved = skip_rounds;
        observer_->OnEventRecord(ev);
      }
    }
  }

  // --- Straggler re-balancing -----------------------------------------------

  // 0 (the default) keeps the passive model: an injected straggle factor
  // stretches the round's critical-path contribution. With a threshold
  // t > 0, a factor >= t is handled ACTIVELY: the victim's pending round
  // load is shipped onto the other live servers (capacity-weighted) in one
  // charged re-balance round, and the straggled round contributes the
  // post-re-balance effective time instead of the stretched one.
  void SetStraggleThreshold(double threshold) {
    CHECK_GE(threshold, 0);
    straggle_threshold_ = threshold;
  }
  double straggle_threshold() const { return straggle_threshold_; }

  // Per-server capacity weights (heterogeneous-cluster groundwork: a
  // round's effective time is max received/capacity). Indexed by physical
  // server; servers beyond the vector default to 1.0. Empty (the default)
  // keeps the homogeneous model bit-for-bit.
  void SetCapacities(std::vector<double> capacities) {
    for (double c : capacities) CHECK_GT(c, 0);
    capacities_ = std::move(capacities);
  }
  const std::vector<double>& capacities() const { return capacities_; }

  // Algorithm entry guard: a previous attempt must not leave a parallel
  // region open (the epoch mechanism makes abandoned guards no-ops, but a
  // *live* region at dispatch means unbalanced Begin/End — a bug).
  void CheckQuiescent() const {
    CHECK(regions_.empty())
        << "parallel region still open at algorithm entry";
  }

  // --- Parallel regions -----------------------------------------------------
  //
  // Several of the paper's algorithms run many subqueries "in parallel",
  // each on its own (disjoint) group of virtual servers. The simulator
  // executes them sequentially; loads are charged per round exactly as if
  // parallel (disjoint groups cannot inflate each other's per-round
  // maxima), but a naive round count would sum the branches. A parallel
  // region fixes the ROUND accounting: the region contributes
  // max-over-branches rounds, matching the paper's O(1)-round claim.
  // Regions nest. Use the ParallelRegion RAII guard below.
  void BeginParallelRegion() {
    regions_.push_back({stats_.rounds, stats_.rounds, 0});
  }
  void BeginParallelBranch() {
    CHECK(!regions_.empty()) << "branch outside a parallel region";
    Region& r = regions_.back();
    r.longest_branch =
        std::max(r.longest_branch, stats_.rounds - r.branch_start);
    r.branch_start = stats_.rounds;
  }
  void EndParallelRegion() {
    CHECK(!regions_.empty());
    Region r = regions_.back();
    regions_.pop_back();
    r.longest_branch =
        std::max(r.longest_branch, stats_.rounds - r.branch_start);
    stats_.rounds = r.begin_rounds + r.longest_branch;
  }

  // Bumped by ResetStats; ParallelRegion guards from an older epoch no-op.
  std::uint64_t region_epoch() const { return region_epoch_; }

 private:
  struct Region {
    int begin_rounds = 0;
    int branch_start = 0;
    int longest_branch = 0;
  };

  // One planned straggler re-balance: the victim's pending round load and
  // how it lands on the other live servers.
  struct Rebalance {
    int victim = 0;
    double factor = 1.0;        // the injected delay factor that triggered it
    std::int64_t moved = 0;     // tuples shipped off the victim
    std::int64_t ship_max = 0;  // max tuples any recipient takes on
    std::int64_t effective = 0; // post-re-balance round time
  };

  double CapacityOf(size_t s) const {
    return s < capacities_.size() ? capacities_[s] : 1.0;
  }

  // Effective synchronous-round time under per-server capacities: the
  // maximum over servers of received/capacity. Equals the plain round
  // maximum with uniform (unset) capacities.
  std::int64_t EffectiveTime(const std::vector<std::int64_t>& physical) const {
    if (capacities_.empty()) {
      std::int64_t m = 0;
      for (std::int64_t r : physical) m = std::max(m, r);
      return m;
    }
    double m = 0;
    for (size_t s = 0; s < physical.size(); ++s) {
      m = std::max(m, static_cast<double>(physical[s]) / CapacityOf(s));
    }
    return static_cast<std::int64_t>(std::llround(m));
  }

  // Splits the victim's round load across the other live servers
  // proportionally to capacity (largest shares to the fastest servers),
  // deterministically: fractional remainders are handed out one tuple at a
  // time in server order.
  Rebalance PlanRebalance(int victim, double factor,
                          const std::vector<std::int64_t>& physical) const {
    Rebalance rb;
    rb.victim = victim;
    rb.factor = factor;
    rb.moved = physical[static_cast<size_t>(victim)];
    const size_t n = physical.size();
    double weight_sum = 0;
    for (size_t s = 0; s < n; ++s) {
      if (static_cast<int>(s) != victim) weight_sum += CapacityOf(s);
    }
    std::vector<std::int64_t> delta(n, 0);
    std::int64_t assigned = 0;
    for (size_t s = 0; s < n; ++s) {
      if (static_cast<int>(s) == victim) continue;
      delta[s] = static_cast<std::int64_t>(static_cast<double>(rb.moved) *
                                           (CapacityOf(s) / weight_sum));
      assigned += delta[s];
    }
    std::int64_t leftover = rb.moved - assigned;
    for (size_t s = 0; leftover > 0; s = (s + 1) % n) {
      if (static_cast<int>(s) == victim) continue;
      delta[s] += 1;
      --leftover;
    }
    double eff = 0;
    for (size_t s = 0; s < n; ++s) {
      if (static_cast<int>(s) == victim) continue;
      rb.ship_max = std::max(rb.ship_max, delta[s]);
      eff = std::max(eff, static_cast<double>(
                              CheckedAdd(physical[s], delta[s])) /
                              CapacityOf(s));
    }
    rb.effective = static_cast<std::int64_t>(std::llround(eff));
    return rb;
  }

  // Charges the re-balance shipping round directly (like checkpoint
  // replication: it cannot itself straggle, crash, or trigger a
  // checkpoint). The traffic is recovery communication, itemized again in
  // rebalance_comm.
  void ChargeRebalanceRound(const Rebalance& rb) {
    ++charged_rounds_;
    stats_.rounds += 1;
    stats_.rebalances += 1;
    stats_.max_load = std::max(stats_.max_load, rb.ship_max);
    stats_.total_comm = CheckedAdd(stats_.total_comm, rb.moved);
    stats_.recovery_comm = CheckedAdd(stats_.recovery_comm, rb.moved);
    stats_.rebalance_comm = CheckedAdd(stats_.rebalance_comm, rb.moved);
    stats_.critical_path = CheckedAdd(stats_.critical_path, rb.ship_max);
    fault_log_.push_back(
        "rebalance at round " + std::to_string(charged_rounds_) +
        ": shipped " + std::to_string(rb.moved) +
        " tuple(s) off server " + std::to_string(rb.victim));
    if (observer_ != nullptr) {
      RoundRecord record;
      record.round = charged_rounds_;
      record.max_load = rb.ship_max;
      record.tuples = rb.moved;
      record.recovery = true;
      observer_->OnRound(record);
      EventRecord ev;
      ev.kind = "rebalance";
      ev.round = charged_rounds_;
      ev.detail = fault_log_.back();
      ev.server = rb.victim;
      ev.factor = rb.factor;
      ev.moved = rb.moved;
      observer_->OnEventRecord(ev);
    }
  }

  std::vector<std::int64_t> FoldToPhysical(
      const std::vector<std::int64_t>& received) const {
    std::vector<std::int64_t> physical(static_cast<size_t>(live_), 0);
    for (size_t v = 0; v < received.size(); ++v) {
      std::int64_t& slot = physical[v % static_cast<size_t>(live_)];
      slot = CheckedAdd(slot, received[v]);
    }
    return physical;
  }

  // The single round-accounting core. `physical` has size live_.
  void ApplyRound(const std::vector<std::int64_t>& physical, bool recovery) {
    ++charged_rounds_;
    std::int64_t round_max = 0;
    std::int64_t moved = 0;
    for (std::int64_t r : physical) {
      round_max = std::max(round_max, r);
      moved = CheckedAdd(moved, r);
    }
    if (!recovery && fast_forward_remaining_ > 0) {
      // Resume fast-forward: this round is re-covered by the restored
      // interval checkpoint. It keeps its slot in the charged-round order
      // but contributes nothing to the ledger, fires no fault events, and
      // skips the budget check and checkpoint accumulation (BeginAttempt).
      --fast_forward_remaining_;
      algo_rounds_done_ += 1;
      stats_.resumed_rounds += 1;
      if (observer_ != nullptr) {
        RoundRecord record;
        record.round = charged_rounds_;
        record.max_load = round_max;
        record.tuples = moved;
        record.recovery = false;
        record.resumed = true;
        observer_->OnRound(record);
      }
      return;
    }
    stats_.rounds += 1;
    stats_.max_load = std::max(stats_.max_load, round_max);
    stats_.total_comm = CheckedAdd(stats_.total_comm, moved);
    if (recovery) {
      stats_.recovery_comm = CheckedAdd(stats_.recovery_comm, moved);
    }

    // Straggler: the slowest due delay factor stretches this round's
    // contribution to the critical path. Recovery rounds never straggle.
    // With an armed straggle threshold, a due factor at or above it is
    // re-balanced instead: the victim's pending round load ships to the
    // other live servers (capacity-weighted) in a charged re-balance round
    // below, and this round contributes the post-re-balance effective time
    // rather than the stretched one.
    double factor = 1.0;
    std::vector<Rebalance> rebalances;
    if (faults_enabled_ && !recovery) {
      for (FaultEvent& e : plan_.events()) {
        if (e.fired || e.kind != FaultKind::kStraggler) continue;
        if (e.round > charged_rounds_) continue;
        e.fired = true;
        e.fired_round = charged_rounds_;
        const int victim =
            e.server % static_cast<int>(physical.size());
        const bool active = straggle_threshold_ > 0 &&
                            e.factor >= straggle_threshold_ &&
                            physical.size() > 1;
        fault_log_.push_back(
            "straggler at round " + std::to_string(charged_rounds_) +
            ": server " + std::to_string(e.server) + " delayed x" +
            std::to_string(e.factor) + (active ? ", re-balancing" : ""));
        if (observer_ != nullptr) {
          EventRecord ev;
          ev.kind = "straggler";
          ev.round = charged_rounds_;
          ev.detail = fault_log_.back();
          ev.server = victim;
          ev.factor = e.factor;
          observer_->OnEventRecord(ev);
        }
        if (active) {
          Rebalance rb = PlanRebalance(victim, e.factor, physical);
          // A victim with no received tuples has nothing to ship — and
          // nothing to straggle on: its delay stretches no charged work.
          if (rb.moved > 0) rebalances.push_back(std::move(rb));
        } else {
          factor = std::max(factor, e.factor);
        }
      }
    }
    std::int64_t round_time = static_cast<std::int64_t>(std::llround(
        static_cast<double>(EffectiveTime(physical)) * factor));
    for (const Rebalance& rb : rebalances) {
      round_time = std::max(round_time, rb.effective);
    }
    stats_.critical_path = CheckedAdd(stats_.critical_path, round_time);

    // Retransmission traffic from VerifyAndRepairMessages is already in
    // this round's physical counts; book it as recovery traffic here.
    if (pending_retransmit_comm_ > 0) {
      stats_.recovery_comm =
          CheckedAdd(stats_.recovery_comm, pending_retransmit_comm_);
      pending_retransmit_comm_ = 0;
    }

    if (observer_ != nullptr) {
      RoundRecord record;
      record.round = charged_rounds_;
      record.max_load = round_max;
      record.tuples = moved;
      record.recovery = recovery;
      record.straggle_factor = factor;
      observer_->OnRound(record);
    }

    for (const Rebalance& rb : rebalances) {
      ChargeRebalanceRound(rb);
    }

    if (!recovery) {
      algo_rounds_done_ += 1;
      if (ckpt_interval_ > 0) {
        for (size_t s = 0; s < physical.size(); ++s) {
          since_ckpt_[s] = CheckedAdd(since_ckpt_[s], physical[s]);
        }
        if (++rounds_since_ckpt_ >= ckpt_interval_) {
          ChargeCheckpointReplication();
        }
      }
    }

    if (!recovery && load_budget_ > 0 && round_max > load_budget_) {
      RoundAbort abort;
      abort.reason = RoundAbort::Reason::kLoadBudget;
      abort.round = charged_rounds_;
      abort.round_load = round_max;
      abort.budget = load_budget_;
      fault_log_.push_back("budget abort: " + abort.ToString());
      if (observer_ != nullptr) {
        observer_->OnEvent("budget_abort", charged_rounds_,
                           fault_log_.back());
      }
      throw abort;
    }

    if (faults_enabled_ && !recovery && live_ > 1) {
      for (FaultEvent& e : plan_.events()) {
        if (e.fired || e.kind != FaultKind::kCrash) continue;
        if (e.round > charged_rounds_) continue;
        e.fired = true;
        e.fired_round = charged_rounds_;
        stats_.crashes += 1;
        const int victim = e.server % live_;
        live_ -= 1;
        FoldSinceCheckpoint();
        RoundAbort abort;
        abort.reason = RoundAbort::Reason::kServerCrash;
        abort.round = charged_rounds_;
        abort.server = victim;
        abort.round_load = round_max;
        fault_log_.push_back("crash: " + abort.ToString() + ", " +
                             std::to_string(live_) + " servers remain");
        if (observer_ != nullptr) {
          observer_->OnEvent("crash", charged_rounds_, fault_log_.back());
        }
        throw abort;
      }
    }
  }

  // Charges the rotated replication round directly (no recursion through
  // ApplyRound: replication cannot itself straggle, crash, or re-trigger a
  // checkpoint).
  void ChargeCheckpointReplication() {
    std::int64_t rep_max = 0;
    std::int64_t rep_moved = 0;
    for (std::int64_t c : since_ckpt_) {
      rep_max = std::max(rep_max, c);
      rep_moved = CheckedAdd(rep_moved, c);
    }
    ++charged_rounds_;
    stats_.rounds += 1;
    stats_.max_load = std::max(stats_.max_load, rep_max);
    stats_.total_comm = CheckedAdd(stats_.total_comm, rep_moved);
    stats_.recovery_comm = CheckedAdd(stats_.recovery_comm, rep_moved);
    stats_.critical_path = CheckedAdd(stats_.critical_path, rep_max);
    std::fill(since_ckpt_.begin(), since_ckpt_.end(), 0);
    rounds_since_ckpt_ = 0;
    // Everything up to and including this round is now replicated: a
    // resumed re-execution may fast-forward over these rounds.
    ckpt_covered_rounds_ = algo_rounds_done_;
    if (observer_ != nullptr) {
      RoundRecord record;
      record.round = charged_rounds_;
      record.max_load = rep_max;
      record.tuples = rep_moved;
      record.recovery = true;
      observer_->OnRound(record);
      observer_->OnEvent(
          "checkpoint", charged_rounds_,
          "interval checkpoint replication, " + std::to_string(rep_moved) +
              " tuple(s)");
    }
  }

  // After a crash, traffic accumulated toward the next checkpoint follows
  // the same v mod p re-hosting as the virtual servers themselves.
  void FoldSinceCheckpoint() {
    std::vector<std::int64_t> folded(static_cast<size_t>(live_), 0);
    for (size_t s = 0; s < since_ckpt_.size(); ++s) {
      std::int64_t& slot = folded[s % static_cast<size_t>(live_)];
      slot = CheckedAdd(slot, since_ckpt_[s]);
    }
    since_ckpt_ = std::move(folded);
  }

  int p_total_;
  int live_;
  Rng rng_;
  Stats stats_;
  std::vector<Region> regions_;
  std::uint64_t region_epoch_ = 0;

  // Monotone count of charged rounds since ResetStats. Fault schedules key
  // off this, not stats_.rounds, which EndParallelRegion rewrites downward.
  int charged_rounds_ = 0;

  bool faults_enabled_ = false;
  FaultPlan plan_;
  std::vector<std::string> fault_log_;

  std::int64_t load_budget_ = 0;
  int ckpt_interval_ = 0;
  int rounds_since_ckpt_ = 0;
  std::vector<std::int64_t> since_ckpt_;
  std::int64_t pending_retransmit_comm_ = 0;

  // Fine-grained recovery state: non-recovery rounds completed this
  // attempt (elided ones included — they represent completed progress),
  // how many of them the latest replication covers, and how many rounds of
  // a resumed re-execution remain to fast-forward over.
  int algo_rounds_done_ = 0;
  int ckpt_covered_rounds_ = 0;
  int fast_forward_remaining_ = 0;

  double straggle_threshold_ = 0;
  std::vector<double> capacities_;

  RoundObserver* observer_ = nullptr;
};

// RAII scope label for trace attribution: primitives and the executor wrap
// their charged work in `TraceScope scope(cluster, "sort");` so the
// observer can attribute rounds. A no-op (one null check) when no observer
// is attached. The observer pointer is captured at construction: scopes
// are short-lived and observers are attached/detached between queries,
// never inside a primitive.
class TraceScope {
 public:
  TraceScope(Cluster& cluster, const char* name)
      : observer_(cluster.observer()) {
    if (observer_ != nullptr) observer_->PushScope(name);
  }
  ~TraceScope() {
    if (observer_ != nullptr) observer_->PopScope();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  RoundObserver* observer_;
};

// RAII guard for a parallel region; call NextBranch() before each branch.
// Abort-safe: if the cluster is reset while the guard is alive (the retry
// path after a RoundAbort unwound through an algorithm), the guard's epoch
// goes stale and its remaining operations become no-ops instead of
// corrupting the fresh region stack.
class ParallelRegion {
 public:
  explicit ParallelRegion(Cluster& cluster)
      : cluster_(cluster), epoch_(cluster.region_epoch()) {
    cluster_.BeginParallelRegion();
  }
  ~ParallelRegion() {
    if (epoch_ == cluster_.region_epoch()) cluster_.EndParallelRegion();
  }
  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

  void NextBranch() {
    if (epoch_ == cluster_.region_epoch()) cluster_.BeginParallelBranch();
  }

 private:
  Cluster& cluster_;
  std::uint64_t epoch_;
};

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_CLUSTER_H_
