// The MPC cost model (paper §1.3), simulated in-process.
//
// A Cluster models p servers connected by a complete network. Computation
// proceeds in synchronous rounds; in each round every server receives
// messages, computes locally, and sends messages. The complexity measure is
// the LOAD L: the maximum number of tuples received by any server in any
// round (outgoing messages are not charged, local computation is free).
//
// The simulator executes real data movement between per-server partitions
// (see Dist<T> and Exchange) and records, for every round, how many tuples
// each server received. Algorithms are compared by their measured
// stats().max_load, exactly the quantity the paper's Table 1 bounds.
//
// Virtual servers: several of the paper's algorithms "allocate k_g servers"
// to each of many subqueries, with a total of O(p) virtual servers. The
// simulator supports destinations beyond p: virtual server v is hosted on
// physical server v mod p, and received tuples are charged to the physical
// host. Since the paper guarantees O(p) virtual servers in total, each
// physical server hosts O(1) of them and measured loads match the analysis
// up to the same constant the paper hides.

#ifndef PARJOIN_MPC_CLUSTER_H_
#define PARJOIN_MPC_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/random.h"

namespace parjoin {
namespace mpc {

class Cluster {
 public:
  struct Stats {
    int rounds = 0;
    std::int64_t max_load = 0;    // max over rounds and servers
    std::int64_t total_comm = 0;  // total tuples moved
  };

  explicit Cluster(int p, std::uint64_t seed = 0x9a3f7151c2d4e680ULL)
      : p_(p), rng_(seed) {
    CHECK_GT(p, 0);
  }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int p() const { return p_; }

  // Source of reproducible randomness for hashing decisions inside
  // primitives (hash-partitioning seeds, KMV hash functions, ...).
  Rng& rng() { return rng_; }

  // Records one communication round. received[v] is the number of tuples
  // delivered to *virtual* server v; charges are accumulated on physical
  // server v mod p. The vector may have any size >= 0.
  void ChargeRound(const std::vector<std::int64_t>& received) {
    std::vector<std::int64_t> physical(static_cast<size_t>(p_), 0);
    std::int64_t moved = 0;
    for (size_t v = 0; v < received.size(); ++v) {
      physical[v % static_cast<size_t>(p_)] += received[v];
      moved += received[v];
    }
    std::int64_t round_max = 0;
    for (std::int64_t r : physical) round_max = std::max(round_max, r);
    stats_.rounds += 1;
    stats_.max_load = std::max(stats_.max_load, round_max);
    stats_.total_comm += moved;
  }

  // Convenience: charges a round in which every physical server receives
  // `per_server` tuples. Used by primitives whose distributed realization
  // is known linear-load (documented per call site) but simulated centrally.
  void ChargeUniformRound(std::int64_t per_server) {
    stats_.rounds += 1;
    stats_.max_load = std::max(stats_.max_load, per_server);
    stats_.total_comm += per_server * p_;
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = Stats();
    regions_.clear();
  }

  // --- Parallel regions -----------------------------------------------------
  //
  // Several of the paper's algorithms run many subqueries "in parallel",
  // each on its own (disjoint) group of virtual servers. The simulator
  // executes them sequentially; loads are charged per round exactly as if
  // parallel (disjoint groups cannot inflate each other's per-round
  // maxima), but a naive round count would sum the branches. A parallel
  // region fixes the ROUND accounting: the region contributes
  // max-over-branches rounds, matching the paper's O(1)-round claim.
  // Regions nest. Use the ParallelRegion RAII guard below.
  void BeginParallelRegion() {
    regions_.push_back({stats_.rounds, stats_.rounds, 0});
  }
  void BeginParallelBranch() {
    CHECK(!regions_.empty()) << "branch outside a parallel region";
    Region& r = regions_.back();
    r.longest_branch =
        std::max(r.longest_branch, stats_.rounds - r.branch_start);
    r.branch_start = stats_.rounds;
  }
  void EndParallelRegion() {
    CHECK(!regions_.empty());
    Region r = regions_.back();
    regions_.pop_back();
    r.longest_branch =
        std::max(r.longest_branch, stats_.rounds - r.branch_start);
    stats_.rounds = r.begin_rounds + r.longest_branch;
  }

 private:
  struct Region {
    int begin_rounds = 0;
    int branch_start = 0;
    int longest_branch = 0;
  };

  int p_;
  Rng rng_;
  Stats stats_;
  std::vector<Region> regions_;
};

// RAII guard for a parallel region; call NextBranch() before each branch.
class ParallelRegion {
 public:
  explicit ParallelRegion(Cluster& cluster) : cluster_(cluster) {
    cluster_.BeginParallelRegion();
  }
  ~ParallelRegion() { cluster_.EndParallelRegion(); }
  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

  void NextBranch() { cluster_.BeginParallelBranch(); }

 private:
  Cluster& cluster_;
};

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_CLUSTER_H_
