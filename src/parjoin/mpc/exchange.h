// Exchange: the single communication step of the MPC model.
//
// Every server inspects its local items and addresses each to one (or, for
// replication, several) destination servers; the cluster delivers them and
// charges each destination the number of tuples it received. All
// higher-level primitives and algorithms move data exclusively through the
// functions in this header, so the Cluster ledger sees every tuple that
// crosses a server boundary.
//
// Threading: routing and delivery are executed with ParallelFor — first a
// per-source-part bucketing pass (each source part routes independently),
// then a per-destination concatenation in source-part order. Output parts
// and charged loads are bit-identical to the sequential walk because the
// delivery order per destination is exactly the sequential encounter
// order. Route functors may be invoked concurrently and therefore must be
// pure (no mutation of shared state); every route in the codebase is a
// hash of the item.

#ifndef PARJOIN_MPC_EXCHANGE_H_
#define PARJOIN_MPC_EXCHANGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"

namespace parjoin {
namespace mpc {

namespace internal_exchange {

// Below this many items the bucketed two-phase route is pure overhead.
inline constexpr std::int64_t kMinItemsForThreadedRoute = 1 << 12;

// The bucket matrix allocates num_src * num_dest vectors; beyond this the
// memory overhead outweighs the parallelism (fall back to the sequential
// walk, which needs only the output parts).
inline constexpr std::int64_t kMaxBucketMatrix = std::int64_t{1} << 22;

inline bool UseThreadedRoute(std::int64_t total_items, int num_src,
                             int num_dest) {
  return ParallelForThreads() > 1 && num_src > 1 &&
         total_items >= kMinItemsForThreadedRoute &&
         static_cast<std::int64_t>(num_src) * num_dest <= kMaxBucketMatrix;
}

// Verifies the delivered messages against their FNV checksums (fault
// injection may corrupt one in flight; detection triggers a charged
// retransmission — see Cluster::VerifyAndRepairMessages), then charges the
// round. Checksums are computed only when verification is armed, so the
// fault-free path pays nothing. Runs on the main thread after delivery.
template <typename T>
void VerifyAndCharge(Cluster& cluster, const Dist<T>& out,
                     std::vector<std::int64_t>& received) {
  if (cluster.ChecksumVerificationEnabled()) {
    std::vector<std::uint64_t> checksums(received.size(), 0);
    for (int d = 0; d < out.num_parts(); ++d) {
      checksums[static_cast<std::size_t>(d)] = MessageChecksum(out.part(d));
    }
    cluster.VerifyAndRepairMessages(checksums, &received);
  }
  cluster.ChargeRound(received);
}

// Concatenates buckets[s][d] over s (source order) into out->part(d) for
// every destination d, in parallel over destinations; fills received[d].
template <typename T>
void DeliverBuckets(std::vector<std::vector<std::vector<T>>>* buckets,
                    Dist<T>* out, std::vector<std::int64_t>* received) {
  const int num_src = static_cast<int>(buckets->size());
  const int num_dest = out->num_parts();
  ParallelFor(num_dest, [&](int d) {
    std::size_t total = 0;
    for (int s = 0; s < num_src; ++s) total += (*buckets)[s][d].size();
    auto& dst = out->part(d);
    dst.reserve(total);
    for (int s = 0; s < num_src; ++s) {
      auto& bucket = (*buckets)[s][d];
      for (auto& item : bucket) dst.push_back(std::move(item));
    }
    (*received)[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(total);
  });
}

}  // namespace internal_exchange

// One round: routes every item to route(item) in [0, num_dest_parts).
// Destinations beyond p are virtual servers (charged to v mod p).
// `route` must be pure: it may run concurrently across source parts.
template <typename T, typename Route>
Dist<T> Exchange(Cluster& cluster, const Dist<T>& in, int num_dest_parts,
                 Route route) {
  CHECK_GT(num_dest_parts, 0);
  TraceScope trace(cluster, "exchange");
  Dist<T> out(num_dest_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_dest_parts), 0);
  const int num_src = in.num_parts();
  if (!internal_exchange::UseThreadedRoute(in.TotalSize(), num_src,
                                           num_dest_parts)) {
    for (const auto& part : in.parts()) {
      for (const auto& item : part) {
        const int dest = route(item);
        CHECK_GE(dest, 0);
        CHECK_LT(dest, num_dest_parts);
        out.part(dest).push_back(item);
        received[static_cast<size_t>(dest)] += 1;
      }
    }
    internal_exchange::VerifyAndCharge(cluster, out, received);
    return out;
  }

  // Phase 1: every source part buckets its items by destination.
  std::vector<std::vector<std::vector<T>>> buckets(
      static_cast<size_t>(num_src));
  ParallelFor(num_src, [&](int s) {
    auto& local = buckets[static_cast<size_t>(s)];
    local.resize(static_cast<size_t>(num_dest_parts));
    for (const auto& item : in.part(s)) {
      const int dest = route(item);
      CHECK_GE(dest, 0);
      CHECK_LT(dest, num_dest_parts);
      local[static_cast<size_t>(dest)].push_back(item);
    }
  });
  // Phase 2: every destination concatenates its buckets in source order.
  internal_exchange::DeliverBuckets(&buckets, &out, &received);
  internal_exchange::VerifyAndCharge(cluster, out, received);
  return out;
}

// One round with replication: route_multi(item, &dests) appends every
// destination the item should reach. Used for broadcast-style steps
// (e.g. replicating one side of a heavy join across a server group).
// `route_multi` must be pure: it may run concurrently across source parts.
template <typename T, typename RouteMulti>
Dist<T> ExchangeMulti(Cluster& cluster, const Dist<T>& in, int num_dest_parts,
                      RouteMulti route_multi) {
  TraceScope trace(cluster, "exchange_multi");
  CHECK_GT(num_dest_parts, 0);
  Dist<T> out(num_dest_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_dest_parts), 0);
  const int num_src = in.num_parts();
  if (!internal_exchange::UseThreadedRoute(in.TotalSize(), num_src,
                                           num_dest_parts)) {
    std::vector<int> dests;
    for (const auto& part : in.parts()) {
      for (const auto& item : part) {
        dests.clear();
        route_multi(item, &dests);
        for (int dest : dests) {
          CHECK_GE(dest, 0);
          CHECK_LT(dest, num_dest_parts);
          out.part(dest).push_back(item);
          received[static_cast<size_t>(dest)] += 1;
        }
      }
    }
    internal_exchange::VerifyAndCharge(cluster, out, received);
    return out;
  }

  std::vector<std::vector<std::vector<T>>> buckets(
      static_cast<size_t>(num_src));
  ParallelFor(num_src, [&](int s) {
    auto& local = buckets[static_cast<size_t>(s)];
    local.resize(static_cast<size_t>(num_dest_parts));
    std::vector<int> dests;
    for (const auto& item : in.part(s)) {
      dests.clear();
      route_multi(item, &dests);
      for (int dest : dests) {
        CHECK_GE(dest, 0);
        CHECK_LT(dest, num_dest_parts);
        local[static_cast<size_t>(dest)].push_back(item);
      }
    }
  });
  internal_exchange::DeliverBuckets(&buckets, &out, &received);
  internal_exchange::VerifyAndCharge(cluster, out, received);
  return out;
}

// Sends every item to the single (virtual) server `dest_part` (ids >= p are
// virtual; the charge lands on physical server dest_part mod p).
template <typename T>
std::vector<T> Gather(Cluster& cluster, const Dist<T>& in, int dest_part = 0) {
  TraceScope trace(cluster, "gather");
  std::vector<std::int64_t> received(
      static_cast<size_t>(std::max(dest_part + 1, 1)), 0);
  std::vector<T> out = in.Flatten();
  received[static_cast<size_t>(dest_part)] =
      static_cast<std::int64_t>(out.size());
  cluster.ChargeRound(received);
  return out;
}

// Broadcast: every one of the cluster's p servers receives all items.
// Load: TotalSize() per server, one round. The per-server copies are made
// in parallel; the last part takes the flattened buffer by move.
template <typename T>
Dist<T> Broadcast(Cluster& cluster, const Dist<T>& in) {
  TraceScope trace(cluster, "broadcast");
  const int p = cluster.p();
  std::vector<T> all = in.Flatten();
  Dist<T> out(p);
  std::vector<std::int64_t> received(static_cast<size_t>(p),
                                     static_cast<std::int64_t>(all.size()));
  ParallelFor(p - 1, [&](int s) { out.part(s) = all; });
  out.part(p - 1) = std::move(all);
  cluster.ChargeRound(received);
  return out;
}

// Rebalances items into `num_parts` equal chunks (a "shuffle to even out"
// round, load ceil(N/num_parts) per server). Consumes its input: pass
// std::move(dist) to avoid copying the parts.
template <typename T>
Dist<T> Rebalance(Cluster& cluster, Dist<T> in, int num_parts) {
  TraceScope trace(cluster, "rebalance");
  Dist<T> out = ScatterEvenly(in.TakeFlatten(), num_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    received[static_cast<size_t>(s)] =
        static_cast<std::int64_t>(out.part(s).size());
  }
  cluster.ChargeRound(received);
  return out;
}

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_EXCHANGE_H_
