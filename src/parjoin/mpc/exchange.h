// Exchange: the single communication step of the MPC model.
//
// Every server inspects its local items and addresses each to one (or, for
// replication, several) destination servers; the cluster delivers them and
// charges each destination the number of tuples it received. All
// higher-level primitives and algorithms move data exclusively through the
// functions in this header, so the Cluster ledger sees every tuple that
// crosses a server boundary.

#ifndef PARJOIN_MPC_EXCHANGE_H_
#define PARJOIN_MPC_EXCHANGE_H_

#include <cstdint>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"

namespace parjoin {
namespace mpc {

// One round: routes every item to route(item) in [0, num_dest_parts).
// Destinations beyond p are virtual servers (charged to v mod p).
template <typename T, typename Route>
Dist<T> Exchange(Cluster& cluster, const Dist<T>& in, int num_dest_parts,
                 Route route) {
  CHECK_GT(num_dest_parts, 0);
  Dist<T> out(num_dest_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_dest_parts), 0);
  for (const auto& part : in.parts()) {
    for (const auto& item : part) {
      const int dest = route(item);
      CHECK_GE(dest, 0);
      CHECK_LT(dest, num_dest_parts);
      out.part(dest).push_back(item);
      received[static_cast<size_t>(dest)] += 1;
    }
  }
  cluster.ChargeRound(received);
  return out;
}

// One round with replication: route_multi(item, &dests) appends every
// destination the item should reach. Used for broadcast-style steps
// (e.g. replicating one side of a heavy join across a server group).
template <typename T, typename RouteMulti>
Dist<T> ExchangeMulti(Cluster& cluster, const Dist<T>& in, int num_dest_parts,
                      RouteMulti route_multi) {
  CHECK_GT(num_dest_parts, 0);
  Dist<T> out(num_dest_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_dest_parts), 0);
  std::vector<int> dests;
  for (const auto& part : in.parts()) {
    for (const auto& item : part) {
      dests.clear();
      route_multi(item, &dests);
      for (int dest : dests) {
        CHECK_GE(dest, 0);
        CHECK_LT(dest, num_dest_parts);
        out.part(dest).push_back(item);
        received[static_cast<size_t>(dest)] += 1;
      }
    }
  }
  cluster.ChargeRound(received);
  return out;
}

// Sends every item to the single (virtual) server `dest_part`.
template <typename T>
std::vector<T> Gather(Cluster& cluster, const Dist<T>& in, int dest_part = 0) {
  std::vector<std::int64_t> received(
      static_cast<size_t>(std::max(dest_part + 1, 1)), 0);
  std::vector<T> out = in.Flatten();
  received[static_cast<size_t>(dest_part)] =
      static_cast<std::int64_t>(out.size());
  cluster.ChargeRound(received);
  return out;
}

// Broadcast: every one of the cluster's p servers receives all items.
// Load: TotalSize() per server, one round.
template <typename T>
Dist<T> Broadcast(Cluster& cluster, const Dist<T>& in) {
  std::vector<T> all = in.Flatten();
  Dist<T> out(cluster.p());
  std::vector<std::int64_t> received(static_cast<size_t>(cluster.p()),
                                     static_cast<std::int64_t>(all.size()));
  for (int s = 0; s < cluster.p(); ++s) out.part(s) = all;
  cluster.ChargeRound(received);
  return out;
}

// Rebalances items into `num_parts` equal chunks (a "shuffle to even out"
// round, load ceil(N/num_parts) per server).
template <typename T>
Dist<T> Rebalance(Cluster& cluster, const Dist<T>& in, int num_parts) {
  std::vector<T> all = in.Flatten();
  Dist<T> out = ScatterEvenly(std::move(all), num_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    received[static_cast<size_t>(s)] =
        static_cast<std::int64_t>(out.part(s).size());
  }
  cluster.ChargeRound(received);
  return out;
}

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_EXCHANGE_H_
