// Deterministic MPC primitives (paper §2.1). All run in O(1) rounds with
// load O(N/p) for input size N, assuming N >= p^{1+eps}.
//
// Charging discipline: every primitive documents whether its cost is
//  * as-executed — the simulator moves the data and charges exactly what
//    each server receives; or
//  * modeled-linear — the known distributed realization has linear load
//    (citations in the paper), the simulator computes the answer centrally
//    and charges ceil(N/p) per server per round for the documented number
//    of rounds. Used only where the distributed-internal bookkeeping adds
//    nothing to the measured comparison (e.g. parallel packing).
//
// Threading discipline: hot loops whose iterations touch disjoint parts
// (local sorts, pre-aggregation, pairwise merges) run under ParallelFor.
// Key/compare/combine functors may be invoked concurrently across parts
// and must not mutate shared state. Outputs and charged loads are
// bit-identical for every thread count (PARJOIN_THREADS=1 included).

#ifndef PARJOIN_MPC_PRIMITIVES_H_
#define PARJOIN_MPC_PRIMITIVES_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"

namespace parjoin {
namespace mpc {

namespace internal_primitives {

// Merges sorted runs into one globally sorted vector, reproducing exactly
// the order a stable sort of the run-order concatenation would produce
// (ties resolve to the lower run index, and within a run to the original
// order). Pairwise merge rounds; the merges of one round are independent
// and execute under ParallelFor. Elements are moved, never copied.
template <typename T, typename Less>
std::vector<T> MergeSortedRuns(std::vector<std::vector<T>> runs, Less less) {
  if (runs.empty()) return {};
  while (runs.size() > 1) {
    const int pairs = static_cast<int>(runs.size() / 2);
    std::vector<std::vector<T>> next((runs.size() + 1) / 2);
    ParallelFor(pairs, [&](int i) {
      auto& a = runs[static_cast<size_t>(2 * i)];
      auto& b = runs[static_cast<size_t>(2 * i + 1)];
      std::vector<T> merged;
      merged.reserve(a.size() + b.size());
      // std::merge takes from the first range on ties, so the lower part
      // index wins — exactly the stable order of the concatenation.
      std::merge(std::make_move_iterator(a.begin()),
                 std::make_move_iterator(a.end()),
                 std::make_move_iterator(b.begin()),
                 std::make_move_iterator(b.end()),
                 std::back_inserter(merged), less);
      a.clear();
      a.shrink_to_fit();
      b.clear();
      b.shrink_to_fit();
      next[static_cast<size_t>(i)] = std::move(merged);
    });
    if (runs.size() % 2 == 1) next.back() = std::move(runs.back());
    runs = std::move(next);
  }
  return std::move(runs.front());
}

}  // namespace internal_primitives

// --- Sorting [Goodrich '99] -------------------------------------------------
//
// Redistributes items so that part i holds the i-th contiguous chunk of the
// globally sorted order, chunks of size ceil(N/num_parts). As-executed
// charge: each part receives its chunk (one round; the real algorithm's
// splitter-sampling rounds move asymptotically less data).
//
// Execution: each part is stable-sorted locally (independent; threaded via
// ParallelFor), then a p-way merge rebuilds the global stable order. The
// result — data, placement, and charged loads — is bit-identical for any
// thread count, including the fully sequential PARJOIN_THREADS=1 path.
// Consumes its input: pass std::move(dist) to avoid copying the parts.
template <typename T, typename Less>
Dist<T> Sort(Cluster& cluster, Dist<T> in, Less less, int num_parts = 0) {
  if (num_parts == 0) num_parts = cluster.p();
  ParallelFor(in.num_parts(), [&](int s) {
    auto& part = in.part(s);
    std::stable_sort(part.begin(), part.end(), less);
  });
  std::vector<T> all =
      internal_primitives::MergeSortedRuns(std::move(in.parts()), less);
  Dist<T> out = ScatterEvenly(std::move(all), num_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    received[static_cast<size_t>(s)] =
        static_cast<std::int64_t>(out.part(s).size());
  }
  cluster.ChargeRound(received);
  return out;
}

// Sorts by a key projection and then moves every run of equal keys entirely
// onto the part where the run begins (the paper's "tuples with the same
// value land on the same server or two consecutive servers; in the latter
// case use another round" fix, generalized to runs spanning several parts).
// As-executed: the sort round plus one fix round charging the moved tuples.
// Only sensible when every key group fits on a server (callers guarantee
// this, e.g. LinearSparseMM where degrees are < N/p).
// Consumes its input: pass std::move(dist) to avoid copying the parts.
template <typename T, typename KeyFn>
Dist<T> SortGroupedByKey(Cluster& cluster, Dist<T> in, KeyFn key_fn,
                         int num_parts = 0) {
  if (num_parts == 0) num_parts = cluster.p();
  using Key = decltype(key_fn(std::declval<const T&>()));
  Dist<T> sorted = Sort(
      cluster, std::move(in),
      [&](const T& a, const T& b) { return key_fn(a) < key_fn(b); },
      num_parts);

  // Fix round: a key run that starts in part s is moved entirely to part s.
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  Dist<T> out(num_parts);
  int run_home = -1;
  bool have_prev = false;
  Key prev_key{};
  for (int s = 0; s < num_parts; ++s) {
    for (auto& item : sorted.part(s)) {
      const Key k = key_fn(item);
      if (!have_prev || !(prev_key == k)) {
        run_home = s;  // new run starts here
        have_prev = true;
        prev_key = k;
      }
      if (run_home != s) received[static_cast<size_t>(run_home)] += 1;
      out.part(run_home).push_back(std::move(item));
    }
  }
  cluster.ChargeRound(received);
  return out;
}

// --- Reduce-by-key [Hu, Tao, Yi '17] ---------------------------------------
//
// Computes the "sum" (any associative, commutative combine) of values per
// key. As-executed: local pre-aggregation (free), a sort of the
// pre-aggregated items (load M/num_parts for M <= N locally-distinct
// items), and a boundary-merge fix round.
//
// KeyFn:      T -> K (K ordered and equality-comparable)
// CombineFn:  (T* accumulator, const T& item) merges item into accumulator.
template <typename T, typename KeyFn, typename CombineFn>
Dist<T> ReduceByKey(Cluster& cluster, const Dist<T>& in, KeyFn key_fn,
                    CombineFn combine, int num_parts = 0) {
  if (num_parts == 0) num_parts = cluster.p();

  // Local pre-aggregation: sort each part by key, combine adjacent equals.
  // Parts are independent, so the pass is threaded via ParallelFor.
  Dist<T> pre(in.num_parts());
  ParallelFor(in.num_parts(), [&](int s) {
    std::vector<T> local = in.part(s);
    std::stable_sort(local.begin(), local.end(),
                     [&](const T& a, const T& b) {
                       return key_fn(a) < key_fn(b);
                     });
    auto& out_part = pre.part(s);
    for (auto& item : local) {
      if (!out_part.empty() && key_fn(out_part.back()) == key_fn(item)) {
        combine(&out_part.back(), item);
      } else {
        out_part.push_back(std::move(item));
      }
    }
  });

  // Global sort of pre-aggregated items.
  Dist<T> sorted = Sort(
      cluster, std::move(pre),
      [&](const T& a, const T& b) { return key_fn(a) < key_fn(b); },
      num_parts);

  // Combine adjacent equals within parts; fix key runs spanning a boundary
  // by shipping the continuation to the part where the run started.
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  Dist<T> out(num_parts);
  for (int s = 0; s < num_parts; ++s) {
    for (auto& item : sorted.part(s)) {
      // Find the current tail of the output (may live in an earlier part).
      T* tail = nullptr;
      int tail_part = -1;
      for (int t = s; t >= 0; --t) {
        if (!out.part(t).empty()) {
          tail = &out.part(t).back();
          tail_part = t;
          break;
        }
      }
      if (tail != nullptr && key_fn(*tail) == key_fn(item)) {
        if (tail_part != s) received[static_cast<size_t>(tail_part)] += 1;
        combine(tail, item);
      } else {
        out.part(s).push_back(std::move(item));
      }
    }
  }
  cluster.ChargeRound(received);
  return out;
}

// --- Parallel packing [Hu & Yi '19] ----------------------------------------
//
// Given weights 0 < w_i <= 1, groups the ids into m sets with per-set sum
// <= 1 and (all but one set) sum >= 1/2; m <= 1 + 2*sum(w). Modeled-linear:
// the answer is computed centrally and two rounds of ceil(N/p) are charged
// (the distributed realization is a prefix-sum + interval assignment).
// Returns group ids aligned with `items`; ids are dense in [0, m).
struct PackedItem {
  std::int64_t id = 0;
  double weight = 0;
  int group = -1;
};

inline std::vector<PackedItem> ParallelPacking(
    Cluster& cluster, std::vector<PackedItem> items) {
  const std::int64_t n = static_cast<std::int64_t>(items.size());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());

  std::stable_sort(items.begin(), items.end(),
                   [](const PackedItem& a, const PackedItem& b) {
                     return a.weight > b.weight;
                   });
  int next_group = 0;
  double current_sum = 0;
  int current_group = -1;
  for (auto& item : items) {
    CHECK_GT(item.weight, 0.0);
    CHECK_LE(item.weight, 1.0 + 1e-12);
    if (item.weight >= 0.5) {
      item.group = next_group++;
      continue;
    }
    if (current_group < 0 || current_sum + item.weight > 1.0) {
      current_group = next_group++;
      current_sum = 0;
    }
    item.group = current_group;
    current_sum += item.weight;
    if (current_sum > 0.5) current_group = -1;  // group is full enough
  }
  return items;
}

// --- Multi-search / predecessor [Hu, Tao, Yi '17] ---------------------------
//
// For each x in X, finds the largest y in Y with y <= x (or kNoPredecessor).
// Modeled-linear: two rounds of ceil((|X|+|Y|)/p). (The distributed
// realization co-sorts X and Y and propagates run heads.)
inline constexpr std::int64_t kNoPredecessor =
    std::numeric_limits<std::int64_t>::min();

std::vector<std::int64_t> MultiSearch(Cluster& cluster,
                                      const std::vector<std::int64_t>& xs,
                                      std::vector<std::int64_t> ys);

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_PRIMITIVES_H_
