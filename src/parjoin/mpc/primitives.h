// Deterministic MPC primitives (paper §2.1). All run in O(1) rounds with
// load O(N/p) for input size N, assuming N >= p^{1+eps}.
//
// Charging discipline: every primitive documents whether its cost is
//  * as-executed — the simulator moves the data and charges exactly what
//    each server receives; or
//  * modeled-linear — the known distributed realization has linear load
//    (citations in the paper), the simulator computes the answer centrally
//    and charges ceil(N/p) per server per round for the documented number
//    of rounds. Used only where the distributed-internal bookkeeping adds
//    nothing to the measured comparison (e.g. parallel packing).
//
// Threading discipline: hot loops whose iterations touch disjoint parts
// or disjoint key ranges run under ParallelFor — local sorts and
// pre-aggregation per part, the splitter-partitioned chunks of the final
// merge, and the per-destination emission of the fix rounds (made
// independent by the per-part boundary summaries of SummarizeKeyRuns).
// Key/compare/combine functors may be invoked concurrently across parts
// and must not mutate shared state. Outputs and charged loads are
// bit-identical for every thread count (PARJOIN_THREADS=1 included).

#ifndef PARJOIN_MPC_PRIMITIVES_H_
#define PARJOIN_MPC_PRIMITIVES_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/parallel_for.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/dist.h"
#include "parjoin/mpc/exchange.h"

namespace parjoin {
namespace mpc {

namespace internal_primitives {

// Merges sorted runs into one globally sorted vector, reproducing exactly
// the order a stable sort of the run-order concatenation would produce
// (ties resolve to the lower run index, and within a run to the original
// order). Pairwise merge rounds; the merges of one round are independent
// and execute under ParallelFor. Elements are moved, never copied.
//
// This is the sequential/small-input path of MergeSortedRuns and the
// baseline of the E6 merge-strategy ablation: its late rounds merge ever
// fewer, ever larger pairs, so past round log2(threads) most workers idle.
template <typename T, typename Less>
std::vector<T> MergeSortedRunsPairwise(std::vector<std::vector<T>> runs,
                                       Less less) {
  if (runs.empty()) return {};
  while (runs.size() > 1) {
    const int pairs = static_cast<int>(runs.size() / 2);
    std::vector<std::vector<T>> next((runs.size() + 1) / 2);
    ParallelFor(pairs, [&](int i) {
      auto& a = runs[static_cast<size_t>(2 * i)];
      auto& b = runs[static_cast<size_t>(2 * i + 1)];
      std::vector<T> merged;
      merged.reserve(a.size() + b.size());
      // std::merge takes from the first range on ties, so the lower part
      // index wins — exactly the stable order of the concatenation.
      std::merge(std::make_move_iterator(a.begin()),
                 std::make_move_iterator(a.end()),
                 std::make_move_iterator(b.begin()),
                 std::make_move_iterator(b.end()),
                 std::back_inserter(merged), less);
      a.clear();
      a.shrink_to_fit();
      b.clear();
      b.shrink_to_fit();
      next[static_cast<size_t>(i)] = std::move(merged);
    });
    if (runs.size() % 2 == 1) next.back() = std::move(runs.back());
    runs = std::move(next);
  }
  return std::move(runs.front());
}

// One contiguous slice of a sorted run. Slices handed to MergeSpansInto
// are consumed: their elements are moved into the output.
template <typename T>
struct RunSpan {
  T* begin = nullptr;
  T* end = nullptr;
};

// Merges `spans` (sorted slices, in run order) into the output range
// starting at `out`, which must have room for the combined size. Same
// stable order as MergeSortedRunsPairwise: ties resolve to the lower span
// index. Runs the ladder sequentially — MergeSortedRuns parallelizes
// across disjoint key ranges, not within one.
template <typename T, typename Less>
void MergeSpansInto(std::vector<RunSpan<T>> spans, Less less, T* out) {
  // Dropping empty spans keeps the ladder shallow and cannot disturb tie
  // order: ties only resolve among spans that hold elements.
  spans.erase(std::remove_if(
                  spans.begin(), spans.end(),
                  [](const RunSpan<T>& s) { return s.begin == s.end; }),
              spans.end());
  if (spans.empty()) return;
  // Intermediate merge buffers. A vector's heap storage is stable while
  // the outer vector grows, so spans into earlier buffers stay valid.
  std::vector<std::vector<T>> bufs;
  while (spans.size() > 2) {
    const size_t pairs = spans.size() / 2;
    std::vector<RunSpan<T>> next;
    next.reserve(pairs + 1);
    for (size_t i = 0; i < pairs; ++i) {
      const RunSpan<T>& a = spans[2 * i];
      const RunSpan<T>& b = spans[2 * i + 1];
      std::vector<T> merged;
      merged.reserve(
          static_cast<size_t>((a.end - a.begin) + (b.end - b.begin)));
      std::merge(std::make_move_iterator(a.begin),
                 std::make_move_iterator(a.end),
                 std::make_move_iterator(b.begin),
                 std::make_move_iterator(b.end),
                 std::back_inserter(merged), less);
      bufs.push_back(std::move(merged));
      next.push_back(
          {bufs.back().data(), bufs.back().data() + bufs.back().size()});
    }
    if (spans.size() % 2 == 1) next.push_back(spans.back());
    spans = std::move(next);
  }
  if (spans.size() == 1) {
    std::move(spans[0].begin, spans[0].end, out);
    return;
  }
  std::merge(std::make_move_iterator(spans[0].begin),
             std::make_move_iterator(spans[0].end),
             std::make_move_iterator(spans[1].begin),
             std::make_move_iterator(spans[1].end), out, less);
}

// Below this many elements the splitter partition costs more than it
// saves; MergeSortedRuns falls through to the pairwise ladder.
inline constexpr std::int64_t kSplitterMergeMinTotal = 1 << 13;

// Merges sorted runs into one globally sorted vector — same contract and
// bit-identical output as MergeSortedRunsPairwise — via splitter
// partitioning: sample the runs at a fixed stride (sample density follows
// run length), sort the sample, pick ~4·threads chunk boundaries from it,
// cut every run at every boundary with lower_bound, and merge the
// resulting disjoint chunks concurrently under ParallelFor, each chunk's
// ladder writing directly into its exact output slice.
//
// Every cut for one boundary is a lower_bound of the same splitter value,
// so a group of equal keys is never split across chunks: each chunk's
// ladder sees every tie it must order, and the concatenation of chunks is
// the unique stable order of the run concatenation. The output therefore
// depends on neither the splitter choice nor the thread count; only the
// internal work division does. Requires T to be default-constructible
// (the output buffer is preallocated and filled by move-assignment).
template <typename T, typename Less>
std::vector<T> MergeSortedRuns(std::vector<std::vector<T>> runs, Less less) {
  std::int64_t total = 0;
  for (const auto& r : runs) total += static_cast<std::int64_t>(r.size());
  const int threads = ParallelForThreads();
  if (threads <= 1 || total < kSplitterMergeMinTotal) {
    return MergeSortedRunsPairwise(std::move(runs), less);
  }

  // Oversampled splitter selection: 8 candidates per target chunk keep
  // chunk sizes near total/chunks even when run lengths are skewed.
  const std::int64_t want_chunks = 4 * static_cast<std::int64_t>(threads);
  const std::int64_t stride =
      std::max<std::int64_t>(1, total / (8 * want_chunks));
  std::vector<const T*> sample;
  sample.reserve(static_cast<size_t>(total / stride + 1));
  for (const auto& r : runs) {
    const std::int64_t r_size = static_cast<std::int64_t>(r.size());
    for (std::int64_t i = stride - 1; i < r_size; i += stride) {
      sample.push_back(&r[static_cast<size_t>(i)]);
    }
  }
  std::sort(sample.begin(), sample.end(),
            [&](const T* a, const T* b) { return less(*a, *b); });
  // (Equal-key sample permutations are irrelevant: splitters act only
  // through lower_bound, which sees values, not sample positions.)
  const int chunks = static_cast<int>(std::min(
      want_chunks, static_cast<std::int64_t>(sample.size()) + 1));
  const int nruns = static_cast<int>(runs.size());

  // cut[b][r]: number of elements of run r that precede chunk b; row 0 is
  // all zeros, row `chunks` is the run sizes. Monotone in b because the
  // splitters are sorted.
  std::vector<std::vector<std::int64_t>> cut(
      static_cast<size_t>(chunks) + 1,
      std::vector<std::int64_t>(static_cast<size_t>(nruns), 0));
  for (int r = 0; r < nruns; ++r) {
    cut[static_cast<size_t>(chunks)][static_cast<size_t>(r)] =
        static_cast<std::int64_t>(runs[static_cast<size_t>(r)].size());
  }
  ParallelFor(chunks - 1, [&](int i) {
    const size_t b = static_cast<size_t>(i) + 1;
    const T& splitter =
        *sample[b * sample.size() / static_cast<size_t>(chunks)];
    for (int r = 0; r < nruns; ++r) {
      const auto& run = runs[static_cast<size_t>(r)];
      cut[b][static_cast<size_t>(r)] =
          std::lower_bound(run.begin(), run.end(), splitter, less) -
          run.begin();
    }
  });
  std::vector<std::int64_t> offset(static_cast<size_t>(chunks) + 1, 0);
  for (int b = 1; b <= chunks; ++b) {
    std::int64_t sum = 0;
    for (int r = 0; r < nruns; ++r) {
      sum += cut[static_cast<size_t>(b)][static_cast<size_t>(r)];
    }
    offset[static_cast<size_t>(b)] = sum;
  }

  std::vector<T> out(static_cast<size_t>(total));
  ParallelFor(chunks, [&](int c) {
    const size_t b = static_cast<size_t>(c);
    std::vector<RunSpan<T>> spans;
    spans.reserve(static_cast<size_t>(nruns));
    for (int r = 0; r < nruns; ++r) {
      T* base = runs[static_cast<size_t>(r)].data();
      spans.push_back({base + cut[b][static_cast<size_t>(r)],
                       base + cut[b + 1][static_cast<size_t>(r)]});
    }
    MergeSpansInto(std::move(spans), less, out.data() + offset[b]);
  });
  return out;
}

// Per-part boundary summary of a key-sorted Dist: the precomputation that
// lets the SortGroupedByKey/ReduceByKey fix rounds emit every destination
// part independently (and therefore threaded) instead of walking all
// earlier parts. head_home[s] names the part where the key run containing
// part s's *first* item begins — only the leading run of a part can
// belong to an earlier part, because the data is globally sorted. A run
// spanning parts t..u forces every part strictly between t and u to be
// single-key, so head_home is a chain computable in O(p) from first/last
// keys alone.
template <typename Key>
struct KeyRunSummary {
  // All vectors are indexed by part. nonempty is char, not bool: the
  // entries are written concurrently and std::vector<bool> packs bits.
  std::vector<char> nonempty;
  std::vector<Key> first_key;
  std::vector<Key> last_key;
  std::vector<std::int64_t> leading_len;  // items equal to first_key
  std::vector<int> head_home;
};

template <typename T, typename KeyFn>
auto SummarizeKeyRuns(const Dist<T>& sorted, KeyFn key_fn) {
  using Key = std::decay_t<decltype(key_fn(std::declval<const T&>()))>;
  const int parts = sorted.num_parts();
  KeyRunSummary<Key> sum;
  sum.nonempty.assign(static_cast<size_t>(parts), 0);
  sum.first_key.resize(static_cast<size_t>(parts));
  sum.last_key.resize(static_cast<size_t>(parts));
  sum.leading_len.assign(static_cast<size_t>(parts), 0);
  sum.head_home.resize(static_cast<size_t>(parts));
  ParallelFor(parts, [&](int s) {
    const auto& part = sorted.part(s);
    if (part.empty()) return;
    const size_t idx = static_cast<size_t>(s);
    sum.nonempty[idx] = 1;
    sum.first_key[idx] = key_fn(part.front());
    sum.last_key[idx] = key_fn(part.back());
    std::int64_t len = 1;
    while (len < static_cast<std::int64_t>(part.size()) &&
           key_fn(part[static_cast<size_t>(len)]) == sum.first_key[idx]) {
      ++len;
    }
    sum.leading_len[idx] = len;
  });
  int prev = -1;  // previous non-empty part
  for (int s = 0; s < parts; ++s) {
    const size_t idx = static_cast<size_t>(s);
    sum.head_home[idx] = s;
    if (sum.nonempty[idx] == 0) continue;
    if (prev >= 0 &&
        sum.last_key[static_cast<size_t>(prev)] == sum.first_key[idx]) {
      // The run continues from prev. If prev is single-key the run began
      // even earlier and prev's head_home already names where.
      const size_t pidx = static_cast<size_t>(prev);
      sum.head_home[idx] = sum.first_key[pidx] == sum.last_key[pidx]
                               ? sum.head_home[pidx]
                               : prev;
    }
    prev = s;
  }
  return sum;
}

}  // namespace internal_primitives

// --- Sorting [Goodrich '99] -------------------------------------------------
//
// Redistributes items so that part i holds the i-th contiguous chunk of the
// globally sorted order, chunks of size ceil(N/num_parts). As-executed
// charge: each part receives its chunk (one round; the real algorithm's
// splitter-sampling rounds move asymptotically less data).
//
// Execution: each part is stable-sorted locally (independent; threaded via
// ParallelFor), then the splitter-based multiway merge rebuilds the global
// stable order (disjoint key-range chunks merged concurrently). The
// result — data, placement, and charged loads — is bit-identical for any
// thread count, including the fully sequential PARJOIN_THREADS=1 path.
// Consumes its input: pass std::move(dist) to avoid copying the parts.
template <typename T, typename Less>
Dist<T> Sort(Cluster& cluster, Dist<T> in, Less less, int num_parts = 0) {
  TraceScope trace(cluster, "sort");
  if (num_parts == 0) num_parts = cluster.p();
  ParallelFor(in.num_parts(), [&](int s) {
    auto& part = in.part(s);
    std::stable_sort(part.begin(), part.end(), less);
  });
  std::vector<T> all =
      internal_primitives::MergeSortedRuns(std::move(in.parts()), less);
  Dist<T> out = ScatterEvenly(std::move(all), num_parts);
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    received[static_cast<size_t>(s)] =
        static_cast<std::int64_t>(out.part(s).size());
  }
  cluster.ChargeRound(received);
  return out;
}

// Sorts by a key projection and then moves every run of equal keys entirely
// onto the part where the run begins (the paper's "tuples with the same
// value land on the same server or two consecutive servers; in the latter
// case use another round" fix, generalized to runs spanning several parts).
// As-executed: the sort round plus one fix round charging the moved tuples.
// Only sensible when every key group fits on a server (callers guarantee
// this, e.g. LinearSparseMM where degrees are < N/p).
// Consumes its input: pass std::move(dist) to avoid copying the parts.
template <typename T, typename KeyFn>
Dist<T> SortGroupedByKey(Cluster& cluster, Dist<T> in, KeyFn key_fn,
                         int num_parts = 0) {
  TraceScope trace(cluster, "sort_grouped");
  if (num_parts == 0) num_parts = cluster.p();
  Dist<T> sorted = Sort(
      cluster, std::move(in),
      [&](const T& a, const T& b) { return key_fn(a) < key_fn(b); },
      num_parts);

  // Fix round: a key run that starts in part s is moved entirely to part
  // s. The boundary summary pins down every move — only a part's leading
  // run can belong to an earlier part — so destination t's output is its
  // own items minus a forwarded leading run, plus the leading runs of the
  // later parts whose head_home is t. Destinations touch disjoint slices
  // of `sorted`, so emission runs under ParallelFor; the ledger charge is
  // identical to the old per-item walk (each moved tuple charges one unit
  // to the run's home).
  const auto runs = internal_primitives::SummarizeKeyRuns(sorted, key_fn);
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    const size_t idx = static_cast<size_t>(s);
    if (runs.nonempty[idx] != 0 && runs.head_home[idx] != s) {
      received[static_cast<size_t>(runs.head_home[idx])] +=
          runs.leading_len[idx];
    }
  }
  Dist<T> out(num_parts);
  ParallelFor(num_parts, [&](int t) {
    const size_t tdx = static_cast<size_t>(t);
    if (runs.nonempty[tdx] == 0) return;
    // Later parts whose leading run starts here: a chain of single-key
    // parts homed at t, closed by the part where the run ends. At most
    // one destination's chain is alive at any source part, so the scans
    // total O(p) across all destinations.
    std::vector<int> feeders;
    std::int64_t incoming = 0;
    for (int s = t + 1; s < num_parts; ++s) {
      const size_t sdx = static_cast<size_t>(s);
      if (runs.nonempty[sdx] == 0) continue;
      if (runs.head_home[sdx] != t) break;
      feeders.push_back(s);
      incoming += runs.leading_len[sdx];
      if (!(runs.first_key[sdx] == runs.last_key[sdx])) break;
    }
    auto& src = sorted.part(t);
    const std::int64_t keep_from =
        runs.head_home[tdx] != t ? runs.leading_len[tdx] : 0;
    auto& dst = out.part(t);
    dst.reserve(static_cast<size_t>(
        static_cast<std::int64_t>(src.size()) - keep_from + incoming));
    dst.insert(dst.end(), std::make_move_iterator(src.begin() + keep_from),
               std::make_move_iterator(src.end()));
    for (int s : feeders) {
      auto& fsrc = sorted.part(s);
      dst.insert(dst.end(), std::make_move_iterator(fsrc.begin()),
                 std::make_move_iterator(
                     fsrc.begin() +
                     runs.leading_len[static_cast<size_t>(s)]));
    }
  });
  cluster.ChargeRound(received);
  return out;
}

// --- Reduce-by-key [Hu, Tao, Yi '17] ---------------------------------------
//
// Computes the "sum" (any associative, commutative combine) of values per
// key. As-executed: local pre-aggregation (free), a sort of the
// pre-aggregated items (load M/num_parts for M <= N locally-distinct
// items), and a boundary-merge fix round.
//
// KeyFn:      T -> K (K ordered and equality-comparable)
// CombineFn:  (T* accumulator, const T& item) merges item into accumulator.
//             Must be associative: the fix round folds each part locally
//             before merging run continuations into the run's home part.
//
// This overload consumes its input (the parts are sorted in place during
// pre-aggregation); pass std::move(dist) to select it. A copying overload
// for callers that still need the input follows below.
template <typename T, typename KeyFn, typename CombineFn>
Dist<T> ReduceByKey(Cluster& cluster, Dist<T>&& in, KeyFn key_fn,
                    CombineFn combine, int num_parts = 0) {
  TraceScope trace(cluster, "reduce_by_key");
  if (num_parts == 0) num_parts = cluster.p();

  // Local pre-aggregation: sort each part by key in place, combine
  // adjacent equals. Parts are independent, so the pass is threaded.
  Dist<T> pre(in.num_parts());
  ParallelFor(in.num_parts(), [&](int s) {
    auto& local = in.part(s);
    std::stable_sort(local.begin(), local.end(),
                     [&](const T& a, const T& b) {
                       return key_fn(a) < key_fn(b);
                     });
    auto& out_part = pre.part(s);
    for (auto& item : local) {
      if (!out_part.empty() && key_fn(out_part.back()) == key_fn(item)) {
        combine(&out_part.back(), item);
      } else {
        out_part.push_back(std::move(item));
      }
    }
    local.clear();
    local.shrink_to_fit();
  });

  // Global sort of pre-aggregated items.
  Dist<T> sorted = Sort(
      cluster, std::move(pre),
      [&](const T& a, const T& b) { return key_fn(a) < key_fn(b); },
      num_parts);

  // Fix round. Fold each part locally (adjacent equals combine left to
  // right; threaded, parts are independent), then use the boundary
  // summary to emit every destination independently: destination t keeps
  // its folded items — minus a leading entry whose run started earlier —
  // and absorbs the folded leading entries of the later parts homed at t,
  // in part order. The charge is identical to the old per-item walk:
  // every raw item of a leading run that continues an earlier part's run
  // ships one unit to the run's home.
  const auto runs = internal_primitives::SummarizeKeyRuns(sorted, key_fn);
  Dist<T> folded(num_parts);
  ParallelFor(num_parts, [&](int s) {
    auto& src = sorted.part(s);
    auto& dst = folded.part(s);
    for (auto& item : src) {
      if (!dst.empty() && key_fn(dst.back()) == key_fn(item)) {
        combine(&dst.back(), item);
      } else {
        dst.push_back(std::move(item));
      }
    }
  });
  std::vector<std::int64_t> received(static_cast<size_t>(num_parts), 0);
  for (int s = 0; s < num_parts; ++s) {
    const size_t idx = static_cast<size_t>(s);
    if (runs.nonempty[idx] != 0 && runs.head_home[idx] != s) {
      received[static_cast<size_t>(runs.head_home[idx])] +=
          runs.leading_len[idx];
    }
  }
  Dist<T> out(num_parts);
  ParallelFor(num_parts, [&](int t) {
    const size_t tdx = static_cast<size_t>(t);
    if (runs.nonempty[tdx] == 0) return;
    auto& src = folded.part(t);
    const size_t keep_from = runs.head_home[tdx] != t ? 1 : 0;
    if (keep_from >= src.size()) return;  // part fully forwarded
    auto& dst = out.part(t);
    dst.reserve(src.size() - keep_from);
    dst.insert(dst.end(),
               std::make_move_iterator(src.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           keep_from)),
               std::make_move_iterator(src.end()));
    // Absorb run continuations: the folded leading entry of every later
    // part homed here (their forwarded entry 0, untouched by their own
    // emission — the slices are disjoint). Same chain walk as
    // SortGroupedByKey: O(p) total across destinations.
    for (int s = t + 1; s < num_parts; ++s) {
      const size_t sdx = static_cast<size_t>(s);
      if (runs.nonempty[sdx] == 0) continue;
      if (runs.head_home[sdx] != t) break;
      combine(&dst.back(), folded.part(s).front());
      if (!(runs.first_key[sdx] == runs.last_key[sdx])) break;
    }
  });
  cluster.ChargeRound(received);
  return out;
}

// Copying overload: keeps the caller's Dist intact at the price of one
// copy of every part. Prefer std::move(dist) where the input is dead.
template <typename T, typename KeyFn, typename CombineFn>
Dist<T> ReduceByKey(Cluster& cluster, const Dist<T>& in, KeyFn key_fn,
                    CombineFn combine, int num_parts = 0) {
  return ReduceByKey(cluster, Dist<T>(in.parts()), key_fn, combine,
                     num_parts);
}

// --- Parallel packing [Hu & Yi '19] ----------------------------------------
//
// Given weights 0 <= w_i <= 1, groups the ids into m sets with per-set sum
// <= 1 and (all but one set) sum >= 1/2; m <= 1 + 2*sum(w). Modeled-linear:
// the answer is computed centrally and two rounds of ceil(N/p) are charged
// (the distributed realization is a prefix-sum + interval assignment).
// Returns group ids aligned with `items`; ids are dense in [0, m).
struct PackedItem {
  std::int64_t id = 0;
  double weight = 0;
  int group = -1;
};

inline std::vector<PackedItem> ParallelPacking(
    Cluster& cluster, std::vector<PackedItem> items) {
  TraceScope trace(cluster, "packing");
  const std::int64_t n = static_cast<std::int64_t>(items.size());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());
  cluster.ChargeUniformRound((n + cluster.p() - 1) / cluster.p());

  std::stable_sort(items.begin(), items.end(),
                   [](const PackedItem& a, const PackedItem& b) {
                     return a.weight > b.weight;
                   });
  int next_group = 0;
  double current_sum = 0;
  int current_group = -1;
  for (auto& item : items) {
    CHECK_GE(item.weight, 0.0);
    CHECK_LE(item.weight, 1.0 + 1e-12);
    if (item.weight <= 0.0) {
      // Zero-weight items (e.g. empty arm groups) ride along in the most
      // recent group: they add nothing to its sum and must not open a
      // group of their own, which would break m <= 1 + 2*sum(w). They
      // sort last, so a group exists unless every weight is zero.
      if (next_group == 0) next_group = 1;
      item.group = current_group >= 0 ? current_group : next_group - 1;
      continue;
    }
    if (item.weight >= 0.5) {
      item.group = next_group++;
      continue;
    }
    if (current_group < 0 || current_sum + item.weight > 1.0) {
      current_group = next_group++;
      current_sum = 0;
    }
    item.group = current_group;
    current_sum += item.weight;
    if (current_sum > 0.5) current_group = -1;  // group is full enough
  }
  return items;
}

// --- Multi-search / predecessor [Hu, Tao, Yi '17] ---------------------------
//
// For each x in X, finds the largest y in Y with y <= x (or kNoPredecessor).
// Modeled-linear: two rounds of ceil((|X|+|Y|)/p). (The distributed
// realization co-sorts X and Y and propagates run heads.)
inline constexpr std::int64_t kNoPredecessor =
    std::numeric_limits<std::int64_t>::min();

std::vector<std::int64_t> MultiSearch(Cluster& cluster,
                                      const std::vector<std::int64_t>& xs,
                                      std::vector<std::int64_t> ys);

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_PRIMITIVES_H_
