// Dist<T>: data partitioned across (virtual) servers.
//
// parts()[s] is the local data of server s. A Dist usually has exactly
// cluster.p() parts, but algorithms that allocate virtual server groups
// (see Cluster) create Dists with more parts; part v lives on physical
// server v mod p.

#ifndef PARJOIN_MPC_DIST_H_
#define PARJOIN_MPC_DIST_H_

#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"

namespace parjoin {
namespace mpc {

template <typename T>
class Dist {
 public:
  Dist() = default;
  explicit Dist(int num_parts)
      : parts_(static_cast<size_t>(num_parts)) {}
  explicit Dist(std::vector<std::vector<T>> parts)
      : parts_(std::move(parts)) {}

  int num_parts() const { return static_cast<int>(parts_.size()); }

  std::vector<T>& part(int i) { return parts_[static_cast<size_t>(i)]; }
  const std::vector<T>& part(int i) const {
    return parts_[static_cast<size_t>(i)];
  }

  std::vector<std::vector<T>>& parts() { return parts_; }
  const std::vector<std::vector<T>>& parts() const { return parts_; }

  std::int64_t TotalSize() const {
    std::int64_t total = 0;
    for (const auto& part : parts_) {
      total += static_cast<std::int64_t>(part.size());
    }
    return total;
  }

  std::int64_t MaxPartSize() const {
    std::int64_t max_size = 0;
    for (const auto& part : parts_) {
      max_size = std::max(max_size, static_cast<std::int64_t>(part.size()));
    }
    return max_size;
  }

  // Concatenates all parts into one vector (simulation-side helper; does not
  // model communication — callers that need the data on one *server* must
  // use Gather, which charges load).
  std::vector<T> Flatten() const {
    std::vector<T> out;
    out.reserve(static_cast<size_t>(TotalSize()));
    for (const auto& part : parts_) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  // Like Flatten, but moves the elements out instead of copying; the Dist
  // is left with the same number of parts, all empty. Used by primitives
  // that consume their input (Sort, Rebalance) to avoid a full copy.
  std::vector<T> TakeFlatten() {
    std::vector<T> out;
    out.reserve(static_cast<size_t>(TotalSize()));
    for (auto& part : parts_) {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
      part.clear();
      part.shrink_to_fit();
    }
    return out;
  }

  // Applies fn to every element of every part (read-only).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& part : parts_) {
      for (const auto& item : part) fn(item);
    }
  }

 private:
  std::vector<std::vector<T>> parts_;
};

// Splits `items` into `num_parts` nearly equal contiguous chunks. This is
// the canonical "initially, data is evenly distributed" placement (§1.3);
// it models input residency and charges nothing. Elements are moved out
// of `items` (the parameter is by-value: pass std::move to avoid a copy).
template <typename T>
Dist<T> ScatterEvenly(std::vector<T> items, int num_parts) {
  CHECK_GT(num_parts, 0);
  Dist<T> out(num_parts);
  const std::int64_t n = static_cast<std::int64_t>(items.size());
  const std::int64_t chunk = (n + num_parts - 1) / num_parts;
  std::int64_t pos = 0;
  for (int s = 0; s < num_parts && pos < n; ++s) {
    const std::int64_t end = std::min(n, pos + chunk);
    out.part(s).assign(std::make_move_iterator(items.begin() + pos),
                       std::make_move_iterator(items.begin() + end));
    pos = end;
  }
  return out;
}

}  // namespace mpc
}  // namespace parjoin

#endif  // PARJOIN_MPC_DIST_H_
