#include "parjoin/serve/spec.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "parjoin/serve/flags.h"

namespace parjoin {
namespace serve {

namespace {

Status LineError(const std::string& name, int line, const std::string& what) {
  return InvalidArgumentError(name + ":" + std::to_string(line) + ": " +
                              what);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

StatusOr<AttrId> ParseAttr(const std::string& token) {
  auto value = ParseInt64Text(token);
  if (!value.ok()) {
    return InvalidArgumentError("attribute '" + token +
                                "' is not a number");
  }
  if (*value < 0 || *value > std::numeric_limits<AttrId>::max()) {
    return InvalidArgumentError("attribute " + token + " out of range");
  }
  return static_cast<AttrId>(*value);
}

// Directive handlers shared between standalone specs and workload query
// blocks. Each validates arity exactly: trailing garbage is an error, not
// a shrug.

Status HandleP(const std::vector<std::string>& tokens,
               const std::string& name, int line, int* p) {
  if (tokens.size() != 2) {
    return LineError(name, line,
                     "'p' needs exactly one server count, got " +
                         std::to_string(tokens.size() - 1) + " token(s)");
  }
  auto value = ParseInt64Text(tokens[1]);
  if (!value.ok() || *value < 1 ||
      *value > std::numeric_limits<int>::max()) {
    return LineError(name, line,
                     "'p' needs a positive server count, got '" +
                         tokens[1] + "'");
  }
  *p = static_cast<int>(*value);
  return OkStatus();
}

Status HandleEdge(const std::vector<std::string>& tokens,
                  const std::string& name, int line,
                  std::vector<SpecEdge>* edges) {
  if (tokens.size() != 4) {
    return LineError(name, line,
                     "'edge' needs exactly <attrU> <attrV> <source>, got " +
                         std::to_string(tokens.size() - 1) + " token(s)");
  }
  SpecEdge edge;
  auto u = ParseAttr(tokens[1]);
  if (!u.ok()) return LineError(name, line, u.status().message());
  auto v = ParseAttr(tokens[2]);
  if (!v.ok()) return LineError(name, line, v.status().message());
  edge.u = *u;
  edge.v = *v;
  edge.source = tokens[3];
  if (edge.IsRef() && edge.RefName().empty()) {
    return LineError(name, line, "'@' relation reference has no name");
  }
  edges->push_back(std::move(edge));
  return OkStatus();
}

Status HandleOutput(const std::vector<std::string>& tokens,
                    const std::string& name, int line,
                    std::vector<AttrId>* outputs) {
  if (tokens.size() < 2) {
    return LineError(name, line,
                     "'output' needs at least one attribute");
  }
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    auto attr = ParseAttr(tokens[i]);
    if (!attr.ok()) {
      return LineError(name, line,
                       "'output': " + attr.status().message());
    }
    outputs->push_back(*attr);
  }
  return OkStatus();
}

Status HandleResult(const std::vector<std::string>& tokens,
                    const std::string& name, int line, std::string* path) {
  if (tokens.size() != 2) {
    return LineError(name, line,
                     "'result' needs exactly one path, got " +
                         std::to_string(tokens.size() - 1) + " token(s)");
  }
  *path = tokens[1];
  return OkStatus();
}

bool ValidRelationName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    if (!word) return false;
  }
  return true;
}

StatusOr<std::string> ReadFileOrError(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open spec " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

StatusOr<QuerySpec> ParseQuerySpecText(const std::string& text,
                                       const std::string& name) {
  QuerySpec spec;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& directive = tokens[0];
    if (directive == "p") {
      PARJOIN_RETURN_IF_ERROR(HandleP(tokens, name, line_number, &spec.p));
    } else if (directive == "edge") {
      PARJOIN_RETURN_IF_ERROR(
          HandleEdge(tokens, name, line_number, &spec.edges));
    } else if (directive == "output") {
      PARJOIN_RETURN_IF_ERROR(
          HandleOutput(tokens, name, line_number, &spec.outputs));
    } else if (directive == "result") {
      PARJOIN_RETURN_IF_ERROR(
          HandleResult(tokens, name, line_number, &spec.result_path));
    } else {
      return LineError(name, line_number,
                       "unknown directive '" + directive + "'");
    }
  }
  if (spec.edges.empty()) {
    return InvalidArgumentError(name + ": spec has no edges");
  }
  return spec;
}

StatusOr<QuerySpec> ParseQuerySpecFile(const std::string& path) {
  PARJOIN_ASSIGN_OR_RETURN(const std::string text, ReadFileOrError(path));
  return ParseQuerySpecText(text, path);
}

std::int64_t WorkloadSpec::TotalQueries() const {
  std::int64_t total = 0;
  for (const auto& q : queries) total += q.repeat;
  return total;
}

StatusOr<WorkloadSpec> ParseWorkloadText(const std::string& text,
                                         const std::string& name) {
  WorkloadSpec workload;
  std::unordered_set<std::string> registered;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  bool in_query = false;
  int query_begin_line = 0;
  WorkloadQuery current;

  auto check_ref = [&](const SpecEdge& edge, int at_line) -> Status {
    if (edge.IsRef() && registered.find(edge.RefName()) == registered.end()) {
      return LineError(name, at_line,
                       "edge references unregistered relation '@" +
                           edge.RefName() + "'");
    }
    return OkStatus();
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& directive = tokens[0];

    if (!in_query) {
      if (directive == "p") {
        PARJOIN_RETURN_IF_ERROR(
            HandleP(tokens, name, line_number, &workload.p));
      } else if (directive == "register") {
        if (tokens.size() != 3) {
          return LineError(name, line_number,
                           "'register' needs exactly <name> <csv-path>, "
                           "got " +
                               std::to_string(tokens.size() - 1) +
                               " token(s)");
        }
        if (!ValidRelationName(tokens[1])) {
          return LineError(name, line_number,
                           "relation name '" + tokens[1] +
                               "' must be [A-Za-z0-9_]+");
        }
        if (!registered.insert(tokens[1]).second) {
          return LineError(name, line_number,
                           "relation '" + tokens[1] +
                               "' registered twice");
        }
        workload.relations.push_back({tokens[1], tokens[2]});
      } else if (directive == "query") {
        if (tokens.size() > 2) {
          return LineError(name, line_number,
                           "'query' takes at most one label");
        }
        in_query = true;
        query_begin_line = line_number;
        current = WorkloadQuery{};
        current.label =
            tokens.size() == 2
                ? tokens[1]
                : "q" + std::to_string(workload.queries.size());
      } else if (directive == "end" || directive == "edge" ||
                 directive == "output" || directive == "result" ||
                 directive == "repeat") {
        return LineError(name, line_number,
                         "'" + directive + "' outside a query block");
      } else {
        return LineError(name, line_number,
                         "unknown directive '" + directive + "'");
      }
      continue;
    }

    // Inside a query block.
    if (directive == "edge") {
      PARJOIN_RETURN_IF_ERROR(
          HandleEdge(tokens, name, line_number, &current.spec.edges));
      PARJOIN_RETURN_IF_ERROR(
          check_ref(current.spec.edges.back(), line_number));
    } else if (directive == "output") {
      PARJOIN_RETURN_IF_ERROR(
          HandleOutput(tokens, name, line_number, &current.spec.outputs));
    } else if (directive == "result") {
      PARJOIN_RETURN_IF_ERROR(HandleResult(tokens, name, line_number,
                                           &current.spec.result_path));
    } else if (directive == "repeat") {
      if (tokens.size() != 2) {
        return LineError(name, line_number,
                         "'repeat' needs exactly one count");
      }
      auto count = ParseInt64Text(tokens[1]);
      if (!count.ok() || *count < 1 || *count > 1000000) {
        return LineError(name, line_number,
                         "'repeat' needs a count in [1, 1000000], got '" +
                             tokens[1] + "'");
      }
      current.repeat = static_cast<int>(*count);
    } else if (directive == "p") {
      return LineError(name, line_number,
                       "'p' inside a query block; the cluster size is "
                       "fixed by the workload header");
    } else if (directive == "end") {
      if (tokens.size() != 1) {
        return LineError(name, line_number, "'end' takes no arguments");
      }
      if (current.spec.edges.empty()) {
        return LineError(name, line_number,
                         "query block '" + current.label +
                             "' has no edges");
      }
      current.spec.p = workload.p;
      in_query = false;
      workload.queries.push_back(std::move(current));
    } else {
      return LineError(name, line_number,
                       "unknown directive '" + directive +
                           "' in query block");
    }
  }
  if (in_query) {
    return LineError(name, query_begin_line,
                     "query block '" + current.label +
                         "' is never closed with 'end'");
  }
  if (workload.queries.empty()) {
    return InvalidArgumentError(name + ": workload has no query blocks");
  }
  // The header's p applies to every query, including blocks parsed before
  // a late 'p' directive.
  for (auto& q : workload.queries) q.spec.p = workload.p;
  return workload;
}

StatusOr<WorkloadSpec> ParseWorkloadFile(const std::string& path) {
  PARJOIN_ASSIGN_OR_RETURN(const std::string text, ReadFileOrError(path));
  return ParseWorkloadText(text, path);
}

}  // namespace serve
}  // namespace parjoin
