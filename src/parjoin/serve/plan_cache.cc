#include "parjoin/serve/plan_cache.h"

#include "parjoin/common/logging.h"

namespace parjoin {
namespace serve {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  // Capacity is a construction option validated by the binaries' flag
  // parsing, not query ingress.
  // parjoin-lint: allow(ingress-status)
  CHECK_GT(capacity, 0u);
}

const plan::PhysicalPlan* PlanCache::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    counters_.misses += 1;
    return nullptr;
  }
  counters_.hits += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->plan;
}

void PlanCache::Insert(const std::string& key, plan::PhysicalPlan plan) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    entries_.erase(victim.key);
    lru_.pop_back();
    counters_.evictions += 1;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  entries_.emplace(key, lru_.begin());
}

}  // namespace serve
}  // namespace parjoin
