// The parjoind serving core: a long-lived query-serving runtime over the
// MPC simulator.
//
// Lifecycle:
//  1. RegisterRelation(name, csv): load + Distribute + per-column KMV
//     sketches happen ONCE, at registration. Registered partitions are
//     plain ScatterEvenly placements, so every query reuses them with a
//     fresh per-query cluster; the sketches' fingerprints go into plan
//     cache keys.
//  2. Enqueue(spec, label): append to the FIFO admission queue.
//  3. Drain(): serve everything, in admission-controlled batches.
//
// Plan cache: keyed on the query structure (edges, outputs, p) plus the
// sketch fingerprint of every referenced relation. A hit skips the
// planner's estimation rounds — the dominant planning cost — and reuses
// the cached PhysicalPlan verbatim.
//
// Determinism: each query executes on a fresh Cluster seeded from the
// query's signature, so a cached-plan (warm) run replays exactly the rng
// stream of the cold run and produces bit-identical results. (On a cold
// run, planning draws from a separate signature-derived planning cluster,
// never from the execution cluster.)
//
// Admission control / FIFO fairness: each staged query's ticket is its
// cost-model predicted load (>= 1). Queries are admitted in strict FIFO
// order into a batch until the next ticket would exceed the configured
// load budget; the query that did not fit is carried — already planned —
// into the next batch, so an expensive query can delay but never starve
// later ones, and a ticket larger than the whole budget still runs (as a
// singleton batch). Batches execute sequentially on the simulator;
// latency is wall-clock from Drain() start to each query's completion.
//
// Isolation: execution goes through plan::TryExecuteWithRecovery, so a
// query that exhausts its recovery attempts (or fails validation) yields
// an error Outcome — and its possibly crash-shrunken cluster is simply
// discarded — while the server keeps serving.

#ifndef PARJOIN_SERVE_SERVER_H_
#define PARJOIN_SERVE_SERVER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/status.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/obs/metrics.h"
#include "parjoin/plan/executor.h"
#include "parjoin/relation/io.h"
#include "parjoin/serve/plan_cache.h"
#include "parjoin/serve/spec.h"
#include "parjoin/sketch/relation_sketch.h"

namespace parjoin {
namespace serve {

struct ServerOptions {
  int p = 8;
  // Base seed; per-query cluster seeds derive from (seed, signature).
  std::uint64_t seed = 0xd1575ab4e9c0f372ULL;
  std::size_t plan_cache_capacity = 64;
  // Admission budget per batch, in predicted-load units (tuples). <= 0:
  // one query per batch.
  double load_budget = 0;
  plan::PlannerOptions planner;
  // Default resilience options; Enqueue can override per query. Its
  // `profile` sink (when set) also backstops per-query overrides that
  // carry none, so every execution lands in the profile store.
  plan::ExecutionOptions exec;
  // Attached to every execution cluster (strictly read-only — the
  // determinism contract of mpc/observer.h makes warm/cold bit-identity
  // hold with tracing on). Not owned.
  mpc::RoundObserver* observer = nullptr;
};

template <SemiringC S>
class Server {
 public:
  struct Outcome {
    std::string label;
    Status status = OkStatus();  // per-query: an error never stops Drain
    Relation<S> result;          // Normalize()d; empty when status is not ok
    bool cache_hit = false;
    // Time spent obtaining the plan: the planner's estimation pass (cold)
    // or the cache lookup (warm).
    double plan_ms = 0;
    double latency_ms = 0;  // Drain() start -> this query's completion
    int batch = 0;          // 1-based admission batch index
    double ticket = 1;      // predicted-load admission ticket
    plan::PhysicalPlan plan;
  };

  struct Metrics {
    std::int64_t enqueued = 0;
    std::int64_t served = 0;
    std::int64_t failed = 0;
    int batches = 0;
    std::int64_t cold_plans = 0;
    std::int64_t warm_plans = 0;
    double cold_plan_ms_total = 0;
    double warm_plan_ms_total = 0;
  };

  // Per-batch admission accounting, one entry per batch in batch order:
  // how many queries were admitted, their combined predicted-load ticket
  // against the budget, and whether a planned query was carried across
  // the batch boundary (in: staged by an earlier batch; out: did not fit
  // here and waits for the next one).
  struct BatchStats {
    int batch = 0;  // 1-based, matches Outcome::batch
    int admitted = 0;
    double ticket_load = 0;
    bool carried_in = false;
    bool carried_out = false;
    std::string carried_out_label;  // "" unless carried_out
  };

  explicit Server(ServerOptions options)
      : options_(std::move(options)), cache_(options_.plan_cache_capacity) {
    // Construction options are programmer input, not query ingress; the
    // binaries validate p upstream.
    // parjoin-lint: allow(ingress-status)
    CHECK_GT(options_.p, 0);
  }

  // --- registration ---------------------------------------------------------

  Status RegisterRelation(const std::string& name, const std::string& path) {
    if (registry_.find(name) != registry_.end()) {
      return FailedPreconditionError("relation '" + name +
                                     "' already registered");
    }
    PARJOIN_ASSIGN_OR_RETURN(Relation<S> rel,
                             LoadRelationCsv<S>(path, Schema{0, 1}));
    Registered reg;
    reg.data = mpc::ScatterEvenly(std::move(rel.tuples()), options_.p);
    reg.sketch = SketchRelation(
        DistRelation<S>{Schema{0, 1}, reg.data});
    registry_.emplace(name, std::move(reg));
    return OkStatus();
  }

  // In-memory registration (bench/test path): same registration work —
  // Distribute + sketches — without the CSV round-trip.
  Status RegisterRelation(const std::string& name, Relation<S> rel) {
    if (registry_.find(name) != registry_.end()) {
      return FailedPreconditionError("relation '" + name +
                                     "' already registered");
    }
    if (rel.schema().size() != 2) {
      return InvalidArgumentError("relation '" + name + "' is not binary");
    }
    const Schema schema = rel.schema();
    Registered reg;
    reg.data = mpc::ScatterEvenly(std::move(rel.tuples()), options_.p);
    reg.sketch = SketchRelation(DistRelation<S>{schema, reg.data});
    registry_.emplace(name, std::move(reg));
    return OkStatus();
  }

  // Registers every relation of a parsed workload file.
  Status RegisterWorkload(const WorkloadSpec& workload) {
    for (const WorkloadRegistration& r : workload.relations) {
      PARJOIN_RETURN_IF_ERROR(RegisterRelation(r.name, r.path));
    }
    return OkStatus();
  }

  bool HasRelation(const std::string& name) const {
    return registry_.find(name) != registry_.end();
  }

  // --- admission ------------------------------------------------------------

  Status Enqueue(QuerySpec spec, std::string label) {
    return Enqueue(std::move(spec), std::move(label), options_.exec);
  }

  // Per-query resilience override (fault injection, budgets, ...).
  Status Enqueue(QuerySpec spec, std::string label,
                 const plan::ExecutionOptions& exec) {
    for (const SpecEdge& e : spec.edges) {
      if (e.IsRef() && !HasRelation(e.RefName())) {
        return NotFoundError("query '" + label +
                             "' references unregistered relation '@" +
                             e.RefName() + "'");
      }
    }
    queue_.push_back(Pending{std::move(label), std::move(spec), exec});
    metrics_.enqueued += 1;
    registry_metrics_.GetCounter("queries_enqueued")->Increment();
    registry_metrics_.GetGauge("admission_queue_depth")
        ->Set(static_cast<double>(QueueDepth()));
    return OkStatus();
  }

  std::int64_t QueueDepth() const {
    return static_cast<std::int64_t>(queue_.size()) + (staged_ ? 1 : 0);
  }

  // Serves every enqueued query; one Outcome per query, admission order.
  std::vector<Outcome> Drain() {
    std::vector<Outcome> outcomes;
    Stopwatch clock;
    obs::Histogram* latency = registry_metrics_.GetHistogram(
        "query_latency_ms", obs::DefaultLatencyBucketsMs());
    while (!queue_.empty() || staged_.has_value()) {
      metrics_.batches += 1;
      const int batch_index = metrics_.batches;
      BatchStats bstats;
      bstats.batch = batch_index;
      bstats.carried_in = staged_.has_value();
      std::vector<Admitted> batch;
      double used = 0;
      for (;;) {
        if (!staged_.has_value()) {
          if (queue_.empty()) break;
          staged_ = Stage(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (!batch.empty() && options_.load_budget > 0 &&
            used + staged_->ticket > options_.load_budget) {
          // Carries, already planned, into the next batch.
          bstats.carried_out = true;
          bstats.carried_out_label = staged_->label;
          break;
        }
        used += staged_->ticket;
        batch.push_back(std::move(*staged_));
        staged_.reset();
        if (options_.load_budget <= 0) break;
      }
      bstats.admitted = static_cast<int>(batch.size());
      bstats.ticket_load = used;
      batch_stats_.push_back(std::move(bstats));
      registry_metrics_.GetCounter("batches")->Increment();
      for (Admitted& adm : batch) {
        Outcome out = Execute(std::move(adm), batch_index);
        out.latency_ms = clock.ElapsedMillis();
        latency->Observe(out.latency_ms);
        outcomes.push_back(std::move(out));
      }
      registry_metrics_.GetGauge("admission_queue_depth")
          ->Set(static_cast<double>(QueueDepth()));
    }
    const double elapsed_s = clock.ElapsedSeconds();
    if (elapsed_s > 0 && !outcomes.empty()) {
      registry_metrics_.GetGauge("qps")->Set(
          static_cast<double>(outcomes.size()) / elapsed_s);
    }
    SyncMetrics();
    return outcomes;
  }

  // --- introspection --------------------------------------------------------

  const ServerOptions& options() const { return options_; }
  const PlanCache& plan_cache() const { return cache_; }
  const Metrics& metrics() const { return metrics_; }
  const std::vector<BatchStats>& batch_stats() const { return batch_stats_; }

  // The operational metrics registry (counters/gauges/histograms;
  // obs/metrics.h). SyncMetrics() refreshes the registry's mirrors of
  // internally-tracked values (cache counters, served/failed) — Drain()
  // calls it on exit; call it before ToJson() when reading mid-stream.
  obs::MetricsRegistry& metrics_registry() { return registry_metrics_; }

  void SyncMetrics() {
    const PlanCache::Counters& cc = cache_.counters();
    SyncCounter("plan_cache_hits", cc.hits);
    SyncCounter("plan_cache_misses", cc.misses);
    SyncCounter("plan_cache_evictions", cc.evictions);
    SyncCounter("queries_served", metrics_.served);
    SyncCounter("queries_failed", metrics_.failed);
    SyncCounter("plans_cold", metrics_.cold_plans);
    SyncCounter("plans_warm", metrics_.warm_plans);
  }

 private:
  struct Registered {
    mpc::Dist<Tuple<S>> data;  // p ScatterEvenly parts, schema-agnostic
    RelationSketch sketch;
  };

  struct Pending {
    std::string label;
    QuerySpec spec;
    plan::ExecutionOptions exec;
  };

  // A staged query: resolved, signed, and planned (or failed trying).
  struct Admitted {
    std::string label;
    plan::ExecutionOptions exec;
    Status stage_status = OkStatus();
    std::uint64_t signature = 0;
    bool cache_hit = false;
    double plan_ms = 0;
    double ticket = 1;
    std::optional<TreeInstance<S>> instance;
    std::optional<plan::PhysicalPlan> plan;
  };

  std::uint64_t PlanSeed(std::uint64_t signature) const {
    return HashCombine(options_.seed, HashCombine(0x70a11ed5ULL, signature));
  }
  std::uint64_t ExecSeed(std::uint64_t signature) const {
    return HashCombine(options_.seed, HashCombine(0xe8ec5eedULL, signature));
  }

  // Resolves a spec edge to (distributed relation, sketch fingerprint).
  // Registered references reuse the registration-time partitions and
  // sketch; literal CSV paths are loaded and sketched on the spot.
  StatusOr<std::pair<DistRelation<S>, std::uint64_t>> ResolveEdge(
      const SpecEdge& e) {
    const Schema schema{e.u, e.v};
    if (e.IsRef()) {
      auto it = registry_.find(e.RefName());
      if (it == registry_.end()) {
        return NotFoundError("unregistered relation '@" + e.RefName() + "'");
      }
      return std::make_pair(DistRelation<S>{schema, it->second.data},
                            it->second.sketch.Fingerprint());
    }
    PARJOIN_ASSIGN_OR_RETURN(Relation<S> rel,
                             LoadRelationCsv<S>(e.source, schema));
    DistRelation<S> dist;
    dist.schema = schema;
    dist.data = mpc::ScatterEvenly(std::move(rel.tuples()), options_.p);
    const std::uint64_t fp = SketchRelation(dist).Fingerprint();
    return std::make_pair(std::move(dist), fp);
  }

  // Builds the cache key: the full query structure plus per-edge relation
  // fingerprints. Two queries share a key iff they have the same edges
  // over content-identical relations, the same outputs, and the same p.
  static std::string CacheKey(const QuerySpec& spec,
                              const std::vector<std::uint64_t>& fps, int p) {
    std::string key = "p=" + std::to_string(p);
    for (std::size_t i = 0; i < spec.edges.size(); ++i) {
      key += "|e=" + std::to_string(spec.edges[i].u) + "-" +
             std::to_string(spec.edges[i].v) + "#" + std::to_string(fps[i]);
    }
    key += "|y=";
    for (AttrId a : spec.outputs) key += std::to_string(a) + ",";
    return key;
  }

  static std::uint64_t Signature(const std::string& cache_key) {
    std::uint64_t h = 0x5167a7c2e4d8b091ULL;
    for (char c : cache_key) {
      h = HashCombine(h, static_cast<std::uint64_t>(
                             static_cast<unsigned char>(c)));
    }
    return h;
  }

  Admitted Stage(Pending pending) {
    Admitted adm;
    adm.label = std::move(pending.label);
    adm.exec = pending.exec;

    std::vector<QueryEdge> edges;
    for (const SpecEdge& e : pending.spec.edges) edges.push_back({e.u, e.v});
    StatusOr<JoinTree> query =
        JoinTree::Create(std::move(edges), pending.spec.outputs);
    if (!query.ok()) {
      adm.stage_status = query.status();
      return adm;
    }
    TreeInstance<S> instance{std::move(query).value(), {}};
    std::vector<std::uint64_t> fps;
    for (const SpecEdge& e : pending.spec.edges) {
      auto resolved = ResolveEdge(e);
      if (!resolved.ok()) {
        adm.stage_status = resolved.status();
        return adm;
      }
      instance.relations.push_back(std::move(resolved->first));
      fps.push_back(resolved->second);
    }
    if (const Status valid = instance.ValidateStatus(); !valid.ok()) {
      adm.stage_status = valid;
      return adm;
    }

    const std::string key = CacheKey(pending.spec, fps, options_.p);
    adm.signature = Signature(key);
    adm.instance = std::move(instance);

    Stopwatch sw;
    if (const plan::PhysicalPlan* cached = cache_.Lookup(key)) {
      adm.plan = *cached;
      adm.cache_hit = true;
      adm.plan_ms = sw.ElapsedMillis();
      metrics_.warm_plans += 1;
      metrics_.warm_plan_ms_total += adm.plan_ms;
    } else {
      // Planning draws rng from its own signature-seeded cluster, so the
      // execution cluster's stream is identical on cold and warm runs.
      mpc::Cluster plan_cluster(options_.p, PlanSeed(adm.signature));
      adm.plan = plan::PlanQuery(plan_cluster, *adm.instance,
                                 options_.planner);
      adm.plan->planning_stats = plan_cluster.stats();
      adm.plan_ms = sw.ElapsedMillis();
      metrics_.cold_plans += 1;
      metrics_.cold_plan_ms_total += adm.plan_ms;
      cache_.Insert(key, *adm.plan);
    }
    adm.ticket = std::max(1.0, adm.plan->predicted_load);
    return adm;
  }

  Outcome Execute(Admitted adm, int batch_index) {
    Outcome out;
    out.label = std::move(adm.label);
    out.cache_hit = adm.cache_hit;
    out.plan_ms = adm.plan_ms;
    out.batch = batch_index;
    out.ticket = adm.ticket;
    if (!adm.stage_status.ok()) {
      out.status = adm.stage_status;
      metrics_.failed += 1;
      return out;
    }
    out.plan = std::move(*adm.plan);

    mpc::Cluster cluster(options_.p, ExecSeed(adm.signature));
    cluster.SetObserver(options_.observer);
    if (adm.exec.profile == nullptr) {
      adm.exec.profile = options_.exec.profile;
    }
    StatusOr<DistRelation<S>> result = plan::TryExecuteWithRecovery(
        cluster, std::move(*adm.instance), adm.exec, &out.plan);
    out.plan.execution_stats = cluster.stats();
    out.plan.measured_load = out.plan.execution_stats.max_load;
    if (out.plan.recovery.crashes > 0) {
      registry_metrics_.GetCounter("recovery_crashes")
          ->Increment(out.plan.recovery.crashes);
    }
    if (out.plan.recovery.attempts > 1) {
      registry_metrics_.GetCounter("recovery_replays")
          ->Increment(out.plan.recovery.attempts - 1);
    }
    if (out.plan.recovery.degraded_to_baseline) {
      registry_metrics_.GetCounter("recovery_degraded")->Increment();
    }
    // Fine-grained recovery ledger, exported per query so --metrics-out
    // carries the full recovery trail (resume/re-balance/re-plan counters
    // plus the charged recovery traffic behind them).
    if (out.plan.recovery.resumes > 0) {
      registry_metrics_.GetCounter("recovery_resumes")
          ->Increment(out.plan.recovery.resumes);
      registry_metrics_.GetCounter("recovery_resumed_rounds")
          ->Increment(out.plan.recovery.resumed_rounds);
    }
    if (out.plan.recovery.rebalances > 0) {
      registry_metrics_.GetCounter("recovery_rebalances")
          ->Increment(out.plan.recovery.rebalances);
      registry_metrics_.GetCounter("recovery_rebalance_comm")
          ->Increment(out.plan.execution_stats.rebalance_comm);
    }
    if (out.plan.recovery.replans > 0) {
      registry_metrics_.GetCounter("recovery_replans")
          ->Increment(out.plan.recovery.replans);
    }
    if (out.plan.execution_stats.recovery_comm > 0) {
      registry_metrics_.GetCounter("recovery_comm")
          ->Increment(out.plan.execution_stats.recovery_comm);
    }
    if (out.plan.execution_stats.retransmits > 0) {
      registry_metrics_.GetCounter("recovery_retransmits")
          ->Increment(out.plan.execution_stats.retransmits);
    }
    if (out.plan.execution_stats.critical_path > 0) {
      registry_metrics_.GetCounter("critical_path_total")
          ->Increment(out.plan.execution_stats.critical_path);
    }
    if (!result.ok()) {
      // The cluster (possibly crash-shrunken) dies with this scope; the
      // next query gets a fresh one from the registered partitions.
      out.status = result.status();
      metrics_.failed += 1;
      return out;
    }
    out.plan.out_actual = result->TotalSize();
    if (plan::Candidate* c =
            out.plan.MutableCandidateFor(out.plan.executed)) {
      c->measured_load = out.plan.measured_load;
    }
    out.result = result->ToLocal();
    out.result.Normalize();
    metrics_.served += 1;
    return out;
  }

  // Sets a registry counter that mirrors an internally-tracked total to
  // that total (counters only add, so this applies the delta).
  void SyncCounter(const char* name, std::int64_t total) {
    obs::Counter* c = registry_metrics_.GetCounter(name);
    const std::int64_t delta = total - c->Value();
    if (delta != 0) c->Increment(delta);
  }

  ServerOptions options_;
  PlanCache cache_;
  std::unordered_map<std::string, Registered> registry_;
  std::deque<Pending> queue_;
  std::optional<Admitted> staged_;
  Metrics metrics_;
  std::vector<BatchStats> batch_stats_;
  obs::MetricsRegistry registry_metrics_;
};

}  // namespace serve
}  // namespace parjoin

#endif  // PARJOIN_SERVE_SERVER_H_
