// Query-spec and workload-file parsing, shared by query_runner and
// parjoind.
//
// This is the query-ingress path of the system: every directive is fully
// validated and every malformed line surfaces as a line-numbered
// InvalidArgument Status — never a silently wrong query. (The parser this
// replaces accepted `output x` as an EMPTY output list, `result` with a
// missing path, and `p 8 junk`.)
//
// Query spec (one directive per line; '#' comments; used standalone by
// query_runner and inside workload query blocks):
//
//   p <servers>                        cluster size (standalone specs only)
//   edge <attrU> <attrV> <source>      one relation per edge; <source> is a
//                                      CSV path, or @<name> referencing a
//                                      relation registered by the workload
//   output <attr> [<attr> ...]         output attributes y (>= 1)
//   result <csv-path>                  where to write the result (optional)
//
// Workload file (parjoind): registrations first, then query blocks.
//
//   p <servers>
//   register <name> <csv-path>         load + distribute + sketch once
//   query [<label>]                    begin a query block
//     edge 0 1 @edges
//     output 0 2
//     repeat <k>                       enqueue the query k times
//   end

#ifndef PARJOIN_SERVE_SPEC_H_
#define PARJOIN_SERVE_SPEC_H_

#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/relation/schema.h"

namespace parjoin {
namespace serve {

struct SpecEdge {
  AttrId u = 0;
  AttrId v = 0;
  // A CSV path, or "@<name>" referencing a registered relation.
  std::string source;

  bool IsRef() const { return !source.empty() && source[0] == '@'; }
  std::string RefName() const { return source.substr(1); }
};

struct QuerySpec {
  int p = 16;
  std::vector<SpecEdge> edges;
  std::vector<AttrId> outputs;
  std::string result_path;  // empty: caller decides (or skips writing)
};

// Parses a standalone query spec. `name` labels error messages
// ("name:line: ...").
StatusOr<QuerySpec> ParseQuerySpecText(const std::string& text,
                                       const std::string& name);
StatusOr<QuerySpec> ParseQuerySpecFile(const std::string& path);

struct WorkloadRegistration {
  std::string name;
  std::string path;
};

struct WorkloadQuery {
  std::string label;
  QuerySpec spec;  // spec.p mirrors the workload header
  int repeat = 1;
};

struct WorkloadSpec {
  int p = 8;
  std::vector<WorkloadRegistration> relations;
  std::vector<WorkloadQuery> queries;

  // Sum of per-query repeats: the number of queries the driver enqueues.
  std::int64_t TotalQueries() const;
};

// Parses a parjoind workload. Every @<name> edge reference must resolve to
// a `register` directive earlier in the file.
StatusOr<WorkloadSpec> ParseWorkloadText(const std::string& text,
                                         const std::string& name);
StatusOr<WorkloadSpec> ParseWorkloadFile(const std::string& path);

}  // namespace serve
}  // namespace parjoin

#endif  // PARJOIN_SERVE_SPEC_H_
