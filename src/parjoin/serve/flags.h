// Checked numeric parsing for command-line flags and spec directives.
//
// strtol-family calls with no endptr/range validation turn typos into
// silent zeros (`--faults=abc` used to become seed 0, and
// `--checkpoint-interval=-3` was accepted as a negative interval). These
// helpers parse the WHOLE token or fail: leading/trailing garbage, empty
// strings, and out-of-range values all surface as InvalidArgument with the
// offending text in the message. Both query_runner and parjoind route
// every numeric flag through them and exit 2 with a usage line on error.

#ifndef PARJOIN_SERVE_FLAGS_H_
#define PARJOIN_SERVE_FLAGS_H_

#include <cstdint>
#include <string>

#include "parjoin/common/status.h"

namespace parjoin {
namespace serve {

// Parses the ENTIRE text as one value of the target type. Rejects empty
// input, surrounding whitespace, trailing garbage ("8x"), and values
// outside the type's range. Error messages quote the offending text.
StatusOr<std::int64_t> ParseInt64Text(const std::string& text);
StatusOr<std::uint64_t> ParseUint64Text(const std::string& text);
StatusOr<double> ParseDoubleText(const std::string& text);

// True when `arg` is "--<name>=<value>"; *value receives <value> (possibly
// empty). False otherwise, leaving *value untouched.
bool MatchFlag(const std::string& arg, const std::string& name,
               std::string* value);

// Convenience wrappers that contextualize the parse error with the flag
// name ("--faults needs an unsigned integer, got 'abc'").
StatusOr<std::int64_t> ParseInt64Flag(const std::string& flag,
                                      const std::string& value);
StatusOr<std::uint64_t> ParseUint64Flag(const std::string& flag,
                                        const std::string& value);
StatusOr<double> ParseDoubleFlag(const std::string& flag,
                                 const std::string& value);

}  // namespace serve
}  // namespace parjoin

#endif  // PARJOIN_SERVE_FLAGS_H_
