#include "parjoin/serve/flags.h"

#include <cerrno>
#include <cstdlib>

namespace parjoin {
namespace serve {

namespace {

// Shared shape checks: non-empty, no leading whitespace (strtol would skip
// it and hide the difference between " 8" and "8"), and for unsigned
// parses no leading '-' (strtoull silently wraps negatives).
Status PreflightNumeric(const std::string& text, bool allow_sign) {
  if (text.empty()) {
    return InvalidArgumentError("empty numeric value");
  }
  const char first = text[0];
  if (first == ' ' || first == '\t') {
    return InvalidArgumentError("numeric value '" + text +
                                "' has leading whitespace");
  }
  if (!allow_sign && (first == '-' || first == '+')) {
    return InvalidArgumentError("numeric value '" + text +
                                "' must be unsigned");
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::int64_t> ParseInt64Text(const std::string& text) {
  PARJOIN_RETURN_IF_ERROR(PreflightNumeric(text, /*allow_sign=*/true));
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("'" + text + "' is not an integer");
  }
  if (errno == ERANGE) {
    return InvalidArgumentError("'" + text + "' is out of int64 range");
  }
  return static_cast<std::int64_t>(value);
}

StatusOr<std::uint64_t> ParseUint64Text(const std::string& text) {
  PARJOIN_RETURN_IF_ERROR(PreflightNumeric(text, /*allow_sign=*/false));
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("'" + text +
                                "' is not an unsigned integer");
  }
  if (errno == ERANGE) {
    return InvalidArgumentError("'" + text + "' is out of uint64 range");
  }
  return static_cast<std::uint64_t>(value);
}

StatusOr<double> ParseDoubleText(const std::string& text) {
  PARJOIN_RETURN_IF_ERROR(PreflightNumeric(text, /*allow_sign=*/true));
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("'" + text + "' is not a number");
  }
  if (errno == ERANGE) {
    return InvalidArgumentError("'" + text + "' is out of double range");
  }
  return value;
}

bool MatchFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

namespace {

template <typename T>
StatusOr<T> Contextualize(const std::string& flag, StatusOr<T> parsed,
                          const char* kind) {
  if (parsed.ok()) return parsed;
  return InvalidArgumentError("--" + flag + " needs " + kind + ": " +
                              parsed.status().message());
}

}  // namespace

StatusOr<std::int64_t> ParseInt64Flag(const std::string& flag,
                                      const std::string& value) {
  return Contextualize(flag, ParseInt64Text(value), "an integer");
}

StatusOr<std::uint64_t> ParseUint64Flag(const std::string& flag,
                                        const std::string& value) {
  return Contextualize(flag, ParseUint64Text(value), "an unsigned integer");
}

StatusOr<double> ParseDoubleFlag(const std::string& flag,
                                 const std::string& value) {
  return Contextualize(flag, ParseDoubleText(value), "a number");
}

}  // namespace serve
}  // namespace parjoin
