// LRU cache of PhysicalPlans for the serving runtime.
//
// Keys are the server's query signatures: query structure (edges, outputs,
// p) plus the registration-time sketch fingerprint of every referenced
// relation (sketch/relation_sketch.h). A hit skips the planner's
// estimation rounds entirely — the dominant cost of planning — and returns
// a pristine copy of the cached plan (measured fields unfilled) for the
// executor to run. Hit/miss/eviction counters feed the E7 bench entries
// and the parjoind report.

#ifndef PARJOIN_SERVE_PLAN_CACHE_H_
#define PARJOIN_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "parjoin/plan/plan.h"

namespace parjoin {
namespace serve {

class PlanCache {
 public:
  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };

  explicit PlanCache(std::size_t capacity);

  // Returns the cached plan for `key` (and bumps it most-recent), or
  // nullptr. Every call counts as a hit or a miss. The pointer is valid
  // until the next Insert; callers copy the plan out.
  const plan::PhysicalPlan* Lookup(const std::string& key);

  // Inserts (or refreshes) the plan under `key`, evicting the least
  // recently used entry when at capacity.
  void Insert(const std::string& key, plan::PhysicalPlan plan);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Counters& counters() const { return counters_; }

  double HitRate() const {
    const std::int64_t total = counters_.hits + counters_.misses;
    return total == 0
               ? 0.0
               : static_cast<double>(counters_.hits) /
                     static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string key;
    plan::PhysicalPlan plan;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  Counters counters_;
};

}  // namespace serve
}  // namespace parjoin

#endif  // PARJOIN_SERVE_PLAN_CACHE_H_
