// TreeInstance: a JoinTree paired with one distributed annotated relation
// per edge — the unit every algorithm in src/parjoin/algorithms consumes.

#ifndef PARJOIN_QUERY_INSTANCE_H_
#define PARJOIN_QUERY_INSTANCE_H_

#include <string>
#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/status.h"
#include "parjoin/query/join_tree.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

template <SemiringC S>
struct TreeInstance {
  JoinTree query;
  // relations[i] corresponds to query.edge(i); its schema must be exactly
  // {edge.u, edge.v} (in either order).
  std::vector<DistRelation<S>> relations;

  std::int64_t TotalInputSize() const {
    std::int64_t n = 0;
    for (const auto& rel : relations) n += rel.TotalSize();
    return n;
  }

  // Instance/query consistency as a reportable error: instances built from
  // external input (spec files) should surface a Status, not abort.
  Status ValidateStatus() const {
    if (static_cast<int>(relations.size()) != query.num_edges()) {
      return InvalidArgumentError(
          "instance has " + std::to_string(relations.size()) +
          " relations for " + std::to_string(query.num_edges()) + " edges");
    }
    for (int i = 0; i < query.num_edges(); ++i) {
      const auto& schema = relations[static_cast<size_t>(i)].schema;
      if (schema.size() != 2) {
        return InvalidArgumentError("relation " + std::to_string(i) +
                                    " is not binary");
      }
      const QueryEdge& e = query.edge(i);
      if (!schema.Contains(e.u) || !schema.Contains(e.v)) {
        return InvalidArgumentError(
            "relation " + std::to_string(i) + " schema does not cover edge {" +
            std::to_string(e.u) + ", " + std::to_string(e.v) + "}");
      }
    }
    return OkStatus();
  }

  // CHECK-flavored wrapper for internally constructed instances.
  void Validate() const { CHECK_OK(ValidateStatus()); }
};

}  // namespace parjoin

#endif  // PARJOIN_QUERY_INSTANCE_H_
