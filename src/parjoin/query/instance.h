// TreeInstance: a JoinTree paired with one distributed annotated relation
// per edge — the unit every algorithm in src/parjoin/algorithms consumes.

#ifndef PARJOIN_QUERY_INSTANCE_H_
#define PARJOIN_QUERY_INSTANCE_H_

#include <utility>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/query/join_tree.h"
#include "parjoin/relation/relation.h"

namespace parjoin {

template <SemiringC S>
struct TreeInstance {
  JoinTree query;
  // relations[i] corresponds to query.edge(i); its schema must be exactly
  // {edge.u, edge.v} (in either order).
  std::vector<DistRelation<S>> relations;

  std::int64_t TotalInputSize() const {
    std::int64_t n = 0;
    for (const auto& rel : relations) n += rel.TotalSize();
    return n;
  }

  void Validate() const {
    CHECK_EQ(static_cast<int>(relations.size()), query.num_edges());
    for (int i = 0; i < query.num_edges(); ++i) {
      const auto& schema = relations[static_cast<size_t>(i)].schema;
      CHECK_EQ(schema.size(), 2);
      const QueryEdge& e = query.edge(i);
      CHECK(schema.Contains(e.u))
          << "relation " << i << " missing attribute " << e.u;
      CHECK(schema.Contains(e.v))
          << "relation " << i << " missing attribute " << e.v;
    }
  }
};

}  // namespace parjoin

#endif  // PARJOIN_QUERY_INSTANCE_H_
