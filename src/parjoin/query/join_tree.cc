#include "parjoin/query/join_tree.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace parjoin {

const char* QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kSingleEdge:
      return "single-edge";
    case QueryShape::kMatMul:
      return "matrix-multiplication";
    case QueryShape::kLine:
      return "line";
    case QueryShape::kStar:
      return "star";
    case QueryShape::kStarLike:
      return "star-like";
    case QueryShape::kFreeConnex:
      return "free-connex";
    case QueryShape::kTree:
      return "tree";
  }
  return "unknown";
}

StatusOr<QueryShape> QueryShapeFromName(const std::string& name) {
  static constexpr QueryShape kAll[] = {
      QueryShape::kSingleEdge, QueryShape::kMatMul,    QueryShape::kLine,
      QueryShape::kStar,       QueryShape::kStarLike,  QueryShape::kFreeConnex,
      QueryShape::kTree,
  };
  for (QueryShape s : kAll) {
    if (name == QueryShapeName(s)) return s;
  }
  return InvalidArgumentError("unknown query shape name: '" + name + "'");
}

Status JoinTree::ValidateQuery(const std::vector<QueryEdge>& edges,
                               const std::vector<AttrId>& output_attrs) {
  if (edges.empty()) {
    return InvalidArgumentError("query must have at least one relation");
  }
  std::set<AttrId> attr_set;
  for (const QueryEdge& e : edges) {
    if (e.u == e.v) {
      return InvalidArgumentError(
          "self-loop edges are not part of the query class (attribute " +
          std::to_string(e.u) + ")");
    }
    attr_set.insert(e.u);
    attr_set.insert(e.v);
  }

  // The hypergraph must be a tree: |E| = |V| - 1 and connected.
  if (edges.size() != attr_set.size() - 1) {
    return InvalidArgumentError(
        "edge/vertex count mismatch: not a tree (" +
        std::to_string(edges.size()) + " edges over " +
        std::to_string(attr_set.size()) + " attributes)");
  }
  std::map<AttrId, std::vector<AttrId>> adjacent;
  for (const QueryEdge& e : edges) {
    adjacent[e.u].push_back(e.v);
    adjacent[e.v].push_back(e.u);
  }
  std::set<AttrId> seen = {*attr_set.begin()};
  std::vector<AttrId> frontier = {*attr_set.begin()};
  while (!frontier.empty()) {
    const AttrId a = frontier.back();
    frontier.pop_back();
    for (AttrId b : adjacent[a]) {
      if (seen.insert(b).second) frontier.push_back(b);
    }
  }
  if (seen.size() != attr_set.size()) {
    return InvalidArgumentError("query hypergraph is disconnected");
  }

  for (AttrId y : output_attrs) {
    if (attr_set.find(y) == attr_set.end()) {
      return InvalidArgumentError("output attribute " + std::to_string(y) +
                                  " not in query");
    }
  }
  return OkStatus();
}

StatusOr<JoinTree> JoinTree::Create(std::vector<QueryEdge> edges,
                                    std::vector<AttrId> output_attrs) {
  PARJOIN_RETURN_IF_ERROR(ValidateQuery(edges, output_attrs));
  return JoinTree(std::move(edges), std::move(output_attrs));
}

JoinTree::JoinTree(std::vector<QueryEdge> edges,
                   std::vector<AttrId> output_attrs)
    : edges_(std::move(edges)), output_attrs_(std::move(output_attrs)) {
  CHECK_OK(ValidateQuery(edges_, output_attrs_));

  std::set<AttrId> attr_set;
  for (const QueryEdge& e : edges_) {
    attr_set.insert(e.u);
    attr_set.insert(e.v);
  }
  attrs_.assign(attr_set.begin(), attr_set.end());

  incident_.assign(attrs_.size(), {});
  for (int i = 0; i < num_edges(); ++i) {
    incident_[static_cast<size_t>(AttrIndex(edges_[static_cast<size_t>(i)].u))]
        .push_back(i);
    incident_[static_cast<size_t>(AttrIndex(edges_[static_cast<size_t>(i)].v))]
        .push_back(i);
  }

  std::sort(output_attrs_.begin(), output_attrs_.end());
  output_attrs_.erase(
      std::unique(output_attrs_.begin(), output_attrs_.end()),
      output_attrs_.end());
}

int JoinTree::AttrIndex(AttrId a) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), a);
  if (it == attrs_.end() || *it != a) return -1;
  return static_cast<int>(it - attrs_.begin());
}

bool JoinTree::IsOutput(AttrId a) const {
  return std::binary_search(output_attrs_.begin(), output_attrs_.end(), a);
}

const std::vector<int>& JoinTree::IncidentEdges(AttrId a) const {
  const int i = AttrIndex(a);
  CHECK_GE(i, 0) << "unknown attribute " << a;
  return incident_[static_cast<size_t>(i)];
}

bool JoinTree::IsFreeConnex() const {
  // Free-connex for tree queries: the output attributes form a connected
  // subtree (footnote 1). Edges of the attribute tree connect the two
  // endpoints of every relation.
  if (output_attrs_.size() <= 1) return true;
  std::set<AttrId> targets(output_attrs_.begin(), output_attrs_.end());
  // BFS within the output-attribute-induced subgraph.
  std::set<AttrId> reached = {output_attrs_[0]};
  std::vector<AttrId> frontier = {output_attrs_[0]};
  while (!frontier.empty()) {
    AttrId a = frontier.back();
    frontier.pop_back();
    for (int ei : IncidentEdges(a)) {
      AttrId b = edges_[static_cast<size_t>(ei)].Other(a);
      if (targets.count(b) > 0 && reached.insert(b).second) {
        frontier.push_back(b);
      }
    }
  }
  return reached.size() == targets.size();
}

bool JoinTree::IsPath(std::vector<AttrId>* path_attrs) const {
  AttrId endpoint = -1;
  for (AttrId a : attrs_) {
    const int deg = Degree(a);
    if (deg > 2) return false;
    if (deg == 1 && endpoint < 0) endpoint = a;
  }
  CHECK_GE(endpoint, 0);  // every tree with >= 1 edge has a leaf
  if (path_attrs != nullptr) {
    path_attrs->clear();
    AttrId prev = -1;
    AttrId cur = endpoint;
    path_attrs->push_back(cur);
    while (true) {
      AttrId next = -1;
      for (int ei : IncidentEdges(cur)) {
        AttrId other = edges_[static_cast<size_t>(ei)].Other(cur);
        if (other != prev) next = other;
      }
      if (next < 0) break;
      path_attrs->push_back(next);
      prev = cur;
      cur = next;
    }
  }
  return true;
}

bool JoinTree::IsStarShaped(AttrId* center) const {
  if (num_edges() == 1) {
    if (center != nullptr) *center = edges_[0].u;
    return true;
  }
  // The center is the unique attribute shared by all edges.
  for (AttrId candidate : {edges_[0].u, edges_[0].v}) {
    bool all = true;
    for (const QueryEdge& e : edges_) {
      if (!e.Covers(candidate)) {
        all = false;
        break;
      }
    }
    if (all) {
      if (center != nullptr) *center = candidate;
      return true;
    }
  }
  return false;
}

QueryShape JoinTree::Classify() const {
  if (num_edges() == 1) return QueryShape::kSingleEdge;
  if (IsFreeConnex()) return QueryShape::kFreeConnex;

  std::vector<AttrId> path;
  if (IsPath(&path)) {
    const bool endpoints_out =
        IsOutput(path.front()) && IsOutput(path.back());
    bool interior_out = false;
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      if (IsOutput(path[i])) interior_out = true;
    }
    if (endpoints_out && !interior_out &&
        output_attrs_.size() == 2) {
      return num_edges() == 2 ? QueryShape::kMatMul : QueryShape::kLine;
    }
    // A path with interior outputs is a general tree (twigs split it).
  }

  AttrId center = -1;
  if (IsStarShaped(&center) && !IsOutput(center)) {
    bool leaves_out = true;
    for (AttrId a : attrs_) {
      if (a == center) continue;
      if (!IsOutput(a)) leaves_out = false;
    }
    if (leaves_out) return QueryShape::kStar;
  }

  // Star-like (§6): exactly one attribute B in more than two relations,
  // B is a non-output attribute, every leaf is an output attribute, and
  // all interior arm attributes are non-output.
  std::vector<AttrId> high = HighDegreeAttrs();
  if (high.size() == 1 && !IsOutput(high[0])) {
    bool ok = true;
    for (AttrId a : attrs_) {
      if (a == high[0]) continue;
      const bool leaf = Degree(a) == 1;
      if (leaf && !IsOutput(a)) ok = false;
      if (!leaf && IsOutput(a)) ok = false;
    }
    if (ok) return QueryShape::kStarLike;
  }

  return QueryShape::kTree;
}

std::vector<JoinTree::RootedEdge> JoinTree::BottomUpOrder(
    AttrId root_attr) const {
  CHECK_GE(AttrIndex(root_attr), 0);
  std::vector<RootedEdge> order;
  order.reserve(edges_.size());
  // Iterative post-order DFS over the attribute tree.
  struct Frame {
    AttrId attr;
    AttrId parent;
    size_t next_edge = 0;
  };
  std::vector<Frame> stack = {{root_attr, -1, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& inc = IncidentEdges(frame.attr);
    if (frame.next_edge < inc.size()) {
      const int ei = inc[frame.next_edge++];
      const AttrId child = edges_[static_cast<size_t>(ei)].Other(frame.attr);
      if (child == frame.parent) continue;
      stack.push_back({child, frame.attr, 0});
    } else {
      // All children done; emit the edge to the parent.
      if (frame.parent >= 0) {
        for (int ei : IncidentEdges(frame.attr)) {
          if (edges_[static_cast<size_t>(ei)].Other(frame.attr) ==
              frame.parent) {
            order.push_back(RootedEdge{ei, frame.attr, frame.parent});
            break;
          }
        }
      }
      stack.pop_back();
    }
  }
  CHECK_EQ(order.size(), edges_.size());
  return order;
}

std::vector<AttrId> JoinTree::HighDegreeAttrs() const {
  std::vector<AttrId> out;
  for (AttrId a : attrs_) {
    if (Degree(a) > 2) out.push_back(a);
  }
  return out;
}

std::vector<JoinTree::Twig> JoinTree::DecomposeIntoTwigs() const {
  // Cut vertices: non-leaf output attributes. Traversal may end at a cut
  // vertex but not pass through it.
  std::set<AttrId> cuts;
  for (AttrId y : output_attrs_) {
    if (Degree(y) >= 2) cuts.insert(y);
  }

  std::vector<Twig> twigs;
  std::vector<bool> assigned(edges_.size(), false);
  for (int start = 0; start < num_edges(); ++start) {
    if (assigned[static_cast<size_t>(start)]) continue;
    Twig twig;
    std::vector<int> frontier = {start};
    assigned[static_cast<size_t>(start)] = true;
    std::set<AttrId> twig_attrs;
    while (!frontier.empty()) {
      const int ei = frontier.back();
      frontier.pop_back();
      twig.edge_indices.push_back(ei);
      for (AttrId a : {edges_[static_cast<size_t>(ei)].u,
                       edges_[static_cast<size_t>(ei)].v}) {
        twig_attrs.insert(a);
        if (cuts.count(a) > 0) continue;  // do not cross a cut vertex
        for (int next : IncidentEdges(a)) {
          if (!assigned[static_cast<size_t>(next)]) {
            assigned[static_cast<size_t>(next)] = true;
            frontier.push_back(next);
          }
        }
      }
    }
    for (AttrId a : twig_attrs) {
      if (cuts.count(a) > 0) twig.boundary_attrs.push_back(a);
    }
    std::sort(twig.edge_indices.begin(), twig.edge_indices.end());
    twigs.push_back(std::move(twig));
  }
  return twigs;
}

JoinTree JoinTree::InducedSubquery(
    const std::vector<int>& edge_indices,
    const std::vector<AttrId>& extra_outputs) const {
  std::vector<QueryEdge> sub_edges;
  std::set<AttrId> sub_attrs;
  for (int ei : edge_indices) {
    const QueryEdge& e = edges_[static_cast<size_t>(ei)];
    sub_edges.push_back(e);
    sub_attrs.insert(e.u);
    sub_attrs.insert(e.v);
  }
  std::vector<AttrId> sub_outputs;
  for (AttrId a : sub_attrs) {
    if (IsOutput(a) ||
        std::find(extra_outputs.begin(), extra_outputs.end(), a) !=
            extra_outputs.end()) {
      sub_outputs.push_back(a);
    }
  }
  return JoinTree(std::move(sub_edges), std::move(sub_outputs));
}

std::string JoinTree::DebugString() const {
  std::ostringstream os;
  os << "JoinTree{edges=[";
  for (int i = 0; i < num_edges(); ++i) {
    if (i > 0) os << ", ";
    os << "(" << edges_[static_cast<size_t>(i)].u << ","
       << edges_[static_cast<size_t>(i)].v << ")";
  }
  os << "], y={";
  for (size_t i = 0; i < output_attrs_.size(); ++i) {
    if (i > 0) os << ",";
    os << output_attrs_[i];
  }
  os << "}, shape=" << QueryShapeName(Classify()) << "}";
  return os.str();
}

}  // namespace parjoin
