// ExplainQuery: a human-readable account of how the library will execute
// a tree join-aggregate query — the shape classification, the §7
// preprocessing and twig decomposition, per-twig algorithm dispatch, the
// star-like arm structure, and the Table 1 bound that applies. Pure
// analysis: nothing is computed and no load is charged.
//
// The cost-based planner (parjoin/plan/planner.h) embeds this report in
// PhysicalPlan::structure and extends it with instance-specific numbers:
// estimated OUT, scored candidates, and predicted vs. measured load.

#ifndef PARJOIN_QUERY_EXPLAIN_H_
#define PARJOIN_QUERY_EXPLAIN_H_

#include <sstream>
#include <string>

#include "parjoin/query/join_tree.h"

namespace parjoin {

namespace internal_explain {

inline const char* BoundFor(QueryShape shape) {
  switch (shape) {
    case QueryShape::kSingleEdge:
      return "O((N+OUT)/p) (aggregation only)";
    case QueryShape::kMatMul:
      return "O(N/p + min{sqrt(N1*N2/p), (N1*N2)^(1/3)*OUT^(1/3)/p^(2/3)}) "
             "(Theorem 1, optimal)";
    case QueryShape::kLine:
      return "O((N*OUT/p)^(2/3) + N*sqrt(OUT)/p + (N+OUT)/p) (Theorem 4)";
    case QueryShape::kStar:
      return "O((N*OUT/p)^(2/3) + N*sqrt(OUT)/p + (N+OUT)/p) (Theorem 5)";
    case QueryShape::kStarLike:
      return "O((N*N')^(1/3)*OUT^(1/2)/p^(2/3) + N'^(2/3)*OUT^(1/3)/p^(2/3) "
             "+ N*OUT^(2/3)/p + (N+N'+OUT)/p) (Lemma 7)";
    case QueryShape::kFreeConnex:
      return "O(N/p + OUT/p) (free-connex; prior work / Yannakakis)";
    case QueryShape::kTree:
      return "O(N*OUT^(2/3)/p + (N+OUT)/p) (Theorem 6)";
  }
  return "?";
}

inline void DescribeShape(const JoinTree& q, const std::string& indent,
                          std::ostringstream& os) {
  const QueryShape shape = q.Classify();
  os << indent << "shape: " << QueryShapeName(shape) << "\n"
     << indent << "load bound: " << BoundFor(shape) << "\n";
  if (shape == QueryShape::kStarLike || shape == QueryShape::kStar) {
    AttrId center = -1;
    if (!q.IsStarShaped(&center)) center = q.HighDegreeAttrs()[0];
    os << indent << "center B = " << center << "; arms:";
    for (int e : q.IncidentEdges(center)) {
      // Walk each arm to its endpoint to report the length.
      int length = 0;
      AttrId prev = center;
      int edge = e;
      while (true) {
        ++length;
        const AttrId next = q.edge(edge).Other(prev);
        if (q.Degree(next) == 1) {
          os << " [A" << next << ", length " << length << "]";
          break;
        }
        int next_edge = -1;
        for (int e2 : q.IncidentEdges(next)) {
          if (e2 != edge) next_edge = e2;
        }
        if (next_edge < 0) break;
        prev = next;
        edge = next_edge;
      }
    }
    os << "\n";
  }
  if (shape == QueryShape::kTree) {
    const auto high = q.HighDegreeAttrs();
    os << indent << "V* (attrs in >2 relations): {";
    for (size_t i = 0; i < high.size(); ++i) {
      if (i > 0) os << ", ";
      os << high[i];
    }
    os << "} -> skeleton divide & conquer (2^|S∩ȳ| heavy/light patterns)\n";
  }
}

}  // namespace internal_explain

// Explains the execution plan for `query`. The report mirrors what
// TreeQueryAggregate will do (minus the data-dependent estimates).
inline std::string ExplainQuery(const JoinTree& query) {
  std::ostringstream os;
  os << "query: " << query.DebugString() << "\n";

  // §7 preprocessing preview: which leaf relations fold away.
  // (The fold is data-dependent only in its annotations; the structure is
  // static.) Simulate the reduction on the tree alone.
  JoinTree reduced = query;
  int folds = 0;
  while (reduced.num_edges() > 1) {
    int fold_edge = -1;
    for (int i = 0; i < reduced.num_edges() && fold_edge < 0; ++i) {
      for (AttrId a : {reduced.edge(i).u, reduced.edge(i).v}) {
        if (!reduced.IsOutput(a) && reduced.Degree(a) == 1) fold_edge = i;
      }
    }
    if (fold_edge < 0) break;
    std::vector<QueryEdge> edges;
    for (int i = 0; i < reduced.num_edges(); ++i) {
      if (i != fold_edge) edges.push_back(reduced.edge(i));
    }
    std::vector<AttrId> outputs = reduced.output_attrs();
    reduced = JoinTree(std::move(edges), std::move(outputs));
    ++folds;
  }
  if (folds > 0) {
    os << "preprocessing (§7): " << folds
       << " relation(s) with private non-output attributes fold away -> "
       << reduced.num_edges() << " relation(s) remain\n";
  }

  if (reduced.num_edges() == 1) {
    os << "plan: single relation -> aggregate by outputs\n";
    return os.str();
  }

  const auto twigs = reduced.DecomposeIntoTwigs();
  if (twigs.size() == 1) {
    internal_explain::DescribeShape(reduced, "", os);
    return os.str();
  }

  os << "twig decomposition: " << twigs.size() << " twigs (split at "
     << "non-leaf output attributes); twig results joined by Yannakakis "
     << "(free-connex, O(OUT/p))\n";
  for (size_t i = 0; i < twigs.size(); ++i) {
    JoinTree sub = reduced.InducedSubquery(twigs[i].edge_indices,
                                           twigs[i].boundary_attrs);
    os << "  twig " << (i + 1) << " (" << twigs[i].edge_indices.size()
       << " relations):\n";
    internal_explain::DescribeShape(sub, "    ", os);
  }
  return os.str();
}

}  // namespace parjoin

#endif  // PARJOIN_QUERY_EXPLAIN_H_
