// Dangling-tuple removal (§2.1, [Yannakakis '81; Hu & Yi '19]).
//
// A tuple is dangling if it appears in no full join result. For an acyclic
// join, a bottom-up pass of semijoins followed by a top-down pass removes
// every dangling tuple, in O(1) rounds (the query size is constant) with
// linear load. Every algorithm in the library starts with this step.

#ifndef PARJOIN_QUERY_DANGLING_H_
#define PARJOIN_QUERY_DANGLING_H_

#include <vector>

#include "parjoin/mpc/cluster.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/ops.h"

namespace parjoin {

// Removes all dangling tuples in place. The traversal is rooted at an
// arbitrary attribute (the first one).
template <SemiringC S>
void RemoveDangling(mpc::Cluster& cluster, TreeInstance<S>* instance) {
  const JoinTree& q = instance->query;
  if (q.num_edges() == 1) return;
  const AttrId root = q.attrs().front();
  const auto order = q.BottomUpOrder(root);

  // Bottom-up: when edge e = (child c, parent a) is processed, every edge
  // hanging below c has been processed; semijoin R_e with each of them on
  // their shared attribute c.
  for (const auto& re : order) {
    auto& rel = instance->relations[static_cast<size_t>(re.edge_index)];
    for (int child_edge : q.IncidentEdges(re.child_attr)) {
      if (child_edge == re.edge_index) continue;
      rel = Semijoin(cluster, rel,
                     instance->relations[static_cast<size_t>(child_edge)]);
    }
  }

  // Top-down: parent edges filter their children.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& parent_rel =
        instance->relations[static_cast<size_t>(it->edge_index)];
    for (int child_edge : q.IncidentEdges(it->child_attr)) {
      if (child_edge == it->edge_index) continue;
      auto& child_rel = instance->relations[static_cast<size_t>(child_edge)];
      child_rel = Semijoin(cluster, child_rel, parent_rel);
    }
  }
}

}  // namespace parjoin

#endif  // PARJOIN_QUERY_DANGLING_H_
