// JoinTree: the query class of the paper (§1.1).
//
// A join-aggregate query Q_y(R) is given by an acyclic hypergraph whose
// hyperedges all have exactly two attributes — i.e. the query is a tree
// whose vertices are attributes and whose edges are (binary) relations —
// plus a set y of output attributes. JoinTree stores that tree, validates
// it, and provides the structural analyses the algorithms need:
//
//  * free-connex test  — do the output attributes form a connected subtree?
//    (footnote 1; free-connex queries are the easy case already solved by
//    prior work)
//  * query classification — matrix multiplication / line / star /
//    star-like / general tree, which selects the §3–§7 algorithm;
//  * rooted traversal orders for Yannakakis;
//  * twig decomposition and skeleton extraction (§7).

#ifndef PARJOIN_QUERY_JOIN_TREE_H_
#define PARJOIN_QUERY_JOIN_TREE_H_

#include <string>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/status.h"
#include "parjoin/relation/schema.h"

namespace parjoin {

// One hyperedge e = {u, v}: the relation R_e(u, v).
struct QueryEdge {
  AttrId u = -1;
  AttrId v = -1;

  bool Covers(AttrId a) const { return a == u || a == v; }
  AttrId Other(AttrId a) const {
    CHECK(Covers(a));
    return a == u ? v : u;
  }
};

enum class QueryShape {
  kSingleEdge,  // one relation
  kMatMul,      // A - B - C with y = {A, C}: sparse matrix multiplication
  kLine,        // path with y = {both endpoints}
  kStar,        // all edges share one center attribute; y = the leaves
  kStarLike,    // line-query arms sharing one non-output attribute (§6)
  kFreeConnex,  // output attrs form a connected subtree (prior work's case)
  kTree,        // general tree, handled by §7
};

const char* QueryShapeName(QueryShape shape);

// Reverse lookup for profile/calibration files (external data: Status,
// not CHECK). Accepts exactly the QueryShapeName spellings.
StatusOr<QueryShape> QueryShapeFromName(const std::string& name);

class JoinTree {
 public:
  // Builds and validates a query. Aborts (CHECK) if ValidateQuery fails —
  // for programmatically constructed queries whose validity is an internal
  // invariant. Queries built from external input (spec files, workload
  // configs) should go through Create() and handle the Status.
  JoinTree(std::vector<QueryEdge> edges, std::vector<AttrId> output_attrs);

  // Checks that the edges form a tree over the mentioned attributes (no
  // self-loops, |E| = |V| - 1, connected) and that every output attribute
  // occurs in some edge. InvalidArgument otherwise.
  static Status ValidateQuery(const std::vector<QueryEdge>& edges,
                              const std::vector<AttrId>& output_attrs);

  // Validating factory for externally supplied queries.
  static StatusOr<JoinTree> Create(std::vector<QueryEdge> edges,
                                   std::vector<AttrId> output_attrs);

  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  const QueryEdge& edge(int i) const {
    return edges_[static_cast<size_t>(i)];
  }

  const std::vector<AttrId>& attrs() const { return attrs_; }
  const std::vector<AttrId>& output_attrs() const { return output_attrs_; }
  bool IsOutput(AttrId a) const;

  // Edges incident to attribute a (indices into edges()).
  const std::vector<int>& IncidentEdges(AttrId a) const;
  int Degree(AttrId a) const {
    return static_cast<int>(IncidentEdges(a).size());
  }

  // --- classification ---

  bool IsFreeConnex() const;
  QueryShape Classify() const;

  // True iff the query is a path A1 - A2 - ... - A_{n+1}. If so and
  // `path_attrs` != nullptr, fills it with the attributes in path order
  // (an arbitrary one of the two orientations).
  bool IsPath(std::vector<AttrId>* path_attrs = nullptr) const;

  // True iff all edges share one attribute (the center). For single-edge
  // queries returns true with either endpoint as center.
  bool IsStarShaped(AttrId* center = nullptr) const;

  // --- traversal ---

  struct RootedEdge {
    int edge_index = -1;  // index into edges()
    AttrId child_attr = -1;   // the endpoint farther from the root
    AttrId parent_attr = -1;  // the endpoint closer to the root
  };

  // Edges ordered leaves-first for a bottom-up (Yannakakis) pass rooted at
  // `root_attr`. Reversing gives a top-down order.
  std::vector<RootedEdge> BottomUpOrder(AttrId root_attr) const;

  // --- §7 structure ---

  // Attributes that appear in more than two relations.
  std::vector<AttrId> HighDegreeAttrs() const;

  // A twig of the (reduced) query: a maximal subtree delimited by non-leaf
  // output attributes (§7, Figure 2). `edge_indices` index into edges();
  // `boundary_attrs` are the output attributes shared with other twigs.
  struct Twig {
    std::vector<int> edge_indices;
    std::vector<AttrId> boundary_attrs;
  };

  // Splits the query at every non-leaf output attribute. Precondition
  // (established by the §7 preprocessing, see query/reduce.h): every leaf
  // attribute is an output attribute.
  std::vector<Twig> DecomposeIntoTwigs() const;

  // Builds the subquery induced by a subset of edges. Output attributes of
  // the subquery are the original output attributes it touches plus any
  // attributes in `extra_outputs` it touches (twig boundaries must stay).
  JoinTree InducedSubquery(const std::vector<int>& edge_indices,
                           const std::vector<AttrId>& extra_outputs) const;

  std::string DebugString() const;

 private:
  std::vector<QueryEdge> edges_;
  std::vector<AttrId> attrs_;         // sorted unique attribute ids
  std::vector<AttrId> output_attrs_;  // sorted unique
  // incident_[i] lists edge indices incident to attrs_[i].
  std::vector<std::vector<int>> incident_;

  int AttrIndex(AttrId a) const;  // index into attrs_, -1 if absent
};

}  // namespace parjoin

#endif  // PARJOIN_QUERY_JOIN_TREE_H_
