// Query reduction (§7 preprocessing).
//
// Iteratively removes a relation R_e when some non-output attribute v
// appears only in e: the ⊕-aggregate of R_e per shared attribute value is
// ⊗-attached to a neighbouring relation, and e disappears from the tree.
// After the reduction every leaf attribute of the query is an output
// attribute (Figure 2, middle). All steps are linear-load primitives.

#ifndef PARJOIN_QUERY_REDUCE_H_
#define PARJOIN_QUERY_REDUCE_H_

#include <utility>
#include <vector>

#include "parjoin/mpc/cluster.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/ops.h"

namespace parjoin {

// Applies the reduction in place. Stops when no rule applies or only one
// relation remains (a single-edge query is handled directly by the
// algorithms regardless of its output attributes).
template <SemiringC S>
void ReduceInstance(mpc::Cluster& cluster, TreeInstance<S>* instance) {
  while (instance->query.num_edges() > 1) {
    const JoinTree& q = instance->query;

    // Find an edge with a private non-output endpoint.
    int fold_edge = -1;
    AttrId private_attr = -1;
    for (int i = 0; i < q.num_edges() && fold_edge < 0; ++i) {
      for (AttrId a : {q.edge(i).u, q.edge(i).v}) {
        if (!q.IsOutput(a) && q.Degree(a) == 1) {
          fold_edge = i;
          private_attr = a;
          break;
        }
      }
    }
    if (fold_edge < 0) return;

    const AttrId shared = q.edge(fold_edge).Other(private_attr);
    // Aggregate the private attribute away: factors(shared) = Σ_v R_e.
    DistRelation<S> factors = AggregateByAttrs(
        cluster, instance->relations[static_cast<size_t>(fold_edge)],
        {shared});

    // Attach to any neighbour through `shared`.
    int neighbor = -1;
    for (int ei : q.IncidentEdges(shared)) {
      if (ei != fold_edge) {
        neighbor = ei;
        break;
      }
    }
    CHECK_GE(neighbor, 0);
    instance->relations[static_cast<size_t>(neighbor)] = MultiplyIntoByAttr(
        cluster, instance->relations[static_cast<size_t>(neighbor)], factors,
        shared);

    // Rebuild the query without the folded edge.
    std::vector<QueryEdge> edges;
    std::vector<DistRelation<S>> relations;
    for (int i = 0; i < q.num_edges(); ++i) {
      if (i == fold_edge) continue;
      edges.push_back(q.edge(i));
      relations.push_back(
          std::move(instance->relations[static_cast<size_t>(i)]));
    }
    std::vector<AttrId> outputs = q.output_attrs();
    instance->query = JoinTree(std::move(edges), std::move(outputs));
    instance->relations = std::move(relations);
  }
}

}  // namespace parjoin

#endif  // PARJOIN_QUERY_REDUCE_H_
