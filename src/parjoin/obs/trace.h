// Structured round tracing: a RoundObserver implementation that records
// every charged round and fault/recovery event the cluster reports, plus
// the primitive scope stack, and renders the trail as JSONL.
//
// Schema `parjoin-trace-v1`, one flat JSON object per line:
//   {"type":"meta","schema":"parjoin-trace-v1","label":...,<annotations>}
//   {"type":"round","seq":N,"round":R,"scope":"sort/exchange",
//    "max_load":L,"tuples":T,"recovery":B,"straggle":F,"resumed":B,
//    "wall_ms":W}
//   {"type":"event","seq":N,"kind":"crash","round":R,"detail":...,
//    ["server":S,]["factor":F,]["moved":M,]"wall_ms":W}
// Event payload fields are optional and kind-dependent: "straggler"
// carries server+factor, "rebalance" carries server+factor+moved,
// "resume" carries moved (the fast-forwarded round count); other kinds
// omit all three.
// The meta line comes first; rounds and events follow in emission order
// (`seq` is the global order both share). `wall_ms` is milliseconds since
// the recorder was constructed — the only nondeterministic field, and the
// one comparisons must ignore.
//
// Contract (tests/obs_test.cc, determinism_test): attaching a recorder
// never changes outputs, charged loads, or the rng stream. The recorder
// only ever reads what the cluster already computed; wall-clock stamping
// happens here, observer-side, which is why `<chrono>` stays out of mpc/
// (tools/lint/parjoin_lint.py chrono-timing rule).

#ifndef PARJOIN_OBS_TRACE_H_
#define PARJOIN_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "parjoin/common/status.h"
#include "parjoin/common/stopwatch.h"
#include "parjoin/mpc/observer.h"

namespace parjoin {
namespace obs {

inline constexpr char kTraceSchema[] = "parjoin-trace-v1";

struct TraceRound {
  int seq = 0;  // position in the combined round+event order
  int round = 0;
  std::string scope;  // '/'-joined scope stack, "" at top level
  std::int64_t max_load = 0;
  std::int64_t tuples = 0;
  bool recovery = false;
  double straggle = 1;
  // True for rounds a resumed replay fast-forwarded over (elided from the
  // ledger; mpc::RoundRecord::resumed).
  bool resumed = false;
  double wall_ms = 0;
};

struct TraceEvent {
  int seq = 0;
  std::string kind;
  int round = 0;
  std::string detail;
  // Structured payload (mpc::EventRecord); sentinel defaults mean "not
  // carried by this kind" and are omitted from the JSONL line.
  int server = -1;
  double factor = 0;
  std::int64_t moved = -1;
  double wall_ms = 0;
};

class TraceRecorder : public mpc::RoundObserver {
 public:
  explicit TraceRecorder(std::string label = "");

  // mpc::RoundObserver (called from the charging thread only).
  void OnRound(const mpc::RoundRecord& record) override;
  void OnEvent(const char* kind, int round,
               const std::string& detail) override;
  void OnEventRecord(const mpc::EventRecord& event) override;
  void PushScope(const char* name) override;
  void PopScope() override;

  // Extra meta-line key/values (query label, algorithm, p, ...). Keys are
  // emitted sorted; "type"/"schema"/"label" are reserved.
  void Annotate(const std::string& key, const std::string& value);

  const std::vector<TraceRound>& rounds() const { return rounds_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  std::string ToJsonl() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::string label_;
  Stopwatch since_start_;
  std::vector<const char*> scope_stack_;
  std::map<std::string, std::string> annotations_;
  std::vector<TraceRound> rounds_;
  std::vector<TraceEvent> events_;
  int next_seq_ = 0;
};

// Parsed-back form of a trace file, for round-trip tests and validation.
struct ParsedTrace {
  std::string label;
  std::map<std::string, std::string> annotations;
  std::vector<TraceRound> rounds;
  std::vector<TraceEvent> events;
};

// Parses `parjoin-trace-v1` JSONL (the exact ToJsonl output format).
// Errors carry the 1-based line number.
StatusOr<ParsedTrace> ParseTraceJsonl(const std::string& text);

}  // namespace obs
}  // namespace parjoin

#endif  // PARJOIN_OBS_TRACE_H_
