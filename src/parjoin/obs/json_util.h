// Minimal JSON helpers for the observability layer's line-oriented
// formats (trace JSONL, profile store, calibration tables).
//
// The parser handles exactly what those formats emit: one FLAT object per
// line — string keys mapping to strings, finite numbers, or booleans. No
// nesting, no arrays, no null. Anything else is an InvalidArgumentError
// (these files are external input; Status, not CHECK). The emitter side is
// the usual escape + shortest-roundtrip double rendering used elsewhere in
// the repo.

#ifndef PARJOIN_OBS_JSON_UTIL_H_
#define PARJOIN_OBS_JSON_UTIL_H_

#include <cstdint>
#include <map>
#include <string>

#include "parjoin/common/status.h"

namespace parjoin {
namespace obs {

std::string JsonEscape(const std::string& s);

// Shortest representation that round-trips a finite double.
std::string JsonDouble(double v);

// One parsed scalar. `is_*` discriminate; numbers are stored as double
// (the formats only emit values a double represents exactly or that are
// consumed as doubles anyway).
struct JsonScalar {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kNumber;
  std::string str;
  double num = 0;
  bool b = false;
};

using FlatJsonObject = std::map<std::string, JsonScalar>;

// Parses `{"k":"v","n":1,...}` — a single flat object spanning the whole
// input. `where` prefixes error messages (file:line context).
StatusOr<FlatJsonObject> ParseFlatJsonObject(const std::string& text,
                                             const std::string& where);

// Typed field accessors: the named field must exist and have the asked
// kind.
StatusOr<std::string> GetString(const FlatJsonObject& obj,
                                const std::string& key,
                                const std::string& where);
StatusOr<double> GetNumber(const FlatJsonObject& obj, const std::string& key,
                           const std::string& where);
StatusOr<std::int64_t> GetInt(const FlatJsonObject& obj,
                              const std::string& key,
                              const std::string& where);
StatusOr<bool> GetBool(const FlatJsonObject& obj, const std::string& key,
                       const std::string& where);

}  // namespace obs
}  // namespace parjoin

#endif  // PARJOIN_OBS_JSON_UTIL_H_
