// Persistent execution profile: predicted-vs-measured load and wall time
// per (algorithm, query shape, p, input-size bucket), recorded from every
// plan::PlanAndRun / TryExecuteWithRecovery execution (the executor's
// ExecutionProfileSink seam), merged across runs into a profile file, and
// fitted into a plan::CalibrationTable the planner consults.
//
// The fit is least squares on log-ratios: minimizing
// Σ (log measured_i − log(c · predicted_i))² over the constant c gives
// log c = mean(log(measured_i / predicted_i)) — the geometric mean of the
// per-run ratios. Cells store Σ log-ratio and the run count, so merging
// profiles is associative and idempotent-friendly (Merge adds counts;
// merging disjoint stores commutes; ToJson/FromJson round-trips exactly).
//
// File format `parjoin-profile-v1`, line-oriented like BENCH_parjoin.json:
//   {"schema":"parjoin-profile-v1","cells":N}
//   {"algorithm":...,"shape":...,"p":P,"log2_n":B,"runs":R,
//    "sum_log_ratio":S,"sum_predicted":..,"sum_measured":..,
//    "sum_wall_ms":..}
// Calibration files are `parjoin-calibration-v1` with per-entry lines
// ("shape":"*" marks the per-algorithm any-shape default).

#ifndef PARJOIN_OBS_PROFILE_H_
#define PARJOIN_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>

#include "parjoin/common/status.h"
#include "parjoin/plan/cost_model.h"
#include "parjoin/plan/executor.h"

namespace parjoin {
namespace obs {

inline constexpr char kProfileSchema[] = "parjoin-profile-v1";
inline constexpr char kCalibrationSchema[] = "parjoin-calibration-v1";

struct ProfileKey {
  plan::Algorithm algorithm = plan::Algorithm::kYannakakis;
  QueryShape shape = QueryShape::kTree;
  int p = 1;
  int log2_n = 0;  // floor(log2(max(1, input_size)))

  friend bool operator<(const ProfileKey& a, const ProfileKey& b) {
    if (a.algorithm != b.algorithm) return a.algorithm < b.algorithm;
    if (a.shape != b.shape) return a.shape < b.shape;
    if (a.p != b.p) return a.p < b.p;
    return a.log2_n < b.log2_n;
  }
  friend bool operator==(const ProfileKey& a, const ProfileKey& b) {
    return a.algorithm == b.algorithm && a.shape == b.shape && a.p == b.p &&
           a.log2_n == b.log2_n;
  }
};

struct ProfileCell {
  std::int64_t runs = 0;
  double sum_log_ratio = 0;  // Σ log(measured / predicted)
  double sum_predicted = 0;
  double sum_measured = 0;
  double sum_wall_ms = 0;

  friend bool operator==(const ProfileCell& a, const ProfileCell& b) {
    return a.runs == b.runs && a.sum_log_ratio == b.sum_log_ratio &&
           a.sum_predicted == b.sum_predicted &&
           a.sum_measured == b.sum_measured &&
           a.sum_wall_ms == b.sum_wall_ms;
  }
};

class ProfileStore : public plan::ExecutionProfileSink {
 public:
  // ExecutionProfileSink: folds one finished execution into its cell.
  // Samples with a non-positive predicted or measured load are dropped
  // (no ratio to learn from).
  void RecordExecution(const plan::ExecutionRecord& record) override;

  // Adds every cell of `other` into this store.
  void Merge(const ProfileStore& other);

  const std::map<ProfileKey, ProfileCell>& cells() const { return cells_; }
  std::int64_t total_runs() const;
  bool empty() const { return cells_.empty(); }

  std::string ToJson() const;
  static StatusOr<ProfileStore> FromJson(const std::string& text);

  Status SaveFile(const std::string& path) const;
  static StatusOr<ProfileStore> LoadFile(const std::string& path);
  // Missing file -> empty store (a fresh deployment has no history yet);
  // an unreadable or malformed file is still an error.
  static StatusOr<ProfileStore> LoadOrEmpty(const std::string& path);

  friend bool operator==(const ProfileStore& a, const ProfileStore& b) {
    return a.cells_ == b.cells_;
  }

 private:
  std::map<ProfileKey, ProfileCell> cells_;
};

// Fits per-(algorithm, shape) factors — geometric mean of measured /
// predicted, run-weighted across p and size buckets — plus a per-algorithm
// any-shape default. Cells need at least `min_runs` combined runs before
// their factor is trusted (fewer samples keep constant 1).
plan::CalibrationTable FitCalibration(const ProfileStore& profile,
                                      std::int64_t min_runs = 1);

Status SaveCalibrationFile(const plan::CalibrationTable& table,
                           const std::string& path);
StatusOr<plan::CalibrationTable> LoadCalibrationFile(
    const std::string& path);

}  // namespace obs
}  // namespace parjoin

#endif  // PARJOIN_OBS_PROFILE_H_
