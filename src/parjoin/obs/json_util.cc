#include "parjoin/obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace parjoin {
namespace obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g round-trips any double; trim to the shortest form that still
  // parses back to the same value.
  for (int prec = 6; prec <= 17; ++prec) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return "0";
}

namespace {

class FlatParser {
 public:
  FlatParser(const std::string& text, const std::string& where)
      : text_(text), where_(where) {}

  StatusOr<FlatJsonObject> Parse() {
    FlatJsonObject obj;
    SkipWs();
    if (!Consume('{')) return Err("expected '{'");
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Finish(std::move(obj));
    }
    while (true) {
      SkipWs();
      PARJOIN_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after key '" + key + "'");
      SkipWs();
      PARJOIN_ASSIGN_OR_RETURN(JsonScalar value, ParseScalar());
      if (obj.count(key) > 0) return Err("duplicate key '" + key + "'");
      obj.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Finish(std::move(obj));
      return Err("expected ',' or '}'");
    }
  }

 private:
  StatusOr<FlatJsonObject> Finish(FlatJsonObject obj) {
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing content after object");
    return obj;
  }

  StatusOr<JsonScalar> ParseScalar() {
    JsonScalar s;
    const char c = Peek();
    if (c == '"') {
      PARJOIN_ASSIGN_OR_RETURN(s.str, ParseString());
      s.kind = JsonScalar::Kind::kString;
      return s;
    }
    if (c == 't' || c == 'f') {
      const char* lit = c == 't' ? "true" : "false";
      for (const char* q = lit; *q != '\0'; ++q) {
        if (!Consume(*q)) return Err("malformed literal");
      }
      s.kind = JsonScalar::Kind::kBool;
      s.b = c == 't';
      return s;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '-' || text_[pos_] == '+' ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E')) {
        ++pos_;
      }
      const std::string tok = text_.substr(start, pos_ - start);
      char* end = nullptr;
      s.num = std::strtod(tok.c_str(), &end);
      if (end == nullptr || *end != '\0' || !std::isfinite(s.num)) {
        return Err("malformed number '" + tok + "'");
      }
      s.kind = JsonScalar::Kind::kNumber;
      return s;
    }
    return Err(std::string("unsupported value (flat objects hold strings, "
                           "numbers, and booleans only)"));
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Err("malformed \\u escape");
            if (code > 0x7f) {
              return Err("non-ASCII \\u escape (the emitters never write "
                         "one)");
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            return Err(std::string("unsupported escape '\\") + esc + "'");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  Status Err(const std::string& what) const {
    return InvalidArgumentError(where_ + ": " + what + " at offset " +
                                std::to_string(pos_));
  }

  const std::string& text_;
  const std::string& where_;
  size_t pos_ = 0;
};

Status MissingField(const std::string& key, const std::string& where) {
  return InvalidArgumentError(where + ": missing field '" + key + "'");
}

Status WrongKind(const std::string& key, const char* want,
                 const std::string& where) {
  return InvalidArgumentError(where + ": field '" + key + "' is not a " +
                              want);
}

}  // namespace

StatusOr<FlatJsonObject> ParseFlatJsonObject(const std::string& text,
                                             const std::string& where) {
  return FlatParser(text, where).Parse();
}

StatusOr<std::string> GetString(const FlatJsonObject& obj,
                                const std::string& key,
                                const std::string& where) {
  auto it = obj.find(key);
  if (it == obj.end()) return MissingField(key, where);
  if (it->second.kind != JsonScalar::Kind::kString) {
    return WrongKind(key, "string", where);
  }
  return it->second.str;
}

StatusOr<double> GetNumber(const FlatJsonObject& obj, const std::string& key,
                           const std::string& where) {
  auto it = obj.find(key);
  if (it == obj.end()) return MissingField(key, where);
  if (it->second.kind != JsonScalar::Kind::kNumber) {
    return WrongKind(key, "number", where);
  }
  return it->second.num;
}

StatusOr<std::int64_t> GetInt(const FlatJsonObject& obj,
                              const std::string& key,
                              const std::string& where) {
  PARJOIN_ASSIGN_OR_RETURN(double v, GetNumber(obj, key, where));
  const std::int64_t i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) {
    return InvalidArgumentError(where + ": field '" + key +
                                "' is not an integer");
  }
  return i;
}

StatusOr<bool> GetBool(const FlatJsonObject& obj, const std::string& key,
                       const std::string& where) {
  auto it = obj.find(key);
  if (it == obj.end()) return MissingField(key, where);
  if (it->second.kind != JsonScalar::Kind::kBool) {
    return WrongKind(key, "boolean", where);
  }
  return it->second.b;
}

}  // namespace obs
}  // namespace parjoin
