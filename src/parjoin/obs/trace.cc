#include "parjoin/obs/trace.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "parjoin/common/logging.h"
#include "parjoin/obs/json_util.h"

namespace parjoin {
namespace obs {

TraceRecorder::TraceRecorder(std::string label)
    : label_(std::move(label)) {}

void TraceRecorder::OnRound(const mpc::RoundRecord& record) {
  TraceRound r;
  r.seq = next_seq_++;
  r.round = record.round;
  std::string scope;
  for (const char* s : scope_stack_) {
    if (!scope.empty()) scope += '/';
    scope += s;
  }
  r.scope = std::move(scope);
  r.max_load = record.max_load;
  r.tuples = record.tuples;
  r.recovery = record.recovery;
  r.straggle = record.straggle_factor;
  r.resumed = record.resumed;
  r.wall_ms = since_start_.ElapsedMillis();
  rounds_.push_back(std::move(r));
}

void TraceRecorder::OnEvent(const char* kind, int round,
                            const std::string& detail) {
  TraceEvent e;
  e.seq = next_seq_++;
  e.kind = kind;
  e.round = round;
  e.detail = detail;
  e.wall_ms = since_start_.ElapsedMillis();
  events_.push_back(std::move(e));
}

void TraceRecorder::OnEventRecord(const mpc::EventRecord& event) {
  TraceEvent e;
  e.seq = next_seq_++;
  e.kind = event.kind;
  e.round = event.round;
  e.detail = event.detail;
  e.server = event.server;
  e.factor = event.factor;
  e.moved = event.moved;
  e.wall_ms = since_start_.ElapsedMillis();
  events_.push_back(std::move(e));
}

void TraceRecorder::PushScope(const char* name) {
  scope_stack_.push_back(name);
}

void TraceRecorder::PopScope() {
  CHECK(!scope_stack_.empty()) << "PopScope without a matching PushScope";
  scope_stack_.pop_back();
}

void TraceRecorder::Annotate(const std::string& key,
                             const std::string& value) {
  CHECK(key != "type" && key != "schema" && key != "label")
      << "reserved trace annotation key: " << key;
  annotations_[key] = value;
}

std::string TraceRecorder::ToJsonl() const {
  std::ostringstream os;
  os << "{\"type\":\"meta\",\"schema\":\"" << kTraceSchema
     << "\",\"label\":\"" << JsonEscape(label_) << '"';
  for (const auto& [key, value] : annotations_) {
    os << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << '"';
  }
  os << "}\n";

  // Interleave rounds and events back into emission order: both vectors
  // are individually seq-sorted, so a two-finger merge restores the
  // global sequence.
  size_t ri = 0;
  size_t ei = 0;
  while (ri < rounds_.size() || ei < events_.size()) {
    const bool take_round =
        ei >= events_.size() ||
        (ri < rounds_.size() && rounds_[ri].seq < events_[ei].seq);
    if (take_round) {
      const TraceRound& r = rounds_[ri++];
      os << "{\"type\":\"round\",\"seq\":" << r.seq
         << ",\"round\":" << r.round << ",\"scope\":\""
         << JsonEscape(r.scope) << "\",\"max_load\":" << r.max_load
         << ",\"tuples\":" << r.tuples << ",\"recovery\":"
         << (r.recovery ? "true" : "false")
         << ",\"straggle\":" << JsonDouble(r.straggle)
         << ",\"resumed\":" << (r.resumed ? "true" : "false")
         << ",\"wall_ms\":" << JsonDouble(r.wall_ms) << "}\n";
    } else {
      const TraceEvent& e = events_[ei++];
      os << "{\"type\":\"event\",\"seq\":" << e.seq << ",\"kind\":\""
         << JsonEscape(e.kind) << "\",\"round\":" << e.round
         << ",\"detail\":\"" << JsonEscape(e.detail) << '"';
      if (e.server >= 0) os << ",\"server\":" << e.server;
      if (e.factor > 0) os << ",\"factor\":" << JsonDouble(e.factor);
      if (e.moved >= 0) os << ",\"moved\":" << e.moved;
      os << ",\"wall_ms\":" << JsonDouble(e.wall_ms) << "}\n";
    }
  }
  return os.str();
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open trace output file: " + path);
  }
  out << ToJsonl();
  out.flush();
  if (!out) {
    return DataLossError("failed writing trace output file: " + path);
  }
  return OkStatus();
}

StatusOr<ParsedTrace> ParseTraceJsonl(const std::string& text) {
  ParsedTrace parsed;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = "trace line " + std::to_string(lineno);
    PARJOIN_ASSIGN_OR_RETURN(FlatJsonObject obj,
                             ParseFlatJsonObject(line, where));
    PARJOIN_ASSIGN_OR_RETURN(std::string type,
                             GetString(obj, "type", where));
    if (type == "meta") {
      if (saw_meta) {
        return InvalidArgumentError(where + ": duplicate meta line");
      }
      if (lineno != 1) {
        return InvalidArgumentError(where +
                                    ": meta must be the first line");
      }
      saw_meta = true;
      PARJOIN_ASSIGN_OR_RETURN(std::string schema,
                               GetString(obj, "schema", where));
      if (schema != kTraceSchema) {
        return InvalidArgumentError(where + ": unknown schema '" + schema +
                                    "' (want " + kTraceSchema + ")");
      }
      PARJOIN_ASSIGN_OR_RETURN(parsed.label,
                               GetString(obj, "label", where));
      for (const auto& [key, value] : obj) {
        if (key == "type" || key == "schema" || key == "label") continue;
        if (value.kind != JsonScalar::Kind::kString) {
          return InvalidArgumentError(where + ": annotation '" + key +
                                      "' is not a string");
        }
        parsed.annotations[key] = value.str;
      }
    } else if (type == "round") {
      if (!saw_meta) {
        return InvalidArgumentError(where + ": round before meta line");
      }
      TraceRound r;
      PARJOIN_ASSIGN_OR_RETURN(std::int64_t seq, GetInt(obj, "seq", where));
      r.seq = static_cast<int>(seq);
      PARJOIN_ASSIGN_OR_RETURN(std::int64_t round,
                               GetInt(obj, "round", where));
      r.round = static_cast<int>(round);
      PARJOIN_ASSIGN_OR_RETURN(r.scope, GetString(obj, "scope", where));
      PARJOIN_ASSIGN_OR_RETURN(r.max_load, GetInt(obj, "max_load", where));
      PARJOIN_ASSIGN_OR_RETURN(r.tuples, GetInt(obj, "tuples", where));
      PARJOIN_ASSIGN_OR_RETURN(r.recovery, GetBool(obj, "recovery", where));
      PARJOIN_ASSIGN_OR_RETURN(r.straggle,
                               GetNumber(obj, "straggle", where));
      if (obj.count("resumed") > 0) {
        PARJOIN_ASSIGN_OR_RETURN(r.resumed, GetBool(obj, "resumed", where));
      }
      PARJOIN_ASSIGN_OR_RETURN(r.wall_ms, GetNumber(obj, "wall_ms", where));
      parsed.rounds.push_back(std::move(r));
    } else if (type == "event") {
      if (!saw_meta) {
        return InvalidArgumentError(where + ": event before meta line");
      }
      TraceEvent e;
      PARJOIN_ASSIGN_OR_RETURN(std::int64_t seq, GetInt(obj, "seq", where));
      e.seq = static_cast<int>(seq);
      PARJOIN_ASSIGN_OR_RETURN(e.kind, GetString(obj, "kind", where));
      PARJOIN_ASSIGN_OR_RETURN(std::int64_t round,
                               GetInt(obj, "round", where));
      e.round = static_cast<int>(round);
      PARJOIN_ASSIGN_OR_RETURN(e.detail, GetString(obj, "detail", where));
      if (obj.count("server") > 0) {
        PARJOIN_ASSIGN_OR_RETURN(std::int64_t server,
                                 GetInt(obj, "server", where));
        e.server = static_cast<int>(server);
      }
      if (obj.count("factor") > 0) {
        PARJOIN_ASSIGN_OR_RETURN(e.factor, GetNumber(obj, "factor", where));
      }
      if (obj.count("moved") > 0) {
        PARJOIN_ASSIGN_OR_RETURN(e.moved, GetInt(obj, "moved", where));
      }
      PARJOIN_ASSIGN_OR_RETURN(e.wall_ms, GetNumber(obj, "wall_ms", where));
      parsed.events.push_back(std::move(e));
    } else {
      return InvalidArgumentError(where + ": unknown line type '" + type +
                                  "'");
    }
  }
  if (!saw_meta) {
    return InvalidArgumentError("trace: empty input (no meta line)");
  }
  return parsed;
}

}  // namespace obs
}  // namespace parjoin
