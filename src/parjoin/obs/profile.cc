#include "parjoin/obs/profile.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "parjoin/obs/json_util.h"

namespace parjoin {
namespace obs {
namespace {

int Log2Bucket(std::int64_t n) {
  int b = 0;
  for (std::int64_t v = n; v > 1; v >>= 1) ++b;
  return b;
}

std::string CellJson(const ProfileKey& key, const ProfileCell& cell) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << plan::AlgorithmName(key.algorithm)
     << "\",\"shape\":\"" << QueryShapeName(key.shape)
     << "\",\"p\":" << key.p << ",\"log2_n\":" << key.log2_n
     << ",\"runs\":" << cell.runs
     << ",\"sum_log_ratio\":" << JsonDouble(cell.sum_log_ratio)
     << ",\"sum_predicted\":" << JsonDouble(cell.sum_predicted)
     << ",\"sum_measured\":" << JsonDouble(cell.sum_measured)
     << ",\"sum_wall_ms\":" << JsonDouble(cell.sum_wall_ms) << '}';
  return os.str();
}

StatusOr<std::pair<ProfileKey, ProfileCell>> ParseCellLine(
    const std::string& line, const std::string& where) {
  PARJOIN_ASSIGN_OR_RETURN(FlatJsonObject obj,
                           ParseFlatJsonObject(line, where));
  ProfileKey key;
  ProfileCell cell;
  PARJOIN_ASSIGN_OR_RETURN(std::string algorithm,
                           GetString(obj, "algorithm", where));
  PARJOIN_ASSIGN_OR_RETURN(key.algorithm,
                           plan::AlgorithmFromName(algorithm));
  PARJOIN_ASSIGN_OR_RETURN(std::string shape,
                           GetString(obj, "shape", where));
  PARJOIN_ASSIGN_OR_RETURN(key.shape, QueryShapeFromName(shape));
  PARJOIN_ASSIGN_OR_RETURN(std::int64_t p, GetInt(obj, "p", where));
  if (p < 1) return InvalidArgumentError(where + ": p must be >= 1");
  key.p = static_cast<int>(p);
  PARJOIN_ASSIGN_OR_RETURN(std::int64_t log2_n,
                           GetInt(obj, "log2_n", where));
  if (log2_n < 0 || log2_n > 62) {
    return InvalidArgumentError(where + ": log2_n out of range");
  }
  key.log2_n = static_cast<int>(log2_n);
  PARJOIN_ASSIGN_OR_RETURN(cell.runs, GetInt(obj, "runs", where));
  if (cell.runs < 1) {
    return InvalidArgumentError(where + ": runs must be >= 1");
  }
  PARJOIN_ASSIGN_OR_RETURN(cell.sum_log_ratio,
                           GetNumber(obj, "sum_log_ratio", where));
  PARJOIN_ASSIGN_OR_RETURN(cell.sum_predicted,
                           GetNumber(obj, "sum_predicted", where));
  PARJOIN_ASSIGN_OR_RETURN(cell.sum_measured,
                           GetNumber(obj, "sum_measured", where));
  PARJOIN_ASSIGN_OR_RETURN(cell.sum_wall_ms,
                           GetNumber(obj, "sum_wall_ms", where));
  return std::make_pair(key, cell);
}

}  // namespace

void ProfileStore::RecordExecution(const plan::ExecutionRecord& record) {
  if (record.predicted_load <= 0 || record.measured_load <= 0) return;
  ProfileKey key;
  key.algorithm = record.algorithm;
  key.shape = record.shape;
  key.p = record.p;
  key.log2_n = Log2Bucket(record.input_size);
  ProfileCell& cell = cells_[key];
  cell.runs += 1;
  cell.sum_log_ratio += std::log(
      static_cast<double>(record.measured_load) / record.predicted_load);
  cell.sum_predicted += record.predicted_load;
  cell.sum_measured += static_cast<double>(record.measured_load);
  cell.sum_wall_ms += record.wall_ms;
}

void ProfileStore::Merge(const ProfileStore& other) {
  for (const auto& [key, add] : other.cells_) {
    ProfileCell& cell = cells_[key];
    cell.runs += add.runs;
    cell.sum_log_ratio += add.sum_log_ratio;
    cell.sum_predicted += add.sum_predicted;
    cell.sum_measured += add.sum_measured;
    cell.sum_wall_ms += add.sum_wall_ms;
  }
}

std::int64_t ProfileStore::total_runs() const {
  std::int64_t total = 0;
  for (const auto& [key, cell] : cells_) total += cell.runs;
  return total;
}

std::string ProfileStore::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"" << kProfileSchema
     << "\",\"cells\":" << cells_.size() << "}\n";
  for (const auto& [key, cell] : cells_) {
    os << CellJson(key, cell) << '\n';
  }
  return os.str();
}

StatusOr<ProfileStore> ProfileStore::FromJson(const std::string& text) {
  ProfileStore store;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  std::int64_t declared_cells = -1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = "profile line " + std::to_string(lineno);
    if (declared_cells < 0) {
      PARJOIN_ASSIGN_OR_RETURN(FlatJsonObject obj,
                               ParseFlatJsonObject(line, where));
      PARJOIN_ASSIGN_OR_RETURN(std::string schema,
                               GetString(obj, "schema", where));
      if (schema != kProfileSchema) {
        return InvalidArgumentError(where + ": unknown schema '" + schema +
                                    "' (want " + kProfileSchema + ")");
      }
      PARJOIN_ASSIGN_OR_RETURN(declared_cells,
                               GetInt(obj, "cells", where));
      if (declared_cells < 0) {
        return InvalidArgumentError(where + ": negative cell count");
      }
      continue;
    }
    PARJOIN_ASSIGN_OR_RETURN(auto parsed, ParseCellLine(line, where));
    if (store.cells_.count(parsed.first) > 0) {
      return InvalidArgumentError(where + ": duplicate cell");
    }
    store.cells_.emplace(parsed.first, parsed.second);
  }
  if (declared_cells < 0) {
    return InvalidArgumentError("profile: empty input (no header line)");
  }
  if (static_cast<std::int64_t>(store.cells_.size()) != declared_cells) {
    return InvalidArgumentError(
        "profile: header declares " + std::to_string(declared_cells) +
        " cell(s), file has " + std::to_string(store.cells_.size()));
  }
  return store;
}

Status ProfileStore::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open profile file for writing: " +
                                path);
  }
  out << ToJson();
  out.flush();
  if (!out) return DataLossError("failed writing profile file: " + path);
  return OkStatus();
}

StatusOr<ProfileStore> ProfileStore::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open profile file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

StatusOr<ProfileStore> ProfileStore::LoadOrEmpty(const std::string& path) {
  std::ifstream probe(path);
  if (!probe) return ProfileStore{};
  std::ostringstream buf;
  buf << probe.rdbuf();
  return FromJson(buf.str());
}

plan::CalibrationTable FitCalibration(const ProfileStore& profile,
                                      std::int64_t min_runs) {
  struct Fit {
    std::int64_t runs = 0;
    double sum_log_ratio = 0;
  };
  // Aggregated across p and size buckets: shape-specific and any-shape.
  std::map<std::pair<plan::Algorithm, QueryShape>, Fit> by_shape;
  std::map<plan::Algorithm, Fit> by_algorithm;
  for (const auto& [key, cell] : profile.cells()) {
    Fit& s = by_shape[{key.algorithm, key.shape}];
    s.runs += cell.runs;
    s.sum_log_ratio += cell.sum_log_ratio;
    Fit& a = by_algorithm[key.algorithm];
    a.runs += cell.runs;
    a.sum_log_ratio += cell.sum_log_ratio;
  }
  plan::CalibrationTable table;
  for (const auto& [algorithm, fit] : by_algorithm) {
    if (fit.runs < min_runs) continue;
    const double factor =
        std::exp(fit.sum_log_ratio / static_cast<double>(fit.runs));
    if (!std::isfinite(factor) || factor <= 0) continue;
    table.SetDefault(algorithm, factor, fit.runs);
  }
  for (const auto& [key, fit] : by_shape) {
    if (fit.runs < min_runs) continue;
    const double factor =
        std::exp(fit.sum_log_ratio / static_cast<double>(fit.runs));
    if (!std::isfinite(factor) || factor <= 0) continue;
    table.Set(key.first, key.second, factor, fit.runs);
  }
  return table;
}

Status SaveCalibrationFile(const plan::CalibrationTable& table,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError(
        "cannot open calibration file for writing: " + path);
  }
  out << "{\"schema\":\"" << kCalibrationSchema
      << "\",\"entries\":" << table.entries().size() << "}\n";
  for (const plan::CalibrationTable::Entry& e : table.entries()) {
    out << "{\"algorithm\":\"" << plan::AlgorithmName(e.algorithm)
        << "\",\"shape\":\""
        << (e.has_shape ? QueryShapeName(e.shape) : "*")
        << "\",\"factor\":" << JsonDouble(e.factor)
        << ",\"runs\":" << e.runs << "}\n";
  }
  out.flush();
  if (!out) {
    return DataLossError("failed writing calibration file: " + path);
  }
  return OkStatus();
}

StatusOr<plan::CalibrationTable> LoadCalibrationFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open calibration file: " + path);
  plan::CalibrationTable table;
  std::string line;
  int lineno = 0;
  std::int64_t declared = -1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where =
        path + " line " + std::to_string(lineno);
    PARJOIN_ASSIGN_OR_RETURN(FlatJsonObject obj,
                             ParseFlatJsonObject(line, where));
    if (declared < 0) {
      PARJOIN_ASSIGN_OR_RETURN(std::string schema,
                               GetString(obj, "schema", where));
      if (schema != kCalibrationSchema) {
        return InvalidArgumentError(where + ": unknown schema '" + schema +
                                    "' (want " + kCalibrationSchema + ")");
      }
      PARJOIN_ASSIGN_OR_RETURN(declared, GetInt(obj, "entries", where));
      if (declared < 0) {
        return InvalidArgumentError(where + ": negative entry count");
      }
      continue;
    }
    PARJOIN_ASSIGN_OR_RETURN(std::string algorithm,
                             GetString(obj, "algorithm", where));
    PARJOIN_ASSIGN_OR_RETURN(plan::Algorithm a,
                             plan::AlgorithmFromName(algorithm));
    PARJOIN_ASSIGN_OR_RETURN(std::string shape,
                             GetString(obj, "shape", where));
    PARJOIN_ASSIGN_OR_RETURN(double factor,
                             GetNumber(obj, "factor", where));
    if (!std::isfinite(factor) || factor <= 0) {
      return InvalidArgumentError(where +
                                  ": factor must be finite and positive");
    }
    PARJOIN_ASSIGN_OR_RETURN(std::int64_t runs, GetInt(obj, "runs", where));
    if (runs < 0) return InvalidArgumentError(where + ": negative runs");
    if (shape == "*") {
      table.SetDefault(a, factor, runs);
    } else {
      PARJOIN_ASSIGN_OR_RETURN(QueryShape s, QueryShapeFromName(shape));
      table.Set(a, s, factor, runs);
    }
  }
  if (declared < 0) {
    return InvalidArgumentError(path + ": empty calibration file");
  }
  if (static_cast<std::int64_t>(table.entries().size()) != declared) {
    return InvalidArgumentError(
        path + ": header declares " + std::to_string(declared) +
        " entr(ies), file has " + std::to_string(table.entries().size()));
  }
  return table;
}

}  // namespace obs
}  // namespace parjoin
