// Metrics registry: named counters, gauges, and fixed-bucket histograms
// behind the annotated Mutex wrappers (common/mutex.h), for the serving
// runtime's operational numbers — qps, latency quantiles, plan-cache
// hit/miss/eviction, admission-queue depth, recovery counts.
//
// Metrics are created through the registry and owned by it; the returned
// pointers stay valid for the registry's lifetime and every mutation is
// individually locked, so any thread may update any metric. Snapshot
// rendering (ToJson) emits metrics sorted by name — deterministic output
// for tests and diffable dumps.

#ifndef PARJOIN_OBS_METRICS_H_
#define PARJOIN_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "parjoin/common/mutex.h"
#include "parjoin/common/status.h"
#include "parjoin/common/thread_annotations.h"

namespace parjoin {
namespace obs {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    MutexLock lock(mu_);
    value_ += delta;
  }
  std::int64_t Value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  std::int64_t value_ GUARDED_BY(mu_) = 0;
};

class Gauge {
 public:
  void Set(double value) {
    MutexLock lock(mu_);
    value_ = value;
  }
  double Value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  double value_ GUARDED_BY(mu_) = 0;
};

// Fixed-bucket histogram: `bounds` are ascending upper bounds, with an
// implicit +inf bucket at the end. Quantile() interpolates linearly inside
// the bucket the quantile falls in (the usual fixed-bucket estimate; exact
// min/max are tracked separately and clamp the interpolation).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  std::int64_t Count() const;
  double Sum() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty
  // q in [0,1]; 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::int64_t> BucketCounts() const;

 private:
  double QuantileLocked(double q) const REQUIRES(mu_);

  const std::vector<double> bounds_;
  mutable Mutex mu_;
  std::vector<std::int64_t> counts_ GUARDED_BY(mu_);  // bounds_.size() + 1
  std::int64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0;
  double min_ GUARDED_BY(mu_) = 0;
  double max_ GUARDED_BY(mu_) = 0;
};

// Default latency buckets (milliseconds): sub-microsecond warm plans up
// through multi-second stragglers.
std::vector<double> DefaultLatencyBucketsMs();

class MetricsRegistry {
 public:
  // Get-or-create by name. The kind must be consistent: asking for an
  // existing name as a different kind is a CHECK failure (an internal
  // naming bug).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` is consumed on first creation and ignored on lookup.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  // max,p50,p90,p99}}} with names sorted.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace parjoin

#endif  // PARJOIN_OBS_METRICS_H_
