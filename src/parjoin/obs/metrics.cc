#include "parjoin/obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "parjoin/common/logging.h"
#include "parjoin/obs/json_util.h"

namespace parjoin {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  MutexLock lock(mu_);
  counts_[bucket] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += 1;
  sum_ += value;
}

std::int64_t Histogram::Count() const {
  MutexLock lock(mu_);
  return count_;
}

double Histogram::Sum() const {
  MutexLock lock(mu_);
  return sum_;
}

double Histogram::Min() const {
  MutexLock lock(mu_);
  return min_;
}

double Histogram::Max() const {
  MutexLock lock(mu_);
  return max_;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank then
  // interpolated within the covering bucket).
  const double rank = q * static_cast<double>(count_);
  std::int64_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const std::int64_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= rank) {
      // Bucket b covers the quantile. Interpolate between its bounds,
      // clamped to the observed min/max so sparse histograms don't
      // report values outside the data.
      const double lo = b == 0 ? min_ : bounds_[b - 1];
      const double hi = b == bounds_.size() ? max_ : bounds_[b];
      const double inside =
          counts_[b] == 0
              ? 0
              : (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(counts_[b]);
      const double v = lo + (hi - lo) * std::clamp(inside, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

double Histogram::Quantile(double q) const {
  MutexLock lock(mu_);
  return QuantileLocked(q);
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  MutexLock lock(mu_);
  return counts_;
}

std::vector<double> DefaultLatencyBucketsMs() {
  // 1 us .. 16 s in powers of 4.
  std::vector<double> bounds;
  for (double b = 1e-3; b <= 16e3; b *= 4) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  CHECK_EQ(gauges_.count(name) + histograms_.count(name), 0u)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  CHECK_EQ(counters_.count(name) + histograms_.count(name), 0u)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  CHECK_EQ(counters_.count(name) + gauges_.count(name), 0u)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  // Copy the maps' pointers under the lock, then read each metric through
  // its own lock (ToJson holding mu_ while calling metric getters would
  // be fine too — the metric locks are leaves — but this keeps the
  // registry lock short).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << JsonEscape(counters[i].first)
       << "\":" << counters[i].second->Value();
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << JsonEscape(gauges[i].first)
       << "\":" << JsonDouble(gauges[i].second->Value());
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) os << ',';
    const Histogram& h = *histograms[i].second;
    os << '"' << JsonEscape(histograms[i].first) << "\":{\"count\":"
       << h.Count() << ",\"sum\":" << JsonDouble(h.Sum())
       << ",\"min\":" << JsonDouble(h.Min())
       << ",\"max\":" << JsonDouble(h.Max())
       << ",\"p50\":" << JsonDouble(h.Quantile(0.5))
       << ",\"p90\":" << JsonDouble(h.Quantile(0.9))
       << ",\"p99\":" << JsonDouble(h.Quantile(0.99)) << '}';
  }
  os << "}}";
  return os.str();
}

Status MetricsRegistry::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open metrics output file: " + path);
  }
  out << ToJson() << '\n';
  out.flush();
  if (!out) {
    return DataLossError("failed writing metrics output file: " + path);
  }
  return OkStatus();
}

}  // namespace obs
}  // namespace parjoin
