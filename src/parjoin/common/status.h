// Status / StatusOr<T>: the typed error model for recoverable paths.
//
// CHECK is the right tool for internal invariants — a violated invariant is
// a bug and the process should die loudly. It is the wrong tool for data
// ingress: a malformed CSV, an inconsistent workload config, or a spec file
// describing a non-tree query are *user* errors and must surface as values
// the caller can report (query_runner exits non-zero instead of aborting).
// Status carries a code + message; StatusOr<T> is "a T or the Status
// explaining why there is no T". No exceptions are involved: errors travel
// by return value only.
//
// Conventions:
//  * Functions that can fail on external input return Status or StatusOr.
//  * CHECK_OK(expr) asserts a Status-returning expression succeeded — the
//    bridge for call sites whose inputs are internally guaranteed valid.
//  * PARJOIN_RETURN_IF_ERROR / PARJOIN_ASSIGN_OR_RETURN propagate errors
//    up Status-returning call chains without boilerplate.

#ifndef PARJOIN_COMMON_STATUS_H_
#define PARJOIN_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "parjoin/common/logging.h"

namespace parjoin {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kResourceExhausted,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }
  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.ToString();
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

// A T, or the Status explaining why there is no T. Accessing value() on an
// error StatusOr is a CHECK failure (an internal bug, not a user error).
template <typename T>
class StatusOr {
 public:
  // Implicit from an error Status (the common `return InvalidArg...` path).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed from OK without a value";
  }
  // Implicit from a value.
  StatusOr(T value)  // NOLINT
      : status_(), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "value() on error StatusOr: " << status_;
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "value() on error StatusOr: " << status_;
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "value() on error StatusOr: " << status_;
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace parjoin

// Asserts a Status-returning expression succeeded. For call sites whose
// inputs are internal invariants, not external data.
#define CHECK_OK(expr)                                            \
  do {                                                            \
    const ::parjoin::Status _parjoin_check_ok_status = (expr);    \
    CHECK(_parjoin_check_ok_status.ok())                          \
        << "CHECK_OK(" #expr "): " << _parjoin_check_ok_status;   \
  } while (0)

#define PARJOIN_RETURN_IF_ERROR(expr)                    \
  do {                                                   \
    ::parjoin::Status _parjoin_rie_status = (expr);      \
    if (!_parjoin_rie_status.ok()) {                     \
      return _parjoin_rie_status;                        \
    }                                                    \
  } while (0)

#define PARJOIN_STATUS_CONCAT_INNER_(a, b) a##b
#define PARJOIN_STATUS_CONCAT_(a, b) PARJOIN_STATUS_CONCAT_INNER_(a, b)

// PARJOIN_ASSIGN_OR_RETURN(auto x, FooOrError()): on error returns the
// Status from the enclosing function; on success moves the value into x.
#define PARJOIN_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  PARJOIN_ASSIGN_OR_RETURN_IMPL_(                                            \
      PARJOIN_STATUS_CONCAT_(_parjoin_status_or_, __LINE__), lhs, rexpr)

#define PARJOIN_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                   \
  if (!var.ok()) {                                      \
    return var.status();                                \
  }                                                     \
  lhs = std::move(var).value()

#endif  // PARJOIN_COMMON_STATUS_H_
