#include "parjoin/common/parallel_for.h"

#include <algorithm>
#include <atomic>

namespace parjoin {

namespace {

std::atomic<int> g_thread_override{0};

int DefaultThreads() {
  if (const char* env = std::getenv("PARJOIN_THREADS")) {
    const int requested = std::atoi(env);
    return std::max(1, requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

}  // namespace

int ParallelForThreads() {
  const int override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  static const int threads = DefaultThreads();
  return threads;
}

void SetParallelForThreads(int threads) {
  g_thread_override.store(std::max(0, threads), std::memory_order_relaxed);
}

}  // namespace parjoin
