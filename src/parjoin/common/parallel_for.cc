#include "parjoin/common/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace parjoin {

namespace {

std::atomic<int> g_thread_override{0};

int DefaultThreads() {
  if (const char* env = std::getenv("PARJOIN_THREADS")) {
    const int requested = std::atoi(env);
    return std::max(1, requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

thread_local bool t_on_pool_worker = false;

// The persistent pool. Workers block on cv_work_ between regions; a region
// is published as (body_, ctx_, participants_) under a generation bump.
// Worker w participates when w <= participants_; Run() cannot return until
// every participant decremented remaining_, so a worker can never observe
// a region after its context died, and a region can never be skipped by a
// participant (non-participants may skip generations freely).
class WorkerPool {
 public:
  void Run(int workers, void (*body)(void*, int), void* ctx) {
    // One region at a time: concurrent top-level ParallelFor calls (legal
    // before the pool existed) serialize instead of corrupting the
    // shared remaining_/participants_ handoff.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    EnsureWorkersLocked(workers - 1);
    body_ = body;
    ctx_ = ctx;
    participants_ = workers - 1;
    remaining_ = workers - 1;
    ++generation_;
    cv_work_.notify_all();
    lock.unlock();

    body(ctx, 0);

    lock.lock();
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
    body_ = nullptr;
    ctx_ = nullptr;
  }

 private:
  void EnsureWorkersLocked(int count) {
    while (static_cast<int>(threads_.size()) < count) {
      const int id = static_cast<int>(threads_.size()) + 1;
      threads_.emplace_back([this, id] { WorkerLoop(id); });
    }
  }

  void WorkerLoop(int id) {
    t_on_pool_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_work_.wait(lock, [&] { return generation_ != seen; });
      seen = generation_;
      if (id > participants_) continue;
      void (*body)(void*, int) = body_;
      void* ctx = ctx_;
      lock.unlock();
      body(ctx, id);
      lock.lock();
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }

  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;  // pool worker w runs threads_[w-1]
  std::uint64_t generation_ = 0;
  int participants_ = 0;
  int remaining_ = 0;
  void (*body_)(void*, int) = nullptr;
  void* ctx_ = nullptr;
};

WorkerPool& Pool() {
  // Leaked: pool threads block forever between regions and are never
  // joined; tearing them down at static destruction would race user code.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

}  // namespace

int ParallelForThreads() {
  const int override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  static const int threads = DefaultThreads();
  return threads;
}

void SetParallelForThreads(int threads) {
  g_thread_override.store(std::max(0, threads), std::memory_order_relaxed);
}

namespace internal_parallel {

bool OnPoolWorker() { return t_on_pool_worker; }

void RunOnPool(int workers, void (*body)(void*, int), void* ctx) {
  Pool().Run(workers, body, ctx);
}

}  // namespace internal_parallel

}  // namespace parjoin
