#include "parjoin/common/parallel_for.h"

#include <algorithm>

namespace parjoin {

int ParallelForThreads() {
  static const int threads = [] {
    if (const char* env = std::getenv("PARJOIN_THREADS")) {
      const int requested = std::atoi(env);
      return std::max(1, requested);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1, static_cast<int>(hw));
  }();
  return threads;
}

}  // namespace parjoin
