#include "parjoin/common/parallel_for.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parjoin/common/logging.h"
#include "parjoin/common/mutex.h"
#include "parjoin/common/thread_annotations.h"

namespace parjoin {

namespace {

std::atomic<int> g_thread_override{0};

// Number of ParallelFor regions currently executing (any thread). Only
// used to reject SetParallelForThreads mid-region; relaxed ordering is
// enough because the check is a misuse assertion, not a synchronization.
std::atomic<int> g_active_regions{0};

int DefaultThreads() {
  if (const char* env = std::getenv("PARJOIN_THREADS")) {
    const int requested = std::atoi(env);
    return std::max(1, requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

thread_local bool t_on_pool_worker = false;

// ParallelFor regions this thread is currently inside (its own calls, not
// pool work executed on behalf of another thread's region).
thread_local int t_region_depth = 0;

// The persistent pool. Workers block on cv_work_ between regions; a region
// is published as (body_, ctx_, participants_) under a generation bump.
// Worker w participates when w <= participants_; Run() cannot return until
// every participant decremented remaining_, so a worker can never observe
// a region after its context died, and a region can never be skipped by a
// participant (non-participants may skip generations freely).
//
// Lock discipline (machine-checked under clang -Wthread-safety):
// run_mu_ serializes whole regions and is always acquired before mu_;
// mu_ guards every piece of handoff state below.
class WorkerPool {
 public:
  void Run(int workers, void (*body)(void*, int), void* ctx)
      EXCLUDES(run_mu_, mu_) {
    // One region at a time: concurrent top-level ParallelFor calls (legal
    // before the pool existed) serialize instead of corrupting the
    // shared remaining_/participants_ handoff.
    MutexLock run_lock(run_mu_);
    mu_.Lock();
    EnsureWorkersLocked(workers - 1);
    body_ = body;
    ctx_ = ctx;
    participants_ = workers - 1;
    remaining_ = workers - 1;
    ++generation_;
    cv_work_.NotifyAll();
    mu_.Unlock();

    body(ctx, 0);

    mu_.Lock();
    while (remaining_ != 0) cv_done_.WaitOnce(mu_);
    body_ = nullptr;
    ctx_ = nullptr;
    mu_.Unlock();
  }

 private:
  void EnsureWorkersLocked(int count) REQUIRES(mu_) {
    while (static_cast<int>(threads_.size()) < count) {
      const int id = static_cast<int>(threads_.size()) + 1;
      threads_.emplace_back([this, id] { WorkerLoop(id); });
    }
  }

  void WorkerLoop(int id) EXCLUDES(mu_) {
    t_on_pool_worker = true;
    std::uint64_t seen = 0;
    mu_.Lock();
    while (true) {
      while (generation_ == seen) cv_work_.WaitOnce(mu_);
      seen = generation_;
      if (id > participants_) continue;
      void (*body)(void*, int) = body_;
      void* ctx = ctx_;
      mu_.Unlock();
      body(ctx, id);
      mu_.Lock();
      if (--remaining_ == 0) cv_done_.NotifyOne();
    }
  }

  Mutex run_mu_ ACQUIRED_BEFORE(mu_);
  Mutex mu_;
  CondVar cv_work_;
  CondVar cv_done_;
  // Pool worker w runs threads_[w-1]; only grown, under mu_.
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  int participants_ GUARDED_BY(mu_) = 0;
  int remaining_ GUARDED_BY(mu_) = 0;
  void (*body_)(void*, int) GUARDED_BY(mu_) = nullptr;
  void* ctx_ GUARDED_BY(mu_) = nullptr;
};

WorkerPool& Pool() {
  // Leaked: pool threads block forever between regions and are never
  // joined; tearing them down at static destruction would race user code.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

}  // namespace

int ParallelForThreads() {
  const int override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  static const int threads = DefaultThreads();
  return threads;
}

void SetParallelForThreads(int threads) {
  // Enforced invariant (was a comment until PR 3): reconfiguring the
  // thread count mid-region would change the strided chunking underneath
  // live workers and silently break bit-identical determinism, so it
  // fails loudly instead.
  CHECK(!internal_parallel::OnPoolWorker())
      << "SetParallelForThreads called from inside a ParallelFor pool "
         "worker; reconfigure between regions, from the main thread";
  CHECK_EQ(internal_parallel::ActiveRegions(), 0)
      << "SetParallelForThreads called while a ParallelFor region is "
         "running; reconfigure only between regions";
  g_thread_override.store(std::max(0, threads), std::memory_order_relaxed);
}

namespace internal_parallel {

bool OnPoolWorker() { return t_on_pool_worker; }

bool InNestedRegion() { return t_region_depth > 1; }

int ActiveRegions() {
  return g_active_regions.load(std::memory_order_relaxed);
}

RegionGuard::RegionGuard() {
  g_active_regions.fetch_add(1, std::memory_order_relaxed);
  ++t_region_depth;
}

RegionGuard::~RegionGuard() {
  --t_region_depth;
  g_active_regions.fetch_sub(1, std::memory_order_relaxed);
}

void RunOnPool(int workers, void (*body)(void*, int), void* ctx) {
  Pool().Run(workers, body, ctx);
}

}  // namespace internal_parallel

}  // namespace parjoin
