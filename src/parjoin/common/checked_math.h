// Overflow-guarded int64 arithmetic.
//
// Degree products and join-size accumulations (e.g. TwoWayJoin's
// J = Σ d_r(b)·d_s(b)) can overflow int64 on adversarially skewed
// instances; a wrapped value silently corrupts the heavy threshold and
// every routing decision downstream. These helpers either detect
// (MulOverflows/AddOverflows), clamp (SaturatingMul/SaturatingAdd), or
// fail loudly (CheckedMul/CheckedAdd abort via CHECK).

#ifndef PARJOIN_COMMON_CHECKED_MATH_H_
#define PARJOIN_COMMON_CHECKED_MATH_H_

#include <cstdint>
#include <limits>

#include "parjoin/common/logging.h"

namespace parjoin {

inline bool MulOverflows(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

inline bool AddOverflows(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}

// a*b clamped to the int64 range.
inline std::int64_t SaturatingMul(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (!__builtin_mul_overflow(a, b, &out)) return out;
  const bool negative = (a < 0) != (b < 0);
  return negative ? std::numeric_limits<std::int64_t>::min()
                  : std::numeric_limits<std::int64_t>::max();
}

// a+b clamped to the int64 range.
inline std::int64_t SaturatingAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (!__builtin_add_overflow(a, b, &out)) return out;
  return a < 0 ? std::numeric_limits<std::int64_t>::min()
               : std::numeric_limits<std::int64_t>::max();
}

// a*b, aborting with a diagnostic on overflow.
inline std::int64_t CheckedMul(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  CHECK(!__builtin_mul_overflow(a, b, &out))
      << "int64 overflow: " << a << " * " << b;
  return out;
}

// a+b, aborting with a diagnostic on overflow.
inline std::int64_t CheckedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  CHECK(!__builtin_add_overflow(a, b, &out))
      << "int64 overflow: " << a << " + " << b;
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_COMMON_CHECKED_MATH_H_
