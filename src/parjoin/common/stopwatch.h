// Wall-clock stopwatch for benchmark reporting. Load (tuples received) is
// the paper's cost measure; wall time is reported alongside for context.

#ifndef PARJOIN_COMMON_STOPWATCH_H_
#define PARJOIN_COMMON_STOPWATCH_H_

#include <chrono>

namespace parjoin {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_STOPWATCH_H_
