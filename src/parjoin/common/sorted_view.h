// Deterministic iteration over unordered associative containers.
//
// The iteration order of std::unordered_map/set is a property of the hash
// table (bucket count, insertion history, standard-library version), not
// of the data. Any loop that lets that order reach emitted tuples,
// virtual-server allocation, or floating-point folds silently ties the
// system's bit-identity contract to one standard library build.
// SortedEntries/SortedKeys materialize a key-sorted view first, making the
// order a function of the data alone.
//
// This header is the one blessed materialization point: the AST checker
// (tools/analysis/parjoin_analyzer, check determinism-unordered-iteration)
// skips it and flags order-sensitive unordered iteration everywhere else
// unless the loop carries a `// parjoin-analyzer: order-independent(...)`
// pragma.

#ifndef PARJOIN_COMMON_SORTED_VIEW_H_
#define PARJOIN_COMMON_SORTED_VIEW_H_

#include <algorithm>
#include <utility>
#include <vector>

namespace parjoin {

namespace internal_sorted_view {

template <typename K, typename V>
const K& KeyOf(const std::pair<const K, V>& kv) {
  return kv.first;
}

template <typename K>
const K& KeyOf(const K& key) {
  return key;
}

}  // namespace internal_sorted_view

// Key-sorted copies of a map's (key, mapped) pairs. Keys must be
// strict-weak-orderable by operator<.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedEntries(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      out;
  out.reserve(m.size());
  for (const auto& kv : m) out.emplace_back(kv.first, kv.second);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// Sorted copies of the keys of a map or set.
template <typename Container>
std::vector<typename Container::key_type> SortedKeys(const Container& c) {
  std::vector<typename Container::key_type> out;
  out.reserve(c.size());
  for (const auto& item : c) {
    out.push_back(internal_sorted_view::KeyOf(item));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_COMMON_SORTED_VIEW_H_
