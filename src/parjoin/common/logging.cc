#include "parjoin/common/logging.h"

#include <cstdlib>

#include "parjoin/common/mutex.h"

namespace parjoin {
namespace internal_logging {
namespace {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

// Serializes emission so concurrent log lines (e.g. from ParallelFor
// bodies) never interleave mid-line on stderr. Annotated so lock sites are
// visible to clang's thread-safety analysis.
Mutex& LogMutex() {
  static Mutex* mu = new Mutex;
  return *mu;
}

}  // namespace

Severity MinLogSeverity() {
  static Severity min_severity = [] {
    const char* env = std::getenv("PARJOIN_LOG_LEVEL");
    if (env == nullptr) return Severity::kInfo;
    switch (std::atoi(env)) {
      case 1:
        return Severity::kWarning;
      case 2:
        return Severity::kError;
      case 3:
        return Severity::kFatal;
      default:
        return Severity::kInfo;
    }
  }();
  return min_severity;
}

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* c = file; *c != '\0'; ++c) {
    if (*c == '/') base = c + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == Severity::kFatal) {
    MutexLock lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace parjoin
