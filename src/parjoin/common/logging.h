// Minimal logging and assertion macros in the spirit of glog.
//
// LOG(INFO) << "message";          stream-style logging with severity.
// CHECK(cond) << "detail";         aborts with a message when cond is false.
// CHECK_EQ/NE/LT/LE/GT/GE(a, b)    comparison checks printing both operands.
//
// CHECK macros are always on (they guard internal invariants of the library,
// not user input validation). They abort via std::abort after flushing the
// diagnostic to stderr.

#ifndef PARJOIN_COMMON_LOGGING_H_
#define PARJOIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace parjoin {
namespace internal_logging {

enum class Severity { kInfo, kWarning, kError, kFatal };

// Accumulates one log line and emits it (to stderr) on destruction.
// Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

// Helper that swallows the stream when a CHECK passes; keeps the macro an
// expression with no dangling-else pitfalls.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

// Returns the minimum severity that is actually emitted. Controlled by the
// PARJOIN_LOG_LEVEL environment variable (0=INFO .. 3=FATAL); default INFO.
Severity MinLogSeverity();

}  // namespace internal_logging
}  // namespace parjoin

#define PARJOIN_LOG_INFO \
  ::parjoin::internal_logging::LogMessage( \
      ::parjoin::internal_logging::Severity::kInfo, __FILE__, __LINE__)
#define PARJOIN_LOG_WARNING \
  ::parjoin::internal_logging::LogMessage( \
      ::parjoin::internal_logging::Severity::kWarning, __FILE__, __LINE__)
#define PARJOIN_LOG_ERROR \
  ::parjoin::internal_logging::LogMessage( \
      ::parjoin::internal_logging::Severity::kError, __FILE__, __LINE__)
#define PARJOIN_LOG_FATAL \
  ::parjoin::internal_logging::LogMessage( \
      ::parjoin::internal_logging::Severity::kFatal, __FILE__, __LINE__)

#define LOG(severity) PARJOIN_LOG_##severity.stream()

#define CHECK(condition)                                        \
  (condition) ? (void)0                                         \
              : ::parjoin::internal_logging::LogMessageVoidify() & \
                    PARJOIN_LOG_FATAL.stream()                  \
                        << "Check failed: " #condition " "

#define PARJOIN_CHECK_OP(name, op, a, b)                             \
  ((a)op(b)) ? (void)0                                               \
             : ::parjoin::internal_logging::LogMessageVoidify() &    \
                   PARJOIN_LOG_FATAL.stream()                        \
                       << "Check failed: " #a " " #op " " #b " ("    \
                       << (a) << " vs. " << (b) << ") "

#define CHECK_EQ(a, b) PARJOIN_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) PARJOIN_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) PARJOIN_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) PARJOIN_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) PARJOIN_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) PARJOIN_CHECK_OP(GE, >=, a, b)

#endif  // PARJOIN_COMMON_LOGGING_H_
