// Row: the value tuple flowing through relations and MPC messages.
//
// A Row is an ordered sequence of attribute values (64-bit integers). Almost
// every row in the system is short — the paper's query class has binary
// relations, so rows of 1-3 values dominate — hence values are stored inline
// up to a small capacity with a heap fallback for wide intermediate rows
// (e.g. materialized output tuples of tree queries).

#ifndef PARJOIN_COMMON_ROW_H_
#define PARJOIN_COMMON_ROW_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <ostream>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"

namespace parjoin {

// The domain of every attribute. Domains are application-defined; the
// library only requires values to be totally ordered and hashable.
using Value = std::int64_t;

class Row {
 public:
  static constexpr int kInlineCapacity = 6;

  Row() : size_(0), capacity_(kInlineCapacity) {}

  explicit Row(int size) : Row() { Resize(size); }

  Row(std::initializer_list<Value> values) : Row() {
    Reserve(static_cast<int>(values.size()));
    for (Value v : values) PushBack(v);
  }

  Row(const Row& other) : Row() { CopyFrom(other); }

  Row(Row&& other) noexcept : Row() { MoveFrom(other); }

  Row& operator=(const Row& other) {
    if (this != &other) {
      Clear();
      CopyFrom(other);
    }
    return *this;
  }

  Row& operator=(Row&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(other);
    }
    return *this;
  }

  ~Row() { FreeHeap(); }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value operator[](int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, size_);
    return data()[i];
  }

  Value& operator[](int i) {
    CHECK_GE(i, 0);
    CHECK_LT(i, size_);
    return data()[i];
  }

  const Value* data() const {
    return capacity_ == kInlineCapacity ? inline_ : heap_;
  }
  Value* data() { return capacity_ == kInlineCapacity ? inline_ : heap_; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  void PushBack(Value v) {
    if (size_ == capacity_) Grow(size_ + 1);
    data()[size_++] = v;
  }

  void Resize(int new_size) {
    CHECK_GE(new_size, 0);
    if (new_size > capacity_) Grow(new_size);
    for (int i = size_; i < new_size; ++i) data()[i] = 0;
    size_ = new_size;
  }

  void Reserve(int capacity) {
    if (capacity > capacity_) Grow(capacity);
  }

  void Clear() { size_ = 0; }

  // Appends all values of other.
  void Append(const Row& other) {
    Reserve(size_ + other.size_);
    for (Value v : other) PushBack(v);
  }

  // Returns the sub-row at the given positions.
  template <typename Positions>
  Row Select(const Positions& positions) const {
    Row out;
    out.Reserve(static_cast<int>(positions.size()));
    for (int pos : positions) out.PushBack((*this)[pos]);
    return out;
  }

  std::uint64_t Hash(std::uint64_t seed = 0x5bf03635d1a3a6c3ULL) const {
    std::uint64_t h = seed;
    for (Value v : *this) h = HashCombine(h, static_cast<std::uint64_t>(v));
    return h;
  }

  friend bool operator==(const Row& a, const Row& b) {
    if (a.size_ != b.size_) return false;
    return std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const Row& a, const Row& b) { return !(a == b); }
  friend bool operator<(const Row& a, const Row& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

  friend std::ostream& operator<<(std::ostream& os, const Row& row) {
    os << "(";
    for (int i = 0; i < row.size(); ++i) {
      if (i > 0) os << ", ";
      os << row[i];
    }
    return os << ")";
  }

 private:
  void Grow(int min_capacity) {
    int new_capacity = std::max(min_capacity, capacity_ * 2);
    Value* new_heap = new Value[static_cast<size_t>(new_capacity)];
    std::memcpy(new_heap, data(), sizeof(Value) * static_cast<size_t>(size_));
    FreeHeap();
    heap_ = new_heap;
    capacity_ = new_capacity;
  }

  void FreeHeap() {
    if (capacity_ != kInlineCapacity) {
      delete[] heap_;
      capacity_ = kInlineCapacity;
    }
  }

  void CopyFrom(const Row& other) {
    Reserve(other.size_);
    std::memcpy(data(), other.data(),
                sizeof(Value) * static_cast<size_t>(other.size_));
    size_ = other.size_;
  }

  // Precondition: *this owns no heap buffer.
  void MoveFrom(Row& other) {
    if (other.capacity_ != kInlineCapacity) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.capacity_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      capacity_ = kInlineCapacity;
      std::memcpy(inline_, other.inline_,
                  sizeof(Value) * static_cast<size_t>(other.size_));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  int size_;
  int capacity_;  // == kInlineCapacity iff storage is inline
  union {
    Value inline_[kInlineCapacity];
    Value* heap_;
  };
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_ROW_H_
