// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// clang Thread Safety Analysis attributes from thread_annotations.h, so
// `GUARDED_BY(mu_)` members and `REQUIRES(mu_)` helpers are machine-checked
// under -Wthread-safety. libstdc++'s own types carry no annotations, which
// is why the library synchronizes through these instead of using
// std::lock_guard / std::unique_lock directly.
//
//   Mutex mu;                 // a capability
//   int x GUARDED_BY(mu);     // data it protects
//   { MutexLock lock(mu); x = 1; }            // scoped acquire
//   mu.Lock(); ...; mu.Unlock();              // manual, analysis-balanced
//   cv.Wait(mu, [&] { return x == 1; });      // REQUIRES(mu), atomic wait

#ifndef PARJOIN_COMMON_MUTEX_H_
#define PARJOIN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "parjoin/common/thread_annotations.h"

namespace parjoin {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  // For CondVar; bypasses the analysis on purpose (the wait loop's
  // release/reacquire happens inside std::condition_variable).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock holding `mu` for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex, in the style of
// absl::CondVar: WaitOnce() requires the mutex held and holds it again on
// return, so the caller's `while (!pred()) cv.WaitOnce(mu);` loop keeps
// every guarded read inside an analysis-visible critical section (and
// handles spurious wakeups, as any cv loop must).
class CondVar {
 public:
  // Blocks until notified (or spuriously woken). Callers loop on their
  // predicate.
  void WaitOnce(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // Suppression justified: the adopt/release dance below is invisible to
    // the analysis but preserves the held-on-entry/held-on-exit contract.
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still held; ownership returns to the caller
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_MUTEX_H_
