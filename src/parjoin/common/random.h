// Deterministic pseudo-random number generation for the whole library.
//
// Every source of randomness (workload generation, KMV hash seeds, exchange
// hashing) derives from explicit 64-bit seeds, so tests and benchmarks are
// exactly reproducible. We use SplitMix64 for seed expansion and
// xoshiro256** for the main stream.

#ifndef PARJOIN_COMMON_RANDOM_H_
#define PARJOIN_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "parjoin/common/logging.h"

namespace parjoin {

// SplitMix64 step: maps a state to the next state and a well-mixed output.
// Also usable as a standalone 64-bit mixer / hash finalizer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    CHECK_LE(lo, hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(Next());  // full range
    return lo + static_cast<std::int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability prob.
  bool Bernoulli(double prob) { return UniformDouble() < prob; }

  // Derives an independent child generator; useful for giving each logical
  // component its own stream.
  Rng Fork() { return Rng(Next()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

// Samples from a Zipf(s) distribution over {1, ..., n} using precomputed
// cumulative weights (O(log n) per sample after O(n) setup). Skew parameter
// s = 0 is uniform; larger s concentrates mass on small ranks.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double skew) : cdf_(static_cast<size_t>(n)) {
    CHECK_GT(n, 0);
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (auto& v : cdf_) v /= total;
  }

  // Returns a rank in [1, n].
  std::int64_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::int64_t>(lo) + 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_RANDOM_H_
