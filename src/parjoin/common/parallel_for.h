// ParallelFor: deterministic multi-threaded execution of independent
// per-index work.
//
// The MPC simulator's local computation (one hash join per virtual
// server, one local sort per part, one routing pass per source part) is
// embarrassingly parallel: every index writes only its own output slot.
// ParallelFor runs fn(i) for i in [0, n) on up to HardwareThreads()
// threads with static chunking — results are bit-identical to sequential
// execution because iterations never share state. Thread count can be
// overridden with PARJOIN_THREADS (0 or 1 disables threading; useful for
// debugging) or at runtime with SetParallelForThreads (tests and benches
// that compare threaded vs. sequential execution in one process).
//
// Workers live on a persistent process-wide pool: the first ParallelFor
// spawns them, later calls reuse them (a condition-variable handoff
// instead of a thread spawn+join per call — the simulator issues tens of
// thousands of small regions per query). The calling thread always
// executes worker 0's chunk; pool threads execute workers 1..W-1 with the
// same strided assignment as before, so outputs stay bit-identical at any
// PARJOIN_THREADS setting. A ParallelFor issued from inside another
// region (nested parallelism — on a pool worker or on the calling thread
// itself) runs sequentially on the issuing thread.

#ifndef PARJOIN_COMMON_PARALLEL_FOR_H_
#define PARJOIN_COMMON_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdlib>

namespace parjoin {

// Number of worker threads ParallelFor will use (>= 1).
int ParallelForThreads();

// Overrides the thread count for the current process. threads <= 0
// restores the default (PARJOIN_THREADS env var, else hardware
// concurrency). Calling it while any ParallelFor region is running — from
// a pool worker, from a region body, or from another thread — is a fatal
// error (CHECK): a mid-region reconfiguration would change the strided
// chunking underneath live workers. Reconfigure between regions only.
void SetParallelForThreads(int threads);

namespace internal_parallel {

// True on a pool worker thread; nested ParallelFor calls detect this and
// run sequentially instead of deadlocking on the shared pool.
bool OnPoolWorker();

// True when the calling thread is already inside a ParallelFor region it
// started itself (region depth > 1). The calling thread executes worker
// 0's chunk while holding the pool's region lock, so a nested ParallelFor
// there must also run sequentially — re-entering the pool would
// self-deadlock.
bool InNestedRegion();

// Number of ParallelFor regions currently executing, across all threads.
// SetParallelForThreads CHECKs this is zero.
int ActiveRegions();

// RAII marker bracketing one ParallelFor region (sequential or pooled);
// keeps ActiveRegions() exact so the reconfiguration invariant is
// enforceable.
class RegionGuard {
 public:
  RegionGuard();
  ~RegionGuard();
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

// Runs body(ctx, w) for w in [0, workers): w = 0 on the calling thread,
// w >= 1 on the persistent pool. Returns after every worker finished.
// Requires workers >= 2 (callers handle the sequential cases).
void RunOnPool(int workers, void (*body)(void*, int), void* ctx);

}  // namespace internal_parallel

// Runs fn(i) for every i in [0, n). fn must not touch state shared
// across iterations (other than read-only data).
template <typename Fn>
void ParallelFor(int n, Fn fn) {
  if (n <= 0) return;
  const internal_parallel::RegionGuard region;
  const int threads = ParallelForThreads();
  if (n <= 1 || threads <= 1 || internal_parallel::OnPoolWorker() ||
      internal_parallel::InNestedRegion()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers = std::min(threads, n);
  struct Ctx {
    Fn* fn;
    int n;
    int workers;
  } ctx{&fn, n, workers};
  internal_parallel::RunOnPool(
      workers,
      [](void* raw, int w) {
        Ctx* c = static_cast<Ctx*>(raw);
        // Static strided chunking: deterministic assignment, good balance
        // for the skewed part sizes the algorithms produce.
        for (int i = w; i < c->n; i += c->workers) (*c->fn)(i);
      },
      &ctx);
}

}  // namespace parjoin

#endif  // PARJOIN_COMMON_PARALLEL_FOR_H_
