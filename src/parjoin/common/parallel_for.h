// ParallelFor: deterministic multi-threaded execution of independent
// per-index work.
//
// The MPC simulator's local computation (one hash join per virtual
// server, one local sort per part, one routing pass per source part) is
// embarrassingly parallel: every index writes only its own output slot.
// ParallelFor runs fn(i) for i in [0, n) on up to HardwareThreads()
// threads with static chunking — results are bit-identical to sequential
// execution because iterations never share state. Thread count can be
// overridden with PARJOIN_THREADS (0 or 1 disables threading; useful for
// debugging) or at runtime with SetParallelForThreads (tests and benches
// that compare threaded vs. sequential execution in one process).

#ifndef PARJOIN_COMMON_PARALLEL_FOR_H_
#define PARJOIN_COMMON_PARALLEL_FOR_H_

#include <cstdlib>
#include <thread>
#include <vector>

namespace parjoin {

// Number of worker threads ParallelFor will use (>= 1).
int ParallelForThreads();

// Overrides the thread count for the current process. threads <= 0
// restores the default (PARJOIN_THREADS env var, else hardware
// concurrency). Not safe to call while a ParallelFor is running.
void SetParallelForThreads(int threads);

// Runs fn(i) for every i in [0, n). fn must not touch state shared
// across iterations (other than read-only data).
template <typename Fn>
void ParallelFor(int n, Fn fn) {
  const int threads = ParallelForThreads();
  if (n <= 1 || threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers = std::min(threads, n);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Static strided chunking: deterministic assignment, good balance
      // for the skewed part sizes the algorithms produce.
      for (int i = w; i < n; i += workers) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace parjoin

#endif  // PARJOIN_COMMON_PARALLEL_FOR_H_
