// Console table rendering for benchmark reports.
//
// Benches print paper-bound vs. measured rows in aligned ASCII tables:
//
//   TablePrinter t({"N", "OUT", "L_yann", "L_ours", "ratio"});
//   t.AddRow({Fmt(n), Fmt(out), ...});
//   t.Print(std::cout);

#ifndef PARJOIN_COMMON_TABLE_PRINTER_H_
#define PARJOIN_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace parjoin {

// Formats a number compactly (integers as-is, doubles with 3 significant
// decimals, large values with thousands separators).
std::string Fmt(std::int64_t v);
std::string Fmt(double v);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal separator line before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_TABLE_PRINTER_H_
