// Clang Thread Safety Analysis annotation macros.
//
// These attach compile-time lock-discipline contracts to mutexes and the
// data they protect: GUARDED_BY(mu) on a member means every access must
// hold mu; REQUIRES(mu) on a function means callers must hold mu at entry;
// ACQUIRE/RELEASE document lock transitions so clang can verify every path
// balances. Compiling with clang and -Wthread-safety (-Werror in CI) turns
// a violated contract into a build failure; on other compilers (or without
// the attribute) every macro expands to nothing, so gcc builds are
// unaffected.
//
// The macro set and spelling follow the canonical clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Use the
// annotated wrappers in parjoin/common/mutex.h rather than raw std::mutex:
// the analysis only understands types whose lock/unlock functions carry
// these attributes.

#ifndef PARJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define PARJOIN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define PARJOIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PARJOIN_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// Declares a type to be a lockable capability ("mutex"-like).
#define CAPABILITY(x) PARJOIN_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY PARJOIN_THREAD_ANNOTATION(scoped_lockable)

// Data members: may only be accessed while holding the given mutex.
#define GUARDED_BY(x) PARJOIN_THREAD_ANNOTATION(guarded_by(x))

// Pointer members: the pointee may only be accessed holding the mutex.
#define PT_GUARDED_BY(x) PARJOIN_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold (REQUIRES) / must NOT hold (EXCLUDES)
// the listed capabilities at entry.
#define REQUIRES(...) \
  PARJOIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) PARJOIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release the listed capabilities.
#define ACQUIRE(...) PARJOIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) PARJOIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PARJOIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Returns a reference to the capability protecting the returned data.
#define RETURN_CAPABILITY(x) PARJOIN_THREAD_ANNOTATION(lock_returned(x))

// Lock-ordering documentation (checked under -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  PARJOIN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PARJOIN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch: disables the analysis for one function. Every use must
// carry a one-line justification comment at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  PARJOIN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PARJOIN_COMMON_THREAD_ANNOTATIONS_H_
