// Seeded 64-bit hashing utilities.
//
// The MPC primitives and the KMV sketch need families of hash functions that
// are (a) fast, (b) well mixed, and (c) reproducible from a seed. We use
// multiply-xor mixing in the style of MurmurHash3's finalizer, keyed by a
// per-instance seed expanded through SplitMix64.

#ifndef PARJOIN_COMMON_HASH_H_
#define PARJOIN_COMMON_HASH_H_

#include <cstdint>

#include "parjoin/common/random.h"

namespace parjoin {

// MurmurHash3 64-bit finalizer; a strong bijective mixer.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines an accumulated hash with the hash of one more value.
inline std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  return Mix64(h ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

// A seeded hash function over 64-bit keys. Different seeds give (for our
// purposes) independent functions; used by KMV repetitions and exchange
// partitioning.
class SeededHash {
 public:
  explicit SeededHash(std::uint64_t seed) {
    std::uint64_t sm = seed;
    k0_ = SplitMix64(sm);
    k1_ = SplitMix64(sm);
  }

  std::uint64_t operator()(std::uint64_t x) const {
    return Mix64((x + k0_) * 0x9e3779b97f4a7c15ULL ^ k1_);
  }

 private:
  std::uint64_t k0_;
  std::uint64_t k1_;
};

}  // namespace parjoin

#endif  // PARJOIN_COMMON_HASH_H_
