#include "parjoin/common/table_printer.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "parjoin/common/logging.h"

namespace parjoin {

std::string Fmt(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const int n = static_cast<int>(digits.size());
  for (int i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[static_cast<size_t>(i)]);
  }
  if (v < 0) out.insert(out.begin(), '-');
  return out;
}

std::string Fmt(double v) {
  char buf[64];
  if (std::fabs(v) >= 1000 && std::fabs(v - std::round(v)) < 1e-9) {
    return Fmt(static_cast<std::int64_t>(std::llround(v)));
  }
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_separator = [&] {
    os << "+";
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << "-";
      os << "+";
    }
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i];
      for (size_t j = cells[i].size(); j < widths[i]; ++j) os << " ";
      os << " |";
    }
    os << "\n";
  };

  print_separator();
  print_cells(headers_);
  print_separator();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_separator();
    } else {
      print_cells(row);
    }
  }
  print_separator();
}

}  // namespace parjoin
