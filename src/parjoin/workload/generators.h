// Workload generators for every query class in the paper, plus the hard
// instances of the §3.3 lower bounds.
//
// Two families:
//  * Random — each relation is a set of distinct uniform (or Zipf-skewed)
//    pairs over configurable domains. OUT is emergent; benches report the
//    measured value.
//  * Block — the join graph is a disjoint union of complete-bipartite
//    blocks, which makes OUT a closed-form function of the block geometry.
//    Used for the Table 1 sweeps where OUT must be controlled
//    independently of N (and matching the Theorem 3 construction when the
//    block count is 1).
//
// All generators return TreeInstance<S> with the data pre-distributed
// evenly (the model's initial placement) and annotations drawn uniformly
// from [1, max_weight] — valid inputs for every shipped semiring.

#ifndef PARJOIN_WORKLOAD_GENERATORS_H_
#define PARJOIN_WORKLOAD_GENERATORS_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "parjoin/common/checked_math.h"
#include "parjoin/common/logging.h"
#include "parjoin/common/random.h"
#include "parjoin/common/status.h"
#include "parjoin/query/instance.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

namespace parjoin {

// Attribute-id conventions used by the canned queries below.
//   Matrix multiplication: A=0, B=1, C=2; y = {A, C}.
//   Line query over n relations: A1=0 ... A_{n+1}=n; y = {0, n}.
//   Star query over n relations: A_i = i for i in [1, n], B = 0; y = {1..n}.

namespace internal_workload {

// Config validation helpers. Generator configs come from bench sweeps and
// (via query_runner) from users, so inconsistencies are reported as
// Status; the generators themselves CHECK_OK after the caller had its
// chance to handle the error.

inline Status ValidateRelationDraw(std::int64_t count, std::int64_t dom_u,
                                   std::int64_t dom_v) {
  if (count < 0) {
    return InvalidArgumentError("negative tuple count " +
                                std::to_string(count));
  }
  if (dom_u < 1 || dom_v < 1) {
    return InvalidArgumentError("empty attribute domain (" +
                                std::to_string(dom_u) + " x " +
                                std::to_string(dom_v) + ")");
  }
  // SaturatingMul: the domain product easily overflows int64 for the wide
  // domains benches use; saturation keeps the comparison meaningful.
  if (count > SaturatingMul(dom_u, dom_v)) {
    return InvalidArgumentError(
        "relation of " + std::to_string(count) +
        " distinct tuples cannot fit in a " + std::to_string(dom_u) + " x " +
        std::to_string(dom_v) + " domain");
  }
  return OkStatus();
}

inline Status ValidateArity(int arity) {
  if (arity < 2) {
    return InvalidArgumentError("query arity must be >= 2, got " +
                                std::to_string(arity));
  }
  return OkStatus();
}

inline Status ValidateAtLeast(std::int64_t value, std::int64_t min,
                              const char* what) {
  if (value < min) {
    return InvalidArgumentError(std::string(what) + " must be >= " +
                                std::to_string(min) + ", got " +
                                std::to_string(value));
  }
  return OkStatus();
}

inline Status ValidatePositive(std::int64_t value, const char* what) {
  return ValidateAtLeast(value, 1, what);
}

// Draws a random annotation that is a valid carrier value for S. The
// Boolean semiring's carrier is {0,1}: present tuples get One().
template <SemiringC S>
typename S::ValueType RandomWeight(Rng& rng, std::int64_t max_weight) {
  // Always consume one draw so the generated instance (tuple set) is
  // identical across semirings for a fixed seed.
  const std::int64_t draw = rng.Uniform(1, max_weight);
  if constexpr (std::is_same_v<S, BooleanSemiring>) {
    return S::One();
  } else if constexpr (std::is_convertible_v<std::int64_t,
                                             typename S::ValueType>) {
    return static_cast<typename S::ValueType>(draw);
  } else {
    // Struct carriers (e.g. top-k semirings): callers rewrite annotations.
    return S::One();
  }
}

// Draws `count` distinct (u, v) pairs; u uniform over [0, dom_u),
// v Zipf(skew_v)-skewed over [0, dom_v) (skew 0 = uniform).
template <SemiringC S>
Relation<S> RandomBinaryRelation(Schema schema, std::int64_t count,
                                 std::int64_t dom_u, std::int64_t dom_v,
                                 double skew_v, std::int64_t max_weight,
                                 Rng& rng) {
  CHECK_OK(ValidateRelationDraw(count, dom_u, dom_v));
  Relation<S> rel(std::move(schema));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<size_t>(count) * 2);
  ZipfSampler zipf(dom_v, skew_v);
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(seen.size()) < count) {
    // Fall back to denser sampling if rejection stalls (tiny domains).
    // A stall is an internal sampling bug, not an input error.
    CHECK_LT(attempts++, 100 * count + 1000)  // parjoin-lint: allow(ingress-status)
        << "generator stalled";
    const Value u = rng.Uniform(0, dom_u - 1);
    const Value v = skew_v == 0 ? rng.Uniform(0, dom_v - 1)
                                : zipf.Sample(rng) - 1;
    const std::uint64_t key = static_cast<std::uint64_t>(u) * 0x1p32 +
                              static_cast<std::uint64_t>(v);
    if (!seen.insert(key).second) continue;
    rel.Add(Row{u, v}, RandomWeight<S>(rng, max_weight));
  }
  return rel;
}

}  // namespace internal_workload

// --- Matrix multiplication ---------------------------------------------------

struct MatMulGenConfig {
  std::int64_t n1 = 1000;
  std::int64_t n2 = 1000;
  std::int64_t dom_a = 200;
  std::int64_t dom_b = 200;
  std::int64_t dom_c = 200;
  double skew_b = 0;  // Zipf skew of the join attribute B
  std::int64_t max_weight = 10;
  std::uint64_t seed = 1;

  Status Validate() const {
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidateRelationDraw(n1, dom_a, dom_b));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidateRelationDraw(n2, dom_c, dom_b));
    return internal_workload::ValidatePositive(max_weight, "max_weight");
  }
};

template <SemiringC S>
TreeInstance<S> GenMatMulRandom(const mpc::Cluster& cluster,
                                const MatMulGenConfig& cfg) {
  CHECK_OK(cfg.Validate());
  Rng rng(cfg.seed);
  TreeInstance<S> instance{
      JoinTree({{0, 1}, {1, 2}}, {0, 2}),
      {}};
  instance.relations.push_back(Distribute(
      cluster, internal_workload::RandomBinaryRelation<S>(
                   Schema{0, 1}, cfg.n1, cfg.dom_a, cfg.dom_b, cfg.skew_b,
                   cfg.max_weight, rng)));
  instance.relations.push_back(Distribute(
      cluster, internal_workload::RandomBinaryRelation<S>(
                   Schema{2, 1}, cfg.n2, cfg.dom_c, cfg.dom_b, cfg.skew_b,
                   cfg.max_weight, rng)));
  // Present R2 with schema (B, C).
  auto& r2 = instance.relations[1];
  for (auto& part : r2.data.parts()) {
    for (auto& t : part) std::swap(t.row[0], t.row[1]);
  }
  r2.schema = Schema{1, 2};
  return instance;
}

// Block geometry: `blocks` disjoint complete-bipartite blocks, each with
// side_a A-values, side_b B-values, side_c C-values. Exact sizes:
//   N1 = blocks*side_a*side_b, N2 = blocks*side_b*side_c,
//   OUT = blocks*side_a*side_c.
struct MatMulBlockConfig {
  std::int64_t blocks = 4;
  std::int64_t side_a = 8;
  std::int64_t side_b = 4;
  std::int64_t side_c = 8;
  std::int64_t max_weight = 10;
  std::uint64_t seed = 1;

  std::int64_t n1() const { return blocks * side_a * side_b; }
  std::int64_t n2() const { return blocks * side_b * side_c; }
  std::int64_t out() const { return blocks * side_a * side_c; }

  Status Validate() const {
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(blocks, "blocks"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_a, "side_a"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_b, "side_b"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_c, "side_c"));
    return internal_workload::ValidatePositive(max_weight, "max_weight");
  }

  // Chooses a geometry matching the targets within rounding: N1 = N2 ~ n,
  // OUT ~ out, split into ~`blocks` blocks.
  static MatMulBlockConfig FromTargets(std::int64_t n, std::int64_t out,
                                       std::int64_t blocks = 4,
                                       std::uint64_t seed = 1);
};

template <SemiringC S>
TreeInstance<S> GenMatMulBlocks(const mpc::Cluster& cluster,
                                const MatMulBlockConfig& cfg) {
  CHECK_OK(cfg.Validate());
  Rng rng(cfg.seed);
  Relation<S> r1(Schema{0, 1});
  Relation<S> r2(Schema{1, 2});
  for (std::int64_t blk = 0; blk < cfg.blocks; ++blk) {
    const Value a0 = blk * cfg.side_a;
    const Value b0 = blk * cfg.side_b;
    const Value c0 = blk * cfg.side_c;
    for (std::int64_t i = 0; i < cfg.side_a; ++i) {
      for (std::int64_t j = 0; j < cfg.side_b; ++j) {
        r1.Add(Row{a0 + i, b0 + j},
               internal_workload::RandomWeight<S>(rng, cfg.max_weight));
      }
    }
    for (std::int64_t j = 0; j < cfg.side_b; ++j) {
      for (std::int64_t k = 0; k < cfg.side_c; ++k) {
        r2.Add(Row{b0 + j, c0 + k},
               internal_workload::RandomWeight<S>(rng, cfg.max_weight));
      }
    }
  }
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, std::move(r1)));
  instance.relations.push_back(Distribute(cluster, std::move(r2)));
  return instance;
}

// --- Lower-bound hard instances (§3.3) ---------------------------------------

// Theorem 2 construction: R1 = {a} x dom(B) with |dom(B)| = n1;
// R2 = {b1, b2} x dom(C) with |dom(C)| = n2/2. Every output (a, c) needs
// the two tuples (b1, c), (b2, c) to meet. Output size ~ n2/2.
template <SemiringC S>
TreeInstance<S> GenLowerBoundThm2(const mpc::Cluster& cluster,
                                  std::int64_t n1, std::int64_t n2,
                                  std::uint64_t seed = 1) {
  CHECK_OK(internal_workload::ValidateAtLeast(n1, 2, "n1"));
  CHECK_OK(internal_workload::ValidateAtLeast(n2, 2, "n2"));
  Rng rng(seed);
  Relation<S> r1(Schema{0, 1});
  for (std::int64_t b = 0; b < n1; ++b) {
    r1.Add(Row{0, b}, internal_workload::RandomWeight<S>(rng, 10));
  }
  Relation<S> r2(Schema{1, 2});
  for (std::int64_t c = 0; c < n2 / 2; ++c) {
    for (Value b : {Value{0}, Value{1}}) {
      r2.Add(Row{b, c}, internal_workload::RandomWeight<S>(rng, 10));
    }
  }
  TreeInstance<S> instance{JoinTree({{0, 1}, {1, 2}}, {0, 2}), {}};
  instance.relations.push_back(Distribute(cluster, std::move(r1)));
  instance.relations.push_back(Distribute(cluster, std::move(r2)));
  return instance;
}

// Theorem 3 construction: complete bipartite R1 = dom(A) x dom(B),
// R2 = dom(B) x dom(C), with |dom(A)| = sqrt(n1*out/n2),
// |dom(B)| = sqrt(n1*n2/out), |dom(C)| = sqrt(n2*out/n1). Requires
// 1/out <= n1/n2 <= out. OUT = |dom(A)|*|dom(C)| = out.
template <SemiringC S>
TreeInstance<S> GenLowerBoundThm3(const mpc::Cluster& cluster,
                                  std::int64_t n1, std::int64_t n2,
                                  std::int64_t out, std::uint64_t seed = 1) {
  const auto iround = [](double x) {
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                         std::llround(x)));
  };
  const double dn1 = static_cast<double>(n1);
  const double dn2 = static_cast<double>(n2);
  const double dout = static_cast<double>(out);
  const std::int64_t da = iround(std::sqrt(dn1 * dout / dn2));
  const std::int64_t db = iround(std::sqrt(dn1 * dn2 / dout));
  const std::int64_t dc = iround(std::sqrt(dn2 * dout / dn1));
  MatMulBlockConfig cfg;
  cfg.blocks = 1;
  cfg.side_a = da;
  cfg.side_b = db;
  cfg.side_c = dc;
  cfg.seed = seed;
  return GenMatMulBlocks<S>(cluster, cfg);
}

// --- Line queries -------------------------------------------------------------

// Block-structured line query over `arity` relations: each block joins a
// set of `side_end` A1-values through `side_mid` interior values per level
// to `side_end` A_{n+1}-values. OUT = blocks * side_end^2.
struct LineBlockConfig {
  int arity = 3;  // number of relations n
  std::int64_t blocks = 4;
  std::int64_t side_end = 8;
  std::int64_t side_mid = 4;
  std::int64_t max_weight = 10;
  std::uint64_t seed = 1;

  std::int64_t out() const { return blocks * side_end * side_end; }

  Status Validate() const {
    PARJOIN_RETURN_IF_ERROR(internal_workload::ValidateArity(arity));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(blocks, "blocks"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_end, "side_end"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_mid, "side_mid"));
    return internal_workload::ValidatePositive(max_weight, "max_weight");
  }
};

template <SemiringC S>
TreeInstance<S> GenLineBlocks(const mpc::Cluster& cluster,
                              const LineBlockConfig& cfg) {
  CHECK_OK(cfg.Validate());
  Rng rng(cfg.seed);
  std::vector<QueryEdge> edges;
  for (int i = 0; i < cfg.arity; ++i) edges.push_back({i, i + 1});
  TreeInstance<S> instance{JoinTree(edges, {0, cfg.arity}), {}};

  for (int level = 0; level < cfg.arity; ++level) {
    const std::int64_t left =
        (level == 0) ? cfg.side_end : cfg.side_mid;
    const std::int64_t right =
        (level == cfg.arity - 1) ? cfg.side_end : cfg.side_mid;
    Relation<S> rel(Schema{level, level + 1});
    for (std::int64_t blk = 0; blk < cfg.blocks; ++blk) {
      for (std::int64_t i = 0; i < left; ++i) {
        for (std::int64_t j = 0; j < right; ++j) {
          rel.Add(Row{blk * left + i, blk * right + j},
                  internal_workload::RandomWeight<S>(rng, cfg.max_weight));
        }
      }
    }
    instance.relations.push_back(Distribute(cluster, std::move(rel)));
  }
  return instance;
}

// Random line query: each relation has `tuples_per_relation` uniform
// distinct pairs over per-level domains of size `dom`.
template <SemiringC S>
TreeInstance<S> GenLineRandom(const mpc::Cluster& cluster, int arity,
                              std::int64_t tuples_per_relation,
                              std::int64_t dom, double skew = 0,
                              std::uint64_t seed = 1,
                              std::int64_t max_weight = 10) {
  CHECK_OK(internal_workload::ValidateArity(arity));
  Rng rng(seed);
  std::vector<QueryEdge> edges;
  for (int i = 0; i < arity; ++i) edges.push_back({i, i + 1});
  TreeInstance<S> instance{JoinTree(edges, {0, arity}), {}};
  for (int i = 0; i < arity; ++i) {
    instance.relations.push_back(Distribute(
        cluster, internal_workload::RandomBinaryRelation<S>(
                     Schema{i, i + 1}, tuples_per_relation, dom, dom, skew,
                     max_weight, rng)));
  }
  return instance;
}

// --- Star queries -------------------------------------------------------------

// Block-structured star query over `arity` relations R_i(A_i, B):
// OUT = blocks * side_arm^arity.
struct StarBlockConfig {
  int arity = 3;
  std::int64_t blocks = 4;
  std::int64_t side_arm = 4;   // arm values per block
  std::int64_t side_b = 4;     // B values per block
  std::int64_t max_weight = 10;
  std::uint64_t seed = 1;

  std::int64_t out() const {
    std::int64_t o = blocks;
    for (int i = 0; i < arity; ++i) o *= side_arm;
    return o;
  }

  Status Validate() const {
    PARJOIN_RETURN_IF_ERROR(internal_workload::ValidateArity(arity));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(blocks, "blocks"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_arm, "side_arm"));
    PARJOIN_RETURN_IF_ERROR(
        internal_workload::ValidatePositive(side_b, "side_b"));
    return internal_workload::ValidatePositive(max_weight, "max_weight");
  }
};

template <SemiringC S>
TreeInstance<S> GenStarBlocks(const mpc::Cluster& cluster,
                              const StarBlockConfig& cfg) {
  CHECK_OK(cfg.Validate());
  Rng rng(cfg.seed);
  std::vector<QueryEdge> edges;
  std::vector<AttrId> outputs;
  for (int i = 1; i <= cfg.arity; ++i) {
    edges.push_back({i, 0});  // R_i(A_i, B) with B = attr 0
    outputs.push_back(i);
  }
  TreeInstance<S> instance{JoinTree(edges, outputs), {}};
  for (int i = 0; i < cfg.arity; ++i) {
    Relation<S> rel(Schema{i + 1, 0});
    for (std::int64_t blk = 0; blk < cfg.blocks; ++blk) {
      for (std::int64_t a = 0; a < cfg.side_arm; ++a) {
        for (std::int64_t b = 0; b < cfg.side_b; ++b) {
          rel.Add(Row{blk * cfg.side_arm + a, blk * cfg.side_b + b},
                  internal_workload::RandomWeight<S>(rng, cfg.max_weight));
        }
      }
    }
    instance.relations.push_back(Distribute(cluster, std::move(rel)));
  }
  return instance;
}

// Random star query over per-arm domains `dom_arm` and center domain
// `dom_b` (Zipf skew applies to B, creating heavy centers).
template <SemiringC S>
TreeInstance<S> GenStarRandom(const mpc::Cluster& cluster, int arity,
                              std::int64_t tuples_per_relation,
                              std::int64_t dom_arm, std::int64_t dom_b,
                              double skew_b = 0, std::uint64_t seed = 1,
                              std::int64_t max_weight = 10) {
  CHECK_OK(internal_workload::ValidateArity(arity));
  Rng rng(seed);
  std::vector<QueryEdge> edges;
  std::vector<AttrId> outputs;
  for (int i = 1; i <= arity; ++i) {
    edges.push_back({i, 0});
    outputs.push_back(i);
  }
  TreeInstance<S> instance{JoinTree(edges, outputs), {}};
  for (int i = 0; i < arity; ++i) {
    instance.relations.push_back(Distribute(
        cluster, internal_workload::RandomBinaryRelation<S>(
                     Schema{i + 1, 0}, tuples_per_relation, dom_arm, dom_b,
                     skew_b, max_weight, rng)));
  }
  return instance;
}

// --- Generic tree instances ---------------------------------------------------

// Fills an arbitrary query with random distinct pairs: every relation gets
// `tuples_per_relation` tuples over a domain of size `dom` per attribute.
template <SemiringC S>
TreeInstance<S> GenTreeRandom(const mpc::Cluster& cluster, JoinTree query,
                              std::int64_t tuples_per_relation,
                              std::int64_t dom, std::uint64_t seed = 1,
                              std::int64_t max_weight = 10) {
  Rng rng(seed);
  TreeInstance<S> instance{std::move(query), {}};
  for (int i = 0; i < instance.query.num_edges(); ++i) {
    const QueryEdge& e = instance.query.edge(i);
    instance.relations.push_back(Distribute(
        cluster, internal_workload::RandomBinaryRelation<S>(
                     Schema{e.u, e.v}, tuples_per_relation, dom, dom, 0,
                     max_weight, rng)));
  }
  return instance;
}

// Generates a random tree query over `num_attrs` attributes: a uniform
// random recursive tree with per-attribute degree capped at `max_degree`
// (star-like arms are a query constant in the paper), each attribute
// independently an output with probability `output_prob` (at least one
// output is forced). Used by the fuzz sweeps.
JoinTree GenRandomQuery(int num_attrs, std::uint64_t seed,
                        int max_degree = 5, double output_prob = 0.5);

// The tree query of Figure 2 (left): 13 attributes, 12 relations, with the
// output attributes chosen so the reduced query decomposes into the
// figure's six twigs (two single relations, two matrix multiplications,
// one star-like query, and one general twig).
JoinTree Fig2Query();

// The star-like query of Figure 1 (left): five arms around B with arm
// lengths 2, 3, 1, 2, 2 (attribute ids documented in the implementation).
JoinTree Fig1StarLikeQuery();

}  // namespace parjoin

#endif  // PARJOIN_WORKLOAD_GENERATORS_H_
