#include "parjoin/workload/generators.h"

#include <cmath>

namespace parjoin {

MatMulBlockConfig MatMulBlockConfig::FromTargets(std::int64_t n,
                                                 std::int64_t out,
                                                 std::int64_t blocks,
                                                 std::uint64_t seed) {
  CHECK_OK(internal_workload::ValidatePositive(n, "n"));
  CHECK_OK(internal_workload::ValidatePositive(out, "out"));
  CHECK_OK(internal_workload::ValidatePositive(blocks, "blocks"));
  // side_a = side_c = s, side_b = b with k*s*b = n and k*s^2 = out:
  //   s = sqrt(out/k), b = n / sqrt(k*out).
  const double k = static_cast<double>(blocks);
  const double s = std::max(1.0, std::sqrt(static_cast<double>(out) / k));
  const double b = std::max(
      1.0, static_cast<double>(n) / std::sqrt(k * static_cast<double>(out)));
  MatMulBlockConfig cfg;
  cfg.blocks = blocks;
  cfg.side_a = static_cast<std::int64_t>(std::llround(s));
  cfg.side_b = static_cast<std::int64_t>(std::llround(b));
  cfg.side_c = cfg.side_a;
  cfg.seed = seed;
  return cfg;
}

JoinTree GenRandomQuery(int num_attrs, std::uint64_t seed, int max_degree,
                        double output_prob) {
  CHECK_OK(internal_workload::ValidateAtLeast(num_attrs, 2, "num_attrs"));
  Rng rng(seed);
  std::vector<QueryEdge> edges;
  std::vector<int> degree(static_cast<size_t>(num_attrs), 0);
  for (AttrId a = 1; a < num_attrs; ++a) {
    // Uniform random recursive tree, rejecting over-degree parents.
    AttrId parent = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      parent = static_cast<AttrId>(rng.Uniform(0, a - 1));
      if (degree[static_cast<size_t>(parent)] < max_degree - 1) break;
    }
    edges.push_back({parent, a});
    degree[static_cast<size_t>(parent)] += 1;
    degree[static_cast<size_t>(a)] += 1;
  }
  std::vector<AttrId> outputs;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (rng.Bernoulli(output_prob)) outputs.push_back(a);
  }
  if (outputs.empty()) {
    outputs.push_back(static_cast<AttrId>(rng.Uniform(0, num_attrs - 1)));
  }
  return JoinTree(std::move(edges), std::move(outputs));
}

JoinTree Fig1StarLikeQuery() {
  // B = 0; arm endpoints A1..A5 = 1..5; interior attributes:
  // C11 = 6 (arm 1), C21 = 7, C22 = 8 (arm 2), C41 = 9 (arm 4),
  // C51 = 10 (arm 5). Arm 3 is the single relation (A3, B).
  return JoinTree(
      {{1, 6}, {6, 0},           // arm 1: A1 - C11 - B
       {2, 7}, {7, 8}, {8, 0},   // arm 2: A2 - C21 - C22 - B
       {3, 0},                   // arm 3: A3 - B
       {4, 9}, {9, 0},           // arm 4: A4 - C41 - B
       {5, 10}, {10, 0}},        // arm 5: A5 - C51 - B
      {1, 2, 3, 4, 5});
}

JoinTree Fig2Query() {
  // Output attributes o1..o10 = 1..10; non-output: x1 = 11, x2 = 12
  // (matrix-multiplication middles), b1 = 13 (star center), b2 = 14,
  // b3 = 15 (the general twig's high-degree attributes), c1 = 16 (an arm
  // interior). The reduced query decomposes into six twigs:
  //   {o1-o2}                          single relation
  //   {o2-x1-o3}                       matrix multiplication
  //   {o3-b1, b1-o4, b1-o5}            star
  //   {o5-b2, b2-o6, b2-b3, b3-o7,
  //    b3-c1, c1-o8}                   general twig (Figure 3 shape)
  //   {o8-o9}                          single relation
  //   {o9-x2-o10}                      matrix multiplication
  return JoinTree({{1, 2},
                   {2, 11},
                   {11, 3},
                   {3, 13},
                   {13, 4},
                   {13, 5},
                   {5, 14},
                   {14, 6},
                   {14, 15},
                   {15, 7},
                   {15, 16},
                   {16, 8},
                   {8, 9},
                   {9, 12},
                   {12, 10}},
                  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
}

}  // namespace parjoin
