// The standard commutative semirings used throughout tests, examples, and
// benchmarks.
//
//   CountingSemiring   (Z, +, *)            COUNT / weighted-sum aggregates;
//                                           matrix multiplication over Z.
//   BooleanSemiring    ({0,1}, ∨, ∧)        join-project / reachability;
//                                           idempotent.
//   MinPlusSemiring    (R ∪ {∞}, min, +)    tropical semiring: shortest
//                                           paths; idempotent.
//   MaxPlusSemiring    (R ∪ {-∞}, max, +)   longest/critical paths;
//                                           idempotent.
//   MaxMinSemiring     (R, max, min)        bottleneck capacity; idempotent.
//
// All carriers are int64_t so that one tuple representation serves every
// semiring and results are exactly comparable against the reference
// evaluator (no floating-point drift).

#ifndef PARJOIN_SEMIRING_SEMIRINGS_H_
#define PARJOIN_SEMIRING_SEMIRINGS_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "parjoin/semiring/semiring.h"

namespace parjoin {

struct CountingSemiring {
  using ValueType = std::int64_t;
  static ValueType Zero() { return 0; }
  static ValueType One() { return 1; }
  static ValueType Plus(ValueType a, ValueType b) { return a + b; }
  static ValueType Times(ValueType a, ValueType b) { return a * b; }
  static constexpr bool kIdempotentPlus = false;
  static constexpr const char* kName = "counting";
};

struct BooleanSemiring {
  using ValueType = std::int64_t;  // 0 or 1
  static ValueType Zero() { return 0; }
  static ValueType One() { return 1; }
  static ValueType Plus(ValueType a, ValueType b) { return (a | b) ? 1 : 0; }
  static ValueType Times(ValueType a, ValueType b) { return (a & b) ? 1 : 0; }
  static constexpr bool kIdempotentPlus = true;
  static constexpr const char* kName = "boolean";
};

struct MinPlusSemiring {
  using ValueType = std::int64_t;
  // +infinity is the additive identity of min.
  static ValueType Zero() { return std::numeric_limits<std::int64_t>::max(); }
  static ValueType One() { return 0; }
  static ValueType Plus(ValueType a, ValueType b) { return std::min(a, b); }
  static ValueType Times(ValueType a, ValueType b) {
    if (a == Zero() || b == Zero()) return Zero();  // ∞ + x = ∞
    return a + b;
  }
  static constexpr bool kIdempotentPlus = true;
  static constexpr const char* kName = "min-plus";
};

struct MaxPlusSemiring {
  using ValueType = std::int64_t;
  static ValueType Zero() { return std::numeric_limits<std::int64_t>::min(); }
  static ValueType One() { return 0; }
  static ValueType Plus(ValueType a, ValueType b) { return std::max(a, b); }
  static ValueType Times(ValueType a, ValueType b) {
    if (a == Zero() || b == Zero()) return Zero();
    return a + b;
  }
  static constexpr bool kIdempotentPlus = true;
  static constexpr const char* kName = "max-plus";
};

struct MaxMinSemiring {
  using ValueType = std::int64_t;
  static ValueType Zero() { return std::numeric_limits<std::int64_t>::min(); }
  static ValueType One() { return std::numeric_limits<std::int64_t>::max(); }
  static ValueType Plus(ValueType a, ValueType b) { return std::max(a, b); }
  static ValueType Times(ValueType a, ValueType b) { return std::min(a, b); }
  static constexpr bool kIdempotentPlus = true;
  static constexpr const char* kName = "max-min";
};

static_assert(SemiringC<CountingSemiring>);
static_assert(SemiringC<BooleanSemiring>);
static_assert(SemiringC<MinPlusSemiring>);
static_assert(SemiringC<MaxPlusSemiring>);
static_assert(SemiringC<MaxMinSemiring>);

}  // namespace parjoin

#endif  // PARJOIN_SEMIRING_SEMIRINGS_H_
