// Commutative semiring abstraction (Green, Karvounarakis, Tannen '07 style).
//
// A join-aggregate query Q_y(R) is evaluated over annotated relations: each
// tuple carries an annotation from a commutative semiring (R, ⊕, ⊗). Join
// results multiply annotations with ⊗; grouping by the output attributes y
// sums them with ⊕. Crucially, no additive inverse is assumed anywhere in
// the library — this is the "semiring model" under which the paper's
// algorithms are designed and its lower bounds hold.
//
// A semiring is a stateless type providing:
//   using ValueType = ...;                 the carrier type
//   static ValueType Zero();               ⊕ identity, ⊗ annihilator
//   static ValueType One();                ⊗ identity
//   static ValueType Plus(a, b);           commutative, associative
//   static ValueType Times(a, b);          commutative, associative,
//                                          distributes over Plus
//   static constexpr bool kIdempotentPlus; whether a ⊕ a == a
//   static constexpr const char* kName;    for diagnostics
//
// Concrete semirings live in semirings.h. The SemiringC concept below lets
// algorithm templates state their requirement explicitly.

#ifndef PARJOIN_SEMIRING_SEMIRING_H_
#define PARJOIN_SEMIRING_SEMIRING_H_

#include <concepts>
#include <type_traits>

namespace parjoin {

template <typename S>
concept SemiringC = requires(typename S::ValueType a, typename S::ValueType b) {
  typename S::ValueType;
  { S::Zero() } -> std::same_as<typename S::ValueType>;
  { S::One() } -> std::same_as<typename S::ValueType>;
  { S::Plus(a, b) } -> std::same_as<typename S::ValueType>;
  { S::Times(a, b) } -> std::same_as<typename S::ValueType>;
  { S::kIdempotentPlus } -> std::convertible_to<bool>;
  { S::kName } -> std::convertible_to<const char*>;
};

}  // namespace parjoin

#endif  // PARJOIN_SEMIRING_SEMIRING_H_
