// TopTwoMinPlus: a commutative semiring whose carrier is the multiset of
// the two smallest path costs (a "top-k of shortest paths" algebra for
// k = 2). Demonstrates that the library's algorithms work with non-scalar
// carriers: Tuple<S> stores S::ValueType by value, and the algorithms only
// ever call Plus/Times/==.
//
//   Zero = {∞, ∞}      (no path)
//   One  = {0, ∞}      (the empty path)
//   Plus = the two smallest of the union of both cost sets
//   Times = the two smallest pairwise sums
//
// This is the standard k-shortest-path semiring restricted to k = 2; it is
// commutative and idempotent (duplicated costs collapse because the
// carriers are treated as sorted cost PAIRS with deduplication — the
// variant where equal costs from genuinely different paths should count
// twice is NOT idempotent and not used here, keeping Plus(a, a) = a).

#ifndef PARJOIN_SEMIRING_TOPK_H_
#define PARJOIN_SEMIRING_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "parjoin/semiring/semiring.h"

namespace parjoin {

struct TopTwoCosts {
  static constexpr std::int64_t kInf =
      std::numeric_limits<std::int64_t>::max();

  std::int64_t best = kInf;
  std::int64_t second = kInf;

  friend bool operator==(const TopTwoCosts& a, const TopTwoCosts& b) {
    return a.best == b.best && a.second == b.second;
  }
};

struct TopTwoMinPlusSemiring {
  using ValueType = TopTwoCosts;

  static ValueType Zero() { return {}; }
  static ValueType One() { return {0, TopTwoCosts::kInf}; }

  // Keeps the two smallest distinct costs among {a.best, a.second, b.best,
  // b.second}.
  static ValueType Plus(const ValueType& a, const ValueType& b) {
    std::int64_t costs[4] = {a.best, a.second, b.best, b.second};
    std::sort(costs, costs + 4);
    ValueType out;
    out.best = costs[0];
    out.second = TopTwoCosts::kInf;
    for (int i = 1; i < 4; ++i) {
      if (costs[i] != out.best) {
        out.second = costs[i];
        break;
      }
    }
    return out;
  }

  // The two smallest distinct pairwise sums.
  static ValueType Times(const ValueType& a, const ValueType& b) {
    auto add = [](std::int64_t x, std::int64_t y) {
      if (x == TopTwoCosts::kInf || y == TopTwoCosts::kInf) {
        return TopTwoCosts::kInf;
      }
      return x + y;
    };
    ValueType s1{add(a.best, b.best), add(a.best, b.second)};
    ValueType s2{add(a.second, b.best), add(a.second, b.second)};
    return Plus(s1, s2);
  }

  static constexpr bool kIdempotentPlus = true;
  static constexpr const char* kName = "top2-min-plus";
};

static_assert(SemiringC<TopTwoMinPlusSemiring>);

}  // namespace parjoin

#endif  // PARJOIN_SEMIRING_TOPK_H_
