// Output-size estimation for line queries (paper §2.2).
//
// For a line query R1(A1,A2) ⋈ ... ⋈ Rn(An,An+1) with output attributes
// A1, An+1, OUT_a is the number of distinct An+1 values reachable from
// a ∈ dom(A1), and OUT = Σ_a OUT_a. The paper computes a constant-factor
// approximation w.h.p. with linear load: hash every distinct An+1 value,
// propagate KMV sketches right-to-left with n reduce-by-key passes, repeat
// with O(log N) independent hash functions, and take the per-value median.
//
// The simulator runs the repetitions sequentially (memory-friendly; the
// paper runs them in parallel — same load up to the O(log N) factor the
// Õ notation hides). Each shipped sketch is charged as one unit, matching
// the paper's "any semiring element ... consumes one unit" convention with
// constant k.

#ifndef PARJOIN_SKETCH_OUT_ESTIMATE_H_
#define PARJOIN_SKETCH_OUT_ESTIMATE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/mpc/exchange.h"
#include "parjoin/mpc/primitives.h"
#include "parjoin/relation/ops.h"
#include "parjoin/relation/relation.h"
#include "parjoin/sketch/kmv.h"

namespace parjoin {

struct OutEstimate {
  // OUT_a for every a ∈ dom(A1) that reaches the end of the chain
  // (values absent from the map have OUT_a = 0).
  std::unordered_map<Value, std::int64_t> per_source;
  std::int64_t total = 0;

  // Estimated size of the largest intermediate a right-to-left Yannakakis
  // pass materializes over this chain: joining R_i with the already
  // aggregated suffix π_{A_{i+1}, A_{n+1}} produces, per R_i tuple, the
  // distinct-target count of its A_{i+1} value — exactly the per-value
  // sketch estimates flowing through the passes below, so the planner
  // gets J for free from the same round. Always >= total (for a
  // single-relation chain it equals total: the output is the only
  // intermediate).
  std::int64_t max_intermediate = 0;

  std::int64_t ForValue(Value a) const {
    auto it = per_source.find(a);
    return it == per_source.end() ? 0 : it->second;
  }
};

namespace internal_sketch {

// (key value, sketch) pair flowing through reduce-by-key.
struct KeyedKmv {
  Value key = 0;
  Kmv kmv;
};

}  // namespace internal_sketch

// Estimates OUT_a for the chain of binary relations `chain`, where
// chain[i] has schema (path[i], path[i+1]); sources are the values of
// path[0] and distinct targets are counted over path.back().
// `repetitions` defaults to max(7, ceil(log2 N)) when 0.
//
// Precondition: dangling tuples should have been removed for the estimate
// to equal the true OUT_a (otherwise it estimates reachable-distinct
// counts, which upper-bound participation).
template <SemiringC S>
OutEstimate EstimateChainOut(mpc::Cluster& cluster,
                             const std::vector<DistRelation<S>>& chain,
                             const std::vector<AttrId>& path,
                             int repetitions = 0) {
  CHECK_EQ(path.size(), chain.size() + 1);
  std::int64_t n_total = 0;
  for (const auto& rel : chain) n_total += rel.TotalSize();
  if (repetitions == 0) {
    repetitions = std::max<int>(
        7, static_cast<int>(std::ceil(std::log2(std::max<double>(
               2.0, static_cast<double>(n_total))))));
  }

  using internal_sketch::KeyedKmv;
  const int p = cluster.p();
  std::unordered_map<Value, std::vector<double>> estimates;
  // level_join[i][rep]: estimated size of R_i joined with the aggregated
  // suffix (the Yannakakis intermediate at level i).
  std::vector<std::vector<double>> level_join(
      chain.size() >= 1 ? chain.size() - 1 : 0);

  // The paper runs the O(log N) repetitions in parallel; rounds count as
  // one repetition's chain.
  mpc::ParallelRegion region(cluster);
  for (int rep = 0; rep < repetitions; ++rep) {
    region.NextBranch();
    const SeededHash hash(cluster.rng().Next());

    // Seed: for the last relation R_{n}(A_n, A_{n+1}), sketch per A_n value
    // the set of its A_{n+1} neighbours.
    const int last = static_cast<int>(chain.size()) - 1;
    mpc::Dist<KeyedKmv> sketches;  // keyed by path[i] after pass i
    {
      const auto& rel = chain[static_cast<size_t>(last)];
      const int key_pos = rel.schema.IndexOf(path[static_cast<size_t>(last)]);
      const int val_pos =
          rel.schema.IndexOf(path[static_cast<size_t>(last) + 1]);
      CHECK_GE(key_pos, 0);
      CHECK_GE(val_pos, 0);
      mpc::Dist<KeyedKmv> seeded(rel.data.num_parts());
      for (int s = 0; s < rel.data.num_parts(); ++s) {
        for (const auto& t : rel.data.part(s)) {
          KeyedKmv kk;
          kk.key = t.row[key_pos];
          kk.kmv.AddHash(hash(static_cast<std::uint64_t>(t.row[val_pos])));
          seeded.part(s).push_back(kk);
        }
      }
      sketches = mpc::ReduceByKey(
          cluster, std::move(seeded),
          [](const KeyedKmv& kk) { return kk.key; },
          [](KeyedKmv* acc, const KeyedKmv& kk) { acc->kmv.Merge(kk.kmv); });
    }

    // Passes i = n-2 .. 0: join sketches (keyed by path[i+1]) with
    // chain[i](path[i], path[i+1]) and merge per path[i] value.
    for (int i = last - 1; i >= 0; --i) {
      const auto& rel = chain[static_cast<size_t>(i)];
      const int key_pos = rel.schema.IndexOf(path[static_cast<size_t>(i)]);
      const int next_pos =
          rel.schema.IndexOf(path[static_cast<size_t>(i) + 1]);
      CHECK_GE(key_pos, 0);
      CHECK_GE(next_pos, 0);

      // Co-partition by the shared attribute path[i+1].
      const std::uint64_t seed = 0x51ed ^ static_cast<std::uint64_t>(i);
      auto route_val = [&](Value v) {
        return static_cast<int>(Mix64(static_cast<std::uint64_t>(v) ^ seed) %
                                static_cast<std::uint64_t>(p));
      };
      mpc::Dist<KeyedKmv> sk_parted = mpc::Exchange(
          cluster, sketches, p,
          [&](const KeyedKmv& kk) { return route_val(kk.key); });
      mpc::Dist<Tuple<S>> rel_parted = mpc::Exchange(
          cluster, rel.data, p,
          [&](const Tuple<S>& t) { return route_val(t.row[next_pos]); });

      // Local: emit (path[i] value, sketch of joined path[i+1] value).
      mpc::Dist<KeyedKmv> emitted(p);
      double join_size = 0;
      for (int s = 0; s < p; ++s) {
        std::unordered_map<Value, const Kmv*> lookup;
        lookup.reserve(sk_parted.part(s).size());
        for (const auto& kk : sk_parted.part(s)) lookup[kk.key] = &kk.kmv;
        for (const auto& t : rel_parted.part(s)) {
          auto it = lookup.find(t.row[next_pos]);
          if (it == lookup.end()) continue;  // dangling tuple
          join_size += it->second->Estimate();
          KeyedKmv kk;
          kk.key = t.row[key_pos];
          kk.kmv = *it->second;
          emitted.part(s).push_back(std::move(kk));
        }
      }
      level_join[static_cast<size_t>(i)].push_back(join_size);
      sketches = mpc::ReduceByKey(
          cluster, std::move(emitted),
          [](const KeyedKmv& kk) { return kk.key; },
          [](KeyedKmv* acc, const KeyedKmv& kk) { acc->kmv.Merge(kk.kmv); });
    }

    sketches.ForEach([&](const KeyedKmv& kk) {
      estimates[kk.key].push_back(kk.kmv.Estimate());
    });
  }

  // Median per value; total = sum of medians. (Free: the medians could be
  // carried alongside the r parallel repetitions in the distributed
  // realization.)
  OutEstimate out;
  // parjoin-analyzer: order-independent(per-key writes + commutative int64
  // sum)
  for (auto& [value, reps] : estimates) {
    std::nth_element(reps.begin(), reps.begin() + reps.size() / 2,
                     reps.end());
    const double median = reps[reps.size() / 2];
    const std::int64_t est =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                      std::llround(median)));
    out.per_source[value] = est;
    out.total += est;
  }
  for (auto& reps : level_join) {
    if (reps.empty()) continue;
    std::nth_element(reps.begin(), reps.begin() + reps.size() / 2,
                     reps.end());
    out.max_intermediate =
        std::max(out.max_intermediate,
                 static_cast<std::int64_t>(
                     std::llround(reps[reps.size() / 2])));
  }
  out.max_intermediate = std::max(out.max_intermediate, out.total);
  return out;
}

}  // namespace parjoin

#endif  // PARJOIN_SKETCH_OUT_ESTIMATE_H_
