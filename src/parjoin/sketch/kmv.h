// KMV (k minimum values) distinct-count sketch [Bar-Yossef et al. '02,
// Beyer et al. '07], used by the paper (§2.2) to obtain constant-factor
// approximations of OUT with linear load.
//
// A Kmv keeps the k smallest distinct hash values seen. Two sketches over
// the same hash function merge by keeping the k smallest of their union —
// the property that lets OUT_a be computed bottom-up with reduce-by-key.
// The estimator is (k-1)/v_k (with hashes normalized to [0,1)); when fewer
// than k distinct hashes were seen the count is exact.

#ifndef PARJOIN_SKETCH_KMV_H_
#define PARJOIN_SKETCH_KMV_H_

#include <algorithm>
#include <cstdint>

#include "parjoin/common/hash.h"
#include "parjoin/common/logging.h"

namespace parjoin {

template <int K>
class KmvT {
 public:
  static_assert(K >= 2, "KMV needs at least two slots");
  // k is a compile-time constant: the paper only needs constant k for a
  // constant-factor approximation; 16 keeps the sketch one cache line pair.
  static constexpr int kK = K;

  KmvT() : size_(0) {}

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // The i-th smallest retained hash (0 <= i < size()). Exposed so two
  // sketches over the same hash function can be compared or fingerprinted
  // (the planner's star estimator hashes sketch contents into signatures).
  std::uint64_t hash(int i) const {
    CHECK_LT(i, size_);
    return vals_[i];
  }

  // Inserts a hash value (deduplicated; keeps the kK smallest).
  void AddHash(std::uint64_t h) {
    if (size_ == kK && h >= vals_[kK - 1]) return;
    // Find insertion point; skip exact duplicates.
    int lo = 0, hi = size_;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (vals_[mid] < h) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < size_ && vals_[lo] == h) return;
    const int limit = std::min(size_ + 1, static_cast<int>(kK));
    for (int i = limit - 1; i > lo; --i) vals_[i] = vals_[i - 1];
    if (lo < limit) vals_[lo] = h;
    size_ = limit;
  }

  // Keeps the k smallest of the union of both sketches (both sides must
  // use the same hash function).
  void Merge(const KmvT& other) {
    for (int i = 0; i < other.size_; ++i) AddHash(other.vals_[i]);
  }

  // Estimated number of distinct inserted values.
  double Estimate() const {
    if (size_ < kK) return static_cast<double>(size_);  // exact
    const double vk =
        static_cast<double>(vals_[kK - 1]) / 18446744073709551616.0;  // 2^64
    CHECK_GT(vk, 0.0);
    return (kK - 1) / vk;
  }

 private:
  int size_;
  std::uint64_t vals_[kK];  // sorted ascending, first size_ entries valid
};

// The library-wide default sketch width.
using Kmv = KmvT<16>;

}  // namespace parjoin

#endif  // PARJOIN_SKETCH_KMV_H_
