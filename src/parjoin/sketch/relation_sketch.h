// Registration-time relation statistics for the serving runtime: the
// relation's size plus one KMV distinct sketch per column, all computed
// under a FIXED hash seed. Equal relation contents therefore produce equal
// sketches — and equal Fingerprint()s — across queries, processes, and
// runs, which is what lets parjoind's plan cache key on (query shape,
// sketch signature): a repeat query over unchanged registered relations
// maps to the same cache entry without re-running estimation.

#ifndef PARJOIN_SKETCH_RELATION_SKETCH_H_
#define PARJOIN_SKETCH_RELATION_SKETCH_H_

#include <cstdint>
#include <vector>

#include "parjoin/common/hash.h"
#include "parjoin/relation/relation.h"
#include "parjoin/sketch/kmv.h"

namespace parjoin {

// The fixed seed behind every RelationSketch. Registration happens once
// per relation; a per-run seed would make fingerprints run-dependent and
// defeat cross-query cache hits.
inline constexpr std::uint64_t kRelationSketchSeed = 0x5e7c8f51a3d90b26ULL;

struct RelationSketch {
  std::int64_t size = 0;
  std::vector<Kmv> columns;  // one sketch per schema position

  // Estimated distinct values in column i.
  double ColumnDistinct(int i) const {
    return columns[static_cast<std::size_t>(i)].Estimate();
  }

  // A 64-bit digest of (size, retained sketch hashes). Two relations with
  // equal contents fingerprint equally; differing contents collide only if
  // size AND every retained minimum agree — vanishingly unlikely and, for
  // the plan cache, merely a stale-plan risk, never a correctness one
  // (cached plans are re-executed, not replayed).
  std::uint64_t Fingerprint() const {
    std::uint64_t h =
        HashCombine(0x9d3f1c6ab5e82074ULL, static_cast<std::uint64_t>(size));
    for (const Kmv& col : columns) {
      h = HashCombine(h, static_cast<std::uint64_t>(col.size()));
      for (int i = 0; i < col.size(); ++i) h = HashCombine(h, col.hash(i));
    }
    return h;
  }
};

// One pass over the partitions; charges nothing (sketching is part of
// registration, not of any measured query).
template <SemiringC S>
RelationSketch SketchRelation(const DistRelation<S>& rel) {
  const SeededHash hash(kRelationSketchSeed);
  RelationSketch sketch;
  sketch.size = rel.TotalSize();
  sketch.columns.resize(static_cast<std::size_t>(rel.schema.size()));
  rel.data.ForEach([&](const Tuple<S>& t) {
    for (int i = 0; i < rel.schema.size(); ++i) {
      sketch.columns[static_cast<std::size_t>(i)].AddHash(
          hash(static_cast<std::uint64_t>(t.row[i])));
    }
  });
  return sketch;
}

}  // namespace parjoin

#endif  // PARJOIN_SKETCH_RELATION_SKETCH_H_
