// Retail basket analytics as a STAR query.
//
// Three fact relations share an order id B: Customer(A1, B),
// Product(A2, B), Promotion(A3, B). The star query
//   ∑_B Customer ⋈ Product ⋈ Promotion
// with outputs {A1, A2, A3} lists every (customer, product, promotion)
// combination that co-occurs in at least one order — annotated, under the
// counting semiring, with the number of supporting orders (weighted by
// line-item quantities). The §5 algorithm computes it without ever
// materializing the full order join.

#include <algorithm>
#include <set>
#include <iostream>

#include "parjoin/algorithms/star_query.h"
#include "parjoin/algorithms/yannakakis.h"
#include "parjoin/common/random.h"
#include "parjoin/mpc/cluster.h"
#include "parjoin/relation/relation.h"
#include "parjoin/semiring/semirings.h"

namespace {

using S = parjoin::CountingSemiring;

parjoin::Relation<S> FactRelation(parjoin::Schema schema, int dim_size,
                                  int num_orders, int num_rows,
                                  double order_skew, std::uint64_t seed) {
  parjoin::Rng rng(seed);
  parjoin::ZipfSampler orders(num_orders, order_skew);
  parjoin::Relation<S> rel(schema);
  std::set<std::pair<parjoin::Value, parjoin::Value>> seen;
  while (static_cast<int>(seen.size()) < num_rows) {
    parjoin::Value dim = rng.Uniform(0, dim_size - 1);
    parjoin::Value order = orders.Sample(rng) - 1;  // big orders are hot
    if (!seen.insert({dim, order}).second) continue;
    rel.Add(parjoin::Row{dim, order}, rng.Uniform(1, 3));  // quantity
  }
  return rel;
}

}  // namespace

int main() {
  constexpr int kOrders = 500;

  parjoin::mpc::Cluster cluster(16);
  // Attribute ids: B (order) = 0, customer = 1, product = 2, promo = 3.
  parjoin::TreeInstance<S> star{
      parjoin::JoinTree({{1, 0}, {2, 0}, {3, 0}}, {1, 2, 3}), {}};
  star.relations.push_back(parjoin::Distribute(
      cluster,
      FactRelation(parjoin::Schema{1, 0}, 200, kOrders, 2500, 0.8, 1)));
  star.relations.push_back(parjoin::Distribute(
      cluster,
      FactRelation(parjoin::Schema{2, 0}, 300, kOrders, 3000, 0.8, 2)));
  star.relations.push_back(parjoin::Distribute(
      cluster,
      FactRelation(parjoin::Schema{3, 0}, 40, kOrders, 1500, 0.8, 3)));

  auto result = parjoin::StarQueryAggregate(cluster, star);

  parjoin::Relation<S> local = result.ToLocal();
  local.Normalize();
  std::partial_sort(
      local.tuples().begin(),
      local.tuples().begin() + std::min<std::size_t>(5, local.tuples().size()),
      local.tuples().end(),
      [](const auto& a, const auto& b) { return a.w > b.w; });

  std::cout << local.size()
            << " (customer, product, promotion) combinations co-occur; "
               "top 5 by weighted support:\n";
  for (int i = 0; i < 5 && i < static_cast<int>(local.size()); ++i) {
    const auto& t = local.tuples()[static_cast<size_t>(i)];
    std::cout << "  customer " << t.row[0] << ", product " << t.row[1]
              << ", promo " << t.row[2] << ": support " << t.w << "\n";
  }
  std::cout << "\nStar-query load: " << cluster.stats().max_load << " in "
            << cluster.stats().rounds << " rounds.\n";
  return 0;
}
